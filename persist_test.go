package eof

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/corpus"
	"github.com/eof-fuzz/eof/internal/journal"
)

// stripCampaignStream drops the persistence layer's shard -1 journal lines,
// leaving exactly the per-shard streams a plain campaign writes.
func stripCampaignStream(raw []byte) []byte {
	var out []byte
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 || bytes.Contains(line, []byte(`"shard":-1`)) {
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

// copyStore clones a corpus store directory, simulating the state a kill -9
// at that instant would leave on disk.
func copyStore(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy store: %v", err)
	}
}

// TestPersistOffByteIdentical asserts the crash-safe store never perturbs the
// campaign: for the same seed, a persisted run's journal minus the shard -1
// campaign stream is byte-identical to a plain run's journal, solo (where the
// budget is sliced into checkpoint epochs) and fleet alike.
func TestPersistOffByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		budget time.Duration
	}{
		{"solo", 1, 25 * time.Minute},
		{"fleet", 2, 40 * time.Minute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(corpusDir string) ([]byte, *Report) {
				var buf bytes.Buffer
				c, err := NewCampaign(Options{
					OS:         "rtthread",
					Seed:       23,
					Shards:     tc.shards,
					CorpusDir:  corpusDir,
					TraceJSONL: &buf,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				rep, err := c.Run(tc.budget)
				if err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), rep
			}
			plainJournal, plainRep := run("")
			persistJournal, persistRep := run(t.TempDir())
			if bytes.Contains(plainJournal, []byte(`"shard":-1`)) {
				t.Fatal("plain run journaled campaign-stream events")
			}
			if !bytes.Contains(persistJournal, []byte(`"kind":"checkpoint"`)) {
				t.Fatal("persisted run journaled no checkpoint events")
			}
			if !bytes.Equal(plainJournal, stripCampaignStream(persistJournal)) {
				t.Fatal("per-shard journal streams differ between persisted and plain runs")
			}
			if plainRep.Execs != persistRep.Execs || plainRep.Edges != persistRep.Edges ||
				plainRep.TimeBy != persistRep.TimeBy || plainRep.Duration != persistRep.Duration {
				t.Fatalf("reports differ between persisted and plain runs:\n%+v\n%+v", plainRep, persistRep)
			}
			if plainRep.Persist != nil {
				t.Fatal("plain run carries a persist report")
			}
			if persistRep.Persist == nil || persistRep.Persist.Checkpoints == 0 {
				t.Fatalf("persisted run's persist report: %+v", persistRep.Persist)
			}
		})
	}
}

// TestKillResumeCoverageSuperset is the crash-recovery integration test: a
// campaign's store is cloned at an epoch checkpoint (byte-equivalent to a
// kill -9 before the next barrier's first write), and a resumed campaign on
// the clone must come back knowing everything the checkpoint knew — coverage
// a superset of the checkpointed edges, corpus membership intact — and keep
// fuzzing from where the original left off.
func TestKillResumeCoverageSuperset(t *testing.T) {
	orig := t.TempDir()
	killed := t.TempDir()

	c, err := NewCampaign(Options{OS: "rtthread", Seed: 23, CorpusDir: orig})
	if err != nil {
		t.Fatal(err)
	}
	c.persist.AfterCheckpoint = func(epoch int) {
		if epoch == 2 {
			copyStore(t, orig, killed)
		}
	}
	if _, err := c.Run(35 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// What did the interrupted campaign durably know?
	s, err := corpus.Open(killed, "rtthread", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := s.LoadCheckpoint()
	if err != nil || ck == nil {
		t.Fatalf("cloned store has no checkpoint: ck=%v err=%v", ck, err)
	}
	if ck.Epoch != 2 {
		t.Fatalf("clone checkpoint epoch = %d, want 2", ck.Epoch)
	}
	ckEdges := make(map[uint32]bool, len(ck.Edges))
	for _, e := range ck.Edges {
		ckEdges[e] = true
	}
	entriesBefore := s.Len()

	r, err := NewCampaign(Options{OS: "rtthread", CorpusDir: killed, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rep, err := r.Run(20 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Persist
	if p == nil || !p.Resumed {
		t.Fatalf("resumed run's persist report: %+v", p)
	}
	if p.PriorEpochs != 2 || p.PriorElapsed != ck.Elapsed {
		t.Fatalf("resumed history: epochs %d elapsed %v, want 2 / %v", p.PriorEpochs, p.PriorElapsed, ck.Elapsed)
	}
	if p.ResumedSeeds == 0 || p.ResumedSeeds < entriesBefore {
		t.Fatalf("resumed %d seeds from a store of %d entries", p.ResumedSeeds, entriesBefore)
	}
	if rep.Edges < len(ck.Edges) {
		t.Fatalf("resumed coverage %d below checkpointed %d", rep.Edges, len(ck.Edges))
	}
	if p.Entries < entriesBefore {
		t.Fatalf("resumed store shrank: %d -> %d entries", entriesBefore, p.Entries)
	}

	// The resumed store's next checkpoint must carry the old coverage forward.
	s2, err := corpus.Open(killed, "rtthread", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := s2.LoadCheckpoint()
	if err != nil || ck2 == nil {
		t.Fatalf("resumed store has no checkpoint: %v", err)
	}
	if ck2.Epoch <= 2 {
		t.Fatalf("resumed checkpoint epoch = %d, want > 2", ck2.Epoch)
	}
	got := make(map[uint32]bool, len(ck2.Edges))
	for _, e := range ck2.Edges {
		got[e] = true
	}
	for e := range ckEdges {
		if !got[e] {
			t.Fatalf("edge %d checkpointed before the kill is gone after resume", e)
		}
	}
	if ck2.Elapsed <= ck.Elapsed {
		t.Fatalf("campaign time did not accumulate: %v -> %v", ck.Elapsed, ck2.Elapsed)
	}
}

// TestResumeTwiceDeterministic asserts resuming is as deterministic as
// starting: two campaigns resumed from clones of the same checkpoint explore
// identically — same journal bytes, same coverage, same corpus.
func TestResumeTwiceDeterministic(t *testing.T) {
	orig := t.TempDir()
	c, err := NewCampaign(Options{OS: "rtthread", Seed: 23, CorpusDir: orig})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Close()

	resume := func() ([]byte, *Report) {
		clone := t.TempDir()
		copyStore(t, orig, clone)
		var buf bytes.Buffer
		r, err := NewCampaign(Options{OS: "rtthread", CorpusDir: clone, Resume: true, TraceJSONL: &buf})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rep, err := r.Run(15 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep
	}
	j1, rep1 := resume()
	j2, rep2 := resume()
	if !bytes.Equal(j1, j2) {
		t.Fatal("journals differ between two resumes of the same checkpoint")
	}
	if rep1.Execs != rep2.Execs || rep1.Edges != rep2.Edges || len(rep1.Bugs) != len(rep2.Bugs) {
		t.Fatalf("reports differ between two resumes:\n%+v\n%+v", rep1, rep2)
	}
	if j, err := journal.Read(bytes.NewReader(j1)); err != nil {
		t.Fatalf("resumed journal does not parse: %v", err)
	} else if j.Header.Seed == 23 {
		t.Fatal("resumed journal header still records the base seed; RNG cursor not advanced")
	}
}

// TestCorruptCheckpointDegrades asserts a resume survives checkpoint bitrot:
// the damaged file is quarantined and the campaign degrades to the previous
// good checkpoint instead of failing.
func TestCorruptCheckpointDegrades(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCampaign(Options{OS: "rtthread", Seed: 23, CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.Close()

	ckPath := filepath.Join(dir, "rtthread", "stm32h745", "checkpoint.json")
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(ckPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := NewCampaign(Options{OS: "rtthread", CorpusDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume failed on a recoverable store: %v", err)
	}
	defer r.Close()
	rep, err := r.Run(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Persist
	if p == nil || !p.Resumed {
		t.Fatalf("degraded resume's persist report: %+v", p)
	}
	if len(p.Warnings) == 0 {
		t.Fatal("corrupt checkpoint left no warning")
	}
	if p.PriorEpochs == 0 {
		t.Fatal("previous good checkpoint not used")
	}
	if _, err := os.Stat(filepath.Join(dir, "damaged")); err != nil {
		t.Fatalf("damaged checkpoint not quarantined: %v", err)
	}
}

// TestGracefulStopCommitsCheckpoint asserts RequestStop drains at the next
// barrier with a final durable checkpoint, instead of abandoning the epoch.
func TestGracefulStopCommitsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCampaign(Options{OS: "rtthread", Seed: 23, CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.persist.AfterCheckpoint = func(epoch int) {
		if epoch == 1 {
			c.RequestStop()
		}
	}
	rep, err := c.Run(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration >= 2*time.Hour {
		t.Fatalf("stop request ignored: ran the full %v budget", rep.Duration)
	}
	s, err := corpus.Open(dir, "rtthread", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := s.LoadCheckpoint()
	if err != nil || ck == nil {
		t.Fatalf("drained campaign left no checkpoint: %v", err)
	}
}
