// Restoration demonstrates Algorithm 1's state-restoration path at the
// debug-port level, using the framework's internal packages directly
// (advanced usage): boot FreeRTOS, trigger the flash-corrupting
// load_partitions bug over the debug link, watch the reboot fail, then
// reflash every partition through the probe and bring the board back.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/vtime"
	"github.com/eof-fuzz/eof/internal/wire"
)

func main() {
	info, err := targets.ByName("freertos")
	check(err)
	spec := boards.STM32H745()
	images, err := info.BuildImages(spec, true)
	check(err)
	table, err := info.PartTable()
	check(err)

	clock := &vtime.Clock{}
	brd, err := board.New(spec, table, info.Builder, clock)
	check(err)
	check(brd.Provision("bootloader", images.Boot))
	check(brd.Provision("kernel", images.Kernel))
	check(brd.Boot())
	fmt.Println("1. board booted, attaching debug probe")

	client := ocd.Connect(ocd.NewServer(brd, ocd.DefaultLatency()))
	defer client.Close()

	syms, err := info.SymbolTable(spec)
	check(err)
	mainAddr := syms.Addr(agent.SymExecutorMain)
	check(client.SetBreakpoint(mainAddr))
	check(client.SetBreakpoint(syms.Addr("panic_handler")))

	st, err := client.Continue(500_000)
	check(err)
	fmt.Printf("2. target parked at executor_main (%#x)\n", st.PC)

	// load_partitions(index=3, PART_REMAP): the remap path writes its mount
	// record into the kernel image in flash.
	prog := &wire.Prog{Calls: []wire.Call{{
		API: uint16(info.APIIndex("load_partitions")),
		Args: []wire.Arg{
			{Kind: wire.ArgImm, Val: 3},
			{Kind: wire.ArgImm, Val: 8},
		},
	}}}
	raw, err := prog.Marshal()
	check(err)
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	lay := board.LayoutFor(spec)
	check(client.WriteMem(lay.MailboxIn, buf))

	st, err = client.Continue(500_000)
	check(err)
	if st.Kind != cpu.StopBreakpoint || st.PC != syms.Addr("panic_handler") {
		log.Fatalf("expected the exception monitor's breakpoint, got %+v", st)
	}
	fmt.Println("3. exception monitor fired at panic_handler — the kernel died mid-mount")

	if err := client.Reset(); err != nil {
		fmt.Println("4. reboot FAILED (image corrupt):", err)
	} else {
		log.Fatal("reboot unexpectedly succeeded on a corrupt image")
	}

	fmt.Println("5. reflashing every partition over the debug port...")
	for _, part := range []struct {
		name string
		data []byte
	}{{"bootloader", images.Boot}, {"kernel", images.Kernel}} {
		p := table.Lookup(part.name)
		check(client.FlashErase(p.Offset, p.Size))
		check(client.FlashWrite(p.Offset, part.data))
		fmt.Printf("   %-10s %7d bytes at %#x\n", part.name, len(part.data), p.Offset)
	}
	check(client.Reset())
	check(client.SetBreakpoint(mainAddr))
	st, err = client.Continue(500_000)
	check(err)
	fmt.Printf("6. board restored: parked at executor_main again (%#x), boot count %d\n",
		st.PC, brd.BootCount())
	fmt.Printf("   total virtual time for detection + restoration: %v\n", clock.Now())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
