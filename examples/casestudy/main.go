// Casestudy reproduces the paper's §5.3.1 case study: the RT-Thread serial
// crash of Figure 6. The campaign runs on the ESP32-class board (the one
// with a network stack); once the fuzzer unregisters the console device and
// then performs an operation that logs — socket creation is the paper's
// example — the kernel dies in _serial_poll_tx dereferencing the dangling
// device, and the exception monitor reconstructs the Figure-6 backtrace.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/eof-fuzz/eof"
)

func main() {
	c, err := eof.NewCampaign(eof.Options{
		OS:    "rtthread",
		Board: "esp32c3",
		Seed:  1234,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Println("hunting the RT-Thread serial-write crash (Table 2, bug #12)...")
	rep, err := c.Run(4 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d execs, %d edges, %d distinct bugs\n\n",
		rep.Execs, rep.Edges, len(rep.Bugs))

	for _, b := range rep.Bugs {
		hit := false
		for _, fr := range b.Backtrace {
			if strings.Contains(fr, "_serial_poll_tx") {
				hit = true
			}
		}
		if !hit {
			continue
		}
		fmt.Printf("FOUND: %s (at %v)\n", b.Title, b.FoundAt.Round(time.Second))
		fmt.Println("Stack frames at BUG: unexpected stop:")
		for i, fr := range b.Backtrace {
			fmt.Printf("Level: %d: %s\n", i+1, fr)
		}
		fmt.Println("\nreproducer:")
		fmt.Println(indent(b.Reproducer))
		return
	}

	fmt.Println("bug #12 not triggered in this window; other findings:")
	for _, b := range rep.Bugs {
		fmt.Println("  -", b.Title)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
