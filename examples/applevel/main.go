// Applevel reproduces the paper's application-level configuration (Table 4):
// fuzz only FreeRTOS's embedded HTTP server, with instrumentation confined
// to that module — the setup used for the GDBFuzz/SHiFT comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/eof-fuzz/eof"
)

func main() {
	c, err := eof.NewCampaign(eof.Options{
		OS:    "freertos",
		Board: "stm32h745",
		Seed:  7,
		// Only the HTTP server's API surface...
		RestrictAPIs: []string{"http_server_init", "http_server_handle"},
		// ...and only its module instrumented.
		InstrumentModules: []string{"app/http"},
		SampleEvery:       10 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Run(2 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HTTP-server fuzzing: %d execs, %d module branches\n", rep.Execs, rep.Edges)
	fmt.Println("coverage growth (module-confined):")
	for _, s := range rep.Series {
		bar := ""
		for i := 0; i < s.Edges/4; i++ {
			bar += "#"
		}
		fmt.Printf("  %8v %4d %s\n", s.At.Round(time.Minute), s.Edges, bar)
	}
	for _, b := range rep.Bugs {
		fmt.Println("bug:", b.Title)
	}
}
