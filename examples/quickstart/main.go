// Quickstart: fuzz FreeRTOS on the virtual STM32H745 for twenty virtual
// minutes and print what happened. Everything — board, flash image, debug
// probe, specification extraction — is assembled by NewCampaign.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/eof-fuzz/eof"
)

func main() {
	fmt.Println("supported targets:", eof.Targets())
	fmt.Println("supported boards: ", eof.Boards())

	c, err := eof.NewCampaign(eof.Options{
		OS:    "freertos",
		Board: "stm32h745",
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Run(20 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexecuted %d test cases in %v of target time (%.2f/s)\n",
		rep.Execs, rep.Duration.Round(time.Second), float64(rep.Execs)/rep.Duration.Seconds())
	fmt.Printf("branch coverage: %d edges\n", rep.Edges)
	fmt.Printf("liveness: %d restores, %d of which needed a full reflash\n",
		rep.Restores, rep.Reflashes)

	fmt.Println("\ncoverage growth:")
	for _, s := range rep.Series {
		fmt.Printf("  %8v  %5d edges\n", s.At.Round(time.Second), s.Edges)
	}

	for _, b := range rep.Bugs {
		fmt.Printf("\nBUG [%s]: %s\n", b.Monitor, b.Title)
		for i, fr := range b.Backtrace {
			fmt.Printf("  Level: %d: %s\n", i+1, fr)
		}
	}
	if len(rep.Bugs) == 0 {
		fmt.Println("\nno bugs in this window — try a longer run or another seed")
	}
}
