// Package eof is the public API of EOF, a feedback-guided fuzzer for
// embedded operating systems running on (virtual) hardware, reproducing
// "Effective On-Hardware Fuzzing of Embedded Operating Systems"
// (EuroSys 2026).
//
// A Campaign owns the full stack: the target OS image, a virtual development
// board, the OpenOCD-style debug probe, the specification pipeline and the
// fuzzing engine. All control and observation flows through the debug port,
// exactly as on physical targets:
//
//	c, err := eof.NewCampaign(eof.Options{OS: "rtthread", Board: "esp32c3"})
//	if err != nil { ... }
//	defer c.Close()
//	report, err := c.Run(30 * time.Minute) // virtual time
//	for _, bug := range report.Bugs {
//		fmt.Println(bug.Title)
//	}
package eof

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/specgen"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
)

// Targets lists the supported embedded OS names.
func Targets() []string { return targets.Names() }

// Boards lists the catalogued board names.
func Boards() []string {
	all := boards.All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}

// Options configures a fuzzing campaign.
type Options struct {
	// OS names the target embedded OS (see Targets).
	OS string
	// Board names the development board (see Boards). Defaults to
	// "stm32h745".
	Board string
	// Seed makes the campaign deterministic. Defaults to 1.
	Seed int64

	// FeedbackDisabled turns off coverage guidance (the paper's EOF-nf).
	FeedbackDisabled bool
	// APIAwareDisabled degenerates argument generation to AFL-style random
	// values (the generation-guidance ablation).
	APIAwareDisabled bool
	// Uninstrumented builds the image without coverage instrumentation
	// (overhead measurements).
	Uninstrumented bool

	// RestrictAPIs limits fuzzing to the named APIs (application-level
	// testing); empty fuzzes the full surface.
	RestrictAPIs []string
	// InstrumentModules confines coverage to source paths with these
	// prefixes; empty instruments the whole image.
	InstrumentModules []string

	// SampleEvery sets the coverage time-series resolution (default 5
	// virtual minutes).
	SampleEvery time.Duration

	// Shards > 1 shards the campaign across a pool of that many virtual
	// boards running concurrently with shared feedback (fleet mode). The
	// budget passed to Run is total board time, split evenly; the report's
	// Duration is the pool's wall-clock (budget/Shards).
	Shards int
	// SyncEvery is the fleet feedback-exchange interval (default 10
	// virtual minutes). Ignored when Shards <= 1.
	SyncEvery time.Duration
	// LegacyLink disables the vectored debug-link commands, forcing the
	// multi-round-trip sequences older probe firmware needs.
	LegacyLink bool

	// LinkFaultRate injects deterministic debug-link faults at this
	// per-command rate (flaky-adapter modelling): 60% dropped frames, 20%
	// corrupt frames, 10% late frames, 10% adapter stalls. The session
	// layer absorbs them via retries and reconnects; see the report's
	// LinkRetries/LinkReconnects. Zero (the default) injects nothing.
	LinkFaultRate float64
	// LinkRetries bounds the session layer's transparent per-command
	// retries (0 = default of 4, negative disables retries so every fault
	// surfaces to the liveness watchdogs).
	LinkRetries int

	// TraceJSONL, when non-nil, streams the campaign's structured trace
	// journal to the writer as JSON Lines — one event per line, stamped
	// with virtual time, shard and sequence number. In fleet mode events
	// are merged in shard order at every sync barrier, so the journal is
	// deterministic for a fixed seed.
	TraceJSONL io.Writer
	// StatusEvery, when positive, prints a live one-line progress summary
	// (execs/s, edges, restore rate, link health) every host-time interval
	// to StatusWriter.
	StatusEvery time.Duration
	// StatusWriter receives the live status lines (default os.Stderr).
	StatusWriter io.Writer
	// FlightRecorder overrides the size of the pre-crash event ring
	// attached to every Bug (0 = the default of 64 events).
	FlightRecorder int
}

// Bug is one deduplicated finding.
type Bug struct {
	// OS and Board locate the campaign.
	OS    string
	Board string
	// Title is a one-line description; Signature deduplicates.
	Title     string
	Signature string
	// Kind is "panic" or "assert"; Monitor is the detector that attributed
	// it ("exception" or "log").
	Kind    string
	Monitor string
	// Backtrace holds "file : function : line" frames, innermost first.
	Backtrace []string
	// Log is the UART context captured around the crash.
	Log []string
	// Reproducer is the triggering program in textual form.
	Reproducer string
	// FoundAt is the virtual campaign time of discovery.
	FoundAt time.Duration
	// Trace is the flight recorder: the last trace events the finding
	// shard emitted before detection, oldest first.
	Trace []trace.Event
}

// Sample is one coverage-over-time point.
type Sample struct {
	At    time.Duration
	Edges int
}

// Report summarises a finished campaign.
type Report struct {
	OS    string
	Board string
	// Shards is the board-pool size the campaign ran on (1 = solo).
	Shards int
	// Execs counts completed test cases; Edges is distinct branch coverage.
	Execs int
	Edges int
	// Crashes, Restores and Reflashes count liveness events: detected
	// crashes, state restorations, and restorations that needed a full
	// image reflash.
	Crashes   int
	Restores  int
	Reflashes int
	// RestoresByReason breaks Restores down by trigger ("crash", "fault",
	// "timeout", "pc-stall", ...).
	RestoresByReason map[string]int
	// DegradedMonitors counts exception symbols left unarmed because the
	// board ran out of breakpoint comparators.
	DegradedMonitors int
	// LinkRoundTrips is the total number of debug-link commands issued
	// (including retried attempts); divide by Execs for the per-exec
	// transport cost.
	LinkRoundTrips int64
	// LinkRetries counts commands transparently re-sent after a transient
	// link fault; LinkReconnects counts recovered link deaths (adapter
	// revived, breakpoints re-armed). Both are zero on a healthy link.
	LinkRetries    int64
	LinkReconnects int64
	// LinkPerCmd is the per-command round-trip accounting from the link
	// metrics layer: count, total and mean virtual latency per command,
	// sorted by command name.
	LinkPerCmd []link.CmdStat
	// TimeBy breaks board time down by activity: executing, restoring,
	// reflashing, link overhead and (fleet) sync-barrier idling. Solo it
	// sums to Duration exactly; in fleet mode it sums shard board time,
	// i.e. Shards x Duration.
	TimeBy trace.TimeBy
	Bugs   []Bug
	Series []Sample
	// Duration is the campaign's virtual runtime. In fleet mode shards run
	// concurrently, so this is the pool's wall-clock, not summed board time.
	Duration time.Duration
}

// Campaign is one configured fuzzing run.
type Campaign struct {
	engine *core.Engine // solo mode
	pool   *fleet.Fleet // fleet mode (Shards > 1)
	shards int
}

// NewCampaign builds the full stack for the given options.
func NewCampaign(opts Options) (*Campaign, error) {
	info, err := targets.ByName(opts.OS)
	if err != nil {
		return nil, err
	}
	boardName := opts.Board
	if boardName == "" {
		boardName = boards.NameSTM32H745
	}
	spec := boards.ByName(boardName)
	if spec == nil {
		return nil, fmt.Errorf("eof: unknown board %q (have %v)", boardName, Boards())
	}
	cfg := core.DefaultConfig(info, spec)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.FeedbackGuided = !opts.FeedbackDisabled
	cfg.APIAware = !opts.APIAwareDisabled
	cfg.Instrumented = !opts.Uninstrumented
	cfg.CallFilter = opts.RestrictAPIs
	cfg.CovModules = opts.InstrumentModules
	cfg.LegacyLink = opts.LegacyLink
	if opts.LinkFaultRate > 0 {
		// Zero fault seed: each engine (and fleet shard) derives its own
		// deterministic fault sequence from its campaign seed.
		cfg.LinkFaults = link.Profile(opts.LinkFaultRate, 0)
	}
	cfg.LinkRetries = opts.LinkRetries
	if opts.SampleEvery > 0 {
		cfg.SampleEvery = opts.SampleEvery
	}
	cfg.FlightRecorder = opts.FlightRecorder
	if opts.TraceJSONL != nil {
		cfg.TraceSink = trace.NewJSONL(opts.TraceJSONL)
	}
	if opts.StatusEvery > 0 {
		w := opts.StatusWriter
		if w == nil {
			w = os.Stderr
		}
		cfg.StatusSink = trace.NewStatus(w, opts.StatusEvery)
	}
	if opts.Shards > 1 {
		pool, err := fleet.New(cfg, fleet.Options{
			Shards:    opts.Shards,
			SyncEvery: opts.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
		return &Campaign{pool: pool, shards: opts.Shards}, nil
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Campaign{engine: engine, shards: 1}, nil
}

// Run fuzzes for the given virtual-time budget and returns the report. In
// fleet mode the budget is total board time, split evenly across the pool.
// Run may be called once per campaign.
func (c *Campaign) Run(budget time.Duration) (*Report, error) {
	var rep *core.Report
	var err error
	if c.pool != nil {
		rep, err = c.pool.Run(budget)
	} else {
		rep, err = c.engine.Run(budget)
	}
	if err != nil {
		return nil, err
	}
	out := convertReport(rep)
	out.Shards = c.shards
	return out, nil
}

// Close releases the debug link(s) and the board(s).
func (c *Campaign) Close() {
	if c.pool != nil {
		c.pool.Close()
		return
	}
	c.engine.Close()
}

func convertReport(r *core.Report) *Report {
	out := &Report{
		OS:               r.OS,
		Board:            r.Board,
		Execs:            r.Stats.Execs,
		Edges:            r.Edges,
		Crashes:          r.Stats.Crashes,
		Restores:         r.Stats.Restores,
		Reflashes:        r.Stats.Reflashes,
		DegradedMonitors: r.Stats.DegradedMonitors,
		LinkRoundTrips:   r.Stats.LinkOps,
		LinkRetries:      r.Stats.LinkRetries,
		LinkReconnects:   r.Stats.LinkReconnects,
		LinkPerCmd:       r.LinkPerCmd,
		TimeBy:           r.TimeBy,
		Duration:         r.Duration,
	}
	if len(r.Stats.RestoresByReason) > 0 {
		out.RestoresByReason = make(map[string]int, len(r.Stats.RestoresByReason))
		for k, v := range r.Stats.RestoresByReason {
			out.RestoresByReason[k] = v
		}
	}
	for _, b := range r.Bugs {
		nb := Bug{
			OS: b.OS, Board: b.Board, Title: b.Title, Signature: b.Sig,
			Kind: b.Kind, Monitor: b.Monitor, Log: b.Log,
			Reproducer: b.Prog, FoundAt: b.FoundAt, Trace: b.Trace,
		}
		if b.Fault != nil {
			for _, fr := range b.Fault.Frames {
				nb.Backtrace = append(nb.Backtrace, fmt.Sprintf("%s : %s : %d", fr.File, fr.Func, fr.Line))
			}
		}
		out.Bugs = append(out.Bugs, nb)
	}
	for _, s := range r.Series {
		out.Series = append(out.Series, Sample{At: s.At, Edges: s.Edges})
	}
	return out
}

// GenerateSpec runs the specification pipeline for an OS and returns the
// validated Syzlang text plus any declarations that were dropped during
// post-validation.
func GenerateSpec(osName string) (text string, dropped []string, err error) {
	info, err := targets.ByName(osName)
	if err != nil {
		return "", nil, err
	}
	res, err := specgen.Generate(info)
	if err != nil {
		return "", nil, err
	}
	return res.Text, res.Dropped, nil
}
