// Package eof is the public API of EOF, a feedback-guided fuzzer for
// embedded operating systems running on (virtual) hardware, reproducing
// "Effective On-Hardware Fuzzing of Embedded Operating Systems"
// (EuroSys 2026).
//
// A Campaign owns the full stack: the target OS image, a virtual development
// board, the OpenOCD-style debug probe, the specification pipeline and the
// fuzzing engine. All control and observation flows through the debug port,
// exactly as on physical targets:
//
//	c, err := eof.NewCampaign(eof.Options{OS: "rtthread", Board: "esp32c3"})
//	if err != nil { ... }
//	defer c.Close()
//	report, err := c.Run(30 * time.Minute) // virtual time
//	for _, bug := range report.Bugs {
//		fmt.Println(bug.Title)
//	}
package eof

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync/atomic"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/corpus"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/metrics"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/specgen"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
	"github.com/eof-fuzz/eof/internal/triage"
)

// Targets lists the supported embedded OS names.
func Targets() []string { return targets.Names() }

// Boards lists the catalogued board names.
func Boards() []string {
	all := boards.All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}

// Options configures a fuzzing campaign.
type Options struct {
	// OS names the target embedded OS (see Targets).
	OS string
	// Board names the development board (see Boards). Defaults to
	// "stm32h745".
	Board string
	// Seed makes the campaign deterministic. Defaults to 1.
	Seed int64

	// FeedbackDisabled turns off coverage guidance (the paper's EOF-nf).
	FeedbackDisabled bool
	// APIAwareDisabled degenerates argument generation to AFL-style random
	// values (the generation-guidance ablation).
	APIAwareDisabled bool
	// Uninstrumented builds the image without coverage instrumentation
	// (overhead measurements).
	Uninstrumented bool

	// RestrictAPIs limits fuzzing to the named APIs (application-level
	// testing); empty fuzzes the full surface.
	RestrictAPIs []string
	// InstrumentModules confines coverage to source paths with these
	// prefixes; empty instruments the whole image.
	InstrumentModules []string

	// SampleEvery sets the coverage time-series resolution (default 5
	// virtual minutes).
	SampleEvery time.Duration

	// Shards > 1 shards the campaign across a pool of that many virtual
	// boards running concurrently with shared feedback (fleet mode). The
	// budget passed to Run is total board time, split evenly; the report's
	// Duration is the pool's wall-clock (budget/Shards).
	Shards int
	// SyncEvery is the fleet feedback-exchange interval (default 10
	// virtual minutes). Ignored when Shards <= 1.
	SyncEvery time.Duration
	// Spares is the fleet's hot-spare pool size: extra boards held in
	// reserve and promoted into the slot of a board that dies or turns
	// chronically sick, re-seeded from the shared corpus at the next sync
	// barrier. Ignored when Shards <= 1.
	Spares int
	// Tiers enables tiered execution: alongside the hardware pool, a tier
	// of EmulShards emulated boards explores the same campaign at emulation
	// speed, and every corpus admission or crash the tier finds is
	// re-executed on a hardware board at the next sync barrier. Confirmed
	// findings enter the hardware campaign; unconfirmed ones are recorded
	// as cross-tier Divergences on the report. Works with any Shards count
	// (Shards = 1 hardware board confirms by default).
	Tiers bool
	// EmulShards is the emulation tier's width (default 4 when Tiers is
	// set). Ignored unless Tiers is set.
	EmulShards int
	// LegacyLink disables the vectored debug-link commands, forcing the
	// multi-round-trip sequences older probe firmware needs.
	LegacyLink bool
	// Snapshots enables the snapshot/delta restore rung: the probe caches a
	// golden snapshot at interesting kernel states and most restores become
	// one vRestore round trip shipping only dirty state, instead of a full
	// reboot (or reflash+reboot). Requires a vectored-capable probe: with
	// LegacyLink every restore silently falls back to the classic ladder.
	Snapshots bool
	// SnapshotStates selects which kernel states snapshots are (re-)taken
	// at, as a comma-separated subset of "post-boot,post-init". Empty means
	// both. Ignored unless Snapshots is set.
	SnapshotStates string

	// Triage enables the crash-triage pipeline: every finding is replayed on
	// freshly restored state to classify its reproducibility (stable / flaky
	// / unreproducible), then ddmin-minimized while its crash cluster keeps
	// matching. Solo campaigns triage between fuzzing iterations; fleets
	// dedicate one extra board and triage at sync barriers, so confirmation
	// happens on different hardware than discovery. Replay cost lands in the
	// report's "triaging" time bucket.
	Triage bool
	// TriageReplays is the confirmation replay count per finding (default 3).
	TriageReplays int

	// LinkFaultRate injects deterministic debug-link faults at this
	// per-command rate (flaky-adapter modelling): 60% dropped frames, 20%
	// corrupt frames, 10% late frames, 10% adapter stalls. The session
	// layer absorbs them via retries and reconnects; see the report's
	// LinkRetries/LinkReconnects. Zero (the default) injects nothing.
	LinkFaultRate float64
	// LinkRetries bounds the session layer's transparent per-command
	// retries (0 = default of 4, negative disables retries so every fault
	// surfaces to the liveness watchdogs).
	LinkRetries int

	// TraceJSONL, when non-nil, streams the campaign's structured trace
	// journal to the writer as JSON Lines — one event per line, stamped
	// with virtual time, shard and sequence number. In fleet mode events
	// are merged in shard order at every sync barrier, so the journal is
	// deterministic for a fixed seed.
	TraceJSONL io.Writer
	// StatusEvery, when positive, prints a live one-line progress summary
	// (execs/s, edges, restore rate, link health) every host-time interval
	// to StatusWriter.
	StatusEvery time.Duration
	// StatusWriter receives the live status lines (default os.Stderr).
	StatusWriter io.Writer
	// MetricsAddr, when non-empty, serves campaign telemetry over HTTP on
	// this address while Run executes: Prometheus text exposition at
	// /metrics, a JSON status document (per-shard and per-tier breakdown) at
	// /status, and net/http/pprof at /debug/pprof/. ":0" picks a free port —
	// see Campaign.MetricsAddr. The metric registry subscribes to the same
	// trace stream as the journal, so enabling it never perturbs journals or
	// reports.
	MetricsAddr string
	// FlightRecorder overrides the size of the pre-crash event ring
	// attached to every Bug (0 = the default of 64 events).
	FlightRecorder int

	// CorpusDir, when non-empty, makes the campaign crash-safe: every corpus
	// admission is written to a content-addressed on-disk store under this
	// directory (namespaced by OS and board), and the full resumable campaign
	// state — corpus membership, cumulative coverage, crash clusters,
	// per-shard RNG cursors and elapsed virtual time — is checkpointed at
	// every sync barrier with write-ahead, atomically renamed, fsynced
	// writes. A kill -9 loses at most the epoch in flight. Persistence runs
	// between epochs and journals on its own campaign-level stream
	// (shard -1), so reports and per-shard journals are byte-identical with
	// it on or off.
	CorpusDir string
	// CorpusNamespace isolates this campaign's store under
	// <CorpusDir>/ns/<namespace>/<os>/<board> instead of the shared
	// per-target layout — the daemon gives every job its own namespace so
	// many campaigns can persist into one store root without mixing
	// corpora. Single path segment of [a-zA-Z0-9._-]; ignored when
	// CorpusDir is empty.
	CorpusNamespace string
	// Resume, with CorpusDir set, rebuilds the campaign from the store's
	// last good checkpoint before fuzzing: persisted seeds rejoin every
	// corpus, checkpointed edges become pre-seen, known crash clusters are
	// not re-reported, and the RNG continues from the checkpoint's recorded
	// cursor, so resuming twice from the same checkpoint explores
	// identically. Corrupt or torn store files are quarantined under
	// <CorpusDir>/damaged/ and the campaign degrades to the previous good
	// checkpoint instead of failing.
	Resume bool
	// DistillEvery, when positive, distills the on-disk store every that
	// many checkpoints: the manifest is rewritten to a minimal set of
	// entries covering the union of attributed edges (greedy set cover in
	// admission order) and unreferenced blobs are removed. Only the store
	// shrinks — the running campaign's in-memory corpus is untouched.
	DistillEvery int

	// Health tunes the escalating recovery ladder and the per-board health
	// score; zero fields take the documented defaults.
	Health HealthOptions
	// Degrade configures the virtual board's degradation model; the zero
	// value is a perfect board.
	Degrade DegradeOptions
}

// HealthOptions tunes the escalating recovery ladder (reset -> reflash ->
// power-cycle) and the per-board health score. Zero fields take the
// defaults noted per field.
type HealthOptions struct {
	// ResetAttempts, ReflashAttempts and PowerCycleAttempts budget the
	// three ladder rungs (defaults 1, 1, 2). Exhausting every rung marks
	// the board dead.
	ResetAttempts      int
	ReflashAttempts    int
	PowerCycleAttempts int
	// MaxResumes bounds the post-boot resume loop that re-synchronises at
	// the executor entry point (default 32); exhaustion escalates the
	// ladder instead of failing the campaign.
	MaxResumes int
	// Decay is the EWMA weight of the newest restore outcome in the health
	// score (default 0.25).
	Decay float64
	// SickThreshold is the health score below which a fleet supervisor
	// quarantines the board when a spare is available (default 0.3).
	SickThreshold float64
}

// DegradeOptions makes the virtual board age and fail like real hardware:
// wear-limited flash sectors, intermittent boot failures and permanent
// death. The zero value is a perfect board; all failures are drawn from a
// seeded RNG, so campaigns stay deterministic.
type DegradeOptions struct {
	// WearLimit fails a flash sector's erase/program once its erase count
	// exceeds this limit (0 = no wear). WearFailStreak is how many
	// consecutive operations on a worn sector fail before it recovers
	// (default 1).
	WearLimit      int
	WearFailStreak int
	// BootFailRate is the probability a boot transiently fails (board
	// stays off, a retry may succeed). A cold power-cycle boot halves it.
	BootFailRate float64
	// DeathRate is the per-boot probability of permanent hardware death;
	// DieAfterBoots kills the board deterministically on its Nth boot
	// attempt (0 = never).
	DeathRate     float64
	DieAfterBoots int
	// Seed decouples the degradation RNG from the campaign seed
	// (0 = derive from the campaign seed).
	Seed int64
}

// Bug is one deduplicated finding.
type Bug struct {
	// OS and Board locate the campaign.
	OS    string
	Board string
	// Title is a one-line description; Signature deduplicates.
	Title     string
	Signature string
	// Kind is "panic" or "assert"; Monitor is the detector that attributed
	// it ("exception" or "log").
	Kind    string
	Monitor string
	// Backtrace holds "file : function : line" frames, innermost first.
	Backtrace []string
	// Log is the UART context captured around the crash.
	Log []string
	// Reproducer is the triggering program in textual form.
	Reproducer string
	// FoundAt is the virtual campaign time of discovery.
	FoundAt time.Duration
	// Trace is the flight recorder: the last trace events the finding
	// shard emitted before detection, oldest first.
	Trace []trace.Event

	// Cluster is the normalized crash-clustering key (frame hash for faults,
	// canonicalized expression for asserts); findings with equal clusters are
	// the same bug.
	Cluster string
	// Triage outcome, zero unless the campaign ran with Options.Triage:
	// Reproducibility is "stable", "flaky" or "unreproducible" after Replays
	// confirmation replays, ReplayHits of which reproduced the cluster.
	Reproducibility string
	ReplayHits      int
	Replays         int
	// OrigCalls and MinCalls record the minimization ratio; ReproJSON is the
	// minimized program in portable JSON form (see ReproFile).
	OrigCalls int
	MinCalls  int
	ReproJSON string
}

// ReproFile renders a triaged finding as a portable repro file that
// ReplayRepro (and `eof -replay`) can confirm on a fresh board.
func (b *Bug) ReproFile() ([]byte, error) {
	if b.ReproJSON == "" {
		return nil, fmt.Errorf("eof: bug %q has no serialized reproducer (campaign ran without triage?)", b.Signature)
	}
	r := &triage.Repro{
		OS:              b.OS,
		Board:           b.Board,
		Cluster:         b.Cluster,
		Sig:             b.Signature,
		Kind:            b.Kind,
		Monitor:         b.Monitor,
		Title:           b.Title,
		Reproducibility: b.Reproducibility,
		ReplayHits:      b.ReplayHits,
		Replays:         b.Replays,
		OrigCalls:       b.OrigCalls,
		MinCalls:        b.MinCalls,
		Prog:            []byte(b.ReproJSON),
	}
	return r.Encode()
}

// ReplayResult is the outcome of confirming a repro file on a fresh board.
type ReplayResult struct {
	OS        string
	Board     string
	Cluster   string
	Signature string
	Title     string
	// Hits of Replays runs reproduced the recorded cluster; Confirmed is
	// Hits > 0.
	Hits      int
	Replays   int
	Confirmed bool
}

// ReplayRepro parses a repro file produced by a triage-enabled campaign,
// builds a fresh campaign stack for its recorded OS and board, and replays
// the program (replays = 0 uses the file's recorded count, else 3). This is
// the cross-board confirmation path: the replaying board shares nothing with
// the one that found the bug.
func ReplayRepro(data []byte, replays int) (*ReplayResult, error) {
	r, err := triage.ParseRepro(data)
	if err != nil {
		return nil, err
	}
	info, err := targets.ByName(r.OS)
	if err != nil {
		return nil, err
	}
	spec := boards.ByName(r.Board)
	if spec == nil {
		return nil, fmt.Errorf("eof: repro file names unknown board %q (have %v)", r.Board, Boards())
	}
	e, err := core.NewEngine(core.DefaultConfig(info, spec))
	if err != nil {
		return nil, err
	}
	defer e.Close()
	p, err := e.ParseProgJSON(r.Prog)
	if err != nil {
		return nil, fmt.Errorf("eof: repro program: %w", err)
	}
	cluster := r.Cluster
	if cluster == "" {
		cluster = triage.Cluster(nil, r.Sig)
	}
	if replays <= 0 {
		replays = r.Replays
	}
	if replays <= 0 {
		replays = 3
	}
	hits, err := e.ConfirmRepro(p, cluster, replays)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		OS: r.OS, Board: r.Board, Cluster: cluster, Signature: r.Sig, Title: r.Title,
		Hits: hits, Replays: replays, Confirmed: hits > 0,
	}, nil
}

// Sample is one coverage-over-time point.
type Sample struct {
	At    time.Duration
	Edges int
}

// Report summarises a finished campaign.
type Report struct {
	OS    string
	Board string
	// Shards is the board-pool size the campaign ran on (1 = solo).
	Shards int
	// Execs counts completed test cases; Edges is distinct branch coverage.
	Execs int
	Edges int
	// Crashes, Restores and Reflashes count liveness events: detected
	// crashes, state restorations, and restorations that needed a full
	// image reflash.
	Crashes   int
	Restores  int
	Reflashes int
	// RestoresByReason breaks Restores down by trigger ("crash", "fault",
	// "timeout", "pc-stall", ...).
	RestoresByReason map[string]int
	// RungEscalations counts recovery-ladder climbs past a failed rung;
	// PowerCycles counts full power cycles (the ladder's last rung).
	RungEscalations int
	PowerCycles     int
	// DeltaRestores counts restores satisfied by the snapshot rung in one
	// vRestore round trip; FullRestores counts restores that walked the
	// classic ladder. They always sum to Restores. SnapshotTakes counts
	// golden snapshots cached probe-side. All zero unless Options.Snapshots.
	DeltaRestores int
	FullRestores  int
	SnapshotTakes int
	// RestoreBytesShipped and RestoreBytesSkipped total the delta restores'
	// re-shipped bytes vs bytes proven clean and left in place — the wire
	// traffic the dirty tracking saved.
	RestoreBytesShipped int64
	RestoreBytesSkipped int64
	// DegradedMonitors counts exception symbols left unarmed because the
	// board ran out of breakpoint comparators.
	DegradedMonitors int
	// LinkRoundTrips is the total number of debug-link commands issued
	// (including retried attempts); divide by Execs for the per-exec
	// transport cost.
	LinkRoundTrips int64
	// LinkRetries counts commands transparently re-sent after a transient
	// link fault; LinkReconnects counts recovered link deaths (adapter
	// revived, breakpoints re-armed). Both are zero on a healthy link.
	LinkRetries    int64
	LinkReconnects int64
	// LinkPerCmd is the per-command round-trip accounting from the link
	// metrics layer: count, total and mean virtual latency per command,
	// sorted by command name.
	LinkPerCmd []link.CmdStat
	// TriagedBugs counts findings the triage pipeline processed;
	// TriageReplays counts the replay executions it spent (both zero when
	// Options.Triage is off).
	TriagedBugs   int
	TriageReplays int
	// TimeBy breaks board time down by activity: executing, restoring,
	// reflashing, link overhead, triaging and (fleet) sync-barrier idling.
	// Solo it sums to Duration exactly; in fleet mode it sums activated-board
	// time, i.e. activated boards x Duration.
	TimeBy trace.TimeBy
	Bugs   []Bug
	Series []Sample
	// Duration is the campaign's virtual runtime. In fleet mode shards run
	// concurrently, so this is the pool's wall-clock, not summed board time.
	Duration time.Duration
	// Health is the board's final condition (in fleet mode, the pool's
	// sickest board); BoardHealth lists every activated board in
	// physical-pool order (nil in solo mode).
	Health      HealthReport
	BoardHealth []HealthReport
	// Quarantines lists the boards the fleet supervisor retired, in
	// supervision order (nil in solo mode or on a healthy fleet).
	Quarantines []QuarantineEvent
	// Tiers breaks the campaign down by execution tier (hardware first,
	// then emulation). Nil unless the campaign ran with Options.Tiers.
	Tiers []TierReport
	// Divergences lists every cross-tier disagreement the confirmation
	// replays uncovered. Nil unless the campaign ran with Options.Tiers.
	Divergences []Divergence
	// Persist summarises the durable store. Nil unless the campaign ran
	// with Options.CorpusDir.
	Persist *PersistReport
}

// PersistReport summarises what the persistence layer did during a campaign
// run with Options.CorpusDir.
type PersistReport struct {
	// Dir is the store's namespaced directory (<CorpusDir>/<os>/<board>).
	Dir string
	// Entries is the store's final corpus size; Admitted counts the new
	// entries this run persisted (deduplicated re-admissions excluded).
	Entries  int
	Admitted int
	// Checkpoints counts the epoch checkpoints this run committed; Distills
	// the store distillations, which removed Dropped entries in total.
	Checkpoints int
	Distills    int
	Dropped     int
	// Resumed reports whether the campaign continued from a checkpoint;
	// ResumedSeeds counts the persisted programs that re-entered the corpus,
	// and PriorEpochs/PriorElapsed the resumed history carried forward.
	Resumed      bool
	ResumedSeeds int
	PriorEpochs  int
	PriorElapsed time.Duration
	// Warnings lists recoverable store damage encountered (torn manifest
	// lines, corrupt blobs or checkpoints — all quarantined, none fatal).
	Warnings []string
}

// TierReport summarises one execution tier of a tiered campaign.
type TierReport struct {
	// Class is "hw" (ground truth) or "emul" (the explore tier).
	Class string
	// Boards counts the tier's activated boards, Execs their summed test
	// cases and Edges the tier's distinct branch coverage (for "hw" this
	// equals the report's Edges).
	Boards int
	Execs  int
	Edges  int
	// TimeBy is the tier's summed board-time budget.
	TimeBy trace.TimeBy
	// Series is the tier's coverage growth sampled at epoch barriers.
	Series []Sample
	// ConfirmReplays counts hardware re-executions of emulation-tier
	// findings (hardware tier only); Confirmed and Diverged count how many
	// emulation findings those replays reproduced vs contradicted.
	ConfirmReplays int
	Confirmed      int
	Diverged       int
}

// Divergence is one cross-tier disagreement: something one tier observed
// that the other did not when re-executing the same program.
type Divergence struct {
	// Kind is "emul-only-cov" (claimed edges hardware never executed),
	// "emul-only-crash" (an emulation crash hardware cannot reproduce) or
	// "hw-only-crash" (a hardware crash the emulation run never hit).
	Kind string
	// Cluster is the crash cluster, for crash divergences.
	Cluster string
	// Edges counts the emulation-claimed edges the hardware replay never
	// executed, for coverage divergences.
	Edges int
	// Prog is the diverging program in textual form; Shard is the emulation
	// shard (physical pool index) that proposed it; At is the pool
	// wall-clock time of the confirmation replay.
	Prog  string
	Shard int
	At    time.Duration
}

// HealthReport is one board's accumulated condition record.
type HealthReport struct {
	// Score is an EWMA over restore outcomes in [0, 1], starting at 1; a
	// board that keeps needing the deeper recovery rungs drifts toward 0.
	Score float64
	// Restores, Reflashes and PowerCycles count recovery actions;
	// Escalations counts ladder climbs past a failed rung.
	Restores    int
	Reflashes   int
	PowerCycles int
	Escalations int
	// Dead marks permanent hardware death.
	Dead bool
}

// QuarantineEvent records one board the fleet supervisor removed from the
// pool, and the hot spare (if any) promoted into its slot.
type QuarantineEvent struct {
	// Slot is the shard slot the board was serving; Board is its physical
	// pool index (spares start at Shards).
	Slot  int
	Board int
	// Spare is the physical index of the promoted replacement, or -1 when
	// the spare pool was empty and the slot went unmanned.
	Spare int
	// Reason is "dead" (permanent hardware death) or "sick" (health score
	// below the configured threshold).
	Reason string
	// At is the pool wall-clock time of the quarantine.
	At time.Duration
	// Health is the board's final health record.
	Health HealthReport
	// Tier is the tier the board served ("" or "hw" for the hardware pool,
	// "emul" for an emulation explore shard).
	Tier string
}

// Campaign is one configured fuzzing run.
type Campaign struct {
	engine *core.Engine // solo mode
	pool   *fleet.Fleet // fleet mode (Shards > 1)
	shards int

	metricsSink *metrics.Sink   // non-nil with Options.MetricsAddr
	metricsSrv  *metrics.Server // ditto

	// Persistence state (Options.CorpusDir). syncEvery is the solo-mode
	// checkpoint cadence; stop mirrors the engines' stop flags so the solo
	// persist loop drains after the current epoch's checkpoint.
	persist      *corpus.Persister
	syncEvery    time.Duration
	stop         atomic.Bool
	resumed      bool
	resumedSeeds int
	priorEpochs  int
	priorElapsed time.Duration
}

// MetricsAddr returns the telemetry server's bound address (useful when
// Options.MetricsAddr was ":0"), or "" when the campaign serves no metrics.
func (c *Campaign) MetricsAddr() string {
	if c.metricsSrv == nil {
		return ""
	}
	return c.metricsSrv.Addr()
}

func (c *Campaign) closeMetrics() {
	if c.metricsSrv != nil {
		_ = c.metricsSrv.Close()
	}
}

// NewCampaign builds the full stack for the given options.
func NewCampaign(opts Options) (*Campaign, error) {
	info, err := targets.ByName(opts.OS)
	if err != nil {
		return nil, err
	}
	boardName := opts.Board
	if boardName == "" {
		boardName = boards.NameSTM32H745
	}
	spec := boards.ByName(boardName)
	if spec == nil {
		return nil, fmt.Errorf("eof: unknown board %q (have %v)", boardName, Boards())
	}
	cfg := core.DefaultConfig(info, spec)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	// Open the durable store (and load any resume state) before anything
	// derives from the seed: a resumed campaign continues from the
	// checkpoint's NextSeed, and the journal header below records it.
	var store *corpus.Store
	var resume *corpus.Resume
	if opts.Resume && opts.CorpusDir == "" {
		return nil, fmt.Errorf("eof: Resume requires CorpusDir")
	}
	if opts.CorpusDir != "" {
		s, err := corpus.OpenNamespace(opts.CorpusDir, opts.CorpusNamespace, info.Name, boardName)
		if err != nil {
			return nil, err
		}
		store = s
		if opts.Resume {
			r, err := s.LoadResume()
			if err != nil {
				return nil, err
			}
			resume = r
			if r.Ck != nil {
				cfg.Seed = r.Ck.NextSeed
			}
		}
	}
	cfg.FeedbackGuided = !opts.FeedbackDisabled
	cfg.APIAware = !opts.APIAwareDisabled
	cfg.Instrumented = !opts.Uninstrumented
	cfg.CallFilter = opts.RestrictAPIs
	cfg.CovModules = opts.InstrumentModules
	cfg.LegacyLink = opts.LegacyLink
	cfg.Snapshots = opts.Snapshots
	cfg.SnapshotStates = opts.SnapshotStates
	if opts.LinkFaultRate > 0 {
		// Zero fault seed: each engine (and fleet shard) derives its own
		// deterministic fault sequence from its campaign seed.
		cfg.LinkFaults = link.Profile(opts.LinkFaultRate, 0)
	}
	cfg.LinkRetries = opts.LinkRetries
	cfg.Triage.Enabled = opts.Triage
	cfg.Triage.Replays = opts.TriageReplays
	cfg.Health = core.HealthConfig{
		ResetAttempts:      opts.Health.ResetAttempts,
		ReflashAttempts:    opts.Health.ReflashAttempts,
		PowerCycleAttempts: opts.Health.PowerCycleAttempts,
		MaxResumes:         opts.Health.MaxResumes,
		Decay:              opts.Health.Decay,
		SickThreshold:      opts.Health.SickThreshold,
	}
	cfg.Degrade = board.DegradeConfig{
		// Zero degrade seed: each engine (and fleet shard) ages under its
		// own deterministic sequence derived from its campaign seed.
		Seed:           opts.Degrade.Seed,
		WearLimit:      opts.Degrade.WearLimit,
		WearFailStreak: opts.Degrade.WearFailStreak,
		BootFailRate:   opts.Degrade.BootFailRate,
		DeathRate:      opts.Degrade.DeathRate,
		DieAfterBoots:  opts.Degrade.DieAfterBoots,
	}
	if opts.SampleEvery > 0 {
		cfg.SampleEvery = opts.SampleEvery
	}
	cfg.FlightRecorder = opts.FlightRecorder
	emulShards := 0
	if opts.Tiers {
		emulShards = opts.EmulShards
		if emulShards <= 0 {
			emulShards = 4
		}
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	fleetMode := shards > 1 || emulShards > 0
	// emulStart is the emulation tier's first physical board index: the
	// hardware slots, then the spares, then the triage board when manned.
	emulStart := -1
	if emulShards > 0 {
		emulStart = shards + opts.Spares
		if opts.Triage {
			emulStart++
		}
	}
	if opts.TraceJSONL != nil {
		hdr := trace.Header{
			OS: info.Name, Board: boardName, Seed: cfg.Seed, Shards: shards,
			EmulShards: emulShards, Digest: optionsDigest(opts),
		}
		if fleetMode {
			hdr.Spares = opts.Spares
			hdr.Triage = opts.Triage
		}
		if _, err := opts.TraceJSONL.Write(trace.AppendHeaderJSON(nil, hdr)); err != nil {
			return nil, fmt.Errorf("eof: journal header: %w", err)
		}
		cfg.TraceSink = trace.NewJSONL(opts.TraceJSONL)
	}
	if opts.StatusEvery > 0 {
		w := opts.StatusWriter
		if w == nil {
			w = os.Stderr
		}
		status := trace.NewStatus(w, opts.StatusEvery)
		status.SetEmulStart(emulStart)
		cfg.StatusSink = status
	}
	c := &Campaign{shards: shards}
	if store != nil {
		popts := corpus.PersisterOptions{
			Seed:         cfg.Seed,
			DistillEvery: opts.DistillEvery,
			Sink:         cfg.TraceSink,
		}
		if resume != nil && resume.Ck != nil {
			popts.PriorEpochs = resume.Ck.Epoch
			popts.PriorElapsed = resume.Ck.Elapsed
			popts.Clusters = resume.Ck.Clusters
			c.resumed = true
			c.priorEpochs = resume.Ck.Epoch
			c.priorElapsed = resume.Ck.Elapsed
		} else if resume != nil {
			c.resumed = true
		}
		c.persist = corpus.NewPersister(store, popts)
		c.syncEvery = opts.SyncEvery
		if c.syncEvery <= 0 {
			c.syncEvery = fleet.DefaultSyncEvery
		}
	}
	if opts.MetricsAddr != "" {
		reg := metrics.NewRegistry()
		c.metricsSink = metrics.NewSink(reg, emulStart)
		srv, err := metrics.Serve(opts.MetricsAddr, reg, c.metricsSink.Status)
		if err != nil {
			return nil, err
		}
		c.metricsSrv = srv
		// The registry rides the live sink path next to the status line;
		// the deterministic journal path is untouched.
		cfg.StatusSink = trace.Multi(cfg.StatusSink, c.metricsSink)
	}
	if fleetMode {
		pool, err := fleet.New(cfg, fleet.Options{
			Shards:     opts.Shards,
			SyncEvery:  opts.SyncEvery,
			Spares:     opts.Spares,
			EmulShards: emulShards,
			Persist:    c.persist,
		})
		if err != nil {
			c.closeMetrics()
			return nil, err
		}
		c.pool = pool
		if resume != nil {
			d, clusters, seeds := buildResumeDelta(pool.Engines()[0].ParseProgJSON, resume)
			pool.SeedFrom(d, clusters)
			c.resumedSeeds = seeds
		}
		return c, nil
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		c.closeMetrics()
		return nil, err
	}
	c.engine = engine
	if resume != nil {
		d, clusters, seeds := buildResumeDelta(engine.ParseProgJSON, resume)
		engine.ImportSyncDelta(d)
		engine.MarkKnownClusters(clusters)
		c.resumedSeeds = seeds
	}
	return c, nil
}

// buildResumeDelta converts persisted store state into the sync delta that
// re-seeds a campaign: the checkpoint's cumulative edges plus every verified
// corpus entry (manifest entries persisted after the last checkpoint
// included — work from the interrupted epoch is kept, never lost). A blob
// that no longer parses under the current spec is skipped; the hash check in
// the store already proved it undamaged, so a parse failure means the spec
// drifted, not the disk.
func buildResumeDelta(parse func([]byte) (*prog.Prog, error), r *corpus.Resume) (core.SyncDelta, []string, int) {
	var d core.SyncDelta
	var clusters []string
	if r.Ck != nil {
		d.Edges = append(d.Edges, r.Ck.Edges...)
		clusters = r.Ck.Clusters
	}
	seeds := 0
	for _, en := range r.Entries {
		p, err := parse(en.Prog)
		if err != nil {
			continue
		}
		d.Seeds = append(d.Seeds, core.SeedShare{
			P: p, NewEdges: en.NewEdges, Edges: append([]uint32(nil), en.Edges...),
		})
		d.Edges = append(d.Edges, en.Edges...)
		seeds++
	}
	return d, clusters, seeds
}

// optionsDigest fingerprints the campaign options for the journal header:
// FNV-64a over their canonical rendering, with the observability attachments
// (writers, status interval, metrics address) zeroed so replaying the same
// campaign with different telemetry wiring yields the same digest.
func optionsDigest(opts Options) string {
	opts.TraceJSONL = nil
	opts.StatusWriter = nil
	opts.StatusEvery = 0
	opts.MetricsAddr = ""
	// Persistence never perturbs the campaign (checkpointing runs between
	// epochs on its own journal stream), so the store attachment is zeroed
	// too: a persisted run and a plain run of the same campaign share a
	// digest. Resume stays in — it changes the starting state.
	opts.CorpusDir = ""
	opts.CorpusNamespace = ""
	opts.DistillEvery = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", opts)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run fuzzes for the given virtual-time budget and returns the report. In
// fleet mode the budget is total board time, split evenly across the pool.
// Run may be called once per campaign.
func (c *Campaign) Run(budget time.Duration) (*Report, error) {
	var rep *core.Report
	var err error
	switch {
	case c.pool != nil:
		rep, err = c.pool.Run(budget)
	case c.persist != nil:
		rep, err = c.runSoloPersist(budget)
	default:
		rep, err = c.engine.Run(budget)
	}
	if err != nil {
		return nil, err
	}
	out := convertReport(rep)
	out.Shards = c.shards
	out.Persist = c.persistReport()
	if c.metricsSink != nil {
		// Pin the scraped counters to the authoritative report: a scrape
		// after Run equals the Report field for field.
		c.metricsSink.PublishFinal(finalOf(out))
	}
	return out, nil
}

// RequestStop asks the campaign to drain gracefully: every engine stops at
// its next iteration boundary, the current epoch's barrier runs normally —
// including the final durable checkpoint when CorpusDir is set — and Run
// returns the report for the completed portion. Safe to call from another
// goroutine (signal handlers).
func (c *Campaign) RequestStop() {
	c.stop.Store(true)
	if c.pool != nil {
		c.pool.RequestStop()
		return
	}
	c.engine.RequestStop()
}

// runSoloPersist is engine.Run with the budget cut into checkpoint epochs:
// RunFor slices toward absolute virtual deadlines, with a persistence barrier
// after each slice. Because the engine checks its deadline only between
// iterations and the barrier touches no engine state (the sync delta it
// drains is solo-idle), the iteration sequence — and thus the journal and
// report — is exactly what one unsliced RunFor would produce.
func (c *Campaign) runSoloPersist(budget time.Duration) (*core.Report, error) {
	e := c.engine
	if err := e.Setup(); err != nil {
		return nil, err
	}
	clock := e.Clock()
	start := clock.Now()
	end := start + budget
	for epoch := 1; clock.Now() < end; epoch++ {
		slice := c.syncEvery
		if rem := end - clock.Now(); slice > rem {
			slice = rem
		}
		if err := e.RunFor(slice); err != nil {
			return nil, err
		}
		if err := c.soloBarrier(epoch, clock.Now()-start); err != nil {
			return nil, err
		}
		if c.stop.Load() {
			break
		}
	}
	rep := e.Report()
	e.EmitTimeBudget(rep.TimeBy, rep.Duration)
	return rep, nil
}

// soloBarrier persists one solo epoch: the slice's corpus admissions (the
// engine's drained sync delta), the cumulative collector edges, the known
// crash clusters and the single shard cursor.
func (c *Campaign) soloBarrier(epoch int, elapsed time.Duration) error {
	e := c.engine
	d := e.DrainSyncDelta()
	b := corpus.Barrier{
		Epoch:    epoch,
		Elapsed:  elapsed,
		Edges:    e.CollectorEdges(),
		Clusters: e.KnownClusters(),
		Cursors:  []corpus.ShardCursor{{Shard: 0, Execs: e.Execs()}},
	}
	for _, s := range d.Seeds {
		blob, err := prog.ToJSON(s.P)
		if err != nil {
			return fmt.Errorf("eof: persist seed: %w", err)
		}
		b.Admissions = append(b.Admissions, corpus.Admission{
			Prog: blob, NewEdges: s.NewEdges, Edges: s.Edges,
		})
	}
	return c.persist.Barrier(b)
}

// persistReport snapshots the persistence layer for the public report (nil
// without Options.CorpusDir).
func (c *Campaign) persistReport() *PersistReport {
	if c.persist == nil {
		return nil
	}
	st := c.persist.Stats()
	return &PersistReport{
		Dir:          c.persist.Store().Dir(),
		Entries:      st.Entries,
		Admitted:     st.Admitted,
		Checkpoints:  st.Checkpoints,
		Distills:     st.Distills,
		Dropped:      st.Dropped,
		Resumed:      c.resumed,
		ResumedSeeds: c.resumedSeeds,
		PriorEpochs:  c.priorEpochs,
		PriorElapsed: c.priorElapsed,
		Warnings:     c.persist.Store().Warnings(),
	}
}

// finalOf converts the public report into the metrics publish record.
func finalOf(r *Report) metrics.Final {
	f := metrics.Final{
		Execs:          r.Execs,
		Edges:          r.Edges,
		Restores:       r.Restores,
		ByReason:       r.RestoresByReason,
		DeltaRestores:  r.DeltaRestores,
		FullRestores:   r.FullRestores,
		Bugs:           len(r.Bugs),
		LinkRetries:    r.LinkRetries,
		LinkReconnects: r.LinkReconnects,
		Quarantines:    len(r.Quarantines),
		TimeBy:         r.TimeBy,
		Duration:       r.Duration,
	}
	if len(r.Tiers) > 0 {
		f.TierExecs = make(map[string]int, len(r.Tiers))
		for _, t := range r.Tiers {
			f.TierExecs[t.Class] = t.Execs
		}
	}
	return f
}

// Close releases the debug link(s) and the board(s), and shuts down the
// telemetry server if one is running.
func (c *Campaign) Close() {
	c.closeMetrics()
	if c.pool != nil {
		c.pool.Close()
		return
	}
	c.engine.Close()
}

func convertReport(r *core.Report) *Report {
	out := &Report{
		OS:                  r.OS,
		Board:               r.Board,
		Execs:               r.Stats.Execs,
		Edges:               r.Edges,
		Crashes:             r.Stats.Crashes,
		Restores:            r.Stats.Restores,
		Reflashes:           r.Stats.Reflashes,
		DegradedMonitors:    r.Stats.DegradedMonitors,
		LinkRoundTrips:      r.Stats.LinkOps,
		LinkRetries:         r.Stats.LinkRetries,
		LinkReconnects:      r.Stats.LinkReconnects,
		LinkPerCmd:          r.LinkPerCmd,
		TriagedBugs:         r.Stats.TriagedBugs,
		TriageReplays:       r.Stats.TriageReplays,
		TimeBy:              r.TimeBy,
		Duration:            r.Duration,
		RungEscalations:     r.Stats.RungEscalations,
		PowerCycles:         r.Stats.PowerCycles,
		DeltaRestores:       r.Stats.DeltaRestores,
		FullRestores:        r.Stats.FullRestores,
		SnapshotTakes:       r.Stats.SnapshotTakes,
		RestoreBytesShipped: r.Stats.RestoreBytesShipped,
		RestoreBytesSkipped: r.Stats.RestoreBytesSkipped,
		Health:              convertHealth(r.Health),
	}
	for _, h := range r.BoardHealth {
		out.BoardHealth = append(out.BoardHealth, convertHealth(h))
	}
	for _, q := range r.Quarantines {
		out.Quarantines = append(out.Quarantines, QuarantineEvent{
			Slot: q.Slot, Board: q.Board, Spare: q.Spare,
			Reason: q.Reason, At: q.At, Health: convertHealth(q.Health),
			Tier: q.Tier,
		})
	}
	for _, t := range r.Tiers {
		tr := TierReport{
			Class: t.Class, Boards: t.Boards, Execs: t.Execs, Edges: t.Edges,
			TimeBy: t.TimeBy, ConfirmReplays: t.ConfirmReplays,
			Confirmed: t.Confirmed, Diverged: t.Diverged,
		}
		for _, s := range t.Series {
			tr.Series = append(tr.Series, Sample{At: s.At, Edges: s.Edges})
		}
		out.Tiers = append(out.Tiers, tr)
	}
	for _, d := range r.Divergences {
		out.Divergences = append(out.Divergences, Divergence{
			Kind: d.Kind, Cluster: d.Cluster, Edges: d.Edges,
			Prog: d.Prog, Shard: d.Shard, At: d.At,
		})
	}
	if len(r.Stats.RestoresByReason) > 0 {
		out.RestoresByReason = make(map[string]int, len(r.Stats.RestoresByReason))
		for k, v := range r.Stats.RestoresByReason {
			out.RestoresByReason[k] = v
		}
	}
	for _, b := range r.Bugs {
		nb := Bug{
			OS: b.OS, Board: b.Board, Title: b.Title, Signature: b.Sig,
			Kind: b.Kind, Monitor: b.Monitor, Log: b.Log,
			Reproducer: b.Prog, FoundAt: b.FoundAt, Trace: b.Trace,
			Cluster: b.Cluster, Reproducibility: b.Reproducibility,
			ReplayHits: b.ReplayHits, Replays: b.Replays,
			OrigCalls: b.OrigCalls, MinCalls: b.MinCalls, ReproJSON: b.Repro,
		}
		if b.Fault != nil {
			for _, fr := range b.Fault.Frames {
				nb.Backtrace = append(nb.Backtrace, fmt.Sprintf("%s : %s : %d", fr.File, fr.Func, fr.Line))
			}
		}
		out.Bugs = append(out.Bugs, nb)
	}
	for _, s := range r.Series {
		out.Series = append(out.Series, Sample{At: s.At, Edges: s.Edges})
	}
	return out
}

func convertHealth(h core.Health) HealthReport {
	return HealthReport{
		Score: h.Score, Restores: h.Restores, Reflashes: h.Reflashes,
		PowerCycles: h.PowerCycles, Escalations: h.Escalations, Dead: h.Dead,
	}
}

// GenerateSpec runs the specification pipeline for an OS and returns the
// validated Syzlang text plus any declarations that were dropped during
// post-validation.
func GenerateSpec(osName string) (text string, dropped []string, err error) {
	info, err := targets.ByName(osName)
	if err != nil {
		return "", nil, err
	}
	res, err := specgen.Generate(info)
	if err != nil {
		return "", nil, err
	}
	return res.Text, res.Dropped, nil
}
