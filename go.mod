module github.com/eof-fuzz/eof

go 1.22
