// Command experiments regenerates the paper's tables and figures.
//
//	experiments -all -hours 24 -runs 5 -csv out/
//	experiments -table 3 -hours 2 -runs 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/eof-fuzz/eof/internal/experiments"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-4)")
		figure   = flag.Int("figure", 0, "regenerate one figure (7 or 8)")
		overhead = flag.String("overhead", "", "overhead experiment: mem or exec")
		ablation = flag.String("ablation", "", "ablation: watchdogs, generation, link, resilience, restore, tier or persist")
		acct     = flag.Bool("accounting", false, "board-time accounting breakdown (E-time)")
		triage   = flag.Bool("triage", false, "crash-triage evaluation: repro rate and minimization (E-triage)")
		all      = flag.Bool("all", false, "run the full evaluation")
		hours    = flag.Float64("hours", 24, "virtual campaign hours")
		runs     = flag.Int("runs", 5, "repetitions per configuration")
		parallel = flag.Int("parallel", 4, "concurrent campaigns on the host")
		seed     = flag.Int64("seed", 1000, "seed base")
		csvDir   = flag.String("csv", "", "also write CSV outputs into this directory")
	)
	flag.Parse()

	opts := experiments.Options{Hours: *hours, Runs: *runs, SeedBase: *seed, Parallel: *parallel}

	emitTable := func(name string, t *experiments.Table) {
		fmt.Println(t.Render())
		writeCSV(*csvDir, name+".csv", t.CSV())
	}
	emitFigures := func(name string, figs []*experiments.Figure) {
		for i, f := range figs {
			fmt.Println(f.Render())
			writeCSV(*csvDir, fmt.Sprintf("%s_%d.csv", name, i+1), f.CSV())
		}
	}

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		ran = true
		t, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		emitTable("table1", t)
	}
	if *all || *table == 2 {
		ran = true
		res, err := experiments.Table2(opts)
		if err != nil {
			fail(err)
		}
		emitTable("table2", res.Table)
	}
	if *all || *table == 3 || *figure == 7 {
		ran = true
		res, err := experiments.Table3(opts)
		if err != nil {
			fail(err)
		}
		emitTable("table3", res.Table)
		emitFigures("figure7", res.Figures)
	}
	if *all || *table == 4 || *figure == 8 {
		ran = true
		res, err := experiments.Table4(opts)
		if err != nil {
			fail(err)
		}
		emitTable("table4", res.Table)
		emitFigures("figure8", res.Figures)
	}
	if *all || *overhead == "mem" {
		ran = true
		t, err := experiments.MemoryOverhead()
		if err != nil {
			fail(err)
		}
		emitTable("overhead_mem", t)
	}
	if *all || *overhead == "exec" {
		ran = true
		t, err := experiments.ExecOverhead(opts)
		if err != nil {
			fail(err)
		}
		emitTable("overhead_exec", t)
	}
	if *all || *ablation == "watchdogs" {
		ran = true
		t, err := experiments.AblationWatchdogs(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_watchdogs", t)
	}
	if *all || *ablation == "generation" {
		ran = true
		t, err := experiments.AblationGeneration(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_generation", t)
	}
	if *all || *ablation == "link" {
		ran = true
		t, err := experiments.AblationLinkFaults(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_link", t)
	}
	if *all || *ablation == "resilience" {
		ran = true
		t, err := experiments.AblationResilience(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_resilience", t)
	}
	if *all || *ablation == "restore" {
		ran = true
		t, err := experiments.AblationRestore(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_restore", t)
	}
	if *all || *ablation == "tier" {
		ran = true
		t, err := experiments.AblationTier(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_tier", t)
	}
	if *all || *ablation == "persist" {
		ran = true
		t, err := experiments.AblationPersist(opts)
		if err != nil {
			fail(err)
		}
		emitTable("ablation_persist", t)
	}
	if *all || *acct {
		ran = true
		t, err := experiments.TimeAccounting(opts)
		if err != nil {
			fail(err)
		}
		emitTable("time_accounting", t)
	}
	if *all || *triage {
		ran = true
		res, err := experiments.TriageEval(opts)
		if err != nil {
			fail(err)
		}
		emitTable("triage", res.Table)
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -table N, -figure N, -overhead mem|exec, -ablation watchdogs|generation|link|resilience|restore|tier|persist, -accounting or -triage")
		os.Exit(2)
	}
}

func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(content))
}
