// Command eoftrace mines the deterministic JSONL campaign journals written
// by `eof -trace`. It answers the questions a finished journal can answer
// without re-running the campaign:
//
//	eoftrace summary [-csv] <journal>     totals, rates and the board-time
//	                                      budget (cross-checked against the
//	                                      report invariant)
//	eoftrace cov [-csv] <journal>         time-to-coverage series + longest
//	                                      coverage plateau
//	eoftrace bottleneck [-csv] <journal>  top time sinks per shard/tier
//	eoftrace divergence [-csv] <journal>  tier-confirm / tier-diverge timeline
//
// -csv emits machine-readable output for EXPERIMENTS plots. eoftrace refuses
// journals with an unknown schema version and warns when the header record
// is missing (pre-versioning journals).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/eof-fuzz/eof/internal/journal"
	"github.com/eof-fuzz/eof/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("eoftrace "+cmd, flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "emit CSV instead of text")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	j, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "eoftrace:", err)
		os.Exit(1)
	}
	switch cmd {
	case "summary":
		summary(j, *csvOut)
	case "cov":
		cov(j, *csvOut)
	case "bottleneck":
		bottleneck(j, *csvOut)
	case "divergence":
		divergence(j, *csvOut)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: eoftrace {summary|cov|bottleneck|divergence} [-csv] <journal.jsonl>")
}

func load(path string) (*journal.Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	j, err := journal.Read(f)
	if err != nil {
		return nil, err
	}
	if j.TornTail != "" {
		fmt.Fprintf(os.Stderr, "eoftrace: warning: %s — campaign likely killed mid-write\n", j.TornTail)
	}
	if !j.HasHeader {
		fmt.Fprintln(os.Stderr, "eoftrace: warning: journal has no header record (pre-versioning journal); tier attribution unavailable")
	}
	return j, nil
}

func summary(j *journal.Journal, csvOut bool) {
	s := journal.Summarize(j)
	if csvOut {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		_ = w.Write([]string{"metric", "value"})
		row := func(k string, v interface{}) { _ = w.Write([]string{k, fmt.Sprint(v)}) }
		row("events", s.Events)
		row("shards", s.Shards)
		row("execs", s.Execs)
		row("hw_execs", s.HWExecs)
		row("emul_execs", s.EmExecs)
		row("execs_per_sec", strconv.FormatFloat(s.ExecsPerSec(), 'f', 3, 64))
		row("edges", s.Edges)
		row("emul_edges", s.EmEdges)
		row("restores", s.Restores)
		row("reflashes", s.Reflash)
		row("bugs", s.Bugs)
		row("triaged", s.Triaged)
		row("link_retries", s.Retries)
		row("link_reconnects", s.Reconns)
		row("quarantines", s.Quarant)
		row("checkpoints", s.Checkpoints)
		row("durable_edges", s.DurableEdges)
		row("distills", s.Distills)
		row("distill_dropped", s.DistillDropped)
		row("duration_s", strconv.FormatFloat(s.Duration.Seconds(), 'f', 3, 64))
		for _, c := range trace.Categories() {
			row("time_"+c.String()+"_s", strconv.FormatFloat(s.TimeBy.Of(c).Seconds(), 'f', 3, 64))
		}
		return
	}
	if j.HasHeader {
		h := j.Header
		fmt.Printf("campaign: os=%s board=%s seed=%d shards=%d", h.OS, h.Board, h.Seed, h.Shards)
		if h.Spares > 0 {
			fmt.Printf(" spares=%d", h.Spares)
		}
		if h.Triage {
			fmt.Printf(" triage=on")
		}
		if h.EmulShards > 0 {
			fmt.Printf(" emul-shards=%d", h.EmulShards)
		}
		fmt.Printf(" (journal v%d, digest %s)\n", h.V, h.Digest)
	}
	fmt.Printf("events: %d across %d shard streams\n", s.Events, s.Shards)
	if s.EmExecs > 0 {
		fmt.Printf("execs: %d (hw %d @ %.1f/s, emul %d)\n", s.Execs, s.HWExecs, s.ExecsPerSec(), s.EmExecs)
		fmt.Printf("edges: %d hw (at last sync barrier), %d emul\n", s.Edges, s.EmEdges)
	} else {
		fmt.Printf("execs: %d (%.1f/s)\n", s.Execs, s.ExecsPerSec())
		fmt.Printf("edges: %d\n", s.Edges)
	}
	rate := 0.0
	if s.Execs > 0 {
		rate = 100 * float64(s.Restores) / float64(s.Execs)
	}
	fmt.Printf("restores: %d (%.1f%%/exec), %d reflashes\n", s.Restores, rate, s.Reflash)
	if len(s.ByReason) > 0 {
		reasons := make([]string, 0, len(s.ByReason))
		for r := range s.ByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Printf("  by reason:")
		for _, r := range reasons {
			fmt.Printf(" %s=%d", r, s.ByReason[r])
		}
		fmt.Println()
	}
	fmt.Printf("bugs: %d (%d triaged)  link: %d retries, %d reconnects  quarantines: %d\n",
		s.Bugs, s.Triaged, s.Retries, s.Reconns, s.Quarant)
	if s.Checkpoints > 0 || s.Distills > 0 {
		fmt.Printf("persistence: %d checkpoints (%d edges durable), %d distills (%d entries dropped)\n",
			s.Checkpoints, s.DurableEdges, s.Distills, s.DistillDropped)
	}
	if len(s.Budgets) == 0 {
		fmt.Printf("time budget: not recorded (journal predates time-budget records); virtual end %v\n", s.VirtualEnd.Round(time.Millisecond))
		return
	}
	fmt.Printf("time budget (%d shards x %v): %s\n", len(s.Budgets), s.Duration.Round(time.Millisecond), s.TimeBy.String())
	if s.TimeBy.Restoring > 0 {
		fmt.Printf("  restoring split: delta=%v full=%v\n",
			s.TimeBy.RestoringDelta.Round(time.Millisecond), s.TimeBy.RestoringFull.Round(time.Millisecond))
	}
	bad := 0
	for _, b := range s.Budgets {
		if b.Drift != 0 {
			bad++
			fmt.Printf("  shard %d: buckets sum to %v but duration is %v (drift %v) — INVARIANT VIOLATED\n",
				b.Shard, b.TimeBy.Sum(), b.Duration, b.Drift)
		}
	}
	if bad == 0 {
		fmt.Println("  invariant: OK (every shard's buckets sum to its accounted duration exactly)")
	}
}

func cov(j *journal.Journal, csvOut bool) {
	pts, plateau := journal.Cov(j)
	if csvOut {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		_ = w.Write([]string{"at_s", "edges"})
		for _, p := range pts {
			_ = w.Write([]string{
				strconv.FormatFloat(p.At.Seconds(), 'f', 3, 64),
				strconv.Itoa(p.Edges),
			})
		}
		return
	}
	if len(pts) == 0 {
		fmt.Println("no coverage gain recorded")
		fmt.Printf("longest plateau: %v (t=%v..%v)\n", plateau.Dur().Round(time.Millisecond),
			plateau.Start.Round(time.Millisecond), plateau.End.Round(time.Millisecond))
		return
	}
	fmt.Printf("coverage: %d gains, %d edges by t=%v\n", len(pts), pts[len(pts)-1].Edges, pts[len(pts)-1].At.Round(time.Millisecond))
	// A handful of milestones beats a thousand rows in text mode.
	final := pts[len(pts)-1].Edges
	for _, pct := range []int{25, 50, 75, 90, 100} {
		goal := final * pct / 100
		for _, p := range pts {
			if p.Edges >= goal {
				fmt.Printf("  %3d%% of final coverage (%d edges) at t=%v\n", pct, goal, p.At.Round(time.Millisecond))
				break
			}
		}
	}
	fmt.Printf("longest plateau: %v with zero coverage gain (t=%v..%v)\n",
		plateau.Dur().Round(time.Millisecond), plateau.Start.Round(time.Millisecond), plateau.End.Round(time.Millisecond))
}

func bottleneck(j *journal.Journal, csvOut bool) {
	sinks := journal.Bottlenecks(j)
	if csvOut {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		_ = w.Write([]string{"shard", "tier", "category", "seconds", "share"})
		for _, s := range sinks {
			_ = w.Write([]string{
				strconv.Itoa(s.Shard), s.Tier, s.Category,
				strconv.FormatFloat(s.Dur.Seconds(), 'f', 3, 64),
				strconv.FormatFloat(s.Share, 'f', 4, 64),
			})
		}
		return
	}
	if len(sinks) == 0 {
		fmt.Println("no time sinks recorded")
		return
	}
	last := -1
	for _, s := range sinks {
		if s.Shard != last {
			last = s.Shard
			if s.Tier != "" {
				fmt.Printf("shard %d (%s):\n", s.Shard, s.Tier)
			} else {
				fmt.Printf("shard %d:\n", s.Shard)
			}
		}
		fmt.Printf("  %-14s %12v  %5.1f%%\n", s.Category, s.Dur.Round(time.Millisecond), 100*s.Share)
	}
}

func divergence(j *journal.Journal, csvOut bool) {
	vs := journal.Divergences(j)
	if csvOut {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		_ = w.Write([]string{"at_s", "hw_shard", "emul_shard", "verdict", "reason", "edges"})
		for _, v := range vs {
			verdict := "diverge"
			if v.Confirmed {
				verdict = "confirm"
			}
			_ = w.Write([]string{
				strconv.FormatFloat(v.At.Seconds(), 'f', 3, 64),
				strconv.Itoa(v.HWShard), strconv.Itoa(v.EmulShard),
				verdict, v.Reason, strconv.Itoa(v.Edges),
			})
		}
		return
	}
	if len(vs) == 0 {
		fmt.Println("no cross-tier verdicts recorded (untiered campaign?)")
		return
	}
	confirmed := 0
	for _, v := range vs {
		if v.Confirmed {
			confirmed++
		}
	}
	fmt.Printf("verdicts: %d (%d confirmed, %d diverged)\n", len(vs), confirmed, len(vs)-confirmed)
	for _, v := range vs {
		verdict := "DIVERGE"
		if v.Confirmed {
			verdict = "confirm"
		}
		extra := ""
		if v.Edges > 0 {
			extra = fmt.Sprintf(" edges=%d", v.Edges)
		}
		fmt.Printf("  t=%-12v %s %-22s emul-shard=%d hw-shard=%d%s\n",
			v.At.Round(time.Millisecond), verdict, v.Reason, v.EmulShard, v.HWShard, extra)
	}
}
