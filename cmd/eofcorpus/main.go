// Command eofcorpus inspects and verifies the crash-safe corpus stores that
// `eof -corpus` writes.
//
// Usage:
//
//	eofcorpus -dir out/corpus -os freertos -board stm32h745 info
//	eofcorpus -dir out/corpus -os freertos -board stm32h745 verify [-strict]
//
// `info` prints the store's resumable state: entries, checkpointed epoch,
// elapsed virtual time, coverage, clusters and per-shard cursors. `-edges`
// reduces the output to the checkpointed edge count alone, for scripts.
//
// `verify` re-runs the full integrity walk — every blob against its content
// address, the manifest against its schema, the checkpoint rotation against
// its self-checksum — and reports what was tolerated. Damaged files are
// quarantined into <dir>/damaged/ exactly as a resuming campaign would.
// Exit status: 0 when the store is clean (or recoverably degraded), 1 with
// -strict when any damage was found, 2 when the store cannot be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eof-fuzz/eof/internal/corpus"
)

func main() {
	var (
		dir      = flag.String("dir", "", "corpus store root (as passed to eof -corpus)")
		osName   = flag.String("os", "freertos", "target OS namespace")
		board    = flag.String("board", "stm32h745", "board namespace")
		edges    = flag.Bool("edges", false, "info: print only the checkpointed edge count")
		strict   = flag.Bool("strict", false, "verify: exit nonzero when any damage was tolerated")
		cursors  = flag.Bool("cursors", false, "info: also print per-shard resume cursors")
		clusters = flag.Bool("clusters", false, "info: also print crash cluster keys")
	)
	flag.Parse()
	if *dir == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eofcorpus -dir <root> [-os <os>] [-board <board>] info|verify")
		os.Exit(2)
	}

	s, err := corpus.Open(*dir, *osName, *board)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eofcorpus:", err)
		os.Exit(2)
	}
	res, err := s.LoadResume()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eofcorpus:", err)
		os.Exit(2)
	}

	switch flag.Arg(0) {
	case "info":
		infoMain(s, res, *edges, *cursors, *clusters)
	case "verify":
		os.Exit(verifyMain(s, res, *strict))
	default:
		fmt.Fprintf(os.Stderr, "eofcorpus: unknown command %q (want info or verify)\n", flag.Arg(0))
		os.Exit(2)
	}
}

// infoMain prints the store's resumable state.
func infoMain(s *corpus.Store, res *corpus.Resume, edgesOnly, cursors, clusters bool) {
	ck := res.Ck
	if edgesOnly {
		n := 0
		if ck != nil {
			n = len(ck.Edges)
		}
		fmt.Println(n)
		return
	}
	fmt.Printf("store: %s\n", s.Dir())
	fmt.Printf("entries: %d verified corpus programs\n", s.Len())
	if ck == nil {
		fmt.Println("checkpoint: none (no barrier completed yet)")
	} else {
		fmt.Printf("checkpoint: epoch %d, %v of campaign time, %d edges, %d clusters\n",
			ck.Epoch, ck.Elapsed.Round(time.Second), len(ck.Edges), len(ck.Clusters))
		fmt.Printf("seeds: base %d, resume continues at %d\n", ck.Seed, ck.NextSeed)
		if ck.Distills > 0 {
			fmt.Printf("distillations: %d\n", ck.Distills)
		}
		if cursors {
			for _, c := range ck.Cursors {
				fmt.Printf("cursor: shard %d seed %d execs %d\n", c.Shard, c.Seed, c.Execs)
			}
		}
		if clusters {
			for _, c := range ck.Clusters {
				fmt.Printf("cluster: %s\n", c)
			}
		}
	}
	tail := s.Len() - func() int {
		if ck == nil {
			return 0
		}
		return len(ck.Corpus)
	}()
	if tail > 0 {
		fmt.Printf("manifest tail: %d entries persisted after the checkpoint (kept on resume)\n", tail)
	}
	for _, w := range s.Warnings() {
		fmt.Printf("warning: %s\n", w)
	}
}

// verifyMain reports the integrity walk's findings; Open and LoadResume
// already performed it (content addresses, manifest schema, checkpoint
// checksums), quarantining damage and accumulating warnings.
func verifyMain(s *corpus.Store, res *corpus.Resume, strict bool) int {
	warns := s.Warnings()
	ckState := "none"
	if res.Ck != nil {
		ckState = fmt.Sprintf("epoch %d (checksum ok)", res.Ck.Epoch)
	}
	fmt.Printf("verified: %d entries, checkpoint %s, %d warnings\n", s.Len(), ckState, len(warns))
	for _, w := range warns {
		fmt.Printf("warning: %s\n", w)
	}
	if strict && len(warns) > 0 {
		return 1
	}
	return 0
}
