// Command eofd is the EOF control-plane daemon: fuzzing as a service.
// It owns a shared pool of boards and an HTTP/JSON API through which many
// tenants submit campaigns; a fair-share scheduler multiplexes the jobs
// over the pool in checkpoint-bounded slices, preempting only at epoch
// barriers and resuming preempted work from its durable corpus store.
// The job table persists under the data directory, so restarting the
// daemon (or kill -9) re-adopts every queued and checkpointed campaign.
//
// Usage:
//
//	eofd -addr :9290 -data /var/lib/eofd -boards 4
//
// API (tenant named by the X-EOF-Tenant header):
//
//	POST   /v1/campaigns               submit {minutes, priority, options}
//	GET    /v1/campaigns[?tenant=]     list jobs
//	GET    /v1/campaigns/{id}          one job's status
//	GET    /v1/campaigns/{id}/events   stream the trace journal (NDJSON)
//	POST   /v1/campaigns/{id}/preempt  requeue at the next epoch barrier
//	DELETE /v1/campaigns/{id}          cancel (idempotent)
//	GET    /v1/pool                    board inventory + fair-share ledger
//	GET    /metrics                    Prometheus exposition (per-tenant)
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eof-fuzz/eof/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9290", "HTTP listen address (\":0\" picks a free port)")
		dataDir    = flag.String("data", "", "data directory: job table, corpus store and event journals (required)")
		boards     = flag.Int("boards", 2, "board-pool size")
		boardType  = flag.String("board", "", "pool board model, for inventory naming (default stm32h745)")
		quantumMin = flag.Float64("quantum-minutes", 20, "board-time per scheduling slice in virtual minutes")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "eofd: -data is required")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := server.New(server.Options{
		DataDir:   *dataDir,
		BoardType: *boardType,
		Boards:    *boards,
		Quantum:   time.Duration(*quantumMin * float64(time.Minute)),
		Logf:      logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eofd:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eofd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The serving line goes to stdout so scripts can poll for readiness
	// and discover the bound port.
	fmt.Printf("eofd: serving on http://%s (pool: %d boards, data: %s)\n", ln.Addr(), *boards, *dataDir)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Printf("eofd: http: %v", err)
		}
	}()

	// First signal: drain — running slices stop at their next epoch
	// barrier with a final durable checkpoint, the job table keeps its
	// running rows for the next daemon to adopt. Second signal: abort.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	logger.Printf("eofd: signal received, draining at epoch barriers (signal again to abort)")
	go func() {
		<-sigs
		logger.Printf("eofd: second signal, aborting")
		os.Exit(130)
	}()
	_ = httpSrv.Close()
	srv.Stop()
	logger.Printf("eofd: drained, job table persisted")
}
