// Command specgen runs the API-specification pipeline for a target OS and
// prints the validated Syzlang (plus any declarations dropped during
// post-validation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/eof-fuzz/eof"
)

func main() {
	osName := flag.String("os", "freertos", "target OS: "+strings.Join(eof.Targets(), ", "))
	flag.Parse()

	text, dropped, err := eof.GenerateSpec(*osName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specgen:", err)
		os.Exit(1)
	}
	fmt.Print(text)
	if len(dropped) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d declarations dropped during validation:\n", len(dropped))
		for _, d := range dropped {
			fmt.Fprintln(os.Stderr, "  ", d)
		}
	}
}
