package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/server"
)

// submitMain is the thin -submit client mode: the same flags that would
// configure a local campaign are marshalled as an eof.Options spec and
// posted to an eofd daemon, which owns persistence and telemetry for the
// job (so the local -corpus/-resume/-trace/-metrics-addr settings are
// stripped rather than sent).
func submitMain(url, tenant string, priority int, minutes float64, opts eof.Options, wait bool) int {
	opts.CorpusDir = ""
	opts.CorpusNamespace = ""
	opts.Resume = false
	opts.MetricsAddr = ""
	opts.StatusEvery = 0
	opts.TraceJSONL = nil
	opts.StatusWriter = nil
	raw, err := json.Marshal(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof: -submit:", err)
		return 1
	}
	cl := &server.Client{Base: url, Tenant: tenant}
	js, err := cl.Submit(server.SubmitRequest{
		Minutes:  int(math.Ceil(minutes)),
		Priority: priority,
		Options:  raw,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof: -submit:", err)
		return 1
	}
	fmt.Printf("%s\tsubmitted to %s (tenant %s, state %s)\n", js.ID, url, js.Tenant, js.State)
	if !wait {
		fmt.Printf("follow with: eofctl -server %s -tenant %s status %s\n", url, tenant, js.ID)
		return 0
	}
	js, err = cl.Wait(js.ID, 500*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof: -submit:", err)
		return 1
	}
	fmt.Printf("%s\tstate=%s used=%.0fs/%.0fs slices=%d preempts=%d execs=%d edges=%d bugs=%d\n",
		js.ID, js.State, js.UsedS, js.BudgetS, js.Slices, js.Preempts, js.Execs, js.Edges, js.Bugs)
	if js.Error != "" {
		fmt.Fprintln(os.Stderr, "eof: job failed:", js.Error)
	}
	if js.State != "done" {
		return 1
	}
	return 0
}
