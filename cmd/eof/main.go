// Command eof runs one fuzzing campaign against a virtual embedded target
// and prints the findings.
//
// Usage:
//
//	eof -os rtthread -board esp32c3 -minutes 30 -seed 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/eof-fuzz/eof"
)

func main() {
	var (
		osName    = flag.String("os", "freertos", "target OS: "+strings.Join(eof.Targets(), ", "))
		board     = flag.String("board", "stm32h745", "board: "+strings.Join(eof.Boards(), ", "))
		minutes   = flag.Float64("minutes", 30, "campaign length in virtual minutes")
		seed      = flag.Int64("seed", 1, "deterministic campaign seed")
		nf        = flag.Bool("nf", false, "disable feedback guidance (EOF-nf)")
		random    = flag.Bool("random-args", false, "disable API-aware generation")
		apis      = flag.String("apis", "", "comma-separated API allowlist (application-level mode)")
		modules   = flag.String("modules", "", "comma-separated source prefixes to instrument")
		shards    = flag.Int("shards", 1, "board-pool size: shard the campaign across N boards with shared feedback")
		spares    = flag.Int("spares", 0, "hot-spare boards held in reserve for fleet failover (needs -shards > 1)")
		syncMin   = flag.Float64("sync-minutes", 0, "fleet feedback-exchange interval in virtual minutes (0 = default 10)")
		tiers     = flag.Bool("tiers", false, "tiered execution: an emulation tier explores and the hardware pool confirms its findings at sync barriers")
		emulWidth = flag.Int("emul-shards", 0, "emulation explore-tier width (0 = default 4, needs -tiers)")
		legacy    = flag.Bool("legacy-link", false, "disable vectored debug-link commands (older probe firmware)")
		snapshots = flag.Bool("snapshots", false, "cache golden snapshots probe-side and restore by shipping only dirty state")
		snapAt    = flag.String("snapshot-states", "", "kernel states to (re-)snapshot at: comma-separated subset of post-boot,post-init (empty = both)")
		faults    = flag.Float64("link-faults", 0, "per-command debug-link fault rate (flaky-adapter model, e.g. 0.05)")
		retries   = flag.Int("link-retries", 0, "max transparent retries per faulted command (0 = default 4, negative disables)")
		corpusDir = flag.String("corpus", "", "persist the corpus and epoch checkpoints into this directory (crash-safe store)")
		resumeDir = flag.String("resume", "", "resume a persisted campaign from this corpus directory (implies -corpus)")
		distillN  = flag.Int("distill-every", 0, "distill the on-disk corpus to a minimal covering set every N checkpoints (0 = never)")
		traceOut  = flag.String("trace", "", "write the structured trace journal to this file as JSON Lines")
		statusDur = flag.Duration("status-every", 0, "print a live progress line at this host interval (e.g. 10s)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /status and /debug/pprof/ on this address while the campaign runs (e.g. :9100)")
		hold      = flag.Duration("metrics-hold", 0, "keep the telemetry server up this long after the campaign finishes (for a final scrape)")
		verbose   = flag.Bool("v", false, "print crash logs and reproducers")

		doTriage  = flag.Bool("triage", false, "triage findings: replay on restored state, classify reproducibility, minimize")
		triageN   = flag.Int("triage-replays", 0, "confirmation replays per finding (0 = default 3)")
		reproOut  = flag.String("repro-out", "", "write one portable repro file per triaged finding into this directory")
		replayArg = flag.String("replay", "", "standalone mode: confirm the given repro file on a fresh board and exit")

		submitURL = flag.String("submit", "", "client mode: submit this campaign to the eofd daemon at the given base URL instead of running locally")
		tenant    = flag.String("tenant", "default", "tenant name for -submit (fair-share accounting identity)")
		priority  = flag.Int("priority", 1, "tenant fair-share weight for -submit")
		waitJob   = flag.Bool("wait", false, "with -submit, wait for the job to finish and print its final status")

		healthResets  = flag.Int("health-reset-attempts", 0, "recovery-ladder reset-rung attempts (0 = default 1)")
		healthReflash = flag.Int("health-reflash-attempts", 0, "recovery-ladder reflash-rung attempts (0 = default 1)")
		healthCycles  = flag.Int("health-cycle-attempts", 0, "recovery-ladder power-cycle-rung attempts (0 = default 2)")
		healthResumes = flag.Int("health-resumes", 0, "max post-boot resumes before the ladder escalates (0 = default 32)")
		healthDecay   = flag.Float64("health-decay", 0, "EWMA weight of the newest restore outcome (0 = default 0.25)")
		healthSick    = flag.Float64("health-sick", 0, "health score below which a fleet board is quarantined (0 = default 0.3)")

		boardWear     = flag.Int("board-wear", 0, "flash sector erase-cycle wear limit (0 = no wear)")
		boardBootfail = flag.Float64("board-bootfail", 0, "per-boot transient failure probability")
		boardDeath    = flag.Float64("board-death", 0, "per-boot permanent death probability")
		boardDieAfter = flag.Int("board-die-after", 0, "kill the board on its Nth boot attempt (0 = never)")
	)
	flag.Parse()

	if *replayArg != "" {
		os.Exit(replayMain(*replayArg, *triageN))
	}

	opts := eof.Options{
		OS:               *osName,
		Board:            *board,
		Seed:             *seed,
		FeedbackDisabled: *nf,
		APIAwareDisabled: *random,
		Shards:           *shards,
		Spares:           *spares,
		SyncEvery:        time.Duration(*syncMin * float64(time.Minute)),
		Tiers:            *tiers,
		EmulShards:       *emulWidth,
		LegacyLink:       *legacy,
		Snapshots:        *snapshots,
		SnapshotStates:   *snapAt,
		LinkFaultRate:    *faults,
		LinkRetries:      *retries,
		Triage:           *doTriage,
		TriageReplays:    *triageN,
		StatusEvery:      *statusDur,
		MetricsAddr:      *metrics,
		Health: eof.HealthOptions{
			ResetAttempts:      *healthResets,
			ReflashAttempts:    *healthReflash,
			PowerCycleAttempts: *healthCycles,
			MaxResumes:         *healthResumes,
			Decay:              *healthDecay,
			SickThreshold:      *healthSick,
		},
		Degrade: eof.DegradeOptions{
			WearLimit:     *boardWear,
			BootFailRate:  *boardBootfail,
			DeathRate:     *boardDeath,
			DieAfterBoots: *boardDieAfter,
		},
	}
	opts.CorpusDir = *corpusDir
	opts.DistillEvery = *distillN
	if *resumeDir != "" {
		if *corpusDir != "" && *corpusDir != *resumeDir {
			fmt.Fprintln(os.Stderr, "eof: -corpus and -resume name different directories")
			os.Exit(1)
		}
		opts.CorpusDir = *resumeDir
		opts.Resume = true
	}
	if *apis != "" {
		opts.RestrictAPIs = strings.Split(*apis, ",")
	}
	if *modules != "" {
		opts.InstrumentModules = strings.Split(*modules, ",")
	}
	if *submitURL != "" {
		os.Exit(submitMain(*submitURL, *tenant, *priority, *minutes, opts, *waitJob))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eof:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		defer func() {
			bw.Flush()
			f.Close()
		}()
		opts.TraceJSONL = bw
	}

	c, err := eof.NewCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof:", err)
		os.Exit(1)
	}
	defer c.Close()

	// Graceful shutdown: the first SIGINT/SIGTERM drains the campaign at the
	// next epoch barrier (final checkpoint included when -corpus is set) and
	// the report below covers the completed portion; a second signal aborts
	// immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "eof: signal received, draining at the next barrier (signal again to abort)")
		c.RequestStop()
		<-sigs
		fmt.Fprintln(os.Stderr, "eof: second signal, aborting")
		os.Exit(130)
	}()

	if addr := c.MetricsAddr(); addr != "" {
		fmt.Printf("telemetry: http://%s/metrics (/status, /debug/pprof/)\n", addr)
	}
	budget := time.Duration(*minutes * float64(time.Minute))
	if *tiers {
		width := *emulWidth
		if width <= 0 {
			width = 4
		}
		fmt.Printf("fuzzing %s on %d %s boards + %d emulated explore shards for %v of total board time (seed %d)\n",
			*osName, *shards, *board, width, budget, *seed)
	} else if *shards > 1 {
		fmt.Printf("fuzzing %s on a pool of %d %s boards for %v of total board time (seed %d)\n",
			*osName, *shards, *board, budget, *seed)
	} else {
		fmt.Printf("fuzzing %s on %s for %v of virtual time (seed %d)\n", *osName, *board, budget, *seed)
	}
	rep, err := c.Run(budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof:", err)
		os.Exit(1)
	}
	defer func() {
		if *hold > 0 && c.MetricsAddr() != "" {
			// The final report is already published into the registry, so a
			// scraper has this window to collect the authoritative end state.
			fmt.Printf("holding telemetry server at %s for %v\n", c.MetricsAddr(), *hold)
			time.Sleep(*hold)
		}
	}()

	fmt.Printf("\nexecs: %d   branches: %d   crashes: %d   restores: %d (reflashes: %d)\n",
		rep.Execs, rep.Edges, rep.Crashes, rep.Restores, rep.Reflashes)
	if rep.Duration > 0 {
		fmt.Printf("throughput: %.2f execs/s of target time\n", float64(rep.Execs)/rep.Duration.Seconds())
	}
	if len(rep.RestoresByReason) > 0 {
		reasons := make([]string, 0, len(rep.RestoresByReason))
		for r := range rep.RestoresByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, 0, len(reasons))
		for _, r := range reasons {
			parts = append(parts, fmt.Sprintf("%s=%d", r, rep.RestoresByReason[r]))
		}
		fmt.Printf("restores by reason: %s\n", strings.Join(parts, " "))
	}
	if rep.SnapshotTakes > 0 && rep.Restores > 0 {
		fmt.Printf("snapshot restores: %d delta / %d full (%d snapshots taken), %s shipped, %s proven clean\n",
			rep.DeltaRestores, rep.FullRestores, rep.SnapshotTakes,
			fmtBytes(rep.RestoreBytesShipped), fmtBytes(rep.RestoreBytesSkipped))
	}
	if p := rep.Persist; p != nil {
		line := fmt.Sprintf("corpus store: %d entries (%d new) in %s, %d checkpoints",
			p.Entries, p.Admitted, p.Dir, p.Checkpoints)
		if p.Distills > 0 {
			line += fmt.Sprintf(", %d distillations dropped %d entries", p.Distills, p.Dropped)
		}
		fmt.Println(line)
		if p.Resumed {
			fmt.Printf("resumed: %d seeds re-imported, %d prior epochs (%v of prior campaign time)\n",
				p.ResumedSeeds, p.PriorEpochs, p.PriorElapsed.Round(time.Second))
		}
		for _, w := range p.Warnings {
			fmt.Printf("store warning: %s\n", w)
		}
	}
	fmt.Printf("board time: %s\n", rep.TimeBy)
	if rep.Execs > 0 {
		fmt.Printf("debug link: %d round trips (%.2f per exec)\n",
			rep.LinkRoundTrips, float64(rep.LinkRoundTrips)/float64(rep.Execs))
	}
	if rep.LinkRetries > 0 || rep.LinkReconnects > 0 {
		fmt.Printf("link faults absorbed: %d retries, %d reconnects\n",
			rep.LinkRetries, rep.LinkReconnects)
	}
	if rep.RungEscalations > 0 || rep.PowerCycles > 0 || rep.Health.Dead {
		state := "ok"
		if rep.Health.Dead {
			state = "DEAD"
		}
		fmt.Printf("board health: score %.2f (%s), %d ladder escalations, %d power cycles\n",
			rep.Health.Score, state, rep.RungEscalations, rep.PowerCycles)
	}
	for _, q := range rep.Quarantines {
		repl := "no spare left, slot unmanned"
		if q.Spare >= 0 {
			repl = fmt.Sprintf("spare board %d promoted", q.Spare)
		} else if q.Tier == "emul" {
			repl = "emulation shard, not replaced"
		}
		fmt.Printf("quarantine: board %d (slot %d) retired %s at %v — %s\n",
			q.Board, q.Slot, q.Reason, q.At.Round(time.Second), repl)
	}
	for _, tr := range rep.Tiers {
		line := fmt.Sprintf("tier %s: %d boards, %d execs, %d edges", tr.Class, tr.Boards, tr.Execs, tr.Edges)
		if tr.Class == "emul" {
			line += " (provisional until confirmed)"
		} else if tr.ConfirmReplays > 0 {
			line += fmt.Sprintf(" — %d confirmation replays: %d confirmed, %d diverged",
				tr.ConfirmReplays, tr.Confirmed, tr.Diverged)
		}
		fmt.Println(line)
	}
	if len(rep.Divergences) > 0 {
		fmt.Printf("cross-tier divergences: %d\n", len(rep.Divergences))
		shown := len(rep.Divergences)
		if !*verbose && shown > 8 {
			shown = 8
		}
		for _, d := range rep.Divergences[:shown] {
			detail := ""
			switch {
			case d.Cluster != "":
				detail = " " + d.Cluster
			case d.Edges > 0:
				detail = fmt.Sprintf(" %d unconfirmed edges", d.Edges)
			}
			fmt.Printf("  %s%s (emul shard %d, at %v)\n", d.Kind, detail, d.Shard, d.At.Round(time.Second))
		}
		if shown < len(rep.Divergences) {
			fmt.Printf("  ... %d more (run with -v to list all)\n", len(rep.Divergences)-shown)
		}
	}
	if rep.DegradedMonitors > 0 {
		fmt.Printf("warning: %d exception symbols unarmed (out of breakpoint comparators)\n", rep.DegradedMonitors)
	}
	if rep.TriagedBugs > 0 {
		fmt.Printf("triage: %d findings confirmed in %d replays\n", rep.TriagedBugs, rep.TriageReplays)
	}
	if len(rep.Bugs) == 0 {
		fmt.Println("\nno bugs found in this window")
		return
	}
	fmt.Printf("\n%d distinct bugs:\n", len(rep.Bugs))
	for i, b := range rep.Bugs {
		fmt.Printf("%2d. [%s/%s] %s (found at %v)\n", i+1, b.Monitor, b.Kind, b.Title, b.FoundAt.Round(time.Second))
		if b.Reproducibility != "" {
			fmt.Printf("      triage: %s (%d/%d replays), minimized %d -> %d calls\n",
				b.Reproducibility, b.ReplayHits, b.Replays, b.OrigCalls, b.MinCalls)
		}
		if *verbose {
			for j, fr := range b.Backtrace {
				fmt.Printf("      Level: %d: %s\n", j+1, fr)
			}
			if b.Reproducer != "" {
				fmt.Printf("      reproducer:\n")
				for _, line := range strings.Split(strings.TrimSpace(b.Reproducer), "\n") {
					fmt.Printf("        %s\n", line)
				}
			}
			if len(b.Trace) > 0 {
				fmt.Printf("      flight recorder (last %d events):\n", len(b.Trace))
				for _, ev := range b.Trace {
					line := fmt.Sprintf("t=%v shard=%d %s", ev.At.Round(time.Millisecond), ev.Shard, ev.Kind)
					if ev.Reason != "" {
						line += " " + ev.Reason
					}
					fmt.Printf("        %s\n", line)
				}
			}
		}
	}
	if *reproOut != "" {
		if err := writeRepros(*reproOut, rep.Bugs); err != nil {
			fmt.Fprintln(os.Stderr, "eof:", err)
			os.Exit(1)
		}
	}
}

// writeRepros saves every triaged finding's portable repro file into dir,
// named deterministically after its cluster.
func writeRepros(dir string, bugs []eof.Bug) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for i := range bugs {
		b := &bugs[i]
		if b.ReproJSON == "" {
			continue
		}
		data, err := b.ReproFile()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, sanitize(b.Cluster)+".repro.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("repro written: %s\n", path)
		written++
	}
	if written == 0 {
		fmt.Println("no triaged findings to write (did the campaign run with -triage?)")
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// sanitize maps a cluster key onto a filesystem-safe slug.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_' || r == '.':
			return r
		default:
			return '-'
		}
	}, s)
}

// replayMain is the standalone confirmation mode: load a repro file, build a
// fresh board for its recorded target and replay. Exit 0 only when the crash
// reproduces.
func replayMain(path string, replays int) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof:", err)
		return 1
	}
	res, err := eof.ReplayRepro(data, replays)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eof:", err)
		return 1
	}
	title := res.Title
	if title == "" {
		title = res.Signature
	}
	fmt.Printf("replaying %s on a fresh %s/%s board: %d/%d runs reproduced %s\n",
		title, res.OS, res.Board, res.Hits, res.Replays, res.Cluster)
	if !res.Confirmed {
		fmt.Println("NOT CONFIRMED")
		return 2
	}
	fmt.Println("confirmed")
	return 0
}
