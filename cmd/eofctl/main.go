// Command eofctl is the CLI client for the eofd daemon.
//
// Usage:
//
//	eofctl [-server URL] [-tenant NAME] <command> [flags] [args]
//
// Commands:
//
//	submit   submit a campaign (flags mirror cmd/eof, or -spec for raw JSON)
//	status   print one campaign's status
//	list     list campaigns (all tenants unless -mine)
//	events   stream a campaign's trace journal to stdout (NDJSON)
//	preempt  requeue a running campaign at its next epoch barrier
//	cancel   cancel a campaign (idempotent)
//	wait     block until a campaign reaches a terminal state
//	pool     print the board inventory and fair-share ledger
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	eof "github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/server"
)

var (
	serverURL = flag.String("server", "http://127.0.0.1:9290", "eofd base URL")
	tenant    = flag.String("tenant", "default", "tenant name (fair-share accounting identity)")
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: eofctl [-server URL] [-tenant NAME] <command> [flags] [args]\n")
	fmt.Fprintf(os.Stderr, "commands: submit status list events preempt cancel wait pool\n")
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	cl := &server.Client{Base: *serverURL, Tenant: *tenant}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = submitCmd(cl, args)
	case "status":
		err = statusCmd(cl, args)
	case "list":
		err = listCmd(cl, args)
	case "events":
		err = eventsCmd(cl, args)
	case "preempt":
		err = oneArg(args, "preempt", cl.Preempt)
	case "cancel":
		err = oneArg(args, "cancel", cl.Cancel)
	case "wait":
		err = waitCmd(cl, args)
	case "pool":
		err = poolCmd(cl, args)
	default:
		fmt.Fprintf(os.Stderr, "eofctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eofctl:", err)
		os.Exit(1)
	}
}

func submitCmd(cl *server.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		osName    = fs.String("os", "freertos", "target OS")
		board     = fs.String("board", "", "board (daemon default when empty)")
		minutes   = fs.Int("minutes", 30, "board-time budget in virtual minutes")
		priority  = fs.Int("priority", 1, "tenant fair-share weight")
		seed      = fs.Int64("seed", 1, "deterministic campaign seed")
		shards    = fs.Int("shards", 1, "fleet shard count")
		spares    = fs.Int("spares", 0, "hot-spare boards")
		syncMin   = fs.Float64("sync-minutes", 0, "fleet sync interval in virtual minutes (0 = default)")
		tiersFlag = fs.Bool("tiers", false, "tiered execution (emulation explore tier)")
		snapshots = fs.Bool("snapshots", false, "probe-side snapshot caching")
		triage    = fs.Bool("triage", false, "triage findings after the campaign")
		spec      = fs.String("spec", "", "raw eof.Options JSON (inline, or @file); overrides the option flags")
		wait      = fs.Bool("wait", false, "wait for the campaign to finish and print its final status")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var raw json.RawMessage
	if *spec != "" {
		if strings.HasPrefix(*spec, "@") {
			b, err := os.ReadFile((*spec)[1:])
			if err != nil {
				return err
			}
			raw = b
		} else {
			raw = []byte(*spec)
		}
	} else {
		opts := eof.Options{
			OS:        *osName,
			Board:     *board,
			Seed:      *seed,
			Shards:    *shards,
			Spares:    *spares,
			SyncEvery: time.Duration(*syncMin * float64(time.Minute)),
			Tiers:     *tiersFlag,
			Snapshots: *snapshots,
			Triage:    *triage,
		}
		b, err := json.Marshal(opts)
		if err != nil {
			return err
		}
		raw = b
	}
	js, err := cl.Submit(server.SubmitRequest{Minutes: *minutes, Priority: *priority, Options: raw})
	if err != nil {
		return err
	}
	fmt.Printf("%s\tsubmitted (tenant %s, state %s)\n", js.ID, js.Tenant, js.State)
	if *wait {
		js, err = cl.Wait(js.ID, 500*time.Millisecond)
		if err != nil {
			return err
		}
		printJob(js)
	}
	return nil
}

func statusCmd(cl *server.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: eofctl status <id>")
	}
	js, err := cl.Job(args[0])
	if err != nil {
		return err
	}
	printJob(js)
	return nil
}

func listCmd(cl *server.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	mine := fs.Bool("mine", false, "only this tenant's campaigns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := ""
	if *mine {
		t = cl.Tenant
	}
	jobs, err := cl.Jobs(t)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-12s %-9s %4s %8s %8s %7s %8s\n",
		"ID", "TENANT", "STATE", "PRI", "USED", "BUDGET", "SLICES", "PREEMPTS")
	for _, j := range jobs {
		fmt.Printf("%-10s %-12s %-9s %4d %7.0fs %7.0fs %7d %8d\n",
			j.ID, j.Tenant, j.State, j.Priority, j.UsedS, j.BudgetS, j.Slices, j.Preempts)
	}
	return nil
}

func eventsCmd(cl *server.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: eofctl events <id>")
	}
	rc, err := cl.Events(args[0])
	if err != nil {
		return err
	}
	defer rc.Close()
	_, err = io.Copy(os.Stdout, rc)
	return err
}

func oneArg(args []string, name string, f func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: eofctl %s <id>", name)
	}
	if err := f(args[0]); err != nil {
		return err
	}
	fmt.Printf("%s\t%sed\n", args[0], name)
	return nil
}

func waitCmd(cl *server.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: eofctl wait <id>")
	}
	js, err := cl.Wait(args[0], 500*time.Millisecond)
	if err != nil {
		return err
	}
	printJob(js)
	if js.State != "done" {
		os.Exit(1)
	}
	return nil
}

func poolCmd(cl *server.Client, args []string) error {
	ps, err := cl.Pool()
	if err != nil {
		return err
	}
	fmt.Printf("pool: %d x %s, %d free\n", len(ps.Boards), ps.BoardType, ps.Free)
	for _, b := range ps.Boards {
		state := "idle"
		if b.JobID != "" {
			state = fmt.Sprintf("leased to %s (%s)", b.JobID, b.Tenant)
		}
		fmt.Printf("  %-16s %-28s %6.0fs busy, %d leases\n", b.Name, state, b.BusyS, b.Leases)
	}
	if len(ps.Tenants) > 0 {
		fmt.Println("fair-share ledger:")
		for _, t := range ps.Tenants {
			fmt.Printf("  %-12s weight %d, %8.0fs board time\n", t.Tenant, t.Weight, t.UsedS)
		}
	}
	return nil
}

func printJob(j *server.JobStatus) {
	fmt.Printf("%s\ttenant=%s state=%s priority=%d boards=%d\n", j.ID, j.Tenant, j.State, j.Priority, j.Boards)
	fmt.Printf("\tbudget %.0fs, used %.0fs (charged %.0fs), %d slices, %d preempts, resumed=%v\n",
		j.BudgetS, j.UsedS, j.ChargedS, j.Slices, j.Preempts, j.Resumed)
	fmt.Printf("\texecs=%d edges=%d bugs=%d checkpoints=%d\n", j.Execs, j.Edges, j.Bugs, j.Checkpoints)
	if j.Error != "" {
		fmt.Printf("\terror: %s\n", j.Error)
	}
}
