GO ?= go

.PHONY: build check test race vet fuzz-smoke resume-smoke daemon-smoke bench-fleet bench-trace bench-restore bench-tier

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the race-enabled test suite.
check: vet race

# fuzz-smoke runs each native fuzz target briefly (the CI fuzz gate).
fuzz-smoke:
	$(GO) test -fuzz=FuzzRecv -fuzztime=10s -run='^$$' ./internal/rsp/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=10s -run='^$$' ./internal/rsp/
	$(GO) test -fuzz=FuzzParseRepro -fuzztime=10s -run='^$$' ./internal/triage/
	$(GO) test -fuzz=FuzzParseManifestLine -fuzztime=10s -run='^$$' ./internal/corpus/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=10s -run='^$$' ./internal/corpus/

# resume-smoke kills a persisted campaign with SIGKILL, verifies the durable
# store, resumes it and asserts coverage is a superset (the CI crash-safety
# gate).
resume-smoke:
	./scripts/resume_smoke.sh

# daemon-smoke boots eofd over a 2-board pool, drives it with eofctl as two
# tenants (one preempted mid-flight), then kill -9s the daemon under a third
# campaign and asserts the restart re-adopts it (the CI control-plane gate).
daemon-smoke:
	./scripts/daemon_smoke.sh

# bench-fleet runs the fleet scaling/round-trip benchmark and records the
# results in BENCH_fleet.json.
bench-fleet:
	./scripts/bench_fleet.sh

# bench-trace runs the tracer-overhead benchmark (nop sink vs JSONL journal)
# and records the results in BENCH_trace.json.
bench-trace:
	./scripts/bench_trace.sh

# bench-restore runs the restore-cost benchmark (full restoration vs the
# snapshot/delta rung) and records the results in BENCH_restore.json.
bench-restore:
	./scripts/bench_restore.sh

# bench-tier runs the tiered-execution benchmark (emulation explore tier vs
# an all-hardware fleet) and records the results in BENCH_tier.json.
bench-tier:
	./scripts/bench_tier.sh
