package eof_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each runs the corresponding experiment at a reduced ("quick")
// profile so the full suite stays tractable; the shape of every comparison
// is asserted where the paper makes a directional claim. Paper-scale runs go
// through cmd/experiments (see EXPERIMENTS.md).
//
// Run with: go test -bench . -benchtime 1x

import (
	"io"
	"testing"
	"time"

	eof "github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/experiments"
)

// benchOpts is the reduced evaluation profile used by the benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Hours: 1, Runs: 1, SeedBase: 77, Parallel: 4}
}

// BenchmarkTable1 regenerates the supported-target matrix, verifying each
// reproducible cell by booting the combination.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
		b.Log("\n" + t.Render())
	}
}

// BenchmarkTable2 runs the bug-detection campaigns and scores findings
// against the planted-bug registry.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalFound == 0 {
			b.Fatal("no registered bugs found")
		}
		b.Log("\n" + res.Table.Render())
		b.ReportMetric(float64(res.TotalFound), "bugs")
	}
}

// BenchmarkTable3 runs the full-system coverage comparison (EOF vs EOF-nf vs
// Tardis/Gustave) and checks the headline direction: EOF ahead of the
// emulator-bound tools on average.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table.Render())
		var eofSum, emuSum float64
		for osName, tools := range res.Edges {
			eofSum += avg(tools["EOF"])
			if t, ok := tools["Tardis"]; ok && len(t) > 0 {
				emuSum += avg(t)
			} else {
				emuSum += avg(tools["Gustave"])
			}
			_ = osName
		}
		b.ReportMetric(eofSum, "eof-edges")
		b.ReportMetric(emuSum, "emulator-edges")
	}
}

// BenchmarkFigure7 regenerates the coverage-growth panels of Figure 7.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Figures) == 0 {
			b.Fatal("no figures")
		}
		for _, f := range res.Figures {
			b.Log("\n" + f.Render())
		}
	}
}

// BenchmarkTable4 runs the application-level comparison (EOF vs GDBFuzz vs
// SHiFT on the HTTP server and JSON modules).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table.Render())
		b.ReportMetric(avg(res.Edges["HTTP Server"]["EOF"]), "http-eof")
		b.ReportMetric(avg(res.Edges["JSON"]["EOF"]), "json-eof")
	}
}

// BenchmarkFigure8 regenerates the application-level growth curves.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range res.Figures {
			b.Log("\n" + f.Render())
		}
	}
}

// BenchmarkMemoryOverhead reproduces §5.5.1 (image-size inflation).
func BenchmarkMemoryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.MemoryOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + t.Render())
	}
}

// BenchmarkExecOverhead reproduces §5.5.2 (payloads per ten minutes with and
// without instrumentation).
func BenchmarkExecOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ExecOverhead(experiments.Options{Hours: 1, Runs: 1, SeedBase: 7, Parallel: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + t.Render())
	}
}

// BenchmarkAblationWatchdogs runs the liveness-mechanism ablation (E7).
func BenchmarkAblationWatchdogs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationWatchdogs(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + t.Render())
	}
}

// BenchmarkAblationGeneration runs the generation-guidance ablation (E8).
func BenchmarkAblationGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationGeneration(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + t.Render())
	}
}

// BenchmarkCampaignThroughput measures raw engine throughput: executions per
// second of host time for a one-virtual-hour FreeRTOS campaign.
func BenchmarkCampaignThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := eof.NewCampaign(eof.Options{OS: "freertos", Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := c.Run(time.Hour)
		c.Close()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Execs), "execs")
		b.ReportMetric(float64(rep.Edges), "edges")
	}
}

// BenchmarkFleet shards one campaign across a 4-board pool and compares it
// against a solo board on the same total board-time budget. Virtual time is
// board wall-clock in this repo, so Report.Duration for the pool is its
// wall-clock (budget/shards) and edges per Duration second is the pool's
// effective discovery rate; 4 boards must deliver at least 1.8x a single
// board's. The vectored link commands must also cut debug-link round trips
// per exec against the legacy multi-command sequences.
func BenchmarkFleet(b *testing.B) {
	const budget = 30 * time.Minute
	run := func(shards int, legacy bool) *eof.Report {
		c, err := eof.NewCampaign(eof.Options{
			OS: "freertos", Seed: 77, Shards: shards,
			SyncEvery: 5 * time.Minute, LegacyLink: legacy,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Run(budget)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	for i := 0; i < b.N; i++ {
		hostStart := time.Now()
		solo := run(1, false)
		pool := run(4, false)
		legacy := run(1, true)
		hostSecs := time.Since(hostStart).Seconds()

		soloRate := float64(solo.Edges) / solo.Duration.Seconds()
		poolRate := float64(pool.Edges) / pool.Duration.Seconds()
		if poolRate < 1.8*soloRate {
			b.Fatalf("4-shard pool rate %.2f edges/s < 1.8x solo %.2f edges/s", poolRate, soloRate)
		}
		vecOps := float64(solo.LinkRoundTrips) / float64(solo.Execs)
		legOps := float64(legacy.LinkRoundTrips) / float64(legacy.Execs)
		if vecOps >= legOps {
			b.Fatalf("vectored link did not cut round trips: %.2f >= %.2f ops/exec", vecOps, legOps)
		}
		b.ReportMetric(soloRate, "solo-edges/s")
		b.ReportMetric(poolRate, "fleet4-edges/s")
		b.ReportMetric(poolRate/soloRate, "speedup")
		b.ReportMetric(vecOps, "vec-ops/exec")
		b.ReportMetric(legOps, "legacy-ops/exec")
		b.ReportMetric(hostSecs, "host-s")
	}
}

// BenchmarkTraceOverhead measures what the observability layer costs the
// campaign: identical FreeRTOS runs with the default nop sink, with the JSONL
// journal streaming to io.Discard, and with the full telemetry stack on top
// (journal + metrics registry + HTTP server), compared on host time. Virtual
// throughput is sink-independent (trace emission burns no virtual time), so
// host time is the honest metric; best-of-3 damps host noise. Both the JSONL
// journal and the metrics-on configuration must cost at most 5% over the nop
// sink each.
func BenchmarkTraceOverhead(b *testing.B) {
	const budget = 2 * time.Hour
	run := func(journal io.Writer, metricsAddr string) (*eof.Report, float64) {
		c, err := eof.NewCampaign(eof.Options{OS: "freertos", Seed: 42, TraceJSONL: journal, MetricsAddr: metricsAddr})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		hostStart := time.Now()
		rep, err := c.Run(budget)
		host := time.Since(hostStart).Seconds()
		if err != nil {
			b.Fatal(err)
		}
		return rep, host
	}
	run(nil, "") // warm caches so round 0 doesn't penalise whichever sink goes first
	for i := 0; i < b.N; i++ {
		nopBest, jsonlBest, metrBest := -1.0, -1.0, -1.0
		var nopRep, jsonlRep, metrRep *eof.Report
		for round := 0; round < 3; round++ {
			rep, host := run(nil, "")
			if nopBest < 0 || host < nopBest {
				nopBest, nopRep = host, rep
			}
			rep, host = run(io.Discard, "")
			if jsonlBest < 0 || host < jsonlBest {
				jsonlBest, jsonlRep = host, rep
			}
			rep, host = run(io.Discard, "127.0.0.1:0")
			if metrBest < 0 || host < metrBest {
				metrBest, metrRep = host, rep
			}
		}
		if nopRep.Execs != jsonlRep.Execs || nopRep.Edges != jsonlRep.Edges {
			b.Fatalf("journal changed campaign behaviour: %d/%d execs, %d/%d edges",
				nopRep.Execs, jsonlRep.Execs, nopRep.Edges, jsonlRep.Edges)
		}
		if nopRep.Execs != metrRep.Execs || nopRep.Edges != metrRep.Edges {
			b.Fatalf("metrics changed campaign behaviour: %d/%d execs, %d/%d edges",
				nopRep.Execs, metrRep.Execs, nopRep.Edges, metrRep.Edges)
		}
		overhead := 100 * (jsonlBest - nopBest) / nopBest
		if overhead > 5 {
			b.Fatalf("JSONL journal costs %.1f%% host time (nop %.3fs, jsonl %.3fs), budget is 5%%",
				overhead, nopBest, jsonlBest)
		}
		metrOverhead := 100 * (metrBest - nopBest) / nopBest
		if metrOverhead > 5 {
			b.Fatalf("metrics-on telemetry costs %.1f%% host time (nop %.3fs, metrics %.3fs), budget is 5%%",
				metrOverhead, nopBest, metrBest)
		}
		b.ReportMetric(float64(nopRep.Execs)/nopBest, "nop-execs/host-s")
		b.ReportMetric(float64(jsonlRep.Execs)/jsonlBest, "jsonl-execs/host-s")
		b.ReportMetric(overhead, "overhead-%")
		b.ReportMetric(float64(metrRep.Execs)/metrBest, "metrics-execs/host-s")
		b.ReportMetric(metrOverhead, "metrics-overhead-%")
	}
}

// BenchmarkTier compares the emulation explore tier against an all-hardware
// fleet at equal shard count (2 emulated explore shards vs 2 hardware
// boards) on coverage discovery rate. The campaign fuzzes the JSON module
// with module-confined instrumentation — the Table-4 application-level
// setup — because whole-image coverage is floored by boot edges both
// substrates share and capped by a surface both saturate, which hides the
// throughput difference tiering exists to exploit; deep parser coverage is
// execution-bound, so discovery tracks the tier's real speed. The rate is
// time-to-coverage: pick a target both runs reach (90% of the smaller final
// edge count) and compare edges per virtual second as target over the time
// each fleet needed to reach it, read off the per-tier barrier series. The
// explore tier must discover at least 5x faster than the all-hardware pool.
func BenchmarkTier(b *testing.B) {
	const budget = 10 * time.Minute
	const syncEvery = 15 * time.Second
	run := func(opts eof.Options) *eof.Report {
		opts.OS = "freertos"
		opts.Seed = 77
		opts.Shards = 2
		opts.SyncEvery = syncEvery
		opts.RestrictAPIs = []string{"json_parse", "json_encode", "json_free"}
		opts.InstrumentModules = []string{"lib/json"}
		c, err := eof.NewCampaign(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Run(budget)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	timeTo := func(series []eof.Sample, target int) time.Duration {
		for _, s := range series {
			if s.Edges >= target {
				return s.At
			}
		}
		return 0
	}
	for i := 0; i < b.N; i++ {
		allHW := run(eof.Options{})
		tiered := run(eof.Options{Tiers: true, EmulShards: 2})
		if len(tiered.Tiers) != 2 {
			b.Fatalf("tiered report has %d tier entries", len(tiered.Tiers))
		}
		explore := tiered.Tiers[1]
		target := allHW.Edges
		if explore.Edges < target {
			target = explore.Edges
		}
		target = target * 9 / 10
		tEm := timeTo(explore.Series, target)
		tHW := timeTo(allHW.Series, target)
		if tEm == 0 || tHW == 0 {
			b.Fatalf("a fleet never reached %d edges (explore %d, all-hw %d)", target, explore.Edges, allHW.Edges)
		}
		emRate := float64(target) / tEm.Seconds()
		hwRate := float64(target) / tHW.Seconds()
		if emRate < 5*hwRate {
			b.Fatalf("explore tier only %.2fx the all-hardware fleet (%.2f vs %.2f edges/s to %d edges), want >= 5x",
				emRate/hwRate, emRate, hwRate, target)
		}
		b.ReportMetric(emRate, "explore-edges/s")
		b.ReportMetric(hwRate, "allhw-edges/s")
		b.ReportMetric(emRate/hwRate, "tier-speedup-x")
		b.ReportMetric(float64(explore.Execs), "explore-execs")
		b.ReportMetric(float64(allHW.Execs), "allhw-execs")
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkRestore measures what the snapshot/delta rung saves: identical
// FreeRTOS campaigns with classic full restoration and with snapshots
// enabled, compared on mean per-restore board-time cost (restoring +
// reflashing over the restore count, all virtual time so the comparison is
// deterministic). The delta rung must cut the mean restore cost by at least
// 3x, and restores must still leave the accounting identities intact.
func BenchmarkRestore(b *testing.B) {
	const budget = 2 * time.Hour
	run := func(snapshots bool) *eof.Report {
		c, err := eof.NewCampaign(eof.Options{OS: "freertos", Seed: 42, Snapshots: snapshots})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Run(budget)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Restores == 0 {
			b.Fatalf("campaign needed no restores (snapshots=%v); nothing to compare", snapshots)
		}
		return rep
	}
	perRestoreMS := func(rep *eof.Report) float64 {
		cost := rep.TimeBy.Restoring + rep.TimeBy.Reflashing
		return float64(cost) / float64(rep.Restores) / float64(time.Millisecond)
	}
	for i := 0; i < b.N; i++ {
		full := run(false)
		snap := run(true)
		if snap.DeltaRestores == 0 {
			b.Fatalf("snapshot campaign made no delta restores: %+v", snap)
		}
		if snap.DeltaRestores+snap.FullRestores != snap.Restores {
			b.Fatalf("delta(%d)+full(%d) != restores(%d)",
				snap.DeltaRestores, snap.FullRestores, snap.Restores)
		}
		if snap.TimeBy.RestoringDelta+snap.TimeBy.RestoringFull != snap.TimeBy.Restoring {
			b.Fatalf("restore sub-buckets do not sum: %+v", snap.TimeBy)
		}
		fullMS, snapMS := perRestoreMS(full), perRestoreMS(snap)
		ratio := fullMS / snapMS
		if ratio < 3 {
			b.Fatalf("delta restore saved only %.2fx (full %.1f ms/restore, snapshot %.1f ms/restore), want >= 3x",
				ratio, fullMS, snapMS)
		}
		b.ReportMetric(fullMS, "full-ms/restore")
		b.ReportMetric(snapMS, "delta-ms/restore")
		b.ReportMetric(ratio, "restore-speedup-x")
		b.ReportMetric(float64(snap.RestoreBytesShipped), "bytes-shipped")
		b.ReportMetric(float64(snap.RestoreBytesSkipped), "bytes-skipped")
	}
}
