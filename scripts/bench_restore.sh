#!/bin/sh
# Runs the restore-cost benchmark (classic full restoration vs the
# snapshot/delta rung on identical campaigns) and records the reported
# metrics in BENCH_restore.json next to the module root. Requires only the
# Go toolchain. The benchmark itself fails unless the delta rung cuts the
# mean per-restore cost by at least 3x.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_restore.json

raw=$(go test -run '^$' -bench '^BenchmarkRestore$' -benchtime 1x . 2>&1) || {
    echo "$raw" >&2
    exit 1
}
echo "$raw"

# The benchmark line looks like:
#   BenchmarkRestore  1  8592165995 ns/op  2278400 bytes-shipped  ...  381.1 restore-speedup-x
echo "$raw" | awk '
/^BenchmarkRestore/ {
    printf "{\n  \"benchmark\": \"BenchmarkRestore\",\n"
    printf "  \"ns_per_op\": %s", $3
    for (i = 5; i + 1 <= NF; i += 2) {
        name = $(i + 1)
        gsub(/[^a-zA-Z0-9_\/.-]/, "", name)
        printf ",\n  \"%s\": %s", name, $i
    }
    printf "\n}\n"
    found = 1
}
END { if (!found) exit 1 }
' > "$out" || { echo "bench_restore: no BenchmarkRestore line in output" >&2; rm -f "$out"; exit 1; }

echo "wrote $out"
