#!/usr/bin/env bash
# Daemon smoke test: boot eofd over a 2-board pool, drive it with eofctl as
# two tenants, preempt one campaign mid-flight and check both still finish;
# then kill -9 the daemon under a third campaign and assert the restarted
# daemon re-adopts it from its durable checkpoint and runs it to done. The
# fair-share ledger on /metrics must account every board-second: the
# per-tenant sums add up to the pool total, restart included.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill -9 "${daemon_pid:-0}" 2>/dev/null || true; rm -rf "$workdir"' EXIT
data="$workdir/data"

go build -o "$workdir/eofd" ./cmd/eofd
go build -o "$workdir/eofctl" ./cmd/eofctl
go build -o "$workdir/eof" ./cmd/eof

start_daemon() {
  "$workdir/eofd" -addr 127.0.0.1:0 -data "$data" -boards 2 -quantum-minutes 1 \
    > "$workdir/eofd.log" 2> "$workdir/eofd.err" &
  daemon_pid=$!
  url=""
  for _ in $(seq 1 100); do
    url=$(grep -o 'http://[0-9.:]*' "$workdir/eofd.log" | head -1 || true)
    [ -n "$url" ] && curl -fsS "$url/healthz" > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "eofd never came up" >&2
  cat "$workdir/eofd.err" >&2
  exit 1
}

ctl() { "$workdir/eofctl" -server "$url" "$@"; }

start_daemon
echo "eofd up at $url (pid $daemon_pid)"

# Two tenants share the pool; alice gets preempted mid-flight and must
# still run her full budget after the barrier requeue.
a_id=$(ctl -tenant alice submit -os freertos -minutes 10 -sync-minutes 0.5 | awk 'NR==1{print $1}')
b_id=$(ctl -tenant bob submit -os freertos -minutes 3 -sync-minutes 0.5 | awk 'NR==1{print $1}')
echo "submitted alice=$a_id bob=$b_id"
ctl -tenant alice preempt "$a_id"

ctl -tenant bob wait "$b_id"
ctl -tenant alice wait "$a_id"
curl -fsS "$url/v1/campaigns/$a_id" | grep -q '"state": "done"'
curl -fsS "$url/v1/campaigns/$b_id" | grep -q '"state": "done"'
curl -fsS "$url/v1/campaigns/$a_id" | grep -Eq '"preempts": [1-9]' || {
  echo "alice's campaign was never preempted" >&2
  curl -fsS "$url/v1/campaigns/$a_id" >&2
  exit 1
}

# The event stream replays the journal from its versioned header line.
# (The job is terminal, so the stream is the complete journal and ends.)
ctl -tenant alice events "$a_id" > "$workdir/events.jsonl"
head -1 "$workdir/events.jsonl" | grep -q '"kind":"journal"'

# Kill -9 the daemon while carol's campaign is mid-budget with at least one
# durable checkpoint banked.
c_id=$(ctl -tenant carol submit -os freertos -minutes 10 -sync-minutes 0.5 | awk 'NR==1{print $1}')
ckpt="$data/corpus/ns/$c_id/freertos/stm32h745/checkpoint.json"
for _ in $(seq 1 240); do
  [ -s "$ckpt" ] && break
  sleep 0.1
done
test -s "$ckpt" || { echo "no checkpoint appeared before the kill" >&2; exit 1; }
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
echo "killed eofd with carol's campaign mid-flight"

# The restarted daemon re-adopts the checkpointed job and finishes it.
: > "$workdir/eofd.log"
start_daemon
echo "eofd back up at $url"
status=$(curl -fsS "$url/v1/campaigns/$c_id")
echo "$status" | grep -q '"resumed": true' || {
  echo "restarted daemon did not adopt carol's campaign: $status" >&2
  exit 1
}
ctl -tenant carol wait "$c_id"
curl -fsS "$url/v1/campaigns/$c_id" | grep -q '"state": "done"'

# Every board-second is accounted: the per-tenant counters on /metrics sum
# to the pool counter, across the restart.
curl -fsS "$url/metrics" > "$workdir/metrics.txt"
awk '
  /^eofd_tenant_board_seconds_total\{/ { tenants += $2 }
  /^eofd_pool_board_seconds_total[ ]/  { pool = $2 }
  END {
    if (pool <= 0) { print "no pool board time recorded"; exit 1 }
    d = tenants - pool; if (d < 0) d = -d
    if (d > 0.01 + pool / 1000) {
      printf "tenant sums %.3f != pool total %.3f\n", tenants, pool; exit 1
    }
    printf "ledger OK: %.0f tenant board-seconds == %.0f pool\n", tenants, pool
  }
' "$workdir/metrics.txt"

echo "daemon smoke OK: preemption, kill -9 adoption and ledger all held"
