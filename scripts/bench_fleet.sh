#!/bin/sh
# Runs the fleet benchmark (solo vs 4-shard pool, vectored vs legacy link)
# and records the reported metrics in BENCH_fleet.json next to the module
# root. Requires only the Go toolchain.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_fleet.json

raw=$(go test -run '^$' -bench '^BenchmarkFleet$' -benchtime 1x . 2>&1) || {
    echo "$raw" >&2
    exit 1
}
echo "$raw"

# The benchmark line looks like:
#   BenchmarkFleet  1  2491626561 ns/op  2.451 fleet4-edges/s  ... 3.698 speedup ...
echo "$raw" | awk '
/^BenchmarkFleet/ {
    printf "{\n  \"benchmark\": \"BenchmarkFleet\",\n"
    printf "  \"ns_per_op\": %s", $3
    for (i = 5; i + 1 <= NF; i += 2) {
        name = $(i + 1)
        gsub(/[^a-zA-Z0-9_\/.-]/, "", name)
        printf ",\n  \"%s\": %s", name, $i
    }
    printf "\n}\n"
    found = 1
}
END { if (!found) exit 1 }
' > "$out" || { echo "bench_fleet: no BenchmarkFleet line in output" >&2; rm -f "$out"; exit 1; }

echo "wrote $out"
