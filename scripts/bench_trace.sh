#!/bin/sh
# Runs the tracer-overhead benchmark (nop sink vs JSONL journal on identical
# campaigns) and records the reported metrics in BENCH_trace.json next to the
# module root. Requires only the Go toolchain.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_trace.json

raw=$(go test -run '^$' -bench '^BenchmarkTraceOverhead$' -benchtime 1x . 2>&1) || {
    echo "$raw" >&2
    exit 1
}
echo "$raw"

# The benchmark line looks like:
#   BenchmarkTraceOverhead  1  4571234567 ns/op  2411 nop-execs/host-s  2389 jsonl-execs/host-s  0.92 overhead-%
echo "$raw" | awk '
/^BenchmarkTraceOverhead/ {
    printf "{\n  \"benchmark\": \"BenchmarkTraceOverhead\",\n"
    printf "  \"ns_per_op\": %s", $3
    for (i = 5; i + 1 <= NF; i += 2) {
        name = $(i + 1)
        gsub(/[^a-zA-Z0-9_\/.-]/, "", name)
        printf ",\n  \"%s\": %s", name, $i
    }
    printf "\n}\n"
    found = 1
}
END { if (!found) exit 1 }
' > "$out" || { echo "bench_trace: no BenchmarkTraceOverhead line in output" >&2; rm -f "$out"; exit 1; }

echo "wrote $out"
