#!/bin/sh
# Runs the tiered-execution benchmark (emulation explore tier vs an
# all-hardware fleet at equal shard count, compared on time-to-coverage of
# the JSON module) and records the reported metrics in BENCH_tier.json next
# to the module root. Requires only the Go toolchain. The benchmark itself
# fails unless the explore tier discovers coverage at least 5x faster than
# the all-hardware pool.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_tier.json

raw=$(go test -run '^$' -bench '^BenchmarkTier$' -benchtime 1x . 2>&1) || {
    echo "$raw" >&2
    exit 1
}
echo "$raw"

# The benchmark line looks like:
#   BenchmarkTier  1  48770486558 ns/op  0.85 allhw-edges/s  ...  8.0 tier-speedup-x
echo "$raw" | awk '
/^BenchmarkTier/ {
    printf "{\n  \"benchmark\": \"BenchmarkTier\",\n"
    printf "  \"ns_per_op\": %s", $3
    for (i = 5; i + 1 <= NF; i += 2) {
        name = $(i + 1)
        gsub(/[^a-zA-Z0-9_\/.-]/, "", name)
        printf ",\n  \"%s\": %s", name, $i
    }
    printf "\n}\n"
    found = 1
}
END { if (!found) exit 1 }
' > "$out" || { echo "bench_tier: no BenchmarkTier line in output" >&2; rm -f "$out"; exit 1; }

echo "wrote $out"
