#!/usr/bin/env bash
# Resume smoke test: start a persisted campaign, kill -9 it mid-flight, check
# the store survives an integrity walk, resume it, and assert the resumed
# campaign's coverage is a superset of what the killed one had durably
# checkpointed. This is the crash-safety contract end to end, with a real
# SIGKILL instead of a simulated one.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
store="$workdir/corpus"
ckpt="$store/freertos/stm32h745/checkpoint.json"

go build -o "$workdir/eof" ./cmd/eof
go build -o "$workdir/eofcorpus" ./cmd/eofcorpus
go build -o "$workdir/eoftrace" ./cmd/eoftrace

# A deliberately unreachable budget with a tight checkpoint cadence: the
# campaign will still be running whenever we get around to killing it, and
# several epochs will have committed.
"$workdir/eof" -os freertos -seed 7 -minutes 100000 -sync-minutes 1 \
  -corpus "$store" -trace "$workdir/first.jsonl" \
  > "$workdir/first.log" 2>&1 &
pid=$!

for _ in $(seq 1 240); do
  [ -s "$ckpt" ] && break
  sleep 0.5
done
test -s "$ckpt" || { echo "no checkpoint appeared before the kill" >&2; exit 1; }
sleep 1 # let a few more epochs land mid-write
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

# The killed store must verify: every blob against its content address, the
# manifest against its schema, the checkpoint against its self-checksum.
# Damage from the kill (a torn manifest tail at worst) is tolerated, not fatal.
"$workdir/eofcorpus" -dir "$store" -os freertos -board stm32h745 verify
before=$("$workdir/eofcorpus" -dir "$store" -os freertos -board stm32h745 -edges info)
test "$before" -gt 0 || { echo "killed store checkpointed no coverage" >&2; exit 1; }
"$workdir/eofcorpus" -dir "$store" -os freertos -board stm32h745 info

# Resume from the killed store and run a bounded continuation.
"$workdir/eof" -os freertos -resume "$store" -minutes 5 -sync-minutes 1 \
  -trace "$workdir/second.jsonl" | tee "$workdir/second.log"
grep -q 'resumed:' "$workdir/second.log"

# Coverage superset: the resumed campaign starts from the checkpointed edges,
# so its final branch count can only be >= what the kill left behind.
after=$(grep -o 'branches: [0-9]*' "$workdir/second.log" | head -1 | awk '{print $2}')
test "$after" -ge "$before" || {
  echo "resumed coverage $after below the killed checkpoint's $before" >&2
  exit 1
}

# Both journals must parse: the killed one's torn tail is tolerated with a
# warning, the resumed one is whole.
"$workdir/eoftrace" summary "$workdir/first.jsonl" > /dev/null
"$workdir/eoftrace" summary "$workdir/second.jsonl" > /dev/null

echo "resume smoke OK: $before edges survived the kill, $after after resume"
