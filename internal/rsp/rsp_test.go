package rsp

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func pipePair() (*Conn, *Conn, func()) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b), func() { a.Close(); b.Close() }
}

func TestSendRecvRoundTrip(t *testing.T) {
	c1, c2, done := pipePair()
	defer done()
	go func() {
		c1.Send([]byte("m1000,40"))
	}()
	got, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "m1000,40" {
		t.Fatalf("got %q", got)
	}
}

func TestChecksum(t *testing.T) {
	if Checksum([]byte("")) != 0 {
		t.Fatal("empty checksum")
	}
	if Checksum([]byte{0xFF, 0x02}) != 0x01 {
		t.Fatalf("mod-256 wrap: %#x", Checksum([]byte{0xFF, 0x02}))
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		// The framing disallows raw '#' and '$' only via checksum recovery;
		// payloads are arbitrary here but filtered to the safe alphabet as
		// the protocol layer uses hex encoding for binary data.
		for i := range payload {
			payload[i] = 'a' + payload[i]%26
		}
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		c1, c2, done := pipePair()
		defer done()
		errc := make(chan error, 1)
		go func() { errc <- c1.Send(payload) }()
		got, err := c2.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// corruptOnce flips a byte of the first frame that passes through.
type corruptOnce struct {
	io.Reader
	w         io.Writer
	corrupted bool
}

func (c *corruptOnce) Write(p []byte) (int, error) {
	if !c.corrupted && len(p) > 3 && p[0] == '$' {
		c.corrupted = true
		q := append([]byte(nil), p...)
		q[1] ^= 0x20 // damage payload, keep framing
		return c.w.Write(q)
	}
	return c.w.Write(p)
}

func TestRetransmitOnCorruption(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender := NewConn(&corruptOnce{Reader: a, w: a})
	receiver := NewConn(b)

	errc := make(chan error, 1)
	go func() { errc <- sender.Send([]byte("hello")) }()
	got, err := receiver.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("after retransmit got %q", got)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestNoiseBeforePacket(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	receiver := NewConn(b)
	go func() {
		a.Write([]byte("garbage++"))
		NewConn(a).Send([]byte("real"))
	}()
	got, err := receiver.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "real" {
		t.Fatalf("got %q", got)
	}
}

func TestLinkClosed(t *testing.T) {
	a, b := net.Pipe()
	b.Close()
	a.Close()
	c := NewConn(a)
	if err := c.Send([]byte("x")); err == nil {
		t.Fatal("send on closed link succeeded")
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("recv on closed link succeeded")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	c := NewConn(nil)
	big := make([]byte, MaxPayload+1)
	if err := c.Send(big); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestExchange covers the request/response helper the debug client uses for
// every command: one Send, one Recv, strict alternation.
func TestExchange(t *testing.T) {
	host, probe := net.Pipe()
	defer host.Close()
	defer probe.Close()
	hc, pc := NewConn(host), NewConn(probe)
	go func() {
		for {
			req, err := pc.Recv()
			if err != nil {
				return
			}
			if err := pc.Send(append([]byte("echo:"), req...)); err != nil {
				return
			}
		}
	}()
	for _, msg := range []string{"a", "vCovDrain:20000000,40", ""} {
		resp, err := hc.Exchange([]byte(msg))
		if err != nil {
			t.Fatalf("exchange %q: %v", msg, err)
		}
		if string(resp) != "echo:"+msg {
			t.Fatalf("exchange %q -> %q", msg, resp)
		}
	}
}
