package rsp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// rwPair glues an independent reader and writer into an io.ReadWriter, like
// the two directions of a serial adapter.
type rwPair struct {
	r io.Reader
	w io.Writer
}

func (p rwPair) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p rwPair) Write(b []byte) (int, error) { return p.w.Write(b) }

// FuzzRecv throws arbitrary wire bytes at the framing parser. It must never
// panic, and any payload it accepts must verify against its own checksum
// when re-framed — a corrupted frame can only ever surface as an error, not
// as silently wrong bytes.
func FuzzRecv(f *testing.F) {
	f.Add([]byte("$OK#9a"))
	f.Add([]byte("$#00"))
	f.Add([]byte("noise before$qSupported#df"))
	f.Add([]byte("$bad#zz"))
	f.Add([]byte("$first#xx$m0,4#c5"))
	f.Add(bytes.Repeat([]byte{'$'}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(rwPair{bytes.NewReader(data), io.Discard})
		payload, err := c.Recv()
		if err != nil {
			return
		}
		if len(payload) > MaxPayload {
			t.Fatalf("accepted oversized payload: %d bytes", len(payload))
		}
		// The accepted payload must have arrived under a matching checksum:
		// re-frame it and parse it back.
		if bytes.ContainsRune(payload, '#') {
			t.Fatalf("accepted payload containing the frame terminator: %q", payload)
		}
		var wire bytes.Buffer
		tx := NewConn(rwPair{strings.NewReader("+"), &wire})
		if err := tx.Send(payload); err != nil {
			t.Fatalf("accepted payload does not re-frame: %v", err)
		}
		rx := NewConn(rwPair{bytes.NewReader(wire.Bytes()), io.Discard})
		got, err := rx.Recv()
		if err != nil {
			t.Fatalf("re-framed payload does not re-parse: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}
	})
}

// FuzzRoundTrip feeds arbitrary payloads through Send and back through Recv:
// every frame the sender can emit must decode to the identical bytes. The
// framing has no escape mechanism, so payloads containing the terminator are
// rejected from the property (the debug protocol's command vocabulary never
// produces them).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("qSupported"))
	f.Add([]byte(""))
	f.Add([]byte("m8000000,40"))
	f.Add([]byte{0x00, 0xFF, 0x7F, '$', '+', '-'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxPayload || bytes.ContainsRune(payload, '#') {
			return
		}
		var wire bytes.Buffer
		tx := NewConn(rwPair{strings.NewReader("+"), &wire})
		if err := tx.Send(payload); err != nil {
			t.Fatalf("send failed: %v", err)
		}
		rx := NewConn(rwPair{bytes.NewReader(wire.Bytes()), io.Discard})
		got, err := rx.Recv()
		if err != nil {
			t.Fatalf("recv failed on a well-formed frame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}
	})
}
