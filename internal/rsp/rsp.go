// Package rsp implements the GDB Remote-Serial-Protocol-style framing used on
// the debug link: '$'-prefixed payloads with a mod-256 two-hex-digit
// checksum, '+'/'-' acknowledgements and bounded retransmission. Putting a
// real wire protocol (with corruption detection and retries) between host and
// target keeps the fuzzer honest about operating through a narrow,
// failure-prone channel, as it must on physical JTAG/SWD probes.
package rsp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// MaxPayload bounds a single packet's payload, as adapter buffers do.
const MaxPayload = 64 * 1024

// MaxRetries is how many times a sender retransmits on NAK before giving up.
const MaxRetries = 3

// ErrLinkClosed reports that the underlying transport is gone.
var ErrLinkClosed = errors.New("rsp: link closed")

// ErrChecksum reports an unrecoverable framing failure after retries.
var ErrChecksum = errors.New("rsp: checksum failure after retries")

// Checksum computes the RSP mod-256 payload checksum.
func Checksum(payload []byte) byte {
	var s byte
	for _, b := range payload {
		s += b
	}
	return s
}

// Conn frames packets over an io.ReadWriter.
type Conn struct {
	rw io.ReadWriter
	br *bufio.Reader
}

// NewConn wraps rw with packet framing.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, br: bufio.NewReaderSize(rw, 4096)}
}

// Send transmits one packet and waits for the ACK, retransmitting on NAK.
func (c *Conn) Send(payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("rsp: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	frame := make([]byte, 0, len(payload)+4)
	frame = append(frame, '$')
	frame = append(frame, payload...)
	frame = append(frame, '#')
	frame = append(frame, hexDigit(Checksum(payload)>>4), hexDigit(Checksum(payload)&0xF))

	for attempt := 0; attempt <= MaxRetries; attempt++ {
		if _, err := c.rw.Write(frame); err != nil {
			return fmt.Errorf("%w: %v", ErrLinkClosed, err)
		}
		ack, err := c.br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrLinkClosed, err)
		}
		switch ack {
		case '+':
			return nil
		case '-':
			continue
		default:
			return fmt.Errorf("rsp: unexpected ack byte %q", ack)
		}
	}
	return ErrChecksum
}

// Recv reads one packet, verifying its checksum and emitting ACK/NAK. On
// checksum failure it NAKs and waits for the retransmission, up to
// MaxRetries.
func (c *Conn) Recv() ([]byte, error) {
	for attempt := 0; attempt <= MaxRetries; attempt++ {
		payload, err := c.recvOnce()
		if err == nil {
			if _, werr := c.rw.Write([]byte{'+'}); werr != nil {
				return nil, fmt.Errorf("%w: %v", ErrLinkClosed, werr)
			}
			return payload, nil
		}
		if errors.Is(err, errBadSum) {
			if _, werr := c.rw.Write([]byte{'-'}); werr != nil {
				return nil, fmt.Errorf("%w: %v", ErrLinkClosed, werr)
			}
			continue
		}
		return nil, err
	}
	return nil, ErrChecksum
}

// Exchange performs one request/response round trip: it sends req and
// returns the peer's reply. This is the client side of the strict
// command/response discipline the debug link runs — exactly one reply per
// command, no unsolicited traffic — and the unit the ocd.Client op counter
// ticks on.
func (c *Conn) Exchange(req []byte) ([]byte, error) {
	if err := c.Send(req); err != nil {
		return nil, err
	}
	return c.Recv()
}

var errBadSum = errors.New("rsp: bad checksum")

func (c *Conn) recvOnce() ([]byte, error) {
	// Skip to the start-of-packet marker, tolerating line noise.
	for {
		b, err := c.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLinkClosed, err)
		}
		if b == '$' {
			break
		}
	}
	payload := make([]byte, 0, 64)
	for {
		b, err := c.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLinkClosed, err)
		}
		if b == '#' {
			break
		}
		if len(payload) >= MaxPayload {
			return nil, fmt.Errorf("rsp: oversized packet")
		}
		payload = append(payload, b)
	}
	var sum [2]byte
	if _, err := io.ReadFull(c.br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLinkClosed, err)
	}
	want, err := parseHexByte(sum[0], sum[1])
	if err != nil {
		return nil, errBadSum
	}
	if Checksum(payload) != want {
		return nil, errBadSum
	}
	return payload, nil
}

func hexDigit(v byte) byte {
	const digits = "0123456789abcdef"
	return digits[v&0xF]
}

func parseHexByte(hi, lo byte) (byte, error) {
	h, err := hexVal(hi)
	if err != nil {
		return 0, err
	}
	l, err := hexVal(lo)
	if err != nil {
		return 0, err
	}
	return h<<4 | l, nil
}

func hexVal(b byte) (byte, error) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', nil
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, nil
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, nil
	}
	return 0, fmt.Errorf("rsp: bad hex digit %q", b)
}
