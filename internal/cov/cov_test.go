package cov

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

func newRT(capacity int) (*Runtime, []byte) {
	ram := make([]byte, BufferBytes(capacity))
	return NewRuntime(ram, capacity), ram
}

func TestTracePCRecordsOncePerEpoch(t *testing.T) {
	rt, ram := newRT(16)
	rt.TracePC(0x100)
	rt.TracePC(0x104)
	rt.TracePC(0x100) // new edge (104->100), records
	if rt.Count() != 3 {
		t.Fatalf("count = %d", rt.Count())
	}
	// Same path again: all edges guarded, nothing recorded.
	rt.TracePC(0x104)
	rt.TracePC(0x100)
	if rt.Count() != 3 {
		t.Fatalf("after repeat, count = %d", rt.Count())
	}
	entries, lost, err := Decode(ram)
	if err != nil || lost != 0 || len(entries) != 3 {
		t.Fatalf("decode: %d entries, lost %d, %v", len(entries), lost, err)
	}
}

func TestEpochResetReRecords(t *testing.T) {
	rt, _ := newRT(16)
	rt.TracePC(0x100)
	rt.TracePC(0x104)
	rt.ResetEpoch()
	rt.TracePC(0x100)
	rt.TracePC(0x104)
	if rt.Count() != 4 {
		t.Fatalf("count = %d", rt.Count())
	}
}

func TestBufferFullTrapAndHostClear(t *testing.T) {
	rt, ram := newRT(4)
	trapped := 0
	for i := 0; i < 10; i++ {
		if rt.TracePC(uint64(0x1000 + i*4)) {
			trapped++
		}
	}
	if trapped != 1 {
		t.Fatalf("trapped %d times, want exactly 1", trapped)
	}
	entries, lost, err := Decode(ram)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || lost == 0 {
		t.Fatalf("entries %d lost %d", len(entries), lost)
	}
	// Host clears the buffer (count=0), runtime self-heals and records again.
	binary.LittleEndian.PutUint32(ram[4:], 0)
	if rt.TracePC(0x9000) {
		t.Fatal("trap immediately after clear")
	}
	if rt.Count() != 1 {
		t.Fatalf("count after clear = %d", rt.Count())
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil decoded")
	}
	raw := make([]byte, BufferBytes(4))
	if _, _, err := Decode(raw); err == nil {
		t.Fatal("zero magic decoded")
	}
	_, ram := newRT(4)
	binary.LittleEndian.PutUint32(ram[4:], 99) // count > capacity
	if _, _, err := Decode(ram); err == nil {
		t.Fatal("corrupt count decoded")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	fresh := c.Ingest([]uint32{1, 2, 3, 2})
	if len(fresh) != 3 || c.Total() != 3 {
		t.Fatalf("fresh %v total %d", fresh, c.Total())
	}
	fresh = c.Ingest([]uint32{3, 4})
	if len(fresh) != 1 || fresh[0] != 4 || c.Total() != 4 {
		t.Fatalf("second ingest %v", fresh)
	}
	if !c.Has(1) || c.Has(99) {
		t.Fatal("Has wrong")
	}
}

func TestEdgeDistribution(t *testing.T) {
	// Edges for distinct (prev, cur) pairs should rarely collide.
	seen := map[uint32]bool{}
	collisions := 0
	for p := uint64(0); p < 64; p++ {
		for c := uint64(0); c < 64; c++ {
			e := Edge(0x08000000+p*4, 0x08000000+c*4)
			if seen[e] {
				collisions++
			}
			seen[e] = true
		}
	}
	if collisions > 8 {
		t.Fatalf("%d collisions in 4096 edges", collisions)
	}
}

func TestEdgeOrderSensitive(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a)|1, uint64(b)|2
		if x == y {
			return true
		}
		return Edge(x, y) != Edge(y, x) || x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorConcurrentIngest hammers one collector from several
// goroutines — the fleet's shared-sink usage — and relies on the race
// detector to catch unsynchronised access. The final set must be the union
// regardless of interleaving.
func TestCollectorConcurrentIngest(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Half shared across workers, half unique to this one.
				c.Ingest([]uint32{uint32(i), uint32(10_000 + w*1000 + i)})
				c.AddLost(1)
				c.Has(uint32(i))
				c.Total()
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Total(), 200+workers*200; got != want {
		t.Fatalf("union size %d, want %d", got, want)
	}
	if c.Lost != workers*200 {
		t.Fatalf("lost %d, want %d", c.Lost, workers*200)
	}
	edges := c.Edges()
	if len(edges) != c.Total() {
		t.Fatalf("Edges() length %d != Total() %d", len(edges), c.Total())
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1] >= edges[i] {
			t.Fatal("Edges() not sorted ascending")
		}
	}
}
