// Package cov implements the coverage pipeline: a SanCov-style runtime
// compiled into the target that records edge hits into a bounded buffer in
// target RAM, and the host-side collector that reads, decodes and clears the
// buffer over the debug link.
//
// The target half mirrors the paper's mechanism: instrumentation callbacks
// (__sanitizer_cov_trace_* analogues) call write_comp_data to append edge
// records; when the buffer fills, execution traps at _kcmp_buf_full so the
// host can drain it mid-run. Edges are recorded at most once per guard epoch
// (the agent resets guards at the start of each test case), matching
// guard-based SanCov.
package cov

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Buffer layout in target RAM (little-endian):
//
//	+0  u32 magic
//	+4  u32 count     — valid entries
//	+8  u32 capacity  — total entry slots
//	+12 u32 lost      — edges dropped while the buffer was full
//	+16 u32 entries[capacity]
const (
	Magic      = 0xEDFEC07E // arbitrary stable constant
	headerSize = 16
	entrySize  = 4
)

// BufferBytes returns the RAM footprint of a buffer with n entry slots.
func BufferBytes(n int) int { return headerSize + n*entrySize }

// Edge folds a (prev, cur) block pair into the 32-bit edge identifier, the
// same prev^(cur>>1) shape AFL-family tools use.
func Edge(prev, cur uint64) uint32 {
	return uint32(prev) ^ uint32(cur>>1) ^ uint32(cur<<17) ^ uint32(prev>>31)
}

// Runtime is the target-side coverage collector. It writes directly into the
// RAM slab that the board maps, so host debug-link reads observe it with no
// extra copying — exactly like reading a device's SRAM.
type Runtime struct {
	buf  []byte
	cap  int
	prev uint64
	// Edge guards: an epoch-tagged slot array instead of a map —
	// constant-time and allocation-free, like real SanCov guard arrays.
	// Distinct edges sharing a slot collapse for the epoch (first-wins),
	// the same undercounting real AFL-style bitmaps exhibit.
	guardEpoch []uint32
	epoch      uint32
	// filter, when set, confines instrumentation to the PCs it accepts —
	// the build-time "instrument only these modules" configuration of the
	// paper's application-level evaluation.
	filter func(pc uint64) bool
	// full latches once the buffer filled; cleared when the host resets the
	// count word via ClearedByHost.
	full bool
}

// guardSlots sizes the guard table (64Ki entries).
const guardSlots = 1 << 16

// SetFilter confines recording to PCs the predicate accepts (nil = all).
func (r *Runtime) SetFilter(f func(pc uint64) bool) { r.filter = f }

// NewRuntime initialises a coverage buffer inside ram (which must be at least
// BufferBytes(capacity) long) and returns the runtime managing it.
func NewRuntime(ram []byte, capacity int) *Runtime {
	if len(ram) < BufferBytes(capacity) {
		panic(fmt.Sprintf("cov: ram slab %d too small for %d entries", len(ram), capacity))
	}
	r := &Runtime{
		buf:        ram,
		cap:        capacity,
		guardEpoch: make([]uint32, guardSlots),
		epoch:      1,
	}
	binary.LittleEndian.PutUint32(ram[0:], Magic)
	binary.LittleEndian.PutUint32(ram[4:], 0)
	binary.LittleEndian.PutUint32(ram[8:], uint32(capacity))
	binary.LittleEndian.PutUint32(ram[12:], 0)
	return r
}

// TracePC is the per-block instrumentation callback. It returns true when
// the buffer just became full and the caller should trap to the host.
func (r *Runtime) TracePC(pc uint64) (trap bool) {
	if r.filter != nil && !r.filter(pc) {
		r.prev = 0 // a gap in instrumented code breaks the edge chain
		return false
	}
	e := Edge(r.prev, pc)
	r.prev = pc
	slot := e & (guardSlots - 1)
	if r.guardEpoch[slot] == r.epoch {
		// Slot taken this epoch: either this edge (seen) or a colliding one.
		// Colliding edges are dropped for the epoch — first-wins, like AFL
		// map collisions — because re-recording on every alternation floods
		// the buffer from hot loops.
		return false
	}
	r.guardEpoch[slot] = r.epoch
	count := binary.LittleEndian.Uint32(r.buf[4:])
	if r.full && int(count) < r.cap {
		// The host cleared the buffer (wrote count=0) after the full trap.
		r.full = false
	}
	if int(count) >= r.cap {
		lost := binary.LittleEndian.Uint32(r.buf[12:])
		binary.LittleEndian.PutUint32(r.buf[12:], lost+1)
		if !r.full {
			r.full = true
			return true
		}
		return false
	}
	binary.LittleEndian.PutUint32(r.buf[headerSize+int(count)*entrySize:], e)
	binary.LittleEndian.PutUint32(r.buf[4:], count+1)
	if int(count)+1 >= r.cap && !r.full {
		r.full = true
		return true
	}
	return false
}

// ResetEpoch clears the guard set and the prev-PC state; the agent calls it
// as each test case begins so per-case edge sets are comparable.
func (r *Runtime) ResetEpoch() {
	r.epoch++
	if r.epoch == 0 { // wrapped: stale tags could alias, so clear
		for i := range r.guardEpoch {
			r.guardEpoch[i] = 0
		}
		r.epoch = 1
	}
	r.prev = 0
}

// SyncFromRAM refreshes target-side state after the host cleared the buffer
// by writing count=0 through the debug link.
func (r *Runtime) SyncFromRAM() {
	if binary.LittleEndian.Uint32(r.buf[4:]) == 0 {
		r.full = false
	}
}

// Count returns the number of valid entries (target-side view).
func (r *Runtime) Count() int {
	return int(binary.LittleEndian.Uint32(r.buf[4:]))
}

// Decode parses a raw buffer snapshot read over the debug link.
func Decode(raw []byte) (entries []uint32, lost uint32, err error) {
	if len(raw) < headerSize {
		return nil, 0, fmt.Errorf("cov: snapshot too short (%d bytes)", len(raw))
	}
	if m := binary.LittleEndian.Uint32(raw[0:]); m != Magic {
		return nil, 0, fmt.Errorf("cov: bad magic %#x", m)
	}
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	capacity := int(binary.LittleEndian.Uint32(raw[8:]))
	lost = binary.LittleEndian.Uint32(raw[12:])
	if count > capacity || len(raw) < BufferBytes(count) {
		return nil, 0, fmt.Errorf("cov: corrupt header count=%d cap=%d len=%d", count, capacity, len(raw))
	}
	entries = make([]uint32, count)
	for i := 0; i < count; i++ {
		entries[i] = binary.LittleEndian.Uint32(raw[headerSize+i*entrySize:])
	}
	return entries, lost, nil
}

// Collector is the host-side accumulator of global edge coverage. It is safe
// for concurrent use: fleet campaigns share one collector across shard
// engines, each draining its own board from its own goroutine.
type Collector struct {
	mu   sync.Mutex
	seen map[uint32]struct{}
	// Lost accumulates dropped-edge counts reported by the target.
	Lost uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{seen: make(map[uint32]struct{})}
}

// Ingest merges a batch of edges, returning how many were globally new and
// the list of new edges (for corpus attribution).
func (c *Collector) Ingest(entries []uint32) (fresh []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		if _, ok := c.seen[e]; !ok {
			c.seen[e] = struct{}{}
			fresh = append(fresh, e)
		}
	}
	return fresh
}

// AddLost accumulates a dropped-edge count reported by the target.
func (c *Collector) AddLost(n uint32) {
	c.mu.Lock()
	c.Lost += uint64(n)
	c.mu.Unlock()
}

// Total returns the number of distinct edges observed — the "branches found"
// metric of the paper's Tables 3 and 4.
func (c *Collector) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Has reports whether edge e has been observed.
func (c *Collector) Has(e uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.seen[e]
	return ok
}

// Edges returns the observed edge set in ascending order, so merged fleet
// reports and cross-shard imports stay deterministic.
func (c *Collector) Edges() []uint32 {
	c.mu.Lock()
	out := make([]uint32, 0, len(c.seen))
	for e := range c.seen {
		out = append(out, e)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
