package corpus

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParseManifestLine throws arbitrary bytes at the manifest line decoder.
// It must never panic, and any line it accepts must survive a re-encode /
// re-parse round trip unchanged — a half-written manifest line can only ever
// surface as an error (which the loader turns into truncation), never as a
// silently different entry.
func FuzzParseManifestLine(f *testing.F) {
	seed := &Entry{
		Hash:     HashBlob([]byte("prog")),
		NewEdges: 3,
		Edges:    []uint32{1, 7, 9},
		Shard:    2,
		Epoch:    5,
		At:       3 * time.Second,
	}
	f.Add(bytes.TrimRight(AppendManifestLine(nil, seed), "\n"))
	f.Add([]byte(`{"hash":"zz"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"hash":"` + HashBlob(nil) + `","shard":-1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, line []byte) {
		e, err := ParseManifestLine(line)
		if err != nil {
			return
		}
		if len(e.Hash) != 64 {
			t.Fatalf("accepted entry with malformed hash %q", e.Hash)
		}
		if e.NewEdges < 0 || e.Epoch < 0 || e.At < 0 || e.Shard < -1 {
			t.Fatalf("accepted entry with negative provenance: %+v", e)
		}
		enc := AppendManifestLine(nil, e)
		e2, err := ParseManifestLine(bytes.TrimRight(enc, "\n"))
		if err != nil {
			t.Fatalf("accepted entry does not re-parse: %v", err)
		}
		enc2 := AppendManifestLine(nil, e2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed entry: %q -> %q", enc, enc2)
		}
	})
}

// FuzzDecodeCheckpoint throws arbitrary bytes at the checkpoint decoder. The
// self-checksum means a mutated checkpoint must be rejected, never partially
// believed; anything accepted must re-encode to the identical bytes.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid, err := EncodeCheckpoint(&Checkpoint{
		V:        CheckpointVersion,
		OS:       "freertos",
		Board:    "stm32h745",
		Seed:     42,
		NextSeed: 42 + ResumeSeedStride,
		Epoch:    3,
		Elapsed:  90 * time.Second,
		Edges:    []uint32{1, 2, 3},
		Corpus:   []string{HashBlob([]byte("p"))},
		Clusters: []string{"hf:0x2000_pc:0x8000"},
		Cursors:  []ShardCursor{{Shard: 0, Seed: 99, Execs: 1000}},
		Distills: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1,"checksum":"nope"}`))
	f.Add([]byte(`null`))
	f.Add(bytes.Replace(valid, []byte("freertos"), []byte("fxeertos"), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if ck.V != CheckpointVersion {
			t.Fatalf("accepted checkpoint with version %d", ck.V)
		}
		enc, err := EncodeCheckpoint(ck)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		ck2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		enc2, err := EncodeCheckpoint(ck2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed checkpoint: %q -> %q", enc, enc2)
		}
	})
}
