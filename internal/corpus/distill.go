package corpus

import (
	"fmt"
	"os"
)

// Distill shrinks the store to a minimal covering set: a greedy set cover
// over the union of the entries' attributed edges (the classic corpus
// minimization, metadata-only — no board replays needed because every
// admission carries its fresh-edge attribution). Kept entries preserve
// admission order; dropped entries are removed from the manifest atomically
// (temp + fsync + rename) before their blobs are deleted, so a crash
// mid-distill leaves at worst orphan blobs, never a manifest pointing at
// nothing. Returns how many entries were kept and dropped.
//
// The selection is deterministic: the entry covering the most still-uncovered
// edges wins each round, ties broken by admission order. Entries whose every
// attributed edge is covered by stronger seeds are dropped — checkpoint
// coverage is unaffected, since the cumulative bitmap lives in the
// checkpoint, not the manifest. Entries with no attribution recorded at all
// are kept: without edges there is no proof of redundancy.
func (s *Store) Distill() (kept, dropped int, err error) {
	n := len(s.order)
	if n == 0 {
		return 0, 0, nil
	}
	covered := make(map[uint32]bool)
	keep := make(map[string]bool, n)
	for _, h := range s.order {
		if len(s.entries[h].Edges) == 0 {
			keep[h] = true
		}
	}
	remaining := append([]string(nil), s.order...)
	for {
		bestIdx, bestGain := -1, 0
		for i, h := range remaining {
			if h == "" {
				continue
			}
			gain := 0
			for _, e := range s.entries[h].Edges {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		h := remaining[bestIdx]
		remaining[bestIdx] = ""
		keep[h] = true
		for _, e := range s.entries[h].Edges {
			covered[e] = true
		}
	}
	if len(keep) == n {
		return n, 0, nil
	}
	if err := s.rewriteManifest(keep); err != nil {
		return 0, 0, err
	}
	// Manifest is durable without the dropped entries; now the blobs are
	// orphans and can go. Best effort — a leftover blob is harmless.
	var droppedHashes []string
	for _, h := range s.order {
		if !keep[h] {
			droppedHashes = append(droppedHashes, h)
		}
	}
	newOrder := make([]string, 0, len(keep))
	for _, h := range s.order {
		if keep[h] {
			newOrder = append(newOrder, h)
		}
	}
	s.order = newOrder
	for _, h := range droppedHashes {
		delete(s.entries, h)
		_ = os.Remove(s.blobPath(h))
	}
	return len(s.order), len(droppedHashes), nil
}

// rewriteManifest atomically replaces the manifest with the kept entries in
// admission order.
func (s *Store) rewriteManifest(keep map[string]bool) error {
	var buf []byte
	for _, h := range s.order {
		if keep[h] {
			buf = AppendManifestLine(buf, s.entries[h])
		}
	}
	if err := writeFileSync(s.manifestPath(), buf); err != nil {
		return fmt.Errorf("corpus: distill manifest rewrite: %w", err)
	}
	return nil
}
