// Package corpus is the campaign persistence layer: a content-addressed
// on-disk corpus store plus an epoch-checkpoint format that together make a
// fuzzing campaign crash-safe. Everything the in-memory campaign accumulates
// — coverage-increasing programs with their edge attribution, the cumulative
// coverage bitmap, crash dedup clusters, elapsed virtual time and per-shard
// RNG cursors — is written durably at every fleet epoch barrier, so a
// `kill -9` or host crash loses at most the epoch in flight.
//
// On-disk layout, namespaced per target so one store root can accumulate
// corpora for many OS/board pairs:
//
//	<root>/<os>/<board>/blobs/<sha256>.json   program blobs (portable JSON form)
//	<root>/<os>/<board>/manifest.jsonl        append-only admission provenance
//	<root>/<os>/<board>/checkpoint.json       last epoch-barrier checkpoint
//	<root>/<os>/<board>/checkpoint.prev.json  the rotation's previous checkpoint
//	<root>/damaged/                           quarantined corrupt/torn files
//
// Crash-consistency protocol (write-ahead ordering): blobs are written to a
// temp file, fsynced and atomically renamed into place before their manifest
// line is appended and fsynced; the checkpoint is only written (temp + fsync
// + rename + directory fsync) after every blob and manifest line it
// references is durable. A reader therefore interprets the store as: the
// checkpoint is authoritative for coverage, clusters, elapsed time and RNG
// cursors; the manifest is authoritative for corpus membership (a manifest
// tail past the checkpoint is a bonus from the interrupted epoch, a torn
// final manifest line is discarded with a warning); orphan blobs are
// harmless. Corrupt files detected by checksum are quarantined into
// <root>/damaged/ and the campaign degrades to the last good state instead
// of failing.
package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Entry is one persisted corpus admission: a program blob plus the
// provenance recorded in the manifest.
type Entry struct {
	// Hash is the blob's SHA-256 (hex) — its content address and identity.
	Hash string
	// Prog is the program in portable JSON form (the blob's content).
	Prog []byte
	// NewEdges is how many globally new edges the seed contributed at
	// admission; Edges lists those edge IDs (the attribution distillation
	// minimizes over).
	NewEdges int
	Edges    []uint32
	// Shard is the fleet slot that admitted the seed; Epoch the barrier
	// ordinal it was persisted at; At the campaign virtual time of that
	// barrier.
	Shard int
	Epoch int
	At    time.Duration
}

// manifestLine is Entry's JSONL wire form (the blob itself lives under
// blobs/, keyed by Hash).
type manifestLine struct {
	Hash     string   `json:"hash"`
	NewEdges int      `json:"new_edges"`
	Edges    []uint32 `json:"edges,omitempty"`
	Shard    int      `json:"shard"`
	Epoch    int      `json:"epoch"`
	AtNS     int64    `json:"at_ns"`
}

// Store is one open per-target namespace of an on-disk corpus root.
type Store struct {
	root string // store root (holds damaged/)
	dir  string // <root>/<os>/<board>
	os   string
	brd  string

	entries  map[string]*Entry // by hash
	order    []string          // admission order (manifest order)
	warnings []string
}

// HashBlob returns the content address of a program blob.
func HashBlob(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Open opens (creating as needed) the store namespace for one OS/board pair
// and loads its manifest. Torn or corrupt manifest tails and blobs that fail
// their content-address check are tolerated: the bad record is dropped (and
// a damaged blob quarantined), a warning is recorded, and the store carries
// on with every verified entry.
func Open(root, osName, board string) (*Store, error) {
	return openDir(root, filepath.Join(root, osName, board), osName, board)
}

// OpenNamespace opens a per-campaign namespace of the store root: the same
// layout and crash-consistency protocol as Open, but rooted at
// <root>/ns/<namespace>/<os>/<board> so many campaigns (a daemon's jobs)
// can share one store root without ever seeing each other's corpora. The
// literal "ns" path segment keeps namespaced campaigns disjoint from the
// plain per-target layout, whatever the namespace is called. An empty
// namespace degrades to Open; quarantined damage still lands in the shared
// <root>/damaged/.
func OpenNamespace(root, namespace, osName, board string) (*Store, error) {
	if namespace == "" {
		return Open(root, osName, board)
	}
	if !ValidNamespace(namespace) {
		return nil, fmt.Errorf("corpus: invalid namespace %q (want [a-zA-Z0-9._-]+, not . or ..)", namespace)
	}
	return openDir(root, filepath.Join(root, "ns", namespace, osName, board), osName, board)
}

// ValidNamespace reports whether a campaign namespace is safe to use as a
// single path segment: ASCII letters, digits, dot, underscore and dash,
// and not a relative-path alias.
func ValidNamespace(ns string) bool {
	if ns == "" || ns == "." || ns == ".." || len(ns) > 128 {
		return false
	}
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

func openDir(root, dir, osName, board string) (*Store, error) {
	s := &Store{
		root:    root,
		dir:     dir,
		os:      osName,
		brd:     board,
		entries: make(map[string]*Entry),
	}
	for _, d := range []string{filepath.Join(s.dir, "blobs"), filepath.Join(root, "damaged")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the namespace directory (<root>/<os>/<board>).
func (s *Store) Dir() string { return s.dir }

// Len returns the number of verified corpus entries.
func (s *Store) Len() int { return len(s.order) }

// Entries returns the verified corpus entries in admission order.
func (s *Store) Entries() []*Entry {
	out := make([]*Entry, 0, len(s.order))
	for _, h := range s.order {
		out = append(out, s.entries[h])
	}
	return out
}

// Warnings returns the degradations Open tolerated (torn manifest tail,
// quarantined blobs, checkpoint fallback), in detection order.
func (s *Store) Warnings() []string { return s.warnings }

func (s *Store) warnf(format string, args ...any) {
	s.warnings = append(s.warnings, fmt.Sprintf(format, args...))
}

// loadManifest replays manifest.jsonl, verifying each referenced blob
// against its content address. A line that fails to decode truncates the
// manifest there (torn tail from a crashed writer); a blob that is missing
// or hash-mismatched drops its entry and quarantines the damaged file.
func (s *Store) loadManifest() error {
	f, err := os.Open(s.manifestPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := ParseManifestLine(line)
		if err != nil {
			// A torn or corrupt line invalidates everything after it: the
			// manifest is append-only, so whatever follows was written even
			// later by the same interrupted writer.
			s.warnf("manifest line %d: %v (truncating manifest there)", lineNo, err)
			break
		}
		if prior, ok := s.entries[e.Hash]; ok {
			// Re-admissions can appear when two shards broadcast the same
			// program; the first record wins, keeping admission order stable.
			_ = prior
			continue
		}
		blob, err := s.readBlob(e.Hash)
		if err != nil {
			s.warnf("entry %s: %v (dropped)", shortHash(e.Hash), err)
			continue
		}
		e.Prog = blob
		s.entries[e.Hash] = e
		s.order = append(s.order, e.Hash)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("corpus: manifest: %w", err)
	}
	return nil
}

// ParseManifestLine decodes and validates one manifest JSONL record. The
// blob content is not loaded (Entry.Prog stays nil).
func ParseManifestLine(line []byte) (*Entry, error) {
	var ml manifestLine
	if err := json.Unmarshal(line, &ml); err != nil {
		return nil, fmt.Errorf("bad manifest record: %w", err)
	}
	if len(ml.Hash) != sha256.Size*2 {
		return nil, fmt.Errorf("bad manifest record: hash %q is not a sha256", ml.Hash)
	}
	if _, err := hex.DecodeString(ml.Hash); err != nil {
		return nil, fmt.Errorf("bad manifest record: hash %q is not hex", ml.Hash)
	}
	if ml.NewEdges < 0 || ml.Shard < -1 || ml.Epoch < 0 || ml.AtNS < 0 {
		return nil, fmt.Errorf("bad manifest record: negative field")
	}
	return &Entry{
		Hash:     ml.Hash,
		NewEdges: ml.NewEdges,
		Edges:    ml.Edges,
		Shard:    ml.Shard,
		Epoch:    ml.Epoch,
		At:       time.Duration(ml.AtNS),
	}, nil
}

// AppendManifestLine appends e's manifest JSONL form (with trailing newline)
// to b — the encoder-side inverse of ParseManifestLine.
func AppendManifestLine(b []byte, e *Entry) []byte {
	enc, err := json.Marshal(manifestLine{
		Hash:     e.Hash,
		NewEdges: e.NewEdges,
		Edges:    e.Edges,
		Shard:    e.Shard,
		Epoch:    e.Epoch,
		AtNS:     int64(e.At),
	})
	if err != nil {
		// manifestLine holds only scalars and a slice; Marshal cannot fail.
		panic("corpus: manifest marshal: " + err.Error())
	}
	b = append(b, enc...)
	return append(b, '\n')
}

// readBlob loads and content-verifies one blob; a hash mismatch quarantines
// the damaged file.
func (s *Store) readBlob(hash string) ([]byte, error) {
	path := s.blobPath(hash)
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("blob missing: %w", err)
	}
	if got := HashBlob(blob); got != hash {
		s.quarantine(path)
		return nil, fmt.Errorf("blob content hash %s does not match name (quarantined)", shortHash(got))
	}
	return blob, nil
}

// Put persists one admission: the blob is made durable first (temp + fsync +
// atomic rename), then its manifest line is appended and fsynced — the
// write-ahead order that lets a crash at any point leave the store loadable.
// A blob already present (same content found by another shard or epoch) is
// deduplicated; Put reports whether a new entry was admitted.
func (s *Store) Put(e Entry) (bool, error) {
	if e.Hash == "" {
		e.Hash = HashBlob(e.Prog)
	}
	if _, ok := s.entries[e.Hash]; ok {
		return false, nil
	}
	bp := s.blobPath(e.Hash)
	if _, err := os.Stat(bp); err != nil {
		// Not already durable from an interrupted epoch: write it now.
		if err := writeFileSync(bp, e.Prog); err != nil {
			return false, fmt.Errorf("corpus: blob %s: %w", shortHash(e.Hash), err)
		}
	}
	if err := appendFileSync(s.manifestPath(), AppendManifestLine(nil, &e)); err != nil {
		return false, fmt.Errorf("corpus: manifest: %w", err)
	}
	ne := e
	s.entries[e.Hash] = &ne
	s.order = append(s.order, e.Hash)
	return true, nil
}

// quarantine moves a corrupt file into <root>/damaged/ under a unique name,
// best effort: quarantine must never turn a degraded load into a failure.
func (s *Store) quarantine(path string) string {
	base := filepath.Base(path)
	for i := 0; ; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s.%d", base, i)
		}
		dst := filepath.Join(s.root, "damaged", name)
		if _, err := os.Stat(dst); err == nil {
			continue
		}
		if err := os.Rename(path, dst); err != nil {
			return ""
		}
		return dst
	}
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.jsonl") }
func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.dir, "blobs", hash+".json")
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// writeFileSync writes data to path atomically: temp file in the same
// directory, fsync, rename, directory fsync (best effort — some filesystems
// reject directory syncs).
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// appendFileSync appends data to path and fsyncs, creating the file if
// missing.
func appendFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Best
// effort: directory sync support varies by filesystem.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// sortEdges returns a sorted copy of an edge set — the canonical checkpoint
// bitmap form, so checkpoints diff cleanly run to run.
func sortEdges(edges []uint32) []uint32 {
	out := append([]uint32(nil), edges...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
