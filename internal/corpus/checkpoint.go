package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// CheckpointVersion is the checkpoint schema version; decoders refuse
// versions they do not know.
const CheckpointVersion = 1

// ResumeSeedStride separates the RNG streams of successive campaign epochs:
// a resumed campaign continues from NextSeed = Seed + epochs*stride, so it
// explores fresh programs instead of replaying the finished run's generation
// sequence, while staying a pure function of the checkpoint (resume is
// deterministic).
const ResumeSeedStride = 7_368_787

// ShardSeedStride mirrors the fleet's per-shard RNG stride: shard i of a
// campaign based at seed S runs with S + i*stride. Checkpoint cursors record
// the per-shard seeds a resume will derive, so they are auditable offline.
const ShardSeedStride = 1_000_003

// ShardCursor is one shard slot's resumable RNG position: the seed the slot
// will continue with after resume, plus the execs it had completed at the
// checkpoint (provenance for throughput accounting across runs).
type ShardCursor struct {
	Shard int   `json:"shard"`
	Seed  int64 `json:"seed"`
	Execs int   `json:"execs"`
}

// Checkpoint is the resumable campaign state snapshotted at every epoch
// barrier. Field order is the canonical serialization order; Checksum is a
// SHA-256 over the encoding with the Checksum field empty, so torn or
// bit-flipped checkpoint files are self-detecting.
type Checkpoint struct {
	V     int    `json:"v"`
	OS    string `json:"os"`
	Board string `json:"board"`
	// Seed is the campaign's base RNG seed; NextSeed is the base seed a
	// resumed campaign must continue with (per-shard seeds derive from it by
	// ShardSeedStride, as recorded in Cursors).
	Seed     int64 `json:"seed"`
	NextSeed int64 `json:"next_seed"`
	// Epoch counts completed barriers across the campaign's whole life
	// (resumed runs keep counting); Elapsed is cumulative virtual campaign
	// time across runs.
	Epoch   int           `json:"epoch"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Edges is the cumulative coverage bitmap (sorted distinct edge IDs);
	// Corpus is the store membership in admission order (hashes into
	// blobs/); Clusters are the known crash-dedup keys, sorted.
	Edges    []uint32 `json:"edges"`
	Corpus   []string `json:"corpus"`
	Clusters []string `json:"clusters"`
	// Cursors records each hardware shard slot's resume position.
	Cursors []ShardCursor `json:"cursors,omitempty"`
	// Distills counts store distillations so far.
	Distills int    `json:"distills,omitempty"`
	Checksum string `json:"checksum"`
}

// EncodeCheckpoint renders ck with its self-checksum filled in.
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	c := *ck
	c.V = CheckpointVersion
	c.Checksum = ""
	body, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("corpus: checkpoint encode: %w", err)
	}
	sum := sha256.Sum256(body)
	c.Checksum = hex.EncodeToString(sum[:])
	return json.Marshal(&c)
}

// DecodeCheckpoint parses and validates a checkpoint: schema version,
// self-checksum, and basic shape. It fails loudly on any mismatch so the
// caller can quarantine the file and degrade to the previous checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("corpus: bad checkpoint: %w", err)
	}
	if ck.V != CheckpointVersion {
		return nil, fmt.Errorf("corpus: checkpoint schema v%d is not supported (this build reads v%d)", ck.V, CheckpointVersion)
	}
	want := ck.Checksum
	if len(want) != sha256.Size*2 {
		return nil, fmt.Errorf("corpus: checkpoint has no valid checksum")
	}
	c := ck
	c.Checksum = ""
	body, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("corpus: checkpoint re-encode: %w", err)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("corpus: checkpoint checksum mismatch (torn or corrupt write)")
	}
	if ck.Epoch < 0 || ck.Elapsed < 0 {
		return nil, fmt.Errorf("corpus: checkpoint has negative epoch or elapsed time")
	}
	for _, h := range ck.Corpus {
		if len(h) != sha256.Size*2 {
			return nil, fmt.Errorf("corpus: checkpoint corpus hash %q is not a sha256", h)
		}
	}
	return &ck, nil
}

// WriteCheckpoint makes ck durable under the rotation protocol: the current
// checkpoint (if any) is first rotated to checkpoint.prev.json, then the new
// one is written atomically (temp + fsync + rename + directory fsync). Every
// blob and manifest line ck references must already be durable — Persister
// guarantees that ordering.
func (s *Store) WriteCheckpoint(ck *Checkpoint) error {
	ck.OS, ck.Board = s.os, s.brd
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		return err
	}
	cur := s.checkpointPath()
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, s.checkpointPrevPath()); err != nil {
			return fmt.Errorf("corpus: checkpoint rotate: %w", err)
		}
	}
	if err := writeFileSync(cur, data); err != nil {
		return fmt.Errorf("corpus: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint returns the last good checkpoint, walking the rotation:
// a missing, torn or corrupt checkpoint.json is quarantined into
// <root>/damaged/ with a warning and checkpoint.prev.json is tried next.
// A store with no readable checkpoint returns (nil, nil) — an empty store
// is not an error, it is a fresh campaign.
func (s *Store) LoadCheckpoint() (*Checkpoint, error) {
	for _, path := range []string{s.checkpointPath(), s.checkpointPrevPath()} {
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) {
				s.warnf("%s: %v", filepath.Base(path), err)
			}
			continue
		}
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			dst := s.quarantine(path)
			s.warnf("%s: %v (quarantined to %s, degrading to previous checkpoint)",
				filepath.Base(path), err, dst)
			continue
		}
		if ck.OS != s.os || ck.Board != s.brd {
			return nil, fmt.Errorf("corpus: checkpoint is for %s/%s, store namespace is %s/%s",
				ck.OS, ck.Board, s.os, s.brd)
		}
		return ck, nil
	}
	return nil, nil
}

func (s *Store) checkpointPath() string     { return filepath.Join(s.dir, "checkpoint.json") }
func (s *Store) checkpointPrevPath() string { return filepath.Join(s.dir, "checkpoint.prev.json") }

// Resume is everything a campaign rebuilds its state from: the last good
// checkpoint (nil when the store never completed a barrier) and the verified
// corpus entries in admission order. Entries past the checkpoint's corpus
// list — admitted in the epoch a crash interrupted — are included: their
// blobs verified, so they are usable coverage the crashed run paid for.
type Resume struct {
	Ck      *Checkpoint
	Entries []*Entry
}

// LoadResume loads the store's resumable state, degrading (with warnings on
// the store) through torn manifests, damaged blobs and corrupt checkpoints.
// Checkpoint corpus hashes whose entries did not survive verification are
// reported as warnings; the checkpoint's coverage bitmap remains valid — the
// edges were truly observed even if a seed that found them was lost.
func (s *Store) LoadResume() (*Resume, error) {
	ck, err := s.LoadCheckpoint()
	if err != nil {
		return nil, err
	}
	if ck != nil {
		for _, h := range ck.Corpus {
			if _, ok := s.entries[h]; !ok {
				s.warnf("checkpoint references corpus entry %s that did not survive verification", shortHash(h))
			}
		}
	}
	return &Resume{Ck: ck, Entries: s.Entries()}, nil
}
