package corpus

import (
	"fmt"
	"sort"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// PersisterOptions parameterises a campaign's persistence layer.
type PersisterOptions struct {
	// Seed is the running campaign's base RNG seed (after any resume
	// rebasing); the checkpoint's NextSeed advances from it per epoch.
	Seed int64
	// DistillEvery distills the store every that many barriers (0 = never).
	DistillEvery int
	// PriorEpochs and PriorElapsed carry a resumed campaign's history so
	// checkpoints count epochs and elapsed virtual time across runs.
	PriorEpochs  int
	PriorElapsed time.Duration
	// Clusters pre-seeds the known crash-dedup keys (from a resumed
	// checkpoint), so they survive into every new checkpoint.
	Clusters []string
	// Sink receives the campaign-level Checkpoint/Distill journal events
	// (nil journals nothing). The events carry Shard = -1 and their own
	// sequence space, so per-shard event streams are byte-identical with
	// persistence on or off.
	Sink trace.Sink
}

// Admission is one corpus admission handed to the persister at a barrier:
// the program blob in portable JSON form plus its coverage attribution.
type Admission struct {
	Prog     []byte
	NewEdges int
	Edges    []uint32
	Shard    int
}

// Barrier is the resumable state of one completed fleet epoch.
type Barrier struct {
	// Epoch is the barrier ordinal within this run (1-based); Elapsed the
	// run's virtual wall-clock at the barrier. The persister adds the
	// resumed history on top of both.
	Epoch   int
	Elapsed time.Duration
	// Admissions are the epoch's broadcast corpus admissions in slot order.
	Admissions []Admission
	// Edges is the campaign's cumulative ground-truth coverage; Clusters the
	// crash-dedup keys known so far; Cursors the per-shard resume positions
	// (the persister fills each cursor's Seed).
	Edges    []uint32
	Clusters []string
	Cursors  []ShardCursor
}

// PersistStats summarises what a campaign's persistence layer did.
type PersistStats struct {
	// Entries is the store's current corpus size; Admitted counts new
	// entries this run persisted (deduplicated admissions excluded).
	Entries  int
	Admitted int
	// Checkpoints and Distills count this run's barrier checkpoints and
	// store distillations; Dropped the entries distillation removed.
	Checkpoints int
	Distills    int
	Dropped     int
}

// Persister drives a Store at fleet epoch barriers: it makes every broadcast
// admission durable (blob, then manifest — write-ahead), distills the store
// at the configured cadence, and snapshots the resumable campaign state as a
// rotated, checksummed checkpoint. All I/O happens between epochs on the
// supervisor goroutine, so persistence never perturbs engine determinism.
type Persister struct {
	s      *Store
	opts   PersisterOptions
	clock  *vtime.Clock
	tracer *trace.Tracer

	clusters     map[string]bool
	sinceDistill int
	stats        PersistStats

	// AfterCheckpoint, when set, runs after each barrier's checkpoint is
	// durable. Tests use it to snapshot the store mid-campaign — because
	// durable state only changes at barriers, a copy taken here is
	// byte-equivalent to a kill -9 arriving any time before the next
	// barrier's first write.
	AfterCheckpoint func(epoch int)
}

// NewPersister builds the persistence layer over an open store.
func NewPersister(s *Store, opts PersisterOptions) *Persister {
	clock := &vtime.Clock{}
	clock.Advance(opts.PriorElapsed)
	p := &Persister{
		s:        s,
		opts:     opts,
		clock:    clock,
		tracer:   trace.New(-1, clock, 1),
		clusters: make(map[string]bool),
	}
	p.tracer.SetSink(opts.Sink)
	for _, c := range opts.Clusters {
		p.clusters[c] = true
	}
	return p
}

// Store returns the underlying store.
func (p *Persister) Store() *Store { return p.s }

// Stats returns what the persistence layer has done so far this run.
func (p *Persister) Stats() PersistStats {
	st := p.stats
	st.Entries = p.s.Len()
	return st
}

// Barrier persists one completed epoch: admissions first (write-ahead), then
// an optional distillation, then the checkpoint that commits it all. Called
// on the fleet supervisor goroutine between epoch slices.
func (p *Persister) Barrier(b Barrier) error {
	epoch := p.opts.PriorEpochs + b.Epoch
	at := p.opts.PriorElapsed + b.Elapsed
	p.clock.Advance(at - p.clock.Now())
	for _, a := range b.Admissions {
		added, err := p.s.Put(Entry{
			Prog:     a.Prog,
			NewEdges: a.NewEdges,
			Edges:    a.Edges,
			Shard:    a.Shard,
			Epoch:    epoch,
			At:       at,
		})
		if err != nil {
			return err
		}
		if added {
			p.stats.Admitted++
		}
	}
	for _, c := range b.Clusters {
		p.clusters[c] = true
	}
	if p.opts.DistillEvery > 0 {
		p.sinceDistill++
		if p.sinceDistill >= p.opts.DistillEvery {
			p.sinceDistill = 0
			kept, dropped, err := p.s.Distill()
			if err != nil {
				return err
			}
			p.stats.Distills++
			p.stats.Dropped += dropped
			p.tracer.Emit(trace.Event{
				Kind: trace.Distill, Exec: epoch, Edges: dropped,
				Reason: fmt.Sprintf("kept:%d", kept),
			})
		}
	}
	nextSeed := p.opts.Seed + int64(b.Epoch)*ResumeSeedStride
	cursors := make([]ShardCursor, len(b.Cursors))
	for i, c := range b.Cursors {
		c.Seed = nextSeed + int64(c.Shard)*ShardSeedStride
		cursors[i] = c
	}
	ck := &Checkpoint{
		Seed:     p.opts.Seed,
		NextSeed: nextSeed,
		Epoch:    epoch,
		Elapsed:  at,
		Edges:    sortEdges(b.Edges),
		Corpus:   append([]string(nil), p.s.order...),
		Clusters: sortedKeys(p.clusters),
		Cursors:  cursors,
		Distills: p.stats.Distills,
	}
	if err := p.s.WriteCheckpoint(ck); err != nil {
		return err
	}
	p.stats.Checkpoints++
	p.tracer.Emit(trace.Event{Kind: trace.Checkpoint, Exec: epoch, Edges: len(ck.Edges)})
	if p.AfterCheckpoint != nil {
		p.AfterCheckpoint(epoch)
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
