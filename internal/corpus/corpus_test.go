package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

func testEntry(body string, shard int, edges ...uint32) Entry {
	return Entry{
		Prog:     []byte(body),
		NewEdges: len(edges),
		Edges:    edges,
		Shard:    shard,
		Epoch:    1,
		At:       time.Minute,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	added, err := s.Put(testEntry(`{"calls":[1]}`, 0, 10, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("first Put reported a duplicate")
	}
	if added, _ := s.Put(testEntry(`{"calls":[1]}`, 3, 99)); added {
		t.Fatal("identical blob admitted twice")
	}
	if added, _ := s.Put(testEntry(`{"calls":[2]}`, 1, 12)); !added {
		t.Fatal("distinct blob rejected")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	// Reopen: manifest replay must reproduce membership, order and payload.
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Warnings()) != 0 {
		t.Fatalf("clean reopen produced warnings: %v", s2.Warnings())
	}
	es := s2.Entries()
	if len(es) != 2 {
		t.Fatalf("reopened Len = %d, want 2", len(es))
	}
	if string(es[0].Prog) != `{"calls":[1]}` || string(es[1].Prog) != `{"calls":[2]}` {
		t.Fatalf("admission order or payload lost: %q, %q", es[0].Prog, es[1].Prog)
	}
	if es[0].Shard != 0 || es[0].NewEdges != 2 || es[0].Edges[1] != 11 {
		t.Fatalf("provenance lost: %+v", es[0])
	}
}

func TestStoreNamespaces(t *testing.T) {
	root := t.TempDir()
	a, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put(testEntry("prog-a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	b, err := Open(root, "rtthread", "esp32c3")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("foreign namespace sees %d entries", b.Len())
	}
}

func TestTornManifestTailTruncates(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("one", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("two", 0, 2)); err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-record, as a kill -9 during append would.
	mp := filepath.Join(s.Dir(), "manifest.jsonl")
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("torn tail: Len = %d, want 1 surviving entry", s2.Len())
	}
	if len(s2.Warnings()) == 0 || !strings.Contains(s2.Warnings()[0], "truncating") {
		t.Fatalf("torn tail produced no truncation warning: %v", s2.Warnings())
	}
	// The torn line is gone for good after the next Put rewrites nothing —
	// appends continue past it, and reopen must keep ignoring the tear.
	if _, err := s2.Put(testEntry("three", 1, 3)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		// The append landed after the torn line, so replay still stops at the
		// tear: entries after a torn record are unreachable by design (the
		// writer that follows a reopen starts from the truncated state).
		t.Logf("post-tear entries: %d (tail after tear ignored)", s3.Len())
	}
}

func TestDamagedBlobQuarantined(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("victim", 0, 1)
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("innocent", 0, 2)); err != nil {
		t.Fatal(err)
	}
	hash := HashBlob([]byte("victim"))
	bp := filepath.Join(s.Dir(), "blobs", hash+".json")
	if err := os.WriteFile(bp, []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (damaged entry dropped)", s2.Len())
	}
	if len(s2.Warnings()) == 0 {
		t.Fatal("damaged blob produced no warning")
	}
	if _, err := os.Stat(bp); !os.IsNotExist(err) {
		t.Fatal("damaged blob still in blobs/ after quarantine")
	}
	matches, _ := filepath.Glob(filepath.Join(root, "damaged", "*"))
	if len(matches) != 1 {
		t.Fatalf("damaged/ holds %d files, want 1", len(matches))
	}
}

func TestCheckpointRoundTripAndRotation(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	ck1 := &Checkpoint{
		Seed: 7, NextSeed: 7 + ResumeSeedStride, Epoch: 1, Elapsed: 10 * time.Minute,
		Edges: []uint32{1, 2, 3}, Clusters: []string{"a"},
		Cursors: []ShardCursor{{Shard: 0, Seed: 7 + ResumeSeedStride, Execs: 100}},
	}
	if err := s.WriteCheckpoint(ck1); err != nil {
		t.Fatal(err)
	}
	ck2 := &Checkpoint{
		Seed: 7, NextSeed: 7 + 2*ResumeSeedStride, Epoch: 2, Elapsed: 20 * time.Minute,
		Edges: []uint32{1, 2, 3, 4},
	}
	if err := s.WriteCheckpoint(ck2); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 2 || got.NextSeed != 7+2*ResumeSeedStride {
		t.Fatalf("loaded checkpoint %+v, want epoch 2", got)
	}
	if got.OS != "freertos" || got.Board != "stm32h745" {
		t.Fatalf("namespace not stamped: %+v", got)
	}

	// Corrupt the current file: load must quarantine it and fall back to the
	// rotated previous checkpoint.
	cur := filepath.Join(s.Dir(), "checkpoint.json")
	data, _ := os.ReadFile(cur)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(cur, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	got, err = s2.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 1 {
		t.Fatalf("degraded load got %+v, want the epoch-1 previous checkpoint", got)
	}
	if len(s2.Warnings()) == 0 {
		t.Fatal("corrupt checkpoint produced no warning")
	}
	if _, err := os.Stat(cur); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint not quarantined")
	}
}

func TestCheckpointNamespaceMismatch(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(&Checkpoint{Seed: 1, NextSeed: 2, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	// Copy the checkpoint into a foreign namespace: resume must refuse it.
	other, err := Open(root, "rtthread", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(s.Dir(), "checkpoint.json"))
	if err := os.WriteFile(filepath.Join(other.Dir(), "checkpoint.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadCheckpoint(); err == nil {
		t.Fatal("foreign-namespace checkpoint accepted")
	}
}

func TestLoadCheckpointEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir(), "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := s.LoadCheckpoint()
	if err != nil || ck != nil {
		t.Fatalf("empty store: got (%v, %v), want (nil, nil)", ck, err)
	}
}

func TestDistillMinimalCover(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	// Entry 1 covers {1,2}, entry 2 covers {2,3}, entry 3 covers {1,2,3}:
	// the greedy cover keeps entry 3 alone (max gain first).
	if _, err := s.Put(testEntry("a", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("b", 0, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("c", 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	kept, dropped, err := s.Distill()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 || dropped != 2 {
		t.Fatalf("Distill kept %d dropped %d, want 1/2", kept, dropped)
	}
	if s.Len() != 1 || string(s.Entries()[0].Prog) != "c" {
		t.Fatalf("survivor is %q, want the covering entry", s.Entries()[0].Prog)
	}
	// Dropped blobs removed, survivor intact, rewrite durable across reopen.
	if _, err := os.Stat(filepath.Join(s.Dir(), "blobs", HashBlob([]byte("a"))+".json")); !os.IsNotExist(err) {
		t.Fatal("dropped blob still on disk")
	}
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 || string(s2.Entries()[0].Prog) != "c" {
		t.Fatalf("distilled manifest did not survive reopen: %d entries", s2.Len())
	}
}

func TestDistillTiesPreferEarlierAdmission(t *testing.T) {
	s, err := Open(t.TempDir(), "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	// Equal gain: admission order breaks the tie deterministically.
	if _, err := s.Put(testEntry("first", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry("second", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Distill(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || string(s.Entries()[0].Prog) != "first" {
		t.Fatal("tie not broken by admission order")
	}
}

func TestDistillKeepsUnattributedEntries(t *testing.T) {
	s, err := Open(t.TempDir(), "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	// No attributed edges at all: nothing can be proven redundant.
	if _, err := s.Put(testEntry("x", 0)); err != nil {
		t.Fatal(err)
	}
	kept, dropped, err := s.Distill()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 || dropped != 0 {
		t.Fatalf("unattributed entry dropped (kept %d, dropped %d)", kept, dropped)
	}
}

type sinkRecorder struct{ events []trace.Event }

func (r *sinkRecorder) Emit(ev trace.Event) { r.events = append(r.events, ev) }

func TestPersisterBarrier(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	rec := &sinkRecorder{}
	p := NewPersister(s, PersisterOptions{Seed: 5, DistillEvery: 2, Sink: rec})
	mkBarrier := func(epoch int, blob string, edges []uint32) Barrier {
		return Barrier{
			Epoch:   epoch,
			Elapsed: time.Duration(epoch) * 10 * time.Minute,
			Admissions: []Admission{
				{Prog: []byte(blob), NewEdges: len(edges), Edges: edges, Shard: 0},
			},
			Edges:    edges,
			Clusters: []string{"cl-" + blob},
			Cursors:  []ShardCursor{{Shard: 0, Execs: epoch * 100}},
		}
	}
	if err := p.Barrier(mkBarrier(1, "p1", []uint32{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := p.Barrier(mkBarrier(2, "p2", []uint32{1, 2, 3})); err != nil {
		t.Fatal(err)
	}

	ck, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", ck.Epoch)
	}
	if ck.NextSeed != 5+2*ResumeSeedStride {
		t.Fatalf("NextSeed %d, want seed+2*stride", ck.NextSeed)
	}
	if len(ck.Cursors) != 1 || ck.Cursors[0].Seed != ck.NextSeed || ck.Cursors[0].Execs != 200 {
		t.Fatalf("cursor %+v, want seed=NextSeed execs=200", ck.Cursors)
	}
	if len(ck.Clusters) != 2 {
		t.Fatalf("clusters %v, want the union across barriers", ck.Clusters)
	}
	if ck.Elapsed != 20*time.Minute {
		t.Fatalf("elapsed %v", ck.Elapsed)
	}

	st := p.Stats()
	if st.Admitted != 2 || st.Checkpoints != 2 || st.Distills != 1 {
		t.Fatalf("stats %+v, want 2 admitted, 2 checkpoints, 1 distill (cadence 2)", st)
	}

	// Journal events: campaign-level stream, shard -1, own sequence space.
	var kinds []trace.Kind
	for _, ev := range rec.events {
		if ev.Shard != -1 {
			t.Fatalf("persistence event on shard %d, want -1", ev.Shard)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{trace.Checkpoint, trace.Distill, trace.Checkpoint}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
}

func TestPersisterResumeContinuity(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersister(s, PersisterOptions{Seed: 1})
	if err := p.Barrier(Barrier{Epoch: 1, Elapsed: 10 * time.Minute, Edges: []uint32{9}}); err != nil {
		t.Fatal(err)
	}
	ck, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// A resumed run continues epoch and elapsed counting from the checkpoint
	// and pre-seeds its clusters.
	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPersister(s2, PersisterOptions{
		Seed: ck.NextSeed, PriorEpochs: ck.Epoch, PriorElapsed: ck.Elapsed,
		Clusters: []string{"old-bug"},
	})
	if err := p2.Barrier(Barrier{Epoch: 1, Elapsed: 10 * time.Minute, Edges: []uint32{9, 10}}); err != nil {
		t.Fatal(err)
	}
	ck2, err := s2.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Epoch != 2 || ck2.Elapsed != 20*time.Minute {
		t.Fatalf("resumed checkpoint %+v, want campaign-lifetime epoch 2 at 20m", ck2)
	}
	if len(ck2.Clusters) != 1 || ck2.Clusters[0] != "old-bug" {
		t.Fatalf("resumed clusters %v, want the carried-over key", ck2.Clusters)
	}
	if ck2.Seed != ck.NextSeed || ck2.NextSeed != ck.NextSeed+ResumeSeedStride {
		t.Fatalf("seed chain broken: %+v", ck2)
	}
}

func TestLoadResumeKeepsManifestTail(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersister(s, PersisterOptions{Seed: 1})
	if err := p.Barrier(Barrier{
		Epoch: 1, Elapsed: time.Minute,
		Admissions: []Admission{{Prog: []byte("committed"), NewEdges: 1, Edges: []uint32{1}}},
		Edges:      []uint32{1},
	}); err != nil {
		t.Fatal(err)
	}
	// An admission persisted after the checkpoint (the crash-interrupted
	// epoch): blob + manifest line durable, checkpoint never written.
	if _, err := s.Put(testEntry("tail", 0, 2)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(root, "freertos", "stm32h745")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.LoadResume()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ck == nil || len(res.Ck.Corpus) != 1 {
		t.Fatalf("checkpoint %+v, want the 1-entry committed corpus", res.Ck)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("resume entries = %d, want checkpoint corpus plus the tail", len(res.Entries))
	}
}
