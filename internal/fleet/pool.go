package fleet

import (
	"fmt"
	"sync"
	"time"
)

// BoardPool is the daemon's shared board inventory: a fixed set of named
// hardware slots that campaigns lease for the duration of a scheduling
// slice and release at the next epoch barrier. Where a CLI campaign owns
// its boards for its whole run, daemon jobs borrow them — the pool is what
// turns the fleet into a multiplexed resource.
//
// The pool tracks occupancy and lifetime lease accounting only; which job
// gets boards next is the scheduler's call. All methods are
// goroutine-safe.
type BoardPool struct {
	mu     sync.Mutex
	boards []PoolBoard
	busy   time.Duration // lifetime leased board time, all boards
}

// PoolBoard is one pool slot's inventory record.
type PoolBoard struct {
	// Index is the stable slot number; Name the human-facing board ID.
	Index int
	Name  string
	// JobID and Tenant identify the current lease ("" when free).
	JobID  string
	Tenant string
	// Leases counts lifetime grants; Busy totals the board time charged
	// to this slot at release.
	Leases int
	Busy   time.Duration
}

// NewBoardPool builds a pool of n boards of the given type, named
// <board>-00, <board>-01, ...
func NewBoardPool(board string, n int) *BoardPool {
	if n < 1 {
		n = 1
	}
	p := &BoardPool{boards: make([]PoolBoard, n)}
	for i := range p.boards {
		p.boards[i] = PoolBoard{Index: i, Name: fmt.Sprintf("%s-%02d", board, i)}
	}
	return p
}

// Size returns the pool's board count.
func (p *BoardPool) Size() int { return len(p.boards) }

// Free returns the number of unleased boards.
func (p *BoardPool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := 0
	for i := range p.boards {
		if p.boards[i].JobID == "" {
			free++
		}
	}
	return free
}

// Lease grants n boards to a job, lowest free slots first, and returns
// their indices. A job may hold at most one lease at a time; asking for
// more boards than are free is an error (the scheduler should have
// prevented both).
func (p *BoardPool) Lease(jobID, tenant string, n int) ([]int, error) {
	if jobID == "" || n < 1 {
		return nil, fmt.Errorf("fleet: bad lease request (job %q, %d boards)", jobID, n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var slots []int
	for i := range p.boards {
		if p.boards[i].JobID == jobID {
			return nil, fmt.Errorf("fleet: job %q already holds board %s", jobID, p.boards[i].Name)
		}
		if p.boards[i].JobID == "" && len(slots) < n {
			slots = append(slots, i)
		}
	}
	if len(slots) < n {
		return nil, fmt.Errorf("fleet: %d boards free, job %q wants %d", len(slots), jobID, n)
	}
	for _, i := range slots {
		p.boards[i].JobID = jobID
		p.boards[i].Tenant = tenant
		p.boards[i].Leases++
	}
	return slots, nil
}

// Release returns a job's boards to the pool, charging the slice's
// consumed board time (split evenly across the leased boards) to the slot
// accounting. Releasing a job that holds nothing is a no-op, so the
// barrier path is idempotent.
func (p *BoardPool) Release(jobID string, used time.Duration) {
	if jobID == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var held []int
	for i := range p.boards {
		if p.boards[i].JobID == jobID {
			held = append(held, i)
		}
	}
	if len(held) == 0 {
		return
	}
	per := used / time.Duration(len(held))
	for _, i := range held {
		p.boards[i].JobID = ""
		p.boards[i].Tenant = ""
		p.boards[i].Busy += per
	}
	p.busy += used
}

// Busy returns the lifetime leased board time across all slots.
func (p *BoardPool) Busy() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy
}

// Snapshot returns a copy of every slot in index order — the /v1/pool
// inventory.
func (p *BoardPool) Snapshot() []PoolBoard {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PoolBoard, len(p.boards))
	copy(out, p.boards)
	return out
}
