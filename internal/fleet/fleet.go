// Package fleet shards one fuzzing campaign across a pool of virtual boards.
// N engines attach to N boards and run concurrently, each on an equal slice
// of the total board-time budget; their feedback cross-pollinates through a
// thread-safe shared coverage collector (live, order-independent set union)
// and an epoch-barrier corpus-sync exchange: at fixed virtual intervals every
// shard drains the new-coverage seeds, fresh edges and choice-table rewards
// it found, and the deltas are broadcast to sibling shards in shard order.
// Because each shard's execution between barriers is self-contained and
// deterministic, and the barrier exchange happens in a fixed order, the
// merged report is reproducible run to run for a fixed seed.
//
// The pool models the paper's practical deployment: on-hardware fuzzing is
// throughput-bound by the debug link and one board's execution speed, so
// labs attach several cheap boards to one host. Virtual time in this repo is
// board wall-clock, so a fleet report's Duration is the pool's wall-clock —
// total board-time divided by the shard count — and edges per Duration
// second is the pool's effective throughput.
//
// A board-health supervisor runs at every epoch barrier: a board whose
// engine reported core.ErrBoardDead — or whose health score fell below the
// sick threshold while a spare is available — is quarantined, and the next
// hot spare from the configured pool takes over its slot, re-seeded from the
// cumulative broadcast history so the newcomer starts with the fleet's
// collective corpus. One doomed board therefore costs the pool roughly one
// shard-epoch of throughput instead of the whole campaign.
//
// With EmulShards > 0 the fleet runs tiered: alongside the hardware pool, a
// wide pool of cheap emulated shards (backend.Emulated over a spec twin that
// keeps edge IDs comparable) explores the same campaign at emulation speed.
// The tiers share one direction of feedback — every hardware broadcast also
// reaches the emulation shards, but emulation discoveries never enter the
// hardware corpus or shared collector directly. Instead, each emulation
// shard queues its corpus admissions and crashes as confirmation items, and
// at every epoch barrier the fleet replays them on the hardware pool
// (round-robin over manned slots): a replay that reproduces the coverage or
// crash emits TierConfirm and feeds the hardware campaign normally, while a
// replay that does not emits TierDiverge and records a first-class
// cross-tier divergence on the merged report. Hardware stays the ground
// truth; emulation only proposes.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/corpus"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/trace"
)

// DefaultSyncEvery is the epoch-barrier interval when Options leaves it
// unset: long enough that barrier overhead is negligible, short enough that
// a shard's discovery reaches siblings while it still matters.
const DefaultSyncEvery = 10 * time.Minute

// shardSeedStride separates shard RNG streams. Shard 0 keeps the configured
// seed, so a 1-shard fleet explores exactly like a solo engine.
const shardSeedStride = 1_000_003

// Options parameterises a fleet campaign.
type Options struct {
	// Shards is the number of boards in the pool (minimum 1).
	Shards int
	// SyncEvery is the virtual interval between feedback-exchange barriers
	// (default DefaultSyncEvery).
	SyncEvery time.Duration
	// FocusBoost, when positive, soft-partitions the search space: shard i
	// biases fresh generation toward every i-th spec call by adding this
	// weight, without removing any call from any shard. Zero disables
	// focus (all shards explore uniformly, differing only by seed).
	FocusBoost float64
	// Spares is the hot-spare pool size: boards built alongside the shards
	// (physical indices Shards..Shards+Spares-1) but held powered off until
	// the supervisor promotes one into a quarantined slot.
	Spares int
	// Degrade overrides the degradation model per physical board index
	// (shards first, then spares); boards beyond the slice inherit
	// cfg.Degrade. Tests and the resilience ablation use it to doom one
	// specific board.
	Degrade []board.DegradeConfig
	// EmulShards is the emulation explore tier's width: that many emulated
	// shards (physical indices after the hardware pool and the triage board)
	// run alongside the hardware slots, with their corpus admissions and
	// crashes re-executed on hardware at every epoch barrier. Zero disables
	// tiering entirely — the fleet behaves (and journals) exactly as an
	// all-hardware pool.
	EmulShards int
	// Persist, when non-nil, makes campaign state durable at every epoch
	// barrier: broadcast corpus admissions, the cumulative coverage bitmap,
	// crash clusters and per-shard cursors all land in the on-disk store
	// before the next epoch starts. Persistence runs on the supervisor
	// goroutine between epochs, so it never perturbs engine determinism.
	Persist *corpus.Persister
}

// Fleet is one sharded campaign over a board pool with hot-spare failover.
type Fleet struct {
	opts    Options
	engines []*core.Engine // physical boards: shards first, then spares
	shared  *cov.Collector
	ran     bool

	// stop is the graceful-shutdown flag: set from a signal handler, checked
	// after each epoch barrier so the campaign drains with a final durable
	// checkpoint instead of dying mid-epoch.
	stop atomic.Bool

	// slots maps each shard slot to the physical board serving it (-1 when
	// the slot is unmanned because the spare pool ran dry); spares is the
	// FIFO of boards still in reserve; active marks boards that were ever
	// powered on (their reports merge into the campaign report).
	slots  []int
	spares []int
	active []bool

	// history accumulates every broadcast delta so a promoted spare can be
	// re-seeded with the fleet's collective feedback at promotion time.
	history     core.SyncDelta
	quarantines []core.Quarantine

	sickThreshold float64

	// journal is the campaign-level trace sink (cfg.TraceSink); each board
	// writes into its own buffer, drained into the journal in slot order at
	// every epoch barrier so the merged stream is deterministic. flushQueue
	// holds, per slot, retired boards whose final events (ending in their
	// quarantine) must flush before the slot's current occupant's stream.
	journal    trace.Sink
	buffers    []*trace.Buffer
	flushQueue [][]int

	// triageIdx is the dedicated triage board's physical index (after the
	// spares; -1 when triage is disabled). Shards run with deferred triage
	// and the fleet drains their queues onto this board at every epoch
	// barrier in slot order, so findings are confirmed on different
	// hardware than found them and the merged journal stays deterministic.
	// triaged caches completed verdicts by cluster so a finding another
	// shard already confirmed is copied, not replayed again.
	triageIdx  int
	triageDead bool
	triaged    map[string]*core.BugReport

	// Emulation tier state. emulIdx lists the emulated boards' physical
	// indices (immutable, used for journal flushing); emulSlots mirrors it
	// but drops to -1 when a shard is quarantined. Emulation coverage feeds
	// its own shared collector — emulation edges reach the hardware
	// collector only through a confirmed hardware replay. confirmNext is the
	// persistent round-robin cursor over manned hardware slots for
	// confirmation replays.
	emulIdx     []int
	emulSlots   []int
	emulShared  *cov.Collector
	confirmNext int
	divergences []core.TierDivergence
	confirmed   int
	diverged    int

	shardReports []*core.Report
}

// New builds a pool of opts.Shards+opts.Spares engines from cfg. Physical
// board i runs with seed cfg.Seed + i*stride and feeds the fleet-wide shared
// collector; shard slots also receive their round-robin slice of the API
// surface as a soft generation bias when FocusBoost is set (a promoted spare
// inherits its slot's focus). The board seed also feeds each board's
// link-fault injector and degradation model (when their Seeds are zero), so
// every board in the pool ages and faults deterministically but differently.
func New(cfg core.Config, opts Options) (*Fleet, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Spares < 0 {
		opts.Spares = 0
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.EmulShards < 0 {
		opts.EmulShards = 0
	}
	f := &Fleet{
		opts:          opts,
		shared:        cov.NewCollector(),
		sickThreshold: cfg.Health.WithDefaults().SickThreshold,
		triageIdx:     -1,
		triaged:       make(map[string]*core.BugReport),
	}
	if opts.EmulShards > 0 {
		f.emulShared = cov.NewCollector()
	}
	if cfg.TraceSink != nil {
		f.journal = cfg.TraceSink
	}
	total := opts.Shards + opts.Spares
	boards := total
	if cfg.Triage.Enabled {
		// One extra physical board, dedicated to triage: shards defer
		// (enqueue only) and the barrier drains their queues onto it.
		f.triageIdx = total
		boards = total + 1
	}
	for i := 0; i < boards; i++ {
		scfg := cfg
		scfg.Seed = cfg.Seed + int64(i)*shardSeedStride
		scfg.Shard = i
		if scfg.Triage.Enabled {
			scfg.Triage.Deferred = true
		}
		if i < len(opts.Degrade) && i < total {
			scfg.Degrade = opts.Degrade[i]
		}
		if f.journal != nil {
			// Buffer per board; the Run loop merges in slot order at each
			// barrier so the journal stays deterministic. The live StatusSink
			// (thread-safe by contract) stays attached directly.
			buf := trace.NewBuffer()
			f.buffers = append(f.buffers, buf)
			scfg.TraceSink = buf
		}
		e, err := core.NewEngine(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: board %d: %w", i, err)
		}
		e.SetSharedSink(f.shared)
		switch {
		case i < opts.Shards:
			f.setFocus(e, i)
			f.slots = append(f.slots, i)
		case i < total:
			f.spares = append(f.spares, i)
		}
		f.engines = append(f.engines, e)
	}
	// The emulation tier's boards come last, so every hardware board keeps
	// the physical index — and therefore the seed, fault stream and journal
	// position — it would have in an untiered fleet.
	for j := 0; j < opts.EmulShards; j++ {
		i := boards + j
		scfg := cfg
		scfg.Seed = cfg.Seed + int64(i)*shardSeedStride
		scfg.Shard = i
		scfg.Backend = backend.Emulated()
		scfg.Board = backend.EmulSpecFor(cfg.Board)
		scfg.ConfirmCapture = true
		// Emulation findings are provisional: no triage, no link faults, no
		// hardware aging — the VM substrate has none of those failure modes,
		// and crashes are confirmed (and then triaged) on hardware instead.
		scfg.Triage = core.TriageConfig{}
		scfg.LinkFaults = link.FaultConfig{}
		scfg.Degrade = board.DegradeConfig{}
		if f.journal != nil {
			buf := trace.NewBuffer()
			f.buffers = append(f.buffers, buf)
			scfg.TraceSink = buf
		}
		e, err := core.NewEngine(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: emul shard %d: %w", j, err)
		}
		e.SetSharedSink(f.emulShared)
		f.emulIdx = append(f.emulIdx, i)
		f.emulSlots = append(f.emulSlots, i)
		f.engines = append(f.engines, e)
	}
	f.active = make([]bool, len(f.engines))
	f.flushQueue = make([][]int, opts.Shards)
	return f, nil
}

// setFocus applies slot's round-robin soft partition of the API surface to e.
func (f *Fleet) setFocus(e *core.Engine, slot int) {
	if f.opts.FocusBoost <= 0 || f.opts.Shards <= 1 {
		return
	}
	var names []string
	for j, name := range e.SpecCalls() {
		if j%f.opts.Shards == slot {
			names = append(names, name)
		}
	}
	e.SetFocus(names, f.opts.FocusBoost)
}

// Engines exposes the pool (shards first, then spares) for tests and
// experiment harnesses.
func (f *Fleet) Engines() []*core.Engine { return f.engines }

// SharedEdges returns the hardware tier's fleet-wide distinct edge count so
// far (the campaign's ground-truth coverage).
func (f *Fleet) SharedEdges() int { return f.shared.Total() }

// EmulEdges returns the emulation tier's distinct edge count so far (zero in
// an untiered fleet).
func (f *Fleet) EmulEdges() int {
	if f.emulShared == nil {
		return 0
	}
	return f.emulShared.Total()
}

// Divergences returns the cross-tier divergences recorded so far.
func (f *Fleet) Divergences() []core.TierDivergence { return f.divergences }

// Quarantines returns the quarantine records so far, in supervision order.
func (f *Fleet) Quarantines() []core.Quarantine { return f.quarantines }

// RequestStop asks the fleet to drain at the next epoch barrier: every
// engine ends its current slice at an iteration boundary, the barrier runs
// normally (feedback exchange, supervision, journal flush, and the final
// persistence checkpoint when configured), then Run returns the merged
// report. Safe to call from another goroutine.
func (f *Fleet) RequestStop() {
	f.stop.Store(true)
	for _, e := range f.engines {
		e.RequestStop()
	}
}

// SeedFrom pre-seeds the whole pool from a resumed campaign's persisted
// state before Run: the delta's edges become pre-seen in the shared
// collector and every engine, its seeds join every corpus, and the cluster
// keys are marked known so the previous run's findings are not re-reported.
// The delta also joins the broadcast history, so spares promoted later
// inherit the resumed corpus exactly like live discoveries.
func (f *Fleet) SeedFrom(d core.SyncDelta, clusters []string) {
	f.shared.Ingest(d.Edges)
	for _, e := range f.engines {
		e.ImportSyncDelta(d)
		e.MarkKnownClusters(clusters)
	}
	f.appendHistory(d)
}

// mannedCount returns how many shard slots currently have a board.
func (f *Fleet) mannedCount() int {
	n := 0
	for _, b := range f.slots {
		if b >= 0 {
			n++
		}
	}
	return n
}

// Run executes the campaign with the given total board-time budget, split
// evenly across the shard slots: each slot fuzzes for total/Shards of
// virtual board time, so the pool's wall-clock is total/Shards. Boards that
// die mid-campaign are quarantined at the next epoch barrier and replaced
// from the spare pool; Run only fails when every slot is unmanned (or on a
// non-death engine error). Run may be called once.
func (f *Fleet) Run(total time.Duration) (*core.Report, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: Run called twice")
	}
	f.ran = true
	n := f.opts.Shards
	shardBudget := total / time.Duration(n)

	// Provision and boot sequentially: board bring-up mutates no shared
	// state, but a deterministic order keeps any setup-time failure and its
	// quarantine/promotion handling stable.
	for slot := 0; slot < n; slot++ {
		if err := f.manSlot(slot); err != nil {
			return nil, err
		}
	}
	if f.mannedCount() == 0 {
		f.flushJournal()
		return nil, fmt.Errorf("fleet: every board died during setup: %w", core.ErrBoardDead)
	}
	// Bring up the emulation tier after the hardware pool. A VM that fails
	// setup is quarantined like a dead board (the tier has no spares); any
	// other error is campaign-fatal.
	for j, b := range f.emulSlots {
		f.active[b] = true
		if err := f.engines[b].Setup(); err != nil {
			if !errors.Is(err, core.ErrBoardDead) {
				return nil, fmt.Errorf("fleet: emul shard %d setup: %w", j, err)
			}
			f.quarantineEmul(j, 0)
		}
	}

	var series, emulSeries []core.CoverSample
	var elapsed time.Duration
	epochs := 0
	for remaining := shardBudget; remaining > 0; remaining -= f.opts.SyncEvery {
		slice := f.opts.SyncEvery
		if slice > remaining {
			slice = remaining
		}
		// Run the epoch slice on every manned slot concurrently — hardware
		// and emulation tiers alike. Each engine owns its board, link and
		// RNG; the only shared state is a mutex-protected collector sink
		// (one per tier), whose set union is order-independent.
		occupants := make([]int, n)
		copy(occupants, f.slots)
		emulOcc := make([]int, len(f.emulSlots))
		copy(emulOcc, f.emulSlots)
		errs := make([]error, n)
		emulErrs := make([]error, len(emulOcc))
		var wg sync.WaitGroup
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			wg.Add(1)
			go func(slot, b int) {
				defer wg.Done()
				errs[slot] = f.engines[b].RunFor(slice)
			}(slot, b)
		}
		for j, b := range emulOcc {
			if b < 0 {
				continue
			}
			wg.Add(1)
			go func(j, b int) {
				defer wg.Done()
				emulErrs[j] = f.engines[b].RunFor(slice)
			}(j, b)
		}
		wg.Wait()
		// A dead board is the supervisor's job at the barrier below; any
		// other engine error stays campaign-fatal.
		died := make([]bool, n)
		for slot, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, core.ErrBoardDead) {
				died[slot] = true
				continue
			}
			return nil, fmt.Errorf("fleet: shard %d: %w", slot, err)
		}
		emulDied := make([]bool, len(emulOcc))
		for j, err := range emulErrs {
			if err == nil {
				continue
			}
			if errors.Is(err, core.ErrBoardDead) {
				emulDied[j] = true
				continue
			}
			return nil, fmt.Errorf("fleet: emul shard %d: %w", j, err)
		}
		elapsed += slice
		epochs++

		// Barrier: exchange feedback in fixed slot order so every board sees
		// the same import sequence run to run. A dying board's final partial
		// delta still broadcasts — its discoveries outlive it.
		deltas := make([]core.SyncDelta, n)
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			deltas[slot] = f.engines[b].DrainSyncDelta()
			f.appendHistory(deltas[slot])
		}
		for slot := range occupants {
			for j, b := range occupants {
				if j == slot || b < 0 || died[j] {
					continue
				}
				f.engines[b].ImportSyncDelta(deltas[slot])
			}
		}
		// Tier exchange: feedback flows hardware -> emulation and between
		// emulation siblings, never emulation -> hardware. The hardware
		// corpus only sees emulation discoveries through a confirmed replay,
		// so an emulation-only artifact cannot steer the ground-truth tier.
		emulDeltas := make([]core.SyncDelta, len(emulOcc))
		for j, b := range emulOcc {
			if b < 0 {
				continue
			}
			emulDeltas[j] = f.engines[b].DrainSyncDelta()
		}
		for j, b := range emulOcc {
			if b < 0 || emulDied[j] {
				continue
			}
			e := f.engines[b]
			for slot, ob := range occupants {
				if ob < 0 {
					continue
				}
				e.ImportSyncDelta(deltas[slot])
			}
			for k := range emulOcc {
				if k == j || emulOcc[k] < 0 {
					continue
				}
				e.ImportSyncDelta(emulDeltas[k])
			}
		}

		// Supervise in slot order: journal the epoch for survivors,
		// quarantine dead boards, retire the chronically sick (only when a
		// spare is ready — a sick board still beats an empty slot), promote
		// spares.
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			e := f.engines[b]
			if died[slot] {
				if err := f.quarantine(slot, "dead", elapsed); err != nil {
					return nil, err
				}
				continue
			}
			e.Tracer().Emit(trace.Event{Kind: trace.SyncEpoch, Exec: epochs, Edges: f.shared.Total()})
			if e.Health().Sick(f.sickThreshold) && len(f.spares) > 0 {
				if err := f.quarantine(slot, "sick", elapsed); err != nil {
					return nil, err
				}
			}
		}
		// Supervise the emulation tier: journal the epoch against its own
		// shared collector, quarantine dead VMs. No spares — a lost explore
		// shard just narrows the tier.
		for j, b := range emulOcc {
			if b < 0 {
				continue
			}
			if emulDied[j] {
				f.quarantineEmul(j, elapsed)
				continue
			}
			f.engines[b].Tracer().Emit(trace.Event{Kind: trace.SyncEpoch, Exec: epochs, Edges: f.emulShared.Total()})
		}
		if err := f.runConfirm(emulOcc, elapsed); err != nil {
			return nil, err
		}
		if err := f.runTriage(occupants); err != nil {
			return nil, err
		}
		f.flushJournal()
		if err := f.persistBarrier(epochs, elapsed, deltas); err != nil {
			return nil, err
		}
		if f.mannedCount() == 0 {
			return nil, fmt.Errorf("fleet: every board dead after %v: %w", elapsed, core.ErrBoardDead)
		}
		series = append(series, core.CoverSample{At: elapsed, Edges: f.shared.Total()})
		if f.emulShared != nil {
			emulSeries = append(emulSeries, core.CoverSample{At: elapsed, Edges: f.emulShared.Total()})
		}
		if f.stop.Load() {
			// Graceful shutdown: the barrier above already exchanged the last
			// feedback, flushed the journal and committed the final
			// checkpoint; end the campaign cleanly with a merged report.
			break
		}
	}
	return f.mergeReport(series, emulSeries), nil
}

// persistBarrier commits one completed epoch to the durable store: every
// broadcast seed with its edge attribution, the fleet-wide coverage bitmap,
// the known crash clusters and each slot's resume cursor. Runs after the
// journal flush so persistence events land at a deterministic stream
// position; errors are campaign-fatal (a store that cannot accept writes is
// losing the work the campaign exists to accumulate).
func (f *Fleet) persistBarrier(epoch int, elapsed time.Duration, deltas []core.SyncDelta) error {
	p := f.opts.Persist
	if p == nil {
		return nil
	}
	b := corpus.Barrier{Epoch: epoch, Elapsed: elapsed, Edges: f.shared.Edges()}
	for slot, d := range deltas {
		for _, s := range d.Seeds {
			blob, err := prog.ToJSON(s.P)
			if err != nil {
				return fmt.Errorf("fleet: persist slot %d seed: %w", slot, err)
			}
			b.Admissions = append(b.Admissions, corpus.Admission{
				Prog: blob, NewEdges: s.NewEdges, Edges: s.Edges, Shard: slot,
			})
		}
	}
	clusters := make(map[string]bool)
	for bd, e := range f.engines {
		if !f.active[bd] {
			continue
		}
		for _, c := range e.KnownClusters() {
			clusters[c] = true
		}
	}
	for c := range clusters {
		b.Clusters = append(b.Clusters, c)
	}
	for slot, bd := range f.slots {
		cur := corpus.ShardCursor{Shard: slot}
		if bd >= 0 {
			cur.Execs = f.engines[bd].Execs()
		}
		b.Cursors = append(b.Cursors, cur)
	}
	return p.Barrier(b)
}

// manSlot performs initial bring-up of slot's board, quarantining setup-time
// deaths and promoting spares until the slot is manned or the pool runs dry.
func (f *Fleet) manSlot(slot int) error {
	b := f.slots[slot]
	f.active[b] = true
	err := f.engines[b].Setup()
	if err == nil {
		return nil
	}
	if !errors.Is(err, core.ErrBoardDead) {
		return fmt.Errorf("fleet: shard %d setup: %w", slot, err)
	}
	return f.quarantine(slot, "dead", 0)
}

// quarantine retires the board serving slot and promotes the next viable
// spare into it. The retired board's buffered events (ending with its
// quarantine event) flush ahead of the slot's next occupant, keeping the
// journal deterministic.
func (f *Fleet) quarantine(slot int, reason string, at time.Duration) error {
	b := f.slots[slot]
	e := f.engines[b]
	e.Tracer().Emit(trace.Event{Kind: trace.Quarantine, Exec: slot, Reason: reason})
	f.flushQueue[slot] = append(f.flushQueue[slot], b)
	f.slots[slot] = -1
	f.quarantines = append(f.quarantines, core.Quarantine{
		Slot: slot, Board: b, Spare: -1, Reason: reason, At: at, Health: e.Health(),
	})
	qi := len(f.quarantines) - 1
	spare, err := f.promote(slot, at)
	if err != nil {
		return err
	}
	f.quarantines[qi].Spare = spare
	return nil
}

// promote mans slot with the next spare that survives bring-up, importing
// the cumulative broadcast history so the newcomer starts from the fleet's
// collective corpus. Returns -1 when the spare pool ran dry. A spare that is
// dead on arrival earns its own quarantine record and the next one is tried.
func (f *Fleet) promote(slot int, at time.Duration) (int, error) {
	for len(f.spares) > 0 {
		s := f.spares[0]
		f.spares = f.spares[1:]
		e := f.engines[s]
		f.active[s] = true
		if err := e.Setup(); err != nil {
			if !errors.Is(err, core.ErrBoardDead) {
				return -1, fmt.Errorf("fleet: spare %d setup: %w", s, err)
			}
			e.Tracer().Emit(trace.Event{Kind: trace.Quarantine, Exec: slot, Reason: "dead"})
			f.flushQueue[slot] = append(f.flushQueue[slot], s)
			f.quarantines = append(f.quarantines, core.Quarantine{
				Slot: slot, Board: s, Spare: -1, Reason: "dead", At: at, Health: e.Health(),
			})
			continue
		}
		f.setFocus(e, slot)
		e.ImportSyncDelta(f.history)
		e.Tracer().Emit(trace.Event{Kind: trace.SparePromote, Exec: slot, Edges: len(f.history.Edges)})
		f.slots[slot] = s
		return s, nil
	}
	return -1, nil
}

// runTriage drains every occupant's deferred triage queue onto the dedicated
// triage board, in slot order so replay verdicts and journal events are
// identical run to run. A finding whose cluster was already confirmed —
// possibly by a different shard — inherits the cached verdict instead of
// burning board time on a duplicate. Dead boards still appear in occupants,
// so a dying shard's last findings get triaged too. If the triage board
// itself dies, the remaining findings stay untriaged rather than killing the
// campaign.
func (f *Fleet) runTriage(occupants []int) error {
	if f.triageIdx < 0 {
		return nil
	}
	te := f.engines[f.triageIdx]
	for _, b := range occupants {
		if b < 0 {
			continue
		}
		for _, item := range f.engines[b].DrainTriageQueue() {
			if prior, ok := f.triaged[item.Bug.Cluster]; ok {
				copyTriage(prior, item.Bug)
				continue
			}
			if f.triageDead {
				continue
			}
			f.active[f.triageIdx] = true
			if err := te.TriageBug(item.Bug, item.P); err != nil {
				if !errors.Is(err, core.ErrBoardDead) {
					return fmt.Errorf("fleet: triage board: %w", err)
				}
				f.triageDead = true
			}
			f.triaged[item.Bug.Cluster] = item.Bug
		}
	}
	return nil
}

// quarantineEmul retires emulation shard j. The tier has no spares, so the
// slot stays unmanned; the shard's buffered events (ending with its
// quarantine) flush with the tier at the barrier.
func (f *Fleet) quarantineEmul(j int, at time.Duration) {
	b := f.emulSlots[j]
	e := f.engines[b]
	e.Tracer().Emit(trace.Event{Kind: trace.Quarantine, Exec: j, Reason: "dead"})
	f.emulSlots[j] = -1
	f.quarantines = append(f.quarantines, core.Quarantine{
		Slot: j, Board: b, Spare: -1, Reason: "dead", At: at, Health: e.Health(), Tier: "emul",
	})
}

// runConfirm drains every emulation shard's confirmation queue, in tier-slot
// order, and replays each item on the hardware pool round-robin (the cursor
// persists across barriers so replay load spreads evenly). Dead emulation
// shards still appear in emulOcc, so a dying shard's last findings are
// confirmed too.
func (f *Fleet) runConfirm(emulOcc []int, at time.Duration) error {
	for _, b := range emulOcc {
		if b < 0 {
			continue
		}
		for _, item := range f.engines[b].DrainConfirmQueue() {
			if err := f.confirmOne(b, item, at); err != nil {
				return err
			}
		}
	}
	return nil
}

// confirmOne re-executes one emulation-tier item on the next manned hardware
// slot and classifies the outcome. A replay that kills its board quarantines
// the slot and retries the item on the next one; the campaign only fails when
// no hardware board remains to confirm on.
func (f *Fleet) confirmOne(src int, item core.ConfirmItem, at time.Duration) error {
	for {
		slot := f.nextConfirmSlot()
		if slot < 0 {
			return fmt.Errorf("fleet: every hardware board dead during confirmation: %w", core.ErrBoardDead)
		}
		e := f.engines[f.slots[slot]]
		res, err := e.ConfirmProg(item.P)
		if err != nil {
			if errors.Is(err, core.ErrBoardDead) {
				if qerr := f.quarantine(slot, "dead", at); qerr != nil {
					return qerr
				}
				continue
			}
			return fmt.Errorf("fleet: confirm replay: %w", err)
		}
		f.classify(e, src, item, res, at)
		return nil
	}
}

// nextConfirmSlot returns the next manned hardware slot in round-robin
// order, or -1 when every slot is unmanned.
func (f *Fleet) nextConfirmSlot() int {
	n := f.opts.Shards
	for i := 0; i < n; i++ {
		slot := (f.confirmNext + i) % n
		if f.slots[slot] >= 0 {
			f.confirmNext = (slot + 1) % n
			return slot
		}
	}
	return -1
}

// classify compares what the emulation tier claimed against what the
// hardware replay observed, emitting TierConfirm / TierDiverge on the
// confirming engine's tracer (src is the emulation shard's physical index).
// Three divergence kinds exist: coverage the hardware run never executed,
// an emulation crash hardware cannot reproduce, and a hardware crash the
// emulation run never hit. The replay itself already fed the hardware
// campaign — a confirmed seed joined the corpus and sync delta inside
// ConfirmProg, and a hardware crash was recorded as a native finding — so
// classification only has to score the comparison.
func (f *Fleet) classify(e *core.Engine, src int, item core.ConfirmItem, res core.ConfirmResult, at time.Duration) {
	tr := e.Tracer()
	if item.Bug != nil {
		if res.Bug != nil && res.Bug.Cluster == item.Bug.Cluster {
			f.confirmed++
			tr.Emit(trace.Event{Kind: trace.TierConfirm, Exec: src, Reason: "crash:" + item.Bug.Cluster})
		} else {
			f.diverged++
			tr.Emit(trace.Event{Kind: trace.TierDiverge, Exec: src, Reason: "emul-only-crash:" + item.Bug.Cluster})
			f.divergences = append(f.divergences, core.TierDivergence{
				Kind: "emul-only-crash", Cluster: item.Bug.Cluster, Prog: item.P.String(), Shard: src, At: at,
			})
		}
		return
	}
	got := make(map[uint32]bool, len(res.Edges))
	for _, id := range res.Edges {
		got[id] = true
	}
	missing := 0
	for _, id := range item.Edges {
		if !got[id] {
			missing++
		}
	}
	if missing == 0 {
		f.confirmed++
		tr.Emit(trace.Event{Kind: trace.TierConfirm, Exec: src, Reason: "cov", Edges: len(item.Edges)})
	} else {
		f.diverged++
		tr.Emit(trace.Event{Kind: trace.TierDiverge, Exec: src, Reason: "emul-only-cov", Edges: missing})
		f.divergences = append(f.divergences, core.TierDivergence{
			Kind: "emul-only-cov", Edges: missing, Prog: item.P.String(), Shard: src, At: at,
		})
	}
	if res.Bug != nil {
		f.diverged++
		tr.Emit(trace.Event{Kind: trace.TierDiverge, Exec: src, Reason: "hw-only-crash:" + res.Bug.Cluster})
		f.divergences = append(f.divergences, core.TierDivergence{
			Kind: "hw-only-crash", Cluster: res.Bug.Cluster, Prog: item.P.String(), Shard: src, At: at,
		})
	}
}

// copyTriage copies a cached triage verdict onto a duplicate finding.
func copyTriage(from, to *core.BugReport) {
	to.Reproducibility = from.Reproducibility
	to.ReplayHits = from.ReplayHits
	to.Replays = from.Replays
	to.OrigCalls = from.OrigCalls
	to.MinCalls = from.MinCalls
	to.Repro = from.Repro
	to.Prog = from.Prog
}

// appendHistory accumulates a broadcast delta into the promotion history.
// ImportSyncDelta clones seed programs on import, so sharing the slices with
// the original broadcast is safe.
func (f *Fleet) appendHistory(d core.SyncDelta) {
	f.history.Edges = append(f.history.Edges, d.Edges...)
	f.history.Seeds = append(f.history.Seeds, d.Seeds...)
	f.history.Rewards = append(f.history.Rewards, d.Rewards...)
}

// flushJournal drains buffered events into the campaign journal in slot
// order: first each slot's retired boards (their streams end with the
// quarantine event), then the slot's current occupant. Supervision happens
// in slot order before the flush, so the merged stream is identical run to
// run.
func (f *Fleet) flushJournal() {
	if f.journal == nil {
		return
	}
	for slot := 0; slot < f.opts.Shards; slot++ {
		for _, b := range f.flushQueue[slot] {
			f.flushBuffer(b)
		}
		f.flushQueue[slot] = nil
		if b := f.slots[slot]; b >= 0 {
			f.flushBuffer(b)
		}
	}
	// The triage board's events (all produced at the barrier, after every
	// shard's slice) flush next, then the emulation tier in slot order —
	// appending the tier's streams keeps the hardware prefix of a tiered
	// journal identical to the untiered journal.
	if f.triageIdx >= 0 {
		f.flushBuffer(f.triageIdx)
	}
	for _, b := range f.emulIdx {
		f.flushBuffer(b)
	}
}

func (f *Fleet) flushBuffer(b int) {
	for _, ev := range f.buffers[b].Drain() {
		f.journal.Emit(ev)
	}
}

// ShardReports returns each activated board's individual report from the
// finished campaign, in physical-board order (quarantined boards and
// promoted spares included), with fleet sync-barrier idle time already
// attributed (a board's SyncBarrier covers how much longer the pool ran
// than it did). Nil before Run completes.
func (f *Fleet) ShardReports() []*core.Report { return f.shardReports }

// mergeReport folds the activated boards' reports into one campaign report
// with stable ordering: stats summed in physical-board order, bugs
// deduplicated by cluster in (board, discovery) order, Duration = the
// longest board's virtual runtime (= the pool's wall-clock, since slots run
// concurrently). Board-time accounting: a board that finished early — or
// died early, or joined late as a spare — sat out the rest of the pool's
// wall-clock, so the gap to the pool Duration is charged to its SyncBarrier
// bucket; afterwards every activated board's TimeBy sums to the pool
// Duration and the merged TimeBy sums to activated-boards x Duration. The
// merged Health is the pool's sickest board; BoardHealth and Quarantines
// carry the full story.
func (f *Fleet) mergeReport(series, emulSeries []core.CoverSample) *core.Report {
	out := &core.Report{
		Series: series, Edges: f.shared.Total(),
		Quarantines: f.quarantines, Divergences: f.divergences,
	}
	tiered := len(f.emulIdx) > 0
	emulStart := len(f.engines)
	if tiered {
		emulStart = f.emulIdx[0]
	}
	hwTier := core.TierStats{Class: backend.HW.String(), Edges: f.shared.Total(), Confirmed: f.confirmed, Diverged: f.diverged}
	emTier := core.TierStats{Class: backend.Emul.String()}
	if tiered {
		emTier.Edges = f.emulShared.Total()
		hwTier.Series = series
		emTier.Series = emulSeries
	}
	seen := make(map[string]bool)
	f.shardReports = f.shardReports[:0]
	var emul []bool // aligned with shardReports
	for b, e := range f.engines {
		if !f.active[b] {
			continue
		}
		r := e.Report()
		f.shardReports = append(f.shardReports, r)
		emul = append(emul, b >= emulStart)
		if b < emulStart {
			out.OS, out.Board = r.OS, r.Board
		}
		out.Stats.Merge(r.Stats)
		out.BoardHealth = append(out.BoardHealth, r.Health)
		if len(f.shardReports) == 1 || healthWorse(r.Health, out.Health) {
			out.Health = r.Health
		}
		for _, bug := range r.Bugs {
			// An emulation-tier finding is provisional: if hardware
			// reproduced it, the confirmation replay recorded it natively on
			// the hardware tier; if not, it lives on as a TierDivergence.
			// Either way the merged bug list carries only ground truth.
			if bug.Tier == backend.Emul.String() {
				continue
			}
			key := bug.Cluster
			if key == "" {
				key = bug.Sig
			}
			if !seen[key] {
				seen[key] = true
				out.Bugs = append(out.Bugs, bug)
			}
		}
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
	}
	for i, r := range f.shardReports {
		r.TimeBy.SyncBarrier += out.Duration - r.Duration
		out.TimeBy.Merge(r.TimeBy)
		if emul[i] {
			emTier.Boards++
			emTier.Execs += r.Stats.Execs
			emTier.TimeBy.Merge(r.TimeBy)
		} else {
			hwTier.Boards++
			hwTier.Execs += r.Stats.Execs
			hwTier.ConfirmReplays += r.Stats.ConfirmReplays
			hwTier.TimeBy.Merge(r.TimeBy)
		}
	}
	if tiered {
		out.Tiers = []core.TierStats{hwTier, emTier}
	}
	// Journal each activated board's final time budget now that barrier-idle
	// time is attributed (every shard's buckets sum to the pool Duration), then
	// drain the buffers one last time. The last barrier already flushed the
	// per-slot queues, so a straight physical-order pass over the activated
	// boards is deterministic.
	i := 0
	for b, e := range f.engines {
		if !f.active[b] {
			continue
		}
		e.EmitTimeBudget(f.shardReports[i].TimeBy, out.Duration)
		i++
	}
	if f.journal != nil {
		for b := range f.engines {
			if f.active[b] {
				f.flushBuffer(b)
			}
		}
	}
	return out
}

// healthWorse reports whether a is in worse shape than b.
func healthWorse(a, b core.Health) bool {
	if a.Dead != b.Dead {
		return a.Dead
	}
	return a.Score < b.Score
}

// Close releases every board's debug link and core, spares included.
func (f *Fleet) Close() {
	for _, e := range f.engines {
		e.Close()
	}
}
