// Package fleet shards one fuzzing campaign across a pool of virtual boards.
// N engines attach to N boards and run concurrently, each on an equal slice
// of the total board-time budget; their feedback cross-pollinates through a
// thread-safe shared coverage collector (live, order-independent set union)
// and an epoch-barrier corpus-sync exchange: at fixed virtual intervals every
// shard drains the new-coverage seeds, fresh edges and choice-table rewards
// it found, and the deltas are broadcast to sibling shards in shard order.
// Because each shard's execution between barriers is self-contained and
// deterministic, and the barrier exchange happens in a fixed order, the
// merged report is reproducible run to run for a fixed seed.
//
// The pool models the paper's practical deployment: on-hardware fuzzing is
// throughput-bound by the debug link and one board's execution speed, so
// labs attach several cheap boards to one host. Virtual time in this repo is
// board wall-clock, so a fleet report's Duration is the pool's wall-clock —
// total board-time divided by the shard count — and edges per Duration
// second is the pool's effective throughput.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/trace"
)

// DefaultSyncEvery is the epoch-barrier interval when Options leaves it
// unset: long enough that barrier overhead is negligible, short enough that
// a shard's discovery reaches siblings while it still matters.
const DefaultSyncEvery = 10 * time.Minute

// shardSeedStride separates shard RNG streams. Shard 0 keeps the configured
// seed, so a 1-shard fleet explores exactly like a solo engine.
const shardSeedStride = 1_000_003

// Options parameterises a fleet campaign.
type Options struct {
	// Shards is the number of boards in the pool (minimum 1).
	Shards int
	// SyncEvery is the virtual interval between feedback-exchange barriers
	// (default DefaultSyncEvery).
	SyncEvery time.Duration
	// FocusBoost, when positive, soft-partitions the search space: shard i
	// biases fresh generation toward every i-th spec call by adding this
	// weight, without removing any call from any shard. Zero disables
	// focus (all shards explore uniformly, differing only by seed).
	FocusBoost float64
}

// Fleet is one sharded campaign over a board pool.
type Fleet struct {
	opts    Options
	engines []*core.Engine
	shared  *cov.Collector
	ran     bool

	// journal is the campaign-level trace sink (cfg.TraceSink); each shard
	// writes into its own buffer, drained into the journal in shard order at
	// every epoch barrier so the merged stream is deterministic even though
	// shards run concurrently.
	journal trace.Sink
	buffers []*trace.Buffer

	shardReports []*core.Report
}

// New builds a pool of opts.Shards engines from cfg. Shard i runs with seed
// cfg.Seed + i*stride and feeds the fleet-wide shared collector; with
// FocusBoost set it also receives its round-robin slice of the API surface
// as a soft generation bias. The shard seed also feeds each shard's
// link-fault injector (when cfg.LinkFaults leaves its Seed at zero), so
// every board in the pool sees its own deterministic flaky-adapter sequence.
func New(cfg core.Config, opts Options) (*Fleet, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	f := &Fleet{opts: opts, shared: cov.NewCollector()}
	if cfg.TraceSink != nil {
		f.journal = cfg.TraceSink
	}
	for i := 0; i < opts.Shards; i++ {
		scfg := cfg
		scfg.Seed = cfg.Seed + int64(i)*shardSeedStride
		scfg.Shard = i
		if f.journal != nil {
			// Buffer per shard; the Run loop merges in shard order at each
			// barrier so the journal stays deterministic. The live StatusSink
			// (thread-safe by contract) stays attached directly.
			buf := trace.NewBuffer()
			f.buffers = append(f.buffers, buf)
			scfg.TraceSink = buf
		}
		e, err := core.NewEngine(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		e.SetSharedSink(f.shared)
		if opts.FocusBoost > 0 && opts.Shards > 1 {
			var names []string
			for j, name := range e.SpecCalls() {
				if j%opts.Shards == i {
					names = append(names, name)
				}
			}
			e.SetFocus(names, opts.FocusBoost)
		}
		f.engines = append(f.engines, e)
	}
	return f, nil
}

// Engines exposes the pool for tests and experiment harnesses.
func (f *Fleet) Engines() []*core.Engine { return f.engines }

// SharedEdges returns the fleet-wide distinct edge count so far.
func (f *Fleet) SharedEdges() int { return f.shared.Total() }

// Run executes the campaign with the given total board-time budget, split
// evenly across the pool: each shard fuzzes for total/N of virtual board
// time, so the pool's wall-clock is total/N. Run may be called once.
func (f *Fleet) Run(total time.Duration) (*core.Report, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: Run called twice")
	}
	f.ran = true
	n := len(f.engines)
	shardBudget := total / time.Duration(n)

	// Provision and boot sequentially: board bring-up mutates no shared
	// state, but a deterministic order keeps any setup-time bug report
	// stable.
	for i, e := range f.engines {
		if err := e.Setup(); err != nil {
			return nil, fmt.Errorf("fleet: shard %d setup: %w", i, err)
		}
	}

	var series []core.CoverSample
	var elapsed time.Duration
	epochs := 0
	for remaining := shardBudget; remaining > 0; remaining -= f.opts.SyncEvery {
		slice := f.opts.SyncEvery
		if slice > remaining {
			slice = remaining
		}
		// Run the epoch slice on every shard concurrently. Each engine owns
		// its board, link and RNG; the only shared state is the mutex-
		// protected collector sink, whose set union is order-independent.
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, e := range f.engines {
			wg.Add(1)
			go func(i int, e *core.Engine) {
				defer wg.Done()
				errs[i] = e.RunFor(slice)
			}(i, e)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
			}
		}
		// Barrier: exchange feedback in fixed shard order so every shard
		// sees the same import sequence run to run.
		deltas := make([]core.SyncDelta, n)
		for i, e := range f.engines {
			deltas[i] = e.DrainSyncDelta()
		}
		for i := range f.engines {
			for j, e := range f.engines {
				if j != i {
					e.ImportSyncDelta(deltas[i])
				}
			}
		}
		elapsed += slice
		epochs++
		// Journal the barrier and flush each shard's buffered slice in shard
		// order — the step that keeps a concurrent fleet's journal
		// deterministic for a fixed seed.
		for i, e := range f.engines {
			e.Tracer().Emit(trace.Event{Kind: trace.SyncEpoch, Exec: epochs, Edges: f.shared.Total()})
			if f.journal != nil {
				for _, ev := range f.buffers[i].Drain() {
					f.journal.Emit(ev)
				}
			}
		}
		series = append(series, core.CoverSample{At: elapsed, Edges: f.shared.Total()})
	}
	return f.mergeReport(series), nil
}

// ShardReports returns each shard's individual report from the finished
// campaign, in shard order, with fleet sync-barrier idle time already
// attributed (shard i's SyncBarrier is how much longer the slowest sibling
// ran). Nil before Run completes.
func (f *Fleet) ShardReports() []*core.Report { return f.shardReports }

// mergeReport folds the shard reports into one campaign report with stable
// ordering: stats summed in shard order, bugs deduplicated by signature in
// (shard, discovery) order, Duration = the longest shard's virtual runtime
// (= the pool's wall-clock, since shards run concurrently). Board-time
// accounting: a shard that finished its slices early sat idle at epoch
// barriers waiting for the slowest sibling, so the gap to the pool Duration
// is charged to its SyncBarrier bucket — after which every shard's TimeBy
// sums to the pool Duration and the merged TimeBy sums to Shards x Duration
// (total board-time, not wall-clock).
func (f *Fleet) mergeReport(series []core.CoverSample) *core.Report {
	out := &core.Report{Series: series, Edges: f.shared.Total()}
	seen := make(map[string]bool)
	f.shardReports = make([]*core.Report, 0, len(f.engines))
	for _, e := range f.engines {
		r := e.Report()
		f.shardReports = append(f.shardReports, r)
		out.OS, out.Board = r.OS, r.Board
		out.Stats.Merge(r.Stats)
		for _, b := range r.Bugs {
			if !seen[b.Sig] {
				seen[b.Sig] = true
				out.Bugs = append(out.Bugs, b)
			}
		}
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
	}
	for _, r := range f.shardReports {
		r.TimeBy.SyncBarrier += out.Duration - r.Duration
		out.TimeBy.Merge(r.TimeBy)
	}
	return out
}

// Close releases every shard's debug link and board.
func (f *Fleet) Close() {
	for _, e := range f.engines {
		e.Close()
	}
}
