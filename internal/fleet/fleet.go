// Package fleet shards one fuzzing campaign across a pool of virtual boards.
// N engines attach to N boards and run concurrently, each on an equal slice
// of the total board-time budget; their feedback cross-pollinates through a
// thread-safe shared coverage collector (live, order-independent set union)
// and an epoch-barrier corpus-sync exchange: at fixed virtual intervals every
// shard drains the new-coverage seeds, fresh edges and choice-table rewards
// it found, and the deltas are broadcast to sibling shards in shard order.
// Because each shard's execution between barriers is self-contained and
// deterministic, and the barrier exchange happens in a fixed order, the
// merged report is reproducible run to run for a fixed seed.
//
// The pool models the paper's practical deployment: on-hardware fuzzing is
// throughput-bound by the debug link and one board's execution speed, so
// labs attach several cheap boards to one host. Virtual time in this repo is
// board wall-clock, so a fleet report's Duration is the pool's wall-clock —
// total board-time divided by the shard count — and edges per Duration
// second is the pool's effective throughput.
//
// A board-health supervisor runs at every epoch barrier: a board whose
// engine reported core.ErrBoardDead — or whose health score fell below the
// sick threshold while a spare is available — is quarantined, and the next
// hot spare from the configured pool takes over its slot, re-seeded from the
// cumulative broadcast history so the newcomer starts with the fleet's
// collective corpus. One doomed board therefore costs the pool roughly one
// shard-epoch of throughput instead of the whole campaign.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/trace"
)

// DefaultSyncEvery is the epoch-barrier interval when Options leaves it
// unset: long enough that barrier overhead is negligible, short enough that
// a shard's discovery reaches siblings while it still matters.
const DefaultSyncEvery = 10 * time.Minute

// shardSeedStride separates shard RNG streams. Shard 0 keeps the configured
// seed, so a 1-shard fleet explores exactly like a solo engine.
const shardSeedStride = 1_000_003

// Options parameterises a fleet campaign.
type Options struct {
	// Shards is the number of boards in the pool (minimum 1).
	Shards int
	// SyncEvery is the virtual interval between feedback-exchange barriers
	// (default DefaultSyncEvery).
	SyncEvery time.Duration
	// FocusBoost, when positive, soft-partitions the search space: shard i
	// biases fresh generation toward every i-th spec call by adding this
	// weight, without removing any call from any shard. Zero disables
	// focus (all shards explore uniformly, differing only by seed).
	FocusBoost float64
	// Spares is the hot-spare pool size: boards built alongside the shards
	// (physical indices Shards..Shards+Spares-1) but held powered off until
	// the supervisor promotes one into a quarantined slot.
	Spares int
	// Degrade overrides the degradation model per physical board index
	// (shards first, then spares); boards beyond the slice inherit
	// cfg.Degrade. Tests and the resilience ablation use it to doom one
	// specific board.
	Degrade []board.DegradeConfig
}

// Fleet is one sharded campaign over a board pool with hot-spare failover.
type Fleet struct {
	opts    Options
	engines []*core.Engine // physical boards: shards first, then spares
	shared  *cov.Collector
	ran     bool

	// slots maps each shard slot to the physical board serving it (-1 when
	// the slot is unmanned because the spare pool ran dry); spares is the
	// FIFO of boards still in reserve; active marks boards that were ever
	// powered on (their reports merge into the campaign report).
	slots  []int
	spares []int
	active []bool

	// history accumulates every broadcast delta so a promoted spare can be
	// re-seeded with the fleet's collective feedback at promotion time.
	history     core.SyncDelta
	quarantines []core.Quarantine

	sickThreshold float64

	// journal is the campaign-level trace sink (cfg.TraceSink); each board
	// writes into its own buffer, drained into the journal in slot order at
	// every epoch barrier so the merged stream is deterministic. flushQueue
	// holds, per slot, retired boards whose final events (ending in their
	// quarantine) must flush before the slot's current occupant's stream.
	journal    trace.Sink
	buffers    []*trace.Buffer
	flushQueue [][]int

	// triageIdx is the dedicated triage board's physical index (after the
	// spares; -1 when triage is disabled). Shards run with deferred triage
	// and the fleet drains their queues onto this board at every epoch
	// barrier in slot order, so findings are confirmed on different
	// hardware than found them and the merged journal stays deterministic.
	// triaged caches completed verdicts by cluster so a finding another
	// shard already confirmed is copied, not replayed again.
	triageIdx  int
	triageDead bool
	triaged    map[string]*core.BugReport

	shardReports []*core.Report
}

// New builds a pool of opts.Shards+opts.Spares engines from cfg. Physical
// board i runs with seed cfg.Seed + i*stride and feeds the fleet-wide shared
// collector; shard slots also receive their round-robin slice of the API
// surface as a soft generation bias when FocusBoost is set (a promoted spare
// inherits its slot's focus). The board seed also feeds each board's
// link-fault injector and degradation model (when their Seeds are zero), so
// every board in the pool ages and faults deterministically but differently.
func New(cfg core.Config, opts Options) (*Fleet, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Spares < 0 {
		opts.Spares = 0
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	f := &Fleet{
		opts:          opts,
		shared:        cov.NewCollector(),
		sickThreshold: cfg.Health.WithDefaults().SickThreshold,
		triageIdx:     -1,
		triaged:       make(map[string]*core.BugReport),
	}
	if cfg.TraceSink != nil {
		f.journal = cfg.TraceSink
	}
	total := opts.Shards + opts.Spares
	boards := total
	if cfg.Triage.Enabled {
		// One extra physical board, dedicated to triage: shards defer
		// (enqueue only) and the barrier drains their queues onto it.
		f.triageIdx = total
		boards = total + 1
	}
	for i := 0; i < boards; i++ {
		scfg := cfg
		scfg.Seed = cfg.Seed + int64(i)*shardSeedStride
		scfg.Shard = i
		if scfg.Triage.Enabled {
			scfg.Triage.Deferred = true
		}
		if i < len(opts.Degrade) && i < total {
			scfg.Degrade = opts.Degrade[i]
		}
		if f.journal != nil {
			// Buffer per board; the Run loop merges in slot order at each
			// barrier so the journal stays deterministic. The live StatusSink
			// (thread-safe by contract) stays attached directly.
			buf := trace.NewBuffer()
			f.buffers = append(f.buffers, buf)
			scfg.TraceSink = buf
		}
		e, err := core.NewEngine(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: board %d: %w", i, err)
		}
		e.SetSharedSink(f.shared)
		switch {
		case i < opts.Shards:
			f.setFocus(e, i)
			f.slots = append(f.slots, i)
		case i < total:
			f.spares = append(f.spares, i)
		}
		f.engines = append(f.engines, e)
	}
	f.active = make([]bool, boards)
	f.flushQueue = make([][]int, opts.Shards)
	return f, nil
}

// setFocus applies slot's round-robin soft partition of the API surface to e.
func (f *Fleet) setFocus(e *core.Engine, slot int) {
	if f.opts.FocusBoost <= 0 || f.opts.Shards <= 1 {
		return
	}
	var names []string
	for j, name := range e.SpecCalls() {
		if j%f.opts.Shards == slot {
			names = append(names, name)
		}
	}
	e.SetFocus(names, f.opts.FocusBoost)
}

// Engines exposes the pool (shards first, then spares) for tests and
// experiment harnesses.
func (f *Fleet) Engines() []*core.Engine { return f.engines }

// SharedEdges returns the fleet-wide distinct edge count so far.
func (f *Fleet) SharedEdges() int { return f.shared.Total() }

// Quarantines returns the quarantine records so far, in supervision order.
func (f *Fleet) Quarantines() []core.Quarantine { return f.quarantines }

// mannedCount returns how many shard slots currently have a board.
func (f *Fleet) mannedCount() int {
	n := 0
	for _, b := range f.slots {
		if b >= 0 {
			n++
		}
	}
	return n
}

// Run executes the campaign with the given total board-time budget, split
// evenly across the shard slots: each slot fuzzes for total/Shards of
// virtual board time, so the pool's wall-clock is total/Shards. Boards that
// die mid-campaign are quarantined at the next epoch barrier and replaced
// from the spare pool; Run only fails when every slot is unmanned (or on a
// non-death engine error). Run may be called once.
func (f *Fleet) Run(total time.Duration) (*core.Report, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: Run called twice")
	}
	f.ran = true
	n := f.opts.Shards
	shardBudget := total / time.Duration(n)

	// Provision and boot sequentially: board bring-up mutates no shared
	// state, but a deterministic order keeps any setup-time failure and its
	// quarantine/promotion handling stable.
	for slot := 0; slot < n; slot++ {
		if err := f.manSlot(slot); err != nil {
			return nil, err
		}
	}
	if f.mannedCount() == 0 {
		f.flushJournal()
		return nil, fmt.Errorf("fleet: every board died during setup: %w", core.ErrBoardDead)
	}

	var series []core.CoverSample
	var elapsed time.Duration
	epochs := 0
	for remaining := shardBudget; remaining > 0; remaining -= f.opts.SyncEvery {
		slice := f.opts.SyncEvery
		if slice > remaining {
			slice = remaining
		}
		// Run the epoch slice on every manned slot concurrently. Each engine
		// owns its board, link and RNG; the only shared state is the mutex-
		// protected collector sink, whose set union is order-independent.
		occupants := make([]int, n)
		copy(occupants, f.slots)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			wg.Add(1)
			go func(slot, b int) {
				defer wg.Done()
				errs[slot] = f.engines[b].RunFor(slice)
			}(slot, b)
		}
		wg.Wait()
		// A dead board is the supervisor's job at the barrier below; any
		// other engine error stays campaign-fatal.
		died := make([]bool, n)
		for slot, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, core.ErrBoardDead) {
				died[slot] = true
				continue
			}
			return nil, fmt.Errorf("fleet: shard %d: %w", slot, err)
		}
		elapsed += slice
		epochs++

		// Barrier: exchange feedback in fixed slot order so every board sees
		// the same import sequence run to run. A dying board's final partial
		// delta still broadcasts — its discoveries outlive it.
		deltas := make([]core.SyncDelta, n)
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			deltas[slot] = f.engines[b].DrainSyncDelta()
			f.appendHistory(deltas[slot])
		}
		for slot := range occupants {
			for j, b := range occupants {
				if j == slot || b < 0 || died[j] {
					continue
				}
				f.engines[b].ImportSyncDelta(deltas[slot])
			}
		}

		// Supervise in slot order: journal the epoch for survivors,
		// quarantine dead boards, retire the chronically sick (only when a
		// spare is ready — a sick board still beats an empty slot), promote
		// spares.
		for slot, b := range occupants {
			if b < 0 {
				continue
			}
			e := f.engines[b]
			if died[slot] {
				if err := f.quarantine(slot, "dead", elapsed); err != nil {
					return nil, err
				}
				continue
			}
			e.Tracer().Emit(trace.Event{Kind: trace.SyncEpoch, Exec: epochs, Edges: f.shared.Total()})
			if e.Health().Sick(f.sickThreshold) && len(f.spares) > 0 {
				if err := f.quarantine(slot, "sick", elapsed); err != nil {
					return nil, err
				}
			}
		}
		if err := f.runTriage(occupants); err != nil {
			return nil, err
		}
		f.flushJournal()
		if f.mannedCount() == 0 {
			return nil, fmt.Errorf("fleet: every board dead after %v: %w", elapsed, core.ErrBoardDead)
		}
		series = append(series, core.CoverSample{At: elapsed, Edges: f.shared.Total()})
	}
	return f.mergeReport(series), nil
}

// manSlot performs initial bring-up of slot's board, quarantining setup-time
// deaths and promoting spares until the slot is manned or the pool runs dry.
func (f *Fleet) manSlot(slot int) error {
	b := f.slots[slot]
	f.active[b] = true
	err := f.engines[b].Setup()
	if err == nil {
		return nil
	}
	if !errors.Is(err, core.ErrBoardDead) {
		return fmt.Errorf("fleet: shard %d setup: %w", slot, err)
	}
	return f.quarantine(slot, "dead", 0)
}

// quarantine retires the board serving slot and promotes the next viable
// spare into it. The retired board's buffered events (ending with its
// quarantine event) flush ahead of the slot's next occupant, keeping the
// journal deterministic.
func (f *Fleet) quarantine(slot int, reason string, at time.Duration) error {
	b := f.slots[slot]
	e := f.engines[b]
	e.Tracer().Emit(trace.Event{Kind: trace.Quarantine, Exec: slot, Reason: reason})
	f.flushQueue[slot] = append(f.flushQueue[slot], b)
	f.slots[slot] = -1
	f.quarantines = append(f.quarantines, core.Quarantine{
		Slot: slot, Board: b, Spare: -1, Reason: reason, At: at, Health: e.Health(),
	})
	qi := len(f.quarantines) - 1
	spare, err := f.promote(slot, at)
	if err != nil {
		return err
	}
	f.quarantines[qi].Spare = spare
	return nil
}

// promote mans slot with the next spare that survives bring-up, importing
// the cumulative broadcast history so the newcomer starts from the fleet's
// collective corpus. Returns -1 when the spare pool ran dry. A spare that is
// dead on arrival earns its own quarantine record and the next one is tried.
func (f *Fleet) promote(slot int, at time.Duration) (int, error) {
	for len(f.spares) > 0 {
		s := f.spares[0]
		f.spares = f.spares[1:]
		e := f.engines[s]
		f.active[s] = true
		if err := e.Setup(); err != nil {
			if !errors.Is(err, core.ErrBoardDead) {
				return -1, fmt.Errorf("fleet: spare %d setup: %w", s, err)
			}
			e.Tracer().Emit(trace.Event{Kind: trace.Quarantine, Exec: slot, Reason: "dead"})
			f.flushQueue[slot] = append(f.flushQueue[slot], s)
			f.quarantines = append(f.quarantines, core.Quarantine{
				Slot: slot, Board: s, Spare: -1, Reason: "dead", At: at, Health: e.Health(),
			})
			continue
		}
		f.setFocus(e, slot)
		e.ImportSyncDelta(f.history)
		e.Tracer().Emit(trace.Event{Kind: trace.SparePromote, Exec: slot, Edges: len(f.history.Edges)})
		f.slots[slot] = s
		return s, nil
	}
	return -1, nil
}

// runTriage drains every occupant's deferred triage queue onto the dedicated
// triage board, in slot order so replay verdicts and journal events are
// identical run to run. A finding whose cluster was already confirmed —
// possibly by a different shard — inherits the cached verdict instead of
// burning board time on a duplicate. Dead boards still appear in occupants,
// so a dying shard's last findings get triaged too. If the triage board
// itself dies, the remaining findings stay untriaged rather than killing the
// campaign.
func (f *Fleet) runTriage(occupants []int) error {
	if f.triageIdx < 0 {
		return nil
	}
	te := f.engines[f.triageIdx]
	for _, b := range occupants {
		if b < 0 {
			continue
		}
		for _, item := range f.engines[b].DrainTriageQueue() {
			if prior, ok := f.triaged[item.Bug.Cluster]; ok {
				copyTriage(prior, item.Bug)
				continue
			}
			if f.triageDead {
				continue
			}
			f.active[f.triageIdx] = true
			if err := te.TriageBug(item.Bug, item.P); err != nil {
				if !errors.Is(err, core.ErrBoardDead) {
					return fmt.Errorf("fleet: triage board: %w", err)
				}
				f.triageDead = true
			}
			f.triaged[item.Bug.Cluster] = item.Bug
		}
	}
	return nil
}

// copyTriage copies a cached triage verdict onto a duplicate finding.
func copyTriage(from, to *core.BugReport) {
	to.Reproducibility = from.Reproducibility
	to.ReplayHits = from.ReplayHits
	to.Replays = from.Replays
	to.OrigCalls = from.OrigCalls
	to.MinCalls = from.MinCalls
	to.Repro = from.Repro
	to.Prog = from.Prog
}

// appendHistory accumulates a broadcast delta into the promotion history.
// ImportSyncDelta clones seed programs on import, so sharing the slices with
// the original broadcast is safe.
func (f *Fleet) appendHistory(d core.SyncDelta) {
	f.history.Edges = append(f.history.Edges, d.Edges...)
	f.history.Seeds = append(f.history.Seeds, d.Seeds...)
	f.history.Rewards = append(f.history.Rewards, d.Rewards...)
}

// flushJournal drains buffered events into the campaign journal in slot
// order: first each slot's retired boards (their streams end with the
// quarantine event), then the slot's current occupant. Supervision happens
// in slot order before the flush, so the merged stream is identical run to
// run.
func (f *Fleet) flushJournal() {
	if f.journal == nil {
		return
	}
	for slot := 0; slot < f.opts.Shards; slot++ {
		for _, b := range f.flushQueue[slot] {
			f.flushBuffer(b)
		}
		f.flushQueue[slot] = nil
		if b := f.slots[slot]; b >= 0 {
			f.flushBuffer(b)
		}
	}
	// The triage board's events (all produced at the barrier, after every
	// shard's slice) flush last.
	if f.triageIdx >= 0 {
		f.flushBuffer(f.triageIdx)
	}
}

func (f *Fleet) flushBuffer(b int) {
	for _, ev := range f.buffers[b].Drain() {
		f.journal.Emit(ev)
	}
}

// ShardReports returns each activated board's individual report from the
// finished campaign, in physical-board order (quarantined boards and
// promoted spares included), with fleet sync-barrier idle time already
// attributed (a board's SyncBarrier covers how much longer the pool ran
// than it did). Nil before Run completes.
func (f *Fleet) ShardReports() []*core.Report { return f.shardReports }

// mergeReport folds the activated boards' reports into one campaign report
// with stable ordering: stats summed in physical-board order, bugs
// deduplicated by cluster in (board, discovery) order, Duration = the
// longest board's virtual runtime (= the pool's wall-clock, since slots run
// concurrently). Board-time accounting: a board that finished early — or
// died early, or joined late as a spare — sat out the rest of the pool's
// wall-clock, so the gap to the pool Duration is charged to its SyncBarrier
// bucket; afterwards every activated board's TimeBy sums to the pool
// Duration and the merged TimeBy sums to activated-boards x Duration. The
// merged Health is the pool's sickest board; BoardHealth and Quarantines
// carry the full story.
func (f *Fleet) mergeReport(series []core.CoverSample) *core.Report {
	out := &core.Report{Series: series, Edges: f.shared.Total(), Quarantines: f.quarantines}
	seen := make(map[string]bool)
	f.shardReports = f.shardReports[:0]
	for b, e := range f.engines {
		if !f.active[b] {
			continue
		}
		r := e.Report()
		f.shardReports = append(f.shardReports, r)
		out.OS, out.Board = r.OS, r.Board
		out.Stats.Merge(r.Stats)
		out.BoardHealth = append(out.BoardHealth, r.Health)
		if len(f.shardReports) == 1 || healthWorse(r.Health, out.Health) {
			out.Health = r.Health
		}
		for _, bug := range r.Bugs {
			key := bug.Cluster
			if key == "" {
				key = bug.Sig
			}
			if !seen[key] {
				seen[key] = true
				out.Bugs = append(out.Bugs, bug)
			}
		}
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
	}
	for _, r := range f.shardReports {
		r.TimeBy.SyncBarrier += out.Duration - r.Duration
		out.TimeBy.Merge(r.TimeBy)
	}
	return out
}

// healthWorse reports whether a is in worse shape than b.
func healthWorse(a, b core.Health) bool {
	if a.Dead != b.Dead {
		return a.Dead
	}
	return a.Score < b.Score
}

// Close releases every board's debug link and core, spares included.
func (f *Fleet) Close() {
	for _, e := range f.engines {
		e.Close()
	}
}
