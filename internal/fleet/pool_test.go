package fleet

import (
	"testing"
	"time"
)

func TestBoardPoolLeaseRelease(t *testing.T) {
	p := NewBoardPool("stm32h745", 3)
	if p.Size() != 3 || p.Free() != 3 {
		t.Fatalf("fresh pool: size=%d free=%d", p.Size(), p.Free())
	}
	slots, err := p.Lease("job-a", "alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 1 {
		t.Fatalf("lease slots = %v, want lowest-first [0 1]", slots)
	}
	if p.Free() != 1 {
		t.Fatalf("free after lease = %d", p.Free())
	}
	// A job holds at most one lease; over-asking fails.
	if _, err := p.Lease("job-a", "alice", 1); err == nil {
		t.Fatal("double lease accepted")
	}
	if _, err := p.Lease("job-b", "bob", 2); err == nil {
		t.Fatal("over-capacity lease accepted")
	}
	p.Release("job-a", 20*time.Minute)
	if p.Free() != 3 {
		t.Fatalf("free after release = %d", p.Free())
	}
	if p.Busy() != 20*time.Minute {
		t.Fatalf("pool busy = %v", p.Busy())
	}
	snap := p.Snapshot()
	if snap[0].Busy != 10*time.Minute || snap[1].Busy != 10*time.Minute || snap[0].Leases != 1 {
		t.Fatalf("slot accounting: %+v", snap[:2])
	}
	if snap[0].Name != "stm32h745-00" || snap[0].JobID != "" {
		t.Fatalf("slot 0: %+v", snap[0])
	}
	// Idempotent: releasing a job with no lease changes nothing.
	p.Release("job-a", time.Hour)
	if p.Busy() != 20*time.Minute {
		t.Fatalf("phantom release charged: %v", p.Busy())
	}
}

func TestBoardPoolTenantVisibility(t *testing.T) {
	p := NewBoardPool("esp32c3", 2)
	if _, err := p.Lease("j1", "alice", 1); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	if snap[0].JobID != "j1" || snap[0].Tenant != "alice" {
		t.Fatalf("lease not visible: %+v", snap[0])
	}
	if snap[1].JobID != "" {
		t.Fatalf("free slot dirty: %+v", snap[1])
	}
}
