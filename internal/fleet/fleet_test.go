package fleet

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
)

// fleetConfig builds a fast campaign config for tests.
func fleetConfig(t *testing.T, osName string, seed int64) core.Config {
	t.Helper()
	info, err := targets.ByName(osName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(info, boards.STM32H745())
	cfg.Seed = seed
	cfg.SampleEvery = time.Minute
	return cfg
}

// runFleet runs one fleet campaign and returns the merged report.
func runFleet(t *testing.T, cfg core.Config, opts Options, total time.Duration) *core.Report {
	t.Helper()
	f, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(total)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFleetMergedCoverage(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 11)
	opts := Options{Shards: 3, SyncEvery: 2 * time.Minute}
	rep := runFleet(t, cfg, opts, 12*time.Minute)

	if rep.Stats.Execs < 30 {
		t.Fatalf("too few execs across the pool: %+v", rep.Stats)
	}
	if rep.Edges < 100 {
		t.Fatalf("too little merged coverage: %d edges", rep.Edges)
	}
	// Each shard got 4 virtual minutes, so the pool's wall-clock must be
	// about that — not the 12-minute total board time.
	if rep.Duration > 6*time.Minute {
		t.Fatalf("merged Duration %v should be pool wall-clock (~4m), not total board time", rep.Duration)
	}
	if len(rep.Series) == 0 {
		t.Fatal("no fleet coverage series")
	}
	last := rep.Series[len(rep.Series)-1]
	if last.Edges != rep.Edges {
		t.Fatalf("series end %d != merged edges %d", last.Edges, rep.Edges)
	}
	t.Logf("fleet: %d execs, %d edges, duration %v, linkops %d",
		rep.Stats.Execs, rep.Edges, rep.Duration, rep.Stats.LinkOps)
}

func TestFleetDeterministic(t *testing.T) {
	run := func() *core.Report {
		cfg := fleetConfig(t, "rtthread", 42)
		return runFleet(t, cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute}, 18*time.Minute)
	}
	a, b := run(), run()
	if a.Edges != b.Edges {
		t.Fatalf("edges differ across identical runs: %d vs %d", a.Edges, b.Edges)
	}
	if a.Stats.Execs != b.Stats.Execs || a.Stats.Restores != b.Stats.Restores ||
		a.Stats.LinkOps != b.Stats.LinkOps {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.RestoreReasons() != b.Stats.RestoreReasons() {
		t.Fatalf("restore reasons differ: %s vs %s", a.Stats.RestoreReasons(), b.Stats.RestoreReasons())
	}
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatalf("bug counts differ: %d vs %d", len(a.Bugs), len(b.Bugs))
	}
	for i := range a.Bugs {
		if a.Bugs[i].Sig != b.Bugs[i].Sig {
			t.Fatalf("bug %d ordering differs: %s vs %s", i, a.Bugs[i].Sig, b.Bugs[i].Sig)
		}
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series point %d differs: %+v vs %+v", i, a.Series[i], b.Series[i])
		}
	}
}

func TestFleetThroughputScalesWithShards(t *testing.T) {
	total := 16 * time.Minute
	solo := runFleet(t, fleetConfig(t, "freertos", 5), Options{Shards: 1}, total)
	pool := runFleet(t, fleetConfig(t, "freertos", 5), Options{Shards: 4, SyncEvery: 2 * time.Minute}, total)

	soloRate := float64(solo.Edges) / solo.Duration.Seconds()
	poolRate := float64(pool.Edges) / pool.Duration.Seconds()
	t.Logf("solo: %d edges / %v = %.2f edges/s; pool: %d edges / %v = %.2f edges/s",
		solo.Edges, solo.Duration, soloRate, pool.Edges, pool.Duration, poolRate)
	if poolRate < 1.8*soloRate {
		t.Fatalf("4-shard pool rate %.2f < 1.8x solo rate %.2f", poolRate, soloRate)
	}
}

func TestFleetSharesSeedsAcrossShards(t *testing.T) {
	// With sync barriers, a shard's corpus should contain imported sibling
	// seeds; verify indirectly: the merged edge count with sharing enabled
	// must be at least each shard's own final count (union property), and
	// the shared collector must match the merged report.
	cfg := fleetConfig(t, "zephyr", 9)
	f, err := New(cfg, Options{Shards: 2, SyncEvery: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(8 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != f.SharedEdges() {
		t.Fatalf("merged edges %d != shared collector %d", rep.Edges, f.SharedEdges())
	}
	for i, e := range f.Engines() {
		if own := e.Coverage(); own > rep.Edges {
			t.Fatalf("shard %d coverage %d exceeds merged %d", i, own, rep.Edges)
		}
	}
}

func TestFleetVectoredLinkCutsRoundTrips(t *testing.T) {
	total := 8 * time.Minute
	vec := runFleet(t, fleetConfig(t, "freertos", 3), Options{Shards: 2, SyncEvery: 2 * time.Minute}, total)

	cfgLegacy := fleetConfig(t, "freertos", 3)
	cfgLegacy.LegacyLink = true
	leg := runFleet(t, cfgLegacy, Options{Shards: 2, SyncEvery: 2 * time.Minute}, total)

	vecOps := float64(vec.Stats.LinkOps) / float64(vec.Stats.Execs)
	legOps := float64(leg.Stats.LinkOps) / float64(leg.Stats.Execs)
	t.Logf("vectored: %.2f ops/exec, legacy: %.2f ops/exec", vecOps, legOps)
	if vecOps >= legOps {
		t.Fatalf("vectored link did not reduce round trips: %.2f >= %.2f", vecOps, legOps)
	}
	// The drain saves 2 round trips and the coalesced write+continue saves
	// 1, so demand most of those 3 ops/exec back — not a rounding artifact.
	if vecOps > legOps-1.5 {
		t.Fatalf("vectored link saving too small: %.2f vs %.2f ops/exec", vecOps, legOps)
	}
}

func TestFleetSurvivesLinkFaults(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 21)
	cfg.LinkFaults = link.Profile(0.05, 0) // zero seed: each shard uses its own
	rep := runFleet(t, cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute}, 12*time.Minute)

	if rep.Stats.ExecFailures != 0 {
		t.Fatalf("link faults leaked into exec failures: %+v", rep.Stats)
	}
	if rep.Stats.LinkRetries == 0 {
		t.Fatalf("5%% fault rate across 3 shards caused no retries: %+v", rep.Stats)
	}
	if rep.Stats.Execs < 30 || rep.Edges < 100 {
		t.Fatalf("faulty fleet barely fuzzed: %d execs, %d edges", rep.Stats.Execs, rep.Edges)
	}
	t.Logf("faulty fleet: %d execs, %d edges, %d retries, %d reconnects",
		rep.Stats.Execs, rep.Edges, rep.Stats.LinkRetries, rep.Stats.LinkReconnects)
}

func TestFleetTimeAccounting(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 11)
	f, err := New(cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(12 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	shardReps := f.ShardReports()
	if len(shardReps) != 3 {
		t.Fatalf("ShardReports returned %d reports, want 3", len(shardReps))
	}
	// With barrier idle time attributed, every shard's budget sums to the
	// pool's wall-clock Duration exactly.
	for i, sr := range shardReps {
		if sr.TimeBy.Sum() != rep.Duration {
			t.Fatalf("shard %d TimeBy sums to %v, want pool Duration %v (%s)",
				i, sr.TimeBy.Sum(), rep.Duration, sr.TimeBy)
		}
	}
	// And the merged budget is total board time: Shards x Duration.
	if want := rep.Duration * 3; rep.TimeBy.Sum() != want {
		t.Fatalf("merged TimeBy sums to %v, want %v (3 x %v)", rep.TimeBy.Sum(), want, rep.Duration)
	}
	t.Logf("pool time accounting: %s", rep.TimeBy)
}

func TestFleetJournalDeterministic(t *testing.T) {
	run := func() []trace.Event {
		cfg := fleetConfig(t, "rtthread", 42)
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		runFleet(t, cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute}, 18*time.Minute)
		return buf.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("fleet journal empty")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journal event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestFleetTriage checks the dedicated-board pipeline: shards defer their
// findings, the barrier drains them onto the extra triage board, every merged
// finding carries a verdict, cross-shard duplicates collapse by cluster, and
// the accounting invariant extends to the extra board.
func TestFleetTriage(t *testing.T) {
	cfg := fleetConfig(t, "rtthread", 1234)
	cfg.Triage.Enabled = true
	f, err := New(cfg, Options{Shards: 2, SyncEvery: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(40 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Fatalf("no bugs found across the pool: %+v", rep.Stats)
	}
	if rep.Stats.TriagedBugs == 0 || rep.Stats.TriageReplays == 0 {
		t.Fatalf("triage board never worked: %+v", rep.Stats)
	}
	if rep.TimeBy.Triaging <= 0 {
		t.Fatalf("no board time charged to triaging: %v", rep.TimeBy)
	}
	seen := make(map[string]bool)
	for _, b := range rep.Bugs {
		if b.Cluster == "" || b.Reproducibility == "" {
			t.Errorf("merged bug %q missing triage verdict (%q/%q)", b.Sig, b.Cluster, b.Reproducibility)
		}
		if seen[b.Cluster] {
			t.Errorf("cluster %s appears twice in the merged report", b.Cluster)
		}
		seen[b.Cluster] = true
	}
	// 2 shards plus the triage board were activated, and every activated
	// board's budget sums to the pool's wall-clock.
	srs := f.ShardReports()
	if len(srs) != 3 {
		t.Fatalf("ShardReports returned %d reports, want 2 shards + triage board", len(srs))
	}
	for i, sr := range srs {
		if sr.TimeBy.Sum() != rep.Duration {
			t.Fatalf("board %d TimeBy sums to %v, want pool Duration %v (%s)",
				i, sr.TimeBy.Sum(), rep.Duration, sr.TimeBy)
		}
	}
	if want := rep.Duration * time.Duration(len(srs)); rep.TimeBy.Sum() != want {
		t.Fatalf("merged TimeBy sums to %v, want %v (%d x %v)", rep.TimeBy.Sum(), want, len(srs), rep.Duration)
	}
	t.Logf("fleet triage: %d bugs, %d replays, %s", len(rep.Bugs), rep.Stats.TriageReplays, rep.TimeBy)
}

// TestFleetTriageDeterministic extends the journal-determinism guarantee to
// triage-enabled campaigns: two identical seeded runs must produce identical
// journals (triage events included) and identical reproducers.
func TestFleetTriageDeterministic(t *testing.T) {
	run := func() ([]trace.Event, *core.Report) {
		cfg := fleetConfig(t, "rtthread", 1234)
		cfg.Triage.Enabled = true
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		rep := runFleet(t, cfg, Options{Shards: 2, SyncEvery: 5 * time.Minute}, 40*time.Minute)
		return buf.Events(), rep
	}
	ea, ra := run()
	eb, rb := run()
	if len(ea) == 0 {
		t.Fatal("fleet journal empty")
	}
	if len(ea) != len(eb) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("journal event %d differs:\n%+v\n%+v", i, ea[i], eb[i])
		}
	}
	if len(ra.Bugs) != len(rb.Bugs) {
		t.Fatalf("bug counts differ: %d vs %d", len(ra.Bugs), len(rb.Bugs))
	}
	for i := range ra.Bugs {
		x, y := ra.Bugs[i], rb.Bugs[i]
		if x.Cluster != y.Cluster || x.Reproducibility != y.Reproducibility || x.Repro != y.Repro {
			t.Fatalf("bug %d triage outcome differs:\n%s %s\n%s %s", i, x.Cluster, x.Reproducibility, y.Cluster, y.Reproducibility)
		}
	}
}

func TestFleetJournalMergesInShardOrder(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 11)
	buf := trace.NewBuffer()
	cfg.TraceSink = buf
	runFleet(t, cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute}, 12*time.Minute)

	evs := buf.Events()
	if len(evs) == 0 {
		t.Fatal("fleet journal empty")
	}
	// The journal ends with each board's time-budget block, flushed in
	// physical-board order after the last barrier.
	tail := len(evs)
	for i, ev := range evs {
		if ev.Kind == trace.TimeBudget {
			tail = i
			break
		}
	}
	if tail == len(evs) {
		t.Fatal("no time-budget block at the end of the fleet journal")
	}
	lastShard := -1
	budgets := 0
	for i, ev := range evs[tail:] {
		if ev.Kind != trace.TimeBudget {
			t.Fatalf("event %d (%s) interleaved with the time-budget tail", tail+i, ev.Kind)
		}
		if ev.Shard < lastShard {
			t.Fatalf("time-budget block for shard %d after shard %d", ev.Shard, lastShard)
		}
		lastShard = ev.Shard
		if ev.Reason == "duration" {
			budgets++
		}
	}
	if budgets != 3 {
		t.Fatalf("time-budget duration records = %d, want one per shard", budgets)
	}
	// Before the budget tail, the journal is a sequence of epochs; within
	// each epoch, shard streams appear in shard order, each ending with that
	// shard's sync-epoch event.
	epochs := 0
	shard := 0
	for i, ev := range evs[:tail] {
		if ev.Shard != shard {
			t.Fatalf("event %d from shard %d, expected shard %d's stream (kind %s)",
				i, ev.Shard, shard, ev.Kind)
		}
		if ev.Kind == trace.SyncEpoch {
			if ev.Exec != epochs/3+1 {
				t.Fatalf("sync-epoch %d numbered %d, want %d", i, ev.Exec, epochs/3+1)
			}
			epochs++
			shard = (shard + 1) % 3
		}
	}
	if epochs == 0 {
		t.Fatal("no sync-epoch events in the fleet journal")
	}
	if epochs%3 != 0 {
		t.Fatalf("sync-epoch events (%d) not a multiple of the shard count", epochs)
	}
}

// TestFleetSnapshotJournalDeterministic extends the journal-determinism
// guarantee to snapshot-enabled campaigns: two identical seeded runs produce
// byte-identical journals, snapshot events included, and every shard's
// restores split exactly into delta + full.
func TestFleetSnapshotJournalDeterministic(t *testing.T) {
	run := func() ([]trace.Event, *core.Report) {
		cfg := fleetConfig(t, "rtthread", 42)
		cfg.Snapshots = true
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		rep := runFleet(t, cfg, Options{Shards: 3, SyncEvery: 2 * time.Minute}, 18*time.Minute)
		return buf.Events(), rep
	}
	ea, ra := run()
	eb, rb := run()
	if len(ea) == 0 {
		t.Fatal("fleet journal empty")
	}
	if len(ea) != len(eb) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("journal event %d differs:\n%+v\n%+v", i, ea[i], eb[i])
		}
	}
	snapTakes, deltaRestores := 0, 0
	for _, ev := range ea {
		switch ev.Kind {
		case trace.SnapshotTake:
			snapTakes++
		case trace.DeltaRestore:
			deltaRestores++
		}
	}
	if snapTakes != ra.Stats.SnapshotTakes {
		t.Fatalf("journal has %d snapshot-take events, merged report says %d", snapTakes, ra.Stats.SnapshotTakes)
	}
	if deltaRestores != ra.Stats.DeltaRestores {
		t.Fatalf("journal has %d delta-restore events, merged report says %d", deltaRestores, ra.Stats.DeltaRestores)
	}
	if ra.Stats.DeltaRestores+ra.Stats.FullRestores != ra.Stats.Restores {
		t.Fatalf("merged delta(%d)+full(%d) != restores(%d)",
			ra.Stats.DeltaRestores, ra.Stats.FullRestores, ra.Stats.Restores)
	}
	if got := ra.TimeBy.RestoringDelta + ra.TimeBy.RestoringFull; got != ra.TimeBy.Restoring {
		t.Fatalf("merged restore sub-buckets %v != Restoring %v", got, ra.TimeBy.Restoring)
	}
	if ra.Stats.DeltaRestores != rb.Stats.DeltaRestores || ra.Stats.SnapshotTakes != rb.Stats.SnapshotTakes {
		t.Fatalf("snapshot stats differ across identical runs: %+v vs %+v", ra.Stats, rb.Stats)
	}
	t.Logf("snapshot fleet: %d takes, %d delta / %d full restores",
		ra.Stats.SnapshotTakes, ra.Stats.DeltaRestores, ra.Stats.FullRestores)
}

// TestFleetSnapshotSparePromotion dooms one shard's board so a hot spare is
// promoted mid-campaign, and asserts the promoted board rebuilds its own
// snapshot cache: the campaign keeps delta-restoring after the failover and
// the journal shows snapshot-take events following the promotion.
func TestFleetSnapshotSparePromotion(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 11)
	cfg.Snapshots = true
	buf := trace.NewBuffer()
	cfg.TraceSink = buf
	rep := runFleet(t, cfg, Options{
		Shards:    2,
		Spares:    1,
		SyncEvery: 2 * time.Minute,
		// Board 0 dies on its first boot attempt; the spare takes its slot.
		Degrade: []board.DegradeConfig{{DieAfterBoots: 1, Seed: 1}},
	}, 12*time.Minute)

	if len(rep.Quarantines) == 0 {
		t.Fatalf("doomed board was never quarantined: %+v", rep.Stats)
	}
	if rep.Quarantines[0].Spare < 0 {
		t.Fatalf("no spare promoted into the dead slot: %+v", rep.Quarantines[0])
	}
	if rep.Stats.DeltaRestores == 0 {
		t.Fatalf("snapshot fleet with failover made no delta restores: %+v", rep.Stats)
	}
	// The promoted spare's stream must contain its own snapshot-take events:
	// every board that ever delta-restored snapshotted first.
	takesByShard := map[int]int{}
	promoted := false
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case trace.SparePromote:
			promoted = true
		case trace.SnapshotTake:
			takesByShard[ev.Shard]++
		}
	}
	if !promoted {
		t.Fatal("journal has no spare-promote event")
	}
	if len(takesByShard) < 2 {
		t.Fatalf("expected snapshot takes from both manned slots, got %v", takesByShard)
	}
	if rep.Stats.DeltaRestores+rep.Stats.FullRestores != rep.Stats.Restores {
		t.Fatalf("delta(%d)+full(%d) != restores(%d)",
			rep.Stats.DeltaRestores, rep.Stats.FullRestores, rep.Stats.Restores)
	}
}
