package fleet

import (
	"reflect"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/trace"
)

// tieredEvents partitions a merged journal for a tiered fleet: the emulation
// tier's exploration events (CorpusAdd / Bug emitted by shards at physical
// index >= emulStart) and the hardware tier's confirmation verdicts.
type tieredEvents struct {
	emulCorpusAdds int
	emulBugs       int
	confirms       int
	emulOnlyDiv    int // TierDiverge with an emul-only-* reason
	hwOnlyDiv      int // TierDiverge with an hw-only-crash reason
}

func splitTieredEvents(evs []trace.Event, emulStart int) tieredEvents {
	var out tieredEvents
	for _, ev := range evs {
		switch ev.Kind {
		case trace.CorpusAdd:
			if ev.Shard >= emulStart {
				out.emulCorpusAdds++
			}
		case trace.Bug:
			if ev.Shard >= emulStart {
				out.emulBugs++
			}
		case trace.TierConfirm:
			out.confirms++
		case trace.TierDiverge:
			if len(ev.Reason) >= 5 && ev.Reason[:5] == "emul-" {
				out.emulOnlyDiv++
			} else {
				out.hwOnlyDiv++
			}
		}
	}
	return out
}

// TestTieredFleetConfirmsEveryEmulationFinding is the acceptance property of
// tiered execution: a mixed fleet completes a campaign in which every
// corpus-admitted input and every crash the emulation tier found was either
// hardware-confirmed (TierConfirm) or recorded as a divergence (TierDiverge),
// and no emulation-tier finding reaches the merged bug list unconfirmed.
func TestTieredFleetConfirmsEveryEmulationFinding(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 7)
	buf := trace.NewBuffer()
	cfg.TraceSink = buf
	opts := Options{Shards: 2, SyncEvery: 2 * time.Minute, EmulShards: 2}
	f, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(8 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Tiers) != 2 {
		t.Fatalf("tiered report has %d tier entries, want 2", len(rep.Tiers))
	}
	hw, em := rep.Tiers[0], rep.Tiers[1]
	if hw.Class != backend.HW.String() || em.Class != backend.Emul.String() {
		t.Fatalf("tier classes %q/%q", hw.Class, em.Class)
	}
	if hw.Boards != 2 || em.Boards != 2 {
		t.Fatalf("tier boards hw=%d emul=%d, want 2/2", hw.Boards, em.Boards)
	}
	if em.Execs == 0 || hw.Execs == 0 {
		t.Fatalf("idle tier: hw=%d emul=%d execs", hw.Execs, em.Execs)
	}
	if hw.ConfirmReplays == 0 {
		t.Fatal("no confirmation replays ran")
	}
	if hw.TimeBy.Confirming == 0 {
		t.Fatal("confirmation replays charged no board time to the confirming bucket")
	}
	if em.TimeBy.Confirming != 0 {
		t.Fatalf("emulation tier billed confirming time: %v", em.TimeBy.Confirming)
	}

	ev := splitTieredEvents(buf.Events(), f.emulIdx[0])
	if ev.emulCorpusAdds == 0 {
		t.Fatal("emulation tier admitted nothing — campaign too short to exercise confirmation")
	}
	// One verdict per emulation finding: every emulation corpus admission
	// and crash drained into exactly one TierConfirm or one emul-only
	// TierDiverge (hw-only-crash divergences are extra observations layered
	// on a coverage replay, not verdicts on an emulation claim).
	findings := ev.emulCorpusAdds + ev.emulBugs
	verdicts := ev.confirms + ev.emulOnlyDiv
	if verdicts != findings {
		t.Fatalf("confirmation not exhaustive: %d emulation findings (%d cov + %d crash) vs %d verdicts (%d confirm + %d diverge)",
			findings, ev.emulCorpusAdds, ev.emulBugs, verdicts, ev.confirms, ev.emulOnlyDiv)
	}
	if hw.Confirmed+hw.Diverged != ev.confirms+ev.emulOnlyDiv+ev.hwOnlyDiv {
		t.Fatalf("tier stats (%d confirmed, %d diverged) disagree with journal (%d + %d + %d)",
			hw.Confirmed, hw.Diverged, ev.confirms, ev.emulOnlyDiv, ev.hwOnlyDiv)
	}
	if len(rep.Divergences) != hw.Diverged {
		t.Fatalf("%d divergence records vs %d diverged count", len(rep.Divergences), hw.Diverged)
	}
	for _, d := range rep.Divergences {
		switch d.Kind {
		case "emul-only-cov", "emul-only-crash", "hw-only-crash":
		default:
			t.Fatalf("unknown divergence kind %q", d.Kind)
		}
		if d.Prog == "" || d.Shard < f.emulIdx[0] {
			t.Fatalf("divergence missing provenance: %+v", d)
		}
	}
	for _, b := range rep.Bugs {
		if b.Tier == backend.Emul.String() {
			t.Fatalf("unconfirmed emulation bug %q on the merged report", b.Sig)
		}
	}
	t.Logf("tiered: hw %d execs / emul %d execs, %d replays, %d confirmed, %d diverged",
		hw.Execs, em.Execs, hw.ConfirmReplays, hw.Confirmed, hw.Diverged)
}

// TestTieredFleetThroughput asserts the point of the emulation tier: at equal
// shard counts the explore tier completes far more test cases per board than
// the hardware pool does.
func TestTieredFleetThroughput(t *testing.T) {
	cfg := fleetConfig(t, "rtthread", 21)
	rep := runFleet(t, cfg, Options{Shards: 2, SyncEvery: 2 * time.Minute, EmulShards: 2}, 8*time.Minute)
	if len(rep.Tiers) != 2 {
		t.Fatalf("tier entries: %d", len(rep.Tiers))
	}
	hw, em := rep.Tiers[0], rep.Tiers[1]
	if em.Execs < 5*hw.Execs {
		t.Fatalf("emulation tier too slow: %d emul execs vs %d hw execs (want >= 5x at equal width)",
			em.Execs, hw.Execs)
	}
	if em.Edges == 0 {
		t.Fatal("emulation tier found no coverage")
	}
}

// TestTieredFleetDeterministic runs the same tiered campaign twice and
// requires identical journals and tier stats: the confirmation replays,
// round-robin cursor and barrier ordering are all deterministic.
func TestTieredFleetDeterministic(t *testing.T) {
	run := func() ([]trace.Event, *tieredRunStats) {
		cfg := fleetConfig(t, "freertos", 33)
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		f, err := New(cfg, Options{Shards: 2, SyncEvery: 2 * time.Minute, EmulShards: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep, err := f.Run(8 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Events(), &tieredRunStats{
			execs: rep.Stats.Execs, edges: rep.Edges,
			tiers: rep.Tiers, divergences: len(rep.Divergences),
		}
	}
	aEvs, a := run()
	bEvs, b := run()
	if len(aEvs) != len(bEvs) {
		t.Fatalf("journal lengths differ: %d vs %d", len(aEvs), len(bEvs))
	}
	for i := range aEvs {
		if aEvs[i] != bEvs[i] {
			t.Fatalf("journal diverges at %d:\n%+v\n%+v", i, aEvs[i], bEvs[i])
		}
	}
	if a.execs != b.execs || a.edges != b.edges || a.divergences != b.divergences {
		t.Fatalf("reports diverge: %+v vs %+v", a, b)
	}
	for i := range a.tiers {
		if !reflect.DeepEqual(a.tiers[i], b.tiers[i]) {
			t.Fatalf("tier %d stats diverge:\n%+v\n%+v", i, a.tiers[i], b.tiers[i])
		}
	}
}

type tieredRunStats struct {
	execs       int
	edges       int
	tiers       []core.TierStats
	divergences int
}

// TestTiersOffIsByteIdentical asserts the default-off promise of the
// backend refactor and the tier machinery: an untiered fleet campaign —
// whether it leaves Config.Backend nil or names backend.Hardware()
// explicitly — journals exactly as it did before backends and tiers
// existed: same events, no confirmation time, no tier stats.
func TestTiersOffIsByteIdentical(t *testing.T) {
	run := func(explicit bool) ([]trace.Event, *core.Report) {
		cfg := fleetConfig(t, "freertos", 42)
		if explicit {
			cfg.Backend = backend.Hardware()
		}
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		f, err := New(cfg, Options{Shards: 2, SyncEvery: 2 * time.Minute, EmulShards: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep, err := f.Run(8 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Events(), rep
	}
	nilEvs, nilRep := run(false)
	expEvs, expRep := run(true)
	if len(nilEvs) != len(expEvs) {
		t.Fatalf("explicit hardware backend changed the journal: %d vs %d events", len(nilEvs), len(expEvs))
	}
	for i := range nilEvs {
		if nilEvs[i] != expEvs[i] {
			t.Fatalf("journal diverges at %d:\n%+v\n%+v", i, nilEvs[i], expEvs[i])
		}
		switch nilEvs[i].Kind {
		case trace.TierConfirm, trace.TierDiverge:
			t.Fatalf("tier event in an untiered journal: %+v", nilEvs[i])
		}
	}
	if nilRep.Stats.Execs != expRep.Stats.Execs || nilRep.Edges != expRep.Edges {
		t.Fatalf("reports diverge: %d/%d execs, %d/%d edges",
			nilRep.Stats.Execs, expRep.Stats.Execs, nilRep.Edges, expRep.Edges)
	}
	for _, rep := range []*core.Report{nilRep, expRep} {
		if rep.Tiers != nil || rep.Divergences != nil {
			t.Fatalf("untiered report carries tier fields: %+v %+v", rep.Tiers, rep.Divergences)
		}
		if rep.Stats.ConfirmReplays != 0 || rep.TimeBy.Confirming != 0 {
			t.Fatalf("untiered report billed confirmation: %d replays, %v",
				rep.Stats.ConfirmReplays, rep.TimeBy.Confirming)
		}
	}
}
