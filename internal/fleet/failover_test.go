package fleet

import (
	"errors"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/trace"
)

// TestFleetSurvivesBoardDeath is the resilience acceptance test: a 4-shard
// campaign where one board dies permanently partway through must complete,
// promote the hot spare into the vacated slot, report the quarantine in the
// merged report, and retain most of the healthy fleet's throughput.
func TestFleetSurvivesBoardDeath(t *testing.T) {
	total := 24 * time.Minute
	doomed := Options{
		Shards: 4, Spares: 1, SyncEvery: 2 * time.Minute,
		// Board 2 dies permanently on its fourth boot attempt — a few
		// restores into the campaign.
		Degrade: []board.DegradeConfig{2: {DieAfterBoots: 4}},
	}
	rep := runFleet(t, fleetConfig(t, "freertos", 11), doomed, total)

	if len(rep.Quarantines) != 1 {
		t.Fatalf("quarantines: %+v, want exactly one", rep.Quarantines)
	}
	q := rep.Quarantines[0]
	if q.Slot != 2 || q.Board != 2 || q.Reason != "dead" {
		t.Fatalf("quarantine record: %+v", q)
	}
	if q.Spare != 4 {
		t.Fatalf("spare board 4 not promoted: %+v", q)
	}
	if q.At <= 0 {
		t.Fatalf("board died at setup, not mid-campaign: %+v", q)
	}
	if !q.Health.Dead {
		t.Fatalf("quarantined board's health not dead: %+v", q.Health)
	}
	// All five boards were activated: four shards plus the promoted spare.
	if len(rep.BoardHealth) != 5 {
		t.Fatalf("BoardHealth has %d entries, want 5: %+v", len(rep.BoardHealth), rep.BoardHealth)
	}
	if !rep.BoardHealth[2].Dead || rep.BoardHealth[4].Dead {
		t.Fatalf("per-board health wrong: %+v", rep.BoardHealth)
	}
	if !rep.Health.Dead {
		t.Fatalf("merged health should surface the pool's sickest board: %+v", rep.Health)
	}

	// Throughput: the doomed fleet must retain at least 70% of the healthy
	// fleet's coverage rate — one board of four dying costs at most its
	// unmanned fraction of one epoch plus the spare's catch-up.
	healthy := runFleet(t, fleetConfig(t, "freertos", 11),
		Options{Shards: 4, Spares: 1, SyncEvery: 2 * time.Minute}, total)
	if len(healthy.Quarantines) != 0 {
		t.Fatalf("healthy fleet quarantined boards: %+v", healthy.Quarantines)
	}
	doomedRate := float64(rep.Edges) / rep.Duration.Seconds()
	healthyRate := float64(healthy.Edges) / healthy.Duration.Seconds()
	t.Logf("doomed: %d edges (%.2f/s), healthy: %d edges (%.2f/s), retained %.0f%%",
		rep.Edges, doomedRate, healthy.Edges, healthyRate, 100*doomedRate/healthyRate)
	if doomedRate < 0.7*healthyRate {
		t.Fatalf("doomed fleet retained only %.0f%% of healthy throughput (%.2f vs %.2f edges/s)",
			100*doomedRate/healthyRate, doomedRate, healthyRate)
	}
}

// TestFleetFailoverJournalDeterministic re-runs the death scenario twice and
// demands byte-identical journals: quarantine and promotion must happen at
// the same barrier with the same event stream for a fixed seed.
func TestFleetFailoverJournalDeterministic(t *testing.T) {
	run := func() []trace.Event {
		cfg := fleetConfig(t, "freertos", 11)
		buf := trace.NewBuffer()
		cfg.TraceSink = buf
		runFleet(t, cfg, Options{
			Shards: 4, Spares: 1, SyncEvery: 2 * time.Minute,
			Degrade: []board.DegradeConfig{2: {DieAfterBoots: 4}},
		}, 24*time.Minute)
		return buf.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("failover journal empty")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journal event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// The stream must carry the supervision story: the dead board's
	// quarantine (emitted on its own tracer) and the spare's promotion.
	var sawQuarantine, sawPromote bool
	for _, ev := range a {
		switch ev.Kind {
		case trace.Quarantine:
			if ev.Shard != 2 || ev.Exec != 2 || ev.Reason != "dead" {
				t.Fatalf("quarantine event: %+v", ev)
			}
			sawQuarantine = true
		case trace.SparePromote:
			if ev.Shard != 4 || ev.Exec != 2 {
				t.Fatalf("spare-promote event: %+v", ev)
			}
			sawPromote = true
		}
	}
	if !sawQuarantine || !sawPromote {
		t.Fatalf("journal missing supervision events: quarantine=%v promote=%v",
			sawQuarantine, sawPromote)
	}
}

// TestFleetQuarantineWithoutSpares: with an empty spare pool a dead board's
// slot goes unmanned, the quarantine records Spare -1, and the remaining
// shards finish the campaign.
func TestFleetQuarantineWithoutSpares(t *testing.T) {
	opts := Options{
		Shards: 3, SyncEvery: 2 * time.Minute,
		Degrade: []board.DegradeConfig{1: {DieAfterBoots: 4}},
	}
	f, err := New(fleetConfig(t, "freertos", 11), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := f.Run(12 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantines) != 1 {
		t.Fatalf("quarantines: %+v", rep.Quarantines)
	}
	q := rep.Quarantines[0]
	if q.Slot != 1 || q.Spare != -1 || q.Reason != "dead" {
		t.Fatalf("quarantine without spares: %+v", q)
	}
	if len(rep.BoardHealth) != 3 {
		t.Fatalf("BoardHealth entries: %d, want 3", len(rep.BoardHealth))
	}
	if rep.Stats.Execs == 0 || rep.Edges == 0 {
		t.Fatalf("surviving shards did not fuzz: %+v", rep.Stats)
	}
}

// TestFleetAllBoardsDeadFails: when every board (spares included) dies, Run
// must fail with core.ErrBoardDead instead of spinning on an empty pool.
func TestFleetAllBoardsDeadFails(t *testing.T) {
	cfg := fleetConfig(t, "freertos", 11)
	cfg.Degrade = board.DegradeConfig{DieAfterBoots: 1} // every board dies at setup
	f, err := New(cfg, Options{Shards: 2, Spares: 1, SyncEvery: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Run(8 * time.Minute)
	if !errors.Is(err, core.ErrBoardDead) {
		t.Fatalf("all-dead fleet: %v", err)
	}
	// Every board earned a quarantine record; none could be replaced.
	if got := len(f.Quarantines()); got != 3 {
		t.Fatalf("quarantine records: %d, want 3", got)
	}
}
