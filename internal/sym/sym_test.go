package sym

import "testing"

func TestAllocationAndLookup(t *testing.T) {
	tab := NewTable(0x0800_1000)
	f1 := tab.AddFunc("alpha", "a.c", 10, 4)
	f2 := tab.AddFunc("beta", "b.c", 20, 2)
	if f1.Base != 0x0800_1000 {
		t.Fatalf("f1 base %#x", f1.Base)
	}
	if f2.Base != f1.End() {
		t.Fatalf("f2 not adjacent: %#x vs %#x", f2.Base, f1.End())
	}
	if tab.Lookup("alpha") != f1 || tab.Lookup("nope") != nil {
		t.Fatal("Lookup")
	}
	if tab.Addr("beta") != f2.Base {
		t.Fatal("Addr")
	}
	if tab.TotalBlocks() != 6 {
		t.Fatalf("total blocks %d", tab.TotalBlocks())
	}
	if got := tab.Extent(); got != f2.End() {
		t.Fatalf("extent %#x", got)
	}
}

func TestFindAndLocate(t *testing.T) {
	tab := NewTable(0x1000)
	f1 := tab.AddFunc("alpha", "a.c", 10, 4)
	tab.AddFunc("beta", "b.c", 20, 2)
	if got := tab.Find(f1.Block(2)); got != f1 {
		t.Fatalf("Find mid-function: %v", got)
	}
	if tab.Find(0x0FFF) != nil {
		t.Fatal("Find before table")
	}
	if tab.Find(tab.Extent()) != nil {
		t.Fatal("Find past table")
	}
	if got := tab.Locate(f1.Base); got != "alpha" {
		t.Fatalf("Locate entry: %q", got)
	}
	if got := tab.Locate(f1.Block(3)); got != "alpha+0xc" {
		t.Fatalf("Locate offset: %q", got)
	}
	if got := tab.Locate(0x50); got != "0x50" {
		t.Fatalf("Locate unknown: %q", got)
	}
}

func TestBlockBounds(t *testing.T) {
	tab := NewTable(0x1000)
	f := tab.AddFunc("f", "f.c", 1, 3)
	if f.Block(0) != f.Base || f.Block(2) != f.Base+2*BlockStride {
		t.Fatal("block addressing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block did not panic")
		}
	}()
	f.Block(3)
}

func TestDuplicatePanics(t *testing.T) {
	tab := NewTable(0x1000)
	tab.AddFunc("x", "x.c", 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate symbol accepted")
		}
	}()
	tab.AddFunc("x", "x.c", 2, 1)
}

func TestUnknownAddrPanics(t *testing.T) {
	tab := NewTable(0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown Addr did not panic")
		}
	}()
	tab.Addr("ghost")
}
