// Package sym maintains the firmware symbol table: function names, source
// locations and the flash addresses of their basic blocks. The host uses it
// to plant exception-monitor breakpoints by name and to render the
// Figure-6-style backtraces in crash reports.
package sym

import (
	"fmt"
	"sort"
)

// BlockStride is the byte spacing between consecutive basic-block addresses
// within a function ("instruction" granularity of the simulated ISA).
const BlockStride = 4

// Func is one firmware function: a contiguous run of basic blocks.
type Func struct {
	Name    string
	File    string
	Line    int // line of the function definition
	Base    uint64
	NBlocks int
}

// End returns the first address past the function.
func (f *Func) End() uint64 { return f.Base + uint64(f.NBlocks*BlockStride) }

// Block returns the address of basic block i (0-based).
func (f *Func) Block(i int) uint64 {
	if i < 0 || i >= f.NBlocks {
		panic(fmt.Sprintf("sym: block %d out of range for %s (%d blocks)", i, f.Name, f.NBlocks))
	}
	return f.Base + uint64(i*BlockStride)
}

// Table is the symbol table for one firmware image.
type Table struct {
	byName map[string]*Func
	funcs  []*Func // sorted by Base
	next   uint64  // bump allocator for AddFunc
}

// NewTable creates a table whose address allocator starts at base.
func NewTable(base uint64) *Table {
	return &Table{byName: make(map[string]*Func), next: base}
}

// AddFunc registers a function with nblocks basic blocks at the next free
// address and returns it. Names must be unique within an image.
func (t *Table) AddFunc(name, file string, line, nblocks int) *Func {
	if nblocks <= 0 {
		panic(fmt.Sprintf("sym: function %s with %d blocks", name, nblocks))
	}
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("sym: duplicate symbol %s", name))
	}
	f := &Func{Name: name, File: file, Line: line, Base: t.next, NBlocks: nblocks}
	t.next = f.End()
	t.byName[name] = f
	t.funcs = append(t.funcs, f)
	return f
}

// Lookup returns the named function, or nil.
func (t *Table) Lookup(name string) *Func {
	return t.byName[name]
}

// Addr returns the entry address of the named function; it panics on unknown
// names because monitor configuration errors must fail loudly at setup.
func (t *Table) Addr(name string) uint64 {
	f := t.byName[name]
	if f == nil {
		panic(fmt.Sprintf("sym: unknown symbol %s", name))
	}
	return f.Base
}

// Find returns the function containing addr, or nil.
func (t *Table) Find(addr uint64) *Func {
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].End() > addr })
	if i < len(t.funcs) && addr >= t.funcs[i].Base {
		return t.funcs[i]
	}
	return nil
}

// Locate renders addr as "func+off" for logs, or a hex literal if unknown.
func (t *Table) Locate(addr uint64) string {
	if f := t.Find(addr); f != nil {
		if off := addr - f.Base; off != 0 {
			return fmt.Sprintf("%s+%#x", f.Name, off)
		}
		return f.Name
	}
	return fmt.Sprintf("%#x", addr)
}

// Funcs returns all functions in address order (shared slice; do not mutate).
func (t *Table) Funcs() []*Func { return t.funcs }

// TotalBlocks returns the number of basic blocks across all functions — the
// denominator for coverage percentages and the basis of image code size.
func (t *Table) TotalBlocks() int {
	n := 0
	for _, f := range t.funcs {
		n += f.NBlocks
	}
	return n
}

// Extent returns the highest allocated address.
func (t *Table) Extent() uint64 { return t.next }
