package boards

import "testing"

func TestCatalogue(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("boards: %d", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate board %s", s.Name)
		}
		seen[s.Name] = true
		if s.HZ == 0 || s.FlashSize == 0 || s.RAMSize == 0 || s.CovEntries == 0 {
			t.Errorf("%s: incomplete spec %+v", s.Name, s)
		}
		if s.FlashSize%s.SectorSize != 0 {
			t.Errorf("%s: flash not sector aligned", s.Name)
		}
		if got := ByName(s.Name); got == nil || got.Name != s.Name {
			t.Errorf("ByName(%s) = %v", s.Name, got)
		}
	}
	if ByName("z80") != nil {
		t.Fatal("unknown board resolved")
	}
}

func TestHardwareVsEmulatedCapabilities(t *testing.T) {
	if QEMUVirt().HasPeripheral("dma") || QEMUVirt().HasPeripheral("socket") {
		t.Fatal("emulated board models hardware-only peripherals")
	}
	if !STM32H745().HasPeripheral("dma") || !ESP32C3().HasPeripheral("dma") {
		t.Fatal("hardware boards missing the DMA block")
	}
	// Both hardware boards have a network stack (ESP32 radio, STM32
	// Ethernet MAC); the emulated board has neither.
	if !ESP32C3().HasPeripheral("socket") || !STM32H745().HasPeripheral("socket") {
		t.Fatal("hardware boards missing the network stack")
	}
	if !QEMUVirt().Emulated || STM32H745().Emulated {
		t.Fatal("Emulated flags wrong")
	}
	// The IoT-class board has fewer breakpoint comparators than the
	// industrial controller — GDBFuzz-style probe rotation depends on this.
	if ESP32C3().MaxBreakpoints >= STM32H745().MaxBreakpoints {
		t.Fatal("breakpoint budgets not differentiated")
	}
	if QEMUVirtRISCV().Arch != "riscv" || QEMUVirt().Arch != "arm" {
		t.Fatal("emulated arches wrong")
	}
}
