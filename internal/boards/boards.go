// Package boards catalogues the development-board models the evaluation
// runs on: the STM32H745 controller the paper's motivation names (no
// peripheral-accurate emulator exists for it), an ESP32-C3-class RISC-V
// board, and the QEMU-virt emulated board that Tardis/Gustave-style tools
// require. Differences that matter to fuzzing are modelled: breakpoint
// comparator counts, clock rates, and which peripherals exist.
package boards

import "github.com/eof-fuzz/eof/internal/board"

// Board names.
const (
	NameSTM32H745 = "stm32h745"
	NameESP32C3   = "esp32c3"
	NameQEMUVirt  = "qemu-virt"
	NameQEMURISCV = "qemu-rv32"
)

// STM32H745 is the Cortex-M7-class industrial controller: fast, 8 hardware
// breakpoints, CAN and serial, no wireless, no usable emulator.
func STM32H745() *board.Spec {
	return &board.Spec{
		Name:           NameSTM32H745,
		Arch:           "arm",
		HZ:             480_000_000,
		CyclesPerBlock: 6,
		InstrCycles:    2,
		MaxBreakpoints: 8,
		FlashBase:      0x0800_0000,
		FlashSize:      8 * 1024 * 1024,
		SectorSize:     4096,
		RAMBase:        0x2400_0000,
		RAMSize:        1024 * 1024,
		CovEntries:     4096,
		Peripherals: map[string]bool{
			"serial": true, "gpio": true, "can": true, "adc": true, "dma": true, "socket": true,
		},
	}
}

// ESP32C3 is the RISC-V IoT-class board: slower clock, few breakpoint
// comparators, wireless radio present.
func ESP32C3() *board.Spec {
	return &board.Spec{
		Name:           NameESP32C3,
		Arch:           "riscv",
		HZ:             160_000_000,
		CyclesPerBlock: 6,
		InstrCycles:    2,
		MaxBreakpoints: 4,
		FlashBase:      0x4200_0000,
		FlashSize:      8 * 1024 * 1024,
		SectorSize:     4096,
		RAMBase:        0x3FC8_0000,
		RAMSize:        512 * 1024,
		CovEntries:     4096,
		Peripherals: map[string]bool{
			"serial": true, "gpio": true, "wifi": true, "socket": true, "dma": true,
		},
	}
}

// QEMUVirt is the emulated board Tardis/Gustave-class tools run on:
// effectively unlimited breakpoints and fast control, but only the
// peripherals QEMU models (a serial port) — hardware-only peripherals and
// their code paths are unreachable.
func QEMUVirt() *board.Spec {
	return &board.Spec{
		Name:           NameQEMUVirt,
		Arch:           "arm",
		HZ:             200_000_000,
		CyclesPerBlock: 6,
		InstrCycles:    2,
		MaxBreakpoints: 32,
		FlashBase:      0x0000_0000,
		FlashSize:      8 * 1024 * 1024,
		SectorSize:     4096,
		RAMBase:        0x4000_0000,
		RAMSize:        1024 * 1024,
		CovEntries:     4096,
		Emulated:       true,
		Peripherals: map[string]bool{
			"serial": true,
		},
	}
}

// QEMUVirtRISCV is the RISC-V flavour of the emulated board.
func QEMUVirtRISCV() *board.Spec {
	s := QEMUVirt()
	s.Name = NameQEMURISCV
	s.Arch = "riscv"
	return s
}

// ByName resolves a board spec by its catalogue name, or nil.
func ByName(name string) *board.Spec {
	switch name {
	case NameSTM32H745:
		return STM32H745()
	case NameESP32C3:
		return ESP32C3()
	case NameQEMUVirt:
		return QEMUVirt()
	case NameQEMURISCV:
		return QEMUVirtRISCV()
	default:
		return nil
	}
}

// All returns every catalogued board.
func All() []*board.Spec {
	return []*board.Spec{STM32H745(), ESP32C3(), QEMUVirt(), QEMUVirtRISCV()}
}
