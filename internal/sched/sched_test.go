package sched

import (
	"fmt"
	"testing"
	"time"
)

// sim drives a Scheduler the way the daemon's runner does, against a
// virtual clock: every running job consumes one quantum of board time per
// tick, then Yields at the barrier. Nothing here sleeps or reads a real
// clock, so the fairness numbers are exact and deterministic.
type sim struct {
	t       *testing.T
	s       *Scheduler
	q       time.Duration
	running []string
	// transitions records every observed state change of running jobs so
	// tests can assert preemption happened only at barriers.
	now time.Duration
}

func newSim(t *testing.T, boards int, quantum time.Duration) *sim {
	return &sim{t: t, s: New(boards), q: quantum}
}

// tick runs one barrier round: each running job consumes quantum×boards
// board-seconds, yields, and freed boards are rescheduled.
func (m *sim) tick() {
	m.now += m.q
	var keep []string
	for _, id := range m.running {
		j, ok := m.s.Get(id)
		if !ok {
			m.t.Fatalf("running job %q vanished", id)
		}
		used := m.q * time.Duration(j.Boards)
		d, err := m.s.Yield(id, used)
		if err != nil {
			m.t.Fatalf("yield %q: %v", id, err)
		}
		if d == Continue {
			keep = append(keep, id)
		}
	}
	m.running = keep
	for _, j := range m.s.Schedule() {
		m.running = append(m.running, j.ID)
	}
}

func (m *sim) submit(id, tenant string, weight int, budget time.Duration) {
	m.t.Helper()
	if _, err := m.s.Submit(Spec{ID: id, Tenant: tenant, Weight: weight, Boards: 1, Budget: budget}); err != nil {
		m.t.Fatalf("submit %q: %v", id, err)
	}
}

func usageOf(s *Scheduler, tenant string) time.Duration {
	for _, u := range s.Usage() {
		if u.Tenant == tenant {
			return u.Used
		}
	}
	return 0
}

// TestFairShareConvergence is the headline quota test: two tenants with
// 3:1 weights contending for one board must converge to a 3:1±5% split of
// board-seconds.
func TestFairShareConvergence(t *testing.T) {
	m := newSim(t, 1, 10*time.Minute)
	m.submit("a1", "alice", 3, 1000*time.Hour)
	m.submit("b1", "bob", 1, 1000*time.Hour)
	for _, j := range m.s.Schedule() {
		m.running = append(m.running, j.ID)
	}
	for i := 0; i < 400; i++ {
		m.tick()
	}
	a, b := usageOf(m.s, "alice"), usageOf(m.s, "bob")
	if a == 0 || b == 0 {
		t.Fatalf("a tenant starved: alice=%v bob=%v", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 3*0.95 || ratio > 3*1.05 {
		t.Fatalf("board-time ratio %.3f outside 3:1±5%% (alice=%v bob=%v)", ratio, a, b)
	}
	// The whole pool was busy the whole time: charges sum to the pool
	// wall clock.
	if got, want := a+b, m.now; got != want {
		t.Fatalf("usage sum %v != pool wall clock %v", got, want)
	}
}

// TestFairShareManyWeights checks convergence for a less convenient
// weight vector on a wider pool.
func TestFairShareManyWeights(t *testing.T) {
	m := newSim(t, 2, 5*time.Minute)
	weights := map[string]int{"w5": 5, "w2": 2, "w1": 1}
	for tenant, w := range weights {
		for i := 0; i < 2; i++ {
			m.submit(fmt.Sprintf("%s-%d", tenant, i), tenant, w, 1000*time.Hour)
		}
	}
	for _, j := range m.s.Schedule() {
		m.running = append(m.running, j.ID)
	}
	for i := 0; i < 800; i++ {
		m.tick()
	}
	total := time.Duration(0)
	for _, u := range m.s.Usage() {
		total += u.Used
	}
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	for tenant, w := range weights {
		got := float64(usageOf(m.s, tenant)) / float64(total)
		want := float64(w) / float64(wsum)
		if got < want*0.95 || got > want*1.05 {
			t.Fatalf("tenant %s share %.4f outside %.4f±5%%", tenant, got, want)
		}
	}
}

// TestPreemptOnlyAtBarriers asserts the structural guarantee: a Preempt
// (or a fair-share imbalance) never moves a Running job until its next
// Yield — the epoch barrier.
func TestPreemptOnlyAtBarriers(t *testing.T) {
	s := New(1)
	if _, err := s.Submit(Spec{ID: "a", Tenant: "alice", Budget: time.Hour}); err != nil {
		t.Fatal(err)
	}
	started := s.Schedule()
	if len(started) != 1 || started[0].ID != "a" {
		t.Fatalf("schedule = %+v, want [a]", started)
	}
	// A starving waiter appears and an explicit preempt lands mid-slice...
	if _, err := s.Submit(Spec{ID: "b", Tenant: "bob", Budget: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := s.Preempt("a"); err != nil {
		t.Fatal(err)
	}
	// ...but between barriers the job keeps running and holds its board.
	if j, _ := s.Get("a"); j.State != Running {
		t.Fatalf("mid-slice state = %s, want running", j.State)
	}
	if got := s.Free(); got != 0 {
		t.Fatalf("free boards mid-slice = %d, want 0", got)
	}
	if got := s.Schedule(); len(got) != 0 {
		t.Fatalf("schedule started %+v with no free boards", got)
	}
	// The barrier is where the preemption takes effect.
	d, err := s.Yield("a", 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d != Requeue {
		t.Fatalf("yield = %v, want requeue", d)
	}
	j, _ := s.Get("a")
	if j.State != Queued || j.Preempts != 1 {
		t.Fatalf("post-barrier job = %+v, want queued with 1 preempt", j)
	}
	if next := s.Schedule(); len(next) != 1 || next[0].ID != "b" {
		t.Fatalf("schedule after requeue = %+v, want [b]", next)
	}
}

// TestNoStarvationUnderSaturatingSubmits floods the scheduler with new
// jobs from a heavy tenant every tick; the light tenant's single job must
// still receive board time promptly and its long-run share must not fall
// below its weight fraction.
func TestNoStarvationUnderSaturatingSubmits(t *testing.T) {
	m := newSim(t, 2, 10*time.Minute)
	m.submit("light", "small", 1, 1000*time.Hour)
	firstServed := time.Duration(-1)
	for i := 0; i < 300; i++ {
		// The saturating loop: two fresh heavy jobs per tick, forever.
		m.submit(fmt.Sprintf("h%d-a", i), "big", 10, 1000*time.Hour)
		m.submit(fmt.Sprintf("h%d-b", i), "big", 10, 1000*time.Hour)
		m.tick()
		if firstServed < 0 && usageOf(m.s, "small") > 0 {
			firstServed = m.now
		}
	}
	if firstServed < 0 {
		t.Fatalf("light tenant starved for the whole run")
	}
	if firstServed > 30*time.Minute {
		t.Fatalf("light tenant first served at %v, want within 3 ticks", firstServed)
	}
	small, big := usageOf(m.s, "small"), usageOf(m.s, "big")
	share := float64(small) / float64(small+big)
	if want := 1.0 / 11.0; share < want*0.90 {
		t.Fatalf("light tenant share %.4f below weight fraction %.4f", share, want)
	}
}

// TestCancelSemantics covers the queued/running/terminal cancel paths and
// DELETE idempotency.
func TestCancelSemantics(t *testing.T) {
	s := New(1)
	for _, id := range []string{"a", "b"} {
		if _, err := s.Submit(Spec{ID: id, Tenant: "t", Budget: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	s.Schedule() // a running, b queued
	if running, err := s.Cancel("b"); err != nil || running {
		t.Fatalf("cancel queued = (%v, %v), want immediate", running, err)
	}
	if j, _ := s.Get("b"); j.State != Canceled {
		t.Fatalf("queued cancel state = %s", j.State)
	}
	if running, err := s.Cancel("a"); err != nil || !running {
		t.Fatalf("cancel running = (%v, %v), want running=true", running, err)
	}
	// Mid-slice the job still holds its board; the barrier stops it.
	if j, _ := s.Get("a"); j.State != Running {
		t.Fatalf("mid-slice cancel state = %s", j.State)
	}
	if d, err := s.Yield("a", time.Minute); err != nil || d != Stop {
		t.Fatalf("yield after cancel = (%v, %v), want stop", d, err)
	}
	if j, _ := s.Get("a"); j.State != Canceled {
		t.Fatalf("post-barrier cancel state = %s", j.State)
	}
	if got := s.Free(); got != 1 {
		t.Fatalf("free after cancel = %d, want 1", got)
	}
	// Idempotent: canceling a terminal job is a quiet no-op.
	for i := 0; i < 2; i++ {
		if running, err := s.Cancel("a"); err != nil || running {
			t.Fatalf("re-cancel = (%v, %v), want no-op", running, err)
		}
	}
}

// TestChargeRestoresFairnessAcrossRestart replays a persisted usage
// ledger into a fresh scheduler and checks the next grant goes to the
// tenant the ledger says is owed.
func TestChargeRestoresFairnessAcrossRestart(t *testing.T) {
	s := New(1)
	// The "crashed daemon" had charged alice far past her share.
	s.Charge("alice", 10*time.Hour)
	s.Charge("bob", time.Hour)
	if _, err := s.Submit(Spec{ID: "a2", Tenant: "alice", Budget: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{ID: "b2", Tenant: "bob", Budget: time.Hour}); err != nil {
		t.Fatal(err)
	}
	started := s.Schedule()
	if len(started) != 1 || started[0].ID != "b2" {
		t.Fatalf("post-restart grant = %+v, want bob first", started)
	}
}

// TestSubmitValidation rejects the specs the HTTP layer must 4xx on.
func TestSubmitValidation(t *testing.T) {
	s := New(2)
	cases := []Spec{
		{ID: "", Tenant: "t", Budget: time.Hour},
		{ID: "x", Tenant: "", Budget: time.Hour},
		{ID: "x", Tenant: "t", Budget: 0},
		{ID: "x", Tenant: "t", Budget: time.Hour, Boards: 3}, // wider than pool
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("case %d: submit %+v succeeded, want error", i, spec)
		}
	}
	if _, err := s.Submit(Spec{ID: "ok", Tenant: "t", Budget: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{ID: "ok", Tenant: "t", Budget: time.Hour}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

// TestFinishTransitions retires jobs through the done and failed paths
// and verifies boards return to the pool.
func TestFinishTransitions(t *testing.T) {
	s := New(2)
	for _, id := range []string{"a", "b"} {
		if _, err := s.Submit(Spec{ID: id, Tenant: "t", Budget: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	s.Schedule()
	if err := s.Finish("a", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish("b", "boom"); err != nil {
		t.Fatal(err)
	}
	ja, _ := s.Get("a")
	jb, _ := s.Get("b")
	if ja.State != Done || jb.State != Failed || jb.Err != "boom" {
		t.Fatalf("states = %s/%s err=%q", ja.State, jb.State, jb.Err)
	}
	if got := s.Free(); got != 2 {
		t.Fatalf("free = %d, want 2", got)
	}
	if err := s.Finish("a", ""); err == nil {
		t.Fatal("double finish accepted")
	}
}
