// Package sched is the daemon's job scheduler: it multiplexes many
// campaigns from many tenants over one shared board pool with per-tenant
// fair-share board-time quotas.
//
// The scheduler is a pure deterministic state machine. It never reads a
// clock and never starts a goroutine; the daemon's runner drives it by
// calling Schedule to start queued jobs, charging consumed board-seconds
// with Yield at every epoch barrier, and Finish/Cancel at terminal
// transitions. Fairness is stride scheduling over normalized usage: every
// tenant accumulates the board-seconds its jobs consume (the same
// `Report.TimeBy` accounting the reports print), and the queued job whose
// tenant has the lowest usage/weight ratio starts first. A running job is
// asked to requeue — only ever at a Yield, i.e. an epoch barrier — when a
// queued tenant has fallen further below its share, so long-run board time
// converges to the configured weight ratio and no tenant starves.
//
// Preemption is cooperative and barrier-aligned by construction: the only
// transition out of Running is a Yield/Cancel/Finish call from the runner,
// which the daemon makes exclusively between campaign epochs (the PR 9
// RequestStop/checkpoint path). Preempt merely marks the job; the mark
// takes effect at the next barrier.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	// Queued jobs wait for boards; Running jobs hold them. Done, Failed
	// and Canceled are terminal.
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// Decision is the scheduler's answer to a Yield: keep the boards and run
// another slice, requeue (release the boards to a needier tenant and
// reschedule later via the resume path), or stop (a cancel landed
// mid-slice).
type Decision int

const (
	Continue Decision = iota
	Requeue
	Stop
)

func (d Decision) String() string {
	switch d {
	case Continue:
		return "continue"
	case Requeue:
		return "requeue"
	case Stop:
		return "stop"
	}
	return fmt.Sprintf("sched.Decision(%d)", int(d))
}

// Job is one schedulable campaign.
type Job struct {
	ID     string
	Tenant string
	// Weight is the tenant's fair-share weight (higher = larger share).
	Weight int
	// Boards is how many pool boards the job occupies while running.
	Boards int
	// Budget is the total board-time ask; Used is the board-seconds
	// consumed so far (charged at Yield); Remaining is their difference.
	Budget time.Duration
	Used   time.Duration
	State  State
	// Seq is the submit ordinal — the deterministic tiebreak.
	Seq int
	// Slices counts scheduling grants; Preempts counts barrier requeues
	// (explicit or fair-share).
	Slices   int
	Preempts int
	// Err records the failure reason for Failed jobs.
	Err string

	preempt bool // explicit preempt requested; applied at next Yield
	cancel  bool // cancel requested while running; applied at next Yield
}

// Remaining is the board-time budget the job has left.
func (j *Job) Remaining() time.Duration {
	if j.Used >= j.Budget {
		return 0
	}
	return j.Budget - j.Used
}

// Scheduler multiplexes jobs over a fixed board pool.
type Scheduler struct {
	mu     sync.Mutex
	boards int
	free   int
	seq    int
	jobs   map[string]*Job
	order  []string // submit order
	// usage is the per-tenant consumed board-seconds; weight the
	// per-tenant fair-share weight (the tenant's most recent submit wins).
	usage  map[string]time.Duration
	weight map[string]int
}

// New builds a scheduler over a pool of the given size.
func New(boards int) *Scheduler {
	if boards < 1 {
		boards = 1
	}
	return &Scheduler{
		boards: boards,
		free:   boards,
		jobs:   make(map[string]*Job),
		usage:  make(map[string]time.Duration),
		weight: make(map[string]int),
	}
}

// Boards returns the pool size; Free the boards not currently leased.
func (s *Scheduler) Boards() int { return s.boards }

// Free returns the number of unleased boards.
func (s *Scheduler) Free() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free
}

// Spec describes one job submission.
type Spec struct {
	ID     string
	Tenant string
	// Weight is the tenant's fair-share weight (default 1).
	Weight int
	// Boards is the job's pool footprint (default 1). A job wider than
	// the whole pool is rejected — it could never start.
	Boards int
	// Budget is the total board-time ask.
	Budget time.Duration
}

// Submit enqueues a job. It does not start it — call Schedule.
func (s *Scheduler) Submit(spec Spec) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.ID == "" {
		return Job{}, fmt.Errorf("sched: empty job ID")
	}
	if _, dup := s.jobs[spec.ID]; dup {
		return Job{}, fmt.Errorf("sched: duplicate job ID %q", spec.ID)
	}
	if spec.Tenant == "" {
		return Job{}, fmt.Errorf("sched: empty tenant")
	}
	if spec.Weight < 1 {
		spec.Weight = 1
	}
	if spec.Boards < 1 {
		spec.Boards = 1
	}
	if spec.Boards > s.boards {
		return Job{}, fmt.Errorf("sched: job wants %d boards, pool has %d", spec.Boards, s.boards)
	}
	if spec.Budget <= 0 {
		return Job{}, fmt.Errorf("sched: non-positive budget %v", spec.Budget)
	}
	s.seq++
	j := &Job{
		ID: spec.ID, Tenant: spec.Tenant, Weight: spec.Weight,
		Boards: spec.Boards, Budget: spec.Budget,
		State: Queued, Seq: s.seq,
	}
	s.jobs[spec.ID] = j
	s.order = append(s.order, spec.ID)
	s.weight[spec.Tenant] = spec.Weight
	if _, ok := s.usage[spec.Tenant]; !ok {
		s.usage[spec.Tenant] = 0
	}
	return *j, nil
}

// normUsage is the tenant's stride-scheduling pass value: consumed
// board-nanoseconds divided by weight. Lower = further below its share.
func (s *Scheduler) normUsage(tenant string) float64 {
	w := s.weight[tenant]
	if w < 1 {
		w = 1
	}
	return float64(s.usage[tenant]) / float64(w)
}

// pickLocked returns the queued job that should start next — lowest
// normalized tenant usage, submit order as the deterministic tiebreak —
// or nil when nothing queued fits the free boards.
func (s *Scheduler) pickLocked() *Job {
	var pick *Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != Queued || j.Boards > s.free {
			continue
		}
		if pick == nil || s.normUsage(j.Tenant) < s.normUsage(pick.Tenant) {
			pick = j
		}
	}
	return pick
}

// Schedule starts as many queued jobs as the free boards allow, fairest
// tenant first, and returns the started jobs in grant order.
func (s *Scheduler) Schedule() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var started []Job
	for {
		j := s.pickLocked()
		if j == nil {
			return started
		}
		j.State = Running
		j.Slices++
		s.free -= j.Boards
		started = append(started, *j)
	}
}

// Yield is the epoch-barrier call: the runner charges the board-seconds
// the finished slice consumed and asks whether to keep the boards. The
// charge lands on the tenant's usage either way. Requeue is returned when
// a queued job is waiting whose tenant sits strictly further below its
// fair share (or the job was explicitly preempted); Stop when a cancel
// landed mid-slice. On Requeue/Stop the job's boards are released and the
// job transitions to Queued/Canceled; the runner must not start another
// slice.
func (s *Scheduler) Yield(id string, used time.Duration) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Stop, fmt.Errorf("sched: unknown job %q", id)
	}
	if j.State != Running {
		return Stop, fmt.Errorf("sched: yield on %s job %q", j.State, id)
	}
	if used > 0 {
		j.Used += used
		s.usage[j.Tenant] += used
	}
	if j.cancel {
		j.cancel, j.preempt = false, false
		j.State = Canceled
		s.free += j.Boards
		return Stop, nil
	}
	if j.preempt || s.starvedWaiterLocked(j) {
		j.preempt = false
		j.State = Queued
		j.Preempts++
		s.free += j.Boards
		return Requeue, nil
	}
	return Continue, nil
}

// starvedWaiterLocked reports whether a queued job exists whose tenant's
// normalized usage is strictly below the running job's tenant — the
// fair-share condition under which the running job gives up its boards at
// this barrier. Queued work from the same tenant never preempts: it can
// wait its own turn without moving the tenant's share.
func (s *Scheduler) starvedWaiterLocked(run *Job) bool {
	runU := s.normUsage(run.Tenant)
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != Queued || j.Tenant == run.Tenant {
			continue
		}
		// Only waiters that could actually use the released boards count:
		// a job wider than the running job's boards plus the current free
		// pool would stay stuck anyway.
		if j.Boards > s.free+run.Boards {
			continue
		}
		if s.normUsage(j.Tenant) < runU {
			return true
		}
	}
	return false
}

// Preempt marks a running job to requeue at its next barrier. Queued and
// terminal jobs are left untouched (preempting them is meaningless, not an
// error — the call is idempotent).
func (s *Scheduler) Preempt(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("sched: unknown job %q", id)
	}
	if j.State == Running {
		j.preempt = true
	}
	return nil
}

// Cancel requests a job's termination. A queued job cancels immediately;
// a running job is marked and stops at its next barrier (the returned
// flag tells the runner to interrupt the in-flight slice). Canceling a
// terminal job is a no-op, so DELETE is idempotent.
func (s *Scheduler) Cancel(id string) (running bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return false, fmt.Errorf("sched: unknown job %q", id)
	}
	switch j.State {
	case Queued:
		j.State = Canceled
		return false, nil
	case Running:
		j.cancel = true
		return true, nil
	default:
		return false, nil
	}
}

// Finish retires a running job: errMsg == "" marks it Done, anything else
// Failed. The job's boards return to the pool.
func (s *Scheduler) Finish(id string, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("sched: unknown job %q", id)
	}
	if j.State != Running {
		return fmt.Errorf("sched: finish on %s job %q", j.State, id)
	}
	s.free += j.Boards
	if errMsg != "" {
		j.State = Failed
		j.Err = errMsg
	} else {
		j.State = Done
	}
	return nil
}

// Charge adds already-consumed board-seconds to a tenant's usage without
// touching any job — the restart-adoption path, where a rebuilt scheduler
// inherits the usage ledger the crashed daemon had persisted so fairness
// survives the restart.
func (s *Scheduler) Charge(tenant string, used time.Duration) {
	if tenant == "" || used <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.usage[tenant] += used
}

// Get returns a copy of the job.
func (s *Scheduler) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns copies of every job in submit order.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Usage returns the per-tenant consumed board-seconds ledger, tenants
// sorted for deterministic iteration.
func (s *Scheduler) Usage() []TenantUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantUsage, 0, len(s.usage))
	for t, u := range s.usage {
		w := s.weight[t]
		if w < 1 {
			w = 1
		}
		out = append(out, TenantUsage{Tenant: t, Weight: w, Used: u})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant < out[b].Tenant })
	return out
}

// TenantUsage is one tenant's fair-share ledger entry.
type TenantUsage struct {
	Tenant string
	Weight int
	Used   time.Duration
}
