package board

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWearFailsThenRecovers(t *testing.T) {
	b := provisioned(t, false)
	b.SetDegrade(DegradeConfig{WearLimit: 1, WearFailStreak: 2, Seed: 1})
	sz := b.Spec.SectorSize
	// Work in a region the provisioning step never touched, so the sectors
	// start with a zero erase count.
	off := 0x80000

	// First erase: the sector is within its cycle budget.
	if err := b.FlashErase(off, sz); err != nil {
		t.Fatalf("fresh sector erase: %v", err)
	}
	// The sector is now at its wear limit: the next WearFailStreak
	// operations fail...
	for i := 0; i < 2; i++ {
		err := b.FlashErase(off, sz)
		if err == nil || !strings.Contains(err.Error(), "worn") {
			t.Fatalf("worn erase %d: %v", i, err)
		}
	}
	// ...and then the marginal cells recover.
	if err := b.FlashErase(off, sz); err != nil {
		t.Fatalf("erase after recovery: %v", err)
	}
	// Wear is per sector: a different sector is unaffected.
	if err := b.FlashErase(off+sz, sz); err != nil {
		t.Fatalf("unworn sector erase: %v", err)
	}
}

func TestWornSectorTearsProgram(t *testing.T) {
	b := provisioned(t, false)
	sz := b.Spec.SectorSize
	// Wear out sector 1 (the middle of a three-sector write).
	if err := b.FlashErase(0, 3*sz); err != nil {
		t.Fatal(err)
	}
	b.SetDegrade(DegradeConfig{WearLimit: 1, Seed: 1})
	data := make([]byte, 3*sz)
	for i := range data {
		data[i] = 0xAB
	}
	err := b.FlashProgram(0, data)
	if err == nil || !strings.Contains(err.Error(), "worn") {
		t.Fatalf("program across worn sector: %v", err)
	}
	// Sector 0 is the only one that wore out first in iteration order...
	// actually all three are at the limit; the failure hits sector 0, so no
	// bytes land. Retry: sector 0 recovered (streak 1 served), sector 1
	// fails next, and the first sector's bytes land — a torn image.
	err = b.FlashProgram(0, data)
	if err == nil {
		t.Fatal("second program across worn range succeeded")
	}
	got, rerr := b.Flash().Read(0, sz)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if got[0] != 0xAB || got[sz-1] != 0xAB {
		t.Fatal("torn program left no prefix bytes")
	}
}

func TestDieAfterBootsIsPermanent(t *testing.T) {
	b := provisioned(t, false)
	b.SetDegrade(DegradeConfig{DieAfterBoots: 2, Seed: 1})
	if err := b.Boot(); err != nil {
		t.Fatalf("first boot: %v", err)
	}
	err := b.Reset() // boot attempt 2: the board dies
	if !errors.Is(err, ErrDead) {
		t.Fatalf("second boot: %v", err)
	}
	if b.State() != Dead {
		t.Fatalf("state: %v", b.State())
	}
	// No operation resurrects a dead board.
	if err := b.Reset(); !errors.Is(err, ErrDead) {
		t.Fatalf("reset on dead board: %v", err)
	}
	if err := b.PowerCycle(); !errors.Is(err, ErrDead) {
		t.Fatalf("power-cycle on dead board: %v", err)
	}
	if err := b.FlashErase(0, b.Spec.SectorSize); !errors.Is(err, ErrDead) {
		t.Fatalf("flash erase on dead board: %v", err)
	}
	if err := b.FlashProgram(0, []byte{1}); !errors.Is(err, ErrDead) {
		t.Fatalf("flash program on dead board: %v", err)
	}
	if err := b.Provision("kernel", []byte{1}); !errors.Is(err, ErrDead) {
		t.Fatalf("provision on dead board: %v", err)
	}
	if b.State() != Dead {
		t.Fatalf("state after recovery attempts: %v", b.State())
	}
}

func TestTransientBootFailureStaysOff(t *testing.T) {
	b := provisioned(t, false)
	b.SetDegrade(DegradeConfig{BootFailRate: 0.7, Seed: 3})
	failures, booted := 0, false
	for i := 0; i < 50; i++ {
		err := b.Boot()
		if err == nil {
			booted = true
			break
		}
		if errors.Is(err, ErrDead) {
			t.Fatalf("transient-only config killed the board: %v", err)
		}
		if b.State() != Off {
			t.Fatalf("state after transient failure: %v", b.State())
		}
		failures++
	}
	if !booted {
		t.Fatal("board never booted in 50 attempts at rate 0.7")
	}
	if failures == 0 {
		t.Fatal("rate-0.7 config produced no transient failure before success")
	}
	b.Core().Kill()
}

func TestPowerCycleCostsMoreThanReset(t *testing.T) {
	b := provisioned(t, false)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	t0 := b.Clock.Now()
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	resetCost := b.Clock.Now() - t0

	t1 := b.Clock.Now()
	if err := b.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	cycleCost := b.Clock.Now() - t1
	if cycleCost <= resetCost {
		t.Fatalf("power cycle (%v) not more expensive than reset (%v)", cycleCost, resetCost)
	}
	if cycleCost-resetCost != 750*time.Millisecond {
		t.Fatalf("power-cycle settle delay: got %v extra", cycleCost-resetCost)
	}
	b.Core().Kill()
}

func TestDegradeDeterministic(t *testing.T) {
	outcomes := func() []bool {
		b := provisioned(t, false)
		b.SetDegrade(DegradeConfig{BootFailRate: 0.5, DeathRate: 0.02, Seed: 9})
		var out []bool
		for i := 0; i < 30; i++ {
			err := b.Boot()
			out = append(out, err == nil)
			if errors.Is(err, ErrDead) {
				break
			}
		}
		if b.State() == On {
			b.Core().Kill()
		}
		return out
	}
	a, c := outcomes(), outcomes()
	if len(a) != len(c) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("boot %d diverged: %v vs %v", i, a[i], c[i])
		}
	}
}
