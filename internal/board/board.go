// Package board assembles the virtual development board: flash, RAM, UART,
// CPU core and the firmware boot path. A Board outlives reboots — flash
// contents (including corruption left behind by kernel bugs) persist until
// the host reflashes partitions over the debug link, which is exactly the
// failure/recovery surface the paper's state-restoration module targets.
package board

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/mem"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/uart"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// RAM layout offsets (from RAMBase). Fixed across boards so the host tooling
// can locate the shared structures from the image header alone.
const (
	FSBOffset     = 0x40  // fault status block
	FSBSize       = 0x2C0 // 704 bytes for fault record + frames
	CovOffset     = 0x300 // coverage buffer header
	MailboxAlign  = 0x100
	MailboxInSize = 16 * 1024
	MailboxOutLen = 256
)

// State is the board's coarse power/liveness state.
type State int

// Board states.
const (
	Off State = iota
	On
	Bricked // boot failed: image invalid until reflashed
	Dead    // permanent hardware death: no recovery rung brings it back
)

func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case On:
		return "on"
	case Bricked:
		return "bricked"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Spec describes a board model.
type Spec struct {
	Name string // e.g. "stm32h745"
	Arch string // "arm", "riscv", "xtensa"

	HZ             uint64
	CyclesPerBlock uint64
	InstrCycles    uint64
	MaxBreakpoints int

	FlashBase  uint64
	FlashSize  int
	SectorSize int

	RAMBase uint64
	RAMSize int

	CovEntries int

	// Emulated marks QEMU-style boards; peripheral-dependent APIs behave
	// differently there (the Tardis/Gustave comparison hinges on this).
	Emulated bool
	// IdleWarp divides the wall-clock cost of idle waits (kernel tick
	// periods): a fuzzing emulator fast-forwards virtual timers instead of
	// idling in host wall-clock, so sleeps and timeouts resolve IdleWarp
	// times faster than on hardware. 0 or 1 leaves time unwarped.
	IdleWarp uint64
	// Peripherals lists hardware blocks present on this board.
	Peripherals map[string]bool

	// Flash timing for restoration-cost modelling.
	EraseSectorTime vtime.CycleModel // unused; kept simple below
}

// HasPeripheral reports whether the board provides the named block.
func (s *Spec) HasPeripheral(name string) bool { return s.Peripherals[name] }

// CPUConfig derives the cpu package configuration.
func (s *Spec) CPUConfig() cpu.Config {
	return cpu.Config{
		Model:          vtime.CycleModel{HZ: s.HZ},
		CyclesPerBlock: s.CyclesPerBlock,
		InstrCycles:    s.InstrCycles,
		MaxBreakpoints: s.MaxBreakpoints,
	}
}

// Layout gives the addresses of the shared host/target RAM structures for a
// board spec. Boot derives the live environment from it, and the host derives
// mailbox/FSB/coverage addresses without asking the target.
type Layout struct {
	FSB        uint64
	Cov        uint64
	CovBytes   int
	MailboxIn  uint64
	MailboxOut uint64
	Scratch    uint64
}

// LayoutFor computes the RAM layout for spec.
func LayoutFor(spec *Spec) Layout {
	covAddr := spec.RAMBase + CovOffset
	covBytes := cov.BufferBytes(spec.CovEntries)
	covEnd := covAddr + uint64(covBytes)
	mboxIn := (covEnd + MailboxAlign - 1) &^ (MailboxAlign - 1)
	mboxOut := mboxIn + MailboxInSize
	scratch := (mboxOut + MailboxOutLen + MailboxAlign - 1) &^ (MailboxAlign - 1)
	return Layout{
		FSB:        spec.RAMBase + FSBOffset,
		Cov:        covAddr,
		CovBytes:   covBytes,
		MailboxIn:  mboxIn,
		MailboxOut: mboxOut,
		Scratch:    scratch,
	}
}

// Env is everything a firmware builder needs to construct the OS + agent.
type Env struct {
	Spec         *Spec
	Clock        *vtime.Clock
	Core         *cpu.Core
	Mem          *mem.Map
	RAM          *mem.Region
	UART         *uart.UART
	Flash        *flash.Device
	Cov          *cov.Runtime // nil when the image is not instrumented
	Instrumented bool
	Syms         *sym.Table
	BuildID      uint64

	// Shared-structure addresses.
	FSBAddr     uint64
	CovAddr     uint64
	MailboxIn   uint64
	MailboxOut  uint64
	ScratchBase uint64 // first RAM address free for the kernel
}

// Firmware is a built OS + agent image; Main runs on the target goroutine.
type Firmware interface {
	Main()
}

// Builder constructs firmware from a booted environment. It corresponds to
// linking the OS, agent and instrumentation into one image.
type Builder func(env *Env) (Firmware, error)

// BootError reports a failed boot with the partition that failed validation.
type BootError struct {
	Partition string
	Err       error
}

func (e *BootError) Error() string {
	return fmt.Sprintf("boot: partition %q invalid: %v", e.Partition, e.Err)
}

// Board is one virtual development board.
type Board struct {
	Spec  *Spec
	Clock *vtime.Clock

	flashDev *flash.Device
	table    *flash.Table
	builder  Builder

	memmap *mem.Map
	core   *cpu.Core
	uartd  *uart.UART
	env    *Env
	fw     Firmware

	state     State
	bootCount int
	lastBoot  error

	snap    *snapshot // cached golden state for delta restore, nil until Snapshot
	degrade *degrader // nil = perfect board
}

// New creates a powered-off board with erased flash.
func New(spec *Spec, table *flash.Table, builder Builder, clock *vtime.Clock) (*Board, error) {
	dev := flash.NewDevice(spec.FlashSize, spec.SectorSize)
	if err := table.Validate(dev); err != nil {
		return nil, err
	}
	return &Board{
		Spec:     spec,
		Clock:    clock,
		flashDev: dev,
		table:    table,
		builder:  builder,
		uartd:    uart.New(clock),
		state:    Off,
	}, nil
}

// SetDegrade installs the degradation model. Call before the first boot; a
// config with no modes enabled leaves the board perfect.
func (b *Board) SetDegrade(cfg DegradeConfig) {
	if !cfg.Enabled() {
		b.degrade = nil
		return
	}
	b.degrade = newDegrader(cfg)
}

// Flash returns the flash device (persistent across reboots).
func (b *Board) Flash() *flash.Device { return b.flashDev }

// PartitionTable returns the board's partition table.
func (b *Board) PartitionTable() *flash.Table { return b.table }

// UART returns the serial console capture.
func (b *Board) UART() *uart.UART { return b.uartd }

// State returns the board's power/liveness state.
func (b *Board) State() State { return b.state }

// BootCount returns how many successful boots have occurred.
func (b *Board) BootCount() int { return b.bootCount }

// LastBootError returns the most recent boot failure, if any.
func (b *Board) LastBootError() error { return b.lastBoot }

// Core returns the live CPU core, or nil when the board is off/bricked.
func (b *Board) Core() *cpu.Core {
	if b.state != On {
		return nil
	}
	return b.core
}

// Mem returns the live memory map, or nil when the board is off/bricked.
func (b *Board) Mem() *mem.Map {
	if b.state != On {
		return nil
	}
	return b.memmap
}

// Env returns the live firmware environment, or nil when not booted.
func (b *Board) Env() *Env {
	if b.state != On {
		return nil
	}
	return b.env
}

// Provision factory-programs a partition image, bypassing the debug link.
func (b *Board) Provision(part string, data []byte) error {
	if b.state == Dead {
		return fmt.Errorf("board: provision: %w", ErrDead)
	}
	p := b.table.Lookup(part)
	if p == nil {
		return fmt.Errorf("board: no partition %q", part)
	}
	if len(data) > p.Size {
		return fmt.Errorf("board: image %d bytes exceeds partition %q (%d bytes)", len(data), part, p.Size)
	}
	return b.flashDev.WriteImage(p.Offset, data)
}

// Virtual time consumed by boots. A power cycle pays an extra settle delay on
// top of the boot: discharging the rails and re-enumerating the probe is far
// slower than a warm reset, which is why it is the recovery ladder's last
// resort before declaring the board dead.
const (
	bootDelay       = 280 * time.Millisecond
	powerCycleDelay = 750 * time.Millisecond
)

// Boot powers the board on: validates flash images, rebuilds firmware state
// and starts the core halted at the firmware entry. On image validation
// failure the board ends up Bricked and the error is returned. With a
// degradation model installed the attempt may also fail transiently (board
// stays Off) or kill the board for good (ErrDead).
func (b *Board) Boot() error { return b.boot(false) }

// PowerCycle fully powers the board down, waits for the rails to settle and
// cold-boots. Functionally a Reset, but it costs more virtual time and its
// cold start clears marginal conditions a warm reset cannot (the degradation
// model halves the transient boot-failure rate for cold boots).
func (b *Board) PowerCycle() error {
	if b.state == Dead {
		return fmt.Errorf("board: power-cycle: %w", ErrDead)
	}
	b.shutdown()
	b.Clock.Advance(powerCycleDelay)
	return b.boot(true)
}

func (b *Board) boot(cold bool) error {
	if b.state == Dead {
		return fmt.Errorf("board: boot: %w", ErrDead)
	}
	if b.state == On {
		b.shutdown()
	}
	b.Clock.Advance(bootDelay)

	if b.degrade != nil {
		if err := b.degrade.bootFate(cold); err != nil {
			if errors.Is(err, ErrDead) {
				b.shutdown()
				b.state = Dead
				b.lastBoot = fmt.Errorf("board: %w", err)
				return b.lastBoot
			}
			// Transient power-on failure: the board stays off, not bricked —
			// a later attempt (or a cold boot) may well succeed.
			b.state = Off
			b.lastBoot = fmt.Errorf("board: %w", err)
			return b.lastBoot
		}
	}

	rt, err := b.buildRuntime()
	if err != nil {
		b.state = Bricked
		b.lastBoot = err
		return err
	}

	b.memmap = rt.mm
	b.core = rt.core
	b.env = rt.env
	b.fw = rt.fw
	b.state = On
	b.bootCount++
	b.lastBoot = nil
	b.uartd.WriteString(fmt.Sprintf("boot: %s build %#x instrumented=%v board=%s\n",
		rt.kimg.OS, rt.kimg.BuildID, rt.kimg.Instrumented, b.Spec.Name))
	rt.core.Start(rt.fw.Main)
	return nil
}

// runtime bundles the per-boot objects a successful image validation yields.
type runtime struct {
	mm   *mem.Map
	ram  *mem.Region
	core *cpu.Core
	env  *Env
	fw   Firmware
	kimg *flash.Image
}

// buildRuntime validates the flash images and constructs the live memory map,
// core and firmware objects. It is shared by cold boots and by the snapshot
// warm-restore path; callers commit the result and charge whatever timing
// their path costs.
func (b *Board) buildRuntime() (*runtime, error) {
	kimg, err := b.validatePartition("bootloader", flash.MagicBoot)
	if err == nil {
		kimg, err = b.validatePartition("kernel", flash.MagicKernel)
	}
	if err != nil {
		return nil, err
	}

	mm := mem.NewMap()
	mm.MustAdd(mem.BackedRegion("flash", b.Spec.FlashBase, b.flashDev.Bytes(), mem.RX))
	ram := mem.NewRegion("ram", b.Spec.RAMBase, b.Spec.RAMSize, mem.RW)
	mm.MustAdd(ram)

	core := cpu.New(b.Clock, b.Spec.CPUConfig())
	core.SetInstrumented(kimg.Instrumented)

	lay := LayoutFor(b.Spec)

	env := &Env{
		Spec:         b.Spec,
		Clock:        b.Clock,
		Core:         core,
		Mem:          mm,
		RAM:          ram,
		UART:         b.uartd,
		Flash:        b.flashDev,
		Instrumented: kimg.Instrumented,
		Syms:         sym.NewTable(b.Spec.FlashBase + 0x1000),
		BuildID:      kimg.BuildID,
		FSBAddr:      lay.FSB,
		CovAddr:      lay.Cov,
		MailboxIn:    lay.MailboxIn,
		MailboxOut:   lay.MailboxOut,
		ScratchBase:  lay.Scratch,
	}
	// The FSB and the coverage buffer are mutated by the runtime directly
	// through the RAM slab, bypassing the map's write path: pin their pages
	// permanently dirty so delta restores never miss them.
	ram.PinDirty(FSBOffset, FSBSize)
	if kimg.Instrumented {
		slab := ram.Bytes()[CovOffset : CovOffset+uint64(lay.CovBytes)]
		env.Cov = cov.NewRuntime(slab, b.Spec.CovEntries)
		ram.PinDirty(CovOffset, lay.CovBytes)
	}

	fw, err := b.builder(env)
	if err != nil {
		return nil, fmt.Errorf("boot: firmware init: %w", err)
	}
	return &runtime{mm: mm, ram: ram, core: core, env: env, fw: fw, kimg: kimg}, nil
}

func (b *Board) validatePartition(name string, wantMagic uint32) (*flash.Image, error) {
	p := b.table.Lookup(name)
	if p == nil {
		return nil, &BootError{Partition: name, Err: fmt.Errorf("missing from partition table")}
	}
	raw, err := b.flashDev.Read(p.Offset, p.Size)
	if err != nil {
		return nil, &BootError{Partition: name, Err: err}
	}
	im, err := flash.ParseImage(raw)
	if err != nil {
		return nil, &BootError{Partition: name, Err: err}
	}
	if im.Magic != wantMagic {
		return nil, &BootError{Partition: name, Err: fmt.Errorf("wrong image type %#x", im.Magic)}
	}
	return im, nil
}

func (b *Board) shutdown() {
	if b.core != nil {
		b.core.Kill()
	}
	b.core = nil
	b.memmap = nil
	b.env = nil
	b.fw = nil
	if b.state != Dead {
		b.state = Off
	}
}

// Reset warm-resets the board: kills the core and reboots from flash without
// dropping power. If flash is corrupt the board comes back Bricked.
func (b *Board) Reset() error {
	if b.state == Dead {
		return fmt.Errorf("board: reset: %w", ErrDead)
	}
	b.shutdown()
	return b.Boot()
}

// Flash timing model for the debug-link flash commands.
const (
	eraseSectorTime  = 12 * time.Millisecond // per sector erase
	programTimePerKB = 5 * time.Millisecond  // ~200 KiB/s program rate
)

// FlashErase erases every sector covering [off, off+n), advancing virtual
// time by the erase cost. Allowed in any state short of Dead (the probe can
// always reach flash; that is the point of debug-port restoration). Sectors
// erase one at a time: a worn sector failing mid-range leaves the earlier
// sectors erased, exactly the torn state a real NOR part produces.
func (b *Board) FlashErase(off, n int) error {
	if b.state == Dead {
		return fmt.Errorf("board: flash erase: %w", ErrDead)
	}
	if n <= 0 || off < 0 || off+n > b.flashDev.Size() {
		// Delegate no-ops and range errors without charging erase time for
		// sectors that were never touched.
		return b.flashDev.EraseRange(off, n)
	}
	for s := off / b.Spec.SectorSize; s <= (off+n-1)/b.Spec.SectorSize; s++ {
		b.Clock.Advance(eraseSectorTime)
		if b.degrade != nil && b.degrade.wearFail(s, b.flashDev.EraseCount(s)) {
			return fmt.Errorf("board: sector %d erase failed after %d cycles (worn)",
				s, b.flashDev.EraseCount(s))
		}
		if err := b.flashDev.Erase(s); err != nil {
			return err
		}
	}
	return nil
}

// FlashProgram programs data at off, advancing virtual time by the program
// cost. A worn sector in the range fails the write mid-way: bytes before the
// failing sector land, the rest do not — the torn-image case the recovery
// ladder must dig the board out of.
func (b *Board) FlashProgram(off int, data []byte) error {
	if b.state == Dead {
		return fmt.Errorf("board: flash program: %w", ErrDead)
	}
	b.Clock.Advance(time.Duration((len(data)+1023)/1024) * programTimePerKB)
	if b.degrade != nil && len(data) > 0 && off >= 0 && off+len(data) <= b.flashDev.Size() {
		for s := off / b.Spec.SectorSize; s <= (off+len(data)-1)/b.Spec.SectorSize; s++ {
			if b.degrade.wearFail(s, b.flashDev.EraseCount(s)) {
				if pre := s*b.Spec.SectorSize - off; pre > 0 {
					_ = b.flashDev.Program(off, data[:pre])
				}
				return fmt.Errorf("board: sector %d program failed after %d cycles (worn)",
					s, b.flashDev.EraseCount(s))
			}
		}
	}
	return b.flashDev.Program(off, data)
}

// Snapshot/delta-restore cost model. Capturing a snapshot reads the board
// state back over the probe once; restoring ships dirty RAM pages at roughly
// SWD bulk-write rate. Flash deltas go through FlashErase/FlashProgram and
// pay the real erase/program timings, wear included.
const (
	snapshotCaptureTime = 10 * time.Millisecond
	restorePageTime     = 50 * time.Microsecond // per dirty RAM page shipped
)

// ErrNoSnapshot is returned by RestoreSnapshot when no snapshot is cached.
var ErrNoSnapshot = errors.New("board: no snapshot cached")

// snapshot is the cached golden state RestoreSnapshot rolls back to.
type snapshot struct {
	flash []byte   // full flash contents at capture
	ram   []byte   // full RAM contents at capture
	bps   []uint64 // armed breakpoints at capture
}

// RestoreStats describes what one delta restore shipped and what it proved
// clean and left in place.
type RestoreStats struct {
	FlashSectors  int   // flash sectors erased and re-programmed
	RAMPages      int   // RAM pages shipped
	RestoredBytes int64 // bytes actually re-shipped
	SkippedBytes  int64 // bytes left untouched
}

// Snapshot captures the current board state — flash, RAM and the armed
// breakpoint set — as the golden image RestoreSnapshot rolls back to, and
// resets the dirty tracking so DirtySince diffs against this point. The board
// must be On, and for restores to be byte-faithful it should be parked at a
// state a plain boot deterministically reproduces (the engine snapshots at
// the executor_main park).
func (b *Board) Snapshot() error {
	if b.state != On {
		return fmt.Errorf("board: snapshot: board %v", b.state)
	}
	b.Clock.Advance(snapshotCaptureTime)
	b.snap = &snapshot{
		flash: append([]byte(nil), b.flashDev.Bytes()...),
		ram:   append([]byte(nil), b.env.RAM.Bytes()...),
		bps:   b.core.Breakpoints(),
	}
	b.flashDev.ClearDirty()
	b.env.RAM.ClearDirty()
	return nil
}

// HasSnapshot reports whether a golden snapshot is cached.
func (b *Board) HasSnapshot() bool { return b.snap != nil }

// DropSnapshot discards the cached snapshot (a newly provisioned image makes
// the old golden state meaningless).
func (b *Board) DropSnapshot() { b.snap = nil }

// DirtySince returns the flash sectors and RAM pages touched since the last
// Snapshot — the candidate set a delta restore diffs against the golden
// image. RAM pages include the permanently pinned device-mutated pages.
func (b *Board) DirtySince() (sectors, pages []int) {
	sectors = b.flashDev.DirtySectors()
	if b.env != nil {
		pages = b.env.RAM.DirtyPages()
	}
	return sectors, pages
}

// RestoreSnapshot rolls the board back to the cached snapshot by shipping
// only the delta: dirty flash sectors whose bytes actually diverged are
// erased and re-programmed from the golden image, dirty RAM pages are
// re-shipped at bulk-write cost, and the firmware runtime is rebuilt warm —
// no power-on delay, no boot-fate roll, no boot banner — then replayed to
// the snapshot's breakpoint park so the core ends up exactly where the
// snapshot was taken. On failure (worn sector tearing the flash write, image
// validation, replay fault) the board is left for the full recovery ladder
// and the error is returned.
func (b *Board) RestoreSnapshot() (RestoreStats, error) {
	var st RestoreStats
	if b.state == Dead {
		return st, fmt.Errorf("board: restore: %w", ErrDead)
	}
	if b.snap == nil {
		return st, ErrNoSnapshot
	}
	sec := b.Spec.SectorSize

	// Flash delta. A worn sector failing mid-restore leaves the same torn
	// state a full reflash would; the dirty bitmap is not cleared on that
	// path, so the escalated restore still sees a conservative set.
	for _, s := range b.flashDev.DirtySectors() {
		off := s * sec
		golden := b.snap.flash[off : off+sec]
		cur, err := b.flashDev.Read(off, sec)
		if err != nil {
			return st, err
		}
		if bytes.Equal(cur, golden) {
			continue // dirtied but unchanged: same bytes were re-programmed
		}
		if err := b.FlashErase(off, sec); err != nil {
			return st, err
		}
		if err := b.FlashProgram(off, golden); err != nil {
			return st, err
		}
		st.FlashSectors++
		st.RestoredBytes += int64(sec)
	}
	b.flashDev.ClearDirty()

	// RAM delta: count dirty pages that diverged from golden and charge the
	// bulk-write cost of shipping them. The contents land wholesale after
	// the warm rebuild below, which guarantees byte-identity.
	if b.env != nil {
		ram := b.env.RAM.Bytes()
		for _, p := range b.env.RAM.DirtyPages() {
			lo := p * mem.PageSize
			hi := lo + mem.PageSize
			if hi > len(ram) {
				hi = len(ram)
			}
			if bytes.Equal(ram[lo:hi], b.snap.ram[lo:hi]) {
				continue
			}
			st.RAMPages++
			st.RestoredBytes += int64(hi - lo)
			b.Clock.Advance(restorePageTime)
		}
	} else {
		// No live RAM to diff against (the board is off or bricked): the
		// whole image ships.
		st.RAMPages = (len(b.snap.ram) + mem.PageSize - 1) / mem.PageSize
		st.RestoredBytes += int64(len(b.snap.ram))
		b.Clock.Advance(time.Duration(st.RAMPages) * restorePageTime)
	}
	st.SkippedBytes = int64(len(b.snap.flash)+len(b.snap.ram)) - st.RestoredBytes

	// Warm rebuild: same construction as a boot, but the rails never drop.
	b.shutdown()
	rt, err := b.buildRuntime()
	if err != nil {
		b.state = Bricked
		b.lastBoot = err
		return st, err
	}
	b.memmap = rt.mm
	b.core = rt.core
	b.env = rt.env
	b.fw = rt.fw
	b.state = On
	b.lastBoot = nil
	rt.core.Start(rt.fw.Main)

	// Re-arm the snapshot's breakpoints and replay to the first hit, parking
	// the core where the snapshot captured it.
	for _, a := range b.snap.bps {
		if err := rt.core.SetBreakpoint(a); err != nil {
			b.shutdown()
			return st, err
		}
	}
	if len(b.snap.bps) > 0 {
		if err := b.replayToBreakpoint(rt); err != nil {
			b.shutdown()
			return st, err
		}
	}

	// Overwrite RAM with the golden bytes wholesale. The replay reproduced
	// the kernel's object state; this squashes any byte-level drift (e.g. a
	// coverage buffer the host had already drained at capture time).
	copy(rt.ram.Bytes(), b.snap.ram)
	rt.ram.ClearDirty()
	if rt.env.Cov != nil {
		rt.env.Cov.SyncFromRAM()
	}
	b.uartd.Drain() // discard crash leftovers and replay boot chatter
	return st, nil
}

// replayToBreakpoint drives the freshly rebuilt core to the snapshot's park
// point, handling the same boot-time stops the host's run-to-main loop does.
func (b *Board) replayToBreakpoint(rt *runtime) error {
	budget := int64(b.Spec.HZ) // one virtual second per slice
	for i := 0; i < 64; i++ {
		stop := rt.core.Continue(budget)
		switch stop.Kind {
		case cpu.StopBreakpoint:
			return nil
		case cpu.StopBudget:
			continue
		case cpu.StopCovFull:
			// Clear the buffer the way the host would and keep replaying;
			// the golden RAM overwrite squashes the contents afterwards.
			if err := rt.mm.PutU32(rt.env.CovAddr+4, 0); err != nil {
				return err
			}
			rt.env.Cov.SyncFromRAM()
		default:
			return fmt.Errorf("board: restore replay stopped: %v at %#x", stop.Kind, stop.PC)
		}
	}
	return fmt.Errorf("board: restore replay never reached a breakpoint")
}
