package board

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrDead marks permanent hardware death: the board will never boot again,
// no matter which recovery rung is tried. Callers detect it with errors.Is.
var ErrDead = errors.New("board: permanent hardware death")

// DegradeConfig parameterises the board degradation model. The zero value is
// a perfect board; any non-zero field enables the model. All randomness is
// drawn from a dedicated seeded stream so degraded campaigns replay exactly.
type DegradeConfig struct {
	// Seed feeds the degradation RNG (boot-failure and death draws). Engines
	// default a zero Seed to the campaign seed, so every fleet shard ages
	// differently but deterministically.
	Seed int64

	// WearLimit is the per-sector erase-cycle budget. Once a sector's
	// lifetime erase count reaches the limit it turns marginal: its next
	// WearFailStreak erase/program operations fail before recovering —
	// marginal NOR cells that come back when the retry gives the charge
	// pump a rest. Zero disables wear.
	WearLimit int
	// WearFailStreak is how many consecutive operations a worn sector
	// refuses before recovering (default 1).
	WearFailStreak int

	// BootFailRate is the per-attempt probability that power-on self-test
	// fails transiently: the board stays off (not bricked) and a later
	// attempt may succeed. Cold boots (full power cycles) halve the rate —
	// the recovery ladder's deepest rung really is more likely to work.
	BootFailRate float64

	// DeathRate is the per-boot-attempt probability of permanent death.
	DeathRate float64
	// DieAfterBoots, when positive, kills the board deterministically on
	// the Nth boot attempt (the initial setup boot counts as attempt 1).
	// Tests and ablations use it to doom a specific board mid-campaign.
	DieAfterBoots int
}

// Enabled reports whether any degradation mode is configured.
func (c DegradeConfig) Enabled() bool {
	return c.WearLimit > 0 || c.BootFailRate > 0 || c.DeathRate > 0 || c.DieAfterBoots > 0
}

// degrader holds one board's accumulated degradation state.
type degrader struct {
	cfg          DegradeConfig
	rnd          *rand.Rand
	bootAttempts int
	wearFails    map[int]int // failures already served per marginal sector
}

func newDegrader(cfg DegradeConfig) *degrader {
	if cfg.WearFailStreak <= 0 {
		cfg.WearFailStreak = 1
	}
	return &degrader{
		cfg:       cfg,
		rnd:       rand.New(rand.NewSource(cfg.Seed ^ 0x0DEAD)),
		wearFails: make(map[int]int),
	}
}

// bootFate draws one boot attempt's outcome: nil, a transient power-on
// failure, or ErrDead. The draw order (death, then transient) is fixed so a
// campaign's degradation sequence replays for a fixed seed.
func (d *degrader) bootFate(cold bool) error {
	d.bootAttempts++
	if d.cfg.DieAfterBoots > 0 && d.bootAttempts >= d.cfg.DieAfterBoots {
		return fmt.Errorf("boot attempt %d: %w", d.bootAttempts, ErrDead)
	}
	if d.cfg.DeathRate > 0 && d.rnd.Float64() < d.cfg.DeathRate {
		return fmt.Errorf("boot attempt %d: %w", d.bootAttempts, ErrDead)
	}
	rate := d.cfg.BootFailRate
	if cold {
		rate /= 2
	}
	if d.cfg.BootFailRate > 0 && d.rnd.Float64() < rate {
		return fmt.Errorf("power-on self-test failed (attempt %d)", d.bootAttempts)
	}
	return nil
}

// wearFail reports whether an erase/program operation touching the given
// sector (at the given lifetime erase count) fails. A sector past the wear
// limit refuses its next WearFailStreak operations, then recovers.
func (d *degrader) wearFail(sector, cycles int) bool {
	if d.cfg.WearLimit <= 0 || cycles < d.cfg.WearLimit {
		return false
	}
	if d.wearFails[sector] >= d.cfg.WearFailStreak {
		return false
	}
	d.wearFails[sector]++
	return true
}
