package board

import (
	"bytes"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/flash"
)

// TestRestoreByteEquivalence is the delta-restore correctness invariant: after
// a snapshot restore, flash and RAM are byte-identical to a twin board that
// was fully reflashed from the same golden images and rebooted.
func TestRestoreByteEquivalence(t *testing.T) {
	b := provisioned(t, true) // delta-restored board
	r := provisioned(t, true) // reference board: full reflash + reset
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := r.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Damage flash (a torn image) and RAM (crash leftovers) on the delta
	// board, the state a restore exists to repair.
	b.Flash().Corrupt(0x8000+64, 16, 0xAA)
	scratch := b.Env().ScratchBase
	if err := b.Mem().PutU32(scratch, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}

	st, err := b.RestoreSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlashSectors == 0 {
		t.Fatalf("corrupted sector not re-shipped: %+v", st)
	}
	if st.RestoredBytes == 0 || st.SkippedBytes == 0 {
		t.Fatalf("implausible restore stats: %+v", st)
	}

	// Reference path: full reflash of both partitions + reboot.
	boot := (&flash.Image{Magic: flash.MagicBoot, OS: "x", BuildID: 1, CodeSize: 64}).Serialize()
	kern := (&flash.Image{Magic: flash.MagicKernel, OS: "x", BuildID: 1, Instrumented: true, CodeSize: 256}).Serialize()
	for _, part := range []struct {
		off  int
		data []byte
	}{{0, boot}, {0x8000, kern}} {
		if err := r.FlashErase(part.off, len(part.data)); err != nil {
			t.Fatal(err)
		}
		if err := r.FlashProgram(part.off, part.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(b.Flash().Bytes(), r.Flash().Bytes()) {
		t.Fatal("flash differs from full-reflash reference after delta restore")
	}
	if !bytes.Equal(b.Env().RAM.Bytes(), r.Env().RAM.Bytes()) {
		t.Fatal("RAM differs from reflash+reset reference after delta restore")
	}
	if b.State() != On {
		t.Fatalf("restored board state: %v", b.State())
	}
	b.Core().Kill()
	r.Core().Kill()
}

// TestRestoreSkipsCleanState asserts the delta property: dirtied-but-unchanged
// state is proven clean by the byte diff and not re-shipped.
func TestRestoreSkipsCleanState(t *testing.T) {
	b := provisioned(t, true)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if secs, _ := b.DirtySince(); len(secs) != 0 {
		t.Fatalf("snapshot left dirty sectors: %v", secs)
	}

	// Re-program a sector with its own bytes: dirty, but byte-equal.
	sz := b.Spec.SectorSize
	cur, err := b.Flash().Read(0, sz)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.FlashErase(0, sz); err != nil {
		t.Fatal(err)
	}
	if err := b.FlashProgram(0, cur); err != nil {
		t.Fatal(err)
	}
	if secs, _ := b.DirtySince(); len(secs) == 0 {
		t.Fatal("reprogram did not mark the sector dirty")
	}

	st, err := b.RestoreSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.FlashSectors != 0 {
		t.Fatalf("byte-equal sector was re-shipped: %+v", st)
	}
	b.Core().Kill()
}

// TestRestoreTornSectorEscalates asserts the failure contract: a worn sector
// tearing the delta restore's flash write surfaces the error, and the classic
// reflash + boot path still recovers the board afterwards.
func TestRestoreTornSectorEscalates(t *testing.T) {
	b := provisioned(t, true)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Diverge a kernel sector so the restore must erase + re-program it, then
	// wear the flash out so that write tears.
	b.Flash().Corrupt(0x8000, 32, 0x5A)
	b.SetDegrade(DegradeConfig{WearLimit: 1, WearFailStreak: 2, Seed: 1})

	_, err := b.RestoreSnapshot()
	if err == nil || !strings.Contains(err.Error(), "worn") {
		t.Fatalf("restore across worn sector: %v", err)
	}
	if secs, _ := b.DirtySince(); len(secs) == 0 {
		t.Fatal("failed restore cleared the dirty bitmap")
	}

	// The recovery ladder's reflash rung repairs the torn image once the
	// marginal cells recover (WearFailStreak operations later).
	kern := (&flash.Image{Magic: flash.MagicKernel, OS: "x", BuildID: 1, Instrumented: true, CodeSize: 256}).Serialize()
	var ferr error
	for attempt := 0; attempt < 4; attempt++ {
		if ferr = b.FlashErase(0x8000, len(kern)); ferr != nil {
			continue
		}
		if ferr = b.FlashProgram(0x8000, kern); ferr == nil {
			break
		}
	}
	if ferr != nil {
		t.Fatalf("reflash never recovered: %v", ferr)
	}
	if err := b.Boot(); err != nil {
		t.Fatalf("boot after reflash: %v", err)
	}
	b.Core().Kill()
}

// TestRestoreWithoutSnapshotFails pins the ErrNoSnapshot contract the probe
// maps to the Esnap wire code.
func TestRestoreWithoutSnapshotFails(t *testing.T) {
	b := provisioned(t, true)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RestoreSnapshot(); err != ErrNoSnapshot {
		t.Fatalf("restore without snapshot: %v", err)
	}
	if err := b.Snapshot(); err != nil {
		t.Fatal(err)
	}
	b.DropSnapshot()
	if b.HasSnapshot() {
		t.Fatal("drop kept the snapshot")
	}
	if _, err := b.RestoreSnapshot(); err != ErrNoSnapshot {
		t.Fatalf("restore after drop: %v", err)
	}
	b.Core().Kill()
}
