package board

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/vtime"
)

func testSpec() *Spec {
	return &Spec{
		Name: "testboard", Arch: "arm", HZ: 100_000_000,
		CyclesPerBlock: 4, MaxBreakpoints: 6,
		FlashBase: 0x0800_0000, FlashSize: 1 << 20, SectorSize: 4096,
		RAMBase: 0x2000_0000, RAMSize: 256 * 1024, CovEntries: 128,
		Peripherals: map[string]bool{"serial": true},
	}
}

type spinFW struct{ env *Env }

func (f *spinFW) Main() {
	for {
		f.env.Core.Step(f.env.Spec.FlashBase + 0x2000)
	}
}

func provisioned(t *testing.T, instrumented bool) *Board {
	t.Helper()
	table, err := flash.ParseTable("bootloader, app, 0x0, 0x8000\nkernel, app, 0x8000, 0x40000\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testSpec(), table, func(env *Env) (Firmware, error) {
		return &spinFW{env: env}, nil
	}, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	boot := &flash.Image{Magic: flash.MagicBoot, OS: "x", BuildID: 1, CodeSize: 64}
	kern := &flash.Image{Magic: flash.MagicKernel, OS: "x", BuildID: 1, Instrumented: instrumented, CodeSize: 256}
	if err := b.Provision("bootloader", boot.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := b.Provision("kernel", kern.Serialize()); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBootLifecycle(t *testing.T) {
	b := provisioned(t, true)
	if b.State() != Off {
		t.Fatal("new board not off")
	}
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if b.State() != On || b.BootCount() != 1 {
		t.Fatalf("state %v boots %d", b.State(), b.BootCount())
	}
	env := b.Env()
	if env.Cov == nil || !env.Instrumented {
		t.Fatal("instrumented image without cov runtime")
	}
	if env.ScratchBase <= env.MailboxOut {
		t.Fatal("layout ordering broken")
	}
	st := b.Core().Continue(100)
	if st.Kind != cpu.StopBudget {
		t.Fatalf("stop: %+v", st)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.BootCount() != 2 {
		t.Fatalf("boots after reset: %d", b.BootCount())
	}
	b.Core().Kill()
}

func TestUninstrumentedBoot(t *testing.T) {
	b := provisioned(t, false)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if b.Env().Cov != nil || b.Env().Instrumented {
		t.Fatal("plain image got a cov runtime")
	}
	b.Core().Kill()
}

func TestBootFailsOnMissingImage(t *testing.T) {
	table, _ := flash.ParseTable("bootloader, app, 0x0, 0x8000\nkernel, app, 0x8000, 0x40000\n")
	b, err := New(testSpec(), table, func(env *Env) (Firmware, error) {
		return &spinFW{env: env}, nil
	}, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Boot(); err == nil {
		t.Fatal("boot with erased flash succeeded")
	}
	if b.State() != Bricked {
		t.Fatalf("state: %v", b.State())
	}
	if b.Core() != nil || b.Mem() != nil {
		t.Fatal("bricked board exposes live core")
	}
}

func TestCorruptionBricksUntilReflash(t *testing.T) {
	b := provisioned(t, true)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	kern := (&flash.Image{Magic: flash.MagicKernel, OS: "x", BuildID: 1, Instrumented: true, CodeSize: 256}).Serialize()
	b.Flash().Corrupt(0x8000+40, 8, 0x0F)
	if err := b.Reset(); err == nil {
		t.Fatal("reset on corrupt flash succeeded")
	}
	if b.State() != Bricked {
		t.Fatalf("state: %v", b.State())
	}
	// Debug-port reflash path.
	if err := b.FlashErase(0x8000, len(kern)); err != nil {
		t.Fatal(err)
	}
	if err := b.FlashProgram(0x8000, kern); err != nil {
		t.Fatal(err)
	}
	if err := b.Boot(); err != nil {
		t.Fatalf("boot after reflash: %v", err)
	}
	b.Core().Kill()
}

func TestFlashTimingCharged(t *testing.T) {
	b := provisioned(t, false)
	before := b.Clock.Now()
	if err := b.FlashErase(0, 64*1024); err != nil {
		t.Fatal(err)
	}
	if err := b.FlashProgram(0, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if b.Clock.Now() == before {
		t.Fatal("flash operations consumed no virtual time")
	}
}

func TestProvisionValidation(t *testing.T) {
	b := provisioned(t, false)
	if err := b.Provision("nope", []byte{1}); err == nil {
		t.Fatal("unknown partition accepted")
	}
	if err := b.Provision("bootloader", make([]byte, 0x9000)); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestLayoutForMatchesBoot(t *testing.T) {
	b := provisioned(t, true)
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	lay := LayoutFor(b.Spec)
	env := b.Env()
	if lay.FSB != env.FSBAddr || lay.Cov != env.CovAddr ||
		lay.MailboxIn != env.MailboxIn || lay.MailboxOut != env.MailboxOut ||
		lay.Scratch != env.ScratchBase {
		t.Fatalf("layout mismatch: %+v vs env %+v", lay, env)
	}
	b.Core().Kill()
}

func TestBuilderFailureBricks(t *testing.T) {
	table, _ := flash.ParseTable("bootloader, app, 0x0, 0x8000\nkernel, app, 0x8000, 0x40000\n")
	b, err := New(testSpec(), table, func(env *Env) (Firmware, error) {
		return nil, errBoom
	}, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	boot := &flash.Image{Magic: flash.MagicBoot, OS: "x", BuildID: 1, CodeSize: 64}
	kern := &flash.Image{Magic: flash.MagicKernel, OS: "x", BuildID: 1, CodeSize: 64}
	b.Provision("bootloader", boot.Serialize())
	b.Provision("kernel", kern.Serialize())
	if err := b.Boot(); err == nil {
		t.Fatal("boot with failing builder succeeded")
	}
	if b.State() != Bricked {
		t.Fatalf("state: %v", b.State())
	}
}

var errBoom = &BootError{Partition: "x", Err: nil}
