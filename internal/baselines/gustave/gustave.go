// Package gustave implements the Gustave baseline: an AFL-derived fuzzer for
// the POK partitioned OS running under a customised QEMU. It is coverage-
// guided (QEMU TCG instrumentation) but grammar-free: its inputs are flat
// byte buffers that a fixed mapping turns into syscall sequences, so API
// preconditions and resource relationships are satisfied only by luck —
// precisely the contrast the paper draws against API-aware generation.
package gustave

import (
	"math/rand"
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/baselines"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/wire"
)

// Config parameterises a Gustave campaign.
type Config struct {
	OS    *osinfo.Info
	Board *board.Spec
	Seed  int64

	Budget       int64
	MaxContinues int
	ExecTimeout  time.Duration
	SampleEvery  time.Duration
}

// DefaultConfig mirrors the paper's Gustave setup.
func DefaultConfig(os *osinfo.Info, spec *board.Spec) Config {
	return Config{
		OS:           os,
		Board:        spec,
		Seed:         1,
		Budget:       500_000,
		MaxContinues: 64,
		ExecTimeout:  3 * time.Second,
		SampleEvery:  5 * time.Minute,
	}
}

// maxBlob bounds one AFL input buffer.
const maxBlob = 128

// blobSeed is one retained AFL input.
type blobSeed struct {
	data  []byte
	fresh int
}

// Run executes a Gustave campaign for the virtual-time budget.
func Run(cfg Config, budget time.Duration) (*core.Report, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Minute
	}
	vm, err := backend.OpenVM(cfg.OS, cfg.Board, true)
	if err != nil {
		return nil, err
	}
	defer vm.Close()

	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x605747E))
	driver := &baselines.SMDriver{
		VM:           vm,
		Collector:    cov.NewCollector(),
		Budget:       cfg.Budget,
		MaxContinues: cfg.MaxContinues,
		ExecTimeout:  cfg.ExecTimeout,
	}
	var corpus []blobSeed
	logMon := &core.LogMonitor{}
	sigs := make(map[string]bool)
	rep := &core.Report{OS: cfg.OS.Name, Board: cfg.Board.Name}
	nAPIs := len(cfg.OS.APINames)

	started := vm.Clock.Now()
	deadline := vm.Clock.DeadlineIn(budget)
	lastSample := started

	for !deadline.Expired(vm.Clock) {
		var blob []byte
		if len(corpus) > 0 && rnd.Float64() < 0.8 {
			blob = mutateBlob(rnd, corpus[rnd.Intn(len(corpus))].data)
		} else {
			blob = randomBlob(rnd)
		}
		p := decode(blob, nAPIs)
		raw, err := p.Marshal()
		if err != nil {
			continue // undecodable blob: AFL would just move on
		}
		completed, fresh, err := driver.RunOne(raw)
		if err != nil {
			return nil, err
		}
		if completed {
			rep.Stats.Execs++
			if fresh > 0 {
				corpus = append(corpus, blobSeed{data: blob, fresh: fresh})
				if len(corpus) > 256 {
					corpus = corpus[1:]
				}
			}
		} else {
			baselines.ScanLogForCrash(logMon, vm.DrainUART(), sigs, rep, "", vm.Clock.Now()-started)
			rep.Stats.Restores++
			rep.Stats.TimeoutResets++
			if err := driver.ResetAndResync(); err != nil {
				return nil, err
			}
		}
		if vm.Clock.Now()-lastSample >= cfg.SampleEvery {
			lastSample = vm.Clock.Now()
			rep.Series = append(rep.Series, core.CoverSample{At: vm.Clock.Now() - started, Edges: driver.Collector.Total()})
		}
	}
	rep.Edges = driver.Collector.Total()
	rep.Stats.Crashes = len(rep.Bugs)
	rep.Duration = vm.Clock.Now() - started
	rep.Series = append(rep.Series, core.CoverSample{At: rep.Duration, Edges: rep.Edges})
	return rep, nil
}

// decode maps a flat byte buffer onto a syscall sequence: 10 bytes per call
// (1 selector + 1 arg count + 4×2-byte args), Gustave's grammar-free shape.
func decode(blob []byte, nAPIs int) *wire.Prog {
	p := &wire.Prog{}
	for off := 0; off+10 <= len(blob) && len(p.Calls) < wire.MaxCalls; off += 10 {
		c := wire.Call{API: uint16(int(blob[off]) % nAPIs)}
		nargs := int(blob[off+1]) % 5
		for i := 0; i < nargs; i++ {
			v := uint64(blob[off+2+2*i]) | uint64(blob[off+3+2*i])<<8
			c.Args = append(c.Args, wire.Arg{Kind: wire.ArgImm, Val: v})
		}
		p.Calls = append(p.Calls, c)
	}
	if len(p.Calls) == 0 {
		p.Calls = append(p.Calls, wire.Call{API: 0})
	}
	return p
}

func randomBlob(rnd *rand.Rand) []byte {
	n := 10 + rnd.Intn(maxBlob-10)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rnd.Intn(256))
	}
	return b
}

// mutateBlob applies classic AFL havoc operations.
func mutateBlob(rnd *rand.Rand, in []byte) []byte {
	b := append([]byte(nil), in...)
	for ops := 1 + rnd.Intn(3); ops > 0; ops-- {
		switch rnd.Intn(4) {
		case 0:
			b[rnd.Intn(len(b))] ^= byte(1 << uint(rnd.Intn(8)))
		case 1:
			b[rnd.Intn(len(b))] = byte(rnd.Intn(256))
		case 2:
			if len(b) < maxBlob {
				i := rnd.Intn(len(b) + 1)
				b = append(b[:i], append([]byte{byte(rnd.Intn(256))}, b[i:]...)...)
			}
		case 3:
			if len(b) > 10 {
				i := rnd.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			}
		}
	}
	return b
}
