// Package gdbfuzz implements the GDBFuzz baseline: on-hardware fuzzing of
// embedded applications through the debug interface, with coverage feedback
// approximated by rotating the MCU's scarce hardware breakpoints over
// not-yet-covered basic blocks from the binary's CFG. Inputs are flat byte
// buffers fed to a single application entry point — no API awareness, no
// full-system reach. Crashes are detected from debug-port halts.
package gdbfuzz

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/eof-fuzz/eof/internal/baselines"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/sym"
)

// Config parameterises a GDBFuzz campaign.
type Config struct {
	OS    *osinfo.Info
	Board *board.Spec
	Seed  int64

	// Entry and Init select the application surface under test.
	Entry    string
	Init     string
	InitArgs []uint64
	// Modules confines coverage measurement (and the CFG breakpoint pool)
	// to these source prefixes.
	Modules []string
	// Seeds are the initial corpus inputs.
	Seeds [][]byte

	ExecTimeout time.Duration
	SampleEvery time.Duration
}

// Run executes a GDBFuzz campaign for the virtual-time budget.
func Run(cfg Config, budget time.Duration) (*core.Report, error) {
	if cfg.ExecTimeout <= 0 {
		cfg.ExecTimeout = 3 * time.Second
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Minute
	}
	rig, err := baselines.NewAppRig(cfg.OS, cfg.Board, cfg.Entry, cfg.Init, cfg.InitArgs, cfg.Modules, ocd.DefaultLatency())
	if err != nil {
		return nil, err
	}
	defer rig.Close()

	// The CFG block pool: every basic block of the modules under test, from
	// the binary's symbols (GDBFuzz disassembles the ELF for this).
	syms, err := rig.OS.SymbolTable(cfg.Board)
	if err != nil {
		return nil, err
	}
	pool := blockPool(syms, cfg.Modules)
	if len(pool) == 0 {
		return nil, fmt.Errorf("gdbfuzz: no blocks in modules %v", cfg.Modules)
	}

	if err := rig.Setup(); err != nil {
		return nil, err
	}

	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x6DBF0022))
	rep := &core.Report{OS: cfg.OS.Name, Board: cfg.Board.Name}
	sigs := make(map[string]bool)
	var corpus [][]byte
	corpus = append(corpus, cfg.Seeds...)
	if len(corpus) == 0 {
		corpus = append(corpus, []byte("seed"))
	}

	// Breakpoint probes: keep (comparators - 1) armed on random uncovered
	// blocks; executor_main owns the last comparator.
	probeBudget := cfg.Board.MaxBreakpoints - 1
	armProbes(rig, rnd, pool, probeBudget)

	started := rig.Clock.Now()
	deadline := rig.Clock.DeadlineIn(budget)
	lastSample := started

	for !deadline.Expired(rig.Clock) {
		var input []byte
		if rnd.Float64() < 0.9 {
			input = mutate(rnd, corpus[rnd.Intn(len(corpus))])
		} else {
			input = random(rnd)
		}
		outcome, _, err := rig.RunBuffer(input, cfg.ExecTimeout)
		if err != nil {
			return nil, err
		}
		rep.Stats.Execs++
		switch outcome {
		case baselines.AppCompleted:
			if len(rig.LastHits) > 0 {
				// A probe fired: new block reached → keep the input, refill
				// the probe set.
				corpus = append(corpus, input)
				if len(corpus) > 256 {
					corpus = corpus[1:]
				}
				for _, addr := range rig.LastHits {
					delete(pool, addr)
				}
				armProbes(rig, rnd, pool, probeBudget)
			}
		case baselines.AppCrashed:
			rep.Stats.Crashes++
			rep.Stats.Restores++
			f := rig.LastFault
			sig := "halt"
			title := "target halted with fault"
			if f != nil {
				sig = fmt.Sprintf("%v@%x", f.Kind, f.PC)
				title = fmt.Sprintf("%v: %s", f.Kind, f.Msg)
			}
			if !sigs[sig] {
				sigs[sig] = true
				rep.Bugs = append(rep.Bugs, &core.BugReport{
					OS: rep.OS, Board: rep.Board, Sig: sig, Title: title,
					Kind: "panic", Monitor: "debug-halt", Fault: f,
					FoundAt: rig.Clock.Now() - started,
				})
			}
			corpus = append(corpus, input)
			armProbes(rig, rnd, pool, probeBudget)
		case baselines.AppHung:
			rep.Stats.Restores++
			armProbes(rig, rnd, pool, probeBudget)
		}
		if rig.Clock.Now()-lastSample >= cfg.SampleEvery {
			lastSample = rig.Clock.Now()
			rep.Series = append(rep.Series, core.CoverSample{At: rig.Clock.Now() - started, Edges: rig.Collector.Total()})
		}
	}
	rep.Edges = rig.Collector.Total()
	rep.Stats.Restores += rig.Restores
	rep.Duration = rig.Clock.Now() - started
	rep.Series = append(rep.Series, core.CoverSample{At: rep.Duration, Edges: rep.Edges})
	return rep, nil
}

// blockPool enumerates the module blocks the probe rotation draws from.
func blockPool(syms *sym.Table, modules []string) map[uint64]bool {
	pool := make(map[uint64]bool)
	for _, f := range syms.Funcs() {
		if !matches(f.File, modules) {
			continue
		}
		for i := 0; i < f.NBlocks; i++ {
			pool[f.Block(i)] = true
		}
	}
	return pool
}

func matches(file string, modules []string) bool {
	if len(modules) == 0 {
		return true
	}
	for _, m := range modules {
		if len(file) >= len(m) && file[:len(m)] == m {
			return true
		}
	}
	return false
}

// armProbes tops the probe set back up to the comparator budget.
func armProbes(rig *baselines.AppRig, rnd *rand.Rand, pool map[uint64]bool, budget int) {
	if len(rig.ExtraBPs) >= budget {
		return
	}
	candidates := make([]uint64, 0, len(pool))
	for addr := range pool {
		if !rig.ExtraBPs[addr] {
			candidates = append(candidates, addr)
		}
	}
	rnd.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, addr := range candidates {
		if len(rig.ExtraBPs) >= budget {
			break
		}
		if err := rig.Client().SetBreakpoint(addr); err != nil {
			break // comparators exhausted
		}
		rig.ExtraBPs[addr] = true
	}
}

func random(rnd *rand.Rand) []byte {
	n := 1 + rnd.Intn(128)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rnd.Intn(256))
	}
	return b
}

func mutate(rnd *rand.Rand, in []byte) []byte {
	b := append([]byte(nil), in...)
	if len(b) == 0 {
		return random(rnd)
	}
	for ops := 1 + rnd.Intn(4); ops > 0; ops-- {
		switch rnd.Intn(4) {
		case 0:
			b[rnd.Intn(len(b))] ^= byte(1 << uint(rnd.Intn(8)))
		case 1:
			b[rnd.Intn(len(b))] = byte(rnd.Intn(256))
		case 2:
			if len(b) < 1024 {
				i := rnd.Intn(len(b) + 1)
				b = append(b[:i], append([]byte{byte(rnd.Intn(256))}, b[i:]...)...)
			}
		case 3:
			if len(b) > 1 {
				i := rnd.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			}
		}
	}
	return b
}
