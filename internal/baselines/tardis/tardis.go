// Package tardis implements the Tardis baseline: a Syzkaller-derived,
// coverage-guided embedded OS fuzzer that runs its target under an emulator
// and exchanges data through QEMU's shared-memory mechanism. Faithful to the
// paper's characterisation, it is API-aware and coverage-guided but (a) can
// only test what the emulated board models — hardware-only peripherals and
// their kernel paths are unreachable — and (b) has no exception or liveness
// introspection: its sole bug/liveness signal is the execution timeout,
// after which it scans the console and resets the VM.
package tardis

import (
	"math/rand"
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/baselines"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/specgen"
)

// Config parameterises a Tardis campaign.
type Config struct {
	OS    *osinfo.Info
	Board *board.Spec // must be an emulated model
	Seed  int64

	Budget       int64
	MaxContinues int
	ExecTimeout  time.Duration
	SampleEvery  time.Duration
}

// DefaultConfig mirrors the paper's Tardis setup on the QEMU board.
func DefaultConfig(os *osinfo.Info, spec *board.Spec) Config {
	return Config{
		OS:           os,
		Board:        spec,
		Seed:         1,
		Budget:       500_000,
		MaxContinues: 64,
		ExecTimeout:  3 * time.Second,
		SampleEvery:  5 * time.Minute,
	}
}

// Run executes a Tardis campaign for the virtual-time budget.
func Run(cfg Config, budget time.Duration) (*core.Report, error) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Minute
	}
	specRes, err := specgen.Generate(cfg.OS)
	if err != nil {
		return nil, err
	}
	target, err := prog.NewTarget(specRes.Spec, cfg.OS)
	if err != nil {
		return nil, err
	}
	vm, err := backend.OpenVM(cfg.OS, cfg.Board, true)
	if err != nil {
		return nil, err
	}
	defer vm.Close()

	gen := prog.NewGenerator(target, cfg.Seed, nil)
	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x7A6D15))
	driver := &baselines.SMDriver{
		VM:           vm,
		Collector:    cov.NewCollector(),
		Budget:       cfg.Budget,
		MaxContinues: cfg.MaxContinues,
		ExecTimeout:  cfg.ExecTimeout,
	}
	corpus := &core.Corpus{}
	logMon := &core.LogMonitor{}
	sigs := make(map[string]bool)
	rep := &core.Report{OS: cfg.OS.Name, Board: cfg.Board.Name}

	started := vm.Clock.Now()
	deadline := vm.Clock.DeadlineIn(budget)
	lastSample := started

	for !deadline.Expired(vm.Clock) {
		var p *prog.Prog
		if corpus.Len() > 0 && rnd.Float64() < 0.7 {
			p = gen.Mutate(corpus.Pick(rnd).P)
		} else {
			p = gen.Generate(10)
		}
		wp, err := target.Serialize(p)
		if err != nil {
			return nil, err
		}
		raw, err := wp.Marshal()
		if err != nil {
			return nil, err
		}
		completed, fresh, err := driver.RunOne(raw)
		if err != nil {
			return nil, err
		}
		if completed {
			rep.Stats.Execs++
			if fresh > 0 {
				corpus.Add(p, fresh)
			}
		} else {
			// Timeout: the only signal Tardis gets. Scan the console for a
			// crash banner, then reset the VM.
			baselines.ScanLogForCrash(logMon, vm.DrainUART(), sigs, rep, p.String(), vm.Clock.Now()-started)
			rep.Stats.Restores++
			rep.Stats.TimeoutResets++
			if err := driver.ResetAndResync(); err != nil {
				return nil, err
			}
		}
		if vm.Clock.Now()-lastSample >= cfg.SampleEvery {
			lastSample = vm.Clock.Now()
			rep.Series = append(rep.Series, core.CoverSample{At: vm.Clock.Now() - started, Edges: driver.Collector.Total()})
		}
	}
	rep.Edges = driver.Collector.Total()
	rep.Stats.Crashes = len(rep.Bugs)
	rep.Duration = vm.Clock.Now() - started
	rep.Series = append(rep.Series, core.CoverSample{At: rep.Duration, Edges: rep.Edges})
	return rep, nil
}
