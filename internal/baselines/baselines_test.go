package baselines_test

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/baselines/gdbfuzz"
	"github.com/eof-fuzz/eof/internal/baselines/gustave"
	"github.com/eof-fuzz/eof/internal/baselines/shift"
	"github.com/eof-fuzz/eof/internal/baselines/tardis"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/targets"
)

func TestTardisCampaign(t *testing.T) {
	info, err := targets.ByName("rtthread")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tardis.DefaultConfig(info, boards.QEMUVirt())
	rep, err := tardis.Run(cfg, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Execs < 20 {
		t.Fatalf("too few execs: %+v", rep.Stats)
	}
	if rep.Edges < 50 {
		t.Fatalf("too little coverage: %d", rep.Edges)
	}
	t.Logf("tardis/rtthread: %d execs, %d edges, %d bugs, %d timeouts",
		rep.Stats.Execs, rep.Edges, len(rep.Bugs), rep.Stats.TimeoutResets)
}

func TestTardisRejectsHardwareBoard(t *testing.T) {
	info, _ := targets.ByName("freertos")
	cfg := tardis.DefaultConfig(info, boards.STM32H745())
	if _, err := tardis.Run(cfg, time.Minute); err == nil {
		t.Fatal("Tardis ran on a non-emulated board")
	}
}

func TestGustaveCampaign(t *testing.T) {
	info, err := targets.ByName("pokos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gustave.DefaultConfig(info, boards.QEMUVirt())
	rep, err := gustave.Run(cfg, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Execs < 20 {
		t.Fatalf("too few execs: %+v", rep.Stats)
	}
	t.Logf("gustave/pokos: %d execs, %d edges", rep.Stats.Execs, rep.Edges)
}

func TestGDBFuzzCampaign(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gdbfuzz.Config{
		OS:       info,
		Board:    boards.STM32H745(),
		Seed:     3,
		Entry:    "http_server_handle",
		Init:     "http_server_init",
		InitArgs: []uint64{8080},
		Modules:  []string{"app/http"},
		Seeds:    [][]byte{[]byte("GET / HTTP/1.1\r\n\r\n")},
	}
	rep, err := gdbfuzz.Run(cfg, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Execs < 10 {
		t.Fatalf("too few execs: %+v", rep.Stats)
	}
	if rep.Edges == 0 {
		t.Fatal("no measured coverage")
	}
	t.Logf("gdbfuzz/http: %d execs, %d edges", rep.Stats.Execs, rep.Edges)
}

func TestShiftCampaign(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shift.Config{
		OS:      info,
		Board:   boards.STM32H745(),
		Seed:    5,
		Entry:   "json_parse",
		Modules: []string{"lib/json"},
		Seeds:   [][]byte{[]byte(`{"a":1}`)},
	}
	rep, err := shift.Run(cfg, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Execs < 10 {
		t.Fatalf("too few execs: %+v", rep.Stats)
	}
	t.Logf("shift/json: %d execs, %d edges", rep.Stats.Execs, rep.Edges)
}

func TestShiftRejectsOtherOSes(t *testing.T) {
	info, _ := targets.ByName("zephyr")
	cfg := shift.Config{OS: info, Board: boards.STM32H745(), Entry: "json_obj_parse"}
	if _, err := shift.Run(cfg, time.Minute); err == nil {
		t.Fatal("SHiFT ran on a non-FreeRTOS target")
	}
}
