// Package baselines holds the comparison fuzzers of the paper's evaluation —
// Tardis, Gustave, GDBFuzz and SHiFT — each implemented with the capabilities
// and limitations the paper attributes to it, over the same substrates EOF
// runs on. (EOF-nf is simply the core engine with feedback guidance off.)
package baselines

import (
	"encoding/binary"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/emul"
	"github.com/eof-fuzz/eof/internal/wire"
)

// SMDriver drives one test case over a shared-memory (emulator) transport:
// write the program into the guest mailbox, run the VM, and poll the result
// sequence counter — no breakpoints, no fault introspection.
type SMDriver struct {
	VM           *emul.VM
	Collector    *cov.Collector
	Budget       int64
	MaxContinues int
	ExecTimeout  time.Duration

	lastSeq uint32
}

// RunOne executes one marshalled program. completed is false on timeout (the
// only liveness signal an emulator fuzzer without introspection gets);
// fresh counts globally new coverage edges harvested from the guest buffer.
func (d *SMDriver) RunOne(raw []byte) (completed bool, fresh int, err error) {
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	if err := d.VM.WriteMem(d.VM.Layout().MailboxIn, buf); err != nil {
		return false, 0, err
	}
	start := d.VM.Clock.Now()
	for i := 0; i < d.MaxContinues; i++ {
		st, err := d.VM.Continue(d.Budget)
		if err != nil {
			return false, 0, err
		}
		if st.Kind == cpu.StopCovFull {
			n, err := d.DrainCov()
			if err != nil {
				return false, 0, err
			}
			fresh += n
			continue
		}
		// Poll the result block for completion.
		seq, err := d.readSeq()
		if err != nil {
			return false, 0, err
		}
		if seq != d.lastSeq {
			d.lastSeq = seq
			n, err := d.DrainCov()
			if err != nil {
				return false, 0, err
			}
			fresh += n
			return true, fresh, nil
		}
		if d.ExecTimeout > 0 && d.VM.Clock.Now()-start > d.ExecTimeout {
			return false, fresh, nil
		}
	}
	return false, fresh, nil
}

func (d *SMDriver) readSeq() (uint32, error) {
	raw, err := d.VM.ReadMem(d.VM.Layout().MailboxOut, wire.ResultBytes)
	if err != nil {
		return 0, err
	}
	res, err := wire.UnmarshalResult(raw)
	if err != nil {
		return 0, err
	}
	return res.Seq, nil
}

// DrainCov reads, ingests and clears the guest coverage buffer.
func (d *SMDriver) DrainCov() (int, error) {
	lay := d.VM.Layout()
	header, err := d.VM.ReadMem(lay.Cov, 16)
	if err != nil {
		return 0, err
	}
	count := int(binary.LittleEndian.Uint32(header[4:]))
	if count <= 0 || count > (lay.CovBytes-16)/4 {
		return 0, nil
	}
	raw, err := d.VM.ReadMem(lay.Cov+16, count*4)
	if err != nil {
		return 0, err
	}
	entries := make([]uint32, count)
	for i := range entries {
		entries[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	if err := d.VM.WriteMem(lay.Cov+4, []byte{0, 0, 0, 0}); err != nil {
		return 0, err
	}
	return len(d.Collector.Ingest(entries)), nil
}

// ResetAndResync restores the guest from the host image file. The sequence
// counter restarts with the fresh boot.
func (d *SMDriver) ResetAndResync() error {
	d.lastSeq = 0
	return d.VM.Reset()
}

// ScanLogForCrash drains the VM console through the log patterns, recording
// a deduplicated bug into the report on a match. This is the timeout-path
// bug detection emulator fuzzers have.
func ScanLogForCrash(mon *core.LogMonitor, lines []string, sigs map[string]bool, rep *core.Report, progText string, at time.Duration) {
	sig, line, ok := mon.Scan(lines)
	if !ok || sigs[sig] {
		return
	}
	sigs[sig] = true
	kind := "panic"
	if len(line) >= 6 && line[:6] == "ASSERT" {
		kind = "assert"
	}
	rep.Bugs = append(rep.Bugs, &core.BugReport{
		OS:      rep.OS,
		Board:   rep.Board,
		Sig:     sig,
		Title:   "log: " + line,
		Kind:    kind,
		Monitor: "timeout+log",
		Log:     mon.Context(),
		Prog:    progText,
		FoundAt: at,
	})
}
