package baselines

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/vtime"
	"github.com/eof-fuzz/eof/internal/wire"
)

// AppOutcome classifies one application-level execution.
type AppOutcome int

// Outcomes.
const (
	AppCompleted AppOutcome = iota
	AppCrashed
	AppHung
)

// AppRig is a hardware board driven over the debug port for application-
// level fuzzing of a single entry point (the GDBFuzz/SHiFT harness shape):
// one buffer in, one call out, with the instrumentation confined to the
// modules under test for coverage *measurement* regardless of what feedback
// the tool itself consumes.
type AppRig struct {
	OS     *osinfo.Info
	Board  *board.Spec
	Entry  string // entry-point API, takes (buffer, length)
	Init   string // optional one-shot init API
	InitA  []uint64
	Lat    ocd.Latency
	Budget int64

	Clock     *vtime.Clock
	Collector *cov.Collector // measurement collector

	brd      *board.Board
	client   link.Link
	images   *osinfo.Images
	lay      board.Layout
	mainAddr uint64
	entryIdx int
	initIdx  int

	// ExtraBPs are tool-armed breakpoints (GDBFuzz coverage probes); a stop
	// at one is reported via the BPHits channel of the last run.
	ExtraBPs map[uint64]bool
	// LastHits lists extra breakpoints hit during the last RunBuffer.
	LastHits []uint64
	// LastFault carries the fault of the last AppCrashed outcome.
	LastFault *cpu.Fault

	Restores int
}

// NewAppRig builds the rig. covModules confines instrumentation.
func NewAppRig(info *osinfo.Info, spec *board.Spec, entry, init string, initArgs []uint64, covModules []string, lat ocd.Latency) (*AppRig, error) {
	osInfo := info
	if len(covModules) > 0 {
		osInfo = osinfo.WithCovModules(info, covModules)
	}
	entryIdx := osInfo.APIIndex(entry)
	if entryIdx < 0 {
		return nil, fmt.Errorf("baselines: entry API %q unknown", entry)
	}
	initIdx := -1
	if init != "" {
		if initIdx = osInfo.APIIndex(init); initIdx < 0 {
			return nil, fmt.Errorf("baselines: init API %q unknown", init)
		}
	}
	images, err := osInfo.BuildImages(spec, true)
	if err != nil {
		return nil, err
	}
	syms, err := osInfo.SymbolTable(spec)
	if err != nil {
		return nil, err
	}
	table, err := osInfo.PartTable()
	if err != nil {
		return nil, err
	}
	clock := &vtime.Clock{}
	brd, err := board.New(spec, table, osInfo.Builder, clock)
	if err != nil {
		return nil, err
	}
	r := &AppRig{
		OS:        osInfo,
		Board:     spec,
		Entry:     entry,
		Init:      init,
		InitA:     initArgs,
		Lat:       lat,
		Budget:    500_000,
		Clock:     clock,
		Collector: cov.NewCollector(),
		brd:       brd,
		images:    images,
		lay:       board.LayoutFor(spec),
		mainAddr:  syms.Addr(agent.SymExecutorMain),
		entryIdx:  entryIdx,
		initIdx:   initIdx,
		ExtraBPs:  make(map[uint64]bool),
	}
	return r, nil
}

// Setup provisions flash, boots, attaches the probe, runs the init call.
func (r *AppRig) Setup() error {
	tab := r.brd.PartitionTable()
	for _, part := range []struct {
		name string
		data []byte
	}{{"bootloader", r.images.Boot}, {"kernel", r.images.Kernel}} {
		p := tab.Lookup(part.name)
		if p == nil {
			return fmt.Errorf("baselines: partition %q missing", part.name)
		}
		if err := r.brd.Provision(part.name, part.data); err != nil {
			return err
		}
	}
	if err := r.brd.Boot(); err != nil {
		return err
	}
	r.client = ocd.ConnectDirect(ocd.NewServer(r.brd, r.Lat))
	return r.resync()
}

// Close detaches and kills the board.
func (r *AppRig) Close() {
	if r.client != nil {
		r.client.Close()
	}
	if r.brd.State() == board.On {
		r.brd.Core().Kill()
	}
}

// Client exposes the debug link for tool-specific breakpoint management.
func (r *AppRig) Client() link.Link { return r.client }

func (r *AppRig) resync() error {
	if err := r.client.SetBreakpoint(r.mainAddr); err != nil {
		return err
	}
	for addr := range r.ExtraBPs {
		if err := r.client.SetBreakpoint(addr); err != nil {
			break
		}
	}
	// Run to executor_main.
	for i := 0; i < 32; i++ {
		st, err := r.client.Continue(r.Budget)
		if err != nil {
			return err
		}
		if st.Kind == cpu.StopBreakpoint && st.PC == r.mainAddr {
			if r.initIdx >= 0 {
				return r.runInit()
			}
			return nil
		}
		if st.Kind == cpu.StopCovFull {
			if _, err := r.drainCov(); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("baselines: target never reached executor_main")
}

func (r *AppRig) runInit() error {
	args := make([]wire.Arg, len(r.InitA))
	for i, v := range r.InitA {
		args[i] = wire.Arg{Kind: wire.ArgImm, Val: v}
	}
	p := &wire.Prog{Calls: []wire.Call{{API: uint16(r.initIdx), Args: args}}}
	outcome, _, err := r.exec(p, 3*time.Second)
	if err != nil {
		return err
	}
	if outcome != AppCompleted {
		return fmt.Errorf("baselines: init call did not complete")
	}
	return nil
}

// RunBuffer executes entry(buffer, len(buffer)) and returns the outcome plus
// the measured fresh edges.
func (r *AppRig) RunBuffer(buf []byte, timeout time.Duration) (AppOutcome, int, error) {
	if len(buf) > wire.MaxBlob {
		buf = buf[:wire.MaxBlob]
	}
	p := &wire.Prog{Calls: []wire.Call{{
		API: uint16(r.entryIdx),
		Args: []wire.Arg{
			{Kind: wire.ArgBlob, Blob: buf},
			{Kind: wire.ArgImm, Val: uint64(len(buf))},
		},
	}}}
	return r.exec(p, timeout)
}

func (r *AppRig) exec(p *wire.Prog, timeout time.Duration) (AppOutcome, int, error) {
	r.LastHits = r.LastHits[:0]
	r.LastFault = nil
	raw, err := p.Marshal()
	if err != nil {
		return AppHung, 0, err
	}
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	if err := r.client.WriteMem(r.lay.MailboxIn, buf); err != nil {
		if errors.Is(err, ocd.ErrTimeout) {
			return AppHung, 0, r.restore()
		}
		return AppHung, 0, err
	}
	start := r.Clock.Now()
	fresh := 0
	var lastPC uint64
	stall := 0
	for i := 0; i < 256; i++ {
		st, err := r.client.Continue(r.Budget)
		if err != nil {
			if errors.Is(err, ocd.ErrTimeout) {
				return AppHung, fresh, r.restore()
			}
			return AppHung, fresh, err
		}
		switch st.Kind {
		case cpu.StopBreakpoint:
			if st.PC == r.mainAddr {
				n, err := r.drainCov()
				if err != nil {
					return AppHung, fresh, err
				}
				return AppCompleted, fresh + n, nil
			}
			if r.ExtraBPs[st.PC] {
				r.LastHits = append(r.LastHits, st.PC)
				delete(r.ExtraBPs, st.PC)
				if err := r.client.ClearBreakpoint(st.PC); err != nil {
					return AppHung, fresh, err
				}
			}
		case cpu.StopCovFull:
			n, err := r.drainCov()
			if err != nil {
				return AppHung, fresh, err
			}
			fresh += n
		case cpu.StopFault:
			r.LastFault = st.Fault
			return AppCrashed, fresh, r.restore()
		case cpu.StopBudget:
			if st.PC == lastPC {
				stall++
			} else {
				lastPC, stall = st.PC, 0
			}
			if stall >= 2 || r.Clock.Now()-start > timeout {
				return AppHung, fresh, r.restore()
			}
		case cpu.StopExit, cpu.StopKilled:
			return AppHung, fresh, r.restore()
		}
	}
	return AppHung, fresh, r.restore()
}

// restore reboots (reflashing if the image is damaged), re-arms breakpoints
// and re-runs the init call.
func (r *AppRig) restore() error {
	r.Restores++
	if err := r.client.Reset(); err != nil {
		tab := r.brd.PartitionTable()
		for _, part := range []struct {
			name string
			data []byte
		}{{"bootloader", r.images.Boot}, {"kernel", r.images.Kernel}} {
			pt := tab.Lookup(part.name)
			if err := r.client.FlashErase(pt.Offset, pt.Size); err != nil {
				return err
			}
			if err := r.client.FlashWrite(pt.Offset, part.data); err != nil {
				return err
			}
		}
		if err := r.client.Reset(); err != nil {
			return err
		}
	}
	return r.resync()
}

func (r *AppRig) drainCov() (int, error) {
	header, err := r.client.ReadMem(r.lay.Cov, 16)
	if err != nil {
		return 0, err
	}
	count := int(binary.LittleEndian.Uint32(header[4:]))
	if count <= 0 || count > r.Board.CovEntries {
		return 0, nil
	}
	raw, err := r.client.ReadMem(r.lay.Cov+16, count*4)
	if err != nil {
		return 0, err
	}
	entries := make([]uint32, count)
	for i := range entries {
		entries[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	if err := r.client.WriteMem(r.lay.Cov+4, []byte{0, 0, 0, 0}); err != nil {
		return 0, err
	}
	return len(r.Collector.Ingest(entries)), nil
}

// DrainUART exposes console capture for crash attribution.
func (r *AppRig) DrainUART() []string {
	lines, err := r.client.DrainUART()
	if err != nil {
		return nil
	}
	return lines
}
