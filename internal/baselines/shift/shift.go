// Package shift implements the SHiFT baseline: semi-hosted fuzz testing of
// embedded applications on real hardware, with genuine SanCov coverage
// feedback delivered over semihosting traps (cheaper than full GDB round
// trips). Like GDBFuzz it feeds flat byte buffers to an application entry
// point — its advantage over GDBFuzz is real edge feedback, its limits are
// the FreeRTOS-only port and the absence of API awareness.
package shift

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/eof-fuzz/eof/internal/baselines"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
)

// Config parameterises a SHiFT campaign.
type Config struct {
	OS    *osinfo.Info
	Board *board.Spec
	Seed  int64

	Entry    string
	Init     string
	InitArgs []uint64
	Modules  []string
	Seeds    [][]byte

	ExecTimeout time.Duration
	SampleEvery time.Duration
}

// semihostLatency reflects semihosting's lighter per-operation cost.
func semihostLatency() ocd.Latency {
	return ocd.Latency{PerCommand: 18 * time.Millisecond, BytesPerSec: 1024 * 1024}
}

type seed struct {
	data  []byte
	fresh int
}

// Run executes a SHiFT campaign for the virtual-time budget.
func Run(cfg Config, budget time.Duration) (*core.Report, error) {
	if cfg.OS.Name != "freertos" {
		return nil, fmt.Errorf("shift: only the FreeRTOS port exists (got %s)", cfg.OS.Name)
	}
	if cfg.ExecTimeout <= 0 {
		cfg.ExecTimeout = 3 * time.Second
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Minute
	}
	rig, err := baselines.NewAppRig(cfg.OS, cfg.Board, cfg.Entry, cfg.Init, cfg.InitArgs, cfg.Modules, semihostLatency())
	if err != nil {
		return nil, err
	}
	defer rig.Close()
	if err := rig.Setup(); err != nil {
		return nil, err
	}

	rnd := rand.New(rand.NewSource(cfg.Seed ^ 0x5817F7))
	rep := &core.Report{OS: cfg.OS.Name, Board: cfg.Board.Name}
	sigs := make(map[string]bool)
	var corpus []seed
	for _, s := range cfg.Seeds {
		corpus = append(corpus, seed{data: s})
	}

	started := rig.Clock.Now()
	deadline := rig.Clock.DeadlineIn(budget)
	lastSample := started

	for !deadline.Expired(rig.Clock) {
		var input []byte
		if len(corpus) > 0 && rnd.Float64() < 0.85 {
			input = mutate(rnd, corpus[rnd.Intn(len(corpus))].data)
		} else {
			input = random(rnd)
		}
		outcome, fresh, err := rig.RunBuffer(input, cfg.ExecTimeout)
		if err != nil {
			return nil, err
		}
		rep.Stats.Execs++
		switch outcome {
		case baselines.AppCompleted:
			if fresh > 0 {
				corpus = append(corpus, seed{data: input, fresh: fresh})
				if len(corpus) > 256 {
					corpus = corpus[1:]
				}
			}
		case baselines.AppCrashed:
			rep.Stats.Crashes++
			rep.Stats.Restores++
			f := rig.LastFault
			sig := "halt"
			title := "target halted with fault"
			if f != nil {
				sig = fmt.Sprintf("%v@%x", f.Kind, f.PC)
				title = fmt.Sprintf("%v: %s", f.Kind, f.Msg)
			}
			if !sigs[sig] {
				sigs[sig] = true
				rep.Bugs = append(rep.Bugs, &core.BugReport{
					OS: rep.OS, Board: rep.Board, Sig: sig, Title: title,
					Kind: "panic", Monitor: "semihost-fault", Fault: f,
					FoundAt: rig.Clock.Now() - started,
				})
			}
		case baselines.AppHung:
			rep.Stats.Restores++
		}
		if rig.Clock.Now()-lastSample >= cfg.SampleEvery {
			lastSample = rig.Clock.Now()
			rep.Series = append(rep.Series, core.CoverSample{At: rig.Clock.Now() - started, Edges: rig.Collector.Total()})
		}
	}
	rep.Edges = rig.Collector.Total()
	rep.Stats.Restores += rig.Restores
	rep.Duration = rig.Clock.Now() - started
	rep.Series = append(rep.Series, core.CoverSample{At: rep.Duration, Edges: rep.Edges})
	return rep, nil
}

func random(rnd *rand.Rand) []byte {
	n := 1 + rnd.Intn(128)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rnd.Intn(256))
	}
	return b
}

func mutate(rnd *rand.Rand, in []byte) []byte {
	b := append([]byte(nil), in...)
	if len(b) == 0 {
		return random(rnd)
	}
	for ops := 1 + rnd.Intn(4); ops > 0; ops-- {
		switch rnd.Intn(4) {
		case 0:
			b[rnd.Intn(len(b))] ^= byte(1 << uint(rnd.Intn(8)))
		case 1:
			b[rnd.Intn(len(b))] = byte(rnd.Intn(256))
		case 2:
			if len(b) < 1024 {
				i := rnd.Intn(len(b) + 1)
				b = append(b[:i], append([]byte{byte(rnd.Intn(256))}, b[i:]...)...)
			}
		case 3:
			if len(b) > 1 {
				i := rnd.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			}
		}
	}
	return b
}
