package cpu

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/vtime"
)

func newCore() (*vtime.Clock, *Core) {
	clock := &vtime.Clock{}
	return clock, New(clock, DefaultConfig())
}

// linearFirmware steps through addrs repeatedly until killed.
func linearFirmware(c *Core, addrs []uint64) func() {
	return func() {
		for {
			for _, a := range addrs {
				c.Step(a)
			}
		}
	}
}

func TestBreakpointStopAndResume(t *testing.T) {
	_, c := newCore()
	c.Start(linearFirmware(c, []uint64{0x100, 0x104, 0x108}))
	if err := c.SetBreakpoint(0x108); err != nil {
		t.Fatal(err)
	}
	st := c.Continue(1_000_000)
	if st.Kind != StopBreakpoint || st.PC != 0x108 {
		t.Fatalf("stop = %+v", st)
	}
	// Resume: should come back around to the same breakpoint.
	st = c.Continue(1_000_000)
	if st.Kind != StopBreakpoint || st.PC != 0x108 {
		t.Fatalf("second stop = %+v", st)
	}
	c.ClearBreakpoint(0x108)
	st = c.Continue(100)
	if st.Kind != StopBudget {
		t.Fatalf("after clear, stop = %+v", st)
	}
	c.Kill()
}

func TestBudgetStopStablePC(t *testing.T) {
	_, c := newCore()
	// Single-block spin: the stall signature.
	c.Start(linearFirmware(c, []uint64{0x200}))
	st1 := c.Continue(1000)
	st2 := c.Continue(1000)
	if st1.Kind != StopBudget || st2.Kind != StopBudget {
		t.Fatalf("stops = %v, %v", st1.Kind, st2.Kind)
	}
	if st1.PC != st2.PC {
		t.Fatalf("spin PC moved: %#x -> %#x", st1.PC, st2.PC)
	}
	c.Kill()
}

func TestFaultStop(t *testing.T) {
	_, c := newCore()
	c.Start(func() {
		c.Step(0x300)
		c.RaiseFault(&Fault{Kind: FaultBus, Msg: "boom"})
		// After resume, wedge.
		for {
			c.Idle(0x304, 100)
		}
	})
	st := c.Continue(1_000_000)
	if st.Kind != StopFault || st.Fault == nil || st.Fault.Msg != "boom" {
		t.Fatalf("stop = %+v", st)
	}
	if st.Fault.PC != 0x300 {
		t.Fatalf("fault PC = %#x", st.Fault.PC)
	}
	st = c.Continue(500)
	if st.Kind != StopBudget || st.PC != 0x304 {
		t.Fatalf("post-fault stop = %+v", st)
	}
	c.Kill()
}

func TestKillWhileParked(t *testing.T) {
	_, c := newCore()
	c.Start(linearFirmware(c, []uint64{0x400}))
	c.Continue(10)
	c.Kill()
	if !c.Dead() {
		t.Fatal("core alive after kill")
	}
	st := c.Continue(10)
	if st.Kind != StopExit {
		t.Fatalf("continue after kill = %+v", st)
	}
	// Double kill is safe.
	c.Kill()
}

func TestKillBeforeFirstContinue(t *testing.T) {
	_, c := newCore()
	c.Start(linearFirmware(c, []uint64{0x500}))
	c.Kill()
	if !c.Dead() {
		t.Fatal("core alive")
	}
}

func TestExit(t *testing.T) {
	_, c := newCore()
	c.Start(func() { c.Step(0x600) })
	st := c.Continue(1000)
	if st.Kind != StopExit {
		t.Fatalf("stop = %+v", st)
	}
	if !c.Dead() {
		t.Fatal("not dead after exit")
	}
}

func TestClockAdvancesWithSteps(t *testing.T) {
	clock, c := newCore()
	c.Start(linearFirmware(c, []uint64{0x700, 0x704}))
	c.Continue(1000)
	// 1000 blocks, each charged per-step: 6 cycles at 160MHz truncates to 37ns.
	perStep := vtime.CycleModel{HZ: 160_000_000}.Duration(6)
	want := 1000 * perStep
	if got := clock.Now(); got != want {
		t.Fatalf("clock = %v, want %v", got, want)
	}
	if c.TotalBlocks() != 1000 {
		t.Fatalf("blocks = %d", c.TotalBlocks())
	}
	c.Kill()
}

func TestInstrumentationCostAndCovHook(t *testing.T) {
	clock, c := newCore()
	c.SetInstrumented(true)
	var hits int
	full := false
	c.SetCovHook(func(pc uint64) bool {
		hits++
		return full
	}, 0xFFF0)
	c.Start(linearFirmware(c, []uint64{0x800}))
	c.Continue(100)
	if hits != 100 {
		t.Fatalf("cov hook hits = %d", hits)
	}
	want := 100 * vtime.CycleModel{HZ: 160_000_000}.Duration(8)
	if got := clock.Now(); got != want {
		t.Fatalf("instrumented clock = %v, want %v", got, want)
	}
	// Trigger a buffer-full trap.
	full = true
	st := c.Continue(100)
	if st.Kind != StopCovFull || st.PC != 0xFFF0 {
		t.Fatalf("cov-full stop = %+v", st)
	}
	full = false
	st = c.Continue(100)
	if st.Kind != StopBudget || st.PC != 0x800 {
		t.Fatalf("resume after trap = %+v", st)
	}
	c.Kill()
}

func TestBreakpointLimit(t *testing.T) {
	_, c := newCore()
	max := c.MaxBreakpoints()
	for i := 0; i < max; i++ {
		if err := c.SetBreakpoint(uint64(0x1000 + i*4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetBreakpoint(0x9000); err == nil {
		t.Fatal("exceeded breakpoint limit silently")
	}
	// Re-arming an existing breakpoint is free.
	if err := c.SetBreakpoint(0x1000); err != nil {
		t.Fatal(err)
	}
	c.ClearBreakpoint(0x1000)
	if err := c.SetBreakpoint(0x9000); err != nil {
		t.Fatal(err)
	}
	if c.BreakpointCount() != max {
		t.Fatalf("count = %d", c.BreakpointCount())
	}
	c.ClearAllBreakpoints()
	if c.BreakpointCount() != 0 {
		t.Fatal("clear-all left breakpoints")
	}
}

func TestIdleRespectsBudget(t *testing.T) {
	_, c := newCore()
	c.Start(func() {
		for {
			c.Idle(0xA00, 1<<20)
		}
	})
	st := c.Continue(100)
	if st.Kind != StopBudget || st.PC != 0xA00 {
		t.Fatalf("idle stop = %+v", st)
	}
	c.Kill()
}

func TestStopKindStrings(t *testing.T) {
	kinds := []StopKind{StopBreakpoint, StopFault, StopBudget, StopCovFull, StopExit, StopKilled}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	faults := []FaultKind{FaultBus, FaultUsage, FaultMemManage, FaultHard, FaultPanic}
	for _, k := range faults {
		if k.String() == "" {
			t.Fatal("empty fault name")
		}
	}
}
