// Package cpu implements the virtual CPU core of the simulated MCU.
//
// The target firmware runs on its own goroutine with a strict ping-pong
// handoff to the host: the debug client's Continue resumes the target, which
// executes basic blocks until a stop event — breakpoint hit, fault, stall
// budget exhausted, or coverage-buffer-full trap — then parks. Exactly one
// side runs at any moment, so the simulation is deterministic while still
// giving the host real debugger semantics: resumable breakpoints, halted
// memory access, and a program counter whose movement (or lack of it) drives
// the paper's PC-stall liveness watchdog (Algorithm 1).
package cpu

import (
	"fmt"
	"sort"
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

// StopKind classifies why the core halted and returned control to the host.
type StopKind int

// Stop reasons.
const (
	// StopBreakpoint: the PC reached an address with a breakpoint set.
	StopBreakpoint StopKind = iota
	// StopFault: the core took a fault (details in Stop.Fault).
	StopFault
	// StopBudget: the continue's step budget ran out before any other stop;
	// with an unchanged PC across continues this is the stall signature.
	StopBudget
	// StopCovFull: the coverage runtime trapped because its buffer filled.
	StopCovFull
	// StopExit: firmware main returned (target dead until reset).
	StopExit
	// StopKilled: the core was killed by reset while parked.
	StopKilled
)

func (k StopKind) String() string {
	switch k {
	case StopBreakpoint:
		return "breakpoint"
	case StopFault:
		return "fault"
	case StopBudget:
		return "budget"
	case StopCovFull:
		return "cov-full"
	case StopExit:
		return "exit"
	case StopKilled:
		return "killed"
	default:
		return fmt.Sprintf("StopKind(%d)", int(k))
	}
}

// FaultKind classifies hardware-level faults, mirroring Cortex-M fault
// classes plus an explicit kernel panic.
type FaultKind int

// Fault kinds.
const (
	FaultBus FaultKind = iota
	FaultUsage
	FaultMemManage
	FaultHard
	FaultPanic
)

func (k FaultKind) String() string {
	switch k {
	case FaultBus:
		return "BusFault"
	case FaultUsage:
		return "UsageFault"
	case FaultMemManage:
		return "MemManage"
	case FaultHard:
		return "HardFault"
	case FaultPanic:
		return "KernelPanic"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Frame is one backtrace entry, in the style of the paper's Figure 6 report.
type Frame struct {
	File string
	Func string
	Line int
}

func (f Frame) String() string {
	return fmt.Sprintf("%s : %s : %d", f.File, f.Func, f.Line)
}

// Fault carries everything the exception monitor reports about a crash.
type Fault struct {
	Kind   FaultKind
	PC     uint64
	Msg    string
	Frames []Frame
}

func (f *Fault) String() string {
	return fmt.Sprintf("%v at %#x: %s", f.Kind, f.PC, f.Msg)
}

// Stop is the event returned to the host when the core halts.
type Stop struct {
	Kind  StopKind
	PC    uint64
	Fault *Fault
}

// killSignal is panicked through the firmware stack when the host resets the
// board while the target is parked; the run-loop recover turns it into exit.
type killSignal struct{}

type resumeMsg struct {
	kill   bool
	budget int64
}

// Config sets the core's timing and debug-resource parameters.
type Config struct {
	// Model converts cycles to virtual time.
	Model vtime.CycleModel
	// CyclesPerBlock is the cost of executing one basic block.
	CyclesPerBlock uint64
	// InstrCycles is the extra per-block cost when instrumentation is on.
	InstrCycles uint64
	// MaxBreakpoints bounds hardware breakpoints, as real debug units do.
	MaxBreakpoints int
}

// DefaultConfig matches a mid-range Cortex-M-class part.
func DefaultConfig() Config {
	return Config{
		Model:          vtime.CycleModel{HZ: 160_000_000},
		CyclesPerBlock: 6,
		InstrCycles:    2,
		MaxBreakpoints: 8,
	}
}

// Core is the virtual CPU. Host-side methods (Continue, Kill, breakpoints)
// and target-side methods (Step, RaiseFault, TrapCovFull) must be called from
// their respective sides of the handoff.
type Core struct {
	cfg   Config
	clock *vtime.Clock

	pc        uint64
	bps       map[uint64]struct{}
	instrOn   bool
	covHook   func(pc uint64) (bufFull bool)
	covTrapPC uint64

	resume  chan resumeMsg
	stopped chan Stop
	budget  int64
	started bool
	dead    bool

	// Cached per-block time costs (divisions are too hot for Step).
	durPlain time.Duration
	durInstr time.Duration

	totalBlocks uint64
	totalCycles uint64
}

// New creates a halted core bound to the clock.
func New(clock *vtime.Clock, cfg Config) *Core {
	if cfg.MaxBreakpoints <= 0 {
		cfg.MaxBreakpoints = 8
	}
	if cfg.CyclesPerBlock == 0 {
		cfg.CyclesPerBlock = 6
	}
	return &Core{
		cfg:      cfg,
		clock:    clock,
		bps:      make(map[uint64]struct{}),
		resume:   make(chan resumeMsg),
		stopped:  make(chan Stop),
		durPlain: cfg.Model.Duration(cfg.CyclesPerBlock),
		durInstr: cfg.Model.Duration(cfg.CyclesPerBlock + cfg.InstrCycles),
	}
}

// SetInstrumented switches the per-block instrumentation cost and coverage
// hook on or off (set at boot from the image header).
func (c *Core) SetInstrumented(on bool) { c.instrOn = on }

// Instrumented reports whether instrumentation is active.
func (c *Core) Instrumented() bool { return c.instrOn }

// SetCovHook installs the coverage runtime callback; trapPC is the address
// reported when the hook requests a buffer-full trap (the agent's
// _kcmp_buf_full symbol).
func (c *Core) SetCovHook(hook func(pc uint64) bool, trapPC uint64) {
	c.covHook = hook
	c.covTrapPC = trapPC
}

// PC returns the program counter as of the last stop.
func (c *Core) PC() uint64 { return c.pc }

// TotalBlocks returns the number of basic blocks executed since creation.
func (c *Core) TotalBlocks() uint64 { return c.totalBlocks }

// TotalCycles returns the cycles consumed since creation.
func (c *Core) TotalCycles() uint64 { return c.totalCycles }

// SetBreakpoint arms a hardware breakpoint; it fails when the debug unit's
// comparators are exhausted.
func (c *Core) SetBreakpoint(addr uint64) error {
	if _, ok := c.bps[addr]; ok {
		return nil
	}
	if len(c.bps) >= c.cfg.MaxBreakpoints {
		return fmt.Errorf("cpu: all %d hardware breakpoints in use", c.cfg.MaxBreakpoints)
	}
	c.bps[addr] = struct{}{}
	return nil
}

// ClearBreakpoint disarms a breakpoint (no-op when absent).
func (c *Core) ClearBreakpoint(addr uint64) { delete(c.bps, addr) }

// ClearAllBreakpoints removes every breakpoint (debugger detach).
func (c *Core) ClearAllBreakpoints() { c.bps = make(map[uint64]struct{}) }

// BreakpointCount returns the number of armed breakpoints.
func (c *Core) BreakpointCount() int { return len(c.bps) }

// Breakpoints returns the armed breakpoint addresses in ascending order, so
// a snapshot can record and later re-arm the comparator bank.
func (c *Core) Breakpoints() []uint64 {
	out := make([]uint64, 0, len(c.bps))
	for a := range c.bps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxBreakpoints returns the size of the debug unit's comparator bank.
func (c *Core) MaxBreakpoints() int { return c.cfg.MaxBreakpoints }

// Start launches the firmware entry point on the target goroutine. The
// target does not run until the first Continue.
func (c *Core) Start(entry func()) {
	if c.started {
		panic("cpu: Start called twice")
	}
	c.started = true
	go func() {
		msg := <-c.resume
		if msg.kill {
			c.stopped <- Stop{Kind: StopKilled, PC: c.pc}
			return
		}
		c.budget = msg.budget
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); ok {
					c.stopped <- Stop{Kind: StopKilled, PC: c.pc}
					return
				}
				panic(r) // real bug in the simulator, propagate loudly
			}
		}()
		entry()
		c.stopped <- Stop{Kind: StopExit, PC: c.pc}
	}()
}

// Continue resumes the target with a step budget and blocks until it stops.
// Calling Continue on a dead core returns StopExit immediately.
func (c *Core) Continue(budget int64) Stop {
	if !c.started || c.dead {
		return Stop{Kind: StopExit, PC: c.pc}
	}
	c.resume <- resumeMsg{budget: budget}
	st := <-c.stopped
	if st.Kind == StopExit || st.Kind == StopKilled {
		c.dead = true
	}
	return st
}

// Kill terminates a started core (board reset while halted). Safe to call on
// an unstarted or dead core.
func (c *Core) Kill() {
	if !c.started || c.dead {
		c.dead = true
		return
	}
	c.resume <- resumeMsg{kill: true}
	<-c.stopped
	c.dead = true
}

// Dead reports whether the target goroutine has exited.
func (c *Core) Dead() bool { return c.dead }

// park halts the target and waits for the next resume; called on the target
// goroutine only.
func (c *Core) park(st Stop) {
	c.stopped <- st
	msg := <-c.resume
	if msg.kill {
		panic(killSignal{})
	}
	c.budget = msg.budget
}

// Step executes one basic block at addr: advances the clock, feeds the
// coverage hook, honours breakpoints and the step budget. Called by
// instrumented kernel code on the target goroutine.
func (c *Core) Step(addr uint64) {
	c.pc = addr
	if c.instrOn {
		c.totalCycles += c.cfg.CyclesPerBlock + c.cfg.InstrCycles
		c.clock.Advance(c.durInstr)
	} else {
		c.totalCycles += c.cfg.CyclesPerBlock
		c.clock.Advance(c.durPlain)
	}
	c.totalBlocks++

	if c.instrOn && c.covHook != nil {
		if full := c.covHook(addr); full {
			saved := c.pc
			c.pc = c.covTrapPC
			c.park(Stop{Kind: StopCovFull, PC: c.covTrapPC})
			c.pc = saved
		}
	}
	if _, hit := c.bps[addr]; hit {
		c.park(Stop{Kind: StopBreakpoint, PC: addr})
		return
	}
	if c.budget--; c.budget <= 0 {
		c.park(Stop{Kind: StopBudget, PC: addr})
	}
}

// RaiseFault reports a fault to the host and parks. On resume the target
// continues from the fault site; kernels typically spin afterwards, which the
// stall watchdog observes. Called on the target goroutine.
func (c *Core) RaiseFault(f *Fault) {
	if f.PC == 0 {
		f.PC = c.pc
	}
	c.park(Stop{Kind: StopFault, PC: f.PC, Fault: f})
}

// Idle burns n blocks' worth of time without touching coverage — the idle
// task and busy-wait loops use it so hangs consume virtual time and exhaust
// the budget at a stable PC. Blocks are charged in bulk up to the budget
// boundary, which keeps multi-thousand-block spins cheap to simulate.
func (c *Core) Idle(addr uint64, n int64) {
	c.pc = addr
	for n > 0 {
		steps := n
		if c.budget < steps {
			steps = c.budget
		}
		if steps > 0 {
			c.totalCycles += uint64(steps) * c.cfg.CyclesPerBlock
			c.clock.Advance(time.Duration(steps) * c.durPlain)
			c.budget -= steps
			n -= steps
		}
		if c.budget <= 0 {
			c.park(Stop{Kind: StopBudget, PC: addr})
		}
	}
}
