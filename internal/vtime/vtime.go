// Package vtime provides the virtual clock that every simulated hardware
// component advances against. All campaign durations in this repository
// (payloads per 10 minutes, coverage-vs-hours curves) are measured in virtual
// time, which advances deterministically with executed target cycles and
// debug-link operations rather than with the host wall clock.
package vtime

import (
	"fmt"
	"time"
)

// Clock is a monotonic virtual clock. The zero value is a clock at time zero.
// Clock is not safe for concurrent use; the simulation's strict-handoff
// execution model guarantees a single running goroutine at a time.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from boot of the
// simulation (not of the target board; boards keep their own uptime).
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so a
// miscomputed latency can never move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Deadline is a point in virtual time, used by watchdogs and campaign budgets.
type Deadline struct {
	at    time.Duration
	valid bool
}

// DeadlineIn returns a deadline d from the clock's current time.
func (c *Clock) DeadlineIn(d time.Duration) Deadline {
	return Deadline{at: c.now + d, valid: true}
}

// Expired reports whether the deadline has passed on clock c. The zero
// Deadline never expires.
func (d Deadline) Expired(c *Clock) bool {
	return d.valid && c.now >= d.at
}

// Remaining returns the time left until the deadline, or zero if expired or
// invalid.
func (d Deadline) Remaining(c *Clock) time.Duration {
	if !d.valid || c.now >= d.at {
		return 0
	}
	return d.at - c.now
}

// CycleModel converts CPU cycles to virtual time for a core clocked at HZ.
type CycleModel struct {
	// HZ is the core frequency in cycles per second.
	HZ uint64
}

// Duration returns the virtual time consumed by n cycles.
func (m CycleModel) Duration(n uint64) time.Duration {
	if m.HZ == 0 {
		return 0
	}
	// Split to avoid overflow for large n: seconds part plus remainder.
	secs := n / m.HZ
	rem := n % m.HZ
	return time.Duration(secs)*time.Second +
		time.Duration(rem*uint64(time.Second)/m.HZ)
}

// Cycles returns the number of cycles that elapse in d.
func (m CycleModel) Cycles(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d) * m.HZ / uint64(time.Second)
}

func (m CycleModel) String() string {
	switch {
	case m.HZ >= 1e6 && m.HZ%1e6 == 0:
		return fmt.Sprintf("%dMHz", m.HZ/1e6)
	case m.HZ >= 1e3 && m.HZ%1e3 == 0:
		return fmt.Sprintf("%dkHz", m.HZ/1e3)
	default:
		return fmt.Sprintf("%dHz", m.HZ)
	}
}
