package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", got)
	}
	c.Advance(-time.Hour)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestDeadline(t *testing.T) {
	var c Clock
	d := c.DeadlineIn(10 * time.Millisecond)
	if d.Expired(&c) {
		t.Fatal("deadline expired immediately")
	}
	if got := d.Remaining(&c); got != 10*time.Millisecond {
		t.Fatalf("Remaining = %v", got)
	}
	c.Advance(10 * time.Millisecond)
	if !d.Expired(&c) {
		t.Fatal("deadline not expired at its time")
	}
	if got := d.Remaining(&c); got != 0 {
		t.Fatalf("Remaining after expiry = %v", got)
	}
	var zero Deadline
	c.Advance(time.Hour)
	if zero.Expired(&c) {
		t.Fatal("zero deadline expired")
	}
}

func TestCycleModelRoundTrip(t *testing.T) {
	m := CycleModel{HZ: 160_000_000}
	if d := m.Duration(160_000_000); d != time.Second {
		t.Fatalf("1s of cycles = %v", d)
	}
	if n := m.Cycles(time.Second); n != 160_000_000 {
		t.Fatalf("cycles in 1s = %d", n)
	}
	if d := m.Duration(16); d != 100*time.Nanosecond {
		t.Fatalf("16 cycles = %v", d)
	}
}

func TestCycleModelLargeNoOverflow(t *testing.T) {
	m := CycleModel{HZ: 1_000_000_000}
	// 10^15 cycles at 1GHz = 10^6 seconds; naive n*1e9 would overflow.
	if d := m.Duration(1e15); d != 1_000_000*time.Second {
		t.Fatalf("large duration = %v", d)
	}
}

func TestCycleModelMonotone(t *testing.T) {
	m := CycleModel{HZ: 48_000_000}
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return m.Duration(x) <= m.Duration(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCycleModelString(t *testing.T) {
	for _, tc := range []struct {
		hz   uint64
		want string
	}{
		{160_000_000, "160MHz"},
		{48_000, "48kHz"},
		{7, "7Hz"},
	} {
		if got := (CycleModel{HZ: tc.hz}).String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.hz, got, tc.want)
		}
	}
}
