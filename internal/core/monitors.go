package core

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/trace"
)

// BugReport is one deduplicated finding.
type BugReport struct {
	OS      string
	Board   string
	Sig     string // raw signature as the monitor saw it
	Title   string
	Kind    string // "panic" or "assert"
	Monitor string // "exception" or "log"
	Fault   *cpu.Fault
	Log     []string
	Prog    string
	// Tier is the capability class of the substrate that found the bug
	// ("hw" or "emul"). Emulation-tier findings are provisional: a merged
	// fleet report only lists them once hardware confirmed the crash, and
	// records a TierDivergence otherwise.
	Tier    string
	FoundAt time.Duration
	// Trace is the flight recorder: the last trace events leading up to
	// detection, oldest first.
	Trace []trace.Event

	// Cluster is the normalized dedup key (frame hash for faults,
	// canonicalized needle for asserts); reports with equal clusters are
	// the same bug.
	Cluster string
	// Triage outcome, filled when the pipeline ran: Reproducibility is
	// stable / flaky / unreproducible after Replays confirmation runs
	// (ReplayHits of which reproduced); OrigCalls / MinCalls record the
	// minimization ratio; Repro is the minimal program in the JSON form.
	Reproducibility string
	ReplayHits      int
	Replays         int
	OrigCalls       int
	MinCalls        int
	Repro           string
}

// crashPatterns are the log monitor's regular expressions (§4.5.2: "output
// matching the defined patterns is considered indicative of a crash").
var crashPatterns = []*regexp.Regexp{
	regexp.MustCompile(`ASSERT failed: \(([^)]*)\)`),
	regexp.MustCompile(`\*\*\* (KernelPanic|BusFault|UsageFault|MemManage|HardFault): (.*)`),
	regexp.MustCompile(`(?i)kernel panic`),
	regexp.MustCompile(`(?i)oops:`),
}

// LogMonitor scans the UART stream for crash signatures.
type LogMonitor struct {
	recent []string // rolling context window for reports
}

// logWindow bounds the retained context lines.
const logWindow = 24

// Scan feeds drained UART lines through the pattern set; it returns the
// first match as (signature, matchedLine) or ok=false.
func (m *LogMonitor) Scan(lines []string) (sig, line string, ok bool) {
	for _, l := range lines {
		m.recent = append(m.recent, l)
		if len(m.recent) > logWindow {
			m.recent = m.recent[len(m.recent)-logWindow:]
		}
		if ok {
			continue // keep accumulating context, report the first hit
		}
		for _, re := range crashPatterns {
			match := re.FindStringSubmatch(l)
			if match == nil {
				continue
			}
			switch len(match) {
			case 2:
				sig = "assert:" + match[1]
			case 3:
				sig = match[1] + ":" + truncateSig(match[2])
			default:
				sig = "log:" + truncateSig(l)
			}
			line = l
			ok = true
			break
		}
	}
	return sig, line, ok
}

// Context returns the recent log window for crash reports.
func (m *LogMonitor) Context() []string {
	out := make([]string, len(m.recent))
	copy(out, m.recent)
	return out
}

// truncateSig normalises a message into a stable signature: the part before
// numbers start to vary.
func truncateSig(msg string) string {
	msg = strings.TrimSpace(msg)
	// Keep the function-ish prefix: "name: description" up to punctuation
	// that tends to precede variable data.
	if i := strings.IndexAny(msg, "(0123456789"); i > 0 {
		msg = strings.TrimRight(msg[:i], " :=")
	}
	if len(msg) > 80 {
		msg = msg[:80]
	}
	return msg
}

// faultSig builds the exception monitor's dedup signature from the fault
// status block: class plus the innermost frame.
func faultSig(f *cpu.Fault) string {
	top := "?"
	if len(f.Frames) > 0 {
		top = f.Frames[0].Func
	}
	return fmt.Sprintf("%v@%s", f.Kind, top)
}

// faultTitle renders a human title for a fault report.
func faultTitle(f *cpu.Fault) string {
	top := "unknown"
	if len(f.Frames) > 0 {
		top = f.Frames[0].Func
	}
	return fmt.Sprintf("%v in %s: %s", f.Kind, top, truncateSig(f.Msg))
}
