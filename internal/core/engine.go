package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/fsb"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/specgen"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/syzlang"
	"github.com/eof-fuzz/eof/internal/trace"
	"github.com/eof-fuzz/eof/internal/triage"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// CoverSample is one point of the coverage-over-time series (Figures 7/8).
type CoverSample struct {
	At    time.Duration
	Edges int
}

// Stats aggregates campaign counters.
type Stats struct {
	Execs               int
	ExecFailures        int // deserialisation/infrastructure failures
	Crashes             int
	Restores            int
	Reflashes           int
	StallResets         int
	TimeoutResets       int
	ExecTimeoutResets   int
	ManualInterventions int // watchdog-less livelocks broken by the hard cap
	CovFullTraps        int
	// DegradedMonitors counts exception symbols left unarmed because the
	// board ran out of breakpoint comparators; the engine silently degrades
	// to log/stall detection for them, and this counter makes the
	// degradation visible in reports.
	DegradedMonitors int
	// RestoresByReason breaks Restores down by trigger ("crash", "fault",
	// "timeout", "pc-stall", "exec-timeout", ...).
	RestoresByReason map[string]int
	// RungEscalations counts recovery-ladder climbs past the first rung: a
	// restore that a plain reset did not satisfy. PowerCycles counts the
	// ladder reaching its most expensive rung.
	RungEscalations int
	PowerCycles     int
	// LinkOps is the number of debug-link round trips the campaign issued
	// (including retried attempts); LinkOps/Execs is the per-exec transport
	// cost the vectored commands cut.
	LinkOps int64
	// LinkRetries counts commands the session layer transparently re-sent
	// after a transient link fault (dropped or corrupt frame).
	LinkRetries int64
	// LinkReconnects counts link deaths the session layer recovered from:
	// adapter revived, breakpoints re-armed, capability latch refreshed.
	LinkReconnects int64
	// TriageReplays counts program re-executions spent confirming and
	// minimizing findings; they are not Execs, and their board time lands
	// in the triaging bucket. TriagedBugs counts findings that completed
	// the pipeline.
	TriageReplays int
	TriagedBugs   int
	// ConfirmReplays counts cross-tier confirmation re-executions this
	// (hardware) engine ran on behalf of emulation shards; like triage
	// replays they are not Execs, and their board time lands in the
	// confirming bucket.
	ConfirmReplays int
	// DeltaRestores counts restores satisfied by the snapshot rung (one
	// vRestore round trip shipping only dirty state); FullRestores counts
	// restores that went through the classic reset/reflash ladder.
	// DeltaRestores + FullRestores == Restores always holds.
	DeltaRestores int
	FullRestores  int
	// SnapshotTakes counts golden snapshots cached probe-side.
	SnapshotTakes int
	// RestoreBytesShipped and RestoreBytesSkipped total the delta-restore
	// bytes actually re-shipped vs proven clean and left in place.
	RestoreBytesShipped int64
	RestoreBytesSkipped int64
}

// addRestoreReason records one restore attributed to reason.
func (s *Stats) addRestoreReason(reason string) {
	if s.RestoresByReason == nil {
		s.RestoresByReason = make(map[string]int)
	}
	s.RestoresByReason[reason]++
}

// RestoreReasons renders the per-reason restore counts as a stable
// "reason=count" list, sorted by reason, for tables and CSV cells.
func (s *Stats) RestoreReasons() string {
	if len(s.RestoresByReason) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(s.RestoresByReason))
	for k := range s.RestoresByReason {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, s.RestoresByReason[k])
	}
	return out
}

// Merge accumulates o into s (fleet report aggregation).
func (s *Stats) Merge(o Stats) {
	s.Execs += o.Execs
	s.ExecFailures += o.ExecFailures
	s.Crashes += o.Crashes
	s.Restores += o.Restores
	s.Reflashes += o.Reflashes
	s.StallResets += o.StallResets
	s.TimeoutResets += o.TimeoutResets
	s.ExecTimeoutResets += o.ExecTimeoutResets
	s.ManualInterventions += o.ManualInterventions
	s.CovFullTraps += o.CovFullTraps
	s.DegradedMonitors += o.DegradedMonitors
	s.RungEscalations += o.RungEscalations
	s.PowerCycles += o.PowerCycles
	s.LinkOps += o.LinkOps
	s.LinkRetries += o.LinkRetries
	s.LinkReconnects += o.LinkReconnects
	s.TriageReplays += o.TriageReplays
	s.TriagedBugs += o.TriagedBugs
	s.ConfirmReplays += o.ConfirmReplays
	s.DeltaRestores += o.DeltaRestores
	s.FullRestores += o.FullRestores
	s.SnapshotTakes += o.SnapshotTakes
	s.RestoreBytesShipped += o.RestoreBytesShipped
	s.RestoreBytesSkipped += o.RestoreBytesSkipped
	for k, v := range o.RestoresByReason {
		if s.RestoresByReason == nil {
			s.RestoresByReason = make(map[string]int)
		}
		s.RestoresByReason[k] += v
	}
}

// Report is a finished campaign's outcome.
type Report struct {
	OS       string
	Board    string
	Stats    Stats
	Edges    int
	Bugs     []*BugReport
	Series   []CoverSample
	Duration time.Duration
	// LinkPerCmd is the metrics layer's per-command round-trip accounting
	// (counts and virtual-latency histograms), sorted by command name.
	LinkPerCmd []link.CmdStat
	// TimeBy breaks the board-time budget into executing / restoring /
	// reflashing / link-overhead / sync-barrier. For a solo engine it sums
	// to Duration exactly; a merged fleet report sums shard board time
	// (Shards x the pool's wall-clock Duration).
	TimeBy trace.TimeBy
	// Health is the board's final health record. A merged fleet report
	// carries the pool's sickest board here; BoardHealth lists every
	// activated board in physical order (nil for solo reports).
	Health      Health
	BoardHealth []Health
	// Quarantines lists the boards the fleet supervisor retired (empty for
	// solo campaigns and healthy fleets).
	Quarantines []Quarantine
	// Tiers summarises each capability tier of a heterogeneous fleet in
	// display order (hw first); nil for solo campaigns and tiers-off fleets.
	Tiers []TierStats
	// Divergences lists every cross-tier disagreement the confirmation
	// pipeline recorded: emulation-claimed coverage or crashes the hardware
	// tier could not reproduce, and crashes only the hardware replay hit.
	Divergences []TierDivergence
}

// TierStats summarises one capability tier of a heterogeneous fleet.
type TierStats struct {
	// Class is the tier's capability class ("hw" or "emul").
	Class string
	// Boards is how many boards the tier activated (including promoted
	// spares and the triage board for the hardware tier).
	Boards int
	// Execs / Edges are the tier's test-case and distinct-edge totals; the
	// emulation tier's edge set is provisional until confirmed.
	Execs int
	Edges int
	// TimeBy sums the tier's board-time budgets.
	TimeBy trace.TimeBy
	// Series is the tier's coverage growth sampled at epoch barriers, so
	// the tiers' discovery rates compare on a common timeline.
	Series []CoverSample
	// ConfirmReplays / Confirmed / Diverged summarise the confirmation
	// pipeline from this tier's perspective: the hardware tier counts
	// replays it ran, the emulation tier counts its items' verdicts.
	ConfirmReplays int
	Confirmed      int
	Diverged       int
}

// TierDivergence is one cross-tier disagreement, promoted to a first-class
// finding on the merged report: what one substrate observed, the other did
// not reproduce.
type TierDivergence struct {
	// Kind is "emul-only-cov" (claimed fresh edges the hardware replay did
	// not execute), "emul-only-crash" (an emulation crash the hardware
	// replay did not reproduce) or "hw-only-crash" (a crash only the
	// hardware replay of an emulation-admitted input hit).
	Kind string
	// Cluster is the crash cluster for crash kinds ("" for coverage).
	Cluster string
	// Edges counts the unconfirmed fresh edges for emul-only-cov.
	Edges int
	// Prog is the program that produced the divergence.
	Prog string
	// Shard is the emulation shard whose item diverged.
	Shard int
	// At is the virtual campaign time of the classification.
	At time.Duration
}

// errRestart signals that the target was restored and the fuzzing loop must
// re-synchronise at executor_main.
var errRestart = errors.New("core: target restored")

// SeedShare is one coverage-increasing input exported for sibling shards.
type SeedShare struct {
	P        *prog.Prog
	NewEdges int
	// Edges lists the fresh edge IDs the seed contributed — the attribution
	// the persistent corpus store records and distillation minimizes over.
	Edges []uint32
}

// RewardShare is one choice-table adjacency reward exported for siblings.
type RewardShare struct {
	Prev, Next string
	Amount     float64
}

// SyncDelta is the feedback a shard accumulated since the previous fleet
// sync: the edges it found first, the seeds that found them and the
// adjacency rewards they earned. Fleet campaigns drain deltas at epoch
// barriers and broadcast them to sibling shards in shard order, which keeps
// cross-pollination deterministic.
type SyncDelta struct {
	Edges   []uint32
	Seeds   []SeedShare
	Rewards []RewardShare
}

// Engine is one EOF instance attached to one board.
type Engine struct {
	cfg   Config
	clock *vtime.Clock
	bk    backend.Backend
	brd   *board.Board
	// srv is the hardware backend's debug server (nil on other substrates);
	// retained for tests that poke probe capabilities.
	srv *ocd.Server
	// client is the top of the layered debug-link stack the fuzzing loop
	// speaks: session → metrics → (injector) → transport. The layers
	// below are retained for accounting and test access.
	client   link.Link
	session  *link.Session
	metrics  *link.Metrics
	injector *link.Injector // nil unless cfg.LinkFaults is enabled

	target *prog.Target
	gen    *prog.Generator
	ct     *prog.ChoiceTable
	rnd    *rand.Rand

	syms      *sym.Table
	lay       board.Layout
	images    *osinfo.Images
	mainAddr  uint64
	excAddrs  map[uint64]string
	collector *cov.Collector
	shared    *cov.Collector // optional fleet-wide sink, nil when solo
	corpus    *Corpus
	logMon    *LogMonitor

	stats   Stats
	health  Health
	bugs    []*BugReport
	bugSigs map[string]bool
	series  []CoverSample

	// tracer is the engine's trace emission point (flight-recorder ring
	// plus optional journal/status sinks); acct attributes every virtual-
	// clock delta of the link stack to a board-time category. restoring
	// and reflashing are the mode flags the timed link wrapper reads.
	tracer     *trace.Tracer
	acct       *trace.Accountant
	restoring  bool
	reflashing bool
	// deltaRestoring marks the vRestore round trip so the timed link bills
	// it to the restoring-delta sub-bucket. snapValid tracks whether the
	// probe holds a usable golden snapshot; snapPostBoot/snapPostInit are
	// the configured (re-)snapshot states.
	deltaRestoring bool
	snapValid      bool
	snapPostBoot   bool
	snapPostInit   bool

	// triaging flags replay/minimization mode: the timed link bills every
	// round trip to the triaging bucket, recordBug diverts to captured
	// instead of the findings list, and coverage is discarded. pristine
	// tracks whether the board is freshly restored and untouched, so
	// replays only pay for a restore when the state is actually dirty.
	// triageQueue holds recorded findings awaiting the pipeline.
	triaging    bool
	pristine    bool
	captured    *BugReport
	triageQueue []TriageItem

	// confirming flags cross-tier confirmation mode on a hardware engine:
	// the timed link bills round trips to the confirming bucket, ingested
	// edges are additionally accumulated in confirmSeen, and recordBug notes
	// the replay's hit in confirmCaptured (while still recording normally —
	// hardware observations are ground truth). confirmQueue is the emulation
	// side: ConfirmCapture engines append every corpus-admitted input and
	// recorded crash for the fleet to drain. lastFresh keeps the most recent
	// drain's fresh edge IDs so capture knows what earned a corpus slot.
	confirming      bool
	confirmSeen     []uint32
	confirmCaptured *BugReport
	confirmQueue    []ConfirmItem
	lastFresh       []uint32

	// vectored tracks whether the probe accepts the single-round-trip
	// commands; it latches off on the first Ebadcmd and the engine degrades
	// to the legacy multi-round-trip sequences.
	vectored bool
	ready    bool
	delta    SyncDelta

	// stop is the graceful-shutdown request flag: set from a signal-handler
	// goroutine (hence atomic, unlike the rest of the single-goroutine
	// engine), checked by RunFor between iterations so the campaign drains
	// at a clean test-case boundary.
	stop atomic.Bool

	lastBudgetPC uint64
	stallRuns    int
	started      time.Duration
	lastSample   time.Duration
}

// NewEngine builds the full stack: images, board, debug server and client,
// specification pipeline and generator. The returned engine owns the board.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.ContinueBudget <= 0 {
		cfg.ContinueBudget = 500_000
	}
	if cfg.MaxContinues <= 0 {
		cfg.MaxContinues = 256
	}
	if cfg.MaxCalls <= 0 {
		cfg.MaxCalls = 10
	}
	if cfg.Latency == (ocd.Latency{}) {
		cfg.Latency = ocd.DefaultLatency()
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Minute
	}
	cfg.Health = cfg.Health.WithDefaults()
	cfg.Triage = cfg.Triage.WithDefaults()

	osInfo := cfg.OS
	if len(cfg.CovModules) > 0 {
		osInfo = osinfo.WithCovModules(cfg.OS, cfg.CovModules)
	}

	specRes, err := specgen.Generate(osInfo)
	if err != nil {
		return nil, err
	}
	if len(cfg.CallFilter) > 0 {
		filterSpec(specRes.Spec, cfg.CallFilter)
		if len(specRes.Spec.Calls) == 0 {
			return nil, fmt.Errorf("core: call filter matched nothing")
		}
	}
	target, err := prog.NewTarget(specRes.Spec, osInfo)
	if err != nil {
		return nil, err
	}
	images, err := osInfo.BuildImages(cfg.Board, cfg.Instrumented)
	if err != nil {
		return nil, err
	}
	syms, err := osInfo.SymbolTable(cfg.Board)
	if err != nil {
		return nil, err
	}
	dcfg := cfg.Degrade
	if dcfg.Enabled() && dcfg.Seed == 0 {
		// Like the link-fault injector: each engine (and fleet shard)
		// derives its own deterministic aging sequence from its seed.
		dcfg.Seed = cfg.Seed
	}
	factory := cfg.Backend
	if factory == nil {
		factory = backend.Hardware()
	}
	clock := &vtime.Clock{}
	bk, err := factory(backend.Env{
		Info:    osInfo,
		Spec:    cfg.Board,
		Images:  images,
		Clock:   clock,
		Latency: cfg.Latency,
		Degrade: dcfg,
	})
	if err != nil {
		return nil, err
	}
	brd := bk.Board()

	ct := prog.NewChoiceTable(specRes.Spec)
	gen := prog.NewGenerator(target, cfg.Seed, ct)
	gen.RandomOnly = !cfg.APIAware

	e := &Engine{
		cfg:       cfg,
		clock:     clock,
		bk:        bk,
		brd:       brd,
		health:    Health{Score: 1},
		vectored:  !cfg.LegacyLink,
		target:    target,
		gen:       gen,
		ct:        ct,
		rnd:       rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
		syms:      syms,
		lay:       board.LayoutFor(cfg.Board),
		images:    images,
		collector: cov.NewCollector(),
		corpus:    &Corpus{},
		logMon:    &LogMonitor{},
		bugSigs:   make(map[string]bool),
		excAddrs:  make(map[uint64]string),
	}
	e.snapPostBoot, e.snapPostInit = parseSnapshotStates(cfg.SnapshotStates)
	e.acct = trace.NewAccountant(clock)
	e.tracer = trace.New(cfg.Shard, clock, cfg.FlightRecorder)
	e.tracer.SetSink(cfg.TraceSink)
	e.tracer.SetLive(cfg.StatusSink)
	e.mainAddr = syms.Addr(agent.SymExecutorMain)
	if cfg.Monitors.Exception {
		for _, name := range osInfo.ExceptionSyms {
			e.excAddrs[syms.Addr(name)] = name
		}
		e.excAddrs[syms.Addr(agent.SymHandleException)] = agent.SymHandleException
	}
	return e, nil
}

// filterSpec keeps only the named calls in the specification.
func filterSpec(spec *syzlang.Spec, names []string) {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	kept := spec.Calls[:0]
	for _, c := range spec.Calls {
		if allowed[c.Name] {
			kept = append(kept, c)
		}
	}
	spec.Calls = kept
}

// Board exposes the engine's board for in-process inspection by tests and
// experiment harnesses (never used by the fuzzing loop itself, which talks
// only through the debug client).
func (e *Engine) Board() *board.Board { return e.brd }

// Class returns the engine's execution-substrate capability class.
func (e *Engine) Class() backend.Class { return e.bk.Class() }

// Clock returns the campaign's virtual clock.
func (e *Engine) Clock() *vtime.Clock { return e.clock }

// Coverage returns the number of distinct edges observed so far.
func (e *Engine) Coverage() int { return e.collector.Total() }

// CollectorEdges returns the engine's observed edge set in ascending order.
func (e *Engine) CollectorEdges() []uint32 { return e.collector.Edges() }

// LinkOps returns the number of debug-link round trips issued so far.
func (e *Engine) LinkOps() int64 {
	if e.metrics == nil {
		return 0
	}
	return e.metrics.Ops()
}

// LinkMetrics exposes the metrics middleware for reports and tests.
func (e *Engine) LinkMetrics() *link.Metrics { return e.metrics }

// Tracer exposes the engine's trace emission point; the fleet uses it to
// emit sync-epoch events into each shard's journal, and tests to inspect the
// flight recorder.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// TimeBy returns the board-time budget accounted so far.
func (e *Engine) TimeBy() trace.TimeBy { return e.acct.Snapshot() }

// Health returns the board's health record so far; fleet supervisors poll it
// at epoch barriers to spot chronically sick boards.
func (e *Engine) Health() Health { return e.health }

// SetSharedSink attaches a fleet-wide collector that every drained edge is
// also ingested into. The sink is thread-safe and order-independent (set
// union), so sibling shards can feed it concurrently without disturbing the
// per-shard deterministic state. Must be set before Setup.
func (e *Engine) SetSharedSink(c *cov.Collector) { e.shared = c }

// SetFocus biases fresh generation toward the named calls (the fleet
// sharder's soft search-space partitioning). Must be called before Run.
func (e *Engine) SetFocus(names []string, boost float64) { e.gen.SetFocus(names, boost) }

// SpecCalls returns the target specification's call names in spec order.
func (e *Engine) SpecCalls() []string {
	out := make([]string, len(e.target.Spec.Calls))
	for i, c := range e.target.Spec.Calls {
		out[i] = c.Name
	}
	return out
}

// RequestStop asks the engine to stop fuzzing at the next iteration
// boundary. Safe to call from another goroutine (signal handlers); RunFor
// then returns early and the campaign drains normally.
func (e *Engine) RequestStop() { e.stop.Store(true) }

// Execs returns the completed test-case count so far.
func (e *Engine) Execs() int { return e.stats.Execs }

// KnownClusters returns the crash-dedup cluster keys recorded so far,
// sorted. The persistence layer checkpoints them so a resumed campaign does
// not re-report the previous run's findings.
func (e *Engine) KnownClusters() []string {
	out := make([]string, 0, len(e.bugSigs))
	for c := range e.bugSigs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MarkKnownClusters pre-seeds the crash dedup set: findings matching these
// cluster keys are treated as already reported. Campaign resume uses it to
// suppress duplicates of the previous run's bugs.
func (e *Engine) MarkKnownClusters(clusters []string) {
	for _, c := range clusters {
		e.bugSigs[c] = true
	}
}

// DrainSyncDelta returns the feedback accumulated since the last drain and
// resets the accumulator. Fleet campaigns call it at epoch barriers.
func (e *Engine) DrainSyncDelta() SyncDelta {
	d := e.delta
	e.delta = SyncDelta{}
	return d
}

// ImportSyncDelta merges a sibling shard's feedback: its new edges become
// pre-seen (so this shard stops spending budget rediscovering them), its
// seeds join the corpus for further mutation, and its adjacency rewards
// shape future generation. Imports must happen between RunFor slices, in a
// deterministic order, to keep campaigns reproducible.
func (e *Engine) ImportSyncDelta(d SyncDelta) {
	e.collector.Ingest(d.Edges)
	for _, s := range d.Seeds {
		e.corpus.Add(s.P.Clone(), s.NewEdges)
	}
	for _, r := range d.Rewards {
		e.ct.Reward(r.Prev, r.Next, r.Amount)
	}
}

// Setup provisions flash, boots, attaches the probe and arms breakpoints,
// leaving the target parked at executor_main. It is idempotent; Run calls it
// implicitly and fleet campaigns call it before the first epoch slice.
func (e *Engine) Setup() error {
	if e.ready {
		return nil
	}
	if err := e.bk.Provision(); err != nil {
		return err
	}
	if err := e.bootWithRetry(); err != nil {
		return fmt.Errorf("core: initial boot: %w", err)
	}
	e.client = e.buildLinkStack()
	if err := e.armBreakpoints(); err != nil {
		return err
	}
	if err := e.runToMain(); err != nil {
		return err
	}
	// Cache the golden snapshot(s) before accounting starts, so the setup
	// captures stay outside the reported budget like the rest of bring-up.
	e.refreshSnapshot()
	e.ready = true
	e.pristine = true
	e.started = e.clock.Now()
	// Accounting starts at `started`, so setup round trips (provisioning,
	// first boot, initial arm and resync) stay outside the reported budget
	// and TimeBy sums to the report's Duration exactly.
	e.acct.Reset()
	return nil
}

// setupBootAttempts bounds initial bring-up retries against the degradation
// model's transient power-on failures.
const setupBootAttempts = 3

// bootWithRetry boots the board directly (the probe is not attached yet),
// absorbing transient power-on failures. A dead board surfaces as
// ErrBoardDead so fleet supervisors can quarantine the slot before the
// campaign starts; a bricked board (image/config problem) stays fatal.
func (e *Engine) bootWithRetry() error {
	var err error
	for attempt := 0; attempt < setupBootAttempts; attempt++ {
		if err = e.bk.Boot(); err == nil {
			return nil
		}
		if errors.Is(err, board.ErrDead) {
			e.health.Dead = true
			return fmt.Errorf("%v: %w", err, ErrBoardDead)
		}
		if e.brd.State() != board.Off {
			return err
		}
	}
	return err
}

// buildLinkStack composes the layered debug link the fuzzing loop speaks.
// Bottom-up: the backend's transport (the ocd client on hardware, VM
// facilities on the emulation tier), an optional fault injector
// (flaky-adapter model), the metrics layer (so faulted and retried attempts
// count as the real round trips they cost), and on top the session layer
// that absorbs the injector's faults via retries and reconnects.
func (e *Engine) buildLinkStack() link.Link {
	l := e.bk.Connect()
	if s, ok := e.bk.(interface{ Server() *ocd.Server }); ok {
		e.srv = s.Server()
	}
	if fcfg := e.cfg.LinkFaults; fcfg.Enabled() {
		if fcfg.Seed == 0 {
			fcfg.Seed = e.cfg.Seed
		}
		e.injector = link.NewInjector(l, fcfg, e.clock)
		e.injector.SetOnFault(func(k link.FaultKind, cmd string) {
			e.tracer.Emit(trace.Event{Kind: trace.LinkFault, Reason: k.String() + ":" + cmd})
		})
		l = e.injector
	} else {
		e.injector = nil
	}
	e.metrics = link.NewMetrics(e.clock)
	l = e.metrics.Wrap(l)
	e.session = link.NewSession(l, link.SessionConfig{
		MaxRetries: e.cfg.LinkRetries,
		Backoff:    e.cfg.LinkBackoff,
		Clock:      e.clock,
		Reconnect: func() error {
			if e.injector != nil {
				e.injector.Revive()
			}
			return nil
		},
		OnRetry: func(cmd string) {
			e.tracer.Emit(trace.Event{Kind: trace.LinkRetry, Reason: cmd})
		},
		OnReconnect: func() {
			// A fresh adapter may speak the vectored commands even if the
			// previous one degraded mid-campaign; re-latch capability.
			e.vectored = !e.cfg.LegacyLink
			e.tracer.Emit(trace.Event{Kind: trace.LinkReconnect})
		},
	})
	// The timed wrapper tops the stack so its categories include everything
	// below: session backoff, injected fault penalties, adapter latency,
	// payload transfer and executed target cycles.
	return &timedLink{
		inner:          e.session,
		acct:           e.acct,
		restoring:      &e.restoring,
		reflashing:     &e.reflashing,
		triaging:       &e.triaging,
		confirming:     &e.confirming,
		deltaRestoring: &e.deltaRestoring,
	}
}

// parseSnapshotStates interprets Config.SnapshotStates: a comma-separated
// subset of "post-boot,post-init", empty meaning both.
func parseSnapshotStates(s string) (postBoot, postInit bool) {
	if strings.TrimSpace(s) == "" {
		return true, true
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "post-boot":
			postBoot = true
		case "post-init":
			postInit = true
		}
	}
	return postBoot, postInit
}

func (e *Engine) armBreakpoints() error {
	if err := e.client.SetBreakpoint(e.mainAddr); err != nil {
		return fmt.Errorf("core: arming executor_main: %w", err)
	}
	// Arm in address order: which symbols win the scarce comparators must
	// not depend on map iteration order, or campaigns stop being
	// reproducible.
	addrs := make([]uint64, 0, len(e.excAddrs))
	for addr := range e.excAddrs {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for i, addr := range addrs {
		if err := e.client.SetBreakpoint(addr); err != nil {
			// Breakpoint comparators are scarce on some boards; the engine
			// degrades to log/stall detection for the remaining symbols and
			// records how many monitors were lost.
			e.stats.DegradedMonitors += len(addrs) - i
			break
		}
	}
	return nil
}

// Close releases the debug link and the execution substrate.
func (e *Engine) Close() {
	if e.client != nil {
		e.client.Close()
	}
	e.bk.Close()
}

// Run executes a campaign for the given virtual-time budget.
func (e *Engine) Run(budget time.Duration) (*Report, error) {
	if err := e.Setup(); err != nil {
		return nil, err
	}
	if err := e.RunFor(budget); err != nil {
		return nil, err
	}
	rep := e.Report()
	e.EmitTimeBudget(rep.TimeBy, rep.Duration)
	return rep, nil
}

// RunFor fuzzes for one slice of the campaign budget. Fleet campaigns call
// it repeatedly with epoch-sized slices, exchanging feedback between calls;
// Run calls it once with the whole budget. Setup must have succeeded first.
func (e *Engine) RunFor(budget time.Duration) error {
	deadline := e.clock.DeadlineIn(budget)
	for !deadline.Expired(e.clock) && !e.stop.Load() {
		if err := e.iteration(); err != nil && !errors.Is(err, errRestart) {
			return err
		}
		if err := e.drainTriage(); err != nil {
			return err
		}
		e.sample()
	}
	return nil
}

// Report snapshots the campaign outcome so far.
func (e *Engine) Report() *Report {
	e.sampleForce()
	e.stats.LinkOps = e.LinkOps()
	if e.session != nil {
		e.stats.LinkRetries = e.session.Retries()
		e.stats.LinkReconnects = e.session.Reconnects()
	}
	rep := &Report{
		OS:       e.cfg.OS.Name,
		Board:    e.cfg.Board.Name,
		Stats:    e.stats,
		Edges:    e.collector.Total(),
		Bugs:     e.bugs,
		Series:   e.series,
		Duration: e.clock.Now() - e.started,
	}
	if e.metrics != nil {
		rep.LinkPerCmd = e.metrics.Snapshot()
	}
	rep.TimeBy = e.acct.Snapshot()
	rep.Health = e.health
	return rep
}

// EmitTimeBudget journals the end-of-campaign board-time budget: one
// TimeBudget event per category (zero buckets included), the restore
// sub-buckets, and a terminal "duration" record carrying the accounted
// campaign Duration. Solo campaigns call it with their own snapshot; the
// fleet calls it per shard after barrier-idle attribution, so the journalled
// buckets always sum to the duration record exactly — the invariant eoftrace
// rebuilds and checks offline.
func (e *Engine) EmitTimeBudget(by trace.TimeBy, duration time.Duration) {
	for _, c := range trace.Categories() {
		e.tracer.Emit(trace.Event{Kind: trace.TimeBudget, Reason: c.String(), Dur: by.Of(c)})
	}
	e.tracer.Emit(trace.Event{Kind: trace.TimeBudget, Reason: "restoring-delta", Dur: by.RestoringDelta})
	e.tracer.Emit(trace.Event{Kind: trace.TimeBudget, Reason: "restoring-full", Dur: by.RestoringFull})
	e.tracer.Emit(trace.Event{Kind: trace.TimeBudget, Reason: "duration", Dur: duration})
}

func (e *Engine) sample() {
	if e.clock.Now()-e.lastSample >= e.cfg.SampleEvery {
		e.sampleForce()
	}
}

func (e *Engine) sampleForce() {
	e.lastSample = e.clock.Now()
	e.series = append(e.series, CoverSample{At: e.clock.Now() - e.started, Edges: e.collector.Total()})
}

// nextProg picks the next input: mutate a corpus seed under feedback
// guidance, otherwise generate fresh from the specification.
func (e *Engine) nextProg() *prog.Prog {
	if e.cfg.FeedbackGuided && e.corpus.Len() > 0 && e.rnd.Float64() < e.cfg.MutateBias {
		if s := e.corpus.Pick(e.rnd); s != nil {
			return e.gen.Mutate(s.P)
		}
	}
	return e.gen.Generate(e.cfg.MaxCalls)
}

// iteration runs one test case end to end.
func (e *Engine) iteration() error {
	p := e.nextProg()
	buf, err := e.packProg(p)
	if err != nil {
		return err
	}
	e.tracer.Emit(trace.Event{Kind: trace.ExecBegin, Exec: e.stats.Execs + 1})
	if err := e.pumpToMain(p, buf); err != nil {
		return err
	}
	// Back at executor_main: collect feedback.
	e.stats.Execs++
	fresh, err := e.drainCoverage()
	if err != nil && errors.Is(err, ocd.ErrTimeout) {
		return e.restore("timeout")
	}
	if fresh > 0 {
		e.tracer.Emit(trace.Event{Kind: trace.CovGain, Exec: e.stats.Execs, Edges: fresh})
	}
	if err := e.scanLog(p); err != nil {
		return err
	}
	if fresh > 0 && e.cfg.FeedbackGuided {
		e.corpus.Add(p, fresh)
		e.tracer.Emit(trace.Event{Kind: trace.CorpusAdd, Exec: e.stats.Execs, Edges: fresh})
		e.delta.Seeds = append(e.delta.Seeds, SeedShare{
			P: p, NewEdges: fresh, Edges: append([]uint32(nil), e.lastFresh...),
		})
		if e.cfg.ConfirmCapture {
			e.confirmQueue = append(e.confirmQueue, ConfirmItem{
				P:     p.Clone(),
				Edges: append([]uint32(nil), e.lastFresh...),
			})
			e.tracer.Emit(trace.Event{Kind: trace.ConfirmEnqueue, Exec: e.stats.Execs, Edges: fresh})
		}
		names := p.CallNames()
		for i := 1; i < len(names); i++ {
			e.ct.Reward(names[i-1], names[i], 0.5)
			e.delta.Rewards = append(e.delta.Rewards, RewardShare{Prev: names[i-1], Next: names[i], Amount: 0.5})
		}
	}
	e.tracer.Emit(trace.Event{Kind: trace.ExecEnd, Exec: e.stats.Execs})
	return nil
}

// packProg serializes p into the length-prefixed mailbox wire format.
func (e *Engine) packProg(p *prog.Prog) ([]byte, error) {
	wp, err := e.target.Serialize(p)
	if err != nil {
		return nil, err
	}
	raw, err := wp.Marshal()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	return buf, nil
}

// deliverAndResume places the test case into the inbound mailbox and resumes
// the target, returning the first stop event. With a vectored-capable probe
// the write and the continue travel as one round trip (vRun); otherwise they
// are two commands, with the write's timeout handled as a boot failure.
func (e *Engine) deliverAndResume(buf []byte) (cpu.Stop, bool, error) {
	if e.vectored {
		st, err := e.client.WriteMemContinue(e.lay.MailboxIn, buf, e.cfg.ContinueBudget)
		if !isBadCmd(err) {
			return st, true, err
		}
		e.vectored = false // probe predates vRun: degrade for the campaign
	}
	if err := e.client.WriteMem(e.lay.MailboxIn, buf); err != nil {
		return cpu.Stop{}, false, err
	}
	st, err := e.client.Continue(e.cfg.ContinueBudget)
	return st, true, err
}

// isBadCmd reports whether err is the probe rejecting an unknown command.
func isBadCmd(err error) bool {
	return ocd.IsCode(err, ocd.CodeBadCmd)
}

// pumpToMain delivers the test case and resumes the target until it parks at
// executor_main again, handling every other stop event: coverage-buffer
// traps, faults, exception breakpoints, stall/budget events and link
// timeouts.
func (e *Engine) pumpToMain(p *prog.Prog, buf []byte) error {
	start := e.clock.Now()
	e.pristine = false
	for i := 0; i < e.cfg.MaxContinues; i++ {
		var st cpu.Stop
		var delivered bool
		var err error
		if i == 0 {
			st, delivered, err = e.deliverAndResume(buf)
			if err != nil && !delivered {
				// The mailbox write itself failed: a dead link here means
				// the target never came up, which restoration handles.
				if errors.Is(err, ocd.ErrTimeout) {
					return e.restore("timeout")
				}
				return err
			}
		} else {
			st, err = e.client.Continue(e.cfg.ContinueBudget)
		}
		if err != nil {
			if errors.Is(err, ocd.ErrTimeout) && e.cfg.Watchdogs.ConnectionTimeout {
				e.stats.TimeoutResets++
				return e.restore("connection-timeout")
			}
			if i == 0 && errors.Is(err, ocd.ErrTimeout) {
				// Watchdog off, but the combined deliver+resume timed out:
				// treat like the legacy mailbox-write timeout.
				return e.restore("timeout")
			}
			return err
		}
		switch st.Kind {
		case cpu.StopBreakpoint:
			if st.PC == e.mainAddr {
				e.stallRuns = 0
				return nil
			}
			if name, isExc := e.excAddrs[st.PC]; isExc {
				e.onException(name, p)
				if !e.triaging {
					e.stats.Crashes++
				}
				return e.restore("crash")
			}
			// Foreign breakpoint: fall through and resume.
		case cpu.StopCovFull:
			e.stats.CovFullTraps++
			if _, err := e.drainCoverage(); err != nil {
				if errors.Is(err, ocd.ErrTimeout) {
					return e.restore("timeout")
				}
				return err
			}
		case cpu.StopFault:
			// No exception breakpoint fired (monitor off or symbol not
			// armed); the halt itself still reveals the crash on the link.
			if e.cfg.Monitors.Exception {
				e.onFaultStop(st, p)
				if !e.triaging {
					e.stats.Crashes++
				}
			}
			return e.restore("fault")
		case cpu.StopBudget:
			if e.cfg.Watchdogs.PCStall {
				if st.PC == e.lastBudgetPC {
					e.stallRuns++
				} else {
					e.lastBudgetPC, e.stallRuns = st.PC, 0
				}
				if e.stallRuns >= 2 {
					// Degraded state: check the log first (assert hangs are
					// bugs, plain wedges are not), then restore.
					if err := e.scanLog(p); err != nil {
						return err
					}
					e.stats.StallResets++
					return e.restore("pc-stall")
				}
			}
			if e.cfg.Watchdogs.ExecTimeout > 0 && e.clock.Now()-start > e.cfg.Watchdogs.ExecTimeout {
				if err := e.scanLog(p); err != nil {
					return err
				}
				e.stats.ExecTimeoutResets++
				return e.restore("exec-timeout")
			}
		case cpu.StopExit, cpu.StopKilled:
			return e.restore("target-exit")
		}
	}
	// Without watchdogs the loop would spin forever; this is the manual
	// intervention the paper's liveness machinery exists to avoid.
	e.stats.ManualInterventions++
	return e.restore("manual-intervention")
}

// drainCoverage reads, ingests and clears the target coverage buffer,
// returning the number of globally new edges. With a vectored-capable probe
// the whole read-and-clear is one vCovDrain round trip; otherwise the legacy
// three-round-trip sequence runs.
func (e *Engine) drainCoverage() (int, error) {
	if !e.cfg.Instrumented {
		return 0, nil
	}
	if e.vectored {
		entries, lost, err := e.client.DrainCov(e.lay.Cov, e.cfg.Board.CovEntries)
		if !isBadCmd(err) {
			if err != nil {
				return 0, err
			}
			e.collector.AddLost(lost)
			return e.ingestEdges(entries), nil
		}
		e.vectored = false // probe predates vCovDrain: degrade for the campaign
	}
	return e.drainCoverageLegacy()
}

// drainCoverageLegacy is the multi-round-trip drain older probe firmware
// needs: a speculative read of header plus typical entry volume, a tail read
// when the buffer holds more, and a write clearing the count word.
func (e *Engine) drainCoverageLegacy() (int, error) {
	// Speculatively read the header plus the typical entry volume in one
	// transfer; only unusually full buffers need a second read. Probe round
	// trips dominate drain cost, so batching matters more than bytes.
	first := 16 + 1024*4
	if max := 16 + e.cfg.Board.CovEntries*4; first > max {
		first = max
	}
	raw, err := e.client.ReadMem(e.lay.Cov, first)
	if err != nil {
		return 0, err
	}
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	if count < 0 || count > e.cfg.Board.CovEntries {
		return 0, fmt.Errorf("core: corrupt coverage header count=%d", count)
	}
	if count == 0 {
		return 0, nil
	}
	if need := 16 + count*4; need > len(raw) {
		rest, err := e.client.ReadMem(e.lay.Cov+uint64(len(raw)), need-len(raw))
		if err != nil {
			return 0, err
		}
		raw = append(raw, rest...)
	}
	entries := make([]uint32, count)
	for i := range entries {
		entries[i] = binary.LittleEndian.Uint32(raw[16+i*4:])
	}
	// Clear: zero the count word so the runtime reuses the buffer.
	if err := e.client.WriteMem(e.lay.Cov+4, []byte{0, 0, 0, 0}); err != nil {
		return 0, err
	}
	return e.ingestEdges(entries), nil
}

// ingestEdges feeds drained entries into the local collector, the pending
// fleet sync delta, and (when fleet-attached) the shared sink.
func (e *Engine) ingestEdges(entries []uint32) int {
	if e.triaging {
		// Replays must not perturb the campaign's feedback state: the
		// buffer is cleared on the target, the drained edges are dropped.
		return 0
	}
	if e.confirming {
		// Confirmation replays additionally record everything the hardware
		// actually executed, so the fleet can check the emulation tier's
		// claimed edges against ground truth. Unlike triage, the edges still
		// feed the campaign normally — hardware observations are real.
		e.confirmSeen = append(e.confirmSeen, entries...)
	}
	fresh := e.collector.Ingest(entries)
	e.lastFresh = fresh
	if len(fresh) > 0 {
		e.delta.Edges = append(e.delta.Edges, fresh...)
	}
	if e.shared != nil {
		e.shared.Ingest(entries)
	}
	return len(fresh)
}

// scanLog drains the UART through the log monitor, recording a bug when a
// crash pattern matches.
func (e *Engine) scanLog(p *prog.Prog) error {
	if e.client == nil {
		return nil
	}
	lines, err := e.client.DrainUART()
	if err != nil {
		if errors.Is(err, ocd.ErrTimeout) {
			return nil // UART capture is best-effort while the link is down
		}
		return err
	}
	sig, line, ok := e.logMon.Scan(lines)
	if !ok || !e.cfg.Monitors.Log {
		return nil
	}
	kind := "assert"
	if !hasAssert(line) {
		kind = "panic"
	}
	e.recordBug(&BugReport{
		Sig:     sig,
		Title:   "log: " + line,
		Kind:    kind,
		Monitor: "log",
		Log:     e.logMon.Context(),
		Prog:    p.String(),
	}, p)
	return nil
}

func hasAssert(line string) bool {
	return len(line) >= 6 && line[:6] == "ASSERT"
}

// onException handles a stop at an exception-function breakpoint: read the
// fault status block over the link and attribute the crash.
func (e *Engine) onException(symName string, p *prog.Prog) {
	raw, err := e.client.ReadMem(e.lay.FSB, board.FSBSize)
	if err != nil {
		e.recordBug(&BugReport{
			Sig:     "exc:" + symName,
			Title:   "exception at " + symName + " (fault block unreadable)",
			Kind:    "panic",
			Monitor: "exception",
			Prog:    p.String(),
		}, p)
		return
	}
	fault, err := fsb.Decode(raw)
	if err != nil || fault == nil {
		e.recordBug(&BugReport{
			Sig:     "exc:" + symName,
			Title:   "exception at " + symName + " (no fault record)",
			Kind:    "panic",
			Monitor: "exception",
			Prog:    p.String(),
		}, p)
		return
	}
	e.scanLogQuiet()
	e.recordBug(&BugReport{
		Sig:     faultSig(fault),
		Title:   faultTitle(fault),
		Kind:    "panic",
		Monitor: "exception",
		Fault:   fault,
		Log:     e.logMon.Context(),
		Prog:    p.String(),
	}, p)
}

// onFaultStop handles a raw fault halt (no exception breakpoint armed).
func (e *Engine) onFaultStop(st cpu.Stop, p *prog.Prog) {
	f := st.Fault
	if f == nil {
		f = &cpu.Fault{Kind: cpu.FaultHard, PC: st.PC, Msg: "halted with fault"}
	}
	e.scanLogQuiet()
	e.recordBug(&BugReport{
		Sig:     faultSig(f),
		Title:   faultTitle(f),
		Kind:    "panic",
		Monitor: "exception",
		Fault:   f,
		Log:     e.logMon.Context(),
		Prog:    p.String(),
	}, p)
}

// scanLogQuiet pulls UART context without pattern-triggered reports (the
// exception path owns the report).
func (e *Engine) scanLogQuiet() {
	lines, err := e.client.DrainUART()
	if err != nil {
		return
	}
	e.logMon.Scan(lines)
}

func (e *Engine) recordBug(b *BugReport, p *prog.Prog) {
	b.Cluster = triage.Cluster(b.Fault, b.Sig)
	if e.triaging {
		// Replay capture mode: the pipeline only wants the cluster of
		// whatever this run hit; nothing joins the findings list.
		e.captured = b
		return
	}
	if e.confirming {
		// Note what the confirmation replay hit (even if it dedups below):
		// the fleet compares it against the emulation tier's claim.
		e.confirmCaptured = b
	}
	// Dedup on the normalized cluster, not the raw signature: the same
	// fault reached through two callers (or observed by two monitors with
	// jittering message text) is one bug.
	if e.bugSigs[b.Cluster] {
		return
	}
	e.bugSigs[b.Cluster] = true
	b.OS = e.cfg.OS.Name
	b.Board = e.cfg.Board.Name
	b.Tier = e.bk.Class().String()
	b.FoundAt = e.clock.Now() - e.started
	// Flight recorder: attach the last events leading up to the detection,
	// then journal the detection itself.
	b.Trace = e.tracer.Recent()
	e.bugs = append(e.bugs, b)
	e.tracer.Emit(trace.Event{Kind: trace.Bug, Exec: e.stats.Execs, Reason: b.Sig})
	if e.cfg.Triage.Enabled && p != nil {
		e.triageQueue = append(e.triageQueue, TriageItem{Bug: b, P: p.Clone()})
	}
	if e.cfg.ConfirmCapture && p != nil {
		e.confirmQueue = append(e.confirmQueue, ConfirmItem{P: p.Clone(), Bug: b})
		e.tracer.Emit(trace.Event{Kind: trace.ConfirmEnqueue, Exec: e.stats.Execs, Reason: b.Cluster})
	}
}

// snapshotsActive reports whether the snapshot/delta rung can be used right
// now: configured on, and the probe still speaking the vectored commands.
func (e *Engine) snapshotsActive() bool {
	return e.cfg.Snapshots && e.vectored
}

// takeSnapshot caches the board's current state probe-side as the golden
// snapshot. A probe rejecting the command latches the legacy fallback; any
// other failure just leaves the cache invalid, so the next restore walks the
// classic ladder (and reports "snapshot-miss").
func (e *Engine) takeSnapshot(state string) {
	if !e.snapshotsActive() {
		return
	}
	if err := e.client.Snapshot(); err != nil {
		if isBadCmd(err) {
			e.vectored = false
		}
		e.snapValid = false
		return
	}
	e.snapValid = true
	e.stats.SnapshotTakes++
	e.tracer.Emit(trace.Event{Kind: trace.SnapshotTake, Exec: e.stats.Execs, Reason: state})
}

// refreshSnapshot (re-)caches the golden snapshot at the configured kernel
// states. With post-init enabled the coverage slab is drained and the boot
// chatter flushed first, so the cached state is the quiet post-init park a
// restored board should resume from.
func (e *Engine) refreshSnapshot() {
	if !e.snapshotsActive() {
		return
	}
	if e.snapPostBoot {
		e.takeSnapshot("post-boot")
	}
	if e.snapPostInit {
		e.drainCoverage()
		e.scanLogQuiet()
		e.takeSnapshot("post-init")
	}
}

// tryDeltaRestore attempts the snapshot rung: one vRestore round trip that
// rolls flash and RAM back to the golden snapshot, shipping only the dirty
// delta. ok reports success; on failure the classic ladder takes over — a
// torn sector escalates naturally (reset fails boot validation → reflash),
// and a dead board surfaces through the ladder's dead-code handling.
func (e *Engine) tryDeltaRestore() (board.RestoreStats, bool) {
	e.deltaRestoring = true
	defer func() { e.deltaRestoring = false }()
	st, err := e.client.RestoreSnapshot()
	if err == nil {
		return st, true
	}
	if isBadCmd(err) {
		e.vectored = false
	}
	if ocd.IsCode(err, ocd.CodeSnap) {
		// The probe lost the cache (e.g. a replaced adapter): re-take before
		// the next restore.
		e.snapValid = false
	}
	return board.RestoreStats{}, false
}

// restore generalises Algorithm 1's StateRestoration into an escalating
// recovery ladder: reset → reflash+reset → power-cycle(+reflash) → declare
// the board dead. Each rung has its own attempt budget (Config.Health) and
// pays its own virtual-clock cost; every outcome feeds the board's EWMA
// health score. Every exit path emits a terminal RestoreEnd event — success
// with the triggering reason, failure with a ":failed" marker — so the
// journal's begin/end pairs stay balanced and the restore time stays
// attributed even when the board never comes back.
func (e *Engine) restore(reason string) error {
	snapActive := e.snapshotsActive()
	if snapActive && !e.snapValid {
		// Snapshots are on but the cache is cold (never taken, or dropped
		// after a capture failure): the full ladder this restore pays is the
		// snapshot rung's miss cost, so attribute the reason accordingly.
		reason = "snapshot-miss"
	}
	e.stats.Restores++
	e.stats.addRestoreReason(reason)
	e.health.Restores++
	e.stallRuns = 0
	e.lastBudgetPC = 0

	restoreStart := e.clock.Now()
	e.tracer.Emit(trace.Event{Kind: trace.RestoreBegin, Exec: e.stats.Execs, Reason: reason})
	e.restoring = true
	defer func() { e.restoring = false }()

	if snapActive && e.snapValid {
		if st, ok := e.tryDeltaRestore(); ok {
			// The delta rung leaves the board parked at executor_main with
			// breakpoints re-armed, so none of the classic rung's re-arm /
			// resync work is needed.
			e.stats.DeltaRestores++
			e.stats.RestoreBytesShipped += st.RestoredBytes
			e.stats.RestoreBytesSkipped += st.SkippedBytes
			e.noteRestoreOutcome(rungReset, nil)
			e.tracer.Emit(trace.Event{
				Kind:   trace.DeltaRestore,
				Exec:   e.stats.Execs,
				Reason: reason,
				Edges:  int(st.RestoredBytes),
			})
			e.pristine = true
			e.tracer.Emit(trace.Event{
				Kind:   trace.RestoreEnd,
				Exec:   e.stats.Execs,
				Reason: reason,
				Dur:    e.clock.Now() - restoreStart,
			})
			return errRestart
		}
		// Delta failed (torn flash, dead board, stale cache...): fall
		// through to the classic ladder, which handles every such state.
	}
	e.stats.FullRestores++

	rung, err := e.climbLadder(reason)
	e.noteRestoreOutcome(rung, err)
	if err != nil {
		e.tracer.Emit(trace.Event{
			Kind:   trace.RestoreEnd,
			Exec:   e.stats.Execs,
			Reason: reason + ":failed",
			Dur:    e.clock.Now() - restoreStart,
		})
		return fmt.Errorf("core: restore(%s): %w", reason, err)
	}
	e.pristine = true
	e.tracer.Emit(trace.Event{
		Kind:   trace.RestoreEnd,
		Exec:   e.stats.Execs,
		Reason: reason,
		Dur:    e.clock.Now() - restoreStart,
	})
	return errRestart
}

// climbLadder walks the recovery rungs until the target is parked at
// executor_main again, returning the rung that satisfied the restore. Any
// command answered with the probe's dead code — or exhausting every rung's
// budget — wraps ErrBoardDead.
func (e *Engine) climbLadder(reason string) (int, error) {
	budgets := [numRungs]int{
		e.cfg.Health.ResetAttempts,
		e.cfg.Health.ReflashAttempts,
		e.cfg.Health.PowerCycleAttempts,
	}
	var lastErr error
	for rung := 0; rung < numRungs; rung++ {
		if rung > 0 {
			e.stats.RungEscalations++
			e.health.Escalations++
			e.tracer.Emit(trace.Event{
				Kind:   trace.RungEscalate,
				Exec:   e.stats.Execs,
				Reason: rungNames[rung] + ":" + reason,
			})
		}
		for attempt := 0; attempt < budgets[rung]; attempt++ {
			lastErr = e.runRung(rung, reason)
			if lastErr == nil {
				return rung, nil
			}
			if ocd.IsCode(lastErr, ocd.CodeDead) {
				e.health.Dead = true
				return rung, fmt.Errorf("%v: %w", lastErr, ErrBoardDead)
			}
		}
	}
	e.health.Dead = true
	return numRungs - 1, fmt.Errorf("recovery ladder exhausted (last: %v): %w", lastErr, ErrBoardDead)
}

// runRung performs one attempt at the given rung: the rung's board action,
// then the breakpoint re-arm and executor_main resynchronisation every rung
// shares. Any failure escalates to the next rung instead of killing the
// campaign.
func (e *Engine) runRung(rung int, reason string) error {
	switch rung {
	case rungReset:
		if err := e.client.Reset(); err != nil {
			return err
		}
	case rungReflash:
		// Reboot failed: the image is damaged; reflash from the partition
		// table (GetPartitionTable(KConfig) in the paper's pseudocode).
		if err := e.reflash(reason); err != nil {
			return err
		}
		if err := e.client.Reset(); err != nil {
			return err
		}
	case rungPowerCycle:
		if err := e.reflash(reason); err != nil {
			return err
		}
		if err := e.powerCycle(); err != nil {
			return err
		}
	}
	if err := e.armBreakpoints(); err != nil {
		return err
	}
	// Flush boot chatter through the monitor without reporting.
	e.scanLogQuiet()
	if err := e.runToMain(); err != nil {
		return err
	}
	// The board is freshly parked at a known-good state: re-cache the golden
	// snapshot so the next restore can take the delta rung again.
	e.refreshSnapshot()
	return nil
}

// reflash rewrites every partition from the build outputs.
func (e *Engine) reflash(reason string) error {
	e.stats.Reflashes++
	e.health.Reflashes++
	e.reflashing = true
	defer func() { e.reflashing = false }()
	tab := e.brd.PartitionTable()
	for _, part := range []struct {
		name string
		data []byte
	}{{"bootloader", e.images.Boot}, {"kernel", e.images.Kernel}} {
		pt := tab.Lookup(part.name)
		if pt == nil {
			return fmt.Errorf("core: restore: partition %q missing", part.name)
		}
		if err := e.client.FlashErase(pt.Offset, pt.Size); err != nil {
			return fmt.Errorf("core: restore erase: %w", err)
		}
		if err := e.client.FlashWrite(pt.Offset, part.data); err != nil {
			return fmt.Errorf("core: restore write: %w", err)
		}
	}
	e.tracer.Emit(trace.Event{Kind: trace.Reflash, Exec: e.stats.Execs, Reason: reason})
	return nil
}

// powerCycle cold-boots the board through the probe. Probe firmware that
// predates the command earns a warm reset instead, so the deepest rung still
// does something useful on old adapters.
func (e *Engine) powerCycle() error {
	e.stats.PowerCycles++
	e.health.PowerCycles++
	err := e.client.PowerCycle()
	if isBadCmd(err) {
		return e.client.Reset()
	}
	return err
}

// runToMain resumes a freshly booted target until the executor_main
// breakpoint parks it, ready for the first test case. Exhausting the resume
// budget returns a ladder-escalatable error rather than a campaign-fatal one.
func (e *Engine) runToMain() error {
	for i := 0; i < e.cfg.Health.MaxResumes; i++ {
		st, err := e.client.Continue(e.cfg.ContinueBudget)
		if err != nil {
			return fmt.Errorf("core: run to executor_main: %w", err)
		}
		if st.Kind == cpu.StopBreakpoint && st.PC == e.mainAddr {
			return nil
		}
		if st.Kind == cpu.StopCovFull {
			if _, err := e.drainCoverage(); err != nil {
				return err
			}
		}
	}
	return errResumesExhausted
}
