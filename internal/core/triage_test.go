package core

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/triage"
)

// TestTriageSoloCampaign runs a bug-rich campaign with the pipeline on and
// checks the whole loop: findings get classified, minimized reproducers are
// parseable, replay cost lands in the triaging bucket, and the accounting
// invariant still holds exactly.
func TestTriageSoloCampaign(t *testing.T) {
	rep := runShort(t, "rtthread", 20*time.Minute, func(c *Config) {
		c.Seed = 1234
		c.Triage.Enabled = true
	})
	if len(rep.Bugs) == 0 {
		t.Fatalf("no bugs in 20 virtual minutes; stats=%+v", rep.Stats)
	}
	if rep.Stats.TriagedBugs != len(rep.Bugs) {
		t.Fatalf("triaged %d of %d bugs", rep.Stats.TriagedBugs, len(rep.Bugs))
	}
	if rep.Stats.TriageReplays == 0 {
		t.Fatal("no triage replays recorded")
	}
	if rep.TimeBy.Triaging <= 0 {
		t.Fatalf("no board time charged to triaging: %v", rep.TimeBy)
	}
	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("accounting broke under triage: %v sums to %v, duration %v",
			rep.TimeBy, rep.TimeBy.Sum(), rep.Duration)
	}
	reproducible := 0
	for _, b := range rep.Bugs {
		t.Logf("bug %s: %s %d/%d replays, %d->%d calls",
			b.Cluster, b.Reproducibility, b.ReplayHits, b.Replays, b.OrigCalls, b.MinCalls)
		if b.Cluster == "" {
			t.Errorf("bug %q has no cluster", b.Sig)
		}
		if b.Reproducibility == "" {
			t.Errorf("bug %q not classified", b.Sig)
		}
		if b.MinCalls > b.OrigCalls || b.OrigCalls == 0 {
			t.Errorf("bug %q: bad minimization %d -> %d", b.Sig, b.OrigCalls, b.MinCalls)
		}
		if b.Repro == "" {
			t.Errorf("bug %q has no serialized repro", b.Sig)
		}
		if b.Reproducibility != triage.ReproNone {
			reproducible++
		}
	}
	if reproducible == 0 {
		t.Fatal("no finding confirmed reproducible")
	}
}

// TestTriageDisabledUnchanged: the zero-value Triage config must leave the
// campaign exactly as before — no replays, no triaging time, no queue.
func TestTriageDisabledUnchanged(t *testing.T) {
	rep := runShort(t, "rtthread", 10*time.Minute, func(c *Config) { c.Seed = 1234 })
	if rep.Stats.TriageReplays != 0 || rep.Stats.TriagedBugs != 0 {
		t.Fatalf("triage ran while disabled: %+v", rep.Stats)
	}
	if rep.TimeBy.Triaging != 0 {
		t.Fatalf("triaging time charged while disabled: %v", rep.TimeBy)
	}
}

// TestRecordBugClusterDedup is the regression test for the dedup fix: raw
// signatures that differ only in normalized-away detail must collapse into
// one finding.
func TestRecordBugClusterDedup(t *testing.T) {
	info, err := targets.ByName("rtthread")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(DefaultConfig(info, boards.STM32H745()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Same assert expression with formatting jitter: one bug.
	e.recordBug(&BugReport{Sig: "assert:x ==  1", Monitor: "log", Kind: "assert"}, nil)
	e.recordBug(&BugReport{Sig: "assert:x == 1", Monitor: "log", Kind: "assert"}, nil)
	if len(e.bugs) != 1 {
		t.Fatalf("assert jitter minted %d bugs, want 1", len(e.bugs))
	}

	// Same fault in the same kernel helper reached from two API entry
	// points: one bug (the caller frame is excluded from the cluster).
	mkFault := func(caller string) *cpu.Fault {
		return &cpu.Fault{Kind: cpu.FaultBus, Frames: []cpu.Frame{
			{Func: "__ipc_queue_push", File: "ipc.c", Line: 40},
			{Func: caller, File: "api.c", Line: 7},
		}}
	}
	e.recordBug(&BugReport{Sig: "BusFault@__ipc_queue_push via rt_mq_send", Monitor: "exception", Fault: mkFault("rt_mq_send")}, nil)
	e.recordBug(&BugReport{Sig: "BusFault@__ipc_queue_push via rt_event_send", Monitor: "exception", Fault: mkFault("rt_event_send")}, nil)
	if len(e.bugs) != 2 {
		t.Fatalf("two-caller fault minted %d extra bugs, want 1 (total 2): %+v", len(e.bugs)-1, sigsOf(e.bugs))
	}

	// Distinct fault kinds at the same frame stay distinct bugs.
	e.recordBug(&BugReport{Sig: "UsageFault@__ipc_queue_push", Monitor: "exception", Fault: &cpu.Fault{
		Kind: cpu.FaultUsage, Frames: []cpu.Frame{{Func: "__ipc_queue_push"}},
	}}, nil)
	if len(e.bugs) != 3 {
		t.Fatalf("distinct fault kind collapsed: %d bugs", len(e.bugs))
	}
}

func sigsOf(bugs []*BugReport) []string {
	out := make([]string, len(bugs))
	for i, b := range bugs {
		out[i] = b.Sig + " / " + b.Cluster
	}
	return out
}

// TestConfirmReproOnFreshEngine takes a stable reproducer out of one
// campaign and confirms it on a brand-new engine — the -replay path.
func TestConfirmReproOnFreshEngine(t *testing.T) {
	rep := runShort(t, "rtthread", 20*time.Minute, func(c *Config) {
		c.Seed = 1234
		c.Triage.Enabled = true
	})
	var pick *BugReport
	for _, b := range rep.Bugs {
		if b.Reproducibility == triage.ReproStable && b.Repro != "" {
			pick = b
			break
		}
	}
	if pick == nil {
		t.Skip("no stable finding in this window")
	}
	info, err := targets.ByName("rtthread")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(DefaultConfig(info, boards.STM32H745()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	p, err := e.ParseProgJSON([]byte(pick.Repro))
	if err != nil {
		t.Fatalf("repro does not round-trip: %v", err)
	}
	hits, err := e.ConfirmRepro(p, pick.Cluster, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fresh-board confirmation: %d/3 for %s", hits, pick.Cluster)
	if hits == 0 {
		t.Fatalf("stable repro did not reproduce on a fresh board (cluster %s)", pick.Cluster)
	}
}
