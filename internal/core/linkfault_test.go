package core

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/targets"
)

// TestCampaignSurvivesLinkFaults is the flaky-adapter acceptance check: with
// 5% of commands faulted, a FreeRTOS campaign must complete with every fault
// absorbed by the session layer (zero exec failures, no error out of RunFor)
// while keeping at least 70% of the fault-free edge throughput.
func TestCampaignSurvivesLinkFaults(t *testing.T) {
	budget := 4 * time.Minute
	clean := runShort(t, "freertos", budget, func(c *Config) { c.Seed = 11 })
	faulty := runShort(t, "freertos", budget, func(c *Config) {
		c.Seed = 11
		c.LinkFaults = link.Profile(0.05, 0) // zero seed: defaults to campaign seed
	})

	if faulty.Stats.ExecFailures != 0 {
		t.Fatalf("link faults leaked into exec failures: %+v", faulty.Stats)
	}
	if faulty.Stats.LinkRetries == 0 {
		t.Fatalf("5%% fault rate caused no retries: %+v", faulty.Stats)
	}
	t.Logf("clean: %d edges %d execs %d ops; faulty: %d edges %d execs %d ops (%d retries, %d reconnects)",
		clean.Edges, clean.Stats.Execs, clean.Stats.LinkOps,
		faulty.Edges, faulty.Stats.Execs, faulty.Stats.LinkOps,
		faulty.Stats.LinkRetries, faulty.Stats.LinkReconnects)

	// Same virtual budget, so edge totals compare directly as edges/sec.
	if faulty.Edges*10 < clean.Edges*7 {
		t.Fatalf("faulty campaign kept %d/%d edges, below the 70%% floor",
			faulty.Edges, clean.Edges)
	}
	// Faulted attempts cost extra round trips, never fewer.
	if faulty.Stats.LinkOps < clean.Stats.LinkOps {
		t.Fatalf("faulty campaign issued fewer round trips (%d) than clean (%d)",
			faulty.Stats.LinkOps, clean.Stats.LinkOps)
	}
}

// TestCampaignLinkFaultsDeterministic pins the injected-fault path to the
// same reproducibility bar as fault-free campaigns.
func TestCampaignLinkFaultsDeterministic(t *testing.T) {
	run := func() *Report {
		return runShort(t, "pokos", 3*time.Minute, func(c *Config) {
			c.Seed = 99
			c.LinkFaults = link.Profile(0.05, 0)
		})
	}
	a, b := run(), run()
	if a.Edges != b.Edges || a.Stats.Execs != b.Stats.Execs ||
		a.Stats.LinkRetries != b.Stats.LinkRetries ||
		a.Stats.LinkReconnects != b.Stats.LinkReconnects {
		t.Fatalf("faulty campaigns diverged: %d/%d edges, %d/%d execs, %d/%d retries, %d/%d reconnects",
			a.Edges, b.Edges, a.Stats.Execs, b.Stats.Execs,
			a.Stats.LinkRetries, b.Stats.LinkRetries,
			a.Stats.LinkReconnects, b.Stats.LinkReconnects)
	}
}

// TestReconnectRearmsAndRelatches drops the link mid-campaign and checks the
// session restores the full debug state: the same breakpoint set re-armed,
// vectored-command support re-detected, and the campaign still running.
func TestReconnectRearmsAndRelatches(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	cfg.SampleEvery = time.Minute
	// Delay with zero DelayBy forces the injector into the stack without
	// perturbing behaviour, so StallNow is the only fault that ever fires.
	cfg.LinkFaults = link.FaultConfig{Delay: 1, DelayBy: 0}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	if e.injector == nil {
		t.Fatal("injector missing from the stack")
	}
	armedBefore := e.session.Breakpoints()
	degradedBefore := e.stats.DegradedMonitors

	// Simulate a mid-campaign capability downgrade, then yank the cable.
	e.vectored = false
	e.injector.StallNow()
	if _, err := e.client.ReadMem(e.lay.Cov, 16); err != nil {
		t.Fatalf("command across link death not absorbed: %v", err)
	}

	if got := e.session.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if !e.vectored {
		t.Fatal("vectored capability not re-latched after reconnect")
	}
	armedAfter := e.session.Breakpoints()
	if len(armedAfter) != len(armedBefore) {
		t.Fatalf("breakpoint set changed across reconnect: %v -> %v", armedBefore, armedAfter)
	}
	for i := range armedBefore {
		if armedAfter[i] != armedBefore[i] {
			t.Fatalf("breakpoint set changed across reconnect: %v -> %v", armedBefore, armedAfter)
		}
	}
	if e.stats.DegradedMonitors != degradedBefore {
		t.Fatalf("reconnect changed DegradedMonitors: %d -> %d", degradedBefore, e.stats.DegradedMonitors)
	}

	// The campaign keeps fuzzing on the revived link.
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatalf("RunFor after reconnect: %v", err)
	}
	rep := e.Report()
	if rep.Stats.Execs == 0 {
		t.Fatalf("no execs after reconnect: %+v", rep.Stats)
	}
	if rep.Stats.LinkReconnects != 1 {
		t.Fatalf("report LinkReconnects = %d, want 1", rep.Stats.LinkReconnects)
	}
	if len(rep.LinkPerCmd) == 0 {
		t.Fatal("report missing per-command link metrics")
	}
}
