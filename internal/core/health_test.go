package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
)

// newReadyEngine builds an engine, runs Setup and hands it over parked at
// executor_main, ready for white-box ladder experiments.
func newReadyEngine(t *testing.T, tweak func(*Config)) *Engine {
	t.Helper()
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	cfg.Seed = 7
	cfg.SampleEvery = time.Minute
	if tweak != nil {
		tweak(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Setup(); err != nil {
		e.Close()
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestLadderRecoversPartialReflash is the torn-image integration case: the
// warm reset cannot revive a corrupted kernel, the reflash rung's flash
// write dies mid-partition on a worn sector (board stays bricked), and the
// power-cycle rung — whose reflash finds the marginal sector recovered —
// digs the board out.
func TestLadderRecoversPartialReflash(t *testing.T) {
	buf := trace.NewBuffer()
	e := newReadyEngine(t, func(c *Config) { c.TraceSink = buf })
	brd := e.Board()
	dev := brd.Flash()
	kp := brd.PartitionTable().Lookup("kernel")
	if kp == nil {
		t.Fatal("no kernel partition")
	}
	sz := brd.Spec.SectorSize
	mid := (kp.Offset + kp.Size/2) / sz

	// Pre-age the middle kernel sector two erase cycles past its siblings,
	// then set the wear limit so only that sector crosses it during the
	// first reflash — after its erase, right when the write starts.
	base := dev.EraseCount(mid)
	dev.Erase(mid)
	dev.Erase(mid)
	brd.SetDegrade(board.DegradeConfig{WearLimit: base + 3, WearFailStreak: 1, Seed: 1})

	// Corrupt the kernel image so the reset rung cannot succeed.
	dev.Corrupt(kp.Offset+64, 16, 0x5A)

	err := e.restore("test")
	if !errors.Is(err, errRestart) {
		t.Fatalf("restore did not recover: %v", err)
	}
	if brd.State() != board.On {
		t.Fatalf("board state after ladder: %v", brd.State())
	}
	if e.stats.RungEscalations != 2 {
		t.Fatalf("escalations: %d, want 2 (reset->reflash->power-cycle)", e.stats.RungEscalations)
	}
	if e.stats.Reflashes != 2 || e.stats.PowerCycles != 1 {
		t.Fatalf("reflashes=%d power-cycles=%d, want 2 and 1", e.stats.Reflashes, e.stats.PowerCycles)
	}
	h := e.Health()
	if h.Dead || h.Score >= 1 || h.Escalations != 2 {
		t.Fatalf("health after deep recovery: %+v", h)
	}

	// The journal records the climb: two escalations, exactly one successful
	// reflash event (the torn attempt emits none), and a balanced, successful
	// restore span.
	var escalations []string
	reflashes, ends := 0, 0
	var lastEnd trace.Event
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case trace.RungEscalate:
			escalations = append(escalations, ev.Reason)
		case trace.Reflash:
			reflashes++
		case trace.RestoreEnd:
			ends++
			lastEnd = ev
		}
	}
	if len(escalations) != 2 || !strings.HasPrefix(escalations[0], "reflash:") ||
		!strings.HasPrefix(escalations[1], "power-cycle:") {
		t.Fatalf("escalation events: %v", escalations)
	}
	if reflashes != 1 {
		t.Fatalf("journal reflash events: %d, want 1 (failed attempt emits none)", reflashes)
	}
	if ends != 1 || lastEnd.Reason != "test" || lastEnd.Dur <= 0 {
		t.Fatalf("restore-end: %+v", lastEnd)
	}
	checkJournalRestoreBalance(t, buf.Events())
}

// TestLadderExhaustionDeclaresBoardDead drives every rung into failure (a
// zeroed resume budget makes re-synchronisation impossible) and checks the
// full climb: all budgets spent, the board declared dead, and a terminal
// ":failed" RestoreEnd keeping the journal balanced.
func TestLadderExhaustionDeclaresBoardDead(t *testing.T) {
	buf := trace.NewBuffer()
	e := newReadyEngine(t, func(c *Config) { c.TraceSink = buf })
	e.cfg.Health.MaxResumes = -1 // no resume ever succeeds

	err := e.restore("test")
	if !errors.Is(err, ErrBoardDead) {
		t.Fatalf("exhausted ladder: %v", err)
	}
	if !e.Health().Dead {
		t.Fatalf("health not marked dead: %+v", e.Health())
	}
	// Default budgets: 1 reset, 1 reflash, 2 power cycles.
	if e.stats.RungEscalations != 2 || e.stats.Reflashes != 3 || e.stats.PowerCycles != 2 {
		t.Fatalf("ladder effort: escalations=%d reflashes=%d power-cycles=%d",
			e.stats.RungEscalations, e.stats.Reflashes, e.stats.PowerCycles)
	}
	var lastEnd trace.Event
	ends := 0
	for _, ev := range buf.Events() {
		if ev.Kind == trace.RestoreEnd {
			ends++
			lastEnd = ev
		}
	}
	if ends != 1 || lastEnd.Reason != "test:failed" {
		t.Fatalf("terminal restore-end: %d events, last %+v", ends, lastEnd)
	}
	checkJournalRestoreBalance(t, buf.Events())
}

func TestResumeCapConfigurable(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.cfg.Health.MaxResumes; got != 32 {
		t.Fatalf("default resume cap: %d, want 32", got)
	}
	e.Close()

	cfg.Health.MaxResumes = 7
	e, err = NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.cfg.Health.MaxResumes; got != 7 {
		t.Fatalf("configured resume cap: %d, want 7", got)
	}
}

// TestCampaignDiesWithDoomedBoard runs a whole campaign on a board doomed to
// die on its second boot: the first restore's reset kills it, the ladder
// reports ErrBoardDead, and the journal still balances — the error path
// emitted its terminal RestoreEnd.
func TestCampaignDiesWithDoomedBoard(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	cfg.Seed = 7
	cfg.SampleEvery = time.Minute
	buf := trace.NewBuffer()
	cfg.TraceSink = buf
	cfg.Degrade = board.DegradeConfig{DieAfterBoots: 2}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err = e.Run(30 * time.Minute)
	if !errors.Is(err, ErrBoardDead) {
		t.Fatalf("doomed campaign: %v", err)
	}
	if !e.Health().Dead {
		t.Fatalf("health not marked dead: %+v", e.Health())
	}
	rep := e.Report()
	checkReportInvariants(t, rep)
	if !rep.Health.Dead {
		t.Fatalf("report health not dead: %+v", rep.Health)
	}

	evs := buf.Events()
	checkJournalRestoreBalance(t, evs)
	begins, ends := 0, 0
	var lastEnd trace.Event
	for _, ev := range evs {
		switch ev.Kind {
		case trace.RestoreBegin:
			begins++
		case trace.RestoreEnd:
			ends++
			lastEnd = ev
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("restore events unbalanced: %d begins, %d ends", begins, ends)
	}
	if !strings.HasSuffix(lastEnd.Reason, ":failed") {
		t.Fatalf("terminal restore-end not marked failed: %+v", lastEnd)
	}
}

func TestHealthScoreEWMA(t *testing.T) {
	e := &Engine{cfg: Config{Health: HealthConfig{}.WithDefaults()}, health: Health{Score: 1}}

	e.noteRestoreOutcome(rungReset, nil)
	if e.health.Score != 1 || e.health.ConsecutiveEscalations != 0 {
		t.Fatalf("clean reset moved the score: %+v", e.health)
	}
	e.noteRestoreOutcome(rungPowerCycle, nil)
	if want := 0.25*0.25 + 0.75*1.0; e.health.Score != want {
		t.Fatalf("score after power-cycle recovery: %v, want %v", e.health.Score, want)
	}
	if e.health.ConsecutiveEscalations != 1 {
		t.Fatalf("consecutive escalations: %d", e.health.ConsecutiveEscalations)
	}
	prev := e.health.Score
	e.noteRestoreOutcome(rungReset, errors.New("boom"))
	if want := 0.75 * prev; e.health.Score != want || e.health.ConsecutiveEscalations != 2 {
		t.Fatalf("score after failure: %+v, want score %v", e.health, want)
	}
	// Repeated deep-rung recoveries drive the board under the sick line.
	for i := 0; i < 10; i++ {
		e.noteRestoreOutcome(rungPowerCycle, nil)
	}
	if !e.health.Sick(0.3) {
		t.Fatalf("chronically power-cycled board not sick: %+v", e.health)
	}
	// A clean streak rehabilitates it.
	for i := 0; i < 10; i++ {
		e.noteRestoreOutcome(rungReset, nil)
	}
	if e.health.Sick(0.3) || e.health.ConsecutiveEscalations != 0 {
		t.Fatalf("recovered board still sick: %+v", e.health)
	}
	// Death is terminal regardless of score.
	e.health.Dead = true
	if !e.health.Sick(0.3) {
		t.Fatal("dead board not sick")
	}
}
