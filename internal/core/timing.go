package core

import (
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/trace"
)

// timedLink sits at the very top of the debug-link stack (above the session
// layer, so retry backoff and fault penalties are included) and attributes
// every command's virtual-clock delta to a board-time category. Defaults:
// resume commands are target execution, flash transfers are reflashing, and
// everything else is link overhead — but while the engine is inside a
// restoration the engine's mode flags coerce non-reflash commands to the
// restoring category, so restoration's reboot/re-arm/resync round trips are
// charged to restoration as the paper accounts them. The triage flag
// outranks everything: during replay/minimization every round trip —
// including restores and reflashes the replays themselves trigger — is
// billed to triage, keeping the bucket an honest total cost of triage.
type timedLink struct {
	inner      link.Link
	acct       *trace.Accountant
	restoring  *bool // engine's in-restore flag
	reflashing *bool // engine's in-reflash flag (within restore)
	triaging   *bool // engine's in-triage flag
	// confirming is the cross-tier confirmation flag: like triage, every
	// round trip of a confirmation replay — including the restores it
	// triggers — bills to the confirming bucket, keeping that bucket an
	// honest total cost of hardware confirmation.
	confirming *bool
	// deltaRestoring marks the snapshot-restore rung: restore-category time
	// charged while it is set lands in the restoring-delta sub-bucket, the
	// rest in restoring-full, keeping Restoring == Delta + Full exact.
	deltaRestoring *bool
}

// cat resolves the category for a command whose default is def.
func (w *timedLink) cat(def trace.Category) trace.Category {
	if *w.triaging {
		return trace.CatTriage
	}
	if *w.confirming {
		return trace.CatConfirm
	}
	if *w.reflashing {
		return trace.CatReflash
	}
	if *w.restoring {
		return trace.CatRestore
	}
	return def
}

// end attributes the command's clock delta, routing restore-category time
// through the delta/full sub-accounting.
func (w *timedLink) end(def trace.Category, start time.Duration) {
	if c := w.cat(def); c == trace.CatRestore {
		w.acct.EndRestore(*w.deltaRestoring, start)
	} else {
		w.acct.End(c, start)
	}
}

func (w *timedLink) ReadMem(addr uint64, n int) ([]byte, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.ReadMem(addr, n)
}

func (w *timedLink) WriteMem(addr uint64, data []byte) error {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.WriteMem(addr, data)
}

func (w *timedLink) SetBreakpoint(addr uint64) error {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.SetBreakpoint(addr)
}

func (w *timedLink) ClearBreakpoint(addr uint64) error {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.ClearBreakpoint(addr)
}

func (w *timedLink) Continue(budget int64) (cpu.Stop, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatExec, start)
	return w.inner.Continue(budget)
}

func (w *timedLink) Reset() error {
	start := w.acct.Begin()
	defer w.end(trace.CatRestore, start)
	return w.inner.Reset()
}

func (w *timedLink) PowerCycle() error {
	start := w.acct.Begin()
	defer w.end(trace.CatRestore, start)
	return w.inner.PowerCycle()
}

func (w *timedLink) FlashErase(off, n int) error {
	start := w.acct.Begin()
	defer w.acct.End(w.flashCat(), start)
	return w.inner.FlashErase(off, n)
}

func (w *timedLink) FlashWrite(off int, data []byte) error {
	start := w.acct.Begin()
	defer w.acct.End(w.flashCat(), start)
	return w.inner.FlashWrite(off, data)
}

// flashCat is the category for flash transfers: reflashing, unless the
// reflash happens while replaying a finding, in which case it is triage
// (or confirmation) cost.
func (w *timedLink) flashCat() trace.Category {
	if *w.triaging {
		return trace.CatTriage
	}
	if *w.confirming {
		return trace.CatConfirm
	}
	return trace.CatReflash
}

func (w *timedLink) DrainCov(addr uint64, maxEntries int) ([]uint32, uint32, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.DrainCov(addr, maxEntries)
}

func (w *timedLink) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatExec, start)
	return w.inner.WriteMemContinue(addr, data, budget)
}

func (w *timedLink) Snapshot() error {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.Snapshot()
}

func (w *timedLink) RestoreSnapshot() (board.RestoreStats, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatRestore, start)
	return w.inner.RestoreSnapshot()
}

func (w *timedLink) DrainUART() ([]string, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.DrainUART()
}

func (w *timedLink) BoardState() (board.State, int, string, error) {
	start := w.acct.Begin()
	defer w.end(trace.CatLink, start)
	return w.inner.BoardState()
}

func (w *timedLink) Close() error { return w.inner.Close() }

var _ link.Link = (*timedLink)(nil)
