package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrBoardDead marks permanent board death: the recovery ladder exhausted
// every rung, or the probe reported the hardware gone for good. Fleet
// supervisors match it with errors.Is to quarantine the board and promote a
// spare instead of aborting the campaign.
var ErrBoardDead = errors.New("core: board dead")

// errResumesExhausted is runToMain giving up: the target booted but never
// parked at executor_main within the resume budget. It escalates the ladder
// (the next rung retries from a cleaner state) rather than killing the
// campaign.
var errResumesExhausted = errors.New("core: target never reached executor_main")

// HealthConfig tunes the escalating recovery ladder and the per-board health
// score. The zero value selects the defaults documented per field.
type HealthConfig struct {
	// ResetAttempts, ReflashAttempts and PowerCycleAttempts are the attempt
	// budgets of the three ladder rungs (defaults 1, 1 and 2). The defaults
	// keep a healthy board's restore sequence identical to the classic
	// single-rung restore: reset, then reflash+reset on failure.
	ResetAttempts      int
	ReflashAttempts    int
	PowerCycleAttempts int
	// MaxResumes bounds the resume loop that re-synchronises at
	// executor_main after a boot (default 32); exhaustion escalates the
	// ladder instead of failing the campaign.
	MaxResumes int
	// Decay is the EWMA weight of the newest restore outcome in the health
	// score (default 0.25): score = decay*outcome + (1-decay)*score.
	Decay float64
	// SickThreshold is the score below which a board counts as chronically
	// sick (default 0.3); fleet supervisors quarantine sick boards when a
	// hot spare is available.
	SickThreshold float64
}

// WithDefaults fills unset fields with the documented defaults.
func (h HealthConfig) WithDefaults() HealthConfig {
	if h.ResetAttempts <= 0 {
		h.ResetAttempts = 1
	}
	if h.ReflashAttempts <= 0 {
		h.ReflashAttempts = 1
	}
	if h.PowerCycleAttempts <= 0 {
		h.PowerCycleAttempts = 2
	}
	if h.MaxResumes <= 0 {
		h.MaxResumes = 32
	}
	if h.Decay <= 0 || h.Decay > 1 {
		h.Decay = 0.25
	}
	if h.SickThreshold <= 0 {
		h.SickThreshold = 0.3
	}
	return h
}

// Health is one board's accumulated condition record.
type Health struct {
	// Score is an EWMA over restore outcomes in [0, 1], starting at 1: a
	// first-rung success scores 1, deeper rungs score lower (reflash 0.55,
	// power-cycle 0.25) and a failed restore scores 0, so a board that
	// keeps needing the expensive rungs drifts toward sick.
	Score float64
	// Restores, Reflashes and PowerCycles count recovery actions taken on
	// this board; Escalations counts ladder climbs past a failed rung.
	Restores    int
	Reflashes   int
	PowerCycles int
	Escalations int
	// ConsecutiveEscalations counts back-to-back restores that needed more
	// than the first rung; a plain reset success resets it.
	ConsecutiveEscalations int
	// Dead marks permanent hardware death.
	Dead bool
}

// Sick reports whether the board is dead or its score fell below threshold.
func (h Health) Sick(threshold float64) bool { return h.Dead || h.Score < threshold }

func (h Health) String() string {
	state := "ok"
	if h.Dead {
		state = "dead"
	}
	return fmt.Sprintf("score=%.2f (%s) restores=%d reflashes=%d power-cycles=%d escalations=%d",
		h.Score, state, h.Restores, h.Reflashes, h.PowerCycles, h.Escalations)
}

// The recovery ladder's rungs, cheapest first.
const (
	rungReset = iota
	rungReflash
	rungPowerCycle
	numRungs
)

var rungNames = [numRungs]string{"reset", "reflash", "power-cycle"}

// rungOutcome is the health-score contribution of a restore satisfied at the
// given rung.
var rungOutcome = [numRungs]float64{1.0, 0.55, 0.25}

// noteRestoreOutcome folds one restore's outcome into the EWMA health score.
func (e *Engine) noteRestoreOutcome(rung int, err error) {
	outcome := 0.0
	if err == nil {
		outcome = rungOutcome[rung]
	}
	d := e.cfg.Health.Decay
	e.health.Score = d*outcome + (1-d)*e.health.Score
	if err != nil || rung > 0 {
		e.health.ConsecutiveEscalations++
	} else {
		e.health.ConsecutiveEscalations = 0
	}
}

// Quarantine records one board the fleet supervisor removed from the pool.
type Quarantine struct {
	// Slot is the shard slot the board was serving; Board is its physical
	// pool index (spares start at Shards).
	Slot  int
	Board int
	// Spare is the physical index of the promoted replacement, or -1 when
	// the spare pool was empty and the slot went unmanned.
	Spare int
	// Reason is "dead" (permanent hardware death) or "sick" (health score
	// below the configured threshold).
	Reason string
	// At is the pool wall-clock time of the quarantine (an epoch barrier).
	At time.Duration
	// Health is the board's final health record.
	Health Health
	// Tier is the tier the board served ("" or "hw" for the hardware pool,
	// "emul" for an emulation explore shard; emulation shards have no spares,
	// so their Spare is always -1).
	Tier string
}
