package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/targets"
)

// sharedPathCalls is the FreeRTOS API surface both tiers model completely —
// kernel objects, scheduler, heap and library code with no hardware
// peripheral behind any call — so a program drawn from it must execute
// identically on the emulation twin and the real board.
var sharedPathCalls = []string{
	"xTaskCreate", "vTaskDelete", "vTaskDelay", "vTaskPrioritySet",
	"xQueueCreate", "xQueueSend", "xQueueReceive", "vQueueDelete",
	"xSemaphoreCreateMutex", "xSemaphoreTake", "xSemaphoreGive",
	"xEventGroupCreate", "xEventGroupSetBits", "xEventGroupWaitBits",
	"xTimerCreate", "xTimerStart", "xTimerStop",
	"pvPortMalloc", "vPortFree", "xPortGetFreeHeapSize",
	"vLoggingPrintf", "json_parse", "json_encode", "json_free",
}

// tierPair builds a hardware engine and its emulation twin over the same OS
// build and seed, so programs replay against byte-identical images on both
// substrates.
func tierPair(t *testing.T, seed int64, filter []string) (hw, em *Engine) {
	t.Helper()
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	spec := boards.STM32H745()
	mk := func(cfg Config) *Engine {
		cfg.Seed = seed
		cfg.SampleEvery = time.Minute
		cfg.CallFilter = filter
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	hw = mk(DefaultConfig(info, spec))
	emCfg := DefaultConfig(info, backend.EmulSpecFor(spec))
	emCfg.Backend = backend.Emulated()
	em = mk(emCfg)
	return hw, em
}

func edgeSet(edges []uint32) map[uint32]bool {
	s := make(map[uint32]bool, len(edges))
	for _, e := range edges {
		s[e] = true
	}
	return s
}

// edgeDiff returns the edges in a but not in b, sorted.
func edgeDiff(a, b map[uint32]bool) []uint32 {
	var out []uint32
	for e := range a {
		if !b[e] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestTierParitySharedPath is the cross-tier parity property the confirmation
// protocol rests on: a program touching no peripheral executes the same
// control flow on the emulation twin as on hardware — identical coverage edge
// sets, identical crash verdicts — because the twin keeps the hardware memory
// map and image and only the unmodelled peripherals diverge.
func TestTierParitySharedPath(t *testing.T) {
	hw, em := tierPair(t, 11, sharedPathCalls)
	for i := 0; i < 6; i++ {
		p := hw.gen.Generate(hw.cfg.MaxCalls)
		hwRes, err := hw.ConfirmProg(p.Clone())
		if err != nil {
			t.Fatalf("prog %d on hardware: %v", i, err)
		}
		emRes, err := em.ConfirmProg(p.Clone())
		if err != nil {
			t.Fatalf("prog %d on emulation: %v", i, err)
		}
		hwSet, emSet := edgeSet(hwRes.Edges), edgeSet(emRes.Edges)
		if miss, extra := edgeDiff(hwSet, emSet), edgeDiff(emSet, hwSet); len(miss) > 0 || len(extra) > 0 {
			t.Fatalf("prog %d %v diverged on the shared path:\nhw-only edges:   %v\nemul-only edges: %v",
				i, p.CallNames(), miss, extra)
		}
		switch {
		case (hwRes.Bug == nil) != (emRes.Bug == nil):
			t.Fatalf("prog %d crash verdicts differ: hw=%v emul=%v", i, hwRes.Bug, emRes.Bug)
		case hwRes.Bug != nil && hwRes.Bug.Sig != emRes.Bug.Sig:
			t.Fatalf("prog %d crash signatures differ: hw=%s emul=%s", i, hwRes.Bug.Sig, emRes.Bug.Sig)
		}
	}
}

// TestTierDivergencePeripheralPath asserts the divergence surface itself:
// peripheral-gated APIs split at the device check, so the same program takes
// driver paths on hardware and ErrNoDev paths on the emulation twin — each
// tier reaches edges the other cannot.
func TestTierDivergencePeripheralPath(t *testing.T) {
	hw, em := tierPair(t, 12, nil)
	p, err := hw.ParseProgJSON([]byte(`{"calls":[
		{"name":"xGpioConfig","args":[{"kind":"const","val":1}]},
		{"name":"xGpioRead","args":[{"kind":"const","val":3}]},
		{"name":"xAdcConfig","args":[{"kind":"const","val":1}]},
		{"name":"xAdcRead","args":[{"kind":"const","val":2}]},
		{"name":"xCanConfig","args":[{"kind":"const","val":1}]}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := hw.ConfirmProg(p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	emRes, err := em.ConfirmProg(p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if hwRes.Bug != nil || emRes.Bug != nil {
		t.Fatalf("peripheral config/read crashed: hw=%v emul=%v", hwRes.Bug, emRes.Bug)
	}
	hwSet, emSet := edgeSet(hwRes.Edges), edgeSet(emRes.Edges)
	hwOnly, emOnly := edgeDiff(hwSet, emSet), edgeDiff(emSet, hwSet)
	if len(hwOnly) == 0 {
		t.Fatal("hardware reached no driver edges the emulation twin missed")
	}
	if len(emOnly) == 0 {
		t.Fatal("emulation twin took no ErrNoDev edges absent on hardware")
	}
	t.Logf("peripheral divergence: %d hw-only edges, %d emul-only edges", len(hwOnly), len(emOnly))
}

// stagedDMAProg is the correctly ordered, correctly parameterised session
// chain that reaches the DMA driver's deep liveness defect: init, channel,
// arm, calibrate with word 7, then sustained runs until the session's op
// count wraps the descriptor ring (ops >= 20, runs >= 6, calib == 7).
func stagedDMAProg(t *testing.T, e *Engine) *prog.Prog {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"calls":[{"name":"xDmaAcquire"}`)
	ctl := func(cmd, val int) {
		fmt.Fprintf(&b, `,{"name":"xDmaControl","args":[{"kind":"result","index":0},{"kind":"const","val":%d},{"kind":"const","val":%d}]}`, cmd, val)
	}
	ctl(1, 0) // init
	ctl(2, 0) // channel 0
	ctl(3, 0) // arm
	ctl(5, 7) // calibrate word 7
	for i := 0; i < 16; i++ {
		ctl(6, 0) // run
	}
	b.WriteString(`]}`)
	p, err := e.ParseProgJSON([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPeripheralBugReproducesOnlyOnHardware is the tiered-fleet rationale in
// one program: a crash in driver code behind a real peripheral fires on the
// hardware tier and is unreachable on the emulation twin, where the driver's
// open fails with ENODEV before any session state exists.
func TestPeripheralBugReproducesOnlyOnHardware(t *testing.T) {
	hw, em := tierPair(t, 13, nil)
	p := stagedDMAProg(t, hw)

	hwRes, err := hw.ConfirmProg(p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if hwRes.Bug == nil {
		t.Fatal("staged DMA session chain did not crash on hardware")
	}
	if !strings.Contains(hwRes.Bug.Title, "descriptor ring") {
		t.Fatalf("wrong hardware crash: %q", hwRes.Bug.Title)
	}
	if hwRes.Bug.Tier != backend.HW.String() {
		t.Fatalf("hardware crash attributed to tier %q", hwRes.Bug.Tier)
	}

	emRes, err := em.ConfirmProg(p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if emRes.Bug != nil {
		t.Fatalf("peripheral-gated bug reproduced on the emulation twin: %v", emRes.Bug)
	}
}
