package core

import (
	"errors"
	"fmt"

	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/trace"
	"github.com/eof-fuzz/eof/internal/triage"
)

// TriageConfig parameterises the crash-triage pipeline.
type TriageConfig struct {
	// Enabled turns the pipeline on: every newly recorded finding is
	// queued, replayed, classified and minimized.
	Enabled bool
	// Replays is the confirmation replay count per finding (default 3).
	Replays int
	// MinBudget bounds the minimization replays spent per finding
	// (default 48).
	MinBudget int
	// Deferred parks findings in the engine's queue without draining it
	// between iterations. Fleet campaigns set it on their shards and drain
	// every queue onto a dedicated triage board at epoch barriers, so
	// confirmation happens on different hardware than discovery.
	Deferred bool
}

// WithDefaults fills zero fields with the defaults.
func (t TriageConfig) WithDefaults() TriageConfig {
	if t.Replays <= 0 {
		t.Replays = 3
	}
	if t.MinBudget <= 0 {
		t.MinBudget = 48
	}
	return t
}

// TriageItem is one finding awaiting triage: the recorded report plus the
// exact program that produced it.
type TriageItem struct {
	Bug *BugReport
	P   *prog.Prog
}

// DrainTriageQueue returns the findings queued since the last drain and
// clears the queue. Fleet campaigns call it at epoch barriers and feed the
// items to the dedicated triage board.
func (e *Engine) DrainTriageQueue() []TriageItem {
	q := e.triageQueue
	e.triageQueue = nil
	return q
}

// drainTriage is the solo-engine path: triage every queued finding in
// discovery order between fuzzing iterations. Deferred mode leaves the queue
// for the fleet.
func (e *Engine) drainTriage() error {
	if !e.cfg.Triage.Enabled || e.cfg.Triage.Deferred {
		return nil
	}
	for len(e.triageQueue) > 0 {
		item := e.triageQueue[0]
		e.triageQueue = e.triageQueue[1:]
		if err := e.TriageBug(item.Bug, item.P); err != nil {
			return err
		}
	}
	return nil
}

// TriageBug runs the full pipeline for one finding on this engine's board:
// N confirmation replays on restored state classify it stable / flaky /
// unreproducible, then — if it reproduced at all — a budgeted ddmin pass
// shrinks the program and simplifies its arguments while the cluster keeps
// matching. The report is updated in place (Reproducibility, ReplayHits,
// OrigCalls, MinCalls, Repro) and all board time spent lands in the
// triaging bucket. A board failure mid-triage keeps whatever verdict was
// reached and surfaces the error to the caller.
func (e *Engine) TriageBug(b *BugReport, p *prog.Prog) error {
	if err := e.Setup(); err != nil {
		return err
	}
	start := e.clock.Now()
	e.tracer.Emit(trace.Event{Kind: trace.TriageBegin, Reason: b.Cluster, Edges: len(p.Calls)})
	e.triaging = true
	defer func() { e.triaging = false }()

	b.OrigCalls = len(p.Calls)
	b.MinCalls = len(p.Calls)
	b.Replays = e.cfg.Triage.Replays
	hits := 0
	var boardErr error
	for i := 0; i < b.Replays; i++ {
		hit, err := e.replayOnce(p, b.Cluster)
		if err != nil {
			boardErr = err
			break
		}
		if hit {
			hits++
		}
	}
	b.ReplayHits = hits
	b.Reproducibility = triage.Classify(hits, b.Replays)

	best := p
	if hits > 0 && boardErr == nil {
		minimized, _, err := triage.Minimize(p, func(cand *prog.Prog) (bool, error) {
			return e.replayOnce(cand, b.Cluster)
		}, e.cfg.Triage.MinBudget, func(phase string, cand *prog.Prog, hit bool) {
			verdict := ":miss"
			if hit {
				verdict = ":hit"
			}
			e.tracer.Emit(trace.Event{Kind: trace.TriageMinStep, Reason: phase + verdict, Edges: len(cand.Calls)})
		})
		if minimized != nil {
			best = minimized
		}
		boardErr = err
	}
	b.MinCalls = len(best.Calls)
	if js, err := prog.ToJSON(best); err == nil {
		b.Repro = string(js)
	}
	b.Prog = best.String()
	e.stats.TriagedBugs++
	e.tracer.Emit(trace.Event{
		Kind:   trace.TriageEnd,
		Exec:   hits,
		Edges:  b.MinCalls,
		Reason: b.Cluster + ":" + b.Reproducibility,
		Dur:    e.clock.Now() - start,
	})
	return boardErr
}

// replayOnce re-runs p on restored state and reports whether the run
// reproduced the cluster.
func (e *Engine) replayOnce(p *prog.Prog, cluster string) (bool, error) {
	if err := e.ensurePristine(); err != nil {
		return false, err
	}
	captured, err := e.executeProg(p)
	if err != nil {
		return false, err
	}
	return captured != nil && captured.Cluster == cluster, nil
}

// ensurePristine restores the board unless the previous restore left it
// parked at executor_main untouched, so every replay starts from clean
// state as the paper's triage protocol requires.
func (e *Engine) ensurePristine() error {
	if e.pristine {
		return nil
	}
	if err := e.restore("triage"); err != nil && !errors.Is(err, errRestart) {
		return err
	}
	return nil
}

// executeProg delivers p and pumps it to completion like a fuzzing
// iteration, but in capture mode: bug reports divert to e.captured instead
// of the campaign's findings, coverage is discarded, and no exec events or
// corpus updates happen. Returns the captured report, if the run crashed.
func (e *Engine) executeProg(p *prog.Prog) (*BugReport, error) {
	buf, err := e.packProg(p)
	if err != nil {
		return nil, err
	}
	e.captured = nil
	e.stats.TriageReplays++
	if err := e.pumpToMain(p, buf); err != nil {
		if errors.Is(err, errRestart) {
			return e.captured, nil
		}
		return nil, err
	}
	// Parked at executor_main without a restore: flush what the run left in
	// the coverage buffer and the UART so the next replay starts clean.
	if _, cerr := e.drainCoverage(); cerr != nil {
		if errors.Is(cerr, ocd.ErrTimeout) {
			if rerr := e.restore("timeout"); rerr != nil && !errors.Is(rerr, errRestart) {
				return nil, rerr
			}
			return e.captured, nil
		}
		return nil, cerr
	}
	if serr := e.scanLog(p); serr != nil {
		return nil, serr
	}
	return e.captured, nil
}

// ConfirmRepro replays a loaded reproducer n times (0 = the configured
// replay count) and returns how many runs reproduced the cluster. This is
// the standalone `-replay` path: parse the repro file, build a fresh engine
// for its target and confirm.
func (e *Engine) ConfirmRepro(p *prog.Prog, cluster string, n int) (int, error) {
	if n <= 0 {
		n = e.cfg.Triage.Replays
	}
	if err := e.Setup(); err != nil {
		return 0, err
	}
	e.triaging = true
	defer func() { e.triaging = false }()
	hits := 0
	for i := 0; i < n; i++ {
		hit, err := e.replayOnce(p, cluster)
		if err != nil {
			return hits, err
		}
		if hit {
			hits++
		}
	}
	return hits, nil
}

// ParseProgJSON parses a JSON-form program against this engine's target
// spec.
func (e *Engine) ParseProgJSON(data []byte) (*prog.Prog, error) {
	return e.target.FromJSON(data)
}

// BuildRepro renders a triaged finding as a portable repro file.
func BuildRepro(b *BugReport) (*triage.Repro, error) {
	if b.Repro == "" {
		return nil, fmt.Errorf("core: bug %q has no serialized reproducer", b.Sig)
	}
	return &triage.Repro{
		Version:         triage.ReproVersion,
		OS:              b.OS,
		Board:           b.Board,
		Cluster:         b.Cluster,
		Sig:             b.Sig,
		Kind:            b.Kind,
		Monitor:         b.Monitor,
		Title:           b.Title,
		Reproducibility: b.Reproducibility,
		ReplayHits:      b.ReplayHits,
		Replays:         b.Replays,
		OrigCalls:       b.OrigCalls,
		MinCalls:        b.MinCalls,
		Prog:            []byte(b.Repro),
	}, nil
}
