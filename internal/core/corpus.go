package core

import (
	"math/rand"

	"github.com/eof-fuzz/eof/internal/prog"
)

// maxCorpus bounds retained seeds; the least productive seed is evicted.
const maxCorpus = 256

// Seed is one retained interesting input.
type Seed struct {
	P *prog.Prog
	// NewEdges is how many globally new edges the seed contributed.
	NewEdges int
	// Mutations counts how often the seed was picked for mutation.
	Mutations int
}

func (s *Seed) weight() float64 {
	w := 1.0 + float64(s.NewEdges)
	// Fresh seeds get explored before battle-worn ones.
	w /= 1.0 + float64(s.Mutations)/8.0
	return w
}

// Corpus holds coverage-increasing inputs for further mutation.
type Corpus struct {
	seeds []*Seed
}

// Len returns the number of retained seeds.
func (c *Corpus) Len() int { return len(c.seeds) }

// Add retains a seed, evicting the lowest-weight one past capacity.
func (c *Corpus) Add(p *prog.Prog, newEdges int) {
	c.seeds = append(c.seeds, &Seed{P: p, NewEdges: newEdges})
	if len(c.seeds) <= maxCorpus {
		return
	}
	worst, worstW := 0, c.seeds[0].weight()
	for i, s := range c.seeds[1:] {
		if w := s.weight(); w < worstW {
			worst, worstW = i+1, w
		}
	}
	c.seeds = append(c.seeds[:worst], c.seeds[worst+1:]...)
}

// Pick samples a seed weighted by contribution, or nil when empty.
func (c *Corpus) Pick(rnd *rand.Rand) *Seed {
	if len(c.seeds) == 0 {
		return nil
	}
	total := 0.0
	for _, s := range c.seeds {
		total += s.weight()
	}
	x := rnd.Float64() * total
	for _, s := range c.seeds {
		x -= s.weight()
		if x <= 0 {
			s.Mutations++
			return s
		}
	}
	s := c.seeds[len(c.seeds)-1]
	s.Mutations++
	return s
}
