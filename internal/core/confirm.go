package core

import (
	"errors"

	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/prog"
	"github.com/eof-fuzz/eof/internal/trace"
)

// ConfirmItem is one emulation-tier observation awaiting hardware
// re-execution: a corpus-admitted input together with the fresh edges that
// earned its slot, or a crashing input together with the recorded bug.
type ConfirmItem struct {
	P *prog.Prog
	// Edges are the fresh edge IDs the emulation exec contributed (coverage
	// items; nil for crash items).
	Edges []uint32
	// Bug is the emulation-tier finding (crash items; nil for coverage).
	Bug *BugReport
}

// DrainConfirmQueue returns the confirmation items queued since the last
// drain and clears the queue. The fleet calls it on emulation shards at
// epoch barriers and replays the items on the hardware pool.
func (e *Engine) DrainConfirmQueue() []ConfirmItem {
	q := e.confirmQueue
	e.confirmQueue = nil
	return q
}

// ConfirmResult is what one hardware re-execution observed.
type ConfirmResult struct {
	// Edges is every edge the replay drained (its ground-truth execution
	// footprint, including any post-restore boot coverage).
	Edges []uint32
	// Bug is the crash the replay hit, nil when it ran clean. Unlike triage
	// capture, the crash was also recorded as a regular finding: hardware
	// observations are ground truth, whatever tier asked for the replay.
	Bug *BugReport
}

// ConfirmProg re-executes p on this engine's (hardware) substrate from
// pristine state and reports the ground truth: the edges the run actually
// executed and the crash it actually hit. Board time lands in the confirming
// bucket; coverage and crashes feed the campaign normally, so a confirmed
// emulation seed propagates to the hardware corpus and sync delta, and a
// confirmed crash enters triage like any native finding.
func (e *Engine) ConfirmProg(p *prog.Prog) (ConfirmResult, error) {
	if err := e.Setup(); err != nil {
		return ConfirmResult{}, err
	}
	buf, err := e.packProg(p)
	if err != nil {
		return ConfirmResult{}, err
	}
	e.confirming = true
	e.confirmSeen = nil
	e.confirmCaptured = nil
	defer func() {
		e.confirming = false
		e.confirmSeen = nil
		e.confirmCaptured = nil
	}()
	e.stats.ConfirmReplays++
	// Start from clean state like a triage replay: an emulation exec always
	// runs on a freshly reset VM, so the hardware comparison must too.
	if !e.pristine {
		if rerr := e.restore("confirm"); rerr != nil && !errors.Is(rerr, errRestart) {
			return ConfirmResult{}, rerr
		}
	}
	res := ConfirmResult{}
	if err := e.pumpToMain(p, buf); err != nil {
		if !errors.Is(err, errRestart) {
			return ConfirmResult{}, err
		}
		// Crashed (or otherwise restored): the capture below holds whatever
		// the run hit; coverage drained before the restore was ingested.
		res.Edges = e.confirmSeen
		res.Bug = e.confirmCaptured
		return res, nil
	}
	// Parked at executor_main: collect the run's feedback like an iteration.
	fresh, cerr := e.drainCoverage()
	if cerr != nil {
		if !errors.Is(cerr, ocd.ErrTimeout) {
			return ConfirmResult{}, cerr
		}
		if rerr := e.restore("timeout"); rerr != nil && !errors.Is(rerr, errRestart) {
			return ConfirmResult{}, rerr
		}
	} else if fresh > 0 && e.cfg.FeedbackGuided {
		// The emulation tier's seed is hardware-novel too: admit it so it
		// propagates to the hardware corpus and, via the sync delta, to the
		// sibling shards at the next barrier.
		seed := p.Clone()
		e.corpus.Add(seed, fresh)
		e.tracer.Emit(trace.Event{Kind: trace.CorpusAdd, Exec: e.stats.Execs, Edges: fresh})
		e.delta.Seeds = append(e.delta.Seeds, SeedShare{
			P: seed, NewEdges: fresh, Edges: append([]uint32(nil), e.lastFresh...),
		})
	}
	if serr := e.scanLog(p); serr != nil {
		return ConfirmResult{}, serr
	}
	res.Edges = e.confirmSeen
	res.Bug = e.confirmCaptured
	return res, nil
}
