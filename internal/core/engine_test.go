package core

import (
	"encoding/binary"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/targets"
)

// runShort runs a small campaign and returns the report.
func runShort(t *testing.T, osName string, budget time.Duration, tweak func(*Config)) *Report {
	t.Helper()
	info, err := targets.ByName(osName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	cfg.SampleEvery = time.Minute
	if tweak != nil {
		tweak(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rep, err := e.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCampaignFreeRTOS(t *testing.T) {
	rep := runShort(t, "freertos", 4*time.Minute, nil)
	if rep.Stats.Execs < 20 {
		t.Fatalf("too few execs: %+v", rep.Stats)
	}
	if rep.Edges < 100 {
		t.Fatalf("too little coverage: %d edges", rep.Edges)
	}
	if len(rep.Series) < 2 {
		t.Fatalf("series too short: %d", len(rep.Series))
	}
	t.Logf("freertos: %d execs, %d edges, %d bugs, stats=%+v",
		rep.Stats.Execs, rep.Edges, len(rep.Bugs), rep.Stats)
}

func TestCampaignFindsBugsRTThread(t *testing.T) {
	rep := runShort(t, "rtthread", 20*time.Minute, func(c *Config) {
		c.Seed = 1234
	})
	if len(rep.Bugs) == 0 {
		t.Fatalf("no bugs in 20 virtual minutes on rtthread; stats=%+v edges=%d", rep.Stats, rep.Edges)
	}
	for _, b := range rep.Bugs {
		t.Logf("bug: [%s/%s] %s (sig %s, found at %v)", b.Monitor, b.Kind, b.Title, b.Sig, b.FoundAt)
	}
	if rep.Stats.Restores == 0 {
		t.Fatal("bugs found but no restores recorded")
	}
}

func TestCoverageGuidanceBeatsNone(t *testing.T) {
	budget := 30 * time.Minute
	guided := runShort(t, "zephyr", budget, func(c *Config) { c.Seed = 7 })
	unguided := runShort(t, "zephyr", budget, func(c *Config) {
		c.Seed = 7
		c.FeedbackGuided = false
	})
	t.Logf("guided=%d edges (%d execs), unguided=%d edges (%d execs)",
		guided.Edges, guided.Stats.Execs, unguided.Edges, unguided.Stats.Execs)
	if guided.Edges <= unguided.Edges*90/100 {
		t.Fatalf("feedback guidance did not help: %d vs %d", guided.Edges, unguided.Edges)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := runShort(t, "pokos", 3*time.Minute, func(c *Config) { c.Seed = 99 })
	b := runShort(t, "pokos", 3*time.Minute, func(c *Config) { c.Seed = 99 })
	if a.Edges != b.Edges || a.Stats.Execs != b.Stats.Execs {
		t.Fatalf("campaigns diverged: %d/%d edges, %d/%d execs",
			a.Edges, b.Edges, a.Stats.Execs, b.Stats.Execs)
	}
}

func TestWatchdogsRecoverFromBrick(t *testing.T) {
	// FreeRTOS bug #13 corrupts flash; a campaign long enough to hit it must
	// reflash and keep going.
	rep := runShort(t, "freertos", 45*time.Minute, func(c *Config) { c.Seed = 5 })
	if rep.Stats.Reflashes == 0 {
		t.Skipf("load_partitions bug not hit in this window; stats=%+v", rep.Stats)
	}
	if rep.Stats.Execs < 50 {
		t.Fatalf("campaign stalled after reflash: %+v", rep.Stats)
	}
	found := false
	for _, b := range rep.Bugs {
		if b.Fault != nil && len(b.Fault.Frames) > 0 && b.Fault.Frames[0].Func == "load_partitions" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reflash happened but load_partitions bug not attributed; bugs=%v", titles(rep.Bugs))
	}
}

func titles(bugs []*BugReport) []string {
	out := make([]string, len(bugs))
	for i, b := range bugs {
		out[i] = b.Title
	}
	return out
}

func TestNoWatchdogsCountsManualInterventions(t *testing.T) {
	rep := runShort(t, "rtthread", 15*time.Minute, func(c *Config) {
		c.Seed = 21
		c.Watchdogs = Watchdogs{} // everything off
	})
	// Without watchdogs, hangs burn the hard cap; the counter must reflect
	// the interventions a human operator would have performed.
	t.Logf("manual interventions: %d (stats %+v)", rep.Stats.ManualInterventions, rep.Stats)
	if rep.Stats.Execs == 0 {
		t.Fatal("no execs at all")
	}
}

// TestLegacyDrainTwoReadPath exercises the legacy (non-vectored) coverage
// drain with a buffer holding more entries than the speculative first
// transfer covers: the engine must issue exactly three link round trips
// (speculative read, tail read, count-word clear), ingest every entry, and
// leave the count word zeroed.
func TestLegacyDrainTwoReadPath(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745()) // 4096 cov entries
	cfg.LegacyLink = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}

	// Fabricate a buffer fuller than the 16+1024*4-byte speculative window.
	const count = 1500
	buf := make([]byte, 16+count*4)
	binary.LittleEndian.PutUint32(buf[0:], cov.Magic)
	binary.LittleEndian.PutUint32(buf[4:], count)
	binary.LittleEndian.PutUint32(buf[8:], uint32(cfg.Board.CovEntries))
	binary.LittleEndian.PutUint32(buf[12:], 0)
	for i := 0; i < count; i++ {
		// High values no real run produces, so every entry is fresh.
		binary.LittleEndian.PutUint32(buf[16+i*4:], 0xE000_0000+uint32(i))
	}
	if err := e.client.WriteMem(e.lay.Cov, buf); err != nil {
		t.Fatal(err)
	}

	ops := e.metrics.Ops()
	fresh, err := e.drainCoverageLegacy()
	if err != nil {
		t.Fatal(err)
	}
	if fresh != count {
		t.Fatalf("ingested %d fresh edges, want %d (tail beyond the first read lost?)", fresh, count)
	}
	if got := e.metrics.Ops() - ops; got != 3 {
		t.Fatalf("overfull drain cost %d round trips, want 3 (read, tail read, clear)", got)
	}
	hdr, err := e.client.ReadMem(e.lay.Cov+4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c := binary.LittleEndian.Uint32(hdr); c != 0 {
		t.Fatalf("count word not cleared: %d", c)
	}

	// A buffer within the speculative window costs only two round trips.
	binary.LittleEndian.PutUint32(buf[4:], 10)
	if err := e.client.WriteMem(e.lay.Cov, buf[:16+10*4]); err != nil {
		t.Fatal(err)
	}
	ops = e.metrics.Ops()
	if _, err := e.drainCoverageLegacy(); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.Ops() - ops; got != 2 {
		t.Fatalf("small drain cost %d round trips, want 2 (read, clear)", got)
	}
}

// TestVectoredFallbackToLegacy verifies the engine degrades to the legacy
// sequences when the probe rejects vectored commands, rather than failing
// the campaign.
func TestVectoredFallbackToLegacy(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	e.srv.NoVectored = true
	if !e.vectored {
		t.Fatal("engine should start vectored")
	}
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if e.vectored {
		t.Fatal("engine did not latch the legacy fallback")
	}
	rep := e.Report()
	if rep.Stats.Execs < 5 || rep.Edges < 50 {
		t.Fatalf("campaign degraded badly after fallback: %+v edges=%d", rep.Stats, rep.Edges)
	}
}
