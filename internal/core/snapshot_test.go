package core

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
)

// TestSnapshotCampaignInvariants runs a snapshot-enabled campaign and asserts
// the new accounting identities: every restore is either delta or full, the
// restoring bucket splits exactly into its sub-buckets, TimeBy still sums to
// Duration, and the journal carries the snapshot events in balance.
func TestSnapshotCampaignInvariants(t *testing.T) {
	buf := trace.NewBuffer()
	rep := runShort(t, "freertos", 15*time.Minute, func(c *Config) {
		c.Seed = 7
		c.Snapshots = true
		c.TraceSink = buf
	})
	checkReportInvariants(t, rep)
	st := rep.Stats
	if st.DeltaRestores == 0 {
		t.Fatalf("snapshot campaign made no delta restores: %+v", st)
	}
	if st.SnapshotTakes == 0 {
		t.Fatalf("snapshot campaign cached no snapshots: %+v", st)
	}
	if st.DeltaRestores+st.FullRestores != st.Restores {
		t.Fatalf("DeltaRestores(%d) + FullRestores(%d) != Restores(%d)",
			st.DeltaRestores, st.FullRestores, st.Restores)
	}
	if st.DeltaRestores > 0 && st.RestoreBytesShipped+st.RestoreBytesSkipped == 0 {
		t.Fatalf("delta restores moved no bytes: %+v", st)
	}
	if got := rep.TimeBy.RestoringDelta + rep.TimeBy.RestoringFull; got != rep.TimeBy.Restoring {
		t.Fatalf("RestoringDelta(%v) + RestoringFull(%v) != Restoring(%v)",
			rep.TimeBy.RestoringDelta, rep.TimeBy.RestoringFull, rep.TimeBy.Restoring)
	}
	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("TimeBy %v sums to %v, want Duration %v exactly",
			rep.TimeBy, rep.TimeBy.Sum(), rep.Duration)
	}

	evs := buf.Events()
	checkJournalRestoreBalance(t, evs)
	counts := map[trace.Kind]int{}
	openRestore := false
	for i, ev := range evs {
		counts[ev.Kind]++
		if ev.Kind == trace.RestoreBegin {
			openRestore = true
		}
		if ev.Kind == trace.RestoreEnd {
			openRestore = false
		}
		if ev.Kind == trace.DeltaRestore {
			if !openRestore {
				t.Fatalf("event %d: delta-restore outside a restore span", i)
			}
			if ev.Edges <= 0 {
				t.Fatalf("event %d: delta-restore shipped no bytes: %+v", i, ev)
			}
		}
	}
	if counts[trace.DeltaRestore] != st.DeltaRestores {
		t.Fatalf("journal has %d delta-restore events, report says %d",
			counts[trace.DeltaRestore], st.DeltaRestores)
	}
	if counts[trace.SnapshotTake] != st.SnapshotTakes {
		t.Fatalf("journal has %d snapshot-take events, report says %d",
			counts[trace.SnapshotTake], st.SnapshotTakes)
	}
	if counts[trace.RestoreBegin] != st.Restores {
		t.Fatalf("journal has %d restore-begin events, report says %d restores",
			counts[trace.RestoreBegin], st.Restores)
	}
	t.Logf("snapshots: %d takes, %d delta / %d full restores, %d B shipped / %d B skipped, restoring=%v (delta=%v full=%v)",
		st.SnapshotTakes, st.DeltaRestores, st.FullRestores,
		st.RestoreBytesShipped, st.RestoreBytesSkipped,
		rep.TimeBy.Restoring, rep.TimeBy.RestoringDelta, rep.TimeBy.RestoringFull)
}

// TestSnapshotLegacyLinkFallsBack asserts that -snapshots with a legacy probe
// degrades cleanly: no vectored commands means no snapshot is ever taken and
// every restore walks the classic ladder.
func TestSnapshotLegacyLinkFallsBack(t *testing.T) {
	rep := runShort(t, "freertos", 10*time.Minute, func(c *Config) {
		c.Seed = 7
		c.Snapshots = true
		c.LegacyLink = true
	})
	st := rep.Stats
	if st.SnapshotTakes != 0 || st.DeltaRestores != 0 {
		t.Fatalf("legacy link took snapshots anyway: %+v", st)
	}
	if st.FullRestores != st.Restores {
		t.Fatalf("legacy link restores not all full: %+v", st)
	}
	if rep.TimeBy.RestoringDelta != 0 {
		t.Fatalf("legacy link charged delta restore time: %v", rep.TimeBy.RestoringDelta)
	}
	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("TimeBy %v sums to %v, want Duration %v", rep.TimeBy, rep.TimeBy.Sum(), rep.Duration)
	}
}

// TestSnapshotsOffIsByteIdentical asserts the default-off promise: a campaign
// with Snapshots=false produces the exact journal it produced before the
// snapshot rung existed (no snapshot events, no delta stats).
func TestSnapshotsOffIsByteIdentical(t *testing.T) {
	run := func(snap bool) ([]trace.Event, *Report) {
		buf := trace.NewBuffer()
		rep := runShort(t, "freertos", 6*time.Minute, func(c *Config) {
			c.Seed = 42
			c.Snapshots = snap
			c.LegacyLink = true // force identical link behavior in both runs
			c.TraceSink = buf
		})
		return buf.Events(), rep
	}
	offEvs, offRep := run(false)
	legEvs, legRep := run(true)
	if len(offEvs) != len(legEvs) {
		t.Fatalf("snapshots-on-legacy changed the journal: %d vs %d events", len(offEvs), len(legEvs))
	}
	for i := range offEvs {
		if offEvs[i] != legEvs[i] {
			t.Fatalf("journal diverges at %d:\n%+v\n%+v", i, offEvs[i], legEvs[i])
		}
	}
	if offRep.Stats.Execs != legRep.Stats.Execs || offRep.Edges != legRep.Edges {
		t.Fatalf("reports diverge: %d/%d execs, %d/%d edges",
			offRep.Stats.Execs, legRep.Stats.Execs, offRep.Edges, legRep.Edges)
	}
}

// TestSnapshotMissAttribution forces a cold cache on a snapshot-enabled
// engine and asserts the resulting full restore is accounted under the
// "snapshot-miss" reason (keeping sum(RestoresByReason) == Restores).
func TestSnapshotMissAttribution(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(info, boards.STM32H745())
	cfg.Snapshots = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Setup(); err != nil {
		t.Fatal(err)
	}
	if !e.snapValid {
		t.Fatal("setup did not cache a snapshot")
	}

	// Cold cache: the restore must rewrite its reason and take the ladder.
	e.snapValid = false
	if err := e.restore("timeout"); err != errRestart {
		t.Fatalf("restore: %v", err)
	}
	if e.stats.RestoresByReason["snapshot-miss"] != 1 {
		t.Fatalf("miss not attributed: %v", e.stats.RestoresByReason)
	}
	if e.stats.FullRestores != 1 || e.stats.DeltaRestores != 0 {
		t.Fatalf("miss not a full restore: %+v", e.stats)
	}
	if !e.snapValid {
		t.Fatal("ladder recovery did not re-cache the snapshot")
	}

	// Warm cache: the next restore takes the delta rung under its own reason.
	if err := e.restore("timeout"); err != errRestart {
		t.Fatalf("restore: %v", err)
	}
	if e.stats.RestoresByReason["timeout"] != 1 {
		t.Fatalf("warm restore misattributed: %v", e.stats.RestoresByReason)
	}
	if e.stats.DeltaRestores != 1 {
		t.Fatalf("warm restore not delta: %+v", e.stats)
	}
	sum := 0
	for _, n := range e.stats.RestoresByReason {
		sum += n
	}
	if sum != e.stats.Restores || e.stats.DeltaRestores+e.stats.FullRestores != e.stats.Restores {
		t.Fatalf("restore counts out of balance: %+v", e.stats)
	}
}
