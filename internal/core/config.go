// Package core implements the EOF engine: the feedback-guided fuzzing loop
// that drives an embedded OS on a (virtual) board purely through the debug
// port — test-case delivery into the target mailbox, breakpoint-synchronised
// execution, coverage collection, log and exception bug monitors, the
// connection-timeout and PC-stall liveness watchdogs of Algorithm 1, and
// state restoration by reflashing every partition when the image is damaged.
package core

import (
	"time"

	"github.com/eof-fuzz/eof/internal/backend"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/trace"
)

// Watchdogs selects the liveness mechanisms (ablation E7 disables them
// individually).
type Watchdogs struct {
	// ConnectionTimeout treats a dead debug link as a boot failure /
	// unresponsive target (Algorithm 1, watchdog 1).
	ConnectionTimeout bool
	// PCStall treats repeated budget-exhausted stops at an unchanged PC as
	// a wedged target (Algorithm 1, watchdog 2).
	PCStall bool
	// ExecTimeout bounds one test case's virtual runtime.
	ExecTimeout time.Duration
}

// DefaultWatchdogs enables everything the paper describes.
func DefaultWatchdogs() Watchdogs {
	return Watchdogs{
		ConnectionTimeout: true,
		PCStall:           true,
		ExecTimeout:       3 * time.Second,
	}
}

// Monitors selects the bug detectors.
type Monitors struct {
	// Log matches crash/assert patterns in the UART stream.
	Log bool
	// Exception plants breakpoints at the OS's exception functions and
	// reads the fault status block when they fire.
	Exception bool
}

// DefaultMonitors enables both detectors.
func DefaultMonitors() Monitors {
	return Monitors{Log: true, Exception: true}
}

// Config parameterises one engine instance.
type Config struct {
	OS    *osinfo.Info
	Board *board.Spec
	Seed  int64

	// Backend selects the execution substrate the engine drives. Nil picks
	// the classic hardware stack (debug probe over the board model);
	// backend.Emulated swaps in VM facilities behind the same link contract,
	// turning this engine into an emulation explore shard.
	Backend backend.Factory
	// ConfirmCapture makes the engine queue every corpus-admitted input
	// (with the fresh edges that earned its slot) and every recorded crash
	// as ConfirmItems for re-execution on a hardware board. Set on emulation
	// tier shards; the fleet drains the queue at epoch barriers.
	ConfirmCapture bool

	// Instrumented selects the SanCov-instrumented image (off only for the
	// overhead experiments).
	Instrumented bool
	// FeedbackGuided enables corpus retention, mutation and adjacency
	// rewards (off = the EOF-nf variant).
	FeedbackGuided bool
	// APIAware uses the validated specification for argument generation;
	// off degenerates to AFL-style random arguments (ablation E8).
	APIAware bool

	Watchdogs Watchdogs
	Monitors  Monitors

	// ContinueBudget is the per-continue block budget (the debugger's
	// halt-and-inspect interval).
	ContinueBudget int64
	// MaxContinues hard-caps debugger round-trips per test case so a
	// watchdog-less configuration cannot livelock; hitting it counts as a
	// manual intervention.
	MaxContinues int
	// MaxCalls bounds generated program length.
	MaxCalls int
	// MutateBias is the probability of mutating a corpus seed instead of
	// generating fresh, when the corpus is non-empty.
	MutateBias float64
	// Latency overrides the debug-adapter cost model (zero value = default).
	Latency ocd.Latency
	// SampleEvery sets the coverage time-series resolution.
	SampleEvery time.Duration

	// LegacyLink disables the vectored debug-link commands (vCovDrain,
	// vRun, vSnap, vRestore), forcing the multi-round-trip sequences older
	// probe firmware needs. Used by the round-trip-accounting comparisons;
	// the engine also falls back automatically when the probe rejects a
	// vectored command.
	LegacyLink bool

	// Snapshots enables the snapshot/delta restore rung: the engine caches
	// a golden snapshot probe-side at interesting kernel states and
	// satisfies restores with a single vRestore round trip shipping only
	// dirty state. Off by default, so classic campaigns (and their journals)
	// are byte-identical to previous releases. Requires a vectored-capable
	// probe; with LegacyLink (or after an Ebadcmd latch) every restore falls
	// back to the classic ladder.
	Snapshots bool
	// SnapshotStates selects the kernel states snapshots are (re-)taken at,
	// as a comma-separated subset of "post-boot,post-init". Empty selects
	// both; with both enabled the cache ends at the quieter post-init park.
	SnapshotStates string

	// LinkFaults configures deterministic fault injection on the debug
	// link (flaky-adapter modelling). The zero value injects nothing. A
	// zero LinkFaults.Seed defaults to the campaign Seed, so fleet shards
	// draw distinct fault sequences automatically.
	LinkFaults link.FaultConfig
	// LinkRetries bounds the session layer's transparent per-command
	// retries of transient link faults (0 = link.DefaultRetries, negative
	// disables retries so every fault surfaces to the watchdogs).
	LinkRetries int
	// LinkBackoff is the base retry backoff charged to the virtual clock,
	// doubling per attempt (0 = link.DefaultBackoff).
	LinkBackoff time.Duration

	// Triage configures the crash-triage pipeline: replay confirmation,
	// ddmin minimization and cluster-keyed repro emission. The zero value
	// disables triage entirely (findings are reported exactly as before).
	Triage TriageConfig

	// Health tunes the escalating recovery ladder (per-rung attempt
	// budgets, resume cap, EWMA decay, sick threshold). Zero fields take
	// the HealthConfig defaults.
	Health HealthConfig
	// Degrade configures the virtual board's degradation model: wear-
	// limited flash sectors, intermittent boot failures, permanent death.
	// The zero value is a perfect board. A zero Degrade.Seed defaults to
	// the campaign Seed, so fleet shards age independently but
	// deterministically.
	Degrade board.DegradeConfig

	// Shard tags this engine's trace events with its fleet shard index
	// (0 in solo mode).
	Shard int
	// TraceSink receives the engine's structured trace journal (exec,
	// coverage, restore, link and sync events). Nil discards events. In
	// fleet mode the fleet substitutes per-shard buffers and merges them
	// into the configured sink in shard order at every epoch barrier, so
	// the journal stays deterministic.
	TraceSink trace.Sink
	// StatusSink receives the same events live (unbuffered, concurrently
	// from every fleet shard — implementations must be thread-safe). Used
	// by the -status-every progress display.
	StatusSink trace.Sink
	// FlightRecorder sets the size of the pre-crash event ring attached to
	// every bug report (0 = trace.DefaultRingSize).
	FlightRecorder int

	// CallFilter restricts the specification to the named calls — the
	// application-level evaluation fuzzes only the HTTP/JSON entry points.
	// Empty means the full API surface.
	CallFilter []string
	// CovModules confines instrumentation to functions whose source file
	// starts with one of these prefixes, mirroring a build that instruments
	// only the modules under test. Empty instruments the whole image.
	CovModules []string
}

// DefaultConfig returns the paper's EOF configuration for an OS/board pair.
func DefaultConfig(os *osinfo.Info, spec *board.Spec) Config {
	return Config{
		OS:             os,
		Board:          spec,
		Seed:           1,
		Instrumented:   true,
		FeedbackGuided: true,
		APIAware:       true,
		Watchdogs:      DefaultWatchdogs(),
		Monitors:       DefaultMonitors(),
		ContinueBudget: 500_000,
		MaxContinues:   256,
		MaxCalls:       10,
		MutateBias:     0.7,
		Latency:        ocd.DefaultLatency(),
		SampleEvery:    5 * time.Minute,
	}
}
