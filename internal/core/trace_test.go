package core

import (
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

// checkReportInvariants asserts the accounting identities every campaign
// report must satisfy.
func checkReportInvariants(t *testing.T, rep *Report) {
	t.Helper()
	sum := 0
	for reason, n := range rep.Stats.RestoresByReason {
		if n <= 0 {
			t.Fatalf("restore reason %q has non-positive count %d", reason, n)
		}
		sum += n
	}
	if sum != rep.Stats.Restores {
		t.Fatalf("sum(RestoresByReason)=%d != Restores=%d (%v)",
			sum, rep.Stats.Restores, rep.Stats.RestoresByReason)
	}
	for i := 1; i < len(rep.Series); i++ {
		if rep.Series[i].At <= rep.Series[i-1].At {
			t.Fatalf("series At not increasing at %d: %v then %v",
				i, rep.Series[i-1].At, rep.Series[i].At)
		}
		if rep.Series[i].Edges < rep.Series[i-1].Edges {
			t.Fatalf("series Edges decreased at %d: %d then %d",
				i, rep.Series[i-1].Edges, rep.Series[i].Edges)
		}
	}
	if rep.Health.Score < 0 || rep.Health.Score > 1 {
		t.Fatalf("health score out of range: %+v", rep.Health)
	}
	if rep.BoardHealth == nil {
		// Solo report: the stats recovery counters and the health record count
		// the same events.
		if rep.Health.Restores != rep.Stats.Restores ||
			rep.Health.Reflashes != rep.Stats.Reflashes ||
			rep.Health.PowerCycles != rep.Stats.PowerCycles ||
			rep.Health.Escalations != rep.Stats.RungEscalations {
			t.Fatalf("health/stats recovery counters disagree: %+v vs %+v",
				rep.Health, rep.Stats)
		}
	}
}

// checkJournalRestoreBalance asserts the journal invariant every restore path
// must keep: each shard's RestoreBegin is closed by exactly one terminal
// RestoreEnd — including the error paths where the board never came back.
func checkJournalRestoreBalance(t *testing.T, evs []trace.Event) {
	t.Helper()
	open := map[int]bool{}
	for i, ev := range evs {
		switch ev.Kind {
		case trace.RestoreBegin:
			if open[ev.Shard] {
				t.Fatalf("event %d: shard %d restore-begin inside an open restore", i, ev.Shard)
			}
			open[ev.Shard] = true
		case trace.RestoreEnd:
			if !open[ev.Shard] {
				t.Fatalf("event %d: shard %d restore-end without a begin", i, ev.Shard)
			}
			open[ev.Shard] = false
		}
	}
	for shard, o := range open {
		if o {
			t.Fatalf("journal ends inside shard %d's restore (missing terminal RestoreEnd)", shard)
		}
	}
}

func TestTimeBySumsToDuration(t *testing.T) {
	rep := runShort(t, "freertos", 5*time.Minute, func(c *Config) { c.Seed = 7 })
	checkReportInvariants(t, rep)
	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("TimeBy %v sums to %v, want Duration %v exactly",
			rep.TimeBy, rep.TimeBy.Sum(), rep.Duration)
	}
	if rep.TimeBy.SyncBarrier != 0 {
		t.Fatalf("solo campaign charged sync-barrier time: %v", rep.TimeBy.SyncBarrier)
	}
	if rep.TimeBy.Executing <= 0 || rep.TimeBy.LinkOverhead <= 0 {
		t.Fatalf("empty core buckets: %v", rep.TimeBy)
	}
	t.Logf("time accounting: %s", rep.TimeBy)
}

func TestTimeByCoversLinkFaultCosts(t *testing.T) {
	// Retry backoff and fault penalties advance the clock inside the session
	// layer; the timed wrapper sits above it, so the identity must survive a
	// heavily faulted link too.
	rep := runShort(t, "freertos", 5*time.Minute, func(c *Config) {
		c.Seed = 7
		c.LinkFaults.Drop = 0.05
		c.LinkFaults.Stall = 0.01
	})
	if rep.Stats.LinkRetries == 0 {
		t.Fatal("fault config injected nothing")
	}
	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("faulted link broke accounting: %v != %v", rep.TimeBy.Sum(), rep.Duration)
	}
}

func TestBugsCarryFlightRecorderTrace(t *testing.T) {
	rep := runShort(t, "rtthread", 20*time.Minute, func(c *Config) { c.Seed = 1234 })
	if len(rep.Bugs) == 0 {
		t.Fatal("campaign found no bugs to attach traces to")
	}
	for _, b := range rep.Bugs {
		if len(b.Trace) == 0 {
			t.Fatalf("bug %q has an empty flight-recorder trace", b.Sig)
		}
		for i := 1; i < len(b.Trace); i++ {
			if b.Trace[i].Seq != b.Trace[i-1].Seq+1 {
				t.Fatalf("bug %q trace not contiguous at %d: seq %d then %d",
					b.Sig, i, b.Trace[i-1].Seq, b.Trace[i].Seq)
			}
		}
		last := b.Trace[len(b.Trace)-1]
		if last.At > b.FoundAt+time.Minute {
			t.Fatalf("bug %q trace extends past detection: %v vs found at %v",
				b.Sig, last.At, b.FoundAt)
		}
	}
}

func TestJournalConsistentWithReport(t *testing.T) {
	buf := trace.NewBuffer()
	rep := runShort(t, "freertos", 5*time.Minute, func(c *Config) {
		c.Seed = 7
		c.TraceSink = buf
	})
	evs := buf.Events()
	if len(evs) == 0 {
		t.Fatal("journal empty")
	}
	checkJournalRestoreBalance(t, evs)
	counts := map[trace.Kind]int{}
	edges := 0
	var lastAt time.Duration
	var lastSeq uint64
	for i, ev := range evs {
		counts[ev.Kind]++
		if ev.Kind == trace.CovGain {
			edges += ev.Edges
		}
		if i > 0 {
			if ev.At < lastAt {
				t.Fatalf("journal time went backward at %d: %v then %v", i, lastAt, ev.At)
			}
			if ev.Seq != lastSeq+1 {
				t.Fatalf("journal seq gap at %d: %d then %d", i, lastSeq, ev.Seq)
			}
		}
		lastAt, lastSeq = ev.At, ev.Seq
	}
	if counts[trace.ExecEnd] != rep.Stats.Execs {
		t.Fatalf("journal has %d exec-end events, report says %d execs",
			counts[trace.ExecEnd], rep.Stats.Execs)
	}
	if counts[trace.RestoreBegin] != rep.Stats.Restores {
		t.Fatalf("journal has %d restore-begin events, report says %d restores",
			counts[trace.RestoreBegin], rep.Stats.Restores)
	}
	if counts[trace.Reflash] != rep.Stats.Reflashes {
		t.Fatalf("journal has %d reflash events, report says %d reflashes",
			counts[trace.Reflash], rep.Stats.Reflashes)
	}
	if counts[trace.Bug] != len(rep.Bugs) {
		t.Fatalf("journal has %d bug events, report has %d bugs",
			counts[trace.Bug], len(rep.Bugs))
	}
	if edges != rep.Edges {
		t.Fatalf("journal cov-gain edges sum to %d, report has %d", edges, rep.Edges)
	}
}

func TestSoloJournalDeterministic(t *testing.T) {
	run := func() []trace.Event {
		buf := trace.NewBuffer()
		runShort(t, "freertos", 4*time.Minute, func(c *Config) {
			c.Seed = 99
			c.TraceSink = buf
		})
		return buf.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journal event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
