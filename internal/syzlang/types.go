// Package syzlang implements the API-specification language EOF uses — a
// subset of Syzkaller's Syzlang adapted to embedded OS APIs: resources,
// flag sets, ranged integers, string/buffer pointers, length arguments,
// tick timeouts and pseudo-syscalls. Generated specifications are parsed and
// type-checked by this package before being admitted to the corpus (the
// paper's post-validation step for LLM-generated specs).
package syzlang

import (
	"fmt"
	"sort"
	"strings"
)

// Type is one argument type.
type Type interface {
	// Format renders the type in specification syntax.
	Format() string
}

// IntType is a fixed-width integer, optionally constrained to a range or an
// explicit value set.
type IntType struct {
	Bits     int // 8, 16, 32, 64
	HasRange bool
	Min, Max int64
	Values   []int64 // non-empty for "one of {…}" sets
}

// Format implements Type.
func (t *IntType) Format() string {
	base := fmt.Sprintf("int%d", t.Bits)
	if len(t.Values) > 0 {
		parts := make([]string, len(t.Values))
		for i, v := range t.Values {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%s[%s]", base, strings.Join(parts, ", "))
	}
	if t.HasRange {
		return fmt.Sprintf("%s[%d:%d]", base, t.Min, t.Max)
	}
	return base
}

// FlagsType references a named flag set; values combine bitwise.
type FlagsType struct {
	Set string
}

// Format implements Type.
func (t *FlagsType) Format() string { return fmt.Sprintf("flags[%s]", t.Set) }

// ResourceType consumes a previously produced resource.
type ResourceType struct {
	Name string
}

// Format implements Type.
func (t *ResourceType) Format() string { return t.Name }

// StringType is a pointer to an in-buffer NUL-terminated string, optionally
// restricted to candidate values.
type StringType struct {
	Values []string
}

// Format implements Type.
func (t *StringType) Format() string {
	if len(t.Values) == 0 {
		return "ptr[in, string]"
	}
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = fmt.Sprintf("%q", v)
	}
	return fmt.Sprintf("ptr[in, string[%s]]", strings.Join(parts, ", "))
}

// BufferType is a pointer to an in-buffer byte array.
type BufferType struct {
	MinLen, MaxLen int
}

// Format implements Type.
func (t *BufferType) Format() string {
	if t.MinLen == 0 && t.MaxLen == 0 {
		return "ptr[in, array[int8]]"
	}
	return fmt.Sprintf("ptr[in, array[int8, %d:%d]]", t.MinLen, t.MaxLen)
}

// LenType carries the byte length of a sibling buffer argument.
type LenType struct {
	Target string
}

// Format implements Type.
func (t *LenType) Format() string { return fmt.Sprintf("len[%s]", t.Target) }

// TimeoutType is a tick timeout: small values plus the forever sentinel.
type TimeoutType struct{}

// Format implements Type.
func (t *TimeoutType) Format() string { return "timeout" }

// Field is one named argument.
type Field struct {
	Name string
	Type Type
}

// Call is one API specification.
type Call struct {
	Name string
	Args []*Field
	// Ret names the resource the call produces, or "".
	Ret string
	// Pseudo marks syz_* pseudo-syscalls that wrap an API sequence.
	Pseudo bool
}

// Format renders the call in specification syntax.
func (c *Call) Format() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.Name + " " + a.Type.Format()
	}
	s := fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
	if c.Ret != "" {
		s += " " + c.Ret
	}
	return s
}

// Resource is a declared resource kind.
type Resource struct {
	Name string
	Base string // underlying integer type name
}

// FlagSet is a declared set of OR-able flag values.
type FlagSet struct {
	Name   string
	Values []uint64
}

// Spec is one OS's parsed specification.
type Spec struct {
	OS        string
	Resources map[string]*Resource
	Flags     map[string]*FlagSet
	Calls     []*Call
}

// Call returns the named call, or nil.
func (s *Spec) Call(name string) *Call {
	for _, c := range s.Calls {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Producers returns the calls that produce the named resource.
func (s *Spec) Producers(res string) []*Call {
	var out []*Call
	for _, c := range s.Calls {
		if c.Ret == res {
			out = append(out, c)
		}
	}
	return out
}

// Consumers returns the calls with at least one argument of the named
// resource type.
func (s *Spec) Consumers(res string) []*Call {
	var out []*Call
	for _, c := range s.Calls {
		for _, a := range c.Args {
			if rt, ok := a.Type.(*ResourceType); ok && rt.Name == res {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// Format renders the whole specification as text that Parse accepts.
func (s *Spec) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Syzlang specification for %s\n", s.OS)
	resNames := make([]string, 0, len(s.Resources))
	for n := range s.Resources {
		resNames = append(resNames, n)
	}
	sort.Strings(resNames)
	for _, n := range resNames {
		fmt.Fprintf(&b, "resource %s[%s]\n", n, s.Resources[n].Base)
	}
	flagNames := make([]string, 0, len(s.Flags))
	for n := range s.Flags {
		flagNames = append(flagNames, n)
	}
	sort.Strings(flagNames)
	for _, n := range flagNames {
		vals := make([]string, len(s.Flags[n].Values))
		for i, v := range s.Flags[n].Values {
			vals[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "%s = %s\n", n, strings.Join(vals, ", "))
	}
	for _, c := range s.Calls {
		b.WriteString(c.Format())
		b.WriteByte('\n')
	}
	return b.String()
}
