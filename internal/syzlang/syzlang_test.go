package syzlang

import (
	"strings"
	"testing"
)

const sample = `
# demo spec
resource task_t[int32]
resource queue_t[int32]
wait_opts = 1, 2, 8
xTaskCreate(name ptr[in, string], priority int32[0:31], stack int32[128:65536], behavior int32[0, 1, 2, 3]) task_t
vTaskDelete(task task_t)
xQueueCreate(depth int32[1:256], item_size int32[1:1024]) queue_t
xQueueSend(queue queue_t, item ptr[in, array[int8]], ticks timeout)
http_handle(request ptr[in, array[int8, 1:512]], length len[request])
rt_device_find(name ptr[in, string["uart0", "uart1"]])
syz_make_socket(domain int64, opts flags[wait_opts]) task_t
`

func TestParseSample(t *testing.T) {
	s, err := Parse("demo", sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Calls) != 7 {
		t.Fatalf("calls: %d", len(s.Calls))
	}
	if len(s.Resources) != 2 || len(s.Flags) != 1 {
		t.Fatalf("resources %d flags %d", len(s.Resources), len(s.Flags))
	}
	c := s.Call("xTaskCreate")
	if c == nil || c.Ret != "task_t" || len(c.Args) != 4 {
		t.Fatalf("xTaskCreate: %+v", c)
	}
	if _, ok := c.Args[0].Type.(*StringType); !ok {
		t.Fatalf("arg0 type %T", c.Args[0].Type)
	}
	prio := c.Args[1].Type.(*IntType)
	if !prio.HasRange || prio.Min != 0 || prio.Max != 31 {
		t.Fatalf("prio: %+v", prio)
	}
	behav := c.Args[3].Type.(*IntType)
	if len(behav.Values) != 4 {
		t.Fatalf("behavior values: %+v", behav.Values)
	}
	if !s.Call("syz_make_socket").Pseudo {
		t.Fatal("syz_ not marked pseudo")
	}
	if s.Call("vTaskDelete").Pseudo {
		t.Fatal("plain call marked pseudo")
	}
}

func TestResourceGraphQueries(t *testing.T) {
	s, err := Parse("demo", sample)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Producers("task_t"); len(got) != 2 {
		t.Fatalf("task_t producers: %d", len(got))
	}
	if got := s.Consumers("queue_t"); len(got) != 1 || got[0].Name != "xQueueSend" {
		t.Fatalf("queue_t consumers: %v", got)
	}
	if s.Call("missing") != nil {
		t.Fatal("found missing call")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	s, err := Parse("demo", sample)
	if err != nil {
		t.Fatal(err)
	}
	text := s.Format()
	s2, err := Parse("demo", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if s2.Format() != text {
		t.Fatal("Format not a fixed point")
	}
	if len(s2.Calls) != len(s.Calls) {
		t.Fatal("round trip lost calls")
	}
}

func TestLenTypeAndBufferBounds(t *testing.T) {
	s, err := Parse("demo", sample)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Call("http_handle")
	buf := c.Args[0].Type.(*BufferType)
	if buf.MinLen != 1 || buf.MaxLen != 512 {
		t.Fatalf("buffer bounds: %+v", buf)
	}
	ln := c.Args[1].Type.(*LenType)
	if ln.Target != "request" {
		t.Fatalf("len target: %q", ln.Target)
	}
}

func TestStringCandidates(t *testing.T) {
	s, err := Parse("demo", sample)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Call("rt_device_find").Args[0].Type.(*StringType)
	if len(st.Values) != 2 || st.Values[0] != "uart0" {
		t.Fatalf("candidates: %v", st.Values)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"undeclared resource arg", "f(a task_t)\n", "undeclared resource"},
		{"undeclared ret", "f() task_t\n", "undeclared resource"},
		{"undeclared flags", "f(a flags[nope])\n", "undeclared flag set"},
		{"len of non-buffer", "f(a int32, b len[a])\n", "not a buffer"},
		{"len of missing arg", "f(b len[zzz])\n", "not an argument"},
		{"dup call", "f(a int32)\nf(b int32)\n", "duplicate call"},
		{"dup arg", "f(a int32, a int32)\n", "duplicate argument"},
		{"dup resource", "resource r[int32]\nresource r[int32]\n", "duplicate resource"},
		{"bad resource base", "resource r[float]\n", "base type"},
		{"bad int range", "f(a int32[9:1])\n", "bad int range"},
		{"unbalanced parens", "f(a int32\n", "unbalanced"},
		{"unknown type", "f(a wobble[3])\n", "unknown type"},
		{"bad flag value", "s = 1, x\n", "bad flag value"},
		{"ptr out", "f(a ptr[out, string])\n", "only ptr[in"},
		{"too many args", "f(a int8, b int8, c int8, d int8, e int8, g int8, h int8, i int8, j int8)\n", "max 8"},
	}
	for _, tc := range cases {
		_, err := Parse("x", tc.text)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	s, err := Parse("x", "\n# comment only\n\nf(a int32)\n# trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Calls) != 1 {
		t.Fatalf("calls: %d", len(s.Calls))
	}
}

func TestSplitTopLevel(t *testing.T) {
	got := splitTopLevel(`a int32[1, 2], b ptr[in, string["x,y", "z"]], c timeout`)
	if len(got) != 3 {
		t.Fatalf("split: %q", got)
	}
	if !strings.Contains(got[1], `"x,y"`) {
		t.Fatalf("quoted comma broken: %q", got[1])
	}
}

func TestTypeFormat(t *testing.T) {
	for _, tc := range []struct {
		typ  Type
		want string
	}{
		{&IntType{Bits: 32}, "int32"},
		{&IntType{Bits: 16, HasRange: true, Min: 1, Max: 9}, "int16[1:9]"},
		{&IntType{Bits: 8, Values: []int64{1, 2}}, "int8[1, 2]"},
		{&FlagsType{Set: "x"}, "flags[x]"},
		{&ResourceType{Name: "r"}, "r"},
		{&StringType{}, "ptr[in, string]"},
		{&BufferType{MinLen: 1, MaxLen: 4}, "ptr[in, array[int8, 1:4]]"},
		{&LenType{Target: "buf"}, "len[buf]"},
		{&TimeoutType{}, "timeout"},
	} {
		if got := tc.typ.Format(); got != tc.want {
			t.Errorf("Format() = %q, want %q", got, tc.want)
		}
	}
}
