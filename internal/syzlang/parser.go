package syzlang

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a specification syntax or type error with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syzlang: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses and validates a specification. Only validated specifications
// are admitted to the fuzzer (the paper's post-validation of generated
// specs).
func Parse(osName, text string) (*Spec, error) {
	s := &Spec{
		OS:        osName,
		Resources: make(map[string]*Resource),
		Flags:     make(map[string]*FlagSet),
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		lineNo := ln + 1
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "resource "):
			if err := s.parseResource(lineNo, line); err != nil {
				return nil, err
			}
		case isFlagDecl(line):
			if err := s.parseFlags(lineNo, line); err != nil {
				return nil, err
			}
		default:
			if err := s.parseCall(lineNo, line); err != nil {
				return nil, err
			}
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// isFlagDecl distinguishes "name = v, v, v" from a call line.
func isFlagDecl(line string) bool {
	eq := strings.IndexByte(line, '=')
	paren := strings.IndexByte(line, '(')
	return eq > 0 && (paren < 0 || eq < paren)
}

func (s *Spec) parseResource(lineNo int, line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "resource "))
	open := strings.IndexByte(body, '[')
	if open < 0 || !strings.HasSuffix(body, "]") {
		return errAt(lineNo, "malformed resource declaration %q", line)
	}
	name := strings.TrimSpace(body[:open])
	base := strings.TrimSpace(body[open+1 : len(body)-1])
	if !isIdent(name) {
		return errAt(lineNo, "bad resource name %q", name)
	}
	switch base {
	case "int8", "int16", "int32", "int64":
	default:
		return errAt(lineNo, "bad resource base type %q", base)
	}
	if _, dup := s.Resources[name]; dup {
		return errAt(lineNo, "duplicate resource %q", name)
	}
	s.Resources[name] = &Resource{Name: name, Base: base}
	return nil
}

func (s *Spec) parseFlags(lineNo int, line string) error {
	name, rest, _ := strings.Cut(line, "=")
	name = strings.TrimSpace(name)
	if !isIdent(name) {
		return errAt(lineNo, "bad flag set name %q", name)
	}
	if _, dup := s.Flags[name]; dup {
		return errAt(lineNo, "duplicate flag set %q", name)
	}
	fs := &FlagSet{Name: name}
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return errAt(lineNo, "empty flag value in %q", line)
		}
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			return errAt(lineNo, "bad flag value %q", tok)
		}
		fs.Values = append(fs.Values, v)
	}
	if len(fs.Values) == 0 {
		return errAt(lineNo, "flag set %q has no values", name)
	}
	s.Flags[name] = fs
	return nil
}

func (s *Spec) parseCall(lineNo int, line string) error {
	open := strings.IndexByte(line, '(')
	if open <= 0 {
		return errAt(lineNo, "expected declaration, got %q", line)
	}
	name := strings.TrimSpace(line[:open])
	if !isIdent(name) {
		return errAt(lineNo, "bad call name %q", name)
	}
	closeIdx := findMatchingParen(line, open)
	if closeIdx < 0 {
		return errAt(lineNo, "unbalanced parentheses in %q", line)
	}
	argText := line[open+1 : closeIdx]
	ret := strings.TrimSpace(line[closeIdx+1:])
	if ret != "" && !isIdent(ret) {
		return errAt(lineNo, "bad return resource %q", ret)
	}
	c := &Call{Name: name, Ret: ret, Pseudo: strings.HasPrefix(name, "syz_")}
	for _, part := range splitTopLevel(argText) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sp := strings.IndexAny(part, " \t")
		if sp < 0 {
			return errAt(lineNo, "argument %q missing a type", part)
		}
		argName := part[:sp]
		if !isIdent(argName) {
			return errAt(lineNo, "bad argument name %q", argName)
		}
		typ, err := parseType(lineNo, strings.TrimSpace(part[sp+1:]))
		if err != nil {
			return err
		}
		c.Args = append(c.Args, &Field{Name: argName, Type: typ})
	}
	s.Calls = append(s.Calls, c)
	return nil
}

func parseType(lineNo int, t string) (Type, error) {
	switch {
	case t == "timeout":
		return &TimeoutType{}, nil
	case strings.HasPrefix(t, "len["):
		if !strings.HasSuffix(t, "]") {
			return nil, errAt(lineNo, "malformed len type %q", t)
		}
		target := strings.TrimSpace(t[4 : len(t)-1])
		if !isIdent(target) {
			return nil, errAt(lineNo, "bad len target %q", target)
		}
		return &LenType{Target: target}, nil
	case strings.HasPrefix(t, "flags["):
		if !strings.HasSuffix(t, "]") {
			return nil, errAt(lineNo, "malformed flags type %q", t)
		}
		set := strings.TrimSpace(t[6 : len(t)-1])
		if !isIdent(set) {
			return nil, errAt(lineNo, "bad flag set reference %q", set)
		}
		return &FlagsType{Set: set}, nil
	case strings.HasPrefix(t, "ptr["):
		return parsePtrType(lineNo, t)
	case strings.HasPrefix(t, "int"):
		return parseIntType(lineNo, t)
	case isIdent(t):
		return &ResourceType{Name: t}, nil
	default:
		return nil, errAt(lineNo, "unknown type %q", t)
	}
}

func parsePtrType(lineNo int, t string) (Type, error) {
	if !strings.HasSuffix(t, "]") {
		return nil, errAt(lineNo, "malformed ptr type %q", t)
	}
	inner := t[4 : len(t)-1]
	dir, rest, ok := strings.Cut(inner, ",")
	if !ok {
		return nil, errAt(lineNo, "ptr type %q needs a direction and element", t)
	}
	if strings.TrimSpace(dir) != "in" {
		return nil, errAt(lineNo, "only ptr[in, …] is supported, got %q", t)
	}
	rest = strings.TrimSpace(rest)
	switch {
	case rest == "string":
		return &StringType{}, nil
	case strings.HasPrefix(rest, "string[") && strings.HasSuffix(rest, "]"):
		var vals []string
		for _, q := range splitTopLevel(rest[7 : len(rest)-1]) {
			q = strings.TrimSpace(q)
			v, err := strconv.Unquote(q)
			if err != nil {
				return nil, errAt(lineNo, "bad string candidate %s", q)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return nil, errAt(lineNo, "empty string candidate set in %q", t)
		}
		return &StringType{Values: vals}, nil
	case rest == "array[int8]":
		return &BufferType{}, nil
	case strings.HasPrefix(rest, "array[int8,") && strings.HasSuffix(rest, "]"):
		span := strings.TrimSpace(rest[len("array[int8,") : len(rest)-1])
		minS, maxS, ok := strings.Cut(span, ":")
		if !ok {
			return nil, errAt(lineNo, "bad array bounds %q", span)
		}
		minV, err1 := strconv.Atoi(strings.TrimSpace(minS))
		maxV, err2 := strconv.Atoi(strings.TrimSpace(maxS))
		if err1 != nil || err2 != nil || minV < 0 || maxV < minV {
			return nil, errAt(lineNo, "bad array bounds %q", span)
		}
		return &BufferType{MinLen: minV, MaxLen: maxV}, nil
	default:
		return nil, errAt(lineNo, "unsupported ptr element %q", rest)
	}
}

func parseIntType(lineNo int, t string) (Type, error) {
	base := t
	var spec string
	if open := strings.IndexByte(t, '['); open >= 0 {
		if !strings.HasSuffix(t, "]") {
			return nil, errAt(lineNo, "malformed int type %q", t)
		}
		base = t[:open]
		spec = t[open+1 : len(t)-1]
	}
	bits := 0
	switch base {
	case "int8":
		bits = 8
	case "int16":
		bits = 16
	case "int32":
		bits = 32
	case "int64":
		bits = 64
	default:
		return nil, errAt(lineNo, "unknown int type %q", base)
	}
	it := &IntType{Bits: bits}
	if spec == "" {
		return it, nil
	}
	if strings.Contains(spec, ":") {
		minS, maxS, _ := strings.Cut(spec, ":")
		minV, err1 := strconv.ParseInt(strings.TrimSpace(minS), 0, 64)
		maxV, err2 := strconv.ParseInt(strings.TrimSpace(maxS), 0, 64)
		if err1 != nil || err2 != nil || maxV < minV {
			return nil, errAt(lineNo, "bad int range %q", spec)
		}
		it.HasRange = true
		it.Min, it.Max = minV, maxV
		return it, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
		if err != nil {
			return nil, errAt(lineNo, "bad int value %q", tok)
		}
		it.Values = append(it.Values, v)
	}
	return it, nil
}

// validate is the type-check pass: referenced resources and flag sets must
// be declared, len targets must name buffer siblings, argument counts must
// fit the wire format, and call names must be unique.
func (s *Spec) validate() error {
	seen := make(map[string]bool)
	for _, c := range s.Calls {
		if seen[c.Name] {
			return errAt(0, "duplicate call %q", c.Name)
		}
		seen[c.Name] = true
		if len(c.Args) > 8 {
			return errAt(0, "call %q has %d arguments (max 8)", c.Name, len(c.Args))
		}
		if c.Ret != "" {
			if _, ok := s.Resources[c.Ret]; !ok {
				return errAt(0, "call %q returns undeclared resource %q", c.Name, c.Ret)
			}
		}
		argNames := make(map[string]Type, len(c.Args))
		for _, a := range c.Args {
			if _, dup := argNames[a.Name]; dup {
				return errAt(0, "call %q: duplicate argument %q", c.Name, a.Name)
			}
			argNames[a.Name] = a.Type
		}
		for _, a := range c.Args {
			switch t := a.Type.(type) {
			case *ResourceType:
				if _, ok := s.Resources[t.Name]; !ok {
					return errAt(0, "call %q: undeclared resource type %q", c.Name, t.Name)
				}
			case *FlagsType:
				if _, ok := s.Flags[t.Set]; !ok {
					return errAt(0, "call %q: undeclared flag set %q", c.Name, t.Set)
				}
			case *LenType:
				tt, ok := argNames[t.Target]
				if !ok {
					return errAt(0, "call %q: len target %q is not an argument", c.Name, t.Target)
				}
				switch tt.(type) {
				case *BufferType, *StringType:
				default:
					return errAt(0, "call %q: len target %q is not a buffer", c.Name, t.Target)
				}
			case *IntType:
				if t.HasRange && t.Min > t.Max {
					return errAt(0, "call %q: inverted range on %q", c.Name, a.Name)
				}
			}
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitTopLevel splits on commas that are not inside brackets or quotes.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// findMatchingParen returns the index of the ')' matching the '(' at open,
// or -1.
func findMatchingParen(s string, open int) int {
	depth := 0
	inStr := false
	for i := open; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
			if depth == 0 && c == ')' {
				return i
			}
		}
	}
	return -1
}
