package jsonlib

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/mem"
	"github.com/eof-fuzz/eof/internal/rtos"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/uart"
	"github.com/eof-fuzz/eof/internal/vtime"
)

func newLib(t *testing.T, opts ...Option) (*Lib, *rtos.Kernel) {
	t.Helper()
	clock := &vtime.Clock{}
	mm := mem.NewMap()
	ram := mem.NewRegion("ram", 0x2000_0000, 64*1024, mem.RW)
	mm.MustAdd(ram)
	env := &board.Env{
		Spec:  &board.Spec{Name: "t"},
		Clock: clock,
		Core:  cpu.New(clock, cpu.DefaultConfig()),
		Mem:   mm,
		RAM:   ram,
		UART:  uart.New(clock),
		Syms:  sym.NewTable(0x0800_0000),
	}
	k := rtos.NewKernel(env, "T")
	return New(k, opts...), k
}

func TestParseValidDocuments(t *testing.T) {
	l, _ := newLib(t)
	for _, doc := range []string{
		`null`, `true`, `false`, `0`, `-12.5`, `1e3`, `2.5E-2`,
		`"str"`, `"esc \" \\ \n \t A"`,
		`[]`, `[1,2,3]`, `[[1],[2,[3]]]`,
		`{}`, `{"a":1}`, `{"a":{"b":{"c":[true,null]}}}`,
		`  { "ws" : [ 1 , 2 ] }  `,
	} {
		h, e := l.Parse([]byte(doc))
		if e.Failed() {
			t.Errorf("Parse(%q): %v", doc, e)
			continue
		}
		if _, e := l.Get(h); e.Failed() {
			t.Errorf("Get after Parse(%q): %v", doc, e)
		}
		l.Free(h)
	}
}

func TestParseInvalidDocuments(t *testing.T) {
	l, _ := newLib(t)
	for _, doc := range []string{
		``, `{`, `}`, `{"a"}`, `{"a":}`, `{"a":1,}`, `[1,]`, `[1 2]`,
		`"unterminated`, `tru`, `nul`, `-`, `1.`, `1e`, `"bad \x"`,
		`{"a":1}trailing`, `{1:2}`, "\"ctl\x01\"",
	} {
		if h, e := l.Parse([]byte(doc)); !e.Failed() {
			t.Errorf("Parse(%q) accepted (handle %d)", doc, h)
		}
	}
	// Depth limit.
	deep := strings.Repeat("[", 40) + strings.Repeat("]", 40)
	if _, e := l.Parse([]byte(deep)); e != rtos.ErrRange {
		t.Errorf("deep nesting: %v", e)
	}
	// Size limit.
	if _, e := l.Parse(make([]byte, MaxInput+1)); e != rtos.ErrRange {
		t.Errorf("oversized: %v", e)
	}
	// Key limit.
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < MaxKeys+2; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`"k`)
		b.WriteByte(byte('a' + i%26))
		b.WriteByte(byte('a' + i/26))
		b.WriteString(`":1`)
	}
	b.WriteByte('}')
	if _, e := l.Parse([]byte(b.String())); e != rtos.ErrRange {
		t.Errorf("too many keys: %v", e)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	l, _ := newLib(t)
	for _, doc := range []string{
		`{"a":1,"b":[true,null,"s"]}`,
		`[1,2.5,{"x":-3}]`,
	} {
		h, e := l.Parse([]byte(doc))
		if e.Failed() {
			t.Fatal(e)
		}
		out, e := l.Encode(h, 0)
		if e.Failed() {
			t.Fatalf("encode: %v", e)
		}
		// Re-parse the encoder's output: it must be valid JSON.
		h2, e := l.Parse(out)
		if e.Failed() {
			t.Fatalf("re-parse of %q: %v", out, e)
		}
		l.Free(h)
		l.Free(h2)
	}
	// Bad flags and bad handles.
	h, _ := l.Parse([]byte(`{}`))
	if _, e := l.Encode(h, 0xFF00); e != rtos.ErrInval {
		t.Errorf("bad flags: %v", e)
	}
	if _, e := l.Encode(99999, 0); e.Failed() == false {
		t.Error("bad handle accepted")
	}
	l.Free(h)
	if _, e := l.Encode(h, 0); !e.Failed() {
		t.Error("encode after free")
	}
	if e := l.Free(h); !e.Failed() {
		t.Error("double free")
	}
}

func TestEncodeBugTriggersOnlyWhenCompiledIn(t *testing.T) {
	deep := []byte(`{"a":{"b":{"c":{"d":1}}}}`)

	safe, _ := newLib(t)
	h, e := safe.Parse(deep)
	if e.Failed() {
		t.Fatal(e)
	}
	if _, e := safe.Encode(h, EncPretty); e.Failed() {
		t.Fatalf("safe build: %v", e)
	}

	buggy, _ := newLib(t, WithEncodeBug())
	h2, e := buggy.Parse(deep)
	if e.Failed() {
		t.Fatal(e)
	}
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				u, ok := r.(rtos.Unwind)
				if !ok || u.Fault.Kind != cpu.FaultUsage {
					t.Errorf("unexpected panic: %v", r)
				}
				panicked = true
			}
		}()
		buggy.Encode(h2, EncPretty)
	}()
	if !panicked {
		t.Fatal("json_obj_encode bug did not fire on deep pretty encode")
	}
	// Without pretty mode the same tree encodes fine.
	if _, e := buggy.Encode(h2, 0); e.Failed() {
		t.Fatalf("plain encode on buggy build: %v", e)
	}
}

func TestRandomBytesNeverPanicSafeBuild(t *testing.T) {
	l, _ := newLib(t)
	rnd := rand.New(rand.NewSource(7))
	parsed := 0
	for i := 0; i < 5000; i++ {
		b := make([]byte, rnd.Intn(80))
		rnd.Read(b)
		if h, e := l.Parse(b); !e.Failed() {
			parsed++
			l.Free(h)
		}
	}
	// Random bytes occasionally form valid scalars; that is fine.
	t.Logf("%d/5000 random buffers parsed", parsed)
}

func TestValueTreeShape(t *testing.T) {
	l, _ := newLib(t)
	h, e := l.Parse([]byte(`{"k":[1,"s",false]}`))
	if e.Failed() {
		t.Fatal(e)
	}
	v, _ := l.Get(h)
	if v.Kind != KindObject || len(v.Keys) != 1 || v.Keys[0] != "k" {
		t.Fatalf("root: %+v", v)
	}
	arr := v.Vals[0]
	if arr.Kind != KindArray || len(arr.Arr) != 3 {
		t.Fatalf("array: %+v", arr)
	}
	if arr.Arr[0].Num != 1 || arr.Arr[1].Str != "s" || arr.Arr[2].Bool {
		t.Fatalf("elements: %+v", arr.Arr)
	}
	parses, encodes := l.Stats()
	if parses != 1 || encodes != 0 {
		t.Fatalf("stats: %d %d", parses, encodes)
	}
}
