// Package jsonlib is the embedded JSON component: a real tokenizer,
// recursive-descent parser and encoder operating on raw bytes, instrumented
// like any other kernel module. It is the "JSON" target of the paper's
// application-level evaluation (Table 4) and hosts Zephyr's json_obj_encode
// bug (Table 2, bug #3) when built with the encode-bug option.
package jsonlib

import (
	"fmt"
	"strconv"

	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Limits of the embedded parser.
const (
	MaxDepth   = 16
	MaxInput   = 4096
	MaxKeys    = 32
	MaxEncoded = 8192
)

// Kind is a JSON value kind.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindArray
	KindObject
)

// Value is one parsed JSON value.
type Value struct {
	Kind Kind
	Bool bool
	Num  float64
	Str  string
	Arr  []*Value
	Keys []string
	Vals []*Value
}

// Lib is one instance of the JSON component bound to a kernel.
type Lib struct {
	k         *rtos.Kernel
	encodeBug bool

	fnParse  *rtos.Fn
	fnLex    *rtos.Fn
	fnValue  *rtos.Fn
	fnObject *rtos.Fn
	fnArray  *rtos.Fn
	fnString *rtos.Fn
	fnNumber *rtos.Fn
	fnEncode *rtos.Fn
	fnFree   *rtos.Fn

	parses  int
	encodes int
}

// Option configures the library build.
type Option func(*Lib)

// WithEncodeBug compiles in the Zephyr json_obj_encode defect: encoding a
// deeply nested object in pretty mode indexes past the per-level key table.
func WithEncodeBug() Option {
	return func(l *Lib) { l.encodeBug = true }
}

// New registers the component's functions with the kernel.
func New(k *rtos.Kernel, opts ...Option) *Lib {
	l := &Lib{
		k:        k,
		fnParse:  k.Fn("json_parse", "lib/json/json.c", 210, 10),
		fnLex:    k.Fn("json_lex", "lib/json/json.c", 60, 12),
		fnValue:  k.Fn("json_parse_value", "lib/json/json.c", 300, 14),
		fnObject: k.Fn("json_parse_object", "lib/json/json.c", 360, 17),
		fnArray:  k.Fn("json_parse_array", "lib/json/json.c", 430, 15),
		fnString: k.Fn("json_parse_string", "lib/json/json.c", 490, 16),
		fnNumber: k.Fn("json_parse_number", "lib/json/json.c", 560, 12),
		fnEncode: k.Fn("json_obj_encode", "lib/json/json_enc.c", 40, 14),
		fnFree:   k.Fn("json_free", "lib/json/json.c", 640, 3),
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Stats returns operation counters.
func (l *Lib) Stats() (parses, encodes int) { return l.parses, l.encodes }

type parser struct {
	l    *Lib
	data []byte
	pos  int
}

// Parse parses data into a value tree registered as a kernel object; the
// returned handle flows back to the fuzzer as a resource.
func (l *Lib) Parse(data []byte) (uint32, rtos.Errno) {
	f := l.fnParse
	f.Enter()
	defer f.Exit()
	l.parses++
	if len(data) == 0 {
		f.B(1)
		return 0, rtos.ErrInval
	}
	if len(data) > MaxInput {
		f.B(2)
		return 0, rtos.ErrRange
	}
	f.B(3)
	p := &parser{l: l, data: data}
	p.skipWS()
	v, e := p.value(0)
	if e.Failed() {
		f.B(4)
		return 0, e
	}
	p.skipWS()
	if p.pos != len(p.data) {
		f.B(5)
		return 0, rtos.ErrInval
	}
	f.B(6)
	obj := l.k.Objects.New(rtos.ObjHeapRef, "json-ctx", v)
	return obj.ID, rtos.OK
}

// Get resolves a parse handle back to its value tree.
func (l *Lib) Get(handle uint32) (*Value, rtos.Errno) {
	o, e := l.k.Objects.GetTyped(handle, rtos.ObjHeapRef)
	if e.Failed() {
		return nil, e
	}
	v, ok := o.Data.(*Value)
	if !ok {
		return nil, rtos.ErrType
	}
	return v, rtos.OK
}

// Free releases a parse context.
func (l *Lib) Free(handle uint32) rtos.Errno {
	f := l.fnFree
	f.Enter()
	defer f.Exit()
	if _, e := l.Get(handle); e.Failed() {
		f.B(1)
		return e
	}
	f.B(2)
	return l.k.Objects.Delete(handle)
}

func (p *parser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) value(depth int) (*Value, rtos.Errno) {
	f := p.l.fnValue
	f.Enter()
	defer f.Exit()
	if depth > MaxDepth {
		f.B(1)
		return nil, rtos.ErrRange
	}
	if p.pos >= len(p.data) {
		f.B(2)
		return nil, rtos.ErrInval
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		f.B(3)
		return p.object(depth)
	case c == '[':
		f.B(4)
		return p.array(depth)
	case c == '"':
		f.B(5)
		s, e := p.str()
		if e.Failed() {
			return nil, e
		}
		return &Value{Kind: KindString, Str: s}, rtos.OK
	case c == 't' || c == 'f':
		f.B(6)
		return p.boolean()
	case c == 'n':
		f.B(7)
		return p.null()
	case c == '-' || (c >= '0' && c <= '9'):
		f.B(8)
		return p.number()
	default:
		f.B(9)
		return nil, rtos.ErrInval
	}
}

func (p *parser) object(depth int) (*Value, rtos.Errno) {
	f := p.l.fnObject
	f.Enter()
	defer f.Exit()
	p.pos++ // '{'
	v := &Value{Kind: KindObject}
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		f.B(1)
		p.pos++
		return v, rtos.OK
	}
	for {
		p.skipWS()
		if len(v.Keys) >= MaxKeys {
			f.B(2)
			return nil, rtos.ErrRange
		}
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			f.B(3)
			return nil, rtos.ErrInval
		}
		key, e := p.str()
		if e.Failed() {
			f.B(4)
			return nil, e
		}
		p.skipWS()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			f.B(5)
			return nil, rtos.ErrInval
		}
		p.pos++
		p.skipWS()
		val, e := p.value(depth + 1)
		if e.Failed() {
			f.B(6)
			return nil, e
		}
		v.Keys = append(v.Keys, key)
		v.Vals = append(v.Vals, val)
		p.skipWS()
		if p.pos >= len(p.data) {
			f.B(7)
			return nil, rtos.ErrInval
		}
		switch p.data[p.pos] {
		case ',':
			f.B(8)
			p.pos++
		case '}':
			f.B(9)
			// Key-count and nesting-depth classes: token buffers grow and
			// recursion frames deepen along distinct code in real parsers.
			f.B(11 + keyClass(len(v.Keys)))
			if depth > 3 {
				depth = 3
			}
			f.B(13 + depth) // nesting-depth class blocks (clamped)
			p.pos++
			return v, rtos.OK
		default:
			f.B(10)
			return nil, rtos.ErrInval
		}
	}
}

func (p *parser) array(depth int) (*Value, rtos.Errno) {
	f := p.l.fnArray
	f.Enter()
	defer f.Exit()
	p.pos++ // '['
	v := &Value{Kind: KindArray}
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		f.B(1)
		p.pos++
		return v, rtos.OK
	}
	for {
		p.skipWS()
		el, e := p.value(depth + 1)
		if e.Failed() {
			f.B(2)
			return nil, e
		}
		v.Arr = append(v.Arr, el)
		p.skipWS()
		if p.pos >= len(p.data) {
			f.B(3)
			return nil, rtos.ErrInval
		}
		switch p.data[p.pos] {
		case ',':
			f.B(4)
			p.pos++
		case ']':
			f.B(5)
			f.B(7 + keyClass(len(v.Arr)))
			if depth > 3 {
				depth = 3
			}
			f.B(11 + depth)
			p.pos++
			return v, rtos.OK
		default:
			f.B(6)
			return nil, rtos.ErrInval
		}
	}
}

func (p *parser) str() (string, rtos.Errno) {
	f := p.l.fnString
	f.Enter()
	defer f.Exit()
	p.pos++ // '"'
	out := make([]byte, 0, 16)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			f.B(1)
			f.B(11 + keyClass(len(out)))
			p.pos++
			return string(out), rtos.OK
		case c == '\\':
			f.B(2)
			p.pos++
			if p.pos >= len(p.data) {
				f.B(3)
				return "", rtos.ErrInval
			}
			switch p.data[p.pos] {
			case '"', '\\', '/':
				f.B(4)
				out = append(out, p.data[p.pos])
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case 'b', 'f':
				f.B(5)
				out = append(out, ' ')
			case 'u':
				f.B(6)
				if p.pos+4 >= len(p.data) {
					return "", rtos.ErrInval
				}
				hex := string(p.data[p.pos+1 : p.pos+5])
				n, err := strconv.ParseUint(hex, 16, 32)
				if err != nil {
					f.B(7)
					return "", rtos.ErrInval
				}
				out = append(out, []byte(string(rune(n)))...)
				p.pos += 4
			default:
				f.B(8)
				return "", rtos.ErrInval
			}
			p.pos++
		case c < 0x20:
			f.B(9)
			return "", rtos.ErrInval
		default:
			out = append(out, c)
			p.pos++
		}
	}
	f.B(10)
	return "", rtos.ErrInval
}

// keyClass buckets a count into 0/1/few/many (0..3).
func keyClass(n int) int {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n <= 6:
		return 2
	default:
		return 3
	}
}

func (p *parser) number() (*Value, rtos.Errno) {
	f := p.l.fnNumber
	f.Enter()
	defer f.Exit()
	start := p.pos
	if p.data[p.pos] == '-' {
		f.B(1)
		p.pos++
	}
	digits := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		f.B(2)
		return nil, rtos.ErrInval
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		f.B(3)
		p.pos++
		fdigits := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			fdigits++
		}
		if fdigits == 0 {
			f.B(4)
			return nil, rtos.ErrInval
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		f.B(5)
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		edigits := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			edigits++
		}
		if edigits == 0 {
			f.B(6)
			return nil, rtos.ErrInval
		}
	}
	num, err := strconv.ParseFloat(string(p.data[start:p.pos]), 64)
	if err != nil {
		f.B(7)
		return nil, rtos.ErrRange
	}
	f.B(8)
	return &Value{Kind: KindNumber, Num: num}, rtos.OK
}

func (p *parser) boolean() (*Value, rtos.Errno) {
	f := p.l.fnLex
	f.Enter()
	defer f.Exit()
	if p.match("true") {
		f.B(1)
		return &Value{Kind: KindBool, Bool: true}, rtos.OK
	}
	if p.match("false") {
		f.B(2)
		return &Value{Kind: KindBool, Bool: false}, rtos.OK
	}
	f.B(3)
	return nil, rtos.ErrInval
}

func (p *parser) null() (*Value, rtos.Errno) {
	f := p.l.fnLex
	f.Enter()
	defer f.Exit()
	if p.match("null") {
		f.B(4)
		return &Value{Kind: KindNull}, rtos.OK
	}
	f.B(5)
	return nil, rtos.ErrInval
}

func (p *parser) match(word string) bool {
	if p.pos+len(word) > len(p.data) || string(p.data[p.pos:p.pos+len(word)]) != word {
		return false
	}
	p.pos += len(word)
	return true
}

// Encode flags.
const (
	EncPretty = 1 << 0
	EncSorted = 1 << 1 // accepted, unimplemented sort (stable order already)
)

// Encode serializes a parsed value tree back to JSON text. With the
// encode-bug option compiled in, pretty-encoding an object nested three or
// more levels deep indexes past the per-level indent table and dies in
// json_obj_encode — bug #3 of Table 2.
func (l *Lib) Encode(handle uint32, flags uint32) ([]byte, rtos.Errno) {
	f := l.fnEncode
	f.Enter()
	defer f.Exit()
	l.encodes++
	v, e := l.Get(handle)
	if e.Failed() {
		f.B(1)
		return nil, e
	}
	if flags&^uint32(EncPretty|EncSorted) != 0 {
		f.B(2)
		return nil, rtos.ErrInval
	}
	f.B(3)
	pretty := flags&EncPretty != 0
	if pretty {
		f.B(4)
	}
	out := make([]byte, 0, 64)
	out, e = l.encodeValue(out, v, pretty, 0)
	if e.Failed() {
		f.B(5)
		return nil, e
	}
	if len(out) > MaxEncoded {
		f.B(6)
		return nil, rtos.ErrRange
	}
	f.B(7)
	return out, rtos.OK
}

// indentTable is the fixed per-level indent strings; the buggy build indexes
// it with the raw depth instead of clamping.
var indentTable = [3]string{"", "  ", "    "}

func (l *Lib) encodeValue(out []byte, v *Value, pretty bool, depth int) ([]byte, rtos.Errno) {
	f := l.fnEncode
	switch v.Kind {
	case KindNull:
		return append(out, "null"...), rtos.OK
	case KindBool:
		if v.Bool {
			return append(out, "true"...), rtos.OK
		}
		return append(out, "false"...), rtos.OK
	case KindNumber:
		return strconv.AppendFloat(out, v.Num, 'g', -1, 64), rtos.OK
	case KindString:
		return strconv.AppendQuote(out, v.Str), rtos.OK
	case KindArray:
		f.B(8)
		out = append(out, '[')
		for i, el := range v.Arr {
			if i > 0 {
				out = append(out, ',')
			}
			var e rtos.Errno
			out, e = l.encodeValue(out, el, pretty, depth+1)
			if e.Failed() {
				return nil, e
			}
		}
		return append(out, ']'), rtos.OK
	case KindObject:
		f.B(9)
		indent := ""
		if pretty {
			if l.encodeBug {
				f.B(10)
				// BUG: raw depth indexes the 3-entry indent table; depth >= 3
				// reads past the array, a wild read that faults.
				if depth >= len(indentTable) {
					f.B(11)
					l.k.PanicFault(cpu.FaultUsage, fmt.Sprintf(
						"json_obj_encode: indent table overrun (depth=%d)", depth))
				}
				indent = indentTable[depth]
			} else {
				f.B(12)
				d := depth
				if d >= len(indentTable) {
					d = len(indentTable) - 1
				}
				indent = indentTable[d]
			}
		}
		out = append(out, '{')
		for i := range v.Keys {
			if i > 0 {
				out = append(out, ',')
			}
			if pretty {
				out = append(out, '\n')
				out = append(out, indent...)
			}
			out = strconv.AppendQuote(out, v.Keys[i])
			out = append(out, ':')
			var e rtos.Errno
			out, e = l.encodeValue(out, v.Vals[i], pretty, depth+1)
			if e.Failed() {
				return nil, e
			}
		}
		return append(out, '}'), rtos.OK
	default:
		return nil, rtos.ErrType
	}
}
