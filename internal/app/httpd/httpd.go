// Package httpd is the embedded HTTP server component of the application-
// level evaluation: a request-line/header/body parser with static routing,
// instrumented like any kernel module. Its structured front end is exactly
// why AFL-style random buffers stall early (the paper's Table 4 HTTP-server
// column) while API-aware inputs that satisfy the grammar reach the routing
// and handler layers.
package httpd

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/eof-fuzz/eof/internal/app/jsonlib"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Limits of the embedded server.
const (
	MaxRequest = 4096
	MaxHeaders = 24
	MaxURILen  = 256
	MaxBody    = 2048
)

// Server is one HTTP server instance bound to a kernel.
type Server struct {
	k    *rtos.Kernel
	json *jsonlib.Lib

	fnInit    *rtos.Fn
	fnHandle  *rtos.Fn
	fnReqLine *rtos.Fn
	fnHeaders *rtos.Fn
	fnRoute   *rtos.Fn
	fnQuery   *rtos.Fn
	fnEcho    *rtos.Fn
	fnStatus  *rtos.Fn
	fnJSONEP  *rtos.Fn
	fnAuth    *rtos.Fn
	fnCookies *rtos.Fn
	fnChunked *rtos.Fn
	fnDevice  *rtos.Fn

	started  bool
	port     int
	requests int
	served   map[int]int // status code counts
}

// New registers the server's functions; json may be nil (the /api/json
// endpoint then 404s).
func New(k *rtos.Kernel, json *jsonlib.Lib) *Server {
	return &Server{
		k:         k,
		json:      json,
		fnInit:    k.Fn("http_server_init", "app/http/httpd.c", 70, 8),
		fnHandle:  k.Fn("http_server_handle", "app/http/httpd.c", 130, 10),
		fnReqLine: k.Fn("http_parse_request_line", "app/http/parse.c", 30, 14),
		fnHeaders: k.Fn("http_parse_headers", "app/http/parse.c", 140, 12),
		fnRoute:   k.Fn("http_route", "app/http/route.c", 20, 10),
		fnQuery:   k.Fn("http_parse_query", "app/http/parse.c", 250, 8),
		fnEcho:    k.Fn("http_handle_echo", "app/http/handlers.c", 15, 6),
		fnStatus:  k.Fn("http_handle_status", "app/http/handlers.c", 80, 5),
		fnJSONEP:  k.Fn("http_handle_json", "app/http/handlers.c", 140, 8),
		fnAuth:    k.Fn("http_check_auth", "app/http/auth.c", 20, 10),
		fnCookies: k.Fn("http_parse_cookies", "app/http/parse.c", 320, 8),
		fnChunked: k.Fn("http_decode_chunked", "app/http/parse.c", 400, 10),
		fnDevice:  k.Fn("http_handle_device", "app/http/handlers.c", 220, 14),
		served:    make(map[int]int),
	}
}

// Init starts the listener on port.
func (s *Server) Init(port int) rtos.Errno {
	f := s.fnInit
	f.Enter()
	defer f.Exit()
	if s.started {
		f.B(1)
		return rtos.ErrBusy
	}
	if !s.k.Env.Spec.HasPeripheral("socket") {
		// No network stack on this board (QEMU models no MAC/radio): the
		// listener cannot come up, and the whole server is unreachable.
		f.B(5)
		return rtos.ErrNoDev
	}
	if port <= 0 || port > 65535 {
		f.B(2)
		return rtos.ErrInval
	}
	if port < 1024 {
		f.B(3) // privileged ports allowed on an RTOS, but tracked
	}
	f.B(4)
	s.started = true
	s.port = port
	return rtos.OK
}

// Stats reports request and per-status counts.
func (s *Server) Stats() (requests int, byStatus map[int]int) {
	return s.requests, s.served
}

type request struct {
	method  string
	path    string
	query   map[string]string
	proto   string
	headers map[string]string
	cookies map[string]string
	body    []byte
}

// Handle processes one raw request buffer and returns the response status.
func (s *Server) Handle(raw []byte) (int, rtos.Errno) {
	f := s.fnHandle
	f.Enter()
	defer f.Exit()
	if !s.started {
		f.B(1)
		return 0, rtos.ErrState
	}
	s.requests++
	if len(raw) == 0 || len(raw) > MaxRequest {
		f.B(2)
		return s.respond(400), rtos.ErrInval
	}
	f.B(3)
	req, status := s.parse(raw)
	if status != 0 {
		f.B(4)
		return s.respond(status), rtos.ErrInval
	}
	f.B(5)
	return s.respond(s.route(req)), rtos.OK
}

func (s *Server) respond(status int) int {
	s.served[status]++
	return status
}

func (s *Server) parse(raw []byte) (*request, int) {
	text := string(raw)
	lineEnd := strings.Index(text, "\r\n")
	if lineEnd < 0 {
		lineEnd = strings.IndexByte(text, '\n')
		if lineEnd < 0 {
			return nil, 400
		}
	}
	req, status := s.parseRequestLine(text[:lineEnd])
	if status != 0 {
		return nil, status
	}
	rest := text[lineEnd:]
	rest = strings.TrimPrefix(rest, "\r\n")
	rest = strings.TrimPrefix(rest, "\n")
	body, status := s.parseHeaders(req, rest)
	if status != 0 {
		return nil, status
	}
	req.body = []byte(body)
	return req, 0
}

func (s *Server) parseRequestLine(line string) (*request, int) {
	f := s.fnReqLine
	f.Enter()
	defer f.Exit()
	parts := strings.Split(line, " ")
	if len(parts) != 3 {
		f.B(1)
		return nil, 400
	}
	req := &request{method: parts[0], proto: parts[2], query: map[string]string{}}
	switch req.method {
	case "GET":
		f.B(2)
	case "POST":
		f.B(3)
	case "HEAD":
		f.B(4)
	case "PUT", "DELETE":
		f.B(5)
		return nil, 405
	default:
		f.B(6)
		return nil, 400
	}
	uri := parts[1]
	if uri == "" || uri[0] != '/' || len(uri) > MaxURILen {
		f.B(7)
		return nil, 400
	}
	if q := strings.IndexByte(uri, '?'); q >= 0 {
		f.B(8)
		req.path = uri[:q]
		if st := s.parseQuery(req, uri[q+1:]); st != 0 {
			f.B(9)
			return nil, st
		}
	} else {
		f.B(10)
		req.path = uri
	}
	if req.proto != "HTTP/1.0" && req.proto != "HTTP/1.1" {
		f.B(11)
		return nil, 505
	}
	f.B(12)
	return req, 0
}

func (s *Server) parseQuery(req *request, qs string) int {
	f := s.fnQuery
	f.Enter()
	defer f.Exit()
	if qs == "" {
		f.B(1)
		return 0
	}
	for _, pair := range strings.Split(qs, "&") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			f.B(2)
			return 400
		}
		if len(req.query) >= 16 {
			f.B(3)
			return 414
		}
		f.B(4)
		req.query[k] = v
	}
	f.B(5)
	return 0
}

func (s *Server) parseHeaders(req *request, rest string) (string, int) {
	f := s.fnHeaders
	f.Enter()
	defer f.Exit()
	req.headers = map[string]string{}
	for {
		lineEnd := strings.Index(rest, "\r\n")
		sep := 2
		if lineEnd < 0 {
			lineEnd = strings.IndexByte(rest, '\n')
			sep = 1
		}
		if lineEnd < 0 {
			// No blank line terminator: headers run to EOF, no body.
			if strings.TrimSpace(rest) == "" {
				f.B(1)
				return "", 0
			}
			f.B(2)
			return "", 400
		}
		line := rest[:lineEnd]
		rest = rest[lineEnd+sep:]
		if line == "" {
			f.B(3)
			break // end of headers
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok || name == "" || strings.ContainsAny(name, " \t") {
			f.B(4)
			return "", 400
		}
		if len(req.headers) >= MaxHeaders {
			f.B(5)
			return "", 431
		}
		f.B(6)
		req.headers[strings.ToLower(name)] = strings.TrimSpace(value)
	}
	if cs, ok := req.headers["cookie"]; ok {
		if st := s.parseCookies(req, cs); st != 0 {
			return "", st
		}
	}
	if te, ok := req.headers["transfer-encoding"]; ok {
		f.B(7)
		if te != "chunked" {
			return "", 501
		}
		body, st := s.decodeChunked(rest)
		if st != 0 {
			return "", st
		}
		return body, 0
	}
	if cl, ok := req.headers["content-length"]; ok {
		f.B(7)
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 || n > MaxBody {
			f.B(8)
			return "", 413
		}
		if n > len(rest) {
			f.B(9)
			return "", 400
		}
		f.B(10)
		return rest[:n], 0
	}
	f.B(11)
	return rest, 0
}

// parseCookies splits the Cookie header into the request's cookie map.
func (s *Server) parseCookies(req *request, header string) int {
	f := s.fnCookies
	f.Enter()
	defer f.Exit()
	req.cookies = map[string]string{}
	for _, pair := range strings.Split(header, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			f.B(1)
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			f.B(2)
			return 400
		}
		if len(req.cookies) >= 8 {
			f.B(3)
			return 431
		}
		f.B(4)
		req.cookies[k] = v
	}
	switch len(req.cookies) {
	case 0:
		f.B(5)
	case 1:
		f.B(6)
	default:
		f.B(7)
	}
	return 0
}

// decodeChunked implements HTTP/1.1 chunked transfer decoding.
func (s *Server) decodeChunked(rest string) (string, int) {
	f := s.fnChunked
	f.Enter()
	defer f.Exit()
	var body strings.Builder
	for {
		lineEnd := strings.Index(rest, "\r\n")
		if lineEnd < 0 {
			f.B(1)
			return "", 400
		}
		size, err := strconv.ParseUint(strings.TrimSpace(rest[:lineEnd]), 16, 32)
		if err != nil {
			f.B(2)
			return "", 400
		}
		rest = rest[lineEnd+2:]
		if size == 0 {
			f.B(3)
			break
		}
		if int(size) > len(rest) || body.Len()+int(size) > MaxBody {
			f.B(4)
			return "", 413
		}
		switch {
		case size < 16:
			f.B(5)
		case size < 256:
			f.B(6)
		default:
			f.B(7)
		}
		body.WriteString(rest[:size])
		rest = rest[size:]
		rest = strings.TrimPrefix(rest, "\r\n")
	}
	f.B(8)
	return body.String(), 0
}

func (s *Server) route(req *request) int {
	f := s.fnRoute
	f.Enter()
	defer f.Exit()
	switch req.path {
	case "/":
		f.B(1)
		return s.handleStatus(req, true)
	case "/status":
		f.B(2)
		return s.handleStatus(req, false)
	case "/api/echo":
		f.B(3)
		return s.handleEcho(req)
	case "/api/json":
		f.B(4)
		return s.handleJSON(req)
	default:
		if strings.HasPrefix(req.path, "/api/v1/device/") {
			f.B(8)
			return s.handleDevice(req)
		}
		if strings.HasPrefix(req.path, "/static/") {
			f.B(5)
			if strings.Contains(req.path, "..") {
				f.B(6)
				return 403
			}
			return 200
		}
		f.B(7)
		return 404
	}
}

// checkAuth validates the Authorization header for protected routes.
func (s *Server) checkAuth(req *request) int {
	f := s.fnAuth
	f.Enter()
	defer f.Exit()
	auth, ok := req.headers["authorization"]
	if !ok {
		// A session cookie is an acceptable substitute.
		if tok, ok := req.cookies["session"]; ok && len(tok) >= 8 {
			f.B(1)
			return 0
		}
		f.B(2)
		return 401
	}
	scheme, token, ok := strings.Cut(auth, " ")
	if !ok {
		f.B(3)
		return 400
	}
	switch strings.ToLower(scheme) {
	case "bearer":
		f.B(4)
		if len(token) < 8 {
			f.B(5)
			return 401
		}
		if strings.HasPrefix(token, "dev-") {
			f.B(6) // development tokens get extra audit logging
			s.k.Kprintf("httpd: dev token used\n")
		}
	case "basic":
		f.B(7)
		if !strings.Contains(token, ":") && len(token) < 6 {
			f.B(8)
			return 401
		}
	default:
		f.B(9)
		return 401
	}
	return 0
}

// handleDevice serves /api/v1/device/<id>[/action] with auth and per-action
// dispatch — the deepest route in the server.
func (s *Server) handleDevice(req *request) int {
	f := s.fnDevice
	f.Enter()
	defer f.Exit()
	if st := s.checkAuth(req); st != 0 {
		f.B(1)
		return st
	}
	rest := strings.TrimPrefix(req.path, "/api/v1/device/")
	id, action, hasAction := strings.Cut(rest, "/")
	if id == "" || len(id) > 16 {
		f.B(2)
		return 404
	}
	numeric := true
	for _, c := range id {
		if c < '0' || c > '9' {
			numeric = false
		}
	}
	if numeric {
		f.B(3)
	} else {
		f.B(4)
	}
	if !hasAction {
		f.B(5)
		if req.method != "GET" {
			return 405
		}
		return 200
	}
	switch action {
	case "status":
		f.B(6)
		return 200
	case "reset":
		f.B(7)
		if req.method != "POST" {
			f.B(8)
			return 405
		}
		return 202
	case "config":
		f.B(9)
		if req.method != "POST" || len(req.body) == 0 {
			f.B(10)
			return 400
		}
		if s.json == nil {
			return 404
		}
		h, e := s.json.Parse(req.body)
		if e.Failed() {
			f.B(11)
			return 422
		}
		s.json.Free(h)
		f.B(12)
		return 200
	default:
		f.B(13)
		return 404
	}
}

func (s *Server) handleStatus(req *request, index bool) int {
	f := s.fnStatus
	f.Enter()
	defer f.Exit()
	if req.method == "POST" {
		f.B(1)
		return 405
	}
	if index {
		f.B(2)
	} else {
		f.B(3)
		if v, ok := req.query["verbose"]; ok && v == "1" {
			f.B(4)
			s.k.Kprintf("httpd: status verbose, %d requests served\n", s.requests)
		}
	}
	return 200
}

func (s *Server) handleEcho(req *request) int {
	f := s.fnEcho
	f.Enter()
	defer f.Exit()
	if req.method != "POST" {
		f.B(1)
		return 405
	}
	if len(req.body) == 0 {
		f.B(2)
		return 400
	}
	if _, ok := req.headers["content-type"]; !ok {
		f.B(3)
		return 415
	}
	f.B(4)
	return 200
}

func (s *Server) handleJSON(req *request) int {
	f := s.fnJSONEP
	f.Enter()
	defer f.Exit()
	if s.json == nil {
		f.B(1)
		return 404
	}
	if req.method != "POST" {
		f.B(2)
		return 405
	}
	handle, e := s.json.Parse(req.body)
	if e.Failed() {
		f.B(3)
		return 422
	}
	f.B(4)
	pretty := uint32(0)
	if req.query["pretty"] == "1" {
		f.B(5)
		pretty = jsonlib.EncPretty
	}
	if _, e := s.json.Encode(handle, pretty); e.Failed() {
		f.B(6)
		s.json.Free(handle)
		return 500
	}
	f.B(7)
	s.json.Free(handle)
	return 200
}

// String summarizes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("httpd(port=%d, started=%v, requests=%d)", s.port, s.started, s.requests)
}
