package httpd

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/app/jsonlib"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/mem"
	"github.com/eof-fuzz/eof/internal/rtos"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/uart"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// newServer builds a server on a minimal kernel whose instrumentation is
// inert (not live), so handlers run synchronously in the test goroutine.
func newServer(t *testing.T) *Server {
	t.Helper()
	clock := &vtime.Clock{}
	mm := mem.NewMap()
	ram := mem.NewRegion("ram", 0x2000_0000, 64*1024, mem.RW)
	mm.MustAdd(ram)
	env := &board.Env{
		Spec:  &board.Spec{Name: "t", Peripherals: map[string]bool{"socket": true}},
		Clock: clock,
		Core:  cpu.New(clock, cpu.DefaultConfig()),
		Mem:   mm,
		RAM:   ram,
		UART:  uart.New(clock),
		Syms:  sym.NewTable(0x0800_0000),
	}
	k := rtos.NewKernel(env, "T")
	srv := New(k, jsonlib.New(k))
	if e := srv.Init(8080); e.Failed() {
		t.Fatal(e)
	}
	return srv
}

func handle(t *testing.T, s *Server, req string) int {
	t.Helper()
	status, _ := s.Handle([]byte(req))
	return status
}

func TestBasicRouting(t *testing.T) {
	s := newServer(t)
	cases := []struct {
		req  string
		want int
	}{
		{"GET / HTTP/1.1\r\n\r\n", 200},
		{"GET /status HTTP/1.1\r\n\r\n", 200},
		{"POST /status HTTP/1.1\r\n\r\n", 405},
		{"GET /nope HTTP/1.1\r\n\r\n", 404},
		{"GET /static/logo.png HTTP/1.1\r\n\r\n", 200},
		{"GET /static/../etc HTTP/1.1\r\n\r\n", 403},
		{"PUT / HTTP/1.1\r\n\r\n", 405},
		{"FROB / HTTP/1.1\r\n\r\n", 400},
		{"GET / HTTP/2.0\r\n\r\n", 505},
		{"garbage", 400},
		{"GET", 400},
	}
	for _, tc := range cases {
		if got := handle(t, s, tc.req); got != tc.want {
			t.Errorf("Handle(%q) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestInitValidation(t *testing.T) {
	s := newServer(t)
	if e := s.Init(8080); e != rtos.ErrBusy {
		t.Errorf("double init: %v", e)
	}
	fresh := newServer(t) // newServer inits; build one manually for the cases
	_ = fresh
	clock := &vtime.Clock{}
	mm := mem.NewMap()
	ram := mem.NewRegion("ram", 0x2000_0000, 64*1024, mem.RW)
	mm.MustAdd(ram)
	env := &board.Env{
		Spec: &board.Spec{Name: "t", Peripherals: map[string]bool{"socket": true}}, Clock: clock,
		Core: cpu.New(clock, cpu.DefaultConfig()),
		Mem:  mm, RAM: ram, UART: uart.New(clock), Syms: sym.NewTable(0x0900_0000),
	}
	k := rtos.NewKernel(env, "T")
	raw := New(k, nil)
	if e := raw.Init(0); e != rtos.ErrInval {
		t.Errorf("port 0: %v", e)
	}
	if e := raw.Init(70000); e != rtos.ErrInval {
		t.Errorf("port 70000: %v", e)
	}
	if st, e := raw.Handle([]byte("GET / HTTP/1.1\r\n\r\n")); e != rtos.ErrState || st != 0 {
		t.Errorf("handle before init: %d %v", st, e)
	}
	if e := raw.Init(80); e.Failed() {
		t.Errorf("privileged port: %v", e)
	}
	// json == nil: the endpoint 404s.
	if got, _ := raw.Handle([]byte("POST /api/json HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")); got != 404 {
		t.Errorf("json endpoint without lib: %d", got)
	}
}

func TestEchoEndpoint(t *testing.T) {
	s := newServer(t)
	if got := handle(t, s, "POST /api/echo HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi"); got != 200 {
		t.Errorf("echo: %d", got)
	}
	if got := handle(t, s, "GET /api/echo HTTP/1.1\r\n\r\n"); got != 405 {
		t.Errorf("echo GET: %d", got)
	}
	if got := handle(t, s, "POST /api/echo HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"); got != 415 {
		t.Errorf("echo without content type: %d", got)
	}
	if got := handle(t, s, "POST /api/echo HTTP/1.1\r\nContent-Type: a\r\nContent-Length: 0\r\n\r\n"); got != 400 {
		t.Errorf("echo empty body: %d", got)
	}
}

func TestJSONEndpoint(t *testing.T) {
	s := newServer(t)
	req := "POST /api/json HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\":123}"
	if got := handle(t, s, req); got != 200 {
		t.Errorf("json: %d", got)
	}
	bad := "POST /api/json HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{"
	if got := handle(t, s, bad); got != 422 {
		t.Errorf("bad json: %d", got)
	}
}

func TestQueryParsing(t *testing.T) {
	s := newServer(t)
	if got := handle(t, s, "GET /status?verbose=1&x=2 HTTP/1.1\r\n\r\n"); got != 200 {
		t.Errorf("query: %d", got)
	}
	if got := handle(t, s, "GET /status?=broken HTTP/1.1\r\n\r\n"); got != 400 {
		t.Errorf("empty key: %d", got)
	}
	var sb strings.Builder
	for i := 0; i < 17; i++ {
		fmt.Fprintf(&sb, "k%d=v&", i)
	}
	long := "GET /status?" + sb.String() + "z=1 HTTP/1.1\r\n\r\n"
	if got := handle(t, s, long); got != 414 {
		t.Errorf("too many params: %d", got)
	}
}

func TestAuthAndDeviceRoutes(t *testing.T) {
	s := newServer(t)
	cases := []struct {
		req  string
		want int
	}{
		{"GET /api/v1/device/42 HTTP/1.1\r\n\r\n", 401},
		{"GET /api/v1/device/42 HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 200},
		{"GET /api/v1/device/42 HTTP/1.1\r\nAuthorization: Bearer x\r\n\r\n", 401},
		{"GET /api/v1/device/42 HTTP/1.1\r\nAuthorization: Frob zz\r\n\r\n", 401},
		{"GET /api/v1/device/42 HTTP/1.1\r\nAuthorization: nospace\r\n\r\n", 400},
		{"GET /api/v1/device/42 HTTP/1.1\r\nCookie: session=abcdefgh\r\n\r\n", 200},
		{"GET /api/v1/device/42/status HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 200},
		{"GET /api/v1/device/42/reset HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 405},
		{"POST /api/v1/device/42/reset HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 202},
		{"POST /api/v1/device/42/frob HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 404},
		{"POST /api/v1/device/ HTTP/1.1\r\nAuthorization: Bearer secret-token\r\n\r\n", 404},
		{"POST /api/v1/device/7/config HTTP/1.1\r\nAuthorization: Bearer secret-token\r\nContent-Length: 7\r\n\r\n{\"m\":1}", 200},
		{"POST /api/v1/device/7/config HTTP/1.1\r\nAuthorization: Bearer secret-token\r\nContent-Length: 3\r\n\r\n}{x", 422},
	}
	for _, tc := range cases {
		if got := handle(t, s, tc.req); got != tc.want {
			t.Errorf("Handle(%q) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestChunkedBodies(t *testing.T) {
	s := newServer(t)
	chunked := "POST /api/json HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\n{\"a\"\r\n4\r\n:12}\r\n0\r\n\r\n"
	if got := handle(t, s, chunked); got != 200 {
		t.Errorf("chunked json: %d", got)
	}
	bad := "POST /api/json HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\nxx\r\n0\r\n\r\n"
	if got := handle(t, s, bad); got != 400 {
		t.Errorf("bad chunk size: %d", got)
	}
	gzip := "POST /api/json HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\nxx"
	if got := handle(t, s, gzip); got != 501 {
		t.Errorf("unsupported TE: %d", got)
	}
}

func TestHeadersValidation(t *testing.T) {
	s := newServer(t)
	if got := handle(t, s, "GET / HTTP/1.1\r\nBad Header: x\r\n\r\n"); got != 400 {
		t.Errorf("space in header name: %d", got)
	}
	many := "GET / HTTP/1.1\r\n"
	for i := 0; i < 30; i++ {
		many += "X-A" + strings.Repeat("a", i) + ": 1\r\n"
	}
	many += "\r\n"
	if got := handle(t, s, many); got != 431 {
		t.Errorf("too many headers: %d", got)
	}
	if got := handle(t, s, "POST /api/echo HTTP/1.1\r\nContent-Length: 99999\r\n\r\nx"); got != 413 {
		t.Errorf("huge content length: %d", got)
	}
	if got := handle(t, s, "POST /api/echo HTTP/1.1\r\nContent-Length: 10\r\n\r\nx"); got != 400 {
		t.Errorf("short body: %d", got)
	}
}

func TestCookieParsing(t *testing.T) {
	s := newServer(t)
	if got := handle(t, s, "GET / HTTP/1.1\r\nCookie: a=1; b=2\r\n\r\n"); got != 200 {
		t.Errorf("cookies: %d", got)
	}
	if got := handle(t, s, "GET / HTTP/1.1\r\nCookie: broken\r\n\r\n"); got != 400 {
		t.Errorf("bad cookie: %d", got)
	}
	var cb strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&cb, "k%d=1; ", i)
	}
	many := "GET / HTTP/1.1\r\nCookie: " + strings.TrimSuffix(cb.String(), "; ") + "\r\n\r\n"
	if got := handle(t, s, many); got != 431 {
		t.Errorf("cookie overflow: %d (req %q)", got, many)
	}
}

func TestRandomBuffersNeverPanic(t *testing.T) {
	s := newServer(t)
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		b := make([]byte, rnd.Intn(600))
		rnd.Read(b)
		s.Handle(b)
	}
	reqs, by := s.Stats()
	if reqs < 3000 {
		t.Fatalf("requests: %d", reqs)
	}
	if by[400] == 0 {
		t.Fatal("no 400s from random input?")
	}
}

func TestStatsAndString(t *testing.T) {
	s := newServer(t)
	handle(t, s, "GET / HTTP/1.1\r\n\r\n")
	if !strings.Contains(s.String(), "port=8080") {
		t.Fatalf("String: %s", s)
	}
}
