package rtos

// ObjType classifies kernel objects.
type ObjType uint8

// Kernel object types.
const (
	ObjNone ObjType = iota
	ObjTask
	ObjQueue
	ObjSem
	ObjMutex
	ObjEvent
	ObjTimer
	ObjPool
	ObjDevice
	ObjSocket
	ObjHeapRef
)

func (t ObjType) String() string {
	switch t {
	case ObjTask:
		return "task"
	case ObjQueue:
		return "queue"
	case ObjSem:
		return "semaphore"
	case ObjMutex:
		return "mutex"
	case ObjEvent:
		return "event"
	case ObjTimer:
		return "timer"
	case ObjPool:
		return "mempool"
	case ObjDevice:
		return "device"
	case ObjSocket:
		return "socket"
	case ObjHeapRef:
		return "heapref"
	default:
		return "none"
	}
}

// Object is one kernel object with a handle the agent passes back and forth.
type Object struct {
	ID          uint32
	Type        ObjType
	Name        string
	Data        any
	Alive       bool
	CreatedTick uint64
}

// Table is the kernel object/handle registry.
type Table struct {
	k     *Kernel
	objs  map[uint32]*Object
	next  uint32
	fnNew *Fn
}

func newTable(k *Kernel) *Table {
	t := &Table{k: k, objs: make(map[uint32]*Object), next: 0x1000}
	t.fnNew = k.Fn("__object_register", "kern/object.c", 44, 14)
	return t
}

// New registers an object and returns it with a fresh handle. The registry's
// growth paths (initial table, doubling, per-type list heads) are distinct
// blocks, so populating the kernel with many objects — something only long
// call sequences do — exposes code single calls never touch.
func (t *Table) New(typ ObjType, name string, data any) *Object {
	t.next++
	o := &Object{ID: t.next, Type: typ, Name: name, Data: data, Alive: true, CreatedTick: t.k.Ticks}
	t.objs[o.ID] = o
	f := t.fnNew
	f.Enter()
	f.B(1 + int(typ)%4)
	live := t.Count(ObjNone)
	switch {
	case live <= 1:
		f.B(5)
	case live <= 4:
		f.B(6)
	case live <= 8:
		f.B(7)
	case live <= 16:
		f.B(8)
	case live <= 32:
		f.B(9)
	default:
		f.B(10)
	}
	perType := t.Count(typ)
	if perType > 4 {
		f.B(11)
	}
	if perType > 12 {
		f.B(12)
	}
	f.Exit()
	return o
}

// Get returns the object for a handle, alive or dead, or nil.
func (t *Table) Get(id uint32) *Object { return t.objs[id] }

// GetTyped resolves a handle expecting a live object of the given type.
func (t *Table) GetTyped(id uint32, typ ObjType) (*Object, Errno) {
	o := t.objs[id]
	if o == nil {
		return nil, ErrNotFound
	}
	if !o.Alive {
		return nil, ErrState
	}
	if o.Type != typ {
		return nil, ErrType
	}
	return o, OK
}

// Delete marks an object dead. The handle stays resolvable (dead), because
// use-after-delete through stale handles is a behaviour the fuzzer must be
// able to provoke.
func (t *Table) Delete(id uint32) Errno {
	o := t.objs[id]
	if o == nil {
		return ErrNotFound
	}
	if !o.Alive {
		return ErrState
	}
	o.Alive = false
	return OK
}

// Count returns the number of live objects of the given type (any type when
// typ is ObjNone).
func (t *Table) Count(typ ObjType) int {
	n := 0
	for _, o := range t.objs {
		if o.Alive && (typ == ObjNone || o.Type == typ) {
			n++
		}
	}
	return n
}
