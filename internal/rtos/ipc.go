package rtos

// WaitForever is the timeout value meaning "block until satisfied".
const WaitForever = -1

// IPC parameter bounds enforced at creation.
const (
	QueueItemMax  = 1024
	QueueDepthMax = 256
	SemCountMax   = 0xFFFF
)

// ipcFns are the shared kernel-core functions behind every personality's IPC
// wrappers (the wrappers carry the OS-specific symbols and quirks).
type ipcFns struct {
	qPush, qPop *Fn
	semOps      *Fn
	mtxOps      *Fn
	evtOps      *Fn
	wait        *Fn
}

// initIPC registers the shared IPC core symbols at kernel construction.
func (k *Kernel) initIPC(file string) {
	k.ipc = &ipcFns{
		qPush:  k.Fn("__ipc_queue_push", file, 40, 12),
		qPop:   k.Fn("__ipc_queue_pop", file, 102, 12),
		semOps: k.Fn("__ipc_sem_ops", file, 170, 10),
		mtxOps: k.Fn("__ipc_mutex_ops", file, 230, 7),
		evtOps: k.Fn("__ipc_event_ops", file, 300, 11),
		wait:   k.Fn("__ipc_wait", file, 360, 4),
	}
}

// waitUntil drives the scheduler until cond holds or the tick timeout
// expires. timeout==0 polls once; WaitForever blocks indefinitely (the
// liveness-watchdog-visible degraded state when nothing can satisfy cond).
func (k *Kernel) waitUntil(timeout int, cond func() bool) bool {
	if cond() {
		return true
	}
	f := k.ipc.wait
	f.Enter()
	defer f.Exit()
	if timeout == 0 {
		f.B(1)
		return false
	}
	if timeout < 0 {
		f.B(2)
		for !cond() {
			k.Tick()
		}
		return true
	}
	f.B(3)
	for i := 0; i < timeout; i++ {
		k.Tick()
		if cond() {
			return true
		}
	}
	return false
}

// Queue is a bounded message queue whose item storage lives in the target
// heap, so queue payloads are real RAM bytes the debug link can inspect and
// kernel bugs can corrupt.
type Queue struct {
	Obj      *Object
	ItemSize int
	Depth    int
	buf      uint64 // heap allocation holding Depth*ItemSize bytes
	head     int
	count    int
	k        *Kernel
}

// NewQueue validates parameters and allocates the backing storage.
func (k *Kernel) NewQueue(name string, itemSize, depth int) (*Object, Errno) {
	if itemSize <= 0 || itemSize > QueueItemMax || depth <= 0 || depth > QueueDepthMax {
		return nil, ErrInval
	}
	buf := k.Heap.Alloc(itemSize * depth)
	if buf == 0 {
		return nil, ErrNoMem
	}
	q := &Queue{ItemSize: itemSize, Depth: depth, buf: buf, k: k}
	q.Obj = k.Objects.New(ObjQueue, name, q)
	return q.Obj, OK
}

// Count returns the number of queued items.
func (q *Queue) Count() int { return q.count }

// Send enqueues one item (truncated/zero-padded to ItemSize), waiting up to
// timeout ticks for space.
func (q *Queue) Send(item []byte, timeout int) Errno {
	k := q.k
	f := k.ipc.qPush
	f.Enter()
	defer f.Exit()
	if !k.waitUntil(timeout, func() bool { return q.count < q.Depth }) {
		f.B(1)
		return ErrFull
	}
	f.B(2)
	slot := (q.head + q.count) % q.Depth
	cell := make([]byte, q.ItemSize)
	copy(cell, item)
	k.WriteRAM(q.buf+uint64(slot*q.ItemSize), cell)
	q.count++
	// Fill-level classes: the ring-wrap, watermark and queue-full paths are
	// distinct code in real queues, and reaching them needs accumulated
	// state (repeated sends), not just one lucky call.
	f.B(4 + fillClass(q.count, q.Depth))
	f.B(3)
	return OK
}

// fillClass buckets a fill level into empty/low/high/full (0..3).
func fillClass(count, depth int) int {
	switch {
	case count == 0:
		return 0
	case count == depth:
		return 3
	case count*2 >= depth:
		return 2
	default:
		return 1
	}
}

// Recv dequeues one item, waiting up to timeout ticks for data.
func (q *Queue) Recv(timeout int) ([]byte, Errno) {
	k := q.k
	f := k.ipc.qPop
	f.Enter()
	defer f.Exit()
	if !k.waitUntil(timeout, func() bool { return q.count > 0 }) {
		f.B(1)
		return nil, ErrEmpty
	}
	f.B(2)
	item := k.ReadRAM(q.buf+uint64(q.head*q.ItemSize), q.ItemSize)
	q.head = (q.head + 1) % q.Depth
	q.count--
	f.B(4 + fillClass(q.count, q.Depth))
	if q.head == 0 {
		f.B(8) // ring wrapped
	}
	f.B(3)
	return item, OK
}

// Destroy frees the backing storage and kills the object.
func (q *Queue) Destroy() Errno {
	q.k.Heap.Free(q.buf)
	return q.k.Objects.Delete(q.Obj.ID)
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	Obj   *Object
	Count int
	Max   int
	k     *Kernel
}

// NewSemaphore validates and creates a semaphore.
func (k *Kernel) NewSemaphore(name string, initial, max int) (*Object, Errno) {
	if max <= 0 || max > SemCountMax || initial < 0 || initial > max {
		return nil, ErrInval
	}
	s := &Semaphore{Count: initial, Max: max, k: k}
	s.Obj = k.Objects.New(ObjSem, name, s)
	return s.Obj, OK
}

// Take decrements the count, waiting up to timeout ticks.
func (s *Semaphore) Take(timeout int) Errno {
	k := s.k
	f := k.ipc.semOps
	f.Enter()
	defer f.Exit()
	if !k.waitUntil(timeout, func() bool { return s.Count > 0 }) {
		f.B(1)
		return ErrTimeout
	}
	f.B(2)
	s.Count--
	f.B(5 + countClass(s.Count, s.Max))
	return OK
}

// countClass buckets a semaphore count into zero/one/some/high (0..3).
func countClass(count, max int) int {
	switch {
	case count == 0:
		return 0
	case count == 1:
		return 1
	case count*2 >= max:
		return 3
	default:
		return 2
	}
}

// Give increments the count, failing at the cap.
func (s *Semaphore) Give() Errno {
	k := s.k
	f := k.ipc.semOps
	f.Enter()
	defer f.Exit()
	if s.Count >= s.Max {
		f.B(3)
		return ErrFull
	}
	f.B(4)
	s.Count++
	f.B(5 + countClass(s.Count, s.Max))
	return OK
}

// Mutex is a non-recursive-by-default mutex with basic priority inheritance.
type Mutex struct {
	Obj       *Object
	Owner     *Task
	Ownerless int // lock depth when taken outside a task context (the agent)
	Recursive bool
	k         *Kernel
}

// NewMutex creates a mutex.
func (k *Kernel) NewMutex(name string, recursive bool) (*Object, Errno) {
	m := &Mutex{Recursive: recursive, k: k}
	m.Obj = k.Objects.New(ObjMutex, name, m)
	return m.Obj, OK
}

// Lock acquires the mutex. Re-acquiring a non-recursive mutex from the same
// context deadlocks after the wait — a watchdog-visible degraded state.
func (m *Mutex) Lock(timeout int) Errno {
	k := m.k
	f := k.ipc.mtxOps
	f.Enter()
	defer f.Exit()
	cur := k.Sched.Current()
	held := func() bool {
		if cur != nil {
			return m.Owner == nil && m.Ownerless == 0
		}
		return m.Owner == nil && (m.Ownerless == 0 || m.Recursive)
	}
	if cur == nil && m.Ownerless > 0 && m.Recursive {
		f.B(1)
		m.Ownerless++
		return OK
	}
	if !k.waitUntil(timeout, held) {
		f.B(2)
		return ErrTimeout
	}
	f.B(3)
	if cur != nil {
		m.Owner = cur
		// Priority inheritance bookkeeping target.
		if cur.Prio > cur.BasePrio {
			f.B(4)
			cur.Prio = cur.BasePrio
		}
	} else {
		m.Ownerless++
	}
	return OK
}

// Unlock releases the mutex; releasing an unheld mutex is an EPERM.
func (m *Mutex) Unlock() Errno {
	k := m.k
	f := k.ipc.mtxOps
	f.Enter()
	defer f.Exit()
	if m.Owner == nil && m.Ownerless == 0 {
		f.B(5)
		return ErrPerm
	}
	f.B(6)
	if m.Ownerless > 0 {
		m.Ownerless--
	} else {
		m.Owner = nil
	}
	return OK
}

// Event is an event-flag group.
type Event struct {
	Obj  *Object
	Bits uint32
	k    *Kernel
}

// Event receive options.
const (
	EvtAll   = 1 << 0 // require all bits in mask
	EvtClear = 1 << 1 // clear matched bits on return
)

// NewEvent creates an event group.
func (k *Kernel) NewEvent(name string) (*Object, Errno) {
	e := &Event{k: k}
	e.Obj = k.Objects.New(ObjEvent, name, e)
	return e.Obj, OK
}

// Send sets bits in the group. Setting zero bits is invalid.
func (e *Event) Send(set uint32) Errno {
	k := e.k
	f := k.ipc.evtOps
	f.Enter()
	defer f.Exit()
	if set == 0 {
		f.B(1)
		return ErrInval
	}
	f.B(2)
	e.Bits |= set
	f.B(7 + popcountClass(e.Bits))
	return OK
}

// popcountClass buckets a bitmask's population into 1/few/many/huge (0..3).
func popcountClass(bits uint32) int {
	n := 0
	for b := bits; b != 0; b &= b - 1 {
		n++
	}
	switch {
	case n <= 1:
		return 0
	case n <= 4:
		return 1
	case n <= 12:
		return 2
	default:
		return 3
	}
}

// Recv waits for bits per the options, returning the matched set.
func (e *Event) Recv(mask uint32, opts uint32, timeout int) (uint32, Errno) {
	k := e.k
	f := k.ipc.evtOps
	f.Enter()
	defer f.Exit()
	if mask == 0 {
		f.B(3)
		return 0, ErrInval
	}
	match := func() bool {
		if opts&EvtAll != 0 {
			return e.Bits&mask == mask
		}
		return e.Bits&mask != 0
	}
	if !k.waitUntil(timeout, match) {
		f.B(4)
		return 0, ErrTimeout
	}
	f.B(5)
	got := e.Bits & mask
	f.B(7 + popcountClass(got))
	if opts&EvtClear != 0 {
		f.B(6)
		e.Bits &^= got
	}
	return got, OK
}
