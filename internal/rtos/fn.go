package rtos

import (
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/sym"
)

// Fn is one instrumented kernel function: a registered symbol whose basic
// blocks step the CPU (advancing virtual time, feeding coverage, honouring
// breakpoints) as the Go implementation executes. This is the simulation's
// analogue of the compiler's SanCov instrumentation pass.
type Fn struct {
	k  *Kernel
	SF *sym.Func
}

// Fn registers a function with nblocks basic blocks in the image's symbol
// table. Call once per function at kernel construction.
func (k *Kernel) Fn(name, file string, line, nblocks int) *Fn {
	return &Fn{k: k, SF: k.Env.Syms.AddFunc(name, file, line, nblocks)}
}

// Addr returns the function's entry address (block 0), where monitors plant
// breakpoints.
func (f *Fn) Addr() uint64 { return f.SF.Base }

// Name returns the symbol name.
func (f *Fn) Name() string { return f.SF.Name }

// Enter pushes a backtrace frame and executes the entry block. It returns f
// so call sites read `defer fn.Enter().Exit()`.
func (f *Fn) Enter() *Fn {
	if !f.k.live {
		return f
	}
	f.k.frames = append(f.k.frames, cpu.Frame{File: f.SF.File, Func: f.SF.Name, Line: f.SF.Line})
	f.k.Env.Core.Step(f.SF.Block(0))
	return f
}

// Exit pops the backtrace frame. Use via defer so faults raised mid-function
// still unwind the Go stack consistently (the fault snapshot is taken before
// unwinding).
func (f *Fn) Exit() {
	k := f.k
	if n := len(k.frames); n > 0 && k.frames[n-1].Func == f.SF.Name {
		k.frames = k.frames[:n-1]
	}
}

// B executes basic block i of the function and updates the frame's line so
// backtraces point at the matching pseudo source line.
func (f *Fn) B(i int) {
	k := f.k
	if !k.live {
		return
	}
	if n := len(k.frames); n > 0 && k.frames[n-1].Func == f.SF.Name {
		k.frames[n-1].Line = f.SF.Line + i
	}
	k.Env.Core.Step(f.SF.Block(i))
}

// Bif executes block t when cond holds, otherwise block e; a branch helper
// that keeps handler bodies readable while still emitting distinct edges per
// outcome.
func (f *Fn) Bif(cond bool, t, e int) bool {
	if cond {
		f.B(t)
	} else {
		f.B(e)
	}
	return cond
}
