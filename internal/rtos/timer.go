package rtos

// Timer parameter bounds.
const (
	TimerPeriodMin = 1
	TimerPeriodMax = 1 << 20
)

// Timer is a software timer driven by the kernel tick.
type Timer struct {
	Obj      *Object
	Period   uint64
	OneShot  bool
	Armed    bool
	NextFire uint64
	Fires    uint64
	Behavior int
	k        *Kernel
}

// TimerWheel holds all software timers and fires them from the tick path.
type TimerWheel struct {
	k      *Kernel
	timers []*Timer
	fnTick *Fn
	fnCb   *Fn
}

func newTimerWheel(k *Kernel) *TimerWheel {
	w := &TimerWheel{k: k}
	w.fnTick = k.Fn("__timer_wheel_tick", "kern/timer.c", 55, 6)
	w.fnCb = k.Fn("__timer_callback", "kern/timer.c", 130, 5)
	return w
}

// NewTimer validates parameters and creates a (disarmed) timer.
func (k *Kernel) NewTimer(name string, period uint64, oneShot bool, behavior int) (*Object, Errno) {
	if period < TimerPeriodMin || period > TimerPeriodMax {
		return nil, ErrInval
	}
	t := &Timer{
		Period:   period,
		OneShot:  oneShot,
		Behavior: ((behavior % 3) + 3) % 3,
		k:        k,
	}
	t.Obj = k.Objects.New(ObjTimer, name, t)
	k.Timers.timers = append(k.Timers.timers, t)
	return t.Obj, OK
}

// Start arms the timer relative to the current tick.
func (t *Timer) Start() Errno {
	if t.Armed {
		return ErrBusy
	}
	t.Armed = true
	t.NextFire = t.k.Ticks + t.Period
	return OK
}

// Stop disarms the timer.
func (t *Timer) Stop() Errno {
	if !t.Armed {
		return ErrState
	}
	t.Armed = false
	return OK
}

// tick fires due timers.
func (w *TimerWheel) tick() {
	if len(w.timers) == 0 {
		return
	}
	f := w.fnTick
	f.Enter()
	for _, t := range w.timers {
		if !t.Armed || t.NextFire > w.k.Ticks || !t.Obj.Alive {
			continue
		}
		f.B(1)
		t.Fires++
		if t.OneShot {
			f.B(2)
			t.Armed = false
		} else {
			f.B(3)
			t.NextFire = w.k.Ticks + t.Period
		}
		w.fire(t)
	}
	f.Exit()
}

// fire runs the timer callback's synthetic body.
func (w *TimerWheel) fire(t *Timer) {
	f := w.fnCb
	f.Enter()
	switch t.Behavior {
	case 0: // lightweight bookkeeping
		f.B(1)
	case 1: // poke the scheduler's sleepers
		f.B(2)
		for _, task := range w.k.Sched.tasks {
			if task.State == TaskSleeping {
				f.B(3)
				task.WakeTick = w.k.Ticks
				break
			}
		}
	case 2: // heap churn from interrupt-ish context
		if h := w.k.Heap; h != nil {
			f.B(4)
			if p := h.Alloc(8); p != 0 {
				h.Free(p)
			}
		}
	}
	f.Exit()
}
