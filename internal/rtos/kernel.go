// Package rtos is the embedded-OS kernel framework: instrumented functions,
// a real free-list heap living in target RAM, kernel objects, a priority
// scheduler, IPC primitives, software timers and a device model. The five OS
// personalities in internal/os/* compose and rename these subsystems to
// present their own API surfaces, exactly as embedded OSes share classic
// kernel designs under divergent APIs.
package rtos

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/fsb"
)

// Unwind is panicked through handler code when the kernel faults; the agent
// recovers it at the call boundary. Any other panic type is a simulator bug
// and propagates.
type Unwind struct {
	Fault *cpu.Fault
}

// TickHZ is the kernel tick rate.
const TickHZ = 1000

// Kernel is the shared kernel state for one booted OS image.
type Kernel struct {
	Env    *board.Env
	OSName string

	Heap    *Heap
	Objects *Table
	Sched   *Scheduler
	Timers  *TimerWheel
	Devices *Devices

	// ConsoleWrite is the OS-specific kprintf sink (the chain of device
	// functions ending at the UART). Set by the personality; nil falls back
	// to a direct UART write.
	ConsoleWrite func(s string)

	// ExceptionFn is the OS-specific exception entry (panic_handler,
	// common_exception, ...) executed on a fault; the host's exception
	// monitor plants its breakpoint at this symbol.
	ExceptionFn *Fn

	// Ticks counts kernel ticks since boot.
	Ticks uint64

	frames []cpu.Frame
	hangFn *Fn
	idleFn *Fn
	ipc    *ipcFns
	rng    uint64
	live   bool
}

// SetLive arms instrumentation. Kernel code executed during firmware
// construction (device registration, table setup) runs before the coverage
// runtime and CPU exist; its instrumentation hooks stay inert until the
// agent enters its main loop — the same way SanCov guards are dead until the
// runtime initialises.
func (k *Kernel) SetLive() { k.live = true }

// NewKernel creates the framework state on a booted environment. The
// personality then registers its functions, heap and devices.
func NewKernel(env *board.Env, osName string) *Kernel {
	k := &Kernel{Env: env, OSName: osName, rng: env.BuildID*2654435761 + 1}
	k.Objects = newTable(k)
	k.Sched = newScheduler(k)
	k.Timers = newTimerWheel(k)
	k.Devices = newDevices(k)
	k.hangFn = k.Fn("__hang_loop", "arch/common/hang.c", 12, 1)
	k.idleFn = k.Fn("__idle_task", "arch/common/idle.c", 30, 2)
	k.initIPC("kern/ipc.c")
	return k
}

// Rand returns a deterministic pseudo-random uint64 (scheduler jitter, etc.).
func (k *Kernel) Rand() uint64 {
	k.rng ^= k.rng << 13
	k.rng ^= k.rng >> 7
	k.rng ^= k.rng << 17
	return k.rng
}

// Frames returns a snapshot of the current backtrace, innermost first, in
// the paper's Figure-6 "Level: N" order.
func (k *Kernel) Frames() []cpu.Frame {
	out := make([]cpu.Frame, 0, len(k.frames))
	for i := len(k.frames) - 1; i >= 0; i-- {
		out = append(out, k.frames[i])
	}
	return out
}

// ReadRAM copies n bytes of target RAM at addr; a bad address raises a bus
// fault, as dereferencing a wild pointer does.
func (k *Kernel) ReadRAM(addr uint64, n int) []byte {
	data, err := k.Env.Mem.Read(addr, n)
	if err != nil {
		k.PanicFault(cpu.FaultBus, err.Error())
	}
	return data
}

// WriteRAM stores data at addr, faulting on invalid addresses.
func (k *Kernel) WriteRAM(addr uint64, data []byte) {
	if err := k.Env.Mem.Write(addr, data); err != nil {
		k.PanicFault(cpu.FaultBus, err.Error())
	}
}

// CString reads a NUL-terminated string from target memory with a length
// cap; it faults on unmapped memory like any stray dereference.
func (k *Kernel) CString(addr uint64, max int) string {
	out := make([]byte, 0, 16)
	for i := 0; i < max; i++ {
		b, err := k.Env.Mem.Read(addr+uint64(i), 1)
		if err != nil {
			k.PanicFault(cpu.FaultBus, err.Error())
		}
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
	}
	return string(out)
}

// Kprintf formats a console message and pushes it through the OS console
// path (the case-study bug lives in one personality's path).
func (k *Kernel) Kprintf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	if k.ConsoleWrite != nil {
		k.ConsoleWrite(s)
		return
	}
	k.Env.UART.WriteString(s)
}

// PanicFault raises a kernel fault: it records the fault status block,
// prints the crash banner and backtrace to the console UART, runs the
// OS-specific exception function (where the exception monitor's breakpoint
// fires), reports the fault over the debug link, and finally unwinds the
// handler. It never returns.
func (k *Kernel) PanicFault(kind cpu.FaultKind, msg string) {
	fault := &cpu.Fault{
		Kind:   kind,
		PC:     k.Env.Core.PC(),
		Msg:    msg,
		Frames: k.Frames(),
	}

	// 1. Fault status block, readable by the host over the debug link.
	if k.Env.FSBAddr >= k.Env.RAM.Base {
		ram := k.Env.RAM.Bytes()
		off := k.Env.FSBAddr - k.Env.RAM.Base
		if off+board.FSBSize <= uint64(len(ram)) {
			fsb.Encode(fault, ram[off:off+board.FSBSize])
		}
	}

	// 2. Crash banner on the UART. Bus/hard faults lose the TX FIFO tail,
	// so the log monitor alone cannot always attribute these.
	u := k.Env.UART
	u.WriteString(fmt.Sprintf("*** %v: %s\n", kind, msg))
	u.WriteString("Stack frames at BUG: unexpected stop:\n")
	for i, fr := range fault.Frames {
		u.WriteString(fmt.Sprintf("Level: %d: %s : %s : %d\n", i+1, fr.File, fr.Func, fr.Line))
	}
	if kind == cpu.FaultBus || kind == cpu.FaultHard {
		u.DropTail()
	}

	// 3. OS-specific exception entry: the exception monitor's breakpoint
	// target. 4. Halt-with-fault visible on the debug link. Both need a
	// running core; a fault before the kernel goes live (unit tests,
	// pre-boot code) just unwinds.
	if k.live {
		if k.ExceptionFn != nil {
			k.ExceptionFn.Enter()
			k.ExceptionFn.Exit()
		}
		k.Env.Core.RaiseFault(fault)
	}
	panic(Unwind{Fault: fault})
}

// Assert checks a kernel invariant; on failure it prints the assertion line
// (log-monitor territory) and hangs the system — the RT_ASSERT behaviour the
// paper's assertion bugs exhibit.
func (k *Kernel) Assert(cond bool, expr string) {
	if cond {
		return
	}
	k.AssertFail(expr)
}

// AssertFail reports a failed assertion and hangs. It never returns.
func (k *Kernel) AssertFail(expr string) {
	loc := "??"
	if n := len(k.frames); n > 0 {
		loc = fmt.Sprintf("%s:%d (%s)", k.frames[n-1].File, k.frames[n-1].Line, k.frames[n-1].Func)
	}
	k.Kprintf("ASSERT failed: (%s) at %s\n", expr, loc)
	k.HangForever("assertion")
}

// HangForever spins at a stable PC forever, the degraded state the PC-stall
// watchdog exists to detect. It never returns.
func (k *Kernel) HangForever(why string) {
	_ = why
	addr := k.hangFn.SF.Block(0)
	for {
		k.Env.Core.Idle(addr, 4096)
	}
}

// Tick advances the kernel by one tick: timers fire, sleeping tasks wake,
// the scheduler runs one slice. Blocking APIs call this in their wait loops,
// so waiting burns virtual time and exercises scheduler/timer code. Beyond
// the cycles the tick's own code consumes, the clock advances by the tick
// period — the CPU idles between ticks on real hardware, and modelling that
// keeps sleeps and timeouts on wall-clock scale.
func (k *Kernel) Tick() {
	k.Ticks++
	period := time.Second / TickHZ
	// An emulator warps idle time: virtual timers fast-forward instead of
	// the host idling out the tick period (Spec.IdleWarp).
	if k.Env.Spec != nil && k.Env.Spec.IdleWarp > 1 {
		period /= time.Duration(k.Env.Spec.IdleWarp)
	}
	k.Env.Clock.Advance(period)
	k.Timers.tick()
	k.Sched.tick()
}

// TickN advances n ticks.
func (k *Kernel) TickN(n int) {
	for i := 0; i < n; i++ {
		k.Tick()
	}
}
