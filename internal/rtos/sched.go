package rtos

// TaskState is a task's scheduling state.
type TaskState uint8

// Task states.
const (
	TaskReady TaskState = iota
	TaskRunning
	TaskSleeping
	TaskSuspended
	TaskDead
)

func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskSleeping:
		return "sleeping"
	case TaskSuspended:
		return "suspended"
	case TaskDead:
		return "dead"
	default:
		return "?"
	}
}

// Priority bounds (0 is highest, like most RTOS conventions after mapping).
const (
	PrioMax   = 0
	PrioMin   = 31
	PrioCount = 32
)

// Stack size bounds enforced by task creation.
const (
	StackMin = 128
	StackMax = 64 * 1024
)

// NumBehaviors is how many synthetic task-body behaviours exist.
const NumBehaviors = 4

// Task is a kernel task/thread control block.
type Task struct {
	Obj       *Object
	Prio      int
	BasePrio  int // original priority (mutex inheritance restores to it)
	StackSize int
	Behavior  int
	State     TaskState
	WakeTick  uint64
	RunCount  uint64
	counter   uint64
}

// Scheduler is a 32-level priority scheduler with round-robin within a
// level, driven by the kernel tick.
type Scheduler struct {
	k       *Kernel
	tasks   []*Task
	current *Task

	fnTick   *Fn
	fnPick   *Fn
	fnSwitch *Fn
	bodies   [NumBehaviors]*Fn

	ctxSwitches uint64
	rrCursor    int
}

func newScheduler(k *Kernel) *Scheduler {
	return &Scheduler{k: k}
}

// InitSched registers the scheduler's instrumented functions under the
// personality's symbol names (e.g. xTaskIncrementTick vs z_sched_tick).
func (k *Kernel) InitSched(tickName, pickName, switchName, file string) {
	s := k.Sched
	s.fnTick = k.Fn(tickName, file, 88, 8)
	s.fnPick = k.Fn(pickName, file, 160, 6)
	s.fnSwitch = k.Fn(switchName, file, 215, 4)
	for i := range s.bodies {
		s.bodies[i] = k.Fn(behaviorName(i), "tasks/bodies.c", 10+40*i, 6)
	}
}

func behaviorName(i int) string {
	switch i {
	case 0:
		return "__task_body_counter"
	case 1:
		return "__task_body_yielder"
	case 2:
		return "__task_body_sleeper"
	case 3:
		return "__task_body_churner"
	default:
		return "__task_body_unknown"
	}
}

// Create validates and creates a task. The entry behaviour is synthetic but
// branchy, so scheduled tasks generate real coverage and real heap traffic.
func (s *Scheduler) Create(name string, prio, stackSize, behavior int) (*Object, Errno) {
	if prio < PrioMax || prio > PrioMin {
		return nil, ErrInval
	}
	if stackSize < StackMin || stackSize > StackMax {
		return nil, ErrInval
	}
	t := &Task{
		Prio:      prio,
		BasePrio:  prio,
		StackSize: stackSize,
		Behavior:  ((behavior % NumBehaviors) + NumBehaviors) % NumBehaviors,
		State:     TaskReady,
	}
	t.Obj = s.k.Objects.New(ObjTask, name, t)
	s.tasks = append(s.tasks, t)
	return t.Obj, OK
}

// Current returns the running task, or nil before any slice has run.
func (s *Scheduler) Current() *Task { return s.current }

// ContextSwitches returns the context-switch count since boot.
func (s *Scheduler) ContextSwitches() uint64 { return s.ctxSwitches }

// TaskCount returns the number of non-dead tasks.
func (s *Scheduler) TaskCount() int {
	n := 0
	for _, t := range s.tasks {
		if t.State != TaskDead {
			n++
		}
	}
	return n
}

// tick advances the scheduler one tick: wakes sleepers, picks the next task
// and runs one slice of its body.
func (s *Scheduler) tick() {
	if s.fnTick == nil {
		return // personality without a scheduler surface
	}
	f := s.fnTick
	f.Enter()
	for _, t := range s.tasks {
		if t.State == TaskSleeping && t.WakeTick <= s.k.Ticks {
			f.B(1)
			t.State = TaskReady
		}
	}
	f.B(2)
	next := s.pick()
	if next != s.current {
		s.contextSwitch(next)
	}
	f.Exit()
	if s.current != nil {
		s.runSlice(s.current)
	} else {
		s.k.IdleSlice()
	}
}

func (s *Scheduler) pick() *Task {
	f := s.fnPick
	f.Enter()
	defer f.Exit()
	var best *Task
	n := len(s.tasks)
	for i := 0; i < n; i++ {
		t := s.tasks[(s.rrCursor+i)%n]
		if t.State != TaskReady && t.State != TaskRunning {
			continue
		}
		if best == nil || t.Prio < best.Prio {
			f.B(1)
			best = t
		}
	}
	s.rrCursor++
	if best != nil {
		f.B(2)
	} else {
		f.B(3)
	}
	return best
}

func (s *Scheduler) contextSwitch(next *Task) {
	f := s.fnSwitch
	f.Enter()
	if s.current != nil && s.current.State == TaskRunning {
		f.B(1)
		s.current.State = TaskReady
	}
	if next != nil {
		f.B(2)
		next.State = TaskRunning
	}
	s.current = next
	s.ctxSwitches++
	f.Exit()
}

// runSlice executes one time slice of the task's synthetic body.
func (s *Scheduler) runSlice(t *Task) {
	t.RunCount++
	t.counter++
	f := s.bodies[t.Behavior]
	f.Enter()
	switch t.Behavior {
	case 0: // counter: pure compute with a parity branch
		if t.counter%2 == 0 {
			f.B(1)
		} else {
			f.B(2)
		}
	case 1: // yielder: goes ready immediately, occasionally bumps cursor
		f.B(1)
		if t.counter%5 == 0 {
			f.B(3)
		}
	case 2: // sleeper: sleeps a few ticks every slice
		f.B(1)
		t.State = TaskSleeping
		t.WakeTick = s.k.Ticks + 2 + t.counter%5
	case 3: // churner: small heap alloc/free churn when a heap exists
		if h := s.k.Heap; h != nil {
			f.B(1)
			if p := h.Alloc(16 + int(t.counter%48)); p != 0 {
				f.B(3)
				h.Free(p)
			} else {
				f.B(4)
			}
		}
	}
	f.B(5)
	f.Exit()
}

// IdleSlice runs the idle task for a moment at a stable PC — what a blocked
// system does, and what the PC-stall watchdog latches onto.
func (k *Kernel) IdleSlice() {
	k.Env.Core.Idle(k.idleFn.SF.Block(0), 8)
}

// Sleep blocks the current context for n ticks, driving the scheduler.
func (k *Kernel) Sleep(n int) {
	for i := 0; i < n; i++ {
		k.Tick()
	}
}
