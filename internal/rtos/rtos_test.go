package rtos

import (
	"testing"
	"testing/quick"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/mem"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/uart"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// testKernel builds a kernel on a synthetic environment whose target
// goroutine runs fn; the harness drives it to completion.
func testKernel(t *testing.T, fn func(k *Kernel)) {
	t.Helper()
	clock := &vtime.Clock{}
	core := cpu.New(clock, cpu.Config{
		Model:          vtime.CycleModel{HZ: 100_000_000},
		CyclesPerBlock: 4,
		MaxBreakpoints: 8,
	})
	mm := mem.NewMap()
	ram := mem.NewRegion("ram", 0x2000_0000, 512*1024, mem.RW)
	mm.MustAdd(ram)
	dev := flash.NewDevice(1<<20, 4096)
	env := &board.Env{
		Spec:        &board.Spec{Name: "test", Peripherals: map[string]bool{"dma": true}},
		Clock:       clock,
		Core:        core,
		Mem:         mm,
		RAM:         ram,
		UART:        uart.New(clock),
		Flash:       dev,
		Syms:        sym.NewTable(0x0800_1000),
		FSBAddr:     0x2000_0040,
		ScratchBase: 0x2000_9000,
	}
	k := NewKernel(env, "TestOS")
	k.NewHeap(0x2001_0000, 256*1024, "t_alloc", "t_free", "t_lock", "mem.c")
	done := make(chan struct{})
	core.Start(func() {
		k.SetLive()
		defer close(done)
		defer func() {
			// Faults unwind with Unwind; swallow them so the harness exits.
			if r := recover(); r != nil {
				if _, ok := r.(Unwind); !ok {
					panic(r)
				}
			}
		}()
		fn(k)
	})
	for {
		st := core.Continue(10_000_000)
		switch st.Kind {
		case cpu.StopExit, cpu.StopKilled:
			return
		case cpu.StopFault, cpu.StopBreakpoint, cpu.StopBudget, cpu.StopCovFull:
			select {
			case <-done:
				core.Kill()
				return
			default:
			}
		}
	}
}

func TestHeapAllocFree(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		a := k.Heap.Alloc(100)
		b := k.Heap.Alloc(200)
		if a == 0 || b == 0 || a == b {
			t.Errorf("allocs: %#x %#x", a, b)
		}
		// Payloads are writable RAM.
		k.WriteRAM(a, []byte("hello"))
		if string(k.ReadRAM(a, 5)) != "hello" {
			t.Error("payload readback")
		}
		if e := k.Heap.Free(a); e.Failed() {
			t.Errorf("free a: %v", e)
		}
		if e := k.Heap.Free(b); e.Failed() {
			t.Errorf("free b: %v", e)
		}
		if !k.Heap.Walk() {
			t.Error("heap corrupt after frees")
		}
		allocs, frees, free := k.Heap.Stats()
		if allocs != 2 || frees != 2 {
			t.Errorf("stats: %d/%d", allocs, frees)
		}
		if free < 250*1024 {
			t.Errorf("coalescing failed: %d free", free)
		}
	})
}

func TestHeapChurnProperty(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		rng := uint64(12345)
		next := func(n int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(n))
		}
		live := map[uint64]int{}
		for i := 0; i < 3000; i++ {
			if next(3) == 0 && len(live) > 0 {
				for p := range live {
					if e := k.Heap.Free(p); e.Failed() {
						t.Fatalf("free: %v", e)
					}
					delete(live, p)
					break
				}
			} else {
				n := 8 + next(600)
				if p := k.Heap.Alloc(n); p != 0 {
					if k.Heap.BlockPayload(p) < n {
						t.Fatalf("payload %d < requested %d", k.Heap.BlockPayload(p), n)
					}
					live[p] = n
				}
			}
			if i%500 == 0 && !k.Heap.Walk() {
				t.Fatalf("heap corrupt at iteration %d", i)
			}
		}
		for p := range live {
			k.Heap.Free(p)
		}
		if !k.Heap.Walk() {
			t.Fatal("heap corrupt at end")
		}
	})
}

func TestHeapInvalidFreePanics(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		p := k.Heap.Alloc(64)
		k.Heap.Free(p)
		defer func() {
			r := recover()
			u, ok := r.(Unwind)
			if !ok || u.Fault.Kind != cpu.FaultPanic {
				t.Errorf("double free: %v", r)
			}
			panic(r) // let the harness swallow it
		}()
		k.Heap.Free(p) // double free must panic
	})
}

func TestQueueSemantics(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		obj, e := k.NewQueue("q", 8, 2)
		if e.Failed() {
			t.Fatalf("create: %v", e)
		}
		q := obj.Data.(*Queue)
		if e := q.Send([]byte("a"), 0); e.Failed() {
			t.Errorf("send1: %v", e)
		}
		if e := q.Send([]byte("b"), 0); e.Failed() {
			t.Errorf("send2: %v", e)
		}
		if e := q.Send([]byte("c"), 2); e != ErrFull {
			t.Errorf("send to full queue: %v", e)
		}
		item, e := q.Recv(0)
		if e.Failed() || item[0] != 'a' {
			t.Errorf("recv: %q %v", item, e)
		}
		q.Recv(0)
		if _, e := q.Recv(1); e != ErrEmpty {
			t.Errorf("recv empty: %v", e)
		}
		if e := q.Destroy(); e.Failed() {
			t.Errorf("destroy: %v", e)
		}
		if _, e := k.Objects.GetTyped(obj.ID, ObjQueue); e != ErrState {
			t.Errorf("dead queue resolve: %v", e)
		}
	})
}

func TestQueueCreateValidation(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		for _, tc := range [][2]int{{0, 4}, {4, 0}, {QueueItemMax + 1, 4}, {4, QueueDepthMax + 1}} {
			if _, e := k.NewQueue("bad", tc[0], tc[1]); e != ErrInval {
				t.Errorf("NewQueue(%d,%d): %v", tc[0], tc[1], e)
			}
		}
	})
}

func TestSemaphore(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		obj, e := k.NewSemaphore("s", 1, 2)
		if e.Failed() {
			t.Fatal(e)
		}
		s := obj.Data.(*Semaphore)
		if e := s.Take(0); e.Failed() {
			t.Errorf("take: %v", e)
		}
		if e := s.Take(3); e != ErrTimeout {
			t.Errorf("take empty: %v", e)
		}
		s.Give()
		s.Give()
		if e := s.Give(); e != ErrFull {
			t.Errorf("give past max: %v", e)
		}
		if _, e := k.NewSemaphore("bad", 3, 2); e != ErrInval {
			t.Errorf("initial > max: %v", e)
		}
	})
}

func TestMutexAndEvents(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		mo, _ := k.NewMutex("m", false)
		m := mo.Data.(*Mutex)
		if e := m.Unlock(); e != ErrPerm {
			t.Errorf("unlock unheld: %v", e)
		}
		if e := m.Lock(0); e.Failed() {
			t.Errorf("lock: %v", e)
		}
		if e := m.Lock(2); e != ErrTimeout {
			t.Errorf("relock non-recursive: %v", e)
		}
		m.Unlock()

		eo, _ := k.NewEvent("e")
		ev := eo.Data.(*Event)
		if e := ev.Send(0); e != ErrInval {
			t.Errorf("send zero bits: %v", e)
		}
		ev.Send(0b101)
		got, e := ev.Recv(0b100, EvtClear, 0)
		if e.Failed() || got != 0b100 {
			t.Errorf("recv: %b %v", got, e)
		}
		if ev.Bits != 0b001 {
			t.Errorf("clear failed: %b", ev.Bits)
		}
		if _, e := ev.Recv(0b110, EvtAll, 2); e != ErrTimeout {
			t.Errorf("wait all: %v", e)
		}
	})
}

func TestSchedulerTasks(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		k.InitSched("tick", "pick", "switch", "sched.c")
		if _, e := k.Sched.Create("t", -1, 256, 0); e != ErrInval {
			t.Errorf("bad prio: %v", e)
		}
		if _, e := k.Sched.Create("t", 5, 1, 0); e != ErrInval {
			t.Errorf("bad stack: %v", e)
		}
		o1, _ := k.Sched.Create("hi", 1, 512, 0)
		k.Sched.Create("lo", 20, 512, 1)
		k.TickN(20)
		hi := o1.Data.(*Task)
		if hi.RunCount == 0 {
			t.Error("high-priority task never ran")
		}
		if k.Sched.Current() == nil || k.Sched.Current().Prio != 1 {
			t.Errorf("current: %+v", k.Sched.Current())
		}
		hi.State = TaskSuspended
		k.TickN(5)
		if k.Sched.Current().Prio != 20 {
			t.Error("scheduler did not fall back to low-priority task")
		}
		if k.Sched.TaskCount() != 2 {
			t.Errorf("task count: %d", k.Sched.TaskCount())
		}
	})
}

func TestTimers(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		obj, e := k.NewTimer("t", 5, false, 0)
		if e.Failed() {
			t.Fatal(e)
		}
		tm := obj.Data.(*Timer)
		if e := tm.Stop(); e != ErrState {
			t.Errorf("stop disarmed: %v", e)
		}
		tm.Start()
		if e := tm.Start(); e != ErrBusy {
			t.Errorf("double start: %v", e)
		}
		k.TickN(12)
		if tm.Fires != 2 {
			t.Errorf("periodic fires: %d", tm.Fires)
		}
		tm.Stop()
		k.TickN(10)
		if tm.Fires != 2 {
			t.Error("fired while stopped")
		}
		if _, e := k.NewTimer("bad", 0, false, 0); e != ErrInval {
			t.Errorf("zero period: %v", e)
		}
	})
}

func TestPools(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		obj, e := k.NewPool("p", 32, 4, "p_alloc", "p_free", "pool.c")
		if e.Failed() {
			t.Fatal(e)
		}
		p := obj.Data.(*Pool)
		var blocks []uint64
		for i := 0; i < 4; i++ {
			b, e := p.Alloc(0)
			if e.Failed() {
				t.Fatalf("alloc %d: %v", i, e)
			}
			blocks = append(blocks, b)
		}
		if _, e := p.Alloc(2); e != ErrNoMem {
			t.Errorf("alloc from empty pool: %v", e)
		}
		if e := p.Free(blocks[0] + 1); e != ErrInval {
			t.Errorf("misaligned free: %v", e)
		}
		if e := p.Free(blocks[0]); e.Failed() {
			t.Errorf("free: %v", e)
		}
		if e := p.Free(blocks[0]); e != ErrState {
			t.Errorf("double free: %v", e)
		}
		if p.Available() != 1 {
			t.Errorf("available: %d", p.Available())
		}
	})
}

func TestDriverStateMachine(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		d := k.NewDriver("dma", "d_open", "d_ctl", "d_close", "drv.c")
		h, e := d.Open()
		if e.Failed() {
			t.Fatal(e)
		}
		// Order is enforced.
		if _, e := d.Ctl(h, DrvCmdArm, 0); e != ErrState {
			t.Errorf("arm before init: %v", e)
		}
		if _, e := d.Ctl(h, DrvCmdInit, 0); e.Failed() {
			t.Errorf("init: %v", e)
		}
		if _, e := d.Ctl(h, DrvCmdArm, 0); e != ErrInval {
			t.Errorf("arm without channels: %v", e)
		}
		d.Ctl(h, DrvCmdChannel, 0)
		d.Ctl(h, DrvCmdChannel, 1)
		if _, e := d.Ctl(h, DrvCmdArm, 0); e.Failed() {
			t.Errorf("arm: %v", e)
		}
		if _, e := d.Ctl(h, DrvCmdTrigger, 0); e.Failed() {
			t.Errorf("trigger: %v", e)
		}
		if _, e := d.Ctl(h, DrvCmdRun, 0); e != ErrState {
			t.Errorf("run before calibrate: %v", e)
		}
		d.Ctl(h, DrvCmdCalibrate, 3)
		v, e := d.Ctl(h, DrvCmdRun, 0)
		if e.Failed() || v != 3 {
			t.Errorf("run: %d %v", v, e)
		}
		// Reset rewinds the machine.
		d.Ctl(h, DrvCmdReset, 0)
		if _, e := d.Ctl(h, DrvCmdRun, 0); e != ErrState {
			t.Errorf("run after reset: %v", e)
		}
		if e := d.Close(h); e.Failed() {
			t.Errorf("close: %v", e)
		}
		if _, e := d.Ctl(h, DrvCmdInit, 42); e != ErrState {
			t.Errorf("ctl on closed session: %v", e)
		}
	})
}

func TestDriverNeedsPeripheral(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		k.Env.Spec.Peripherals = map[string]bool{}
		d := k.NewDriver("dma", "x_open", "x_ctl", "x_close", "drv.c")
		if _, e := d.Open(); e != ErrNoDev {
			t.Errorf("open without peripheral: %v", e)
		}
	})
}

func TestObjectsTable(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		o := k.Objects.New(ObjSem, "s", 42)
		if got := k.Objects.Get(o.ID); got != o {
			t.Error("Get")
		}
		if _, e := k.Objects.GetTyped(o.ID, ObjQueue); e != ErrType {
			t.Errorf("type confusion: %v", e)
		}
		if _, e := k.Objects.GetTyped(999999, ObjSem); e != ErrNotFound {
			t.Errorf("missing: %v", e)
		}
		if e := k.Objects.Delete(o.ID); e.Failed() {
			t.Errorf("delete: %v", e)
		}
		if e := k.Objects.Delete(o.ID); e != ErrState {
			t.Errorf("double delete: %v", e)
		}
		if _, e := k.Objects.GetTyped(o.ID, ObjSem); e != ErrState {
			t.Errorf("dead resolve: %v", e)
		}
	})
}

func TestKprintfReachesUART(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		k.Kprintf("boot value %d\n", 7)
		lines := k.Env.UART.Drain()
		if len(lines) != 1 || lines[0].Text != "boot value 7" {
			t.Errorf("uart: %+v", lines)
		}
	})
}

func TestPanicFaultWritesFSBAndBanner(t *testing.T) {
	testKernel(t, func(k *Kernel) {
		f := k.Fn("victim_fn", "src/victim.c", 10, 3)
		defer func() {
			r := recover()
			u, ok := r.(Unwind)
			if !ok {
				t.Errorf("unwind: %v", r)
				panic(r)
			}
			if u.Fault.Kind != cpu.FaultUsage || len(u.Fault.Frames) == 0 ||
				u.Fault.Frames[0].Func != "victim_fn" {
				t.Errorf("fault: %+v", u.Fault)
			}
			found := false
			for _, l := range k.Env.UART.Drain() {
				if l.Text == "*** UsageFault: boom" {
					found = true
				}
			}
			if !found {
				t.Error("banner missing")
			}
			panic(r)
		}()
		f.Enter()
		k.PanicFault(cpu.FaultUsage, "boom")
	})
}

func TestErrnoStrings(t *testing.T) {
	f := func(v int16) bool {
		return Errno(v).String() != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if OK.Failed() || !ErrInval.Failed() {
		t.Fatal("Failed() wrong")
	}
}
