package rtos

// Periph is a simple peripheral driver (GPIO bank, ADC, CAN controller,
// radio...): a configure/read pair whose code paths depend on the
// accumulated configuration and usage counters. Like every real peripheral
// driver, it exists only when the board has the hardware block — on emulated
// boards the entire cluster is unreachable, which is the reachability gap
// between on-hardware fuzzing and emulator-bound tools (§2.2 of the paper).
type Periph struct {
	k      *Kernel
	periph string
	fnCfg  *Fn
	fnRead *Fn

	cfg     uint32
	enabled bool
	reads   int
	errs    int
}

// NewPeriph registers a peripheral driver under the personality's symbols.
func (k *Kernel) NewPeriph(periph, cfgName, readName, file string) *Periph {
	return &Periph{
		k:      k,
		periph: periph,
		fnCfg:  k.Fn(cfgName, file, 40, 14),
		fnRead: k.Fn(readName, file, 140, 18),
	}
}

// Peripheral configuration mode bits.
const (
	PeriphEnable   = 1 << 0
	PeriphIRQ      = 1 << 1
	PeriphDMA      = 1 << 2
	PeriphLowPower = 1 << 3
)

// Config programs the peripheral's mode register.
func (p *Periph) Config(cfg uint32) Errno {
	f := p.fnCfg
	f.Enter()
	defer f.Exit()
	if !p.k.Env.Spec.HasPeripheral(p.periph) {
		f.B(1)
		return ErrNoDev
	}
	if cfg&^uint32(PeriphEnable|PeriphIRQ|PeriphDMA|PeriphLowPower|0xFF00) != 0 {
		f.B(2)
		return ErrInval
	}
	f.B(3)
	if cfg&PeriphEnable != 0 {
		f.B(4)
		p.enabled = true
	} else {
		f.B(5)
		p.enabled = false
	}
	if cfg&PeriphIRQ != 0 {
		f.B(6)
	}
	if cfg&PeriphDMA != 0 {
		f.B(7)
		if cfg&PeriphLowPower != 0 {
			f.B(8) // DMA in low-power mode needs the retention domain
		}
	}
	if cfg&PeriphLowPower != 0 {
		f.B(9)
	}
	// The prescaler byte selects one of four clock trees.
	f.B(10 + int((cfg>>8)&3))
	p.cfg = cfg
	return OK
}

// Read samples a channel; paths depend on channel, configuration and the
// driver's usage history.
func (p *Periph) Read(channel uint32) (uint64, Errno) {
	f := p.fnRead
	f.Enter()
	defer f.Exit()
	if !p.k.Env.Spec.HasPeripheral(p.periph) {
		f.B(1)
		return 0, ErrNoDev
	}
	if !p.enabled {
		f.B(2)
		return 0, ErrState
	}
	if channel > 15 {
		f.B(3)
		p.errs++
		if p.errs > 8 {
			f.B(4) // error latch saturates
		}
		return 0, ErrInval
	}
	p.reads++
	f.B(5 + int(channel&7))
	if p.cfg&PeriphDMA != 0 {
		f.B(13)
	}
	if p.cfg&PeriphIRQ != 0 && p.reads%4 == 0 {
		f.B(14) // deferred IRQ acknowledgement path
	}
	switch {
	case p.reads == 1:
		f.B(15)
	case p.reads <= 8:
		f.B(16)
	default:
		f.B(17)
	}
	sample := p.k.Rand() & 0xFFF
	return sample | uint64(channel)<<16, OK
}
