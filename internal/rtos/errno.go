package rtos

import "fmt"

// Errno is the generic kernel error code. Each OS personality maps these to
// its own convention at the API boundary (FreeRTOS pdFAIL, Zephyr -errno,
// NuttX POSIX errno, RT-Thread RT_Exxx), but the framework keeps one set so
// subsystems compose.
type Errno int32

// Generic error codes (negative, POSIX-flavoured where a natural mapping
// exists).
const (
	OK          Errno = 0
	ErrPerm     Errno = -1
	ErrNotFound Errno = -2
	ErrNoMem    Errno = -12
	ErrBusy     Errno = -16
	ErrExist    Errno = -17
	ErrNoDev    Errno = -19
	ErrInval    Errno = -22
	ErrRange    Errno = -34
	ErrNoSys    Errno = -38
	ErrFull     Errno = -105
	ErrEmpty    Errno = -106
	ErrTimeout  Errno = -110
	ErrState    Errno = -117
	ErrType     Errno = -120
)

func (e Errno) Error() string { return e.String() }

// Failed reports whether e indicates an error.
func (e Errno) Failed() bool { return e != OK }

func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case ErrPerm:
		return "EPERM"
	case ErrNotFound:
		return "ENOENT"
	case ErrNoMem:
		return "ENOMEM"
	case ErrBusy:
		return "EBUSY"
	case ErrExist:
		return "EEXIST"
	case ErrNoDev:
		return "ENODEV"
	case ErrInval:
		return "EINVAL"
	case ErrRange:
		return "ERANGE"
	case ErrNoSys:
		return "ENOSYS"
	case ErrFull:
		return "EFULL"
	case ErrEmpty:
		return "EEMPTY"
	case ErrTimeout:
		return "ETIMEDOUT"
	case ErrState:
		return "ESTATE"
	case ErrType:
		return "ETYPE"
	default:
		return fmt.Sprintf("Errno(%d)", int32(e))
	}
}
