package rtos

import "github.com/eof-fuzz/eof/internal/cpu"

// Driver models a peripheral driver with session-scoped, stage-gated state —
// the open/ioctl/close shape of real embedded drivers where each
// configuration stage unlocks further code (init → channel setup → arm →
// trigger → calibrate → run). Reaching the deep stages requires a correctly
// ordered, correctly parameterised call chain against one session handle,
// which is exactly the structure coverage-guided fuzzing climbs stage by
// stage while unguided generation must get right in a single throw.
//
// The driver requires a hardware peripheral block; on emulated boards
// (QEMU-style) Open fails with ENODEV, so this entire code region is
// unreachable for emulation-bound tools.
type Driver struct {
	k          *Kernel
	peripheral string
	fnOpen     *Fn
	fnCtl      *Fn
	fnClose    *Fn
	sessions   int
}

// Session stages.
const (
	stageClosed = iota
	stageInit
	stageArmed
	stageCalibrated
)

// Driver control commands.
const (
	DrvCmdReset     = 0
	DrvCmdInit      = 1
	DrvCmdChannel   = 2
	DrvCmdArm       = 3
	DrvCmdTrigger   = 4
	DrvCmdCalibrate = 5
	DrvCmdRun       = 6
)

// DrvSession is one open driver session.
type DrvSession struct {
	Obj      *Object
	stage    int
	channels uint32
	calib    uint32
	runs     int
	ops      int
}

// NewDriver registers a stage-gated driver under the personality's symbol
// names. peripheral names the hardware block it needs.
func (k *Kernel) NewDriver(peripheral, openName, ctlName, closeName, file string) *Driver {
	return &Driver{
		k:          k,
		peripheral: peripheral,
		fnOpen:     k.Fn(openName, file, 30, 6),
		fnCtl:      k.Fn(ctlName, file, 90, 64),
		fnClose:    k.Fn(closeName, file, 420, 4),
	}
}

// Open creates a session. Fails with ENODEV when the board lacks the
// peripheral, and with EBUSY past the controller's 8 session slots.
func (d *Driver) Open() (uint32, Errno) {
	f := d.fnOpen
	f.Enter()
	defer f.Exit()
	if !d.k.Env.Spec.HasPeripheral(d.peripheral) {
		f.B(1)
		return 0, ErrNoDev
	}
	f.B(2)
	if d.sessions >= 8 {
		f.B(3)
		return 0, ErrBusy
	}
	f.B(4)
	s := &DrvSession{stage: stageClosed}
	s.Obj = d.k.Objects.New(ObjHeapRef, "drvsess", s)
	d.sessions++
	f.B(5)
	return s.Obj.ID, OK
}

// Close releases a session.
func (d *Driver) Close(handle uint32) Errno {
	f := d.fnClose
	f.Enter()
	defer f.Exit()
	s, e := d.session(handle)
	if e.Failed() {
		f.B(1)
		return e
	}
	f.B(2)
	if s.stage >= stageArmed {
		f.B(3) // quiesce path
	}
	d.sessions--
	return d.k.Objects.Delete(handle)
}

func (d *Driver) session(handle uint32) (*DrvSession, Errno) {
	o, e := d.k.Objects.GetTyped(handle, ObjHeapRef)
	if e.Failed() {
		return nil, e
	}
	s, ok := o.Data.(*DrvSession)
	if !ok {
		return nil, ErrType
	}
	return s, OK
}

// Ctl drives the session state machine. Progress is ordered (init →
// channels → arm → calibrate → run) and the code reached depends on the
// whole configuration accumulated on this session — sub-mode, channel
// combination, calibration word, run and op counts — so long, coherent
// command chains against one handle reach combinations short random
// sequences never assemble.
func (d *Driver) Ctl(handle uint32, cmd, arg uint32) (uint64, Errno) {
	f := d.fnCtl
	f.Enter()
	defer f.Exit()
	s, e := d.session(handle)
	if e.Failed() {
		f.B(1)
		return 0, e
	}
	s.ops++
	defer f.B(56 + opsClass(s.ops))
	switch cmd {
	case DrvCmdReset:
		f.B(2)
		s.stage, s.channels, s.calib, s.runs = stageClosed, 0, 0, 0
		return 0, OK

	case DrvCmdInit:
		if s.stage != stageClosed {
			f.B(3)
			return 0, ErrState
		}
		s.stage = stageInit
		f.B(4 + int(arg&3)) // clock sub-mode
		return 1, OK

	case DrvCmdChannel:
		if s.stage < stageInit {
			f.B(3)
			return 0, ErrState
		}
		ch := arg & 3
		s.channels |= 1 << ch
		f.B(8 + int(ch))
		f.B(12 + popcount4(s.channels))
		return uint64(s.channels), OK

	case DrvCmdArm:
		if s.stage != stageInit {
			f.B(3)
			return 0, ErrState
		}
		if s.channels == 0 {
			f.B(1)
			return 0, ErrInval
		}
		s.stage = stageArmed
		f.B(17 + popcount4(s.channels))
		return uint64(popcount4(s.channels)), OK

	case DrvCmdTrigger:
		if s.stage < stageArmed {
			f.B(3)
			return 0, ErrState
		}
		f.B(22 + int(s.channels&0xF)) // 16 combination paths
		return uint64(s.channels), OK

	case DrvCmdCalibrate:
		if s.stage != stageArmed {
			f.B(3)
			return 0, ErrState
		}
		s.calib = arg & 15
		s.stage = stageCalibrated
		f.B(38 + int(s.calib&7))
		return uint64(s.calib), OK

	case DrvCmdRun:
		if s.stage != stageCalibrated {
			f.B(3)
			return 0, ErrState
		}
		s.runs++
		f.B(46 + int(s.calib&7))
		f.B(54 + min2(s.runs-1, 1))
		// Deep liveness defect: after a long command chain the descriptor
		// ring wraps into the controller's shadow registers. Only sustained,
		// correctly staged sessions get here.
		if s.ops >= 20 && s.runs >= 6 && s.calib == 7 {
			d.k.PanicFault(cpu.FaultMemManage, "drv: descriptor ring wrapped into shadow registers")
		}
		return uint64(s.calib) * uint64(s.runs), OK

	default:
		f.B(2)
		return 0, ErrNoSys
	}
}

// opsClass buckets a session's total command count (0..7).
func opsClass(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 2:
		return 1
	case n <= 3:
		return 2
	case n <= 4:
		return 3
	case n <= 6:
		return 4
	case n <= 9:
		return 5
	case n <= 14:
		return 6
	default:
		return 7
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func popcount4(v uint32) int {
	n := 0
	for b := v & 0xF; b != 0; b &= b - 1 {
		n++
	}
	return n
}
