package rtos

// Memory-pool parameter bounds.
const (
	PoolBlockMax = 4096
	PoolCountMax = 512
)

// Pool is a fixed-block memory pool backed by one heap allocation, the
// rt_mp/k_mem_slab style allocator for deterministic latency.
type Pool struct {
	Obj       *Object
	BlockSize int
	Count     int
	base      uint64
	freeList  []int // free block indices, LIFO
	allocated map[int]bool
	k         *Kernel
	fnAlloc   *Fn
	fnFree    *Fn
}

// NewPool validates parameters, carves the backing storage from the heap and
// registers the personality's symbols for the pool ops.
func (k *Kernel) NewPool(name string, blockSize, count int, allocName, freeName, file string) (*Object, Errno) {
	if blockSize <= 0 || blockSize > PoolBlockMax || count <= 0 || count > PoolCountMax {
		return nil, ErrInval
	}
	base := k.Heap.Alloc(blockSize * count)
	if base == 0 {
		return nil, ErrNoMem
	}
	p := &Pool{
		BlockSize: blockSize,
		Count:     count,
		base:      base,
		allocated: make(map[int]bool),
		k:         k,
	}
	if f := k.Env.Syms.Lookup(allocName); f == nil {
		p.fnAlloc = k.Fn(allocName, file, 90, 8)
		p.fnFree = k.Fn(freeName, file, 170, 5)
	} else {
		// Symbols exist from an earlier pool of this personality; reuse.
		p.fnAlloc = &Fn{k: k, SF: f}
		p.fnFree = &Fn{k: k, SF: k.Env.Syms.Lookup(freeName)}
	}
	for i := count - 1; i >= 0; i-- {
		p.freeList = append(p.freeList, i)
	}
	p.Obj = k.Objects.New(ObjPool, name, p)
	return p.Obj, OK
}

// Alloc takes one block, waiting up to timeout ticks when exhausted.
func (p *Pool) Alloc(timeout int) (uint64, Errno) {
	f := p.fnAlloc
	f.Enter()
	defer f.Exit()
	if !p.k.waitUntil(timeout, func() bool { return len(p.freeList) > 0 }) {
		f.B(1)
		return 0, ErrNoMem
	}
	f.B(2)
	idx := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	p.allocated[idx] = true
	f.B(3)
	return p.base + uint64(idx*p.BlockSize), OK
}

// Free returns a block to the pool; a foreign or double-freed address is an
// error.
func (p *Pool) Free(addr uint64) Errno {
	f := p.fnFree
	f.Enter()
	defer f.Exit()
	off := int64(addr) - int64(p.base)
	if off < 0 || off%int64(p.BlockSize) != 0 || off >= int64(p.BlockSize*p.Count) {
		f.B(1)
		return ErrInval
	}
	idx := int(off) / p.BlockSize
	if !p.allocated[idx] {
		f.B(2)
		return ErrState
	}
	f.B(3)
	delete(p.allocated, idx)
	p.freeList = append(p.freeList, idx)
	return OK
}

// Available returns the number of free blocks.
func (p *Pool) Available() int { return len(p.freeList) }
