package rtos

import (
	"encoding/binary"

	"github.com/eof-fuzz/eof/internal/cpu"
)

// Heap is a first-fit free-list allocator whose metadata lives inside the
// target RAM slab, boundary-tag style. Because headers are real bytes in the
// mapped region, a buggy kernel write can corrupt them and the corruption is
// then *discovered* later by magic validation — the classic embedded heap
// failure mode several Table-2 bugs exercise.
//
// Block layout (16-byte header, 8-byte aligned sizes):
//
//	+0  u32 size      — total block size including header
//	+4  u32 prevSize  — size of the physically previous block (0 for first)
//	+8  u16 magic     — 0x6EAB allocated / 0xFEEB free
//	+10 u16 flags     — bit0 free
//	+12 u32 nameTag   — short owner tag (rt_smem_setname writes here)
type Heap struct {
	k    *Kernel
	slab []byte
	base uint64 // target address of slab[0]

	// Instrumented functions, named by the personality (pvPortMalloc,
	// rt_smem_alloc, k_heap_alloc, ...).
	fnAlloc *Fn
	fnFree  *Fn
	fnLock  *Fn // heap lock; one personality's bug lives here

	// lockDepth models a non-recursive heap lock; re-entry hangs.
	lockDepth int
	// lockBroken is set by the _heap_lock bug so the *next* operation
	// deadlocks, mirroring a lock left held on an error path.
	lockBroken bool

	allocs int
	frees  int
}

const (
	heapHeader   = 16
	heapMinBlock = heapHeader + 8
	magicAlloc   = 0x6EAB
	magicFree    = 0xFEEB
)

// NewHeap carves a heap out of target RAM at [addr, addr+size) and registers
// the personality's allocator symbols.
func (k *Kernel) NewHeap(addr uint64, size int, allocName, freeName, lockName, file string) *Heap {
	if addr < k.Env.RAM.Base || addr+uint64(size) > k.Env.RAM.End() {
		panic("rtos: heap outside RAM")
	}
	off := addr - k.Env.RAM.Base
	// The allocator mutates the slab directly, bypassing the memory map's
	// dirty tracking: pin its pages so delta restores always re-ship it.
	k.Env.RAM.PinDirty(off, size)
	h := &Heap{
		k:       k,
		slab:    k.Env.RAM.Bytes()[off : off+uint64(size)],
		base:    addr,
		fnAlloc: k.Fn(allocName, file, 120, 20),
		fnFree:  k.Fn(freeName, file, 260, 10),
		fnLock:  k.Fn(lockName, file, 48, 4),
	}
	// One initial free block spanning the slab.
	h.writeHeader(0, uint32(len(h.slab)), 0, true)
	k.Heap = h
	return h
}

func (h *Heap) writeHeader(off int, size, prevSize uint32, free bool) {
	binary.LittleEndian.PutUint32(h.slab[off:], size)
	binary.LittleEndian.PutUint32(h.slab[off+4:], prevSize)
	m := uint16(magicAlloc)
	var fl uint16
	if free {
		m = magicFree
		fl = 1
	}
	binary.LittleEndian.PutUint16(h.slab[off+8:], m)
	binary.LittleEndian.PutUint16(h.slab[off+10:], fl)
}

func (h *Heap) header(off int) (size, prevSize uint32, free bool, ok bool) {
	if off < 0 || off+heapHeader > len(h.slab) {
		return 0, 0, false, false
	}
	size = binary.LittleEndian.Uint32(h.slab[off:])
	prevSize = binary.LittleEndian.Uint32(h.slab[off+4:])
	m := binary.LittleEndian.Uint16(h.slab[off+8:])
	fl := binary.LittleEndian.Uint16(h.slab[off+10:])
	free = fl&1 != 0
	ok = (free && m == magicFree) || (!free && m == magicAlloc)
	if size < heapHeader || off+int(size) > len(h.slab) {
		ok = false
	}
	return size, prevSize, free, ok
}

// lock acquires the (non-recursive) heap lock, hanging on re-entry or when a
// prior bug left it held.
func (h *Heap) lock() {
	h.fnLock.Enter()
	defer h.fnLock.Exit()
	if h.lockBroken || h.lockDepth > 0 {
		h.fnLock.B(2)
		h.k.HangForever("heap lock deadlock")
	}
	h.fnLock.B(1)
	h.lockDepth++
}

func (h *Heap) unlock() {
	if h.lockDepth > 0 {
		h.lockDepth--
	}
}

// BreakLock leaves the heap lock held (used by the personality bug that
// models a lock leak on an error path); every subsequent heap op deadlocks.
func (h *Heap) BreakLock() { h.lockBroken = true }

// PanicInLock raises a fault attributed to the heap-lock function —
// personalities use it for lock-balance bugs whose crash site is the lock
// primitive itself.
func (h *Heap) PanicInLock(kind cpu.FaultKind, msg string) {
	h.fnLock.Enter()
	h.fnLock.B(3)
	h.k.PanicFault(kind, msg)
}

// Alloc carves n payload bytes from the heap, returning the target address
// or 0 when exhausted. Heap-metadata corruption is detected here and raises
// a kernel panic, attributing the crash to the allocator as real RTOSes do.
func (h *Heap) Alloc(n int) uint64 {
	f := h.fnAlloc
	f.Enter()
	defer f.Exit()
	h.lock()
	defer h.unlock()

	if n <= 0 || n > len(h.slab) {
		f.B(1)
		return 0
	}
	need := (n + 7) &^ 7
	total := uint32(need + heapHeader)
	f.B(2)

	off := 0
	for off < len(h.slab) {
		size, prev, free, ok := h.header(off)
		if !ok {
			f.B(3)
			h.k.PanicFault(cpu.FaultPanic, "heap: corrupted block header")
		}
		if free && size >= total {
			f.B(4)
			// Split when the remainder can hold a block.
			if size-total >= heapMinBlock {
				f.B(5)
				h.writeHeader(off, total, prev, false)
				h.writeHeader(off+int(total), size-total, total, true)
				if next := off + int(size); next+heapHeader <= len(h.slab) {
					binary.LittleEndian.PutUint32(h.slab[next+4:], size-total)
				}
			} else {
				f.B(6)
				h.writeHeader(off, size, prev, false)
			}
			h.allocs++
			// Size-class paths: small/medium/large allocations take distinct
			// branches in real allocators (bins, alignment, large-block path).
			f.B(9 + sizeClass(n))
			f.B(7)
			return h.base + uint64(off) + heapHeader
		}
		off += int(size)
	}
	f.B(8)
	return 0
}

// sizeClass buckets an allocation size (0..5).
func sizeClass(n int) int {
	switch {
	case n <= 16:
		return 0
	case n <= 64:
		return 1
	case n <= 256:
		return 2
	case n <= 1024:
		return 3
	case n <= 8192:
		return 4
	default:
		return 5
	}
}

// Free releases an allocation by target address. Freeing garbage addresses
// or double-freeing is detected by magic validation and panics.
func (h *Heap) Free(addr uint64) Errno {
	f := h.fnFree
	f.Enter()
	defer f.Exit()
	h.lock()
	defer h.unlock()

	if addr < h.base+heapHeader || addr >= h.base+uint64(len(h.slab)) {
		f.B(1)
		return ErrInval
	}
	off := int(addr-h.base) - heapHeader
	size, prev, free, ok := h.header(off)
	if !ok || free {
		f.B(2)
		h.k.PanicFault(cpu.FaultPanic, "heap: invalid free")
	}
	f.B(3)
	h.writeHeader(off, size, prev, true)
	h.frees++

	// Coalesce with the next block.
	if next := off + int(size); next+heapHeader <= len(h.slab) {
		nsize, _, nfree, nok := h.header(next)
		if nok && nfree {
			f.B(4)
			size += nsize
			h.writeHeader(off, size, prev, true)
		}
	}
	// Coalesce with the previous block.
	if prev != 0 {
		pOff := off - int(prev)
		psize, pprev, pfree, pok := h.header(pOff)
		if pok && pfree && int(psize) == int(prev) {
			f.B(5)
			h.writeHeader(pOff, psize+size, pprev, true)
			off = pOff
			size += psize
		}
	}
	// Fix the following block's prevSize.
	if next := off + int(size); next+heapHeader <= len(h.slab) {
		binary.LittleEndian.PutUint32(h.slab[next+4:], size)
	}
	f.B(6)
	return OK
}

// BlockPayload returns the payload capacity of the allocation at addr, or -1
// if addr is not a live allocation.
func (h *Heap) BlockPayload(addr uint64) int {
	off := int(addr-h.base) - heapHeader
	size, _, free, ok := h.header(off)
	if !ok || free {
		return -1
	}
	return int(size) - heapHeader
}

// SetNameTag writes a 4-byte owner tag into the block header at addr.
func (h *Heap) SetNameTag(addr uint64, tag uint32) bool {
	off := int(addr-h.base) - heapHeader
	if _, _, free, ok := h.header(off); !ok || free {
		return false
	}
	binary.LittleEndian.PutUint32(h.slab[off+12:], tag)
	return true
}

// CorruptAfter overwrites len bytes beyond the payload end of the block at
// addr — the raw overflow primitive personality bugs use.
func (h *Heap) CorruptAfter(addr uint64, n int, pattern byte) {
	off := int(addr-h.base) - heapHeader
	size, _, _, ok := h.header(off)
	if !ok {
		return
	}
	end := off + int(size)
	for i := 0; i < n && end+i < len(h.slab); i++ {
		h.slab[end+i] = pattern
	}
}

// Stats returns allocation counters and free-space accounting.
func (h *Heap) Stats() (allocs, frees, freeBytes int) {
	off := 0
	for off < len(h.slab) {
		size, _, free, ok := h.header(off)
		if !ok {
			break
		}
		if free {
			freeBytes += int(size) - heapHeader
		}
		off += int(size)
	}
	return h.allocs, h.frees, freeBytes
}

// Walk validates the whole heap, returning false at the first corrupt
// header (sys_heap_stress-style validation passes use it).
func (h *Heap) Walk() bool {
	off := 0
	for off < len(h.slab) {
		size, _, _, ok := h.header(off)
		if !ok {
			return false
		}
		off += int(size)
	}
	return true
}
