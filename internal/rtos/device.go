package rtos

// Device open flags (stream translation of '\n' is the flag the case-study
// bug's code path reads).
const (
	DevFlagRead   = 1 << 0
	DevFlagWrite  = 1 << 1
	DevFlagStream = 1 << 2
)

// DeviceOps is the driver interface registered with the device layer.
type DeviceOps interface {
	Open(k *Kernel, flags uint32) Errno
	Close(k *Kernel) Errno
	Write(k *Kernel, data []byte) (int, Errno)
	Read(k *Kernel, n int) ([]byte, Errno)
	Control(k *Kernel, cmd, arg uint64) Errno
}

// Device is one registered device. Stale marks a device that was
// unregistered while something (e.g. the console) still holds a pointer to
// it — dereferencing its ops afterwards is the dangling-device failure mode
// of the paper's case study.
type Device struct {
	Obj        *Object
	Name       string
	OpenFlag   uint32
	OpenCount  int
	Registered bool
	Stale      bool
	Ops        DeviceOps
}

// Devices is the kernel device registry.
type Devices struct {
	k      *Kernel
	byName map[string]*Device
	fnFind *Fn
	fnOpen *Fn
}

func newDevices(k *Kernel) *Devices {
	d := &Devices{k: k, byName: make(map[string]*Device)}
	d.fnFind = k.Fn("__device_find", "kern/device.c", 24, 4)
	d.fnOpen = k.Fn("__device_open", "kern/device.c", 70, 6)
	return d
}

// Register adds a device under name.
func (d *Devices) Register(name string, ops DeviceOps, flags uint32) (*Device, Errno) {
	if name == "" || ops == nil {
		return nil, ErrInval
	}
	if _, dup := d.byName[name]; dup {
		return nil, ErrExist
	}
	dev := &Device{Name: name, OpenFlag: flags, Registered: true, Ops: ops}
	dev.Obj = d.k.Objects.New(ObjDevice, name, dev)
	d.byName[name] = dev
	return dev, OK
}

// Unregister removes a device from the registry. The Device struct survives
// (anything caching it now holds a stale pointer).
func (d *Devices) Unregister(name string) Errno {
	dev := d.byName[name]
	if dev == nil {
		return ErrNotFound
	}
	delete(d.byName, name)
	dev.Registered = false
	dev.Stale = true
	d.k.Objects.Delete(dev.Obj.ID)
	return OK
}

// Find looks a device up by name.
func (d *Devices) Find(name string) *Device {
	f := d.fnFind
	f.Enter()
	defer f.Exit()
	dev := d.byName[name]
	if dev == nil {
		f.B(1)
		return nil
	}
	f.B(2)
	return dev
}

// Open opens a device, tracking the open count.
func (d *Devices) Open(dev *Device, flags uint32) Errno {
	f := d.fnOpen
	f.Enter()
	defer f.Exit()
	if dev == nil || !dev.Registered {
		f.B(1)
		return ErrNoDev
	}
	if e := dev.Ops.Open(d.k, flags); e.Failed() {
		f.B(2)
		return e
	}
	f.B(3)
	dev.OpenFlag |= flags
	dev.OpenCount++
	return OK
}

// Close closes a device.
func (d *Devices) Close(dev *Device) Errno {
	f := d.fnOpen
	f.Enter()
	defer f.Exit()
	if dev == nil || dev.OpenCount == 0 {
		f.B(4)
		return ErrState
	}
	f.B(5)
	dev.OpenCount--
	return dev.Ops.Close(d.k)
}

// Names returns registered device names (sorted order not guaranteed).
func (d *Devices) Names() []string {
	out := make([]string, 0, len(d.byName))
	for n := range d.byName {
		out = append(out, n)
	}
	return out
}
