package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the embedded telemetry endpoint behind `-metrics-addr`: it
// exposes the registry in Prometheus text format at /metrics, the live
// status document at /status, and net/http/pprof at /debug/pprof/ so the
// fleet scheduler and link stack can be profiled host-side while a campaign
// runs. It owns its listener; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry server on addr (":0" picks a free port — use
// Addr to discover it). status may be nil, in which case /status serves 404.
func Serve(addr string, reg *Registry, status func() StatusDoc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		if status == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status())
	})
	// net/http/pprof registers on http.DefaultServeMux; mount its handlers
	// explicitly so the campaign mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
