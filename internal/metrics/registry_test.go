package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

// TestRegistryConcurrentWriters hammers every handle type from many
// goroutines — the fleet's shards all emit into one registry, so the CAS
// paths must hold up under -race and lose no increments.
func TestRegistryConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "c")
	g := reg.NewGauge("g", "g")
	h := reg.NewHistogram("h_seconds", "h", []float64{0.1, 1, 10})
	cv := reg.NewCounterVec("cv_total", "cv", "reason")
	gv := reg.NewGaugeVec("gv", "gv", "tier")

	const workers = 8
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := []string{"crash", "timeout", "pc-stall"}[w%3]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%20) / 2)
				cv.With(label).Inc()
				gv.With("hw").Set(float64(i))
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost increments: %v, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge lost adds: %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram lost observations: %d, want %d", got, workers*per)
	}
	sum := 0.0
	for _, label := range []string{"crash", "timeout", "pc-stall"} {
		sum += cv.With(label).Value()
	}
	if sum != workers*per {
		t.Fatalf("counter-vec series sum to %v, want %d", sum, workers*per)
	}
}

// TestSinkConcurrentShards drives the trace-sink folding from concurrent
// emitters, as a tiered fleet does.
func TestSinkConcurrentShards(t *testing.T) {
	reg := NewRegistry()
	s := NewSink(reg, 4)
	const shards = 6
	const execs = 2000
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		sh := sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < execs; i++ {
				s.Emit(trace.Event{Kind: trace.ExecBegin, Shard: sh, Exec: i})
				s.Emit(trace.Event{Kind: trace.ExecEnd, Shard: sh, Exec: i, At: time.Duration(i) * time.Millisecond})
				if i%100 == 0 {
					s.Emit(trace.Event{Kind: trace.RestoreBegin, Shard: sh, Reason: "crash"})
					s.Emit(trace.Event{Kind: trace.RestoreEnd, Shard: sh, Reason: "crash", Dur: 50 * time.Millisecond})
				}
			}
		}()
	}
	wg.Wait()

	if got := s.execs.Value(); got != shards*execs {
		t.Fatalf("execs folded to %v, want %d", got, shards*execs)
	}
	hw := s.execsTier.With("hw").Value()
	em := s.execsTier.With("emul").Value()
	if hw != 4*execs || em != 2*execs {
		t.Fatalf("tier split hw=%v emul=%v, want %d/%d", hw, em, 4*execs, 2*execs)
	}
	doc := s.Status()
	if doc.Execs != shards*execs || len(doc.Shards) != shards {
		t.Fatalf("status doc: %+v", doc)
	}
	if doc.Tiers["hw"].Shards != 4 || doc.Tiers["emul"].Shards != 2 {
		t.Fatalf("status tiers: %+v", doc.Tiers)
	}
}

// TestConfirmQueueDepth checks the enqueue/verdict bookkeeping, including
// the hw-only-crash verdicts that must not retire queue entries.
func TestConfirmQueueDepth(t *testing.T) {
	reg := NewRegistry()
	s := NewSink(reg, 2)
	for i := 0; i < 5; i++ {
		s.Emit(trace.Event{Kind: trace.ConfirmEnqueue, Shard: 2, Edges: 3})
	}
	if got := s.confirmQ.Value(); got != 5 {
		t.Fatalf("depth after 5 enqueues: %v", got)
	}
	s.Emit(trace.Event{Kind: trace.TierConfirm, Shard: 0, Exec: 2, Reason: "cov", Edges: 3})
	s.Emit(trace.Event{Kind: trace.TierDiverge, Shard: 0, Exec: 2, Reason: "hw-only-crash:k#1"})
	s.Emit(trace.Event{Kind: trace.TierDiverge, Shard: 0, Exec: 2, Reason: "emul-only-cov", Edges: 1})
	if got := s.confirmQ.Value(); got != 3 {
		t.Fatalf("depth after cov-confirm + hw-only-crash + cov-diverge: %v, want 3", got)
	}
	if got := s.diverges.With("hw-only-crash").Value(); got != 1 {
		t.Fatalf("hw-only-crash divergences: %v", got)
	}
}

// TestWriteTextDeterministic asserts two identical registries render
// identical exposition text (sorted families and series).
func TestWriteTextDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		s := NewSink(reg, 1)
		for _, ev := range []trace.Event{
			{Kind: trace.ExecEnd, Shard: 0, At: time.Second},
			{Kind: trace.ExecEnd, Shard: 1, At: 2 * time.Second},
			{Kind: trace.RestoreBegin, Shard: 0, Reason: "timeout"},
			{Kind: trace.RestoreEnd, Shard: 0, Reason: "timeout", Dur: 600 * time.Millisecond},
			{Kind: trace.RestoreBegin, Shard: 1, Reason: "crash"},
			{Kind: trace.DeltaRestore, Shard: 1, Reason: "crash", Edges: 2048},
			{Kind: trace.RestoreEnd, Shard: 1, Reason: "crash", Dur: 46 * time.Millisecond},
			{Kind: trace.CovGain, Shard: 0, Edges: 7},
			{Kind: trace.Bug, Shard: 1, Reason: "sig"},
		} {
			s.Emit(ev)
		}
		return reg
	}
	var a, b strings.Builder
	if err := build().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}
