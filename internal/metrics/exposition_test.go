package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the exposition golden file")

// TestExpositionGolden pins the /metrics text format — family ordering,
// HELP/TYPE lines, label quoting, histogram buckets — against a golden file.
// Run with -update after intentionally changing the exposition.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	s := NewSink(reg, 3)
	for _, ev := range []trace.Event{
		{Kind: trace.ExecEnd, Shard: 0, Exec: 1, At: 250 * time.Millisecond},
		{Kind: trace.CovGain, Shard: 0, Edges: 12, At: 250 * time.Millisecond},
		{Kind: trace.CorpusAdd, Shard: 0, Edges: 12, At: 250 * time.Millisecond},
		{Kind: trace.ExecEnd, Shard: 3, Exec: 1, At: 300 * time.Millisecond},
		{Kind: trace.ConfirmEnqueue, Shard: 3, Edges: 4, At: 310 * time.Millisecond},
		{Kind: trace.RestoreBegin, Shard: 0, Reason: "crash", At: 400 * time.Millisecond},
		{Kind: trace.Reflash, Shard: 0, At: time.Second},
		{Kind: trace.RestoreEnd, Shard: 0, Reason: "crash", Dur: 2 * time.Second, At: 2400 * time.Millisecond},
		{Kind: trace.RestoreBegin, Shard: 0, Reason: "timeout", At: 3 * time.Second},
		{Kind: trace.DeltaRestore, Shard: 0, Reason: "timeout", Edges: 4096, At: 3 * time.Second},
		{Kind: trace.RestoreEnd, Shard: 0, Reason: "timeout", Dur: 50 * time.Millisecond, At: 3050 * time.Millisecond},
		{Kind: trace.Bug, Shard: 0, Reason: "sig#1", At: 4 * time.Second},
		{Kind: trace.LinkRetry, Shard: 0, Reason: "vRun", At: 5 * time.Second},
		{Kind: trace.SyncEpoch, Shard: 0, Exec: 1, Edges: 15, At: 6 * time.Second},
		{Kind: trace.TierConfirm, Shard: 0, Exec: 3, Reason: "cov", Edges: 4, At: 6 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "executing", Dur: 3 * time.Second, At: 6 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "restoring", Dur: 2050 * time.Millisecond, At: 6 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "duration", Dur: 6 * time.Second, At: 6 * time.Second},
	} {
		s.Emit(ev)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
