// Package metrics is the campaign telemetry layer: a lock-cheap registry of
// counters, gauges and fixed-bucket histograms, a trace.Sink that folds the
// campaign event stream into the registry (so engine/fleet/link code needs no
// metric call sites), and an embedded HTTP server exposing the registry in
// Prometheus text format at /metrics, a JSON status document at /status, and
// net/http/pprof at /debug/pprof/ for host-side profiling.
//
// The registry is the serving substrate for the fuzzing-as-a-service daemon:
// a scraper can watch execs/s, restore rates, per-tier throughput and the
// confirmation-queue depth of a live campaign, while the deterministic
// journal stays the offline record. Counters are float64 values updated by
// atomic compare-and-swap on their bit pattern — no mutex on the hot path —
// and exposition sorts families and label values, so scrapes are
// deterministic for a deterministic campaign.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// value is a float64 cell updated lock-free via CAS on its bit pattern; it
// backs both counters and gauges.
type value struct {
	bits atomic.Uint64
}

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric. Add with a negative delta is
// a programming error; Set exists only for the end-of-campaign publish that
// pins counters to the authoritative Report values.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds d (d must be >= 0).
func (c *Counter) Add(d float64) { c.v.add(d) }

// Set pins the counter to f. Only the final-report publish uses it.
func (c *Counter) Set(f float64) { c.v.set(f) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v.get() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge value.
func (g *Gauge) Set(f float64) { g.v.set(f) }

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.get() }

// SetMax raises the gauge to f if f is larger (lock-free high-water mark).
func (g *Gauge) SetMax(f float64) {
	for {
		old := g.v.bits.Load()
		if math.Float64frombits(old) >= f {
			return
		}
		if g.v.bits.CompareAndSwap(old, math.Float64bits(f)) {
			return
		}
	}
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    value
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(f float64) {
	i := sort.SearchFloat64s(h.bounds, f) // first bound >= f
	h.counts[i].Add(1)
	h.sum.add(f)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.get() }

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	mu     sync.Mutex
	series map[string]*Counter
}

// With returns (creating on first use) the counter for the label value.
func (cv *CounterVec) With(label string) *Counter {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c := cv.series[label]
	if c == nil {
		c = &Counter{}
		cv.series[label] = c
	}
	return c
}

// GaugeVec is a family of gauges split by one label.
type GaugeVec struct {
	mu     sync.Mutex
	series map[string]*Gauge
}

// With returns (creating on first use) the gauge for the label value.
func (gv *GaugeVec) With(label string) *Gauge {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	g := gv.series[label]
	if g == nil {
		g = &Gauge{}
		gv.series[label] = g
	}
	return g
}

// family is one registered metric name with its help text, type and series.
type family struct {
	name  string
	help  string
	typ   string // "counter", "gauge", "histogram"
	label string // label key for vectors, "" for scalars

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
}

// Registry holds the registered metric families. Registration takes a mutex;
// updates through the returned handles are lock-free (vectors take the
// vector's own mutex only on a label's first use).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic("metrics: duplicate registration of " + f.name)
	}
	r.fams[f.name] = f
}

// NewCounter registers a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewGauge registers a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewHistogram registers a fixed-bucket histogram. Bounds must be ascending.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending for " + name)
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// NewCounterVec registers a counter family split by one label key.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{series: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, typ: "counter", label: label, cvec: cv})
	return cv
}

// NewGaugeVec registers a gauge family split by one label key.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{series: make(map[string]*Gauge)}
	r.register(&family{name: name, help: help, typ: "gauge", label: label, gvec: gv})
	return gv
}

// WriteText renders the registry in Prometheus text exposition format.
// Families are sorted by name and series by label value, so the output is
// deterministic — the golden-file test depends on that.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		switch {
		case f.counter != nil:
			writeSample(&b, f.name, "", "", f.counter.Value())
		case f.gauge != nil:
			writeSample(&b, f.name, "", "", f.gauge.Value())
		case f.hist != nil:
			writeHistogram(&b, f.name, f.hist)
		case f.cvec != nil:
			f.cvec.mu.Lock()
			for _, lv := range sortedKeysC(f.cvec.series) {
				writeSample(&b, f.name, f.label, lv, f.cvec.series[lv].Value())
			}
			f.cvec.mu.Unlock()
		case f.gvec != nil:
			f.gvec.mu.Lock()
			for _, lv := range sortedKeysG(f.gvec.series) {
				writeSample(&b, f.name, f.label, lv, f.gvec.series[lv].Value())
			}
			f.gvec.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, label, lv string, v float64) {
	b.WriteString(name)
	if label != "" {
		fmt.Fprintf(b, "{%s=%q}", label, lv)
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeysC(m map[string]*Counter) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysG(m map[string]*Gauge) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
