package metrics

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

// restoreBounds are the eof_restore_duration_seconds histogram buckets,
// spanning delta restores (tens of milliseconds) through full
// reflash+power-cycle ladders (tens of seconds).
var restoreBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// Sink folds the campaign trace-event stream into a Registry — the fourth
// consumer of the stream after the flight recorder, the journal and the
// status line. Attaching it as a live sink means the engine, fleet and link
// layers need no metric call sites at all. It is safe for concurrent use
// (fleet shards emit from their own goroutines): the hot counters are
// lock-free, and only the per-shard breakdown behind /status takes the mutex.
type Sink struct {
	execs       *Counter
	execsTier   *CounterVec
	edges       *Gauge
	corpusAdds  *Counter
	restores    *Counter
	restoresBy  *CounterVec
	restoresMod *CounterVec
	reflashes   *Counter
	snapshots   *Counter
	bugs        *Counter
	triaged     *Counter
	linkFaults  *Counter
	linkRetries *Counter
	linkReconns *Counter
	quarantines *Counter
	promotes    *Counter
	syncEpochs  *Counter
	confirmEnq  *Counter
	confirms    *CounterVec
	diverges    *CounterVec
	confirmQ    *Gauge
	timeBy      *CounterVec
	duration    *Gauge
	virtual     *Gauge
	restoreDur  *Histogram

	mu        sync.Mutex
	emulStart int
	shards    map[int]*shardStat
	enq       int64 // confirmation enqueues
	fin       int64 // confirmation verdicts drawn
	started   time.Time
}

// shardStat is the per-shard slice of the /status document.
type shardStat struct {
	Execs    int           `json:"execs"`
	Edges    int           `json:"edges"`
	Restores int           `json:"restores"`
	Bugs     int           `json:"bugs"`
	At       time.Duration `json:"-"`
	inDelta  bool          // a delta-restore event seen since restore-begin
}

// NewSink registers the campaign metric families on reg and returns the
// folding sink. emulStart is the first emulation-tier shard index (negative
// for untiered campaigns); it routes per-tier attribution.
func NewSink(reg *Registry, emulStart int) *Sink {
	s := &Sink{
		execs:       reg.NewCounter("eof_execs_total", "Completed test-case executions."),
		execsTier:   reg.NewCounterVec("eof_execs_tier_total", "Completed executions by tier.", "tier"),
		edges:       reg.NewGauge("eof_edges", "Distinct coverage edges observed (fleet-wide)."),
		corpusAdds:  reg.NewCounter("eof_corpus_adds_total", "Coverage-increasing inputs admitted to the corpus."),
		restores:    reg.NewCounter("eof_restores_total", "State restorations."),
		restoresBy:  reg.NewCounterVec("eof_restores_reason_total", "State restorations by trigger.", "reason"),
		restoresMod: reg.NewCounterVec("eof_restores_mode_total", "State restorations by mechanism (delta vs full).", "mode"),
		reflashes:   reg.NewCounter("eof_reflashes_total", "Full image reflashes."),
		snapshots:   reg.NewCounter("eof_snapshot_takes_total", "Golden snapshots cached."),
		bugs:        reg.NewCounter("eof_bugs_total", "Deduplicated findings."),
		triaged:     reg.NewCounter("eof_triaged_total", "Findings fully triaged."),
		linkFaults:  reg.NewCounter("eof_link_faults_total", "Debug-link faults observed or injected."),
		linkRetries: reg.NewCounter("eof_link_retries_total", "Transparent debug-link command retries."),
		linkReconns: reg.NewCounter("eof_link_reconnects_total", "Recovered debug-link deaths."),
		quarantines: reg.NewCounter("eof_quarantines_total", "Boards retired by the fleet supervisor."),
		promotes:    reg.NewCounter("eof_spare_promotes_total", "Hot spares promoted into vacated slots."),
		syncEpochs:  reg.NewCounter("eof_sync_epochs_total", "Fleet feedback-exchange barriers."),
		confirmEnq:  reg.NewCounter("eof_confirm_enqueues_total", "Emulation observations queued for hardware confirmation."),
		confirms:    reg.NewCounterVec("eof_tier_confirms_total", "Hardware-confirmed emulation observations by kind.", "kind"),
		diverges:    reg.NewCounterVec("eof_tier_divergences_total", "Cross-tier divergences by kind.", "kind"),
		confirmQ:    reg.NewGauge("eof_confirm_queue_depth", "Emulation observations awaiting hardware confirmation."),
		timeBy:      reg.NewCounterVec("eof_time_by_seconds_total", "Board-time budget by category (virtual seconds).", "category"),
		duration:    reg.NewGauge("eof_duration_seconds", "Accounted campaign duration (virtual seconds, per shard)."),
		virtual:     reg.NewGauge("eof_virtual_seconds", "Campaign virtual clock high-water mark."),
		restoreDur:  reg.NewHistogram("eof_restore_duration_seconds", "State-restoration cost (virtual seconds).", restoreBounds),
		emulStart:   emulStart,
		shards:      make(map[int]*shardStat),
		started:     time.Now(),
	}
	// Materialise the fixed label sets up front so a scrape of an idle
	// campaign already shows every series at zero.
	for _, c := range trace.Categories() {
		s.timeBy.With(c.String())
	}
	s.restoresMod.With("delta")
	s.restoresMod.With("full")
	if emulStart >= 0 {
		s.execsTier.With("hw")
		s.execsTier.With("emul")
	}
	return s
}

func (s *Sink) tierOf(shard int) string {
	if s.emulStart >= 0 && shard >= s.emulStart {
		return "emul"
	}
	return "hw"
}

func (s *Sink) shard(id int) *shardStat {
	st := s.shards[id]
	if st == nil {
		st = &shardStat{}
		s.shards[id] = st
	}
	return st
}

// Emit folds one trace event into the registry.
func (s *Sink) Emit(ev trace.Event) {
	switch ev.Kind {
	case trace.ExecEnd:
		s.execs.Inc()
		if s.emulStart >= 0 {
			s.execsTier.With(s.tierOf(ev.Shard)).Inc()
		}
		s.mu.Lock()
		s.shard(ev.Shard).Execs++
		s.mu.Unlock()
	case trace.CovGain:
		s.mu.Lock()
		s.shard(ev.Shard).Edges += ev.Edges
		total := 0
		for _, st := range s.shards {
			total += st.Edges
		}
		s.mu.Unlock()
		s.edges.SetMax(float64(total))
	case trace.SyncEpoch:
		s.syncEpochs.Inc()
		s.edges.SetMax(float64(ev.Edges))
	case trace.CorpusAdd:
		s.corpusAdds.Inc()
	case trace.RestoreBegin:
		s.restores.Inc()
		s.restoresBy.With(ev.Reason).Inc()
		s.mu.Lock()
		st := s.shard(ev.Shard)
		st.Restores++
		st.inDelta = false
		s.mu.Unlock()
	case trace.DeltaRestore:
		s.mu.Lock()
		s.shard(ev.Shard).inDelta = true
		s.mu.Unlock()
	case trace.RestoreEnd:
		s.restoreDur.Observe(ev.Dur.Seconds())
		s.mu.Lock()
		delta := s.shard(ev.Shard).inDelta
		s.mu.Unlock()
		if delta {
			s.restoresMod.With("delta").Inc()
		} else {
			s.restoresMod.With("full").Inc()
		}
	case trace.Reflash:
		s.reflashes.Inc()
	case trace.SnapshotTake:
		s.snapshots.Inc()
	case trace.Bug:
		s.bugs.Inc()
		s.mu.Lock()
		s.shard(ev.Shard).Bugs++
		s.mu.Unlock()
	case trace.TriageEnd:
		s.triaged.Inc()
	case trace.LinkFault:
		s.linkFaults.Inc()
	case trace.LinkRetry:
		s.linkRetries.Inc()
	case trace.LinkReconnect:
		s.linkReconns.Inc()
	case trace.Quarantine:
		s.quarantines.Inc()
	case trace.SparePromote:
		s.promotes.Inc()
	case trace.ConfirmEnqueue:
		s.confirmEnq.Inc()
		s.mu.Lock()
		s.enq++
		depth := s.enq - s.fin
		s.mu.Unlock()
		s.confirmQ.Set(float64(depth))
	case trace.TierConfirm:
		kind := "cov"
		if strings.HasPrefix(ev.Reason, "crash:") {
			kind = "crash"
		}
		s.confirms.With(kind).Inc()
		s.retire()
	case trace.TierDiverge:
		kind := ev.Reason
		if i := strings.IndexByte(kind, ':'); i >= 0 {
			kind = kind[:i]
		}
		s.diverges.With(kind).Inc()
		// hw-only-crash verdicts are extras discovered while replaying a
		// coverage item; they do not retire a queue entry.
		if kind != "hw-only-crash" {
			s.retire()
		}
	case trace.TimeBudget:
		switch ev.Reason {
		case "duration":
			s.duration.Set(ev.Dur.Seconds())
		case "restoring-delta", "restoring-full":
			// Sub-buckets of "restoring"; skip so the category counters sum
			// to the duration.
		default:
			s.timeBy.With(ev.Reason).Add(ev.Dur.Seconds())
		}
	}
	s.virtual.SetMax(ev.At.Seconds())
	s.mu.Lock()
	if st := s.shard(ev.Shard); ev.At > st.At {
		st.At = ev.At
	}
	s.mu.Unlock()
}

func (s *Sink) retire() {
	s.mu.Lock()
	s.fin++
	depth := s.enq - s.fin
	s.mu.Unlock()
	if depth < 0 {
		depth = 0
	}
	s.confirmQ.Set(float64(depth))
}

// Final pins the scraped counters to the campaign's authoritative final
// Report: event folding is exact for a deterministic journal, but the report
// remains the source of truth (fleet-wide edge totals, barrier-attributed
// TimeBy), so Campaign.Run publishes it here when it completes. After the
// publish a scrape equals the Report field for field.
type Final struct {
	Execs          int
	Edges          int
	Restores       int
	ByReason       map[string]int
	DeltaRestores  int
	FullRestores   int
	Bugs           int
	LinkRetries    int64
	LinkReconnects int64
	Quarantines    int
	TimeBy         trace.TimeBy
	Duration       time.Duration
	TierExecs      map[string]int // by tier class name, nil when untiered
}

// PublishFinal overwrites the live-folded values with the final report's.
func (s *Sink) PublishFinal(f Final) {
	s.execs.Set(float64(f.Execs))
	s.edges.Set(float64(f.Edges))
	s.restores.Set(float64(f.Restores))
	for reason, n := range f.ByReason {
		s.restoresBy.With(reason).Set(float64(n))
	}
	s.restoresMod.With("delta").Set(float64(f.DeltaRestores))
	s.restoresMod.With("full").Set(float64(f.FullRestores))
	s.bugs.Set(float64(f.Bugs))
	s.linkRetries.Set(float64(f.LinkRetries))
	s.linkReconns.Set(float64(f.LinkReconnects))
	s.quarantines.Set(float64(f.Quarantines))
	for _, c := range trace.Categories() {
		s.timeBy.With(c.String()).Set(f.TimeBy.Of(c).Seconds())
	}
	s.duration.Set(f.Duration.Seconds())
	for tier, n := range f.TierExecs {
		s.execsTier.With(tier).Set(float64(n))
	}
}

// StatusDoc is the JSON document served at /status: the live status line's
// counters with a per-shard and per-tier breakdown.
type StatusDoc struct {
	VirtualSeconds float64         `json:"virtual_seconds"`
	Execs          int             `json:"execs"`
	ExecsPerSec    float64         `json:"execs_per_sec"`
	Edges          int             `json:"edges"`
	Restores       int             `json:"restores"`
	Bugs           int             `json:"bugs"`
	Quarantines    int             `json:"quarantines"`
	Shards         []ShardStatus   `json:"shards"`
	Tiers          map[string]Tier `json:"tiers,omitempty"`
}

// ShardStatus is one shard's slice of the status document.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	Tier     string `json:"tier,omitempty"`
	Execs    int    `json:"execs"`
	Edges    int    `json:"edges"`
	Restores int    `json:"restores"`
	Bugs     int    `json:"bugs"`
}

// Tier is a per-tier rollup inside the status document.
type Tier struct {
	Shards            int `json:"shards"`
	Execs             int `json:"execs"`
	ConfirmQueueDepth int `json:"confirm_queue_depth,omitempty"`
}

// Status snapshots the live campaign into the /status document.
func (s *Sink) Status() StatusDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := StatusDoc{
		VirtualSeconds: s.virtual.Value(),
		Execs:          int(s.execs.Value()),
		Edges:          int(s.edges.Value()),
		Restores:       int(s.restores.Value()),
		Bugs:           int(s.bugs.Value()),
		Quarantines:    int(s.quarantines.Value()),
	}
	if doc.VirtualSeconds > 0 {
		doc.ExecsPerSec = float64(doc.Execs) / doc.VirtualSeconds
	}
	ids := make([]int, 0, len(s.shards))
	for id := range s.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tiered := s.emulStart >= 0
	if tiered {
		doc.Tiers = map[string]Tier{}
	}
	for _, id := range ids {
		st := s.shards[id]
		ss := ShardStatus{Shard: id, Execs: st.Execs, Edges: st.Edges, Restores: st.Restores, Bugs: st.Bugs}
		if tiered {
			ss.Tier = s.tierOf(id)
			t := doc.Tiers[ss.Tier]
			t.Shards++
			t.Execs += st.Execs
			doc.Tiers[ss.Tier] = t
		}
		doc.Shards = append(doc.Shards, ss)
	}
	if tiered {
		t := doc.Tiers["emul"]
		if d := int(s.enq - s.fin); d > 0 {
			t.ConfirmQueueDepth = d
		}
		doc.Tiers["emul"] = t
	}
	return doc
}
