package fsb

import (
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/cpu"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := &cpu.Fault{
		Kind: cpu.FaultBus,
		PC:   0x0800_4242,
		Msg:  "wild pointer dereference",
		Frames: []cpu.Frame{
			{File: "serial.c", Func: "rt_serial_write", Line: 917},
			{File: "device.c", Func: "rt_device_write", Line: 396},
		},
	}
	buf := make([]byte, MaxBytes)
	n := Encode(f, buf)
	if n <= 0 || n > MaxBytes {
		t.Fatalf("encoded %d bytes", n)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Kind != f.Kind || got.PC != f.PC || got.Msg != f.Msg {
		t.Fatalf("decoded: %+v", got)
	}
	if len(got.Frames) != 2 || got.Frames[0] != f.Frames[0] {
		t.Fatalf("frames: %+v", got.Frames)
	}
}

func TestClearInvalidates(t *testing.T) {
	buf := make([]byte, MaxBytes)
	Encode(&cpu.Fault{Kind: cpu.FaultPanic, Msg: "x"}, buf)
	Clear(buf)
	got, err := Decode(buf)
	if err != nil || got != nil {
		t.Fatalf("after clear: %+v %v", got, err)
	}
}

func TestTruncation(t *testing.T) {
	long := strings.Repeat("m", 500)
	frames := make([]cpu.Frame, 20)
	for i := range frames {
		frames[i] = cpu.Frame{File: strings.Repeat("f", 100), Func: strings.Repeat("g", 100), Line: i}
	}
	f := &cpu.Fault{Kind: cpu.FaultHard, Msg: long, Frames: frames}
	buf := make([]byte, MaxBytes)
	n := Encode(f, buf)
	if n > MaxBytes {
		t.Fatalf("overflow: %d", n)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Msg) != 160 {
		t.Fatalf("msg len %d", len(got.Msg))
	}
	if len(got.Frames) != 8 {
		t.Fatalf("frames %d", len(got.Frames))
	}
	// File tails survive truncation (basenames matter).
	if !strings.HasSuffix(frames[0].File, got.Frames[0].File) {
		t.Fatalf("file truncation kept the wrong end: %q", got.Frames[0].File)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(make([]byte, 4)); err == nil {
		t.Fatal("short block accepted")
	}
	g, err := Decode(make([]byte, 64))
	if err != nil || g != nil {
		t.Fatalf("zero block: %v %v", g, err)
	}
}
