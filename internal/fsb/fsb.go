// Package fsb defines the fault status block: a small record the kernel's
// exception path writes into a well-known RAM address, which the host's
// exception monitor reads over the debug link to attribute a crash (fault
// class, faulting PC, message, backtrace). This stands in for reading the
// fault registers and unwinding the stack through GDB on real hardware.
package fsb

import (
	"encoding/binary"
	"fmt"

	"github.com/eof-fuzz/eof/internal/cpu"
)

// Magic marks a valid fault record.
const Magic = 0xFA17B10C

// MaxBytes is the encoded size cap; it must fit board.FSBSize.
const MaxBytes = 704

const maxFrames = 8

// Encode renders the fault into buf (which must be at least MaxBytes long)
// and returns the encoded length. Long messages and deep backtraces are
// truncated, as a fixed on-target buffer forces.
func Encode(f *cpu.Fault, buf []byte) int {
	if len(buf) < MaxBytes {
		panic(fmt.Sprintf("fsb: buffer %d smaller than %d", len(buf), MaxBytes))
	}
	msg := f.Msg
	if len(msg) > 160 {
		msg = msg[:160]
	}
	frames := f.Frames
	if len(frames) > maxFrames {
		frames = frames[:maxFrames]
	}
	// Worst case: 18 + 160 + 1 + 8*(1+24+1+24+4) = 611 <= MaxBytes.
	const maxStr = 24
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(f.Kind))
	binary.LittleEndian.PutUint64(buf[8:], f.PC)
	binary.LittleEndian.PutUint16(buf[16:], uint16(len(msg)))
	off := 18
	off += copy(buf[off:], msg)
	buf[off] = byte(len(frames))
	off++
	for _, fr := range frames {
		off += putStr(buf[off:], fr.File, maxStr)
		off += putStr(buf[off:], fr.Func, maxStr)
		binary.LittleEndian.PutUint32(buf[off:], uint32(fr.Line))
		off += 4
	}
	return off
}

// Clear invalidates the record (boot and the agent's per-case setup do this).
func Clear(buf []byte) {
	if len(buf) >= 4 {
		binary.LittleEndian.PutUint32(buf[0:], 0)
	}
}

// Decode parses a fault record read from target RAM. It returns nil (no
// error) when the block holds no valid record.
func Decode(raw []byte) (*cpu.Fault, error) {
	if len(raw) < 19 {
		return nil, fmt.Errorf("fsb: block too short (%d bytes)", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:]) != Magic {
		return nil, nil
	}
	f := &cpu.Fault{
		Kind: cpu.FaultKind(binary.LittleEndian.Uint32(raw[4:])),
		PC:   binary.LittleEndian.Uint64(raw[8:]),
	}
	msgLen := int(binary.LittleEndian.Uint16(raw[16:]))
	off := 18
	if off+msgLen+1 > len(raw) {
		return nil, fmt.Errorf("fsb: truncated message")
	}
	f.Msg = string(raw[off : off+msgLen])
	off += msgLen
	nframes := int(raw[off])
	off++
	if nframes > maxFrames {
		return nil, fmt.Errorf("fsb: %d frames exceeds max", nframes)
	}
	for i := 0; i < nframes; i++ {
		file, n, err := getStr(raw[off:])
		if err != nil {
			return nil, err
		}
		off += n
		fn, n, err := getStr(raw[off:])
		if err != nil {
			return nil, err
		}
		off += n
		if off+4 > len(raw) {
			return nil, fmt.Errorf("fsb: truncated frame line")
		}
		line := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		f.Frames = append(f.Frames, cpu.Frame{File: file, Func: fn, Line: line})
	}
	return f, nil
}

func putStr(buf []byte, s string, max int) int {
	if len(s) > max {
		s = s[len(s)-max:] // keep the tail: file basenames matter most
	}
	buf[0] = byte(len(s))
	return 1 + copy(buf[1:], s)
}

func getStr(raw []byte) (string, int, error) {
	if len(raw) < 1 {
		return "", 0, fmt.Errorf("fsb: truncated string")
	}
	n := int(raw[0])
	if 1+n > len(raw) {
		return "", 0, fmt.Errorf("fsb: truncated string body")
	}
	return string(raw[1 : 1+n]), 1 + n, nil
}
