// Package backend abstracts the execution substrate a fuzzing engine drives:
// provisioning, boot and a link.Link transport for exec, coverage drain and
// snapshot/restore, tagged with a capability class. Two implementations
// exist: the classic hardware stack (the in-process debug server over the
// board model, reached through ocd.ConnectDirect) and an adapter over
// internal/emul's VM facilities. The engine composes its middleware stack
// (fault injector, metrics, session, timing) on top of whatever transport
// the backend connects, so watchdogs, restoration ladder and accounting work
// identically on both substrates — only the cost model and the reachable
// peripheral surface differ, which is exactly the tiered fleet's trade.
package backend

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// Class is a backend's capability class: what kind of substrate executes the
// target, and therefore how trustworthy its findings are.
type Class uint8

const (
	// HW is real (modelled) hardware behind a debug probe: slow, but every
	// peripheral is present and every finding is ground truth.
	HW Class = iota
	// Emul is an emulated VM: orders of magnitude cheaper per exec, but
	// unmodelled peripherals make its coverage and crashes provisional until
	// a hardware board confirms them.
	Emul
)

func (c Class) String() string {
	if c == Emul {
		return "emul"
	}
	return "hw"
}

// Env is everything a factory needs to stand up a backend. The engine owns
// the clock and the images; the backend owns the board and the transport.
type Env struct {
	Info   *osinfo.Info
	Spec   *board.Spec
	Images *osinfo.Images
	Clock  *vtime.Clock
	// Latency is the debug-adapter cost model (hardware backends only).
	Latency ocd.Latency
	// Degrade configures the board degradation model. Emulated backends
	// ignore it: a VM reloaded from a host-side file cannot wear out.
	Degrade board.DegradeConfig
}

// Backend is one execution substrate instance, owned by one engine.
type Backend interface {
	// Class reports the substrate's capability class.
	Class() Class
	// Board exposes the underlying board model for health/degradation
	// inspection and tests; the fuzzing loop itself speaks Connect's link.
	Board() *board.Board
	// Provision writes the pristine images into the target's flash.
	Provision() error
	// Boot cold-boots the provisioned target once (retry policy stays with
	// the engine, which owns health accounting).
	Boot() error
	// Connect returns the transport the engine's link middleware wraps.
	Connect() link.Link
	// Close releases the substrate.
	Close() error
}

// Factory builds a backend from an environment. core.Config carries one;
// nil selects Hardware.
type Factory func(Env) (Backend, error)

// Hardware returns the factory for the classic debug-probe stack: board
// model, in-process debug server with the adapter latency model, direct
// client transport.
func Hardware() Factory {
	return func(env Env) (Backend, error) {
		table, err := env.Info.PartTable()
		if err != nil {
			return nil, err
		}
		brd, err := board.New(env.Spec, table, env.Info.Builder, env.Clock)
		if err != nil {
			return nil, err
		}
		if env.Degrade.Enabled() {
			brd.SetDegrade(env.Degrade)
		}
		return &hwBackend{env: env, brd: brd}, nil
	}
}

type hwBackend struct {
	env Env
	brd *board.Board
	srv *ocd.Server
}

func (b *hwBackend) Class() Class        { return HW }
func (b *hwBackend) Board() *board.Board { return b.brd }

func (b *hwBackend) Provision() error {
	tab := b.brd.PartitionTable()
	for _, part := range []struct {
		name string
		data []byte
	}{{"bootloader", b.env.Images.Boot}, {"kernel", b.env.Images.Kernel}} {
		if tab.Lookup(part.name) == nil {
			return fmt.Errorf("backend: partition %q missing", part.name)
		}
		if err := b.brd.Provision(part.name, part.data); err != nil {
			return err
		}
	}
	return nil
}

func (b *hwBackend) Boot() error { return b.brd.Boot() }

func (b *hwBackend) Connect() link.Link {
	b.srv = ocd.NewServer(b.brd, b.env.Latency)
	return ocd.ConnectDirect(b.srv)
}

// Server exposes the debug server after Connect, for tests that poke probe
// capabilities (e.g. forcing the legacy command set).
func (b *hwBackend) Server() *ocd.Server { return b.srv }

func (b *hwBackend) Close() error {
	if b.brd.State() == board.On {
		b.brd.Core().Kill()
	}
	return nil
}
