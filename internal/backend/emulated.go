package backend

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/emul"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
)

// Emulated returns the factory for the emulation substrate: VM facilities
// behind the same link contract the hardware probe speaks. Every command
// costs one emul.OpCost instead of an adapter round trip, and a restore is a
// cheap VM reset from the host-side image, so a recovery never escalates and
// can never brick the target.
func Emulated() Factory {
	return func(env Env) (Backend, error) {
		vm, err := emul.NewVM(env.Info, env.Spec, env.Images, env.Clock)
		if err != nil {
			return nil, err
		}
		return &emulBackend{vm: vm}, nil
	}
}

// OpenVM is the one emulated-VM bring-up path outside a campaign engine:
// build images, construct the VM on a private clock and perform the first
// boot. The emulation-bound baselines (Tardis, Gustave) consume it; tiered
// campaigns go through the Emulated factory instead, which shares the
// engine's clock and defers bring-up to engine Setup.
func OpenVM(info *osinfo.Info, spec *board.Spec, instrumented bool) (*emul.VM, error) {
	images, err := info.BuildImages(spec, instrumented)
	if err != nil {
		return nil, err
	}
	vm, err := emul.NewVM(info, spec, images, nil)
	if err != nil {
		return nil, err
	}
	if err := vm.Reset(); err != nil {
		return nil, err
	}
	return vm, nil
}

// EmulSpecFor derives the emulation twin of a hardware board spec: identical
// memory map, clocking and coverage geometry — so images, symbol tables and
// therefore edge IDs are byte-comparable across tiers — but marked emulated,
// with only the serial peripheral QEMU-style machines model. OS code behind
// the unmodelled peripherals takes its ErrNoDev paths here; that runtime
// divergence is exactly what the hardware confirmation tier exists to catch.
func EmulSpecFor(hw *board.Spec) *board.Spec {
	twin := *hw
	twin.Name = hw.Name + "-emul"
	twin.Emulated = true
	// Virtual time on an emulated shard is host wall-clock: the translator
	// retires target blocks HostSpeedup times faster than the MCU, and
	// virtual timers warp past idle ticks instead of waiting them out.
	// Cycle budgets and block costs are untouched, so target-visible
	// behavior — and the coverage a given budget reaches — is unchanged.
	twin.HZ = hw.HZ * emul.HostSpeedup
	twin.IdleWarp = emul.HostSpeedup
	// Software breakpoints are free in an emulator; the comparator scarcity
	// that degrades hardware monitors does not apply.
	twin.MaxBreakpoints = 32
	twin.Peripherals = map[string]bool{"serial": true}
	return &twin
}

type emulBackend struct {
	vm *emul.VM
}

func (b *emulBackend) Class() Class        { return Emul }
func (b *emulBackend) Board() *board.Board { return b.vm.Board() }
func (b *emulBackend) Provision() error    { return b.vm.Provision() }
func (b *emulBackend) Boot() error         { return b.vm.Boot() }
func (b *emulBackend) Connect() link.Link  { return &vmLink{vm: b.vm} }
func (b *emulBackend) Close() error        { b.vm.Close(); return nil }

// vmLink adapts VM facilities to the link.Link contract, mirroring the debug
// server's semantics — liveness gating, error taxonomy, the vCovDrain
// header protocol — so the engine's watchdogs, fallback latches and recovery
// ladder behave identically on both substrates. Each command charges one
// emul.OpCost to the shared clock in place of the adapter latency model.
type vmLink struct {
	vm *emul.VM
}

func (l *vmLink) brd() *board.Board { return l.vm.Board() }

func (l *vmLink) charge() { l.vm.Clock.Advance(emul.OpCost) }

// live mirrors the debug server's liveness gate: commands against a powered-
// off or dead core earn the timeout the watchdogs key on.
func (l *vmLink) live() bool {
	b := l.brd()
	return b.State() == board.On && !b.Core().Dead()
}

func remote(code ocd.Code, err error) error {
	return &ocd.RemoteError{Code: code, Msg: err.Error()}
}

func (l *vmLink) ReadMem(addr uint64, n int) ([]byte, error) {
	l.charge()
	if !l.live() {
		return nil, ocd.ErrTimeout
	}
	data, err := l.brd().Mem().Read(addr, n)
	if err != nil {
		return nil, remote(ocd.CodeMem, err)
	}
	return data, nil
}

func (l *vmLink) WriteMem(addr uint64, data []byte) error {
	l.charge()
	if !l.live() {
		return ocd.ErrTimeout
	}
	if err := l.brd().Mem().Write(addr, data); err != nil {
		return remote(ocd.CodeMem, err)
	}
	return nil
}

func (l *vmLink) SetBreakpoint(addr uint64) error {
	l.charge()
	if !l.live() {
		return ocd.ErrTimeout
	}
	if err := l.brd().Core().SetBreakpoint(addr); err != nil {
		return remote(ocd.CodeBP, err)
	}
	return nil
}

func (l *vmLink) ClearBreakpoint(addr uint64) error {
	l.charge()
	if !l.live() {
		return ocd.ErrTimeout
	}
	l.brd().Core().ClearBreakpoint(addr)
	return nil
}

func (l *vmLink) Continue(budget int64) (cpu.Stop, error) {
	l.charge()
	if !l.live() {
		return cpu.Stop{}, ocd.ErrTimeout
	}
	if budget <= 0 {
		budget = 2_000_000
	}
	return l.brd().Core().Continue(budget), nil
}

// Reset and PowerCycle both map to the emulation tier's entire recovery
// ladder: reload the pristine image from the host file and reboot. It cannot
// fail the way a hardware reflash can, so rung escalation never happens here.
func (l *vmLink) Reset() error      { l.charge(); return l.reload() }
func (l *vmLink) PowerCycle() error { l.charge(); return l.reload() }

func (l *vmLink) reload() error {
	if err := l.vm.Reset(); err != nil {
		if errors.Is(err, board.ErrDead) {
			return remote(ocd.CodeDead, err)
		}
		return remote(ocd.CodeBoot, err)
	}
	return nil
}

func (l *vmLink) FlashErase(off, n int) error {
	l.charge()
	if err := l.brd().FlashErase(off, n); err != nil {
		return flashErr(err)
	}
	return nil
}

func (l *vmLink) FlashWrite(off int, data []byte) error {
	l.charge()
	if err := l.brd().FlashProgram(off, data); err != nil {
		return flashErr(err)
	}
	return nil
}

func flashErr(err error) error {
	if errors.Is(err, board.ErrDead) {
		return remote(ocd.CodeDead, err)
	}
	return remote(ocd.CodeFlash, err)
}

// DrainCov mirrors the debug server's vCovDrain: validate the coverage
// header, transfer up to maxEntries entries and zero the count and lost
// words, all for one OpCost.
func (l *vmLink) DrainCov(addr uint64, maxEntries int) ([]uint32, uint32, error) {
	l.charge()
	if !l.live() {
		return nil, 0, ocd.ErrTimeout
	}
	mem := l.brd().Mem()
	hdr, err := mem.Read(addr, 16)
	if err != nil {
		return nil, 0, remote(ocd.CodeMem, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != cov.Magic {
		return nil, 0, &ocd.RemoteError{Code: ocd.CodeCov, Msg: fmt.Sprintf("bad magic %#x", m)}
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	capacity := int(binary.LittleEndian.Uint32(hdr[8:]))
	lost := binary.LittleEndian.Uint32(hdr[12:])
	if count > capacity {
		return nil, 0, &ocd.RemoteError{Code: ocd.CodeCov, Msg: fmt.Sprintf("corrupt header count=%d cap=%d", count, capacity)}
	}
	if count > maxEntries {
		count = maxEntries
	}
	entries := make([]uint32, count)
	if count > 0 {
		raw, err := mem.Read(addr+16, count*4)
		if err != nil {
			return nil, 0, remote(ocd.CodeMem, err)
		}
		for i := range entries {
			entries[i] = binary.LittleEndian.Uint32(raw[i*4:])
		}
	}
	if err := mem.Write(addr+4, []byte{0, 0, 0, 0}); err != nil {
		return nil, 0, remote(ocd.CodeMem, err)
	}
	if err := mem.Write(addr+12, []byte{0, 0, 0, 0}); err != nil {
		return nil, 0, remote(ocd.CodeMem, err)
	}
	return entries, lost, nil
}

func (l *vmLink) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	l.charge()
	if !l.live() {
		return cpu.Stop{}, ocd.ErrTimeout
	}
	if err := l.brd().Mem().Write(addr, data); err != nil {
		return cpu.Stop{}, remote(ocd.CodeMem, err)
	}
	if budget <= 0 {
		budget = 2_000_000
	}
	return l.brd().Core().Continue(budget), nil
}

func (l *vmLink) Snapshot() error {
	l.charge()
	if !l.live() {
		return ocd.ErrTimeout
	}
	if err := l.brd().Snapshot(); err != nil {
		return remote(ocd.CodeSnap, err)
	}
	return nil
}

func (l *vmLink) RestoreSnapshot() (board.RestoreStats, error) {
	l.charge()
	b := l.brd()
	if b.State() == board.Dead {
		return board.RestoreStats{}, &ocd.RemoteError{Code: ocd.CodeDead, Msg: "board dead"}
	}
	if !b.HasSnapshot() {
		return board.RestoreStats{}, &ocd.RemoteError{Code: ocd.CodeSnap}
	}
	st, err := b.RestoreSnapshot()
	if err != nil {
		switch {
		case errors.Is(err, board.ErrDead):
			return st, remote(ocd.CodeDead, err)
		case errors.Is(err, board.ErrNoSnapshot):
			return st, &ocd.RemoteError{Code: ocd.CodeSnap}
		default:
			return st, remote(ocd.CodeFlash, err)
		}
	}
	return st, nil
}

func (l *vmLink) DrainUART() ([]string, error) {
	l.charge()
	return l.vm.DrainUART(), nil
}

func (l *vmLink) BoardState() (board.State, int, string, error) {
	l.charge()
	b := l.brd()
	last := ""
	if err := b.LastBootError(); err != nil {
		last = err.Error()
	}
	return b.State(), b.BootCount(), last, nil
}

func (l *vmLink) Close() error { return nil }

var _ link.Link = (*vmLink)(nil)
