package nuttx_test

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/nuttx"
	"github.com/eof-fuzz/eof/internal/ostest"
)

func rig(t *testing.T) *ostest.Rig {
	return ostest.New(t, nuttx.Info(), boards.STM32H745())
}

func TestBug14SetenvEqualsInName(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("setenv", ostest.Str("PATH"), ostest.Str("/bin"), ostest.Imm(1)),
		r.Call("setenv", ostest.Str("BAD=NAME"), ostest.Str("v"), ostest.Imm(1)),
	)
	out.ExpectFault(t, cpu.FaultPanic, "setenv")
}

func TestSetenvEqualsOnEmptyEnvIsTolerated(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("setenv", ostest.Str("BAD=NAME"), ostest.Str("v"), ostest.Imm(1)))
	if !out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestBug15GettimeofdayNullTv(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("gettimeofday", ostest.Imm(0), ostest.Imm(1)))
	out.ExpectFault(t, cpu.FaultBus, "gettimeofday")
}

func TestGettimeofdayNormal(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("gettimeofday", ostest.Blob(make([]byte, 16)), ostest.Imm(0)),
		r.Call("gettimeofday", ostest.Imm(0), ostest.Imm(0)), // EINVAL path
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestBug16TimedsendPrioOverrun(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("mq_open", ostest.Str("/mq0"), ostest.Imm(4), ostest.Imm(16)),
		r.Call("nxmq_timedsend", ostest.Ref(0), ostest.Blob([]byte("msg")), ostest.Imm(40), ostest.Imm(5)),
	)
	out.ExpectFault(t, cpu.FaultBus, "nxmq_timedsend")
}

func TestTimedsendFastPathValidates(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("mq_open", ostest.Str("/mq0"), ostest.Imm(4), ostest.Imm(16)),
		r.Call("nxmq_timedsend", ostest.Ref(0), ostest.Blob([]byte("msg")), ostest.Imm(40), ostest.Imm(0)),
	)
	if !out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Result.LastErr == 0 {
		t.Fatal("oversized priority accepted on the fast path")
	}
}

func TestBug17TrywaitAfterDestroy(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("sem_init", ostest.Imm(1)),
		r.Call("sem_destroy", ostest.Ref(0)),
		r.Call("nxsem_trywait", ostest.Ref(0)),
	)
	out.ExpectAssertHang(t, "sem->semcount >= SEM_VALUE_IRQ")
}

func TestBug18TimerCreateClockHole(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("timer_create", ostest.Imm(4), ostest.Imm(0)))
	out.ExpectFault(t, cpu.FaultPanic, "timer_create")
}

func TestTimerCreateValidIDs(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("timer_create", ostest.Imm(0), ostest.Imm(0)),
		r.Call("timer_settime", ostest.Ref(0), ostest.Imm(50)),
		r.Call("timer_create", ostest.Imm(2), ostest.Imm(0)),  // ENOSYS, checked
		r.Call("timer_create", ostest.Imm(99), ostest.Imm(0)), // EINVAL, checked
		r.Call("timer_delete", ostest.Ref(0)),
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestBug19ClockGetresNullOnProcCPU(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("clock_getres", ostest.Imm(2), ostest.Imm(0)))
	out.ExpectFault(t, cpu.FaultBus, "clock_getres")
}

func TestClockGetresChecksNullElsewhere(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("clock_getres", ostest.Imm(0), ostest.Imm(0)), // EINVAL, checked
		r.Call("clock_getres", ostest.Imm(0), ostest.Blob(make([]byte, 8))),
		r.Call("clock_gettime", ostest.Imm(1)),
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestEnvRoundTrip(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("setenv", ostest.Str("HOME"), ostest.Str("/root"), ostest.Imm(0)),
		r.Call("getenv", ostest.Str("HOME")),
		r.Call("unsetenv", ostest.Str("HOME")),
		r.Call("getenv", ostest.Str("HOME")),
	)
	if !out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Result.LastErr == 0 {
		t.Fatal("getenv after unsetenv succeeded")
	}
}

func TestMessageQueueLifecycle(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("mq_open", ostest.Str("/control"), ostest.Imm(4), ostest.Imm(8)),
		r.Call("mq_send", ostest.Ref(0), ostest.Blob([]byte("payload1")), ostest.Imm(3)),
		r.Call("mq_receive", ostest.Ref(0), ostest.Imm(5)),
		r.Call("mq_close", ostest.Ref(0)),
	)
	if !out.Completed || out.Result.Executed != 4 || out.Result.LastErr != 0 {
		t.Fatalf("outcome: %+v", out)
	}
}
