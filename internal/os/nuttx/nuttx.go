// Package nuttx is the NuttX personality: a POSIX-flavoured surface
// (setenv, mq_*, sem_*, timer_*, clock_*) over the shared framework. It
// carries Table-2 bugs #14 (setenv with '=' in the name corrupts the environ
// block), #15 (gettimeofday's timezone fixup on a null timeval), #16
// (nxmq_timedsend skips priority validation on the blocking path), #17
// (nxsem_trywait asserts on a destroyed semaphore), #18 (timer_create's
// clock function table hole) and #19 (clock_getres null-res path).
package nuttx

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/apiutil"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Name is the canonical OS identifier.
const Name = "nuttx"

// Version matches the paper's evaluated revision.
const Version = "fc99353"

const partTable = `# name, type, offset, size
bootloader, app, 0x0, 0x10000
kernel, app, 0x10000, 0x400000
nvs, data, 0x410000, 0x20000
`

// Clock IDs (a subset of NuttX's).
const (
	clockRealtime  = 0
	clockMonotonic = 1
	clockProcCPU   = 2
	clockThreadCPU = 3
	clockCoarse    = 4 // accepted by the range check, missing from the table
)

// mqPrioMax is MQ_PRIO_MAX - 1.
const mqPrioMax = 31

// OS is one booted NuttX instance.
type OS struct {
	periphs []*rtos.Periph
	drv     *rtos.Driver
	env     *board.Env
	k       *rtos.Kernel
	reg     *apiutil.Registrar

	fnAssert  *rtos.Fn
	fnSyslog  *rtos.Fn
	fnEnvScan *rtos.Fn
	fnGTOD    *rtos.Fn
	fnMqTSend *rtos.Fn
	fnTryWait *rtos.Fn
	fnTCreate *rtos.Fn
	fnGetres  *rtos.Fn

	env0     map[string]string
	envBytes int
}

// Info returns the host-visible build description.
func Info() *osinfo.Info {
	return &osinfo.Info{
		Name:               Name,
		Display:            "NuttX",
		Version:            Version,
		PartTableText:      partTable,
		Builder:            Build,
		ExceptionSyms:      []string{"up_assert"},
		Headers:            headers(),
		APINames:           apiOrder(),
		BaseCodeBytes:      3_290_000,
		BytesPerBlock:      64,
		InstrBytesPerBlock: 281,
		BuildID:            0xFC993530,
	}
}

// Build constructs the NuttX firmware.
func Build(env *board.Env) (board.Firmware, error) {
	k := rtos.NewKernel(env, "NuttX")
	k.InitSched("nxsched_process_timer", "nxsched_select_next", "up_switch_context", "sched/sched.c")

	heapBase := env.ScratchBase + agent.ArenaSize
	heapEnd := env.RAM.End() - 4096
	if heapBase+16*1024 > heapEnd {
		return nil, fmt.Errorf("nuttx: RAM too small for heap")
	}
	k.NewHeap(heapBase, int(heapEnd-heapBase), "mm_malloc", "mm_free", "mm_lock", "mm/mm_heap.c")

	o := &OS{env: env, k: k, env0: make(map[string]string)}
	o.fnAssert = k.Fn("up_assert", "arch/arm/src/common/up_assert.c", 90, 2)
	o.fnSyslog = k.Fn("syslog", "libs/libc/syslog/lib_syslog.c", 40, 2)
	o.fnEnvScan = k.Fn("env_findvar", "sched/environ/env_findvar.c", 30, 4)
	o.fnGTOD = k.Fn("gettimeofday", "libs/libc/time/lib_gettimeofday.c", 50, 6)
	o.fnMqTSend = k.Fn("nxmq_timedsend", "sched/mqueue/mq_timedsend.c", 120, 8)
	o.fnTryWait = k.Fn("nxsem_trywait", "sched/semaphore/sem_trywait.c", 60, 6)
	o.fnTCreate = k.Fn("timer_create", "sched/timer/timer_create.c", 80, 8)
	o.fnGetres = k.Fn("clock_getres", "sched/clock/clock_getres.c", 40, 7)
	k.ExceptionFn = o.fnAssert
	k.ConsoleWrite = o.consoleWrite

	o.reg = &apiutil.Registrar{K: k, File: "syscall/nuttx_api.c"}
	o.drv = k.NewDriver("dma", "nx_dev_open", "nx_dev_ioctl", "nx_dev_close", "drivers/char/dev_dma.c")
	o.periphs = append(o.periphs, k.NewPeriph("gpio", "gpio_config", "gpio_read", "drivers/ioexpander/gpio.c"))
	o.periphs = append(o.periphs, k.NewPeriph("adc", "adc_setup", "adc_sample", "drivers/analog/adc.c"))
	o.periphs = append(o.periphs, k.NewPeriph("can", "can_ioctl_cfg", "can_receive", "drivers/can/can.c"))
	o.buildTable()
	names := o.reg.Names()
	want := apiOrder()
	if len(names) != len(want) {
		return nil, fmt.Errorf("nuttx: API table drift: %d registered, %d declared", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			return nil, fmt.Errorf("nuttx: API order drift at %d: %s != %s", i, names[i], want[i])
		}
	}
	return agent.New(env, o), nil
}

func (o *OS) consoleWrite(s string) {
	o.fnSyslog.Enter()
	o.fnSyslog.B(1)
	o.env.UART.WriteString(s)
	o.fnSyslog.Exit()
}

// Name implements agent.Target.
func (o *OS) Name() string { return Name }

// Kernel implements agent.Target.
func (o *OS) Kernel() *rtos.Kernel { return o.k }

// APIs implements agent.Target.
func (o *OS) APIs() []agent.API { return o.reg.Table }

func apiOrder() []string {
	return []string{
		"task_create", "task_delete", "usleep",
		"setenv", "getenv", "unsetenv",
		"mq_open", "mq_send", "nxmq_timedsend", "mq_receive", "mq_close",
		"sem_init", "sem_timedwait", "nxsem_trywait", "sem_post", "sem_destroy",
		"timer_create", "timer_settime", "timer_delete",
		"gettimeofday", "clock_gettime", "clock_getres",
		"malloc", "free", "syslog_api",
		"nx_dev_open", "nx_dev_ioctl", "nx_dev_close",
		"gpio_config", "gpio_read", "adc_setup", "adc_sample",
		"can_ioctl_cfg", "can_receive",
	}
}

func (o *OS) buildTable() {
	k := o.k
	r := o.reg
	ar := apiutil.Arg

	r.Reg("task_create", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 16, "init")
		prio := int(uint32(ar(a, 1)))
		stack := int(uint32(ar(a, 2)))
		if prio > rtos.PrioMin {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		obj, e := k.Sched.Create(name, prio, stack, int(ar(a, 3)))
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("task_delete", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		obj.Data.(*rtos.Task).State = rtos.TaskDead
		return 0, k.Objects.Delete(obj.ID)
	})

	r.Reg("usleep", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		us := uint32(ar(a, 0))
		if us == 0 {
			f.B(1)
			return 0, rtos.OK
		}
		ticks := int(us / 1000)
		if ticks > 5000 {
			f.B(2)
			ticks = 5000
		}
		f.B(3)
		k.Sleep(ticks)
		return 0, rtos.OK
	})

	// Bug #14 (Table 2): setenv accepts a name containing '=' and rebuilds
	// the environ block around the bogus separator, corrupting it.
	r.Reg("setenv", 9, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 32, "")
		value := apiutil.CString(k, ar(a, 1), 64, "")
		overwrite := uint32(ar(a, 2)) != 0
		if name == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		o.fnEnvScan.Enter()
		_, exists := o.env0[name]
		o.fnEnvScan.B(1)
		o.fnEnvScan.Exit()
		if strings.ContainsRune(name, '=') {
			f.B(3)
			if len(o.env0) > 0 {
				f.B(4)
				k.PanicFault(cpu.FaultPanic, fmt.Sprintf(
					"setenv: environ block corrupted by name %q", name))
			}
			// With an empty environment the bogus entry merely lands first.
		}
		if exists && !overwrite {
			f.B(5)
			return 0, rtos.OK
		}
		if o.envBytes+len(name)+len(value) > 2048 {
			f.B(6)
			return 0, rtos.ErrNoMem
		}
		f.B(7)
		o.env0[name] = value
		o.envBytes += len(name) + len(value)
		return 0, rtos.OK
	})

	r.Reg("getenv", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 32, "")
		o.fnEnvScan.Enter()
		v, ok := o.env0[name]
		o.fnEnvScan.B(2)
		o.fnEnvScan.Exit()
		if !ok {
			f.B(1)
			return 0, rtos.ErrNotFound
		}
		f.B(2)
		return uint64(len(v)), rtos.OK
	})

	r.Reg("unsetenv", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 32, "")
		if _, ok := o.env0[name]; !ok {
			f.B(1)
			return 0, rtos.OK // POSIX: success even when absent
		}
		f.B(2)
		o.envBytes -= len(name) + len(o.env0[name])
		delete(o.env0, name)
		return 0, rtos.OK
	})

	r.Reg("mq_open", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 16, "/mq")
		maxMsg := int(uint32(ar(a, 1)))
		msgSize := int(uint32(ar(a, 2)))
		if !strings.HasPrefix(name, "/") {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		obj, e := k.NewQueue(name, msgSize, maxMsg)
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("mq_send", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		prio := uint32(ar(a, 2))
		if prio > mqPrioMax {
			f.B(2)
			return 0, rtos.ErrInval
		}
		ptr := ar(a, 1)
		if ptr == 0 {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		item := k.ReadRAM(ptr, q.ItemSize)
		if e := q.Send(item, 0); e.Failed() {
			f.B(5)
			return 0, e
		}
		f.B(6)
		return 0, rtos.OK
	})

	// Bug #16 (Table 2): the blocking path validates the message but not the
	// priority; a priority past MQ_PRIO_MAX indexes the per-priority list
	// array out of bounds.
	r.Reg("nxmq_timedsend", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		prio := uint32(ar(a, 2))
		timeout := int(uint32(ar(a, 3)))
		o.fnMqTSend.Enter()
		defer o.fnMqTSend.Exit()
		if timeout == 0 {
			o.fnMqTSend.B(1)
			if prio > mqPrioMax {
				o.fnMqTSend.B(2)
				return 0, rtos.ErrInval
			}
		} else {
			o.fnMqTSend.B(3)
			if prio > mqPrioMax {
				o.fnMqTSend.B(4)
				k.PanicFault(cpu.FaultBus, fmt.Sprintf(
					"nxmq_timedsend: priority list overrun (prio=%d)", prio))
			}
		}
		ptr := ar(a, 1)
		if ptr == 0 {
			o.fnMqTSend.B(5)
			return 0, rtos.ErrInval
		}
		o.fnMqTSend.B(6)
		item := k.ReadRAM(ptr, q.ItemSize)
		if e := q.Send(item, timeout); e.Failed() {
			o.fnMqTSend.B(7)
			return 0, e
		}
		return 0, rtos.OK
	})

	r.Reg("mq_receive", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		item, e := obj.Data.(*rtos.Queue).Recv(int(uint32(ar(a, 1))))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	r.Reg("mq_close", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Queue).Destroy()
	})

	r.Reg("sem_init", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewSemaphore("nxsem", int(uint32(ar(a, 0))), 32767)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("sem_timedwait", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Take(int(uint32(ar(a, 1))))
	})

	// Bug #17 (Table 2): trywait on a destroyed semaphore trips the
	// DEBUGASSERT on the freed control block's count — a hang the log
	// monitor attributes.
	r.Reg("nxsem_trywait", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj := k.Objects.Get(uint32(ar(a, 0)))
		if obj == nil || obj.Type != rtos.ObjSem {
			f.B(1)
			return 0, rtos.ErrInval
		}
		o.fnTryWait.Enter()
		defer o.fnTryWait.Exit()
		if !obj.Alive {
			o.fnTryWait.B(1)
			k.Assert(false, "sem->semcount >= SEM_VALUE_IRQ")
		}
		o.fnTryWait.B(2)
		s := obj.Data.(*rtos.Semaphore)
		if s.Count <= 0 {
			o.fnTryWait.B(3)
			return 0, rtos.ErrBusy
		}
		o.fnTryWait.B(4)
		s.Count--
		return 0, rtos.OK
	})

	r.Reg("sem_post", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Give()
	})

	r.Reg("sem_destroy", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Objects.Delete(uint32(ar(a, 0)))
	})

	// Bug #18 (Table 2): the clock-function table has entries for REALTIME
	// and MONOTONIC; the range check admits ids up to 7, and id 4 falls into
	// the table hole.
	r.Reg("timer_create", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		clockID := uint32(ar(a, 0))
		o.fnTCreate.Enter()
		defer o.fnTCreate.Exit()
		if clockID > 7 {
			o.fnTCreate.B(1)
			return 0, rtos.ErrInval
		}
		switch clockID {
		case clockRealtime, clockMonotonic:
			o.fnTCreate.B(2)
		case clockProcCPU, clockThreadCPU, 5, 6, 7:
			o.fnTCreate.B(3)
			return 0, rtos.ErrNoSys
		case clockCoarse:
			o.fnTCreate.B(4)
			k.PanicFault(cpu.FaultPanic, "timer_create: null clock function table entry (id=4)")
		}
		obj, e := k.NewTimer("ptimer", 100, true, int(ar(a, 1)))
		if e.Failed() {
			o.fnTCreate.B(5)
			return 0, e
		}
		o.fnTCreate.B(6)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("timer_settime", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Timer)
		period := ar(a, 1)
		if period == 0 {
			f.B(2)
			return 0, t.Stop()
		}
		if period > rtos.TimerPeriodMax {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		t.Period = period
		if !t.Armed {
			f.B(5)
			return 0, t.Start()
		}
		return 0, rtos.OK
	})

	r.Reg("timer_delete", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			return 0, e
		}
		f.B(2)
		obj.Data.(*rtos.Timer).Armed = false
		return 0, k.Objects.Delete(obj.ID)
	})

	// Bug #15 (Table 2): the legacy timezone fixup dereferences the timeval
	// before the null check when a timezone pointer is supplied.
	r.Reg("gettimeofday", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		tvPtr := ar(a, 0)
		tzPtr := ar(a, 1)
		o.fnGTOD.Enter()
		defer o.fnGTOD.Exit()
		if tzPtr != 0 {
			o.fnGTOD.B(1)
			if tvPtr == 0 {
				o.fnGTOD.B(2)
				k.PanicFault(cpu.FaultBus, "gettimeofday: timezone fixup on null timeval")
			}
		}
		if tvPtr == 0 {
			o.fnGTOD.B(3)
			return 0, rtos.ErrInval
		}
		o.fnGTOD.B(4)
		var buf [16]byte
		now := k.Env.Clock.Now()
		binary.LittleEndian.PutUint64(buf[0:], uint64(now/1e9))
		binary.LittleEndian.PutUint64(buf[8:], uint64(now%1e9/1e3))
		k.WriteRAM(tvPtr, buf[:])
		return 0, rtos.OK
	})

	r.Reg("clock_gettime", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		clockID := uint32(ar(a, 0))
		if clockID > clockThreadCPU {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		now := uint64(k.Env.Clock.Now())
		if clockID == clockMonotonic {
			f.B(3)
			return now, rtos.OK
		}
		f.B(4)
		return now + 1_700_000_000_000_000_000, rtos.OK
	})

	// Bug #19 (Table 2): the PROCESS_CPUTIME branch writes the resolution
	// through the caller's pointer before the null check.
	r.Reg("clock_getres", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		clockID := uint32(ar(a, 0))
		resPtr := ar(a, 1)
		o.fnGetres.Enter()
		defer o.fnGetres.Exit()
		if clockID > 7 {
			o.fnGetres.B(1)
			return 0, rtos.ErrInval
		}
		if clockID == clockProcCPU {
			o.fnGetres.B(2)
			if resPtr == 0 {
				o.fnGetres.B(3)
				k.PanicFault(cpu.FaultBus, "clock_getres: resolution store through null pointer")
			}
		}
		if resPtr == 0 {
			o.fnGetres.B(4)
			return 0, rtos.ErrInval
		}
		o.fnGetres.B(5)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], 1_000_000) // 1ms tick
		k.WriteRAM(resPtr, buf[:])
		return 0, rtos.OK
	})

	r.Reg("malloc", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		p := k.Heap.Alloc(int(uint32(ar(a, 0))))
		if p == 0 {
			f.B(1)
			return 0, rtos.ErrNoMem
		}
		f.B(2)
		return p, rtos.OK
	})

	r.Reg("free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Heap.Free(ar(a, 0))
	})

	r.Reg("syslog_api", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msg := apiutil.CString(k, ar(a, 0), 128, "")
		if msg == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		k.Kprintf("%s\n", msg)
		return uint64(len(msg)), rtos.OK
	})

	r.Reg("nx_dev_open", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		h, e := o.drv.Open()
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	r.Reg("nx_dev_ioctl", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ret, e := o.drv.Ctl(uint32(ar(a, 0)), uint32(ar(a, 1)), uint32(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return ret, e
		}
		f.B(2)
		return ret, rtos.OK
	})

	r.Reg("nx_dev_close", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.drv.Close(uint32(ar(a, 0)))
	})

	r.Reg("gpio_config", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[0].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("gpio_read", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[0].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("adc_setup", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[1].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("adc_sample", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[1].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("can_ioctl_cfg", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[2].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("can_receive", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[2].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})
}
