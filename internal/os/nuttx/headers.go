package nuttx

import "github.com/eof-fuzz/eof/internal/osinfo"

// headers returns the C headers the specification generator extracts
// NuttX's Syzlang from.
func headers() []osinfo.Header {
	return []osinfo.Header{
		{Path: "include/nuttx/sched.h", Text: schedH},
		{Path: "include/nuttx/environ.h", Text: environH},
		{Path: "include/mqueue.h", Text: mqueueH},
		{Path: "include/semaphore.h", Text: semH},
		{Path: "include/time.h", Text: timeH},
		{Path: "include/stdlib.h", Text: stdlibH},
		{Path: "include/nuttx/dev_dma.h", Text: devH},
		{Path: "include/nuttx/drivers.h", Text: nxdriversH},
	}
}

const schedH = `
/**
 * Create a new task.
 * @param name task name string
 * @param priority must be between 0 and 31
 * @param stack_size must be between 128 and 65536
 * @param behavior one of {0, 1, 2, 3}
 * @return handle of type nxtask_t
 */
int task_create(const char *name, int priority, int stack_size, int behavior);

/**
 * Delete a task.
 * @param task handle of type nxtask_t
 */
int task_delete(int task);

/**
 * Sleep for some microseconds.
 * @param usec must be between 0 and 2000000
 */
int usleep(unsigned usec);

/**
 * Write a message to the system log.
 * @param message message string
 */
int syslog_api(const char *message);
`

const environH = `
/**
 * Set an environment variable.
 * @param name variable name string
 * @param value variable value string
 * @param overwrite one of {0, 1}
 */
int setenv(const char *name, const char *value, int overwrite);

/**
 * Get an environment variable.
 * @param name variable name string
 */
char *getenv(const char *name);

/**
 * Remove an environment variable.
 * @param name variable name string
 */
int unsetenv(const char *name);
`

const mqueueH = `
/**
 * Open a POSIX message queue. Names must begin with '/'.
 * @param name queue name string, one of "/mq0", "/mq1", "/control"
 * @param maxmsg must be between 1 and 256
 * @param msgsize must be between 1 and 1024
 * @return handle of type nxmq_t
 */
mqd_t mq_open(const char *name, unsigned maxmsg, unsigned msgsize);

/**
 * Send a message.
 * @param mq handle of type nxmq_t
 * @param msg buffer with the message bytes
 * @param prio must be between 0 and 31
 */
int mq_send(mqd_t mq, const char *msg, unsigned prio);

/**
 * Send a message with a timeout.
 * @param mq handle of type nxmq_t
 * @param msg buffer with the message bytes
 * @param prio must be between 0 and 63
 * @param ticks timeout in ticks
 */
int nxmq_timedsend(mqd_t mq, const char *msg, unsigned prio, unsigned ticks);

/**
 * Receive a message.
 * @param mq handle of type nxmq_t
 * @param ticks timeout in ticks
 */
ssize_t mq_receive(mqd_t mq, unsigned ticks);

/**
 * Close a message queue.
 * @param mq handle of type nxmq_t
 */
int mq_close(mqd_t mq);
`

const semH = `
/**
 * Initialise a semaphore.
 * @param value must be between 0 and 32767
 * @return handle of type nxsem_t
 */
int sem_init(unsigned value);

/**
 * Wait on a semaphore with a timeout.
 * @param sem handle of type nxsem_t
 * @param ticks timeout in ticks
 */
int sem_timedwait(sem_t *sem, unsigned ticks);

/**
 * Try to take a semaphore without blocking.
 * @param sem handle of type nxsem_t
 */
int nxsem_trywait(sem_t *sem);

/**
 * Post a semaphore.
 * @param sem handle of type nxsem_t
 */
int sem_post(sem_t *sem);

/**
 * Destroy a semaphore.
 * @param sem handle of type nxsem_t
 */
int sem_destroy(sem_t *sem);
`

const timeH = `
/**
 * Create a POSIX timer against a clock.
 * @param clockid must be between 0 and 7
 * @param behavior one of {0, 1, 2}
 * @return handle of type nxtimer_t
 */
int timer_create(clockid_t clockid, int behavior);

/**
 * Arm or disarm a POSIX timer.
 * @param timer handle of type nxtimer_t
 * @param period must be between 0 and 1048576
 */
int timer_settime(timer_t timer, unsigned period);

/**
 * Delete a POSIX timer.
 * @param timer handle of type nxtimer_t
 */
int timer_delete(timer_t timer);

/**
 * Get the current time of day.
 * @param tv buffer with the timeval bytes
 * @param tz buffer with the timezone bytes
 */
int gettimeofday(struct timeval *tv, struct timezone *tz);

/**
 * Read a clock.
 * @param clockid must be between 0 and 7
 */
int clock_gettime(clockid_t clockid);

/**
 * Get a clock's resolution.
 * @param clockid must be between 0 and 7
 * @param res buffer with the timespec bytes
 */
int clock_getres(clockid_t clockid, struct timespec *res);
`

const stdlibH = `
/**
 * Allocate heap memory.
 * @param size must be between 1 and 65536
 * @return handle of type nxmem_t
 */
void *malloc(size_t size);

/**
 * Free heap memory.
 * @param ptr handle of type nxmem_t
 */
void free(void *ptr);
`

const devH = `
/**
 * Open a session on the DMA character device.
 * @return handle of type nxdev_t
 */
int nx_dev_open(void);

/**
 * Drive the DMA character device session state machine.
 * @param session handle of type nxdev_t
 * @param cmd one of {0, 1, 2, 3, 4, 5, 6}
 * @param value must be between 0 and 1023
 */
int nx_dev_ioctl(int session, unsigned cmd, unsigned value);

/**
 * Release a DMA character device session.
 * @param session handle of type nxdev_t
 */
int nx_dev_close(int session);
`

const nxdriversH = `
/**
 * Configure the GPIO bank.
 * @param mode bitmask of nx_periph_mode
 * @flags nx_periph_mode ENABLE=1 IRQ=2 DMA=4 LOWPOWER=8 PSC1=256 PSC2=512 PSC3=768
 */
int gpio_config(unsigned mode);

/**
 * Read a channel of the GPIO bank.
 * @param channel must be between 0 and 31
 */
long gpio_read(unsigned channel);

/**
 * Configure the ADC.
 * @param mode bitmask of nx_periph_mode
 */
int adc_setup(unsigned mode);

/**
 * Read a channel of the ADC.
 * @param channel must be between 0 and 31
 */
long adc_sample(unsigned channel);

/**
 * Configure the CAN controller.
 * @param mode bitmask of nx_periph_mode
 */
int can_ioctl_cfg(unsigned mode);

/**
 * Read a channel of the CAN controller.
 * @param channel must be between 0 and 31
 */
long can_receive(unsigned channel);
`
