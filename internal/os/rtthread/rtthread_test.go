package rtthread_test

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/rtthread"
	"github.com/eof-fuzz/eof/internal/ostest"
)

func rig(t *testing.T) *ostest.Rig {
	return ostest.New(t, rtthread.Info(), boards.ESP32C3())
}

// Each planted RT-Thread bug (Table 2, #5–#12) must trigger exactly under
// its documented condition and be attributable to the expected function.

func TestBug5ObjectGetTypeAssert(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_sem_create", ostest.Imm(1)),
		r.Call("rt_sem_delete", ostest.Ref(0)),
		r.Call("rt_object_get_type", ostest.Ref(0)),
	)
	out.ExpectAssertHang(t, "obj->type != RT_Object_Class_Null")
}

func TestBug6ObjectFindWildList(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("rt_object_find", ostest.Str("uart0"), ostest.Imm(11)))
	out.ExpectFault(t, cpu.FaultBus, "rt_list_isempty")
}

func TestBug7MpAllocAfterDelete(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_mp_create", ostest.Str("mp"), ostest.Imm(4), ostest.Imm(32)),
		r.Call("rt_mp_delete", ostest.Ref(0)),
		r.Call("rt_mp_alloc", ostest.Ref(0), ostest.Imm(5)),
	)
	out.ExpectFault(t, cpu.FaultPanic, "rt_mp_alloc")
}

func TestBug7FastPathIsSafe(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_mp_create", ostest.Str("mp"), ostest.Imm(4), ostest.Imm(32)),
		r.Call("rt_mp_delete", ostest.Ref(0)),
		r.Call("rt_mp_alloc", ostest.Ref(0), ostest.Imm(0)), // non-blocking: validated
	)
	if !out.Completed {
		t.Fatalf("fast path crashed: %+v", out)
	}
}

func TestBug8ObjectInitAssert(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("rt_object_init", ostest.Str("x"), ostest.Imm(0)))
	out.ExpectAssertHang(t, "type != RT_Object_Class_Null")
}

func TestBug9ReallocLockPanic(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_malloc", ostest.Imm(64)),
		r.Call("rt_realloc", ostest.Ref(0), ostest.Imm(0x20000)),
	)
	out.ExpectFault(t, cpu.FaultPanic, "_heap_lock")
}

func TestBug10EventSendBit31(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_event_create"),
		r.Call("rt_event_send", ostest.Ref(0), ostest.Imm(0x80000000)),
	)
	out.ExpectFault(t, cpu.FaultBus, "rt_event_send")
}

func TestBug11SmemSetnameOverflow(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_malloc", ostest.Imm(8)),
		r.Call("rt_smem_setname", ostest.Ref(0), ostest.Str("way-too-long-name-for-8")),
	)
	out.ExpectFault(t, cpu.FaultUsage, "rt_smem_setname")
}

func TestBug12SerialWriteAfterUnregister(t *testing.T) {
	r := rig(t)
	// Unregister the console device, then create a socket: the creation log
	// dies in _serial_poll_tx (the paper's Figure 6).
	out := r.Run(
		r.Call("rt_device_unregister", ostest.Str("uart0")),
		r.Call("syz_create_bind_socket", ostest.Imm(2), ostest.Imm(1), ostest.Imm(0), ostest.Imm(0)),
	)
	out.ExpectFault(t, cpu.FaultBus, "_serial_poll_tx")
	// The backtrace reproduces the Figure-6 chain.
	want := []string{"_serial_poll_tx", "rt_serial_write", "rt_device_write", "_kputs", "rt_kprintf", "sal_socket"}
	for i, fn := range want {
		if i >= len(out.Fault.Frames) || out.Fault.Frames[i].Func != fn {
			t.Fatalf("frame %d = %v, want %s (frames %v)", i, out.Fault.Frames, fn, out.Fault.Frames)
		}
	}
}

func TestBug12SerialCtrlBrokenBaud(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_serial_ctrl", ostest.Imm(2), ostest.Imm(12345)), // non-standard baud
		r.Call("rt_kprintf_api", ostest.Str("hello")),
	)
	out.ExpectFault(t, cpu.FaultBus, "_serial_poll_tx")
}

func TestHappyPathsComplete(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_thread_create", ostest.Str("worker"), ostest.Imm(5), ostest.Imm(512), ostest.Imm(1)),
		r.Call("rt_mq_create", ostest.Imm(16), ostest.Imm(4)),
		r.Call("rt_mq_send", ostest.Ref(1), ostest.Blob([]byte("0123456789abcdef")), ostest.Imm(16)),
		r.Call("rt_mq_recv", ostest.Ref(1), ostest.Imm(5)),
		r.Call("rt_sem_create", ostest.Imm(2)),
		r.Call("rt_sem_take", ostest.Ref(4), ostest.Imm(5)),
		r.Call("rt_sem_release", ostest.Ref(4)),
		r.Call("rt_kprintf_api", ostest.Str("alive")),
	)
	if !out.Completed || out.Result.Executed != 8 || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestSocketRequiresRadio(t *testing.T) {
	// On the STM32 board (socket stack present via Ethernet) creation works;
	// Table-1 style capability checks live elsewhere — here we check the
	// ESP32 happy path plus the invalid-family log path.
	r := rig(t)
	out := r.Run(r.Call("syz_create_bind_socket", ostest.Imm(0xbc78), ostest.Imm(1), ostest.Imm(0), ostest.Imm(0)))
	if !out.Completed {
		t.Fatalf("invalid family should complete with an error: %+v", out)
	}
	found := false
	for _, l := range out.UART {
		if l == "sal_socket: unsupported address family 0xbc78" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sal log missing: %v", out.UART)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("rt_event_create"),
		r.Call("rt_event_send", ostest.Ref(0), ostest.Imm(0x80000000)),
	)
	if out.Fault == nil {
		t.Fatal("no crash")
	}
	r.Restore()
	out = r.Run(r.Call("rt_memory_info"))
	if !out.Completed {
		t.Fatalf("post-restore run failed: %+v", out)
	}
}
