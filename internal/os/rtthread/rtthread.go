// Package rtthread is the RT-Thread personality. It carries eight of the
// paper's Table-2 bugs (#5–#12), including the case-study serial-write crash
// of Figure 6: unregistering (or misconfiguring) the console serial device
// leaves the kernel's cached device pointer dangling, and the next logging
// call — e.g. from socket creation — dies in _serial_poll_tx.
package rtthread

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/apiutil"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Name is the canonical OS identifier.
const Name = "rtthread"

// Version matches the paper's evaluated revision.
const Version = "2f55990"

const partTable = `# name, type, offset, size
bootloader, app, 0x0, 0x10000
kernel, app, 0x10000, 0x300000
nvs, data, 0x310000, 0x10000
`

// RT-Thread object class codes (rt_object_class_type).
const (
	classNull = iota
	classThread
	classSemaphore
	classMutex
	classEvent
	classMailBox
	classMsgQueue
	classMemPool
	classDevice
	classTimer
	classCount
)

// rtForever is RT_WAITING_FOREVER as a 32-bit value.
const rtForever = 0xFFFFFFFF

// staticObject is the registry record of an rt_object_init object.
type staticObject struct {
	class uint32
}

// OS is one booted RT-Thread instance.
type OS struct {
	drv     *rtos.Driver
	periphs []*rtos.Periph
	env     *board.Env
	k       *rtos.Kernel
	reg     *apiutil.Registrar

	// Console chain functions, matching Figure 6's files and lines.
	fnKprintf   *rtos.Fn
	fnKputs     *rtos.Fn
	fnDevWrite  *rtos.Fn
	fnSerWrite  *rtos.Fn
	fnPollTx    *rtos.Fn
	fnException *rtos.Fn
	fnListEmpty *rtos.Fn
	fnSalSocket *rtos.Fn
	fnSocket    *rtos.Fn

	console       *rtos.Device // cached console device (can go stale: bug #12)
	serialBroken  bool         // incomplete re-init left the port half-configured
	staticObjects int
}

// Info returns the host-visible build description.
func Info() *osinfo.Info {
	return &osinfo.Info{
		Name:               Name,
		Display:            "RT-Thread",
		Version:            Version,
		PartTableText:      partTable,
		Builder:            Build,
		ExceptionSyms:      []string{"common_exception"},
		Headers:            headers(),
		APINames:           apiOrder(),
		BaseCodeBytes:      2_470_000,
		BytesPerBlock:      64,
		InstrBytesPerBlock: 296,
		BuildID:            0x2F559901,
	}
}

// serialOps is the console UART driver.
type serialOps struct{ o *OS }

func (s serialOps) Open(k *rtos.Kernel, flags uint32) rtos.Errno { return rtos.OK }
func (s serialOps) Close(k *rtos.Kernel) rtos.Errno              { return rtos.OK }
func (s serialOps) Write(k *rtos.Kernel, data []byte) (int, rtos.Errno) {
	k.Env.UART.WriteString(string(data))
	return len(data), rtos.OK
}
func (s serialOps) Read(k *rtos.Kernel, n int) ([]byte, rtos.Errno) { return nil, rtos.ErrEmpty }
func (s serialOps) Control(k *rtos.Kernel, cmd, arg uint64) rtos.Errno {
	return rtos.OK
}

// Build constructs the RT-Thread firmware.
func Build(env *board.Env) (board.Firmware, error) {
	k := rtos.NewKernel(env, "RT-Thread")
	k.InitSched("rt_tick_increase", "rt_schedule", "rt_hw_context_switch", "src/scheduler.c")

	heapBase := env.ScratchBase + agent.ArenaSize
	heapEnd := env.RAM.End() - 4096
	if heapBase+16*1024 > heapEnd {
		return nil, fmt.Errorf("rtthread: RAM too small for heap")
	}
	k.NewHeap(heapBase, int(heapEnd-heapBase), "rt_smem_alloc", "rt_smem_free", "_heap_lock", "src/mem.c")

	o := &OS{env: env, k: k}
	o.fnException = k.Fn("common_exception", "libcpu/exception.c", 40, 2)
	o.fnKprintf = k.Fn("rt_kprintf", "src/kservice.c", 345, 3)
	o.fnKputs = k.Fn("_kputs", "src/kservice.c", 294, 2)
	o.fnDevWrite = k.Fn("rt_device_write", "src/device.c", 390, 3)
	o.fnSerWrite = k.Fn("rt_serial_write", "components/drivers/serial/serial.c", 910, 4)
	o.fnPollTx = k.Fn("_serial_poll_tx", "components/drivers/serial/serial.c", 860, 3)
	o.fnListEmpty = k.Fn("rt_list_isempty", "include/rtservice.h", 110, 2)
	o.fnSalSocket = k.Fn("sal_socket", "components/net/sal/sal_socket.c", 1050, 8)
	o.fnSocket = k.Fn("socket", "components/net/netdev/net_sockets.c", 240, 4)
	k.ExceptionFn = o.fnException
	k.ConsoleWrite = o.consoleWrite

	// Register the console serial port and cache the device pointer, as
	// rt_console_set_device does.
	dev, e := k.Devices.Register("uart0", serialOps{o: o}, rtos.DevFlagRead|rtos.DevFlagWrite|rtos.DevFlagStream)
	if e.Failed() {
		return nil, fmt.Errorf("rtthread: console register: %v", e)
	}
	o.console = dev
	if _, e := k.Devices.Register("uart1", serialOps{o: o}, rtos.DevFlagWrite); e.Failed() {
		return nil, fmt.Errorf("rtthread: uart1 register: %v", e)
	}

	o.reg = &apiutil.Registrar{K: k, File: "src/rtthread_api.c"}
	o.drv = k.NewDriver("dma", "rt_sensor_open", "rt_sensor_control", "rt_sensor_close", "components/drivers/sensor/sensor.c")
	o.periphs = append(o.periphs, k.NewPeriph("gpio", "rt_pin_mode", "rt_pin_read", "components/drivers/pin/pin.c"))
	o.periphs = append(o.periphs, k.NewPeriph("wifi", "rt_wlan_config", "rt_wlan_scan", "components/drivers/wlan/wlan.c"))
	o.buildTable()
	if got := o.reg.Names(); len(got) != len(apiOrder()) {
		return nil, fmt.Errorf("rtthread: API table drift: %d registered, %d declared", len(got), len(apiOrder()))
	}
	for i, n := range o.reg.Names() {
		if n != apiOrder()[i] {
			return nil, fmt.Errorf("rtthread: API order drift at %d: %s != %s", i, n, apiOrder()[i])
		}
	}
	return agent.New(env, o), nil
}

// consoleWrite is the Figure-6 logging chain: rt_kprintf → _kputs →
// rt_device_write → rt_serial_write → _serial_poll_tx. A stale console
// device or a half-configured port faults at the bottom of the chain
// (Table 2 bug #12).
func (o *OS) consoleWrite(s string) {
	o.fnKprintf.Enter()
	defer o.fnKprintf.Exit()
	o.fnKprintf.B(1)
	o.fnKputs.Enter()
	defer o.fnKputs.Exit()
	o.fnKputs.B(1)
	o.fnDevWrite.Enter()
	defer o.fnDevWrite.Exit()
	o.fnDevWrite.B(1)
	o.fnSerWrite.Enter()
	defer o.fnSerWrite.Exit()
	o.fnSerWrite.B(1)
	o.fnPollTx.Enter()
	defer o.fnPollTx.Exit()
	// RT_ASSERT(serial != RT_NULL) passes — the pointer is non-NULL, merely
	// dangling — and the subsequent field access dies.
	if o.console == nil || o.console.Stale {
		o.fnPollTx.B(1)
		o.k.PanicFault(cpu.FaultBus, "_serial_poll_tx: access to unregistered serial device")
	}
	if o.serialBroken {
		o.fnPollTx.B(1)
		o.k.PanicFault(cpu.FaultBus, "_serial_poll_tx: serial ops not configured")
	}
	o.fnPollTx.B(2)
	if o.console.OpenFlag&rtos.DevFlagStream != 0 {
		// Stream mode: '\n' → '\r\n' translation (the open_flag branch the
		// case study's code excerpt shows).
		o.console.Ops.Write(o.k, []byte(s))
	} else {
		o.console.Ops.Write(o.k, []byte(s))
	}
}

// Name implements agent.Target.
func (o *OS) Name() string { return Name }

// Kernel implements agent.Target.
func (o *OS) Kernel() *rtos.Kernel { return o.k }

// APIs implements agent.Target.
func (o *OS) APIs() []agent.API { return o.reg.Table }

func apiOrder() []string {
	return []string{
		"rt_thread_create", "rt_thread_delete", "rt_thread_mdelay",
		"rt_thread_suspend", "rt_thread_resume", "rt_thread_control",
		"rt_object_get_type", "rt_object_init", "rt_object_find",
		"rt_mb_create", "rt_mb_send", "rt_mb_recv", "rt_mb_delete",
		"rt_mq_create", "rt_mq_send", "rt_mq_recv", "rt_mq_delete",
		"rt_sem_create", "rt_sem_take", "rt_sem_release", "rt_sem_delete",
		"rt_mutex_create", "rt_mutex_take", "rt_mutex_release",
		"rt_event_create", "rt_event_send", "rt_event_recv",
		"rt_mp_create", "rt_mp_alloc", "rt_mp_free", "rt_mp_delete",
		"rt_malloc", "rt_free", "rt_realloc", "rt_smem_setname", "rt_memory_info",
		"rt_device_find", "rt_device_open", "rt_device_write_api", "rt_device_close",
		"rt_device_unregister", "rt_serial_ctrl",
		"rt_kprintf_api",
		"syz_create_bind_socket",
		"rt_timer_create", "rt_timer_start", "rt_timer_stop",
		"rt_sensor_open", "rt_sensor_control", "rt_sensor_close",
		"rt_pin_mode", "rt_pin_read", "rt_wlan_config", "rt_wlan_scan",
	}
}

func (o *OS) timeout(v uint64) int { return apiutil.Timeout32(v, rtForever) }

func (o *OS) buildTable() {
	k := o.k
	r := o.reg
	ar := apiutil.Arg

	r.Reg("rt_thread_create", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 8, "tshell")
		prio := int(uint32(ar(a, 1)))
		stack := int(uint32(ar(a, 2)))
		if prio > rtos.PrioMin {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		obj, e := k.Sched.Create(name, prio, stack, int(ar(a, 3)))
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_thread_delete", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		obj.Data.(*rtos.Task).State = rtos.TaskDead
		return 0, k.Objects.Delete(obj.ID)
	})

	r.Reg("rt_thread_mdelay", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ms := uint32(ar(a, 0))
		if ms == 0 {
			f.B(1)
			return 0, rtos.OK
		}
		if ms > 5000 {
			f.B(2)
			ms = 5000
		}
		f.B(3)
		k.Sleep(int(ms)) // 1ms tick
		return 0, rtos.OK
	})

	r.Reg("rt_thread_suspend", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State == rtos.TaskDead {
			f.B(2)
			return 0, rtos.ErrState
		}
		f.B(3)
		t.State = rtos.TaskSuspended
		return 0, rtos.OK
	})

	r.Reg("rt_thread_resume", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State != rtos.TaskSuspended {
			f.B(2)
			return 0, rtos.ErrState
		}
		f.B(3)
		t.State = rtos.TaskReady
		return 0, rtos.OK
	})

	r.Reg("rt_thread_control", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		switch cmd := uint32(ar(a, 1)); cmd {
		case 0: // GET_PRIO
			f.B(2)
			return uint64(t.Prio), rtos.OK
		case 1: // SET_PRIO
			prio := int(uint32(ar(a, 2)))
			if prio > rtos.PrioMin {
				f.B(3)
				return 0, rtos.ErrInval
			}
			f.B(4)
			t.Prio, t.BasePrio = prio, prio
			return 0, rtos.OK
		case 2: // GET_RUNCOUNT
			f.B(5)
			return t.RunCount, rtos.OK
		default:
			f.B(6)
			return 0, rtos.ErrNoSys
		}
	})

	// Bug #5 (Table 2): rt_object_get_type on a deleted object handle — the
	// control block's type field was cleared at delete, and RT_ASSERT fires,
	// hanging the system (log-monitor detectable only).
	r.Reg("rt_object_get_type", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj := k.Objects.Get(uint32(ar(a, 0)))
		if obj == nil {
			f.B(1)
			return 0, rtos.ErrNotFound
		}
		f.B(2)
		if !obj.Alive {
			f.B(3)
			k.Assert(false, "obj->type != RT_Object_Class_Null")
		}
		f.B(4)
		if so, ok := obj.Data.(staticObject); ok {
			return uint64(so.class), rtos.OK
		}
		return uint64(o.classOf(obj.Type)), rtos.OK
	})

	// Bug #8 (Table 2): rt_object_init with class RT_Object_Class_Null —
	// the init path asserts on the class code instead of returning an error.
	r.Reg("rt_object_init", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 8, "object")
		class := uint32(ar(a, 1))
		if class == classNull {
			f.B(1)
			k.Assert(false, "type != RT_Object_Class_Null")
		}
		f.B(2)
		if class >= classCount {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		o.staticObjects++
		// Statically initialised objects carry only their class code; they
		// are registry entries, not full control blocks, so they stay out of
		// the typed-handle namespace.
		obj := k.Objects.New(rtos.ObjNone, name, staticObject{class: class})
		return uint64(obj.ID), rtos.OK
	})

	// Bug #6 (Table 2): rt_object_find indexes the per-class container list
	// with an unchecked upper bound; a class code past the table walks a
	// wild list head inside rt_list_isempty.
	r.Reg("rt_object_find", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 8, "")
		class := uint32(ar(a, 1))
		if class == classNull {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		o.fnListEmpty.Enter()
		if class >= classCount {
			o.fnListEmpty.B(1)
			k.PanicFault(cpu.FaultBus, fmt.Sprintf(
				"rt_list_isempty: wild container list for class %d", class))
		}
		o.fnListEmpty.Exit()
		f.B(3)
		if name == "" {
			f.B(4)
			return 0, rtos.ErrInval
		}
		for _, dn := range k.Devices.Names() {
			if dn == name {
				f.B(5)
				return uint64(k.Devices.Find(name).Obj.ID), rtos.OK
			}
		}
		f.B(6)
		return 0, rtos.ErrNotFound
	})

	r.Reg("rt_mb_create", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		size := int(uint32(ar(a, 0)))
		obj, e := k.NewQueue("mailbox", 8, size)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_mb_send", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		var cell [8]byte
		v := ar(a, 1)
		for i := range cell {
			cell[i] = byte(v >> (8 * i))
		}
		if e := q.Send(cell[:], 0); e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		return 0, rtos.OK
	})

	r.Reg("rt_mb_recv", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		item, e := obj.Data.(*rtos.Queue).Recv(o.timeout(ar(a, 1)))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	r.Reg("rt_mb_delete", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Queue).Destroy()
	})

	r.Reg("rt_mq_create", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msgSize := int(uint32(ar(a, 0)))
		maxMsgs := int(uint32(ar(a, 1)))
		obj, e := k.NewQueue("msgqueue", msgSize, maxMsgs)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_mq_send", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		ptr := ar(a, 1)
		if ptr == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		item := k.ReadRAM(ptr, q.ItemSize)
		if e := q.Send(item, 0); e.Failed() {
			f.B(4)
			return 0, e
		}
		f.B(5)
		return 0, rtos.OK
	})

	r.Reg("rt_mq_recv", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		item, e := obj.Data.(*rtos.Queue).Recv(o.timeout(ar(a, 1)))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	r.Reg("rt_mq_delete", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Queue).Destroy()
	})

	r.Reg("rt_sem_create", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewSemaphore("sem", int(uint32(ar(a, 0))), 65535)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_sem_take", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Take(o.timeout(ar(a, 1)))
	})

	r.Reg("rt_sem_release", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Give()
	})

	r.Reg("rt_sem_delete", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Objects.Delete(uint32(ar(a, 0)))
	})

	r.Reg("rt_mutex_create", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewMutex("mutex", true)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_mutex_take", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjMutex)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Mutex).Lock(o.timeout(ar(a, 1)))
	})

	r.Reg("rt_mutex_release", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjMutex)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Mutex).Unlock()
	})

	r.Reg("rt_event_create", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewEvent("event")
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	// Bug #10 (Table 2): rt_event_send scans waiter bits 1..32 — setting
	// bit 31 drives the scan one past the per-bit waiter table.
	r.Reg("rt_event_send", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		set := uint32(ar(a, 1))
		if set == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		if set&0x8000_0000 != 0 {
			f.B(4)
			k.PanicFault(cpu.FaultBus, "rt_event_send: waiter table overrun (bit 31)")
		}
		f.B(5)
		return 0, obj.Data.(*rtos.Event).Send(set)
	})

	r.Reg("rt_event_recv", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		var opts uint32
		if ar(a, 2)&1 != 0 {
			f.B(2)
			opts |= rtos.EvtAll
		}
		if ar(a, 2)&2 != 0 {
			f.B(3)
			opts |= rtos.EvtClear
		}
		got, e := obj.Data.(*rtos.Event).Recv(uint32(ar(a, 1)), opts, o.timeout(ar(a, 3)))
		if e.Failed() {
			f.B(4)
			return 0, e
		}
		f.B(5)
		return uint64(got), rtos.OK
	})

	r.Reg("rt_mp_create", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 8, "mp")
		count := int(uint32(ar(a, 1)))
		size := int(uint32(ar(a, 2)))
		obj, e := k.NewPool(name, size, count, "rt_mp_alloc_impl", "rt_mp_free_impl", "src/mempool.c")
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	// Bug #7 (Table 2): the blocking path of rt_mp_alloc skips the liveness
	// check the non-blocking path performs; allocating from a deleted pool
	// with a timeout dereferences the freed control block.
	r.Reg("rt_mp_alloc", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj := k.Objects.Get(uint32(ar(a, 0)))
		if obj == nil || obj.Type != rtos.ObjPool {
			f.B(1)
			return 0, rtos.ErrNotFound
		}
		timeout := o.timeout(ar(a, 1))
		if timeout == 0 {
			f.B(2)
			if !obj.Alive {
				f.B(3)
				return 0, rtos.ErrState
			}
		} else {
			f.B(4)
			if !obj.Alive {
				f.B(5)
				k.PanicFault(cpu.FaultPanic, "rt_mp_alloc: control block freed during wait")
			}
		}
		p := obj.Data.(*rtos.Pool)
		addr, e := p.Alloc(timeout)
		if e.Failed() {
			f.B(6)
			return 0, e
		}
		f.B(7)
		return addr, rtos.OK
	})

	r.Reg("rt_mp_free", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjPool)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Pool).Free(ar(a, 1))
	})

	r.Reg("rt_mp_delete", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjPool)
		if e.Failed() {
			return 0, e
		}
		f.B(2)
		return 0, k.Objects.Delete(obj.ID)
	})

	r.Reg("rt_malloc", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		p := k.Heap.Alloc(int(uint32(ar(a, 0))))
		if p == 0 {
			f.B(1)
			return 0, rtos.ErrNoMem
		}
		f.B(2)
		return p, rtos.OK
	})

	r.Reg("rt_free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Heap.Free(ar(a, 0))
	})

	// Bug #9 (Table 2): rt_realloc's too-large path releases the heap lock
	// on both the error return and the common epilogue — the unbalanced
	// release is detected inside _heap_lock.
	r.Reg("rt_realloc", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ptr := ar(a, 0)
		newSize := int(uint32(ar(a, 1)))
		payload := k.Heap.BlockPayload(ptr)
		if payload < 0 {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		if newSize == 0 {
			f.B(3)
			return 0, k.Heap.Free(ptr)
		}
		if newSize > 0x10000 {
			f.B(4)
			k.Heap.PanicInLock(cpu.FaultPanic, "_heap_lock: unbalanced lock release in rt_realloc")
		}
		if newSize <= payload {
			f.B(5)
			return ptr, rtos.OK
		}
		f.B(6)
		np := k.Heap.Alloc(newSize)
		if np == 0 {
			f.B(7)
			return 0, rtos.ErrNoMem
		}
		data := k.ReadRAM(ptr, payload)
		k.WriteRAM(np, data)
		k.Heap.Free(ptr)
		return np, rtos.OK
	})

	// Bug #11 (Table 2): rt_smem_setname copies the caller's name with a
	// fixed 16-byte loop; on a block smaller than that the copy runs into
	// the next block's header.
	r.Reg("rt_smem_setname", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ptr := ar(a, 0)
		name := apiutil.CString(k, ar(a, 1), 32, "")
		payload := k.Heap.BlockPayload(ptr)
		if payload < 0 {
			f.B(1)
			return 0, rtos.ErrInval
		}
		if name == "" {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		if len(name) > payload {
			f.B(4)
			k.Heap.CorruptAfter(ptr, len(name)-payload, 0x00)
			k.PanicFault(cpu.FaultUsage, "rt_smem_setname: name copy past block end")
		}
		f.B(5)
		var tag uint32
		for i := 0; i < len(name) && i < 4; i++ {
			tag |= uint32(name[i]) << (8 * i)
		}
		k.Heap.SetNameTag(ptr, tag)
		return 0, rtos.OK
	})

	r.Reg("rt_memory_info", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		_, _, free := k.Heap.Stats()
		return uint64(free), rtos.OK
	})

	r.Reg("rt_device_find", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 16, "")
		dev := k.Devices.Find(name)
		if dev == nil {
			f.B(1)
			return 0, rtos.ErrNotFound
		}
		f.B(2)
		return uint64(dev.Obj.ID), rtos.OK
	})

	r.Reg("rt_device_open", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		dev, e := o.deviceByID(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, k.Devices.Open(dev, uint32(ar(a, 1)))
	})

	r.Reg("rt_device_write_api", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		dev, e := o.deviceByID(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		data := apiutil.Bytes(k, ar(a, 1), int(uint32(ar(a, 2))), 512)
		if len(data) == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		n, e2 := dev.Ops.Write(k, data)
		return uint64(n), e2
	})

	r.Reg("rt_device_close", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		dev, e := o.deviceByID(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, k.Devices.Close(dev)
	})

	// rt_device_unregister is half of bug #12's setup: pulling the console
	// device out from under the kernel's cached pointer.
	r.Reg("rt_device_unregister", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 16, "")
		if name == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		e := k.Devices.Unregister(name)
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return 0, rtos.OK
	})

	// rt_serial_ctrl is the other half: a reconfigure with a non-standard
	// baud rate leaves the port half-initialised (ops table cleared but no
	// error reported) — the "incomplete init" variant of bug #12.
	r.Reg("rt_serial_ctrl", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		cmd := uint32(ar(a, 0))
		val := uint32(ar(a, 1))
		switch cmd {
		case 1: // FLUSH
			f.B(1)
			return 0, rtos.OK
		case 2: // RECONFIG
			f.B(2)
			switch val {
			case 9600, 19200, 38400, 57600, 115200:
				f.B(3)
				o.serialBroken = false
				return 0, rtos.OK
			default:
				f.B(4)
				o.serialBroken = true // silently half-configured
				return 0, rtos.OK
			}
		case 3: // LOOPBACK toggle
			f.B(5)
			return 0, rtos.OK
		default:
			f.B(6)
			return 0, rtos.ErrNoSys
		}
	})

	r.Reg("rt_kprintf_api", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msg := apiutil.CString(k, ar(a, 0), 128, "")
		if msg == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		k.Kprintf("%s\n", msg)
		return uint64(len(msg)), rtos.OK
	})

	r.Reg("syz_create_bind_socket", 6, o.syzCreateBindSocket)

	r.Reg("rt_timer_create", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewTimer("timer", ar(a, 0), ar(a, 1)&1 == 0, int(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("rt_timer_start", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Timer).Start()
	})

	r.Reg("rt_timer_stop", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Timer).Stop()
	})

	r.Reg("rt_sensor_open", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		h, e := o.drv.Open()
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	r.Reg("rt_sensor_control", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ret, e := o.drv.Ctl(uint32(ar(a, 0)), uint32(ar(a, 1)), uint32(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return ret, e
		}
		f.B(2)
		return ret, rtos.OK
	})

	r.Reg("rt_sensor_close", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.drv.Close(uint32(ar(a, 0)))
	})

	r.Reg("rt_pin_mode", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[0].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("rt_pin_read", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[0].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("rt_wlan_config", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[1].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("rt_wlan_scan", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[1].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})
}

// syzCreateBindSocket is the pseudo-syscall of Figure 6: create a socket and
// bind it. Error paths and the success path both log over the console —
// which is what detonates bug #12 when the serial device is stale.
func (o *OS) syzCreateBindSocket(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
	k := o.k
	domain := uint32(apiutil.Arg(a, 0))
	typ := uint32(apiutil.Arg(a, 1))
	proto := uint32(apiutil.Arg(a, 2))
	addrPtr := apiutil.Arg(a, 3)

	o.fnSocket.Enter()
	defer o.fnSocket.Exit()
	o.fnSocket.B(1)
	o.fnSalSocket.Enter()
	defer o.fnSalSocket.Exit()

	if !o.env.Spec.HasPeripheral("socket") {
		o.fnSalSocket.B(1)
		return 0, rtos.ErrNoDev
	}
	o.fnSalSocket.B(2)
	if domain != 2 { // AF_INET
		o.fnSalSocket.B(3)
		k.Kprintf("sal_socket: unsupported address family %#x\n", domain)
		return 0, rtos.ErrInval
	}
	if typ != 1 && typ != 2 { // SOCK_STREAM / SOCK_DGRAM
		o.fnSalSocket.B(4)
		return 0, rtos.ErrInval
	}
	if proto > 17 {
		o.fnSalSocket.B(5)
		return 0, rtos.ErrInval
	}
	o.fnSalSocket.B(6)
	sock := k.Objects.New(rtos.ObjSocket, "socket", typ)
	k.Kprintf("sal_socket: socket %d created (type %d)\n", sock.ID, typ)

	if addrPtr != 0 {
		o.fnSalSocket.B(7)
		raw := k.ReadRAM(addrPtr, 4)
		port := uint16(raw[0]) | uint16(raw[1])<<8
		if port == 0 {
			f.B(1)
			return uint64(sock.ID), rtos.ErrInval
		}
		f.B(2)
		k.Kprintf("sal_socket: socket %d bound to port %d\n", sock.ID, port)
	}
	f.B(3)
	return uint64(sock.ID), rtos.OK
}

func (o *OS) deviceByID(id uint32) (*rtos.Device, rtos.Errno) {
	obj, e := o.k.Objects.GetTyped(id, rtos.ObjDevice)
	if e.Failed() {
		return nil, e
	}
	return obj.Data.(*rtos.Device), rtos.OK
}

func (o *OS) classOf(t rtos.ObjType) uint32 {
	switch t {
	case rtos.ObjTask:
		return classThread
	case rtos.ObjSem:
		return classSemaphore
	case rtos.ObjMutex:
		return classMutex
	case rtos.ObjEvent:
		return classEvent
	case rtos.ObjQueue:
		return classMsgQueue
	case rtos.ObjPool:
		return classMemPool
	case rtos.ObjDevice:
		return classDevice
	case rtos.ObjTimer:
		return classTimer
	default:
		return classNull
	}
}

func (o *OS) objTypeOf(class uint32) rtos.ObjType {
	switch class {
	case classThread:
		return rtos.ObjTask
	case classSemaphore:
		return rtos.ObjSem
	case classMutex:
		return rtos.ObjMutex
	case classEvent:
		return rtos.ObjEvent
	case classMailBox, classMsgQueue:
		return rtos.ObjQueue
	case classMemPool:
		return rtos.ObjPool
	case classDevice:
		return rtos.ObjDevice
	case classTimer:
		return rtos.ObjTimer
	default:
		return rtos.ObjNone
	}
}
