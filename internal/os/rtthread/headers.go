package rtthread

import "github.com/eof-fuzz/eof/internal/osinfo"

// headers returns the C headers the specification generator extracts
// RT-Thread's Syzlang from.
func headers() []osinfo.Header {
	return []osinfo.Header{
		{Path: "include/rtthread_thread.h", Text: threadH},
		{Path: "include/rtthread_object.h", Text: objectH},
		{Path: "include/rtthread_ipc.h", Text: ipcH},
		{Path: "include/rtthread_mem.h", Text: memH},
		{Path: "include/rtthread_device.h", Text: deviceH},
		{Path: "include/rtthread_net.h", Text: netH},
		{Path: "include/rtthread_timer.h", Text: timerH},
		{Path: "include/rtthread_sensor.h", Text: sensorH},
		{Path: "include/rtthread_drivers.h", Text: rtdriversH},
	}
}

const threadH = `
/**
 * Create a thread.
 * @param name thread name string
 * @param priority must be between 0 and 31
 * @param stack_size must be between 128 and 65536
 * @param behavior one of {0, 1, 2, 3}
 * @return handle of type thread_t
 */
rt_thread_t rt_thread_create(const char *name, unsigned priority, unsigned stack_size, int behavior);

/**
 * Delete a thread.
 * @param thread handle of type thread_t
 */
rt_err_t rt_thread_delete(rt_thread_t thread);

/**
 * Sleep for some milliseconds.
 * @param ms must be between 0 and 5000
 */
rt_err_t rt_thread_mdelay(unsigned ms);

/**
 * Suspend a thread.
 * @param thread handle of type thread_t
 */
rt_err_t rt_thread_suspend(rt_thread_t thread);

/**
 * Resume a suspended thread.
 * @param thread handle of type thread_t
 */
rt_err_t rt_thread_resume(rt_thread_t thread);

/**
 * Control a thread.
 * @param thread handle of type thread_t
 * @param cmd one of {0, 1, 2}
 * @param value must be between 0 and 31
 */
rt_err_t rt_thread_control(rt_thread_t thread, unsigned cmd, unsigned value);
`

const objectH = `
/**
 * Query the class of a kernel object.
 * @param object handle of type thread_t
 */
unsigned rt_object_get_type(rt_object_t object);

/**
 * Initialise a static kernel object.
 * @param name object name string
 * @param class must be between 0 and 9
 * @return handle of type thread_t
 */
rt_err_t rt_object_init(const char *name, unsigned class);

/**
 * Find a kernel object by name and class.
 * @param name device name string, one of "uart0", "uart1", "spi0"
 * @param class must be between 0 and 12
 */
rt_object_t rt_object_find(const char *name, unsigned class);
`

const ipcH = `
/**
 * Create a mailbox.
 * @param size must be between 1 and 256
 * @return handle of type mailbox_t
 */
rt_mailbox_t rt_mb_create(unsigned size);

/**
 * Send a word to a mailbox.
 * @param mb handle of type mailbox_t
 * @param value mailbox word
 */
rt_err_t rt_mb_send(rt_mailbox_t mb, unsigned long value);

/**
 * Receive a word from a mailbox.
 * @param mb handle of type mailbox_t
 * @param ticks timeout in ticks
 */
rt_err_t rt_mb_recv(rt_mailbox_t mb, unsigned ticks);

/**
 * Delete a mailbox.
 * @param mb handle of type mailbox_t
 */
rt_err_t rt_mb_delete(rt_mailbox_t mb);

/**
 * Create a message queue.
 * @param msg_size must be between 1 and 1024
 * @param max_msgs must be between 1 and 256
 * @return handle of type msgqueue_t
 */
rt_mq_t rt_mq_create(unsigned msg_size, unsigned max_msgs);

/**
 * Send a message to a queue.
 * @param mq handle of type msgqueue_t
 * @param buffer buffer with the message bytes
 * @param size length of buffer
 */
rt_err_t rt_mq_send(rt_mq_t mq, const void *buffer, unsigned size);

/**
 * Receive a message from a queue.
 * @param mq handle of type msgqueue_t
 * @param ticks timeout in ticks
 */
rt_err_t rt_mq_recv(rt_mq_t mq, unsigned ticks);

/**
 * Delete a message queue.
 * @param mq handle of type msgqueue_t
 */
rt_err_t rt_mq_delete(rt_mq_t mq);

/**
 * Create a semaphore.
 * @param value must be between 0 and 65535
 * @return handle of type rtsem_t
 */
rt_sem_t rt_sem_create(unsigned value);

/**
 * Take a semaphore.
 * @param sem handle of type rtsem_t
 * @param ticks timeout in ticks
 */
rt_err_t rt_sem_take(rt_sem_t sem, unsigned ticks);

/**
 * Release a semaphore.
 * @param sem handle of type rtsem_t
 */
rt_err_t rt_sem_release(rt_sem_t sem);

/**
 * Delete a semaphore.
 * @param sem handle of type rtsem_t
 */
rt_err_t rt_sem_delete(rt_sem_t sem);

/**
 * Create a mutex.
 * @return handle of type rtmutex_t
 */
rt_mutex_t rt_mutex_create(void);

/**
 * Take a mutex.
 * @param mutex handle of type rtmutex_t
 * @param ticks timeout in ticks
 */
rt_err_t rt_mutex_take(rt_mutex_t mutex, unsigned ticks);

/**
 * Release a mutex.
 * @param mutex handle of type rtmutex_t
 */
rt_err_t rt_mutex_release(rt_mutex_t mutex);

/**
 * Create an event set.
 * @return handle of type rtevent_t
 */
rt_event_t rt_event_create(void);

/**
 * Send events.
 * @param event handle of type rtevent_t
 * @param set must be between 1 and 4294967295
 */
rt_err_t rt_event_send(rt_event_t event, unsigned set);

/**
 * Receive events.
 * @param event handle of type rtevent_t
 * @param set must be between 1 and 16777215
 * @param option bitmask of rt_event_opts
 * @param ticks timeout in ticks
 * @flags rt_event_opts RT_EVENT_FLAG_AND=1 RT_EVENT_FLAG_CLEAR=2
 */
rt_err_t rt_event_recv(rt_event_t event, unsigned set, unsigned option, unsigned ticks);
`

const memH = `
/**
 * Create a memory pool.
 * @param name pool name string
 * @param block_count must be between 1 and 512
 * @param block_size must be between 1 and 4096
 * @return handle of type mempool_t
 */
rt_mp_t rt_mp_create(const char *name, unsigned block_count, unsigned block_size);

/**
 * Allocate a block from a memory pool.
 * @param mp handle of type mempool_t
 * @param ticks timeout in ticks
 * @return handle of type mpblock_t
 */
void *rt_mp_alloc(rt_mp_t mp, unsigned ticks);

/**
 * Return a block to a memory pool.
 * @param mp handle of type mempool_t
 * @param block handle of type mpblock_t
 */
void rt_mp_free(rt_mp_t mp, void *block);

/**
 * Delete a memory pool.
 * @param mp handle of type mempool_t
 */
rt_err_t rt_mp_delete(rt_mp_t mp);

/**
 * Allocate memory from the system heap.
 * @param size must be between 1 and 65536
 * @return handle of type rtmem_t
 */
void *rt_malloc(unsigned size);

/**
 * Free system heap memory.
 * @param ptr handle of type rtmem_t
 */
void rt_free(void *ptr);

/**
 * Resize a heap allocation.
 * @param ptr handle of type rtmem_t
 * @param newsize must be between 0 and 131072
 */
void *rt_realloc(void *ptr, unsigned newsize);

/**
 * Attach a debug name to a heap block.
 * @param ptr handle of type rtmem_t
 * @param name block name string
 */
rt_err_t rt_smem_setname(void *ptr, const char *name);

/**
 * Query free heap space.
 */
unsigned rt_memory_info(void);
`

const deviceH = `
/**
 * Find a registered device.
 * @param name device name string, one of "uart0", "uart1", "spi0"
 * @return handle of type device_t
 */
rt_device_t rt_device_find(const char *name);

/**
 * Open a device.
 * @param dev handle of type device_t
 * @param oflag bitmask of rt_dev_flags
 * @flags rt_dev_flags RT_DEVICE_FLAG_RDONLY=1 RT_DEVICE_FLAG_WRONLY=2 RT_DEVICE_FLAG_STREAM=4
 */
rt_err_t rt_device_open(rt_device_t dev, unsigned oflag);

/**
 * Write bytes to a device.
 * @param dev handle of type device_t
 * @param buffer buffer with the data bytes
 * @param size length of buffer
 */
rt_ssize_t rt_device_write_api(rt_device_t dev, const void *buffer, unsigned size);

/**
 * Close a device.
 * @param dev handle of type device_t
 */
rt_err_t rt_device_close(rt_device_t dev);

/**
 * Unregister a device from the system.
 * @param name device name string, one of "uart0", "uart1", "spi0"
 */
rt_err_t rt_device_unregister(const char *name);

/**
 * Control the serial console port.
 * @param cmd one of {1, 2, 3}
 * @param value must be between 0 and 200000
 */
rt_err_t rt_serial_ctrl(unsigned cmd, unsigned value);

/**
 * Print a message to the kernel console.
 * @param message message string
 */
int rt_kprintf_api(const char *message);
`

const netH = `
/**
 * Create a socket and optionally bind it to an address.
 * @pseudo
 * @param domain must be between 0 and 65535
 * @param type one of {0, 1, 2, 3}
 * @param protocol must be between 0 and 32
 * @param sockaddr buffer with the socket address bytes
 * @return handle of type socket_t
 */
long syz_create_bind_socket(long domain, long type, long protocol, const void *sockaddr);
`

const timerH = `
/**
 * Create a software timer.
 * @param period must be between 1 and 1048576
 * @param flag one of {0, 1}
 * @param behavior one of {0, 1, 2}
 * @return handle of type rttimer_t
 */
rt_timer_t rt_timer_create(unsigned period, unsigned flag, int behavior);

/**
 * Start a timer.
 * @param timer handle of type rttimer_t
 */
rt_err_t rt_timer_start(rt_timer_t timer);

/**
 * Stop a timer.
 * @param timer handle of type rttimer_t
 */
rt_err_t rt_timer_stop(rt_timer_t timer);
`

const sensorH = `
/**
 * Open a session on the sensor pipeline.
 * @return handle of type sensor_t
 */
int rt_sensor_open(void);

/**
 * Drive the sensor pipeline session state machine.
 * @param session handle of type sensor_t
 * @param cmd one of {0, 1, 2, 3, 4, 5, 6}
 * @param value must be between 0 and 1023
 */
int rt_sensor_control(int session, unsigned cmd, unsigned value);

/**
 * Release a sensor pipeline session.
 * @param session handle of type sensor_t
 */
int rt_sensor_close(int session);
`

const rtdriversH = `
/**
 * Configure the GPIO pin bank.
 * @param mode bitmask of rt_periph_mode
 * @flags rt_periph_mode ENABLE=1 IRQ=2 DMA=4 LOWPOWER=8 PSC1=256 PSC2=512 PSC3=768
 */
int rt_pin_mode(unsigned mode);

/**
 * Read a channel of the GPIO pin bank.
 * @param channel must be between 0 and 31
 */
long rt_pin_read(unsigned channel);

/**
 * Configure the WLAN radio.
 * @param mode bitmask of rt_periph_mode
 */
int rt_wlan_config(unsigned mode);

/**
 * Read a channel of the WLAN radio.
 * @param channel must be between 0 and 31
 */
long rt_wlan_scan(unsigned channel);
`
