// Package freertos is the FreeRTOS personality: the xTask/xQueue/xSemaphore
// API surface over the shared kernel framework, the heap_4-style allocator
// symbols, a partition loader carrying Table-2 bug #13 (a kernel-partition-
// corrupting write that bricks the board until reflash), and the HTTP/JSON
// application components used by the paper's application-level evaluation.
package freertos

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/app/httpd"
	"github.com/eof-fuzz/eof/internal/app/jsonlib"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Name is the canonical OS identifier.
const Name = "freertos"

// Version matches the paper's evaluated revision.
const Version = "v5.4"

// partTable is the build configuration's partition layout.
const partTable = `# name, type, offset, size
bootloader, app, 0x0, 0x10000
kernel, app, 0x10000, 0x400000
nvs, data, 0x410000, 0x10000
storage, data, 0x420000, 0x40000
`

// staticParts mirrors the partition table as the kernel's compiled-in copy
// (load_partitions walks this array).
var staticParts = []struct {
	name string
	off  int
	size int
}{
	{"bootloader", 0x0, 0x10000},
	{"kernel", 0x10000, 0x400000},
	{"nvs", 0x410000, 0x10000},
	{"storage", 0x420000, 0x40000},
}

// timeout sentinel: portMAX_DELAY.
const portMaxDelay = 0xFFFFFFFF

// OS is one booted FreeRTOS instance.
type OS struct {
	periphs []*rtos.Periph
	drv     *rtos.Driver
	env     *board.Env
	k       *rtos.Kernel
	json    *jsonlib.Lib
	http    *httpd.Server

	fnPanic *rtos.Fn
	fnLog   *rtos.Fn
	fnUART  *rtos.Fn

	partsLoaded map[int]bool
	table       []agent.API
	lineCursor  int
}

// Info returns the host-visible build description.
func Info() *osinfo.Info {
	return &osinfo.Info{
		Name:               Name,
		Display:            "FreeRTOS",
		Version:            Version,
		PartTableText:      partTable,
		Builder:            Build,
		ExceptionSyms:      []string{"panic_handler"},
		Headers:            headers(),
		APINames:           apiNames(),
		BaseCodeBytes:      2_770_000,
		BytesPerBlock:      64,
		InstrBytesPerBlock: 155,
		BuildID:            0xF2EE5405,
		Dictionary: []string{
			// Complete examples lifted from the component's unit tests (the
			// paper feeds such examples to the LLM alongside the headers).
			"GET / HTTP/1.1\r\n\r\n",
			"GET /status?verbose=1 HTTP/1.1\r\n\r\n",
			"POST /api/echo HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello",
			"POST /api/json HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\":123}",
			"{\"key\":\"value\"}",
			"[1,2.5,true,null]",
			// Fragments: deeper features (auth, device routes, chunked
			// bodies, nested documents) appear only as pieces that mutation
			// must assemble.
			"GET ", "POST ", "HEAD ", " HTTP/1.1\r\n",
			"/api/v1/device/", "/reset", "/config", "?pretty=1",
			"Authorization: Bearer ", "Authorization: Basic ", "dev-",
			"Cookie: session=", "Transfer-Encoding: chunked\r\n",
			"4\r\nwxyz\r\n0\r\n\r\n",
			"{\"a\":", "\"key\"", ":null}", ",true]", "{\"k\":{", "}}",
		},
	}
}

// Build constructs the firmware: kernel framework, FreeRTOS API table,
// application components and the execution agent.
func Build(env *board.Env) (board.Firmware, error) {
	k := rtos.NewKernel(env, "FreeRTOS")
	k.InitSched("xTaskIncrementTick", "prvSelectHighestPriorityTask", "vTaskSwitchContext", "tasks.c")

	heapBase := env.ScratchBase + agent.ArenaSize
	heapEnd := env.RAM.End() - 4096
	if heapBase+16*1024 > heapEnd {
		return nil, fmt.Errorf("freertos: RAM too small for heap")
	}
	k.NewHeap(heapBase, int(heapEnd-heapBase), "pvPortMalloc", "vPortFree", "prvHeapLock", "portable/heap_4.c")

	o := &OS{env: env, k: k, partsLoaded: make(map[int]bool)}
	o.fnPanic = k.Fn("panic_handler", "port/panic.c", 22, 2)
	o.fnLog = k.Fn("vLoggingPrintf", "logging/logging.c", 55, 4)
	o.fnUART = k.Fn("uart_poll_out", "drivers/uart_pl011.c", 88, 3)
	k.ExceptionFn = o.fnPanic
	k.ConsoleWrite = o.consoleWrite

	o.json = jsonlib.New(k)
	o.http = httpd.New(k, o.json)
	o.drv = k.NewDriver("dma", "xDmaAcquire", "xDmaControl", "vDmaRelease", "drivers/dma_ctrl.c")
	o.periphs = append(o.periphs, k.NewPeriph("gpio", "xGpioConfig", "xGpioRead", "drivers/gpio_stm32.c"))
	o.periphs = append(o.periphs, k.NewPeriph("adc", "xAdcConfig", "xAdcRead", "drivers/adc_stm32.c"))
	o.periphs = append(o.periphs, k.NewPeriph("can", "xCanConfig", "xCanRead", "drivers/can_stm32.c"))
	o.buildTable()
	if len(o.table) != len(apiOrder) {
		return nil, fmt.Errorf("freertos: API table drift: %d registered, %d declared", len(o.table), len(apiOrder))
	}
	for i, e := range o.table {
		if e.Name != apiOrder[i] {
			return nil, fmt.Errorf("freertos: API order drift at %d: %s != %s", i, e.Name, apiOrder[i])
		}
	}
	return agent.New(env, o), nil
}

// consoleWrite is the FreeRTOS logging chain: vLoggingPrintf → uart_poll_out.
func (o *OS) consoleWrite(s string) {
	o.fnLog.Enter()
	o.fnLog.B(1)
	o.fnUART.Enter()
	o.env.UART.WriteString(s)
	o.fnUART.Exit()
	o.fnLog.Exit()
}

// Name implements agent.Target.
func (o *OS) Name() string { return Name }

// Kernel implements agent.Target.
func (o *OS) Kernel() *rtos.Kernel { return o.k }

// APIs implements agent.Target.
func (o *OS) APIs() []agent.API { return o.table }

// apiNames is the canonical dispatch order; Info().APINames and the agent
// table are both derived from the buildTable registration sequence, so they
// cannot drift.
func apiNames() []string {
	names := make([]string, len(apiOrder))
	copy(names, apiOrder)
	return names
}

var apiOrder = []string{
	"xTaskCreate",
	"vTaskDelete",
	"vTaskDelay",
	"vTaskPrioritySet",
	"vTaskSuspend",
	"vTaskResume",
	"uxTaskGetNumberOfTasks",
	"xQueueCreate",
	"xQueueSend",
	"xQueueReceive",
	"vQueueDelete",
	"xSemaphoreCreateBinary",
	"xSemaphoreCreateCounting",
	"xSemaphoreCreateMutex",
	"xSemaphoreTake",
	"xSemaphoreGive",
	"xEventGroupCreate",
	"xEventGroupSetBits",
	"xEventGroupWaitBits",
	"xTimerCreate",
	"xTimerStart",
	"xTimerStop",
	"pvPortMalloc",
	"vPortFree",
	"xPortGetFreeHeapSize",
	"load_partitions",
	"vLoggingPrintf",
	"http_server_init",
	"http_server_handle",
	"json_parse",
	"json_encode",
	"json_free",
	"xDmaAcquire",
	"xDmaControl",
	"vDmaRelease",
	"xGpioConfig",
	"xGpioRead",
	"xAdcConfig",
	"xAdcRead",
	"xCanConfig",
	"xCanRead",
}

// reg registers one API wrapper with its own instrumented function. When the
// API name collides with an internal symbol (the wrapper for pvPortMalloc
// cannot share the allocator's own symbol), the wrapper symbol gets an _api
// suffix; the API name stays canonical for specifications.
func (o *OS) reg(name string, nblocks int, h func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno)) {
	o.lineCursor += 40
	symName := name
	if o.k.Env.Syms.Lookup(symName) != nil {
		symName += "_api"
	}
	f := o.k.Fn(symName, "api/freertos_api.c", o.lineCursor, nblocks)
	o.table = append(o.table, agent.API{
		Name: name,
		Handler: func(args []uint64) (uint64, rtos.Errno) {
			f.Enter()
			defer f.Exit()
			return h(f, args)
		},
	})
}

func (o *OS) buildTable() {
	k := o.k

	o.reg("xTaskCreate", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := o.blobString(arg(a, 0), 16, "task")
		prio := int(uint32(arg(a, 1)))
		stack := int(uint32(arg(a, 2)))
		behavior := int(arg(a, 3))
		if prio > rtos.PrioMin {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		if stack < rtos.StackMin {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		obj, e := k.Sched.Create(name, prio, stack, behavior)
		if e.Failed() {
			f.B(5)
			return 0, e
		}
		f.B(6)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("vTaskDelete", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State == rtos.TaskRunning {
			f.B(2) // deleting the running task defers to idle cleanup
		}
		f.B(3)
		t.State = rtos.TaskDead
		return 0, k.Objects.Delete(obj.ID)
	})

	o.reg("vTaskDelay", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ticks := uint32(arg(a, 0))
		if ticks == 0 {
			f.B(1)
			return 0, rtos.OK
		}
		if ticks > 10_000 {
			f.B(2)
			ticks = 10_000 // clamp like configMAX_DELAY_CLAMP builds
		}
		f.B(3)
		k.Sleep(int(ticks))
		return 0, rtos.OK
	})

	o.reg("vTaskPrioritySet", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		prio := int(uint32(arg(a, 1)))
		if prio > rtos.PrioMin {
			f.B(2)
			return 0, rtos.ErrInval
		}
		t := obj.Data.(*rtos.Task)
		if prio < t.Prio {
			f.B(3) // raising priority may preempt
		}
		f.B(4)
		t.Prio = prio
		t.BasePrio = prio
		return 0, rtos.OK
	})

	o.reg("vTaskSuspend", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State == rtos.TaskDead {
			f.B(2)
			return 0, rtos.ErrState
		}
		f.B(3)
		t.State = rtos.TaskSuspended
		return 0, rtos.OK
	})

	o.reg("vTaskResume", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State != rtos.TaskSuspended {
			f.B(2)
			return 0, rtos.ErrState
		}
		f.B(3)
		t.State = rtos.TaskReady
		return 0, rtos.OK
	})

	o.reg("uxTaskGetNumberOfTasks", 2, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return uint64(k.Sched.TaskCount()), rtos.OK
	})

	o.reg("xQueueCreate", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		depth := int(uint32(arg(a, 0)))
		item := int(uint32(arg(a, 1)))
		obj, e := k.NewQueue("queue", item, depth)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("xQueueSend", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		ptr := arg(a, 1)
		if ptr == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		item := k.ReadRAM(ptr, q.ItemSize) // wild pointers fault here
		e = q.Send(item, o.timeout(arg(a, 2)))
		if e.Failed() {
			f.B(4)
			return 0, e
		}
		f.B(5)
		return 1, rtos.OK
	})

	o.reg("xQueueReceive", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		item, e := q.Recv(o.timeout(arg(a, 1)))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	o.reg("vQueueDelete", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Queue).Destroy()
	})

	o.reg("xSemaphoreCreateBinary", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewSemaphore("binsem", 0, 1)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("xSemaphoreCreateCounting", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		max := int(uint32(arg(a, 0)))
		initial := int(uint32(arg(a, 1)))
		obj, e := k.NewSemaphore("ctsem", initial, max)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("xSemaphoreCreateMutex", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewMutex("mutex", false)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	// FreeRTOS takes/gives mutexes through the semaphore API, so both object
	// types are accepted here — an honest quirk of the surface.
	o.reg("xSemaphoreTake", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		id := uint32(arg(a, 0))
		timeout := o.timeout(arg(a, 1))
		if obj, e := k.Objects.GetTyped(id, rtos.ObjSem); !e.Failed() {
			f.B(1)
			if e := obj.Data.(*rtos.Semaphore).Take(timeout); e.Failed() {
				f.B(2)
				return 0, e
			}
			f.B(3)
			return 1, rtos.OK
		}
		if obj, e := k.Objects.GetTyped(id, rtos.ObjMutex); !e.Failed() {
			f.B(4)
			if e := obj.Data.(*rtos.Mutex).Lock(timeout); e.Failed() {
				f.B(5)
				return 0, e
			}
			f.B(6)
			return 1, rtos.OK
		}
		f.B(7)
		return 0, rtos.ErrNotFound
	})

	o.reg("xSemaphoreGive", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		id := uint32(arg(a, 0))
		if obj, e := k.Objects.GetTyped(id, rtos.ObjSem); !e.Failed() {
			f.B(1)
			if e := obj.Data.(*rtos.Semaphore).Give(); e.Failed() {
				f.B(2)
				return 0, e
			}
			f.B(3)
			return 1, rtos.OK
		}
		if obj, e := k.Objects.GetTyped(id, rtos.ObjMutex); !e.Failed() {
			f.B(4)
			if e := obj.Data.(*rtos.Mutex).Unlock(); e.Failed() {
				f.B(5)
				return 0, e
			}
			f.B(6)
			return 1, rtos.OK
		}
		return 0, rtos.ErrNotFound
	})

	o.reg("xEventGroupCreate", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewEvent("events")
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("xEventGroupSetBits", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		ev := obj.Data.(*rtos.Event)
		if e := ev.Send(uint32(arg(a, 1))); e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		return uint64(ev.Bits), rtos.OK
	})

	o.reg("xEventGroupWaitBits", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		ev := obj.Data.(*rtos.Event)
		var opts uint32
		if arg(a, 2)&1 != 0 {
			f.B(2)
			opts |= rtos.EvtClear
		}
		if arg(a, 2)&2 != 0 {
			f.B(3)
			opts |= rtos.EvtAll
		}
		got, e := ev.Recv(uint32(arg(a, 1)), opts, o.timeout(arg(a, 3)))
		if e.Failed() {
			f.B(4)
			return 0, e
		}
		f.B(5)
		return uint64(got), rtos.OK
	})

	o.reg("xTimerCreate", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		period := arg(a, 0)
		auto := arg(a, 1) != 0
		obj, e := k.NewTimer("timer", period, !auto, int(arg(a, 2)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	o.reg("xTimerStart", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 1, obj.Data.(*rtos.Timer).Start()
	})

	o.reg("xTimerStop", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(arg(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 1, obj.Data.(*rtos.Timer).Stop()
	})

	o.reg("pvPortMalloc", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		n := int(uint32(arg(a, 0)))
		p := k.Heap.Alloc(n)
		if p == 0 {
			f.B(1)
			return 0, rtos.ErrNoMem
		}
		f.B(2)
		return p, rtos.OK
	})

	o.reg("vPortFree", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Heap.Free(arg(a, 0))
	})

	o.reg("xPortGetFreeHeapSize", 2, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		_, _, free := k.Heap.Stats()
		return uint64(free), rtos.OK
	})

	o.reg("load_partitions", 10, o.loadPartitions)

	o.reg("vLoggingPrintf", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msg := o.blobString(arg(a, 0), 128, "")
		if msg == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		k.Kprintf("%s\n", msg)
		return uint64(len(msg)), rtos.OK
	})

	o.reg("http_server_init", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.http.Init(int(uint32(arg(a, 0))))
	})

	o.reg("http_server_handle", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		req := o.blobBytes(arg(a, 0), int(uint32(arg(a, 1))))
		status, e := o.http.Handle(req)
		if e.Failed() {
			f.B(1)
			return uint64(status), e
		}
		f.B(2)
		return uint64(status), rtos.OK
	})

	o.reg("json_parse", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		data := o.blobBytes(arg(a, 0), int(uint32(arg(a, 1))))
		h, e := o.json.Parse(data)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	o.reg("json_encode", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		out, e := o.json.Encode(uint32(arg(a, 0)), uint32(arg(a, 1)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(len(out)), rtos.OK
	})

	o.reg("json_free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.json.Free(uint32(arg(a, 0)))
	})

	o.reg("xDmaAcquire", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		h, e := o.drv.Open()
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	o.reg("xDmaControl", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ret, e := o.drv.Ctl(uint32(arg(a, 0)), uint32(arg(a, 1)), uint32(arg(a, 2)))
		if e.Failed() {
			f.B(1)
			return ret, e
		}
		f.B(2)
		return ret, rtos.OK
	})

	o.reg("vDmaRelease", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.drv.Close(uint32(arg(a, 0)))
	})

	o.reg("xGpioConfig", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[0].Config(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	o.reg("xGpioRead", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[0].Read(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	o.reg("xAdcConfig", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[1].Config(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	o.reg("xAdcRead", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[1].Read(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	o.reg("xCanConfig", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[2].Config(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	o.reg("xCanRead", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[2].Read(uint32(arg(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})
}

// Partition loader flags.
const (
	partVerify = 1 << 0
	partRO     = 1 << 1
	partRemap  = 1 << 3
)

// loadPartitions mounts a partition by index. Bug #13 (Table 2): combining
// the undocumented remap flag with the last (data) partition computes the
// mount-record address from the *doubled* offset, a write that lands inside
// the kernel image in flash — corrupting it — before the loader panics on
// its own verification. The board then fails to reboot until the host
// reflashes, exercising the full state-restoration path.
func (o *OS) loadPartitions(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
	idx := int(uint32(arg(a, 0)))
	flags := uint32(arg(a, 1))
	if idx < 0 || idx >= len(staticParts) {
		f.B(1)
		return 0, rtos.ErrInval
	}
	f.B(2)
	if flags&^uint32(partVerify|partRO|partRemap) != 0 {
		f.B(3)
		return 0, rtos.ErrInval
	}
	p := staticParts[idx]
	if flags&partVerify != 0 {
		f.B(4)
		raw, err := o.env.Flash.Read(p.off, 4)
		if err != nil || (p.name != "nvs" && p.name != "storage" && raw[0] == 0xFF) {
			f.B(5)
			return 0, rtos.ErrState
		}
	}
	if flags&partRemap != 0 {
		f.B(6)
		if idx == len(staticParts)-1 {
			f.B(7)
			// BUG: the remap path doubles the offset when computing where to
			// write the mount record; for the last partition that lands in
			// the kernel image.
			dest := p.off / 2
			o.env.Flash.Corrupt(dest, 64, 0x00)
			o.k.PanicFault(cpu.FaultPanic, fmt.Sprintf(
				"load_partitions: mount record verify failed for %q (remap)", p.name))
		}
		f.B(8)
	}
	f.B(9)
	o.partsLoaded[idx] = true
	return uint64(p.size), rtos.OK
}

// timeout converts a FreeRTOS tick timeout (portMAX_DELAY = forever).
func (o *OS) timeout(v uint64) int {
	if uint32(v) == portMaxDelay {
		return rtos.WaitForever
	}
	return int(uint32(v))
}

// blobString reads a staged string argument (empty fallback when null).
func (o *OS) blobString(ptr uint64, max int, fallback string) string {
	if ptr == 0 {
		return fallback
	}
	s := o.k.CString(ptr, max)
	if s == "" {
		return fallback
	}
	return s
}

// blobBytes reads a staged byte-buffer argument; a null or wild pointer
// faults just like the real dereference would.
func (o *OS) blobBytes(ptr uint64, n int) []byte {
	if n <= 0 {
		return nil
	}
	if n > 4096 {
		n = 4096
	}
	return o.k.ReadRAM(ptr, n)
}

func arg(a []uint64, i int) uint64 {
	if i < len(a) {
		return a[i]
	}
	return 0
}
