package freertos

import "github.com/eof-fuzz/eof/internal/osinfo"

// headers returns the C headers and API reference text the specification
// generator extracts FreeRTOS's Syzlang from (the paper prompts GPT-4o with
// exactly this kind of material; our extractor consumes the same inputs
// deterministically).
func headers() []osinfo.Header {
	return []osinfo.Header{
		{Path: "include/task.h", Text: taskH},
		{Path: "include/queue.h", Text: queueH},
		{Path: "include/semphr.h", Text: semphrH},
		{Path: "include/event_groups.h", Text: eventH},
		{Path: "include/timers.h", Text: timersH},
		{Path: "include/portable.h", Text: portableH},
		{Path: "include/partition.h", Text: partitionH},
		{Path: "include/logging.h", Text: loggingH},
		{Path: "include/http_server.h", Text: httpH},
		{Path: "include/core_json.h", Text: jsonH},
		{Path: "include/dma_ctrl.h", Text: dmaH},
		{Path: "include/drivers.h", Text: driversH},
	}
}

const taskH = `
/**
 * Create a new task and add it to the list of tasks that are ready to run.
 * @param name task name string
 * @param priority must be between 0 and 31
 * @param stack must be between 128 and 65536
 * @param behavior one of {0, 1, 2, 3}
 * @return handle of type task_t
 */
TaskHandle_t xTaskCreate(const char *name, unsigned priority, unsigned stack, int behavior);

/**
 * Remove a task from the kernel's management.
 * @param task handle of type task_t
 */
void vTaskDelete(TaskHandle_t task);

/**
 * Delay a task for a given number of ticks.
 * @param ticks must be between 0 and 10000
 */
void vTaskDelay(unsigned ticks);

/**
 * Set the priority of a task.
 * @param task handle of type task_t
 * @param priority must be between 0 and 31
 */
void vTaskPrioritySet(TaskHandle_t task, unsigned priority);

/**
 * Suspend a task; it will not run until resumed.
 * @param task handle of type task_t
 */
void vTaskSuspend(TaskHandle_t task);

/**
 * Resume a suspended task.
 * @param task handle of type task_t
 */
void vTaskResume(TaskHandle_t task);

/**
 * Query the number of tasks the kernel is managing.
 */
unsigned uxTaskGetNumberOfTasks(void);
`

const queueH = `
/**
 * Create a new queue.
 * @param depth must be between 1 and 256
 * @param item_size must be between 1 and 1024
 * @return handle of type queue_t
 */
QueueHandle_t xQueueCreate(unsigned depth, unsigned item_size);

/**
 * Post an item to the back of a queue.
 * @param queue handle of type queue_t
 * @param item buffer with the item bytes
 * @param ticks timeout in ticks
 */
BaseType_t xQueueSend(QueueHandle_t queue, const void *item, unsigned ticks);

/**
 * Receive an item from a queue.
 * @param queue handle of type queue_t
 * @param ticks timeout in ticks
 */
BaseType_t xQueueReceive(QueueHandle_t queue, unsigned ticks);

/**
 * Delete a queue and free its storage.
 * @param queue handle of type queue_t
 */
void vQueueDelete(QueueHandle_t queue);
`

const semphrH = `
/**
 * Create a binary semaphore.
 * @return handle of type sem_t
 */
SemaphoreHandle_t xSemaphoreCreateBinary(void);

/**
 * Create a counting semaphore.
 * @param max_count must be between 1 and 65535
 * @param initial_count must be between 0 and 65535
 * @return handle of type sem_t
 */
SemaphoreHandle_t xSemaphoreCreateCounting(unsigned max_count, unsigned initial_count);

/**
 * Create a mutex. Mutexes are taken and given through the semaphore API.
 * @return handle of type sem_t
 */
SemaphoreHandle_t xSemaphoreCreateMutex(void);

/**
 * Obtain a semaphore or mutex.
 * @param sem handle of type sem_t
 * @param ticks timeout in ticks
 */
BaseType_t xSemaphoreTake(SemaphoreHandle_t sem, unsigned ticks);

/**
 * Release a semaphore or mutex.
 * @param sem handle of type sem_t
 */
BaseType_t xSemaphoreGive(SemaphoreHandle_t sem);
`

const eventH = `
/**
 * Create an event group.
 * @return handle of type event_t
 */
EventGroupHandle_t xEventGroupCreate(void);

/**
 * Set bits within an event group. Setting zero bits is invalid.
 * @param event handle of type event_t
 * @param bits must be between 1 and 16777215
 */
EventBits_t xEventGroupSetBits(EventGroupHandle_t event, unsigned bits);

/**
 * Wait for bits within an event group.
 * @param event handle of type event_t
 * @param bits must be between 1 and 16777215
 * @param options bitmask of wait_opts
 * @param ticks timeout in ticks
 * @flags wait_opts CLEAR_ON_EXIT=1 WAIT_ALL_BITS=2
 */
EventBits_t xEventGroupWaitBits(EventGroupHandle_t event, unsigned bits, unsigned options, unsigned ticks);
`

const timersH = `
/**
 * Create a software timer.
 * @param period must be between 1 and 1048576
 * @param auto_reload one of {0, 1}
 * @param behavior one of {0, 1, 2}
 * @return handle of type timer_t
 */
TimerHandle_t xTimerCreate(unsigned period, int auto_reload, int behavior);

/**
 * Start a software timer.
 * @param timer handle of type timer_t
 */
BaseType_t xTimerStart(TimerHandle_t timer);

/**
 * Stop a software timer.
 * @param timer handle of type timer_t
 */
BaseType_t xTimerStop(TimerHandle_t timer);
`

const portableH = `
/**
 * Allocate a block from the FreeRTOS heap.
 * @param size must be between 1 and 65536
 * @return handle of type heapmem_t
 */
void *pvPortMalloc(unsigned size);

/**
 * Return a block to the FreeRTOS heap.
 * @param block handle of type heapmem_t
 */
void vPortFree(void *block);

/**
 * Query the remaining free heap space.
 */
unsigned xPortGetFreeHeapSize(void);
`

const partitionH = `
/**
 * Mount one partition from the flash partition table.
 * @param index must be between 0 and 3
 * @param options bitmask of part_flags
 * @flags part_flags PART_VERIFY=1 PART_RO=2 PART_REMAP=8
 */
int load_partitions(unsigned index, unsigned options);
`

const loggingH = `
/**
 * Write a message to the logging output (UART).
 * @param message message string
 */
void vLoggingPrintf(const char *message);
`

const httpH = `
/**
 * Start the embedded HTTP server.
 * @param port must be between 1 and 65535
 */
int http_server_init(unsigned port);

/**
 * Feed one raw HTTP request to the server.
 * @param request buffer with the request bytes
 * @param length length of request
 */
int http_server_handle(const char *request, unsigned length);
`

const jsonH = `
/**
 * Parse a JSON document.
 * @param data buffer with the document bytes
 * @param length length of data
 * @return handle of type json_t
 */
JSONHandle_t json_parse(const char *data, unsigned length);

/**
 * Encode a parsed JSON document back to text.
 * @param doc handle of type json_t
 * @param options bitmask of json_enc_flags
 * @flags json_enc_flags ENC_PRETTY=1 ENC_SORTED=2
 */
int json_encode(JSONHandle_t doc, unsigned options);

/**
 * Release a parsed JSON document.
 * @param doc handle of type json_t
 */
void json_free(JSONHandle_t doc);
`

const dmaH = `
/**
 * Open a session on the DMA controller.
 * @return handle of type dma_t
 */
int xDmaAcquire(void);

/**
 * Drive the DMA controller session state machine.
 * @param session handle of type dma_t
 * @param cmd one of {0, 1, 2, 3, 4, 5, 6}
 * @param value must be between 0 and 1023
 */
int xDmaControl(int session, unsigned cmd, unsigned value);

/**
 * Release a DMA controller session.
 * @param session handle of type dma_t
 */
int vDmaRelease(int session);
`

const driversH = `
/**
 * Configure the GPIO bank.
 * @param mode bitmask of periph_mode
 * @flags periph_mode ENABLE=1 IRQ=2 DMA=4 LOWPOWER=8 PSC1=256 PSC2=512 PSC3=768
 */
int xGpioConfig(unsigned mode);

/**
 * Read a channel of the GPIO bank.
 * @param channel must be between 0 and 31
 */
long xGpioRead(unsigned channel);

/**
 * Configure the ADC.
 * @param mode bitmask of periph_mode
 */
int xAdcConfig(unsigned mode);

/**
 * Read a channel of the ADC.
 * @param channel must be between 0 and 31
 */
long xAdcRead(unsigned channel);

/**
 * Configure the CAN controller.
 * @param mode bitmask of periph_mode
 */
int xCanConfig(unsigned mode);

/**
 * Read a channel of the CAN controller.
 * @param channel must be between 0 and 31
 */
long xCanRead(unsigned channel);
`
