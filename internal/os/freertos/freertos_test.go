package freertos

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/vtime"
	"github.com/eof-fuzz/eof/internal/wire"
)

// testRig is a fully provisioned board with an attached debug client.
type testRig struct {
	brd    *board.Board
	client *ocd.Client
	syms   *sym.Table
	lay    board.Layout
	apiIdx func(string) int
}

func newRig(t *testing.T, instrumented bool) *testRig {
	t.Helper()
	info := Info()
	spec := boards.STM32H745()
	imgs, err := info.BuildImages(spec, instrumented)
	if err != nil {
		t.Fatal(err)
	}
	table, err := info.PartTable()
	if err != nil {
		t.Fatal(err)
	}
	clock := &vtime.Clock{}
	brd, err := board.New(spec, table, info.Builder, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := brd.Provision("bootloader", imgs.Boot); err != nil {
		t.Fatal(err)
	}
	if err := brd.Provision("kernel", imgs.Kernel); err != nil {
		t.Fatal(err)
	}
	if err := brd.Boot(); err != nil {
		t.Fatal(err)
	}
	syms, err := info.SymbolTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	client := ocd.Connect(ocd.NewServer(brd, ocd.DefaultLatency()))
	t.Cleanup(func() {
		client.Close()
		if brd.State() == board.On {
			brd.Core().Kill()
		}
	})
	return &testRig{brd: brd, client: client, syms: syms, lay: board.LayoutFor(spec), apiIdx: info.APIIndex}
}

// runProg drives one program through the agent: waits at executor_main,
// writes the program, resumes, and returns the stop that ends execution plus
// the result (when the loop came back around).
func (r *testRig) runProg(t *testing.T, p *wire.Prog) (cpu.Stop, wire.Result) {
	t.Helper()
	mainAddr := r.syms.Addr(agent.SymExecutorMain)
	if err := r.client.SetBreakpoint(mainAddr); err != nil {
		t.Fatal(err)
	}
	st, err := r.client.Continue(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != cpu.StopBreakpoint || st.PC != mainAddr {
		t.Fatalf("first stop = %+v, want executor_main %#x", st, mainAddr)
	}
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	if err := r.client.WriteMem(r.lay.MailboxIn, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		st, err = r.client.Continue(5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		switch st.Kind {
		case cpu.StopCovFull:
			// Drain and clear the buffer, then resume.
			if _, err := r.client.ReadMem(r.lay.Cov, r.lay.CovBytes); err != nil {
				t.Fatal(err)
			}
			zero := make([]byte, 4)
			if err := r.client.WriteMem(r.lay.Cov+4, zero); err != nil {
				t.Fatal(err)
			}
			continue
		case cpu.StopBreakpoint:
			if st.PC == mainAddr {
				res := r.readResult(t)
				return st, res
			}
			return st, wire.Result{}
		default:
			return st, wire.Result{}
		}
	}
	t.Fatal("program did not finish in 64 continues")
	return cpu.Stop{}, wire.Result{}
}

func (r *testRig) readResult(t *testing.T) wire.Result {
	t.Helper()
	raw, err := r.client.ReadMem(r.lay.MailboxOut, wire.ResultBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wire.UnmarshalResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func imm(v uint64) wire.Arg  { return wire.Arg{Kind: wire.ArgImm, Val: v} }
func ref(i int) wire.Arg     { return wire.Arg{Kind: wire.ArgResult, Val: uint64(i)} }
func blob(b []byte) wire.Arg { return wire.Arg{Kind: wire.ArgBlob, Blob: b} }
func call(api int, args ...wire.Arg) wire.Call {
	return wire.Call{API: uint16(api), Args: args}
}

func TestEndToEndQueueProgram(t *testing.T) {
	r := newRig(t, true)
	p := &wire.Prog{Calls: []wire.Call{
		call(r.apiIdx("xQueueCreate"), imm(4), imm(8)),
		call(r.apiIdx("xQueueSend"), ref(0), blob([]byte("payload!")), imm(10)),
		call(r.apiIdx("xQueueReceive"), ref(0), imm(10)),
		call(r.apiIdx("vQueueDelete"), ref(0)),
	}}
	st, res := r.runProg(t, p)
	if st.Kind != cpu.StopBreakpoint {
		t.Fatalf("stop = %+v", st)
	}
	if res.Executed != 4 || res.Faulted {
		t.Fatalf("result = %+v", res)
	}
	if res.LastErr != 0 {
		t.Fatalf("last errno = %d", res.LastErr)
	}
	// Coverage must have accumulated.
	raw, err := r.client.ReadMem(r.lay.Cov, r.lay.CovBytes)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := cov.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no coverage recorded")
	}
}

func TestEndToEndFaultAndRestore(t *testing.T) {
	r := newRig(t, true)
	// Plant the exception monitor breakpoint.
	panicAddr := r.syms.Addr("panic_handler")
	if err := r.client.SetBreakpoint(panicAddr); err != nil {
		t.Fatal(err)
	}
	// load_partitions with the remap flag on the last partition: bug #13.
	p := &wire.Prog{Calls: []wire.Call{
		call(r.apiIdx("load_partitions"), imm(3), imm(8)),
	}}
	st, _ := r.runProg(t, p)
	if st.Kind != cpu.StopBreakpoint || st.PC != panicAddr {
		t.Fatalf("expected stop at panic_handler, got %+v", st)
	}
	// The kernel image in flash is now corrupt: reset must fail to boot.
	if err := r.client.Reset(); err == nil {
		t.Fatal("reset succeeded on a corrupted image")
	}
	// While bricked, execution commands time out...
	if _, err := r.client.Continue(1000); err != ocd.ErrTimeout {
		t.Fatalf("continue on bricked board: %v", err)
	}
	// ...but flash access still works: reflash both partitions and reboot.
	info := Info()
	imgs, err := info.BuildImages(boards.STM32H745(), true)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := info.PartTable()
	for _, part := range []struct {
		name string
		data []byte
	}{{"bootloader", imgs.Boot}, {"kernel", imgs.Kernel}} {
		pt := tab.Lookup(part.name)
		if err := r.client.FlashErase(pt.Offset, pt.Size); err != nil {
			t.Fatal(err)
		}
		if err := r.client.FlashWrite(pt.Offset, part.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.client.Reset(); err != nil {
		t.Fatalf("reset after reflash: %v", err)
	}
	// The revived board executes programs again.
	st2, res := r.runProg(t, &wire.Prog{Calls: []wire.Call{
		call(r.apiIdx("uxTaskGetNumberOfTasks")),
	}})
	if st2.Kind != cpu.StopBreakpoint || res.Executed != 1 {
		t.Fatalf("post-restore run: stop=%+v res=%+v", st2, res)
	}
}

func TestEndToEndUARTLog(t *testing.T) {
	r := newRig(t, false)
	p := &wire.Prog{Calls: []wire.Call{
		call(r.apiIdx("vLoggingPrintf"), blob([]byte("hello-from-target\x00"))),
	}}
	_, res := r.runProg(t, p)
	if res.Executed != 1 {
		t.Fatalf("result %+v", res)
	}
	lines, err := r.client.DrainUART()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "hello-from-target") {
			found = true
		}
	}
	if !found {
		t.Fatalf("log line missing from UART drain: %q", lines)
	}
}

func TestAPITableMatchesInfo(t *testing.T) {
	r := newRig(t, false)
	_ = r
	info := Info()
	// Build the firmware once directly to compare the agent table.
	spec := boards.STM32H745()
	syms, err := info.SymbolTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range info.APINames {
		if syms.Lookup(name) == nil && syms.Lookup(name+"_api") == nil {
			t.Errorf("API %s has no symbol", name)
		}
	}
	if info.APIIndex("xQueueCreate") < 0 || info.APIIndex("nonsense") != -1 {
		t.Fatal("APIIndex broken")
	}
}

func TestHTTPAndJSONViaAgent(t *testing.T) {
	r := newRig(t, true)
	req := []byte("POST /api/json?pretty=1 HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"a\":[1,2,3]}")
	p := &wire.Prog{Calls: []wire.Call{
		call(r.apiIdx("http_server_init"), imm(8080)),
		call(r.apiIdx("http_server_handle"), blob(req), imm(uint64(len(req)))),
		call(r.apiIdx("json_parse"), blob([]byte(`{"k":"v"}`)), imm(9)),
		call(r.apiIdx("json_encode"), ref(2), imm(0)),
		call(r.apiIdx("json_free"), ref(2)),
	}}
	st, res := r.runProg(t, p)
	if st.Kind != cpu.StopBreakpoint || res.Executed != 5 || res.Faulted {
		t.Fatalf("stop=%+v res=%+v", st, res)
	}
}
