package zephyr

import "github.com/eof-fuzz/eof/internal/osinfo"

// headers returns the C headers the specification generator extracts
// Zephyr's Syzlang from.
func headers() []osinfo.Header {
	return []osinfo.Header{
		{Path: "include/zephyr/kernel_thread.h", Text: threadH},
		{Path: "include/zephyr/kernel_msgq.h", Text: msgqH},
		{Path: "include/zephyr/kernel_sync.h", Text: syncH},
		{Path: "include/zephyr/kernel_heap.h", Text: heapH},
		{Path: "include/zephyr/data/json.h", Text: jsonH},
		{Path: "include/zephyr/drivers/spi_ll.h", Text: spiH},
		{Path: "include/zephyr/drivers.h", Text: zdriversH},
	}
}

const threadH = `
/**
 * Create a thread.
 * @param name thread name string
 * @param priority must be between -16 and 15
 * @param stack must be between 128 and 65536
 * @param behavior one of {0, 1, 2, 3}
 * @return handle of type kthread_t
 */
k_tid_t k_thread_create(const char *name, int priority, unsigned stack, int behavior);

/**
 * Abort a thread.
 * @param thread handle of type kthread_t
 */
void k_thread_abort(k_tid_t thread);

/**
 * Sleep for some milliseconds.
 * @param ms must be between 0 and 5000
 */
int k_sleep(unsigned ms);

/**
 * Change a thread's priority.
 * @param thread handle of type kthread_t
 * @param priority must be between -16 and 15
 */
void k_thread_priority_set(k_tid_t thread, int priority);

/**
 * Print a message to the console.
 * @param message message string
 */
void printk_api(const char *message);
`

const msgqH = `
/**
 * Allocate and initialise a message queue.
 * @param msg_size must be between 1 and 1024
 * @param max_msgs must be between 1 and 256
 * @return handle of type msgq_t
 */
int k_msgq_alloc_init(unsigned msg_size, unsigned max_msgs);

/**
 * Put a message into a queue.
 * @param msgq handle of type msgq_t
 * @param data buffer with the message bytes
 * @param ticks timeout in ticks
 */
int k_msgq_put(struct k_msgq *msgq, const void *data, unsigned ticks);

/**
 * Get a message from a queue.
 * @param msgq handle of type msgq_t
 * @param ticks timeout in ticks
 */
int k_msgq_get(struct k_msgq *msgq, unsigned ticks);

/**
 * Discard all messages in a queue and release waiters.
 * @param msgq handle of type msgq_t
 */
void k_msgq_purge(struct k_msgq *msgq);

/**
 * Release a queue's allocated buffer.
 * @param msgq handle of type msgq_t
 */
int k_msgq_cleanup(struct k_msgq *msgq);
`

const syncH = `
/**
 * Initialise a semaphore.
 * @param initial must be between 0 and 65535
 * @param limit must be between 1 and 65535
 * @return handle of type zsem_t
 */
int k_sem_init(unsigned initial, unsigned limit);

/**
 * Take a semaphore.
 * @param sem handle of type zsem_t
 * @param ticks timeout in ticks
 */
int k_sem_take(struct k_sem *sem, unsigned ticks);

/**
 * Give a semaphore.
 * @param sem handle of type zsem_t
 */
void k_sem_give(struct k_sem *sem);

/**
 * Initialise a mutex.
 * @return handle of type zmutex_t
 */
int k_mutex_init(void);

/**
 * Lock a mutex.
 * @param mutex handle of type zmutex_t
 * @param ticks timeout in ticks
 */
int k_mutex_lock(struct k_mutex *mutex, unsigned ticks);

/**
 * Unlock a mutex.
 * @param mutex handle of type zmutex_t
 */
int k_mutex_unlock(struct k_mutex *mutex);

/**
 * Initialise an event object.
 * @return handle of type zevent_t
 */
int k_event_init(void);

/**
 * Post events to an event object.
 * @param event handle of type zevent_t
 * @param events must be between 1 and 16777215
 */
unsigned k_event_post(struct k_event *event, unsigned events);

/**
 * Wait for events.
 * @param event handle of type zevent_t
 * @param events must be between 1 and 16777215
 * @param options bitmask of zevent_opts
 * @param ticks timeout in ticks
 * @flags zevent_opts K_EVENT_RESET=1
 */
unsigned k_event_wait(struct k_event *event, unsigned events, unsigned options, unsigned ticks);

/**
 * Initialise a kernel timer.
 * @param period must be between 1 and 1048576
 * @param oneshot one of {0, 1}
 * @param behavior one of {0, 1, 2}
 * @return handle of type ztimer_t
 */
int k_timer_init(unsigned period, int oneshot, int behavior);

/**
 * Start a kernel timer.
 * @param timer handle of type ztimer_t
 */
void k_timer_start(struct k_timer *timer);

/**
 * Stop a kernel timer.
 * @param timer handle of type ztimer_t
 */
void k_timer_stop(struct k_timer *timer);
`

const heapH = `
/**
 * Allocate memory from the system heap.
 * @param size must be between 1 and 65536
 * @return handle of type zmem_t
 */
void *k_malloc(unsigned size);

/**
 * Free system heap memory.
 * @param ptr handle of type zmem_t
 */
void k_free(void *ptr);

/**
 * Initialise a secondary k_heap arena.
 * @param bytes must be between 1 and 65536
 * @return handle of type zkheap_t
 */
int k_heap_init(unsigned bytes);

/**
 * Allocate from a k_heap arena.
 * @param heap handle of type zkheap_t
 * @param size must be between 1 and 4096
 */
void *k_heap_alloc(struct k_heap *heap, unsigned size);

/**
 * Run the heap stress test harness.
 * @param op_count must be between 1 and 1000
 * @param max_size must be between 1 and 8192
 */
int sys_heap_stress(unsigned op_count, unsigned max_size);

/**
 * Validate system heap integrity.
 */
int sys_heap_validate(void);
`

const jsonH = `
/**
 * Parse a JSON document.
 * @param data buffer with the document bytes
 * @param length length of data
 * @return handle of type zjson_t
 */
int json_obj_parse(const char *data, unsigned length);

/**
 * Encode a parsed JSON document back to text.
 * @param doc handle of type zjson_t
 * @param options bitmask of zjson_flags
 * @flags zjson_flags JSON_PRETTY=1 JSON_SORTED=2
 */
int json_obj_encode(int doc, unsigned options);

/**
 * Release a parsed JSON document.
 * @param doc handle of type zjson_t
 */
void json_obj_free(int doc);
`

const spiH = `
/**
 * Open a session on the SPI low-level controller.
 * @return handle of type spi_t
 */
int drv_spi_open(void);

/**
 * Drive the SPI low-level controller session state machine.
 * @param session handle of type spi_t
 * @param cmd one of {0, 1, 2, 3, 4, 5, 6}
 * @param value must be between 0 and 1023
 */
int drv_spi_control(int session, unsigned cmd, unsigned value);

/**
 * Release a SPI low-level controller session.
 * @param session handle of type spi_t
 */
int drv_spi_release(int session);
`

const zdriversH = `
/**
 * Configure the GPIO bank.
 * @param mode bitmask of z_periph_mode
 * @flags z_periph_mode ENABLE=1 IRQ=2 DMA=4 LOWPOWER=8 PSC1=256 PSC2=512 PSC3=768
 */
int gpio_pin_configure(unsigned mode);

/**
 * Read a channel of the GPIO bank.
 * @param channel must be between 0 and 31
 */
long gpio_pin_get(unsigned channel);

/**
 * Configure the ADC.
 * @param mode bitmask of z_periph_mode
 */
int adc_channel_setup(unsigned mode);

/**
 * Read a channel of the ADC.
 * @param channel must be between 0 and 31
 */
long adc_read(unsigned channel);

/**
 * Configure the CAN controller.
 * @param mode bitmask of z_periph_mode
 */
int can_set_mode(unsigned mode);

/**
 * Read a channel of the CAN controller.
 * @param channel must be between 0 and 31
 */
long can_recv(unsigned channel);
`
