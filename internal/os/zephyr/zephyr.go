// Package zephyr is the Zephyr personality: k_thread/k_msgq/k_sem/k_heap
// APIs over the shared framework, the sys_heap stress/validate surface, and
// the JSON library built with the encode defect. It carries Table-2 bugs
// #1 (sys_heap_stress), #2 (z_impl_k_msgq_get after purge), #3
// (json_obj_encode) and #4 (k_heap_init with a sub-header size).
package zephyr

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/app/jsonlib"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/apiutil"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Name is the canonical OS identifier.
const Name = "zephyr"

// Version matches the paper's evaluated revision.
const Version = "143b14b"

const partTable = `# name, type, offset, size
bootloader, app, 0x0, 0x10000
kernel, app, 0x10000, 0x100000
storage, data, 0x110000, 0x10000
`

// kForever is K_FOREVER as a 32-bit timeout.
const kForever = 0xFFFFFFFF

// kheap is a secondary k_heap arena carved from the system heap.
type kheap struct {
	base uint64
	size int
	used int
}

// OS is one booted Zephyr instance.
type OS struct {
	periphs []*rtos.Periph
	drv     *rtos.Driver
	env     *board.Env
	k       *rtos.Kernel
	reg     *apiutil.Registrar
	json    *jsonlib.Lib

	fnFatal   *rtos.Fn
	fnPrintk  *rtos.Fn
	fnStress  *rtos.Fn
	fnMsgqGet *rtos.Fn
	fnHeapIn  *rtos.Fn

	purged map[uint32]bool // msgq handles purged while empty (bug #2 state)
}

// Info returns the host-visible build description.
func Info() *osinfo.Info {
	return &osinfo.Info{
		Name:               Name,
		Display:            "Zephyr",
		Version:            Version,
		PartTableText:      partTable,
		Builder:            Build,
		ExceptionSyms:      []string{"z_fatal_error"},
		Headers:            headers(),
		APINames:           apiOrder(),
		BaseCodeBytes:      768_000,
		BytesPerBlock:      48,
		InstrBytesPerBlock: 113,
		BuildID:            0x143B14B7,
		Dictionary: []string{
			"{\"sensor\":\"temp\",\"value\":21.5}",
			"[true,false,null]",
			"{\"a\":", "[1,2", "\"key\"", ":null}", ",true]", "{\"k\":{",
			"}}", "]]", "2.5e3", "\\u0041",
		},
	}
}

// Build constructs the Zephyr firmware.
func Build(env *board.Env) (board.Firmware, error) {
	k := rtos.NewKernel(env, "Zephyr")
	k.InitSched("z_clock_announce", "z_priq_rb_best", "z_swap_next_thread", "kernel/sched.c")

	heapBase := env.ScratchBase + agent.ArenaSize
	heapEnd := env.RAM.End() - 4096
	if heapBase+16*1024 > heapEnd {
		return nil, fmt.Errorf("zephyr: RAM too small for heap")
	}
	k.NewHeap(heapBase, int(heapEnd-heapBase), "sys_heap_alloc", "sys_heap_free", "z_heap_lock", "lib/heap/heap.c")

	o := &OS{env: env, k: k, purged: make(map[uint32]bool)}
	o.fnFatal = k.Fn("z_fatal_error", "kernel/fatal.c", 60, 2)
	o.fnPrintk = k.Fn("printk", "lib/os/printk.c", 120, 2)
	o.fnStress = k.Fn("sys_heap_stress", "lib/heap/heap_stress.c", 30, 10)
	o.fnMsgqGet = k.Fn("z_impl_k_msgq_get", "kernel/msg_q.c", 170, 8)
	o.fnHeapIn = k.Fn("k_heap_init", "kernel/kheap.c", 25, 7)
	k.ExceptionFn = o.fnFatal
	k.ConsoleWrite = o.consoleWrite

	o.json = jsonlib.New(k, jsonlib.WithEncodeBug())

	o.reg = &apiutil.Registrar{K: k, File: "kernel/zephyr_api.c"}
	o.drv = k.NewDriver("dma", "drv_spi_open", "drv_spi_control", "drv_spi_release", "drivers/spi/spi_ll.c")
	o.periphs = append(o.periphs, k.NewPeriph("gpio", "gpio_pin_configure", "gpio_pin_get", "drivers/gpio/gpio_stm32.c"))
	o.periphs = append(o.periphs, k.NewPeriph("adc", "adc_channel_setup", "adc_read", "drivers/adc/adc_stm32.c"))
	o.periphs = append(o.periphs, k.NewPeriph("can", "can_set_mode", "can_recv", "drivers/can/can_stm32.c"))
	o.buildTable()
	names := o.reg.Names()
	want := apiOrder()
	if len(names) != len(want) {
		return nil, fmt.Errorf("zephyr: API table drift: %d registered, %d declared", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			return nil, fmt.Errorf("zephyr: API order drift at %d: %s != %s", i, names[i], want[i])
		}
	}
	return agent.New(env, o), nil
}

func (o *OS) consoleWrite(s string) {
	o.fnPrintk.Enter()
	o.fnPrintk.B(1)
	o.env.UART.WriteString(s)
	o.fnPrintk.Exit()
}

// Name implements agent.Target.
func (o *OS) Name() string { return Name }

// Kernel implements agent.Target.
func (o *OS) Kernel() *rtos.Kernel { return o.k }

// APIs implements agent.Target.
func (o *OS) APIs() []agent.API { return o.reg.Table }

func apiOrder() []string {
	return []string{
		"k_thread_create", "k_thread_abort", "k_sleep", "k_thread_priority_set",
		"k_msgq_alloc_init", "k_msgq_put", "k_msgq_get", "k_msgq_purge", "k_msgq_cleanup",
		"k_sem_init", "k_sem_take", "k_sem_give",
		"k_mutex_init", "k_mutex_lock", "k_mutex_unlock",
		"k_event_init", "k_event_post", "k_event_wait",
		"k_timer_init", "k_timer_start", "k_timer_stop",
		"k_malloc", "k_free",
		"k_heap_init", "k_heap_alloc",
		"sys_heap_stress", "sys_heap_validate",
		"json_obj_parse", "json_obj_encode", "json_obj_free",
		"printk_api",
		"drv_spi_open", "drv_spi_control", "drv_spi_release",
		"gpio_pin_configure", "gpio_pin_get", "adc_channel_setup", "adc_read",
		"can_set_mode", "can_recv",
	}
}

func (o *OS) timeout(v uint64) int { return apiutil.Timeout32(v, kForever) }

func (o *OS) buildTable() {
	k := o.k
	r := o.reg
	ar := apiutil.Arg

	r.Reg("k_thread_create", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 12, "zthread")
		prio := int(int32(uint32(ar(a, 1))))
		stack := int(uint32(ar(a, 2)))
		// Zephyr priorities: cooperative are negative, preemptive positive;
		// map [-16, 15] onto the framework's [0, 31].
		if prio < -16 || prio > 15 {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		obj, e := k.Sched.Create(name, prio+16, stack, int(ar(a, 3)))
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_thread_abort", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		obj.Data.(*rtos.Task).State = rtos.TaskDead
		return 0, k.Objects.Delete(obj.ID)
	})

	r.Reg("k_sleep", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ms := uint32(ar(a, 0))
		if ms == 0 {
			f.B(1)
			return 0, rtos.OK
		}
		if ms > 5000 {
			f.B(2)
			ms = 5000
		}
		f.B(3)
		k.Sleep(int(ms))
		return 0, rtos.OK
	})

	r.Reg("k_thread_priority_set", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		prio := int(int32(uint32(ar(a, 1))))
		if prio < -16 || prio > 15 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		t := obj.Data.(*rtos.Task)
		t.Prio, t.BasePrio = prio+16, prio+16
		return 0, rtos.OK
	})

	r.Reg("k_msgq_alloc_init", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msgSize := int(uint32(ar(a, 0)))
		maxMsgs := int(uint32(ar(a, 1)))
		obj, e := k.NewQueue("msgq", msgSize, maxMsgs)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_msgq_put", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		ptr := ar(a, 1)
		if ptr == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		item := k.ReadRAM(ptr, q.ItemSize)
		if e := q.Send(item, o.timeout(ar(a, 2))); e.Failed() {
			f.B(4)
			return 0, e
		}
		delete(o.purged, obj.ID) // a successful put re-initialises the wait queue
		f.B(5)
		return 0, rtos.OK
	})

	// Bug #2 (Table 2): k_msgq_purge on an already-empty queue leaves the
	// wait-queue header pointing at freed stack frames; the next blocking
	// get walks it in z_impl_k_msgq_get.
	r.Reg("k_msgq_get", 8, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		timeout := o.timeout(ar(a, 1))
		o.fnMsgqGet.Enter()
		defer o.fnMsgqGet.Exit()
		if q.Count() == 0 && timeout != 0 && o.purged[obj.ID] {
			o.fnMsgqGet.B(1)
			k.PanicFault(cpu.FaultBus, "z_impl_k_msgq_get: wait queue corrupted by purge")
		}
		o.fnMsgqGet.B(2)
		item, e := q.Recv(timeout)
		if e.Failed() {
			o.fnMsgqGet.B(3)
			return 0, e
		}
		o.fnMsgqGet.B(4)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	r.Reg("k_msgq_purge", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		if q.Count() == 0 {
			f.B(2)
			o.purged[obj.ID] = true // BUG state: purge of an empty queue
		} else {
			f.B(3)
			for q.Count() > 0 {
				q.Recv(0)
			}
		}
		f.B(4)
		return 0, rtos.OK
	})

	r.Reg("k_msgq_cleanup", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		delete(o.purged, obj.ID)
		return 0, obj.Data.(*rtos.Queue).Destroy()
	})

	r.Reg("k_sem_init", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewSemaphore("ksem", int(uint32(ar(a, 0))), int(uint32(ar(a, 1))))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_sem_take", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Take(o.timeout(ar(a, 1)))
	})

	r.Reg("k_sem_give", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Give()
	})

	r.Reg("k_mutex_init", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewMutex("kmutex", false)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_mutex_lock", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjMutex)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Mutex).Lock(o.timeout(ar(a, 1)))
	})

	r.Reg("k_mutex_unlock", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjMutex)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Mutex).Unlock()
	})

	r.Reg("k_event_init", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewEvent("kevent")
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_event_post", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Event).Send(uint32(ar(a, 1)))
	})

	r.Reg("k_event_wait", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		var opts uint32
		if ar(a, 2)&1 != 0 {
			f.B(2)
			opts |= rtos.EvtClear
		}
		got, e := obj.Data.(*rtos.Event).Recv(uint32(ar(a, 1)), opts, o.timeout(ar(a, 3)))
		if e.Failed() {
			f.B(3)
			return 0, e
		}
		f.B(4)
		return uint64(got), rtos.OK
	})

	r.Reg("k_timer_init", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewTimer("ktimer", ar(a, 0), ar(a, 1)&1 != 0, int(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_timer_start", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Timer).Start()
	})

	r.Reg("k_timer_stop", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTimer)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Timer).Stop()
	})

	r.Reg("k_malloc", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		p := k.Heap.Alloc(int(uint32(ar(a, 0))))
		if p == 0 {
			f.B(1)
			return 0, rtos.ErrNoMem
		}
		f.B(2)
		return p, rtos.OK
	})

	r.Reg("k_free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Heap.Free(ar(a, 0))
	})

	// Bug #4 (Table 2): k_heap_init accepts any non-zero size, but the chunk
	// header needs 64 bytes; smaller arenas scribble the header past the
	// allocation.
	r.Reg("k_heap_init", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		size := int(uint32(ar(a, 0)))
		o.fnHeapIn.Enter()
		defer o.fnHeapIn.Exit()
		if size == 0 {
			o.fnHeapIn.B(1)
			return 0, rtos.ErrInval
		}
		o.fnHeapIn.B(2)
		if size < 64 {
			o.fnHeapIn.B(3)
			k.PanicFault(cpu.FaultMemManage, fmt.Sprintf(
				"k_heap_init: chunk header does not fit in %d-byte arena", size))
		}
		if size > 64*1024 {
			o.fnHeapIn.B(4)
			return 0, rtos.ErrNoMem
		}
		base := k.Heap.Alloc(size)
		if base == 0 {
			o.fnHeapIn.B(5)
			return 0, rtos.ErrNoMem
		}
		o.fnHeapIn.B(6)
		obj := k.Objects.New(rtos.ObjHeapRef, "kheap", &kheap{base: base, size: size})
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("k_heap_alloc", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjHeapRef)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		h, ok := obj.Data.(*kheap)
		if !ok {
			f.B(2)
			return 0, rtos.ErrType
		}
		n := (int(uint32(ar(a, 1))) + 7) &^ 7
		if n <= 0 || h.used+n > h.size {
			f.B(3)
			return 0, rtos.ErrNoMem
		}
		f.B(4)
		addr := h.base + uint64(h.used)
		h.used += n
		return addr, rtos.OK
	})

	r.Reg("sys_heap_stress", 10, o.sysHeapStress)

	r.Reg("sys_heap_validate", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		if !k.Heap.Walk() {
			f.B(1)
			return 0, rtos.ErrState
		}
		f.B(2)
		return 1, rtos.OK
	})

	r.Reg("json_obj_parse", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		data := apiutil.Bytes(k, ar(a, 0), int(uint32(ar(a, 1))), 4096)
		h, e := o.json.Parse(data)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	// Bug #3 (Table 2) lives inside the library build: pretty-encoding a
	// nested object overruns the indent table in json_obj_encode.
	r.Reg("json_obj_encode", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		out, e := o.json.Encode(uint32(ar(a, 0)), uint32(ar(a, 1)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(len(out)), rtos.OK
	})

	r.Reg("json_obj_free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.json.Free(uint32(ar(a, 0)))
	})

	r.Reg("printk_api", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		msg := apiutil.CString(k, ar(a, 0), 128, "")
		if msg == "" {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		k.Kprintf("%s\n", msg)
		return uint64(len(msg)), rtos.OK
	})

	r.Reg("drv_spi_open", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		h, e := o.drv.Open()
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	r.Reg("drv_spi_control", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ret, e := o.drv.Ctl(uint32(ar(a, 0)), uint32(ar(a, 1)), uint32(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return ret, e
		}
		f.B(2)
		return ret, rtos.OK
	})

	r.Reg("drv_spi_release", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.drv.Close(uint32(ar(a, 0)))
	})

	r.Reg("gpio_pin_configure", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[0].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("gpio_pin_get", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[0].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("adc_channel_setup", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[1].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("adc_read", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[1].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("can_set_mode", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[2].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("can_recv", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[2].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})
}

// sysHeapStress is Zephyr's heap stress-test entry. Bug #1 (Table 2): the
// fixed 50-slot pointer-tracking array is indexed by the op counter when the
// size class is large, overflowing on long large-block runs.
func (o *OS) sysHeapStress(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
	k := o.k
	ops := int(uint32(apiutil.Arg(a, 0)))
	maxSize := int(uint32(apiutil.Arg(a, 1)))
	s := o.fnStress
	s.Enter()
	defer s.Exit()
	if ops <= 0 || ops > 1000 {
		s.B(1)
		return 0, rtos.ErrInval
	}
	if maxSize <= 0 || maxSize > 8192 {
		s.B(2)
		return 0, rtos.ErrInval
	}
	s.B(3)
	live := make([]uint64, 0, 50)
	for i := 0; i < ops; i++ {
		if maxSize > 2048 && i > 50 {
			s.B(4)
			k.PanicFault(cpu.FaultPanic, fmt.Sprintf(
				"sys_heap_stress: tracking array overflow at op %d (max_size=%d)", i, maxSize))
		}
		sz := 8 + int(k.Rand()%uint64(maxSize))
		if k.Rand()%3 == 0 && len(live) > 0 {
			s.B(5)
			idx := int(k.Rand()) % len(live)
			if idx < 0 {
				idx = -idx
			}
			k.Heap.Free(live[idx])
			live = append(live[:idx], live[idx+1:]...)
		} else {
			p := k.Heap.Alloc(sz)
			if p == 0 {
				s.B(6)
				break
			}
			s.B(7)
			if len(live) < cap(live) {
				live = append(live, p)
			} else {
				k.Heap.Free(p)
			}
		}
	}
	for _, p := range live {
		k.Heap.Free(p)
	}
	s.B(8)
	if !k.Heap.Walk() {
		s.B(9)
		return 0, rtos.ErrState
	}
	return uint64(ops), rtos.OK
}
