package zephyr_test

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/os/zephyr"
	"github.com/eof-fuzz/eof/internal/ostest"
)

func rig(t *testing.T) *ostest.Rig {
	return ostest.New(t, zephyr.Info(), boards.STM32H745())
}

func TestBug1SysHeapStress(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("sys_heap_stress", ostest.Imm(200), ostest.Imm(4096)))
	out.ExpectFault(t, cpu.FaultPanic, "sys_heap_stress")
}

func TestBug1SmallRunsAreSafe(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("sys_heap_stress", ostest.Imm(40), ostest.Imm(4096)),  // ≤50 ops: fine
		r.Call("sys_heap_stress", ostest.Imm(200), ostest.Imm(1024)), // small blocks: fine
		r.Call("sys_heap_validate"),
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestBug2MsgqGetAfterPurge(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("k_msgq_alloc_init", ostest.Imm(8), ostest.Imm(4)),
		r.Call("k_msgq_purge", ostest.Ref(0)), // purge while empty
		r.Call("k_msgq_get", ostest.Ref(0), ostest.Imm(5)),
	)
	out.ExpectFault(t, cpu.FaultBus, "z_impl_k_msgq_get")
}

func TestBug2PutHealsPurge(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("k_msgq_alloc_init", ostest.Imm(8), ostest.Imm(4)),
		r.Call("k_msgq_purge", ostest.Ref(0)),
		r.Call("k_msgq_put", ostest.Ref(0), ostest.Blob([]byte("12345678")), ostest.Imm(0)),
		r.Call("k_msgq_get", ostest.Ref(0), ostest.Imm(5)),
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestBug3JSONEncodeDeepPretty(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("json_obj_parse", ostest.Blob([]byte(`{"a":{"b":{"c":{"d":1}}}}`)), ostest.Imm(25)),
		r.Call("json_obj_encode", ostest.Ref(0), ostest.Imm(1)), // JSON_PRETTY
	)
	out.ExpectFault(t, cpu.FaultUsage, "json_obj_encode")
}

func TestBug4KHeapInitTiny(t *testing.T) {
	r := rig(t)
	out := r.Run(r.Call("k_heap_init", ostest.Imm(17)))
	out.ExpectFault(t, cpu.FaultMemManage, "k_heap_init")
}

func TestKHeapInitBoundaries(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("k_heap_init", ostest.Imm(0)),  // EINVAL, checked
		r.Call("k_heap_init", ostest.Imm(64)), // minimum safe
		r.Call("k_heap_alloc", ostest.Ref(1), ostest.Imm(16)),
	)
	if !out.Completed || out.Result.Faulted {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestDriverChainOnHardware(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("drv_spi_open"),
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(1), ostest.Imm(0)), // INIT
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(2), ostest.Imm(1)), // CHANNEL
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(2), ostest.Imm(3)),
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(3), ostest.Imm(0)), // ARM
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(5), ostest.Imm(6)), // CALIBRATE
		r.Call("drv_spi_control", ostest.Ref(0), ostest.Imm(6), ostest.Imm(0)), // RUN
		r.Call("drv_spi_release", ostest.Ref(0)),
	)
	if !out.Completed || out.Result.Faulted || out.Result.Executed != 8 {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestPeripheralsOnHardware(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("gpio_pin_configure", ostest.Imm(1|2)), // ENABLE|IRQ
		r.Call("gpio_pin_get", ostest.Imm(3)),
		r.Call("adc_channel_setup", ostest.Imm(1|4|0x100)),
		r.Call("adc_read", ostest.Imm(7)),
		r.Call("can_set_mode", ostest.Imm(1)),
		r.Call("can_recv", ostest.Imm(0)),
	)
	if !out.Completed || out.Result.LastErr != 0 {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestThreadsAndSync(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("k_thread_create", ostest.Str("th"), ostest.Imm(0xFFFFFFF8), ostest.Imm(512), ostest.Imm(0)), // prio -8
		r.Call("k_thread_priority_set", ostest.Ref(0), ostest.Imm(5)),
		r.Call("k_sem_init", ostest.Imm(1), ostest.Imm(4)),
		r.Call("k_sem_take", ostest.Ref(2), ostest.Imm(3)),
		r.Call("k_sem_give", ostest.Ref(2)),
		r.Call("k_mutex_init"),
		r.Call("k_mutex_lock", ostest.Ref(5), ostest.Imm(3)),
		r.Call("k_mutex_unlock", ostest.Ref(5)),
		r.Call("k_thread_abort", ostest.Ref(0)),
	)
	if !out.Completed || out.Result.Executed != 9 || out.Result.LastErr != 0 {
		t.Fatalf("outcome: %+v", out)
	}
}
