package pokos

import "github.com/eof-fuzz/eof/internal/osinfo"

// headers returns the C headers the specification generator extracts
// PoKOS's Syzlang from.
func headers() []osinfo.Header {
	return []osinfo.Header{
		{Path: "include/core/thread.h", Text: threadH},
		{Path: "include/core/partition.h", Text: partitionH},
		{Path: "include/middleware/port.h", Text: portH},
		{Path: "include/core/sync.h", Text: syncH},
		{Path: "include/core/misc.h", Text: miscH},
		{Path: "include/drivers/dev.h", Text: pokdevH},
		{Path: "include/drivers/periph.h", Text: pokdriversH},
	}
}

const threadH = `
/**
 * Create a partition thread (only outside NORMAL mode).
 * @param priority must be between 0 and 31
 * @param period must be between 0 and 1000000
 * @param behavior one of {0, 1, 2, 3}
 * @return handle of type pokthread_t
 */
pok_ret_t pok_thread_create(unsigned priority, unsigned period, int behavior);

/**
 * Sleep for some milliseconds.
 * @param ms must be between 0 and 5000
 */
pok_ret_t pok_thread_sleep(unsigned ms);

/**
 * Suspend a thread.
 * @param thread handle of type pokthread_t
 */
pok_ret_t pok_thread_suspend(pok_thread_id_t thread);

/**
 * Resume a suspended thread.
 * @param thread handle of type pokthread_t
 */
pok_ret_t pok_thread_resume(pok_thread_id_t thread);
`

const partitionH = `
/**
 * Change the partition operating mode.
 * @param mode one of {0, 1, 2, 3}
 */
pok_ret_t pok_partition_set_mode(unsigned mode);

/**
 * Query the partition operating mode.
 */
unsigned pok_partition_get_mode(void);
`

const portH = `
/**
 * Create a sampling port.
 * @param name port name string
 * @param size must be between 1 and 1024
 * @return handle of type sport_t
 */
pok_ret_t pok_port_sampling_create(const char *name, unsigned size);

/**
 * Write a sampling port's message.
 * @param port handle of type sport_t
 * @param data buffer with the message bytes
 * @param length length of data
 */
pok_ret_t pok_port_sampling_write(pok_port_id_t port, const void *data, unsigned length);

/**
 * Read a sampling port's freshness.
 * @param port handle of type sport_t
 */
pok_ret_t pok_port_sampling_read(pok_port_id_t port);

/**
 * Create a queuing port.
 * @param size must be between 1 and 1024
 * @param depth must be between 1 and 256
 * @return handle of type qport_t
 */
pok_ret_t pok_port_queuing_create(unsigned size, unsigned depth);

/**
 * Send through a queuing port.
 * @param port handle of type qport_t
 * @param data buffer with the message bytes
 * @param ticks timeout in ticks
 */
pok_ret_t pok_port_queuing_send(pok_port_id_t port, const void *data, unsigned ticks);

/**
 * Receive from a queuing port.
 * @param port handle of type qport_t
 * @param ticks timeout in ticks
 */
pok_ret_t pok_port_queuing_receive(pok_port_id_t port, unsigned ticks);
`

const syncH = `
/**
 * Create a counting semaphore.
 * @param value must be between 0 and 65535
 * @param max must be between 1 and 65535
 * @return handle of type poksem_t
 */
pok_ret_t pok_sem_create(unsigned value, unsigned max);

/**
 * Wait on a semaphore.
 * @param sem handle of type poksem_t
 * @param ticks timeout in ticks
 */
pok_ret_t pok_sem_wait(pok_sem_id_t sem, unsigned ticks);

/**
 * Signal a semaphore.
 * @param sem handle of type poksem_t
 */
pok_ret_t pok_sem_signal(pok_sem_id_t sem);

/**
 * Create an event.
 * @return handle of type pokevent_t
 */
pok_ret_t pok_event_create(void);

/**
 * Signal an event.
 * @param event handle of type pokevent_t
 * @param bits must be between 1 and 16777215
 */
pok_ret_t pok_event_signal(pok_event_id_t event, unsigned bits);

/**
 * Wait for an event.
 * @param event handle of type pokevent_t
 * @param bits must be between 1 and 16777215
 * @param ticks timeout in ticks
 */
pok_ret_t pok_event_wait(pok_event_id_t event, unsigned bits, unsigned ticks);
`

const miscH = `
/**
 * Read the system time.
 */
unsigned long pok_time_get(void);

/**
 * Allocate a kernel buffer.
 * @param size must be between 1 and 65536
 * @return handle of type pokbuf_t
 */
void *pok_buffer_alloc(unsigned size);

/**
 * Release a kernel buffer.
 * @param buf handle of type pokbuf_t
 */
pok_ret_t pok_buffer_free(void *buf);
`

const pokdevH = `
/**
 * Open a session on the device controller.
 * @return handle of type pokdev_t
 */
int pok_dev_open(void);

/**
 * Drive the device controller session state machine.
 * @param session handle of type pokdev_t
 * @param cmd one of {0, 1, 2, 3, 4, 5, 6}
 * @param value must be between 0 and 1023
 */
int pok_dev_ctl(int session, unsigned cmd, unsigned value);

/**
 * Release a device controller session.
 * @param session handle of type pokdev_t
 */
int pok_dev_close(int session);
`

const pokdriversH = `
/**
 * Configure the GPIO bank.
 * @param mode bitmask of pok_periph_mode
 * @flags pok_periph_mode ENABLE=1 IRQ=2 DMA=4 LOWPOWER=8 PSC1=256 PSC2=512 PSC3=768
 */
int pok_gpio_config(unsigned mode);

/**
 * Read a channel of the GPIO bank.
 * @param channel must be between 0 and 31
 */
long pok_gpio_read(unsigned channel);

/**
 * Configure the CAN controller.
 * @param mode bitmask of pok_periph_mode
 */
int pok_can_config(unsigned mode);

/**
 * Read a channel of the CAN controller.
 * @param channel must be between 0 and 31
 */
long pok_can_read(unsigned channel);
`
