package pokos_test

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/os/pokos"
	"github.com/eof-fuzz/eof/internal/ostest"
)

func rig(t *testing.T) *ostest.Rig {
	return ostest.New(t, pokos.Info(), boards.STM32H745())
}

func TestPartitionModeGating(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("pok_partition_get_mode"),
		r.Call("pok_thread_create", ostest.Imm(5), ostest.Imm(100), ostest.Imm(0)), // cold start: OK
		r.Call("pok_partition_set_mode", ostest.Imm(3)),                            // NORMAL
		r.Call("pok_thread_create", ostest.Imm(5), ostest.Imm(100), ostest.Imm(0)), // forbidden now
	)
	if !out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Result.LastErr == 0 {
		t.Fatal("thread creation in NORMAL mode succeeded")
	}
	// The NORMAL transition logs over the console.
	found := false
	for _, l := range out.UART {
		if l == "pok: partition entering NORMAL mode" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mode log missing: %v", out.UART)
	}
}

func TestSamplingPorts(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("pok_port_sampling_create", ostest.Str("nav"), ostest.Imm(32)),
		r.Call("pok_port_sampling_read", ostest.Ref(0)), // empty: EEMPTY
		r.Call("pok_port_sampling_write", ostest.Ref(0), ostest.Blob([]byte("fix")), ostest.Imm(3)),
		r.Call("pok_port_sampling_read", ostest.Ref(0)),
	)
	if !out.Completed || out.Result.LastErr != 0 {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestQueuingPortsAndSync(t *testing.T) {
	r := rig(t)
	out := r.Run(
		r.Call("pok_port_queuing_create", ostest.Imm(8), ostest.Imm(2)),
		r.Call("pok_port_queuing_send", ostest.Ref(0), ostest.Blob([]byte("aa")), ostest.Imm(2)),
		r.Call("pok_port_queuing_receive", ostest.Ref(0), ostest.Imm(2)),
		r.Call("pok_sem_create", ostest.Imm(1), ostest.Imm(2)),
		r.Call("pok_sem_wait", ostest.Ref(3), ostest.Imm(2)),
		r.Call("pok_sem_signal", ostest.Ref(3)),
		r.Call("pok_event_create"),
		r.Call("pok_event_signal", ostest.Ref(6), ostest.Imm(0b101)),
		r.Call("pok_event_wait", ostest.Ref(6), ostest.Imm(0b100), ostest.Imm(2)),
		r.Call("pok_time_get"),
	)
	if !out.Completed || out.Result.Executed != 10 {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestNoPlantedBugsSurviveFuzzishSequences(t *testing.T) {
	// PoKOS carries no Table-2 bugs; a burst of edgy sequences must either
	// complete or fail with plain errors, never fault.
	r := rig(t)
	out := r.Run(
		r.Call("pok_buffer_alloc", ostest.Imm(64)),
		r.Call("pok_buffer_free", ostest.Ref(0)),
		r.Call("pok_buffer_free", ostest.Imm(0)),                 // bogus free: EINVAL
		r.Call("pok_sem_wait", ostest.Imm(12345), ostest.Imm(1)), // bogus handle
		r.Call("pok_port_sampling_write", ostest.Imm(1), ostest.Imm(0), ostest.Imm(0)),
		r.Call("pok_partition_set_mode", ostest.Imm(9)), // out of range
	)
	if !out.Completed || out.Fault != nil {
		t.Fatalf("outcome: %+v", out)
	}
}
