// Package pokos is the POK (PoKOS) personality: an ARINC-653-flavoured
// partitioned kernel with sampling/queuing ports, used by the paper's
// Gustave comparison (Table 3). No Table-2 bugs live here; the experiment on
// this OS is purely a coverage race.
package pokos

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/os/apiutil"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Name is the canonical OS identifier.
const Name = "pokos"

// Version matches the paper's evaluated revision.
const Version = "b2e1cc3"

const partTable = `# name, type, offset, size
bootloader, app, 0x0, 0x10000
kernel, app, 0x10000, 0x200000
config, data, 0x210000, 0x10000
`

// Partition operating modes (ARINC 653).
const (
	modeIdle = iota
	modeColdStart
	modeWarmStart
	modeNormal
	modeCount
)

// samplingPort is a single-message overwriting port.
type samplingPort struct {
	buf      uint64
	size     int
	valid    bool
	writes   uint64
	lastTick uint64
}

// OS is one booted PoKOS instance.
type OS struct {
	periphs []*rtos.Periph
	drv     *rtos.Driver
	env     *board.Env
	k       *rtos.Kernel
	reg     *apiutil.Registrar

	fnFatal *rtos.Fn
	fnCons  *rtos.Fn

	mode int
}

// Info returns the host-visible build description.
func Info() *osinfo.Info {
	return &osinfo.Info{
		Name:               Name,
		Display:            "PoKOS",
		Version:            Version,
		PartTableText:      partTable,
		Builder:            Build,
		ExceptionSyms:      []string{"pok_fatal_error"},
		Headers:            headers(),
		APINames:           apiOrder(),
		BaseCodeBytes:      1_760_000,
		BytesPerBlock:      56,
		InstrBytesPerBlock: 180,
		BuildID:            0xB2E1CC30,
	}
}

// Build constructs the PoKOS firmware.
func Build(env *board.Env) (board.Firmware, error) {
	k := rtos.NewKernel(env, "PoKOS")
	k.InitSched("pok_sched_tick", "pok_sched_elect", "pok_context_switch", "core/sched.c")

	heapBase := env.ScratchBase + agent.ArenaSize
	heapEnd := env.RAM.End() - 4096
	if heapBase+16*1024 > heapEnd {
		return nil, fmt.Errorf("pokos: RAM too small for heap")
	}
	k.NewHeap(heapBase, int(heapEnd-heapBase), "pok_alloc", "pok_release", "pok_heap_lock", "core/alloc.c")

	o := &OS{env: env, k: k, mode: modeColdStart}
	o.fnFatal = k.Fn("pok_fatal_error", "core/fatal.c", 30, 2)
	o.fnCons = k.Fn("pok_cons_write", "drivers/cons.c", 55, 2)
	k.ExceptionFn = o.fnFatal
	k.ConsoleWrite = o.consoleWrite

	o.reg = &apiutil.Registrar{K: k, File: "core/pokos_api.c"}
	o.drv = k.NewDriver("dma", "pok_dev_open", "pok_dev_ctl", "pok_dev_close", "drivers/dev.c")
	o.periphs = append(o.periphs, k.NewPeriph("gpio", "pok_gpio_config", "pok_gpio_read", "drivers/gpio.c"))
	o.periphs = append(o.periphs, k.NewPeriph("can", "pok_can_config", "pok_can_read", "drivers/can.c"))
	o.buildTable()
	names := o.reg.Names()
	want := apiOrder()
	if len(names) != len(want) {
		return nil, fmt.Errorf("pokos: API table drift: %d registered, %d declared", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			return nil, fmt.Errorf("pokos: API order drift at %d: %s != %s", i, names[i], want[i])
		}
	}
	return agent.New(env, o), nil
}

func (o *OS) consoleWrite(s string) {
	o.fnCons.Enter()
	o.fnCons.B(1)
	o.env.UART.WriteString(s)
	o.fnCons.Exit()
}

// Name implements agent.Target.
func (o *OS) Name() string { return Name }

// Kernel implements agent.Target.
func (o *OS) Kernel() *rtos.Kernel { return o.k }

// APIs implements agent.Target.
func (o *OS) APIs() []agent.API { return o.reg.Table }

func apiOrder() []string {
	return []string{
		"pok_thread_create", "pok_thread_sleep", "pok_thread_suspend", "pok_thread_resume",
		"pok_partition_set_mode", "pok_partition_get_mode",
		"pok_port_sampling_create", "pok_port_sampling_write", "pok_port_sampling_read",
		"pok_port_queuing_create", "pok_port_queuing_send", "pok_port_queuing_receive",
		"pok_sem_create", "pok_sem_wait", "pok_sem_signal",
		"pok_event_create", "pok_event_signal", "pok_event_wait",
		"pok_time_get", "pok_buffer_alloc", "pok_buffer_free",
		"pok_dev_open", "pok_dev_ctl", "pok_dev_close",
		"pok_gpio_config", "pok_gpio_read", "pok_can_config", "pok_can_read",
	}
}

func (o *OS) buildTable() {
	k := o.k
	r := o.reg
	ar := apiutil.Arg

	r.Reg("pok_thread_create", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		prio := int(uint32(ar(a, 0)))
		period := uint32(ar(a, 1))
		if o.mode == modeNormal {
			f.B(1) // ARINC: no thread creation in NORMAL mode
			return 0, rtos.ErrState
		}
		if prio > rtos.PrioMin {
			f.B(2)
			return 0, rtos.ErrInval
		}
		if period > 1_000_000 {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		obj, e := k.Sched.Create("pok_thread", prio, 1024, int(ar(a, 2)))
		if e.Failed() {
			f.B(5)
			return 0, e
		}
		f.B(6)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("pok_thread_sleep", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ms := uint32(ar(a, 0))
		if ms == 0 {
			f.B(1)
			return 0, rtos.OK
		}
		if ms > 5000 {
			f.B(2)
			ms = 5000
		}
		f.B(3)
		k.Sleep(int(ms))
		return 0, rtos.OK
	})

	r.Reg("pok_thread_suspend", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		obj.Data.(*rtos.Task).State = rtos.TaskSuspended
		return 0, rtos.OK
	})

	r.Reg("pok_thread_resume", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjTask)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		t := obj.Data.(*rtos.Task)
		if t.State != rtos.TaskSuspended {
			f.B(2)
			return 0, rtos.ErrState
		}
		f.B(3)
		t.State = rtos.TaskReady
		return 0, rtos.OK
	})

	r.Reg("pok_partition_set_mode", 7, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		mode := int(uint32(ar(a, 0)))
		if mode < 0 || mode >= modeCount {
			f.B(1)
			return 0, rtos.ErrInval
		}
		switch {
		case mode == o.mode:
			f.B(2)
			return 0, rtos.OK
		case o.mode == modeNormal && mode == modeColdStart:
			f.B(3) // restart request
		case mode == modeNormal:
			f.B(4)
			k.Kprintf("pok: partition entering NORMAL mode\n")
		default:
			f.B(5)
		}
		f.B(6)
		o.mode = mode
		return 0, rtos.OK
	})

	r.Reg("pok_partition_get_mode", 2, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return uint64(o.mode), rtos.OK
	})

	r.Reg("pok_port_sampling_create", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		name := apiutil.CString(k, ar(a, 0), 16, "sport")
		size := int(uint32(ar(a, 1)))
		if size <= 0 || size > 1024 {
			f.B(1)
			return 0, rtos.ErrInval
		}
		f.B(2)
		buf := k.Heap.Alloc(size)
		if buf == 0 {
			f.B(3)
			return 0, rtos.ErrNoMem
		}
		f.B(4)
		sp := &samplingPort{buf: buf, size: size}
		obj := k.Objects.New(rtos.ObjSocket, name, sp)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("pok_port_sampling_write", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSocket)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		sp, ok := obj.Data.(*samplingPort)
		if !ok {
			f.B(2)
			return 0, rtos.ErrType
		}
		data := apiutil.Bytes(k, ar(a, 1), int(uint32(ar(a, 2))), sp.size)
		if len(data) == 0 {
			f.B(3)
			return 0, rtos.ErrInval
		}
		f.B(4)
		k.WriteRAM(sp.buf, data)
		sp.valid = true
		sp.writes++
		sp.lastTick = k.Ticks
		return 0, rtos.OK
	})

	r.Reg("pok_port_sampling_read", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSocket)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		sp, ok := obj.Data.(*samplingPort)
		if !ok {
			f.B(2)
			return 0, rtos.ErrType
		}
		if !sp.valid {
			f.B(3)
			return 0, rtos.ErrEmpty
		}
		f.B(4)
		freshness := k.Ticks - sp.lastTick
		return freshness, rtos.OK
	})

	r.Reg("pok_port_queuing_create", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		size := int(uint32(ar(a, 0)))
		depth := int(uint32(ar(a, 1)))
		obj, e := k.NewQueue("qport", size, depth)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("pok_port_queuing_send", 6, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		q := obj.Data.(*rtos.Queue)
		ptr := ar(a, 1)
		if ptr == 0 {
			f.B(2)
			return 0, rtos.ErrInval
		}
		f.B(3)
		item := k.ReadRAM(ptr, q.ItemSize)
		if e := q.Send(item, int(uint32(ar(a, 2)))); e.Failed() {
			f.B(4)
			return 0, e
		}
		f.B(5)
		return 0, rtos.OK
	})

	r.Reg("pok_port_queuing_receive", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjQueue)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		item, e := obj.Data.(*rtos.Queue).Recv(int(uint32(ar(a, 1))))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		var v uint64
		for i := 0; i < len(item) && i < 8; i++ {
			v |= uint64(item[i]) << (8 * i)
		}
		return v, rtos.OK
	})

	r.Reg("pok_sem_create", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewSemaphore("poksem", int(uint32(ar(a, 0))), int(uint32(ar(a, 1))))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("pok_sem_wait", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Take(int(uint32(ar(a, 1))))
	})

	r.Reg("pok_sem_signal", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjSem)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Semaphore).Give()
	})

	r.Reg("pok_event_create", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.NewEvent("pokevent")
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(obj.ID), rtos.OK
	})

	r.Reg("pok_event_signal", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, obj.Data.(*rtos.Event).Send(uint32(ar(a, 1)))
	})

	r.Reg("pok_event_wait", 5, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		obj, e := k.Objects.GetTyped(uint32(ar(a, 0)), rtos.ObjEvent)
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		got, e := obj.Data.(*rtos.Event).Recv(uint32(ar(a, 1)), rtos.EvtClear, int(uint32(ar(a, 2))))
		if e.Failed() {
			f.B(2)
			return 0, e
		}
		f.B(3)
		return uint64(got), rtos.OK
	})

	r.Reg("pok_time_get", 2, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return uint64(k.Env.Clock.Now()), rtos.OK
	})

	r.Reg("pok_buffer_alloc", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		p := k.Heap.Alloc(int(uint32(ar(a, 0))))
		if p == 0 {
			f.B(1)
			return 0, rtos.ErrNoMem
		}
		f.B(2)
		return p, rtos.OK
	})

	r.Reg("pok_buffer_free", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, k.Heap.Free(ar(a, 0))
	})

	r.Reg("pok_dev_open", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		h, e := o.drv.Open()
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return uint64(h), rtos.OK
	})

	r.Reg("pok_dev_ctl", 4, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		ret, e := o.drv.Ctl(uint32(ar(a, 0)), uint32(ar(a, 1)), uint32(ar(a, 2)))
		if e.Failed() {
			f.B(1)
			return ret, e
		}
		f.B(2)
		return ret, rtos.OK
	})

	r.Reg("pok_dev_close", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		f.B(1)
		return 0, o.drv.Close(uint32(ar(a, 0)))
	})

	r.Reg("pok_gpio_config", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[0].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("pok_gpio_read", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[0].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})

	r.Reg("pok_can_config", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		e := o.periphs[1].Config(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return 0, rtos.OK
	})

	r.Reg("pok_can_read", 3, func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno) {
		v, e := o.periphs[1].Read(uint32(ar(a, 0)))
		if e.Failed() {
			f.B(1)
			return 0, e
		}
		f.B(2)
		return v, rtos.OK
	})
}
