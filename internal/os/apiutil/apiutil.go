// Package apiutil holds the small helpers every OS personality's API layer
// shares: argument access, staged-buffer reads, timeout conversion, and the
// wrapper-function registrar.
package apiutil

import (
	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/rtos"
)

// Arg returns argument i, or 0 when the call site passed fewer.
func Arg(a []uint64, i int) uint64 {
	if i < len(a) {
		return a[i]
	}
	return 0
}

// CString reads a staged NUL-terminated string; a null pointer yields the
// fallback, a wild pointer faults like the real dereference.
func CString(k *rtos.Kernel, ptr uint64, max int, fallback string) string {
	if ptr == 0 {
		return fallback
	}
	s := k.CString(ptr, max)
	if s == "" {
		return fallback
	}
	return s
}

// Bytes reads n bytes at ptr with a hard cap; null yields nil, wild faults.
func Bytes(k *rtos.Kernel, ptr uint64, n, cap int) []byte {
	if n <= 0 || ptr == 0 {
		return nil
	}
	if n > cap {
		n = cap
	}
	return k.ReadRAM(ptr, n)
}

// Timeout32 converts a 32-bit tick timeout where forever is the sentinel.
func Timeout32(v uint64, forever uint32) int {
	if uint32(v) == forever {
		return rtos.WaitForever
	}
	return int(uint32(v))
}

// Registrar builds an API dispatch table with one instrumented wrapper
// function per entry. Symbol collisions with internal functions get an _api
// suffix; the API name stays canonical for specifications.
type Registrar struct {
	K     *rtos.Kernel
	File  string
	Table []agent.API
	line  int
}

// Reg registers one API wrapper.
func (r *Registrar) Reg(name string, nblocks int, h func(f *rtos.Fn, a []uint64) (uint64, rtos.Errno)) {
	r.line += 40
	symName := name
	if r.K.Env.Syms.Lookup(symName) != nil {
		symName += "_api"
	}
	f := r.K.Fn(symName, r.File, r.line, nblocks)
	r.Table = append(r.Table, agent.API{
		Name: name,
		Handler: func(args []uint64) (uint64, rtos.Errno) {
			f.Enter()
			defer f.Exit()
			return h(f, args)
		},
	})
}

// Names returns the registered API names in dispatch order.
func (r *Registrar) Names() []string {
	out := make([]string, len(r.Table))
	for i, e := range r.Table {
		out[i] = e.Name
	}
	return out
}
