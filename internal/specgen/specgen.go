// Package specgen extracts API specifications from the target OS's headers
// and reference documentation, emitting Syzlang that is then post-validated
// by the syzlang parser/type-checker. The paper performs this extraction
// with GPT-4o; this implementation substitutes a deterministic extractor
// over the same inputs (C prototypes plus natural-language parameter
// descriptions) so campaigns are reproducible. The validation pipeline —
// parse, type-check, admit only what survives — is identical, and the
// extractor mimics the important failure mode: declarations it cannot
// understand are dropped and reported, never admitted.
package specgen

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/syzlang"
)

// Result is the outcome of specification generation for one OS.
type Result struct {
	Spec *syzlang.Spec
	// Text is the emitted Syzlang source.
	Text string
	// Dropped lists declarations that failed extraction or validation,
	// with reasons (the paper's rejected LLM outputs).
	Dropped []string
	// Extracted counts the declarations admitted.
	Extracted int
}

// Generate extracts and validates a specification from the OS's headers.
func Generate(info *osinfo.Info) (*Result, error) {
	res := &Result{}
	var (
		resources = map[string]string{} // name -> base type
		flagSets  = map[string][]uint64{}
		flagOrder []string
		resOrder  []string
		callLines []string
	)

	for _, h := range info.Headers {
		decls, flags := extractDecls(h.Text)
		for _, fl := range flags {
			if _, dup := flagSets[fl.name]; !dup {
				flagSets[fl.name] = fl.values
				flagOrder = append(flagOrder, fl.name)
			}
		}
		for _, d := range decls {
			line, newRes, err := emitCall(d)
			if err != nil {
				res.Dropped = append(res.Dropped, fmt.Sprintf("%s: %s: %v", h.Path, d.name, err))
				continue
			}
			if info.APIIndex(d.name) < 0 {
				res.Dropped = append(res.Dropped, fmt.Sprintf("%s: %s: not in the target's dispatch table", h.Path, d.name))
				continue
			}
			for _, r := range newRes {
				if _, dup := resources[r]; !dup {
					resources[r] = "int32"
					resOrder = append(resOrder, r)
				}
			}
			callLines = append(callLines, line)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Generated specification for %s %s\n", info.Display, info.Version)
	for _, r := range resOrder {
		fmt.Fprintf(&b, "resource %s[%s]\n", r, resources[r])
	}
	for _, fn := range flagOrder {
		vals := make([]string, len(flagSets[fn]))
		for i, v := range flagSets[fn] {
			vals[i] = strconv.FormatUint(v, 10)
		}
		fmt.Fprintf(&b, "%s = %s\n", fn, strings.Join(vals, ", "))
	}
	for _, l := range callLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	res.Text = b.String()

	spec, err := syzlang.Parse(info.Name, res.Text)
	if err != nil {
		return nil, fmt.Errorf("specgen: generated spec for %s failed validation: %w", info.Name, err)
	}
	res.Spec = spec
	res.Extracted = len(spec.Calls)
	return res, nil
}

// decl is one documented C declaration.
type decl struct {
	name   string
	ret    string // @return description
	pseudo bool
	params []param
}

type param struct {
	name  string
	ctype string
	desc  string
}

type flagDecl struct {
	name   string
	values []uint64
}

var (
	docBlockRe = regexp.MustCompile(`(?s)/\*\*(.*?)\*/\s*([^;]+);`)
	protoRe    = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_ \t\*]*?)\b([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*$`)
	flagsRe    = regexp.MustCompile(`@flags\s+([A-Za-z_][A-Za-z0-9_]*)((?:\s+[A-Za-z_][A-Za-z0-9_]*=\d+)+)`)
	kvRe       = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=(\d+)`)
)

// extractDecls pulls documented declarations and flag sets out of a header.
func extractDecls(text string) ([]decl, []flagDecl) {
	var decls []decl
	var flags []flagDecl
	for _, m := range docBlockRe.FindAllStringSubmatch(text, -1) {
		doc, proto := m[1], strings.TrimSpace(m[2])
		for _, fm := range flagsRe.FindAllStringSubmatch(doc, -1) {
			fd := flagDecl{name: fm[1]}
			for _, kv := range kvRe.FindAllStringSubmatch(fm[2], -1) {
				v, _ := strconv.ParseUint(kv[2], 10, 64)
				fd.values = append(fd.values, v)
			}
			flags = append(flags, fd)
		}
		pm := protoRe.FindStringSubmatch(proto)
		if pm == nil {
			continue
		}
		d := decl{name: pm[2], pseudo: strings.Contains(doc, "@pseudo")}
		d.params = parseParams(pm[3], doc)
		if rm := regexp.MustCompile(`@return\s+(.+)`).FindStringSubmatch(doc); rm != nil {
			d.ret = strings.TrimSpace(rm[1])
		}
		decls = append(decls, d)
	}
	return decls, flags
}

// parseParams splits the C parameter list and attaches each @param
// description by name.
func parseParams(list, doc string) []param {
	descs := map[string]string{}
	for _, pm := range regexp.MustCompile(`@param\s+([A-Za-z_][A-Za-z0-9_]*)\s+([^\n]*)`).FindAllStringSubmatch(doc, -1) {
		descs[pm[1]] = strings.TrimSpace(pm[2])
	}
	var out []param
	list = strings.TrimSpace(list)
	if list == "" || list == "void" {
		return out
	}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		// Strip trailing inline comments.
		if i := strings.Index(part, "/*"); i >= 0 {
			part = strings.TrimSpace(part[:i])
		}
		fields := strings.FieldsFunc(part, func(r rune) bool { return r == ' ' || r == '\t' || r == '*' })
		if len(fields) == 0 {
			continue
		}
		name := fields[len(fields)-1]
		ctype := strings.TrimSpace(strings.TrimSuffix(part, name))
		out = append(out, param{name: name, ctype: ctype, desc: descs[name]})
	}
	return out
}

// Natural-language constraint patterns the extractor understands.
var (
	handleRe  = regexp.MustCompile(`handle of type ([A-Za-z_][A-Za-z0-9_]*)`)
	betweenRe = regexp.MustCompile(`must be between (-?\d+) and (-?\d+)`)
	oneOfRe   = regexp.MustCompile(`one of \{([^}]*)\}`)
	bitmaskRe = regexp.MustCompile(`bitmask of ([A-Za-z_][A-Za-z0-9_]*)`)
	strSetRe  = regexp.MustCompile(`string, one of ((?:"[^"]*"(?:,\s*)?)+)`)
	lenOfRe   = regexp.MustCompile(`length of ([A-Za-z_][A-Za-z0-9_]*)`)
	quotedRe  = regexp.MustCompile(`"([^"]*)"`)
)

// emitCall renders one declaration as a Syzlang call line, returning any
// resource names it introduces (from arguments or the return).
func emitCall(d decl) (line string, resources []string, err error) {
	var args []string
	for _, p := range d.params {
		t, res, err := paramType(p)
		if err != nil {
			return "", nil, fmt.Errorf("param %s: %w", p.name, err)
		}
		if res != "" {
			resources = append(resources, res)
		}
		args = append(args, p.name+" "+t)
	}
	line = fmt.Sprintf("%s(%s)", d.name, strings.Join(args, ", "))
	if m := handleRe.FindStringSubmatch(d.ret); m != nil {
		line += " " + m[1]
		resources = append(resources, m[1])
	}
	return line, resources, nil
}

func paramType(p param) (typ string, resource string, err error) {
	desc := p.desc
	isPtr := strings.Contains(p.ctype, "*")
	switch {
	case lenOfRe.MatchString(desc):
		return fmt.Sprintf("len[%s]", lenOfRe.FindStringSubmatch(desc)[1]), "", nil
	case strings.Contains(desc, "timeout in ticks"):
		return "timeout", "", nil
	case handleRe.MatchString(desc):
		r := handleRe.FindStringSubmatch(desc)[1]
		return r, r, nil
	case bitmaskRe.MatchString(desc):
		return fmt.Sprintf("flags[%s]", bitmaskRe.FindStringSubmatch(desc)[1]), "", nil
	case strSetRe.MatchString(desc):
		var vals []string
		for _, q := range quotedRe.FindAllStringSubmatch(strSetRe.FindStringSubmatch(desc)[1], -1) {
			vals = append(vals, strconv.Quote(q[1]))
		}
		return fmt.Sprintf("ptr[in, string[%s]]", strings.Join(vals, ", ")), "", nil
	case oneOfRe.MatchString(desc):
		raw := oneOfRe.FindStringSubmatch(desc)[1]
		var vals []string
		for _, tok := range strings.Split(raw, ",") {
			tok = strings.TrimSpace(tok)
			if _, err := strconv.ParseInt(tok, 0, 64); err != nil {
				return "", "", fmt.Errorf("unparseable value set %q", raw)
			}
			vals = append(vals, tok)
		}
		return fmt.Sprintf("int32[%s]", strings.Join(vals, ", ")), "", nil
	case betweenRe.MatchString(desc):
		m := betweenRe.FindStringSubmatch(desc)
		bits := cBits(p.ctype)
		return fmt.Sprintf("int%d[%s:%s]", bits, m[1], m[2]), "", nil
	case isPtr && strings.Contains(desc, "string"):
		return "ptr[in, string]", "", nil
	case isPtr && strings.Contains(desc, "buffer"):
		return "ptr[in, array[int8]]", "", nil
	case isPtr:
		// Undocumented pointer: treat as an opaque input buffer.
		return "ptr[in, array[int8]]", "", nil
	default:
		return fmt.Sprintf("int%d", cBits(p.ctype)), "", nil
	}
}

// cBits infers the integer width from the C type text.
func cBits(ctype string) int {
	c := strings.ToLower(ctype)
	switch {
	case strings.Contains(c, "long") || strings.Contains(c, "size_t") || strings.Contains(c, "64"):
		return 64
	case strings.Contains(c, "short") || strings.Contains(c, "16"):
		return 16
	case strings.Contains(c, "char") && !strings.Contains(c, "*"):
		return 8
	default:
		return 32
	}
}
