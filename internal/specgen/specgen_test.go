package specgen

import (
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/syzlang"
	"github.com/eof-fuzz/eof/internal/targets"
)

func TestGenerateForAllTargets(t *testing.T) {
	for _, info := range targets.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			res, err := Generate(info)
			if err != nil {
				t.Fatal(err)
			}
			if res.Extracted < 10 {
				t.Fatalf("only %d calls extracted", res.Extracted)
			}
			// Every extracted call must exist in the dispatch table.
			for _, c := range res.Spec.Calls {
				if info.APIIndex(c.Name) < 0 {
					t.Errorf("spec call %s not in dispatch table", c.Name)
				}
			}
			// The emitted text must re-parse (round trip).
			if _, err := syzlang.Parse(info.Name, res.Text); err != nil {
				t.Fatalf("round trip: %v", err)
			}
			t.Logf("%s: %d calls, %d resources, %d flag sets, %d dropped",
				info.Name, len(res.Spec.Calls), len(res.Spec.Resources), len(res.Spec.Flags), len(res.Dropped))
		})
	}
}

func TestGenerateCoversMostAPIs(t *testing.T) {
	for _, info := range targets.All() {
		res, err := Generate(info)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, name := range info.APINames {
			if res.Spec.Call(name) != nil {
				covered++
			}
		}
		if ratio := float64(covered) / float64(len(info.APINames)); ratio < 0.9 {
			missing := []string{}
			for _, name := range info.APINames {
				if res.Spec.Call(name) == nil {
					missing = append(missing, name)
				}
			}
			t.Errorf("%s: only %d/%d APIs specified; missing %s",
				info.Name, covered, len(info.APINames), strings.Join(missing, ", "))
		}
	}
}

func TestResourceGraph(t *testing.T) {
	res, err := Generate(mustTarget(t, "freertos"))
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Spec
	// queue_t must have a producer and consumers.
	if len(spec.Producers("queue_t")) == 0 {
		t.Fatal("no producer for queue_t")
	}
	if len(spec.Consumers("queue_t")) < 3 {
		t.Fatalf("queue_t consumers = %d", len(spec.Consumers("queue_t")))
	}
	// xQueueSend must have a timeout argument and a buffer argument.
	c := spec.Call("xQueueSend")
	if c == nil {
		t.Fatal("no xQueueSend spec")
	}
	var hasTimeout, hasBuffer bool
	for _, a := range c.Args {
		switch a.Type.(type) {
		case *syzlang.TimeoutType:
			hasTimeout = true
		case *syzlang.BufferType:
			hasBuffer = true
		}
	}
	if !hasTimeout || !hasBuffer {
		t.Fatalf("xQueueSend types wrong: %s", c.Format())
	}
}

func TestConstraintExtraction(t *testing.T) {
	res, err := Generate(mustTarget(t, "freertos"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Spec.Call("xTaskCreate")
	if c == nil {
		t.Fatal("no xTaskCreate")
	}
	prio := c.Args[1].Type.(*syzlang.IntType)
	if !prio.HasRange || prio.Min != 0 || prio.Max != 31 {
		t.Fatalf("priority range = %+v", prio)
	}
	// Flags sets extracted from @flags annotations.
	if _, ok := res.Spec.Flags["part_flags"]; !ok {
		t.Fatal("part_flags not extracted")
	}
	lp := res.Spec.Call("load_partitions")
	if lp == nil {
		t.Fatal("no load_partitions")
	}
	if _, ok := lp.Args[1].Type.(*syzlang.FlagsType); !ok {
		t.Fatalf("load_partitions options type = %s", lp.Args[1].Type.Format())
	}
}

func TestPseudoSyscallMarked(t *testing.T) {
	res, err := Generate(mustTarget(t, "rtthread"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Spec.Call("syz_create_bind_socket")
	if c == nil {
		t.Fatal("pseudo syscall missing")
	}
	if !c.Pseudo {
		t.Fatal("syz_ call not marked pseudo")
	}
}

func TestStringCandidates(t *testing.T) {
	res, err := Generate(mustTarget(t, "rtthread"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Spec.Call("rt_device_find")
	if c == nil {
		t.Fatal("no rt_device_find")
	}
	st, ok := c.Args[0].Type.(*syzlang.StringType)
	if !ok || len(st.Values) != 3 {
		t.Fatalf("rt_device_find name type = %s", c.Args[0].Type.Format())
	}
}

func mustTarget(t *testing.T, name string) *osinfo.Info {
	t.Helper()
	info, err := targets.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return info
}
