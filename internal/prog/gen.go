package prog

import (
	"math/rand"

	"github.com/eof-fuzz/eof/internal/syzlang"
)

// MaxGenCalls bounds program length after mutation growth; fresh generation
// stays shorter (the engine's MaxCalls), so long stateful sequences are
// reachable only by iteratively extending retained seeds.
const MaxGenCalls = 24

// timeoutForever is the wire sentinel for a blocking wait.
const timeoutForever = 0xFFFFFFFF

// ChoiceTable scores call adjacency. Base scores come from the resource
// dependency graph (a consumer placed after a producer is productive); the
// engine adds rewards when a pair of adjacent calls yields new coverage —
// the paper's "scoring call adjacency by resource dependencies and recent
// coverage".
type ChoiceTable struct {
	adj map[string]map[string]float64
}

// NewChoiceTable builds the initial table from the spec's resource graph.
func NewChoiceTable(spec *syzlang.Spec) *ChoiceTable {
	ct := &ChoiceTable{adj: make(map[string]map[string]float64)}
	for res := range spec.Resources {
		for _, prod := range spec.Producers(res) {
			for _, cons := range spec.Consumers(res) {
				ct.bump(prod.Name, cons.Name, 2.0)
			}
		}
	}
	return ct
}

func (ct *ChoiceTable) bump(prev, next string, amount float64) {
	m := ct.adj[prev]
	if m == nil {
		m = make(map[string]float64)
		ct.adj[prev] = m
	}
	m[next] += amount
}

// Reward credits the (prev, next) adjacency after it contributed new
// coverage, capped so a lucky pair cannot dominate generation forever.
func (ct *ChoiceTable) Reward(prev, next string, amount float64) {
	if prev == "" || next == "" {
		return
	}
	if ct.adj[prev][next] < 16 {
		ct.bump(prev, next, amount)
	}
}

// Score returns the adjacency bonus for next following prev.
func (ct *ChoiceTable) Score(prev, next string) float64 {
	return ct.adj[prev][next]
}

// Generator produces and mutates programs for one target.
type Generator struct {
	t   *Target
	rnd *rand.Rand
	ct  *ChoiceTable

	// RandomOnly disables API awareness: arguments become unconstrained
	// random scalars and buffers, resources are random numbers, and the
	// dependency graph is ignored. Used by the generation-guidance ablation
	// (the AFL-style configuration the paper contrasts against).
	RandomOnly bool

	// focus soft-biases call selection toward the named calls without
	// removing the rest of the API surface. Fleet shards use it to give each
	// engine a different emphasis while keeping every call reachable.
	focus      map[string]bool
	focusBoost float64
}

// SetFocus biases chooseCall toward the named calls by adding boost to their
// sampling weight. Unlike a CallFilter it keeps the full API surface
// available, so cross-call state machines stay reachable. nil/empty clears
// the focus.
func (g *Generator) SetFocus(names []string, boost float64) {
	if len(names) == 0 || boost <= 0 {
		g.focus, g.focusBoost = nil, 0
		return
	}
	g.focus = make(map[string]bool, len(names))
	for _, n := range names {
		g.focus[n] = true
	}
	g.focusBoost = boost
}

// NewGenerator creates a deterministic generator. ct may be shared with the
// engine so coverage rewards influence future generation.
func NewGenerator(t *Target, seed int64, ct *ChoiceTable) *Generator {
	if ct == nil {
		ct = NewChoiceTable(t.Spec)
	}
	return &Generator{t: t, rnd: rand.New(rand.NewSource(seed)), ct: ct}
}

// Generate produces a fresh program of up to maxCalls calls.
func (g *Generator) Generate(maxCalls int) *Prog {
	if maxCalls <= 0 || maxCalls > MaxGenCalls {
		maxCalls = MaxGenCalls
	}
	n := 1 + g.rnd.Intn(maxCalls)
	p := &Prog{}
	for len(p.Calls) < n {
		meta := g.chooseCall(p)
		g.appendWithDeps(p, meta, 0)
	}
	if len(p.Calls) > MaxGenCalls {
		p.Calls = p.Calls[:MaxGenCalls]
	}
	return p
}

// chooseCall picks the next call by weighted sampling over the spec.
func (g *Generator) chooseCall(p *Prog) *syzlang.Call {
	calls := g.t.Spec.Calls
	if g.RandomOnly {
		return calls[g.rnd.Intn(len(calls))]
	}
	avail := g.availableResources(p)
	last := ""
	if len(p.Calls) > 0 {
		last = p.Calls[len(p.Calls)-1].Meta.Name
	}
	weights := make([]float64, len(calls))
	total := 0.0
	for i, c := range calls {
		w := 1.0
		for _, a := range c.Args {
			if rt, ok := a.Type.(*syzlang.ResourceType); ok && avail[rt.Name] {
				w += 3.0
			}
		}
		if c.Ret != "" {
			w += 0.5
		}
		w += g.ct.Score(last, c.Name)
		if g.focus[c.Name] {
			w += g.focusBoost
		}
		weights[i] = w
		total += w
	}
	x := g.rnd.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return calls[i]
		}
	}
	return calls[len(calls)-1]
}

// availableResources maps resource kinds to availability in the program so
// far.
func (g *Generator) availableResources(p *Prog) map[string]bool {
	avail := make(map[string]bool)
	for _, c := range p.Calls {
		if c.Meta.Ret != "" {
			avail[c.Meta.Ret] = true
		}
	}
	return avail
}

// appendWithDeps appends meta, first generating producers for resource
// arguments that have none (depth-limited, syzkaller-style).
func (g *Generator) appendWithDeps(p *Prog, meta *syzlang.Call, depth int) int {
	if !g.RandomOnly && depth < 2 {
		for _, a := range meta.Args {
			rt, ok := a.Type.(*syzlang.ResourceType)
			if !ok {
				continue
			}
			if g.findProducer(p, rt.Name) >= 0 {
				continue
			}
			prods := g.t.Spec.Producers(rt.Name)
			if len(prods) == 0 {
				continue
			}
			// Usually satisfy the precondition; occasionally leave it
			// dangling to exercise error paths.
			if g.rnd.Intn(10) < 8 && len(p.Calls) < MaxGenCalls-1 {
				g.appendWithDeps(p, prods[g.rnd.Intn(len(prods))], depth+1)
			}
		}
	}
	idx := len(p.Calls)
	c := &Call{Meta: meta}
	c.Args = g.genArgs(p, meta)
	p.Calls = append(p.Calls, c)
	return idx
}

// findProducer returns the index of the most recent call producing res, -1
// if none.
func (g *Generator) findProducer(p *Prog, res string) int {
	for i := len(p.Calls) - 1; i >= 0; i-- {
		if p.Calls[i].Meta.Ret == res {
			return i
		}
	}
	return -1
}

// genArgs builds arguments for meta given the program so far. Length fields
// are filled in a second pass once their buffers exist.
func (g *Generator) genArgs(p *Prog, meta *syzlang.Call) []Arg {
	args := make([]Arg, len(meta.Args))
	for i, f := range meta.Args {
		if _, ok := f.Type.(*syzlang.LenType); ok {
			continue // second pass
		}
		args[i] = g.genArg(p, f.Type)
	}
	for i, f := range meta.Args {
		lt, ok := f.Type.(*syzlang.LenType)
		if !ok {
			continue
		}
		args[i] = &ConstArg{Val: uint64(bufferLen(meta, args, lt.Target))}
	}
	return args
}

// bufferLen finds the staged length of the named buffer argument.
func bufferLen(meta *syzlang.Call, args []Arg, target string) int {
	for i, f := range meta.Args {
		if f.Name != target {
			continue
		}
		if da, ok := args[i].(*DataArg); ok {
			n := len(da.Data)
			if _, isStr := f.Type.(*syzlang.StringType); isStr && n > 0 {
				n-- // exclude the terminator
			}
			return n
		}
	}
	return 0
}

func (g *Generator) genArg(p *Prog, t syzlang.Type) Arg {
	if g.RandomOnly {
		return g.genRandomArg(t)
	}
	switch v := t.(type) {
	case *syzlang.IntType:
		return &ConstArg{Val: g.genInt(v)}
	case *syzlang.FlagsType:
		return &ConstArg{Val: g.genFlags(v)}
	case *syzlang.ResourceType:
		if idx := g.findProducer(p, v.Name); idx >= 0 && g.rnd.Intn(10) < 9 {
			return &ResultArg{Index: idx}
		}
		// Bogus handle: zero or a small random number.
		if g.rnd.Intn(2) == 0 {
			return &ConstArg{Val: 0}
		}
		return &ConstArg{Val: uint64(g.rnd.Intn(0x2000))}
	case *syzlang.StringType:
		return &DataArg{Data: g.genString(v)}
	case *syzlang.BufferType:
		return &DataArg{Data: g.genBuffer(v)}
	case *syzlang.TimeoutType:
		return &ConstArg{Val: g.genTimeout()}
	default:
		return &ConstArg{Val: g.rnd.Uint64()}
	}
}

// genRandomArg is the AFL-style unconstrained variant.
func (g *Generator) genRandomArg(t syzlang.Type) Arg {
	switch t.(type) {
	case *syzlang.StringType, *syzlang.BufferType:
		n := g.rnd.Intn(64)
		b := make([]byte, n+1)
		for i := 0; i < n; i++ {
			b[i] = byte(g.rnd.Intn(256))
		}
		return &DataArg{Data: b}
	default:
		// Mostly small numbers (they at least parse as handles/sizes),
		// sometimes full-width garbage.
		if g.rnd.Intn(4) == 0 {
			return &ConstArg{Val: g.rnd.Uint64()}
		}
		return &ConstArg{Val: uint64(g.rnd.Intn(1 << 16))}
	}
}

func (g *Generator) genInt(t *syzlang.IntType) uint64 {
	if len(t.Values) > 0 {
		return uint64(t.Values[g.rnd.Intn(len(t.Values))])
	}
	if t.HasRange {
		span := t.Max - t.Min + 1
		switch g.rnd.Intn(12) {
		case 0:
			return uint64(t.Min)
		case 1:
			return uint64(t.Max)
		case 2:
			// Just outside the range: error-path probing.
			if g.rnd.Intn(2) == 0 && t.Min > -(1<<31) {
				return uint64(t.Min - 1)
			}
			return uint64(t.Max + 1)
		default:
			if span <= 0 {
				return uint64(t.Min)
			}
			return uint64(t.Min + g.rnd.Int63n(span))
		}
	}
	switch g.rnd.Intn(6) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return uint64(1)<<(uint(t.Bits)-1) - 1
	default:
		return g.rnd.Uint64() & (1<<uint(t.Bits) - 1)
	}
}

func (g *Generator) genFlags(t *syzlang.FlagsType) uint64 {
	set := g.t.Spec.Flags[t.Set]
	if set == nil || len(set.Values) == 0 {
		return 0
	}
	var v uint64
	for _, fl := range set.Values {
		if g.rnd.Intn(2) == 0 {
			v |= fl
		}
	}
	if v == 0 && g.rnd.Intn(2) == 0 {
		v = set.Values[g.rnd.Intn(len(set.Values))]
	}
	return v
}

func (g *Generator) genString(t *syzlang.StringType) []byte {
	if len(t.Values) > 0 && g.rnd.Intn(10) < 9 {
		s := t.Values[g.rnd.Intn(len(t.Values))]
		return append([]byte(s), 0)
	}
	n := 1 + g.rnd.Intn(8)
	b := make([]byte, n+1)
	for i := 0; i < n; i++ {
		b[i] = byte('a' + g.rnd.Intn(26))
	}
	return b
}

func (g *Generator) genBuffer(t *syzlang.BufferType) []byte {
	dict := g.t.Info.Dictionary
	if len(dict) > 0 && g.rnd.Intn(10) < 4 {
		b := append([]byte(nil), dict[g.rnd.Intn(len(dict))]...)
		// Light mutation keeps dictionary seeds from being static.
		if len(b) > 0 && g.rnd.Intn(3) == 0 {
			b[g.rnd.Intn(len(b))] ^= byte(1 << uint(g.rnd.Intn(8)))
		}
		return b
	}
	minLen, maxLen := t.MinLen, t.MaxLen
	if maxLen == 0 {
		maxLen = 64
	}
	if maxLen > 512 {
		maxLen = 512
	}
	n := minLen
	if maxLen > minLen {
		n += g.rnd.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(g.rnd.Intn(256))
	}
	return b
}

func (g *Generator) genTimeout() uint64 {
	switch g.rnd.Intn(20) {
	case 0:
		return uint64(50 + g.rnd.Intn(150))
	case 1:
		return timeoutForever
	case 2, 3, 4, 5:
		return 0
	default:
		return uint64(1 + g.rnd.Intn(20))
	}
}
