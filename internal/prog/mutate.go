package prog

import "github.com/eof-fuzz/eof/internal/syzlang"

// Mutate returns a mutated deep copy of p. The result always validates; if a
// structural mutation breaks consistency it is repaired or abandoned.
func (g *Generator) Mutate(p *Prog) *Prog {
	np := p.Clone()
	for tries := 0; tries < 4; tries++ {
		switch g.rnd.Intn(10) {
		case 0, 1, 2, 3, 4: // arg mutation dominates, like syzkaller
			g.mutateArg(np)
		case 5, 6:
			g.insertCall(np)
		case 7:
			g.removeCall(np)
		case 8:
			g.duplicateCall(np)
		case 9:
			g.swapCalls(np)
		}
		// One mutation is usually enough; sometimes stack a second.
		if g.rnd.Intn(3) != 0 {
			break
		}
	}
	if err := np.Validate(); err != nil {
		return p.Clone() // should not happen; fail safe
	}
	return np
}

func (g *Generator) mutateArg(p *Prog) {
	if len(p.Calls) == 0 {
		return
	}
	ci := g.rnd.Intn(len(p.Calls))
	c := p.Calls[ci]
	if len(c.Args) == 0 {
		return
	}
	// Buffer arguments carry most of the explorable structure (parsers);
	// weight them over scalars, the way byte-level fuzzers spend their
	// budget.
	ai := g.rnd.Intn(len(c.Args))
	for tries := 0; tries < 2; tries++ {
		if _, isBuf := c.Meta.Args[ai].Type.(*syzlang.BufferType); isBuf {
			break
		}
		ai = g.rnd.Intn(len(c.Args))
	}
	f := c.Meta.Args[ai]
	switch t := f.Type.(type) {
	case *syzlang.LenType:
		// Length fields mostly track their buffer, but lying about lengths
		// is a classic bug trigger.
		if g.rnd.Intn(3) == 0 {
			c.Args[ai] = &ConstArg{Val: uint64(g.rnd.Intn(4096))}
		} else {
			c.Args[ai] = &ConstArg{Val: uint64(bufferLen(c.Meta, c.Args, t.Target))}
		}
	case *syzlang.ResourceType:
		if idx := g.producerBefore(p, ci, t.Name); idx >= 0 && g.rnd.Intn(10) < 8 {
			c.Args[ai] = &ResultArg{Index: idx}
		} else {
			c.Args[ai] = &ConstArg{Val: uint64(g.rnd.Intn(0x2000))}
		}
	case *syzlang.IntType:
		c.Args[ai] = g.tweakInt(c.Args[ai], t)
	case *syzlang.FlagsType:
		c.Args[ai] = &ConstArg{Val: g.genFlags(t)}
	case *syzlang.TimeoutType:
		c.Args[ai] = &ConstArg{Val: g.genTimeout()}
	case *syzlang.StringType:
		c.Args[ai] = &DataArg{Data: g.genString(t)}
	case *syzlang.BufferType:
		if da, ok := c.Args[ai].(*DataArg); ok && len(da.Data) > 0 && g.rnd.Intn(3) != 0 {
			c.Args[ai] = &DataArg{Data: g.mutateBytes(da.Data)}
		} else {
			c.Args[ai] = &DataArg{Data: g.genBuffer(t)}
		}
		// Keep len fields in sync most of the time.
		for li, lf := range c.Meta.Args {
			if lt, ok := lf.Type.(*syzlang.LenType); ok && lt.Target == f.Name && g.rnd.Intn(4) != 0 {
				c.Args[li] = &ConstArg{Val: uint64(bufferLen(c.Meta, c.Args, lt.Target))}
			}
		}
	}
}

// tweakInt nudges an integer argument rather than rerolling it, preserving
// whatever made the seed interesting.
func (g *Generator) tweakInt(old Arg, t *syzlang.IntType) Arg {
	ca, ok := old.(*ConstArg)
	if !ok {
		return &ConstArg{Val: g.genInt(t)}
	}
	switch g.rnd.Intn(5) {
	case 0:
		return &ConstArg{Val: ca.Val + 1}
	case 1:
		return &ConstArg{Val: ca.Val - 1}
	case 2:
		return &ConstArg{Val: ca.Val ^ 1<<uint(g.rnd.Intn(t.Bits))}
	default:
		return &ConstArg{Val: g.genInt(t)}
	}
}

// mutateBytes applies AFL-style byte operations.
func (g *Generator) mutateBytes(data []byte) []byte {
	b := append([]byte(nil), data...)
	switch g.rnd.Intn(5) {
	case 0: // bit flip
		b[g.rnd.Intn(len(b))] ^= byte(1 << uint(g.rnd.Intn(8)))
	case 1: // byte overwrite
		b[g.rnd.Intn(len(b))] = byte(g.rnd.Intn(256))
	case 2: // insert
		if len(b) < 512 {
			i := g.rnd.Intn(len(b) + 1)
			b = append(b[:i], append([]byte{byte(g.rnd.Intn(256))}, b[i:]...)...)
		}
	case 3: // delete
		if len(b) > 1 {
			i := g.rnd.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		}
	case 4: // splice a dictionary token in
		dict := g.t.Info.Dictionary
		if len(dict) > 0 {
			tok := dict[g.rnd.Intn(len(dict))]
			i := g.rnd.Intn(len(b) + 1)
			merged := append([]byte(nil), b[:i]...)
			merged = append(merged, tok...)
			merged = append(merged, b[i:]...)
			if len(merged) <= 1024 {
				b = merged
			}
		} else {
			b[g.rnd.Intn(len(b))] ^= 0xFF
		}
	}
	return b
}

func (g *Generator) insertCall(p *Prog) {
	if len(p.Calls) >= MaxGenCalls {
		return
	}
	meta := g.chooseCall(p)
	// Append-with-deps keeps references simple (only backwards).
	g.appendWithDeps(p, meta, 1)
	if len(p.Calls) > MaxGenCalls {
		p.Calls = p.Calls[:MaxGenCalls]
	}
}

func (g *Generator) removeCall(p *Prog) {
	if len(p.Calls) <= 1 {
		return
	}
	victim := g.rnd.Intn(len(p.Calls))
	p.Calls = append(p.Calls[:victim], p.Calls[victim+1:]...)
	// Repair references: anything pointing at or past the removed call is
	// re-targeted or replaced with a bogus handle.
	for ci, c := range p.Calls {
		for ai, a := range c.Args {
			ra, ok := a.(*ResultArg)
			if !ok {
				continue
			}
			switch {
			case ra.Index == victim:
				rt := c.Meta.Args[ai].Type.(*syzlang.ResourceType)
				if idx := g.producerBefore(p, ci, rt.Name); idx >= 0 {
					c.Args[ai] = &ResultArg{Index: idx}
				} else {
					c.Args[ai] = &ConstArg{Val: 0}
				}
			case ra.Index > victim:
				c.Args[ai] = &ResultArg{Index: ra.Index - 1}
			}
		}
	}
}

func (g *Generator) duplicateCall(p *Prog) {
	if len(p.Calls) == 0 || len(p.Calls) >= MaxGenCalls {
		return
	}
	c := p.Calls[g.rnd.Intn(len(p.Calls))].clone()
	// All its references point strictly backwards, so appending is safe.
	p.Calls = append(p.Calls, c)
}

// swapCalls exchanges two adjacent calls when no reference crosses them.
func (g *Generator) swapCalls(p *Prog) {
	if len(p.Calls) < 2 {
		return
	}
	i := g.rnd.Intn(len(p.Calls) - 1)
	j := i + 1
	// The later call must not reference the earlier one...
	for _, a := range p.Calls[j].Args {
		if ra, ok := a.(*ResultArg); ok && ra.Index == i {
			return
		}
	}
	// ...and nothing after j may reference either (indices change meaning).
	for ci := j + 1; ci < len(p.Calls); ci++ {
		for _, a := range p.Calls[ci].Args {
			if ra, ok := a.(*ResultArg); ok && (ra.Index == i || ra.Index == j) {
				return
			}
		}
	}
	// References inside the moved pair to calls before i are unaffected;
	// a reference from the (old) call j to anything in (i, j) cannot exist
	// since j == i+1.
	p.Calls[i], p.Calls[j] = p.Calls[j], p.Calls[i]
	// Fix self-indices: args in the new position i (old j) referencing < i
	// stay valid; args in new j (old i) referencing < i stay valid too.
}

// producerBefore finds the most recent producer of res strictly before ci.
func (g *Generator) producerBefore(p *Prog, ci int, res string) int {
	for i := ci - 1; i >= 0; i-- {
		if p.Calls[i].Meta.Ret == res {
			return i
		}
	}
	return -1
}
