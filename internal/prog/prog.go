// Package prog implements EOF's test-case layer: typed programs over an OS's
// validated API specification, resource-aware generation, coverage-informed
// adjacency scoring, mutation, and serialization to the agent wire format.
package prog

import (
	"fmt"
	"strings"

	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/syzlang"
	"github.com/eof-fuzz/eof/internal/wire"
)

// Target binds a validated specification to the OS's dispatch table.
type Target struct {
	Spec *syzlang.Spec
	Info *osinfo.Info
	// apiIdx caches name → wire API index.
	apiIdx map[string]int
}

// NewTarget builds a Target, rejecting specs that reference APIs missing
// from the dispatch table.
func NewTarget(spec *syzlang.Spec, info *osinfo.Info) (*Target, error) {
	t := &Target{Spec: spec, Info: info, apiIdx: make(map[string]int)}
	for _, c := range spec.Calls {
		idx := info.APIIndex(c.Name)
		if idx < 0 {
			return nil, fmt.Errorf("prog: spec call %q not in %s dispatch table", c.Name, info.Name)
		}
		t.apiIdx[c.Name] = idx
	}
	return t, nil
}

// Arg is one concrete argument value.
type Arg interface {
	clone() Arg
	format() string
}

// ConstArg is an immediate scalar.
type ConstArg struct {
	Val uint64
}

func (a *ConstArg) clone() Arg     { return &ConstArg{Val: a.Val} }
func (a *ConstArg) format() string { return fmt.Sprintf("%#x", a.Val) }

// ResultArg references the result of an earlier call in the program.
type ResultArg struct {
	Index int
}

func (a *ResultArg) clone() Arg     { return &ResultArg{Index: a.Index} }
func (a *ResultArg) format() string { return fmt.Sprintf("r%d", a.Index) }

// DataArg is a byte buffer staged into the agent arena.
type DataArg struct {
	Data []byte
}

func (a *DataArg) clone() Arg {
	d := make([]byte, len(a.Data))
	copy(d, a.Data)
	return &DataArg{Data: d}
}

func (a *DataArg) format() string {
	if len(a.Data) <= 24 {
		return fmt.Sprintf("%q", a.Data)
	}
	return fmt.Sprintf("%q…(%d)", a.Data[:24], len(a.Data))
}

// Call is one concrete API invocation.
type Call struct {
	Meta *syzlang.Call
	Args []Arg
}

func (c *Call) clone() *Call {
	nc := &Call{Meta: c.Meta, Args: make([]Arg, len(c.Args))}
	for i, a := range c.Args {
		nc.Args[i] = a.clone()
	}
	return nc
}

// Prog is one test case.
type Prog struct {
	Calls []*Call
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	np := &Prog{Calls: make([]*Call, len(p.Calls))}
	for i, c := range p.Calls {
		np.Calls[i] = c.clone()
	}
	return np
}

// String renders the program in a human-readable one-call-per-line form for
// corpus inspection and crash reports.
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		ret := ""
		if c.Meta.Ret != "" {
			ret = fmt.Sprintf("r%d = ", i)
		}
		parts := make([]string, len(c.Args))
		for j, a := range c.Args {
			parts[j] = a.format()
		}
		fmt.Fprintf(&b, "%s%s(%s)\n", ret, c.Meta.Name, strings.Join(parts, ", "))
	}
	return b.String()
}

// CallNames returns the sequence of call names (crash signatures use it).
func (p *Prog) CallNames() []string {
	out := make([]string, len(p.Calls))
	for i, c := range p.Calls {
		out[i] = c.Meta.Name
	}
	return out
}

// Serialize converts the program to the agent wire format.
func (t *Target) Serialize(p *Prog) (*wire.Prog, error) {
	if len(p.Calls) == 0 {
		return nil, fmt.Errorf("prog: empty program")
	}
	wp := &wire.Prog{Calls: make([]wire.Call, 0, len(p.Calls))}
	for ci, c := range p.Calls {
		idx, ok := t.apiIdx[c.Meta.Name]
		if !ok {
			return nil, fmt.Errorf("prog: call %q has no dispatch index", c.Meta.Name)
		}
		wc := wire.Call{API: uint16(idx)}
		for ai, a := range c.Args {
			switch v := a.(type) {
			case *ConstArg:
				wc.Args = append(wc.Args, wire.Arg{Kind: wire.ArgImm, Val: v.Val})
			case *ResultArg:
				if v.Index < 0 || v.Index >= ci {
					return nil, fmt.Errorf("prog: call %d arg %d references call %d", ci, ai, v.Index)
				}
				wc.Args = append(wc.Args, wire.Arg{Kind: wire.ArgResult, Val: uint64(v.Index)})
			case *DataArg:
				data := v.Data
				if len(data) > wire.MaxBlob {
					data = data[:wire.MaxBlob]
				}
				wc.Args = append(wc.Args, wire.Arg{Kind: wire.ArgBlob, Blob: data})
			default:
				return nil, fmt.Errorf("prog: unknown arg kind %T", a)
			}
		}
		wp.Calls = append(wp.Calls, wc)
	}
	return wp, nil
}

// Validate checks internal consistency (result references point backwards at
// calls that produce the right resource kind, argument counts match the
// spec). Mutation uses it as a post-condition.
func (p *Prog) Validate() error {
	for ci, c := range p.Calls {
		if len(c.Args) != len(c.Meta.Args) {
			return fmt.Errorf("call %d (%s): %d args, spec wants %d", ci, c.Meta.Name, len(c.Args), len(c.Meta.Args))
		}
		for ai, a := range c.Args {
			ra, ok := a.(*ResultArg)
			if !ok {
				continue
			}
			if ra.Index < 0 || ra.Index >= ci {
				return fmt.Errorf("call %d arg %d: bad result index %d", ci, ai, ra.Index)
			}
			rt, ok := c.Meta.Args[ai].Type.(*syzlang.ResourceType)
			if !ok {
				return fmt.Errorf("call %d arg %d: result arg for non-resource field", ci, ai)
			}
			if p.Calls[ra.Index].Meta.Ret != rt.Name {
				return fmt.Errorf("call %d arg %d: resource %s fed by producer of %s",
					ci, ai, rt.Name, p.Calls[ra.Index].Meta.Ret)
			}
		}
	}
	return nil
}
