package prog

import (
	"encoding/json"
	"fmt"

	"github.com/eof-fuzz/eof/internal/syzlang"
)

// The JSON program form is the repro-file payload: name-keyed calls with
// typed arguments, stable field order, round-trippable through any Target
// built for the same OS. It deliberately carries no dispatch indices — those
// are rebound from the spec at load time, so a repro file survives spec
// reorderings that keep call names and signatures.

type jsonProg struct {
	Calls []jsonCall `json:"calls"`
}

type jsonCall struct {
	Name string    `json:"name"`
	Args []jsonArg `json:"args,omitempty"`
}

type jsonArg struct {
	// Kind is "const", "result" or "data".
	Kind  string `json:"kind"`
	Val   uint64 `json:"val,omitempty"`
	Index int    `json:"index,omitempty"`
	Data  []byte `json:"data,omitempty"`
}

// ToJSON serializes p into the portable JSON program form.
func ToJSON(p *Prog) ([]byte, error) {
	jp := jsonProg{Calls: make([]jsonCall, 0, len(p.Calls))}
	for ci, c := range p.Calls {
		jc := jsonCall{Name: c.Meta.Name}
		for ai, a := range c.Args {
			switch v := a.(type) {
			case *ConstArg:
				jc.Args = append(jc.Args, jsonArg{Kind: "const", Val: v.Val})
			case *ResultArg:
				jc.Args = append(jc.Args, jsonArg{Kind: "result", Index: v.Index})
			case *DataArg:
				jc.Args = append(jc.Args, jsonArg{Kind: "data", Data: v.Data})
			default:
				return nil, fmt.Errorf("prog: call %d arg %d: unknown arg kind %T", ci, ai, a)
			}
		}
		jp.Calls = append(jp.Calls, jc)
	}
	return json.Marshal(jp)
}

// FromJSON parses the JSON program form against this target's spec, rebinding
// each call by name and validating the result, so a corrupt or cross-OS repro
// file fails loudly instead of executing garbage.
func (t *Target) FromJSON(data []byte) (*Prog, error) {
	var jp jsonProg
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("prog: bad program JSON: %w", err)
	}
	if len(jp.Calls) == 0 {
		return nil, fmt.Errorf("prog: program JSON has no calls")
	}
	byName := make(map[string]*syzlang.Call, len(t.Spec.Calls))
	for _, c := range t.Spec.Calls {
		byName[c.Name] = c
	}
	p := &Prog{Calls: make([]*Call, 0, len(jp.Calls))}
	for ci, jc := range jp.Calls {
		meta, ok := byName[jc.Name]
		if !ok {
			return nil, fmt.Errorf("prog: call %d: %q not in %s spec", ci, jc.Name, t.Info.Name)
		}
		c := &Call{Meta: meta, Args: make([]Arg, 0, len(jc.Args))}
		for ai, ja := range jc.Args {
			switch ja.Kind {
			case "const":
				c.Args = append(c.Args, &ConstArg{Val: ja.Val})
			case "result":
				c.Args = append(c.Args, &ResultArg{Index: ja.Index})
			case "data":
				d := make([]byte, len(ja.Data))
				copy(d, ja.Data)
				c.Args = append(c.Args, &DataArg{Data: d})
			default:
				return nil, fmt.Errorf("prog: call %d arg %d: unknown arg kind %q", ci, ai, ja.Kind)
			}
		}
		p.Calls = append(p.Calls, c)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("prog: program JSON invalid: %w", err)
	}
	return p, nil
}

// Subset returns a copy of p keeping only the calls where keep[i] is true,
// repairing result references the same way call removal does: a reference to
// a dropped call is re-targeted at the nearest earlier kept producer of the
// same resource, or degraded to a zero handle. The result always validates;
// minimization relies on that to probe arbitrary call subsets.
func Subset(p *Prog, keep []bool) *Prog {
	// newIdx maps old call index → new, -1 for dropped calls.
	newIdx := make([]int, len(p.Calls))
	np := &Prog{}
	for i, c := range p.Calls {
		if i < len(keep) && keep[i] {
			newIdx[i] = len(np.Calls)
			np.Calls = append(np.Calls, c.clone())
		} else {
			newIdx[i] = -1
		}
	}
	for ci, c := range np.Calls {
		for ai, a := range c.Args {
			ra, ok := a.(*ResultArg)
			if !ok {
				continue
			}
			if ni := newIdx[ra.Index]; ni >= 0 {
				ra.Index = ni
				continue
			}
			rt := c.Meta.Args[ai].Type.(*syzlang.ResourceType)
			repaired := false
			for i := ci - 1; i >= 0; i-- {
				if np.Calls[i].Meta.Ret == rt.Name {
					c.Args[ai] = &ResultArg{Index: i}
					repaired = true
					break
				}
			}
			if !repaired {
				c.Args[ai] = &ConstArg{Val: 0}
			}
		}
	}
	return np
}
