package prog

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/specgen"
	"github.com/eof-fuzz/eof/internal/syzlang"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/wire"
)

func testTarget(t *testing.T, os string) *Target {
	t.Helper()
	info, err := targets.ByName(os)
	if err != nil {
		t.Fatal(err)
	}
	res, err := specgen.Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewTarget(res.Spec, info)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestGenerateValidates(t *testing.T) {
	for _, os := range targets.Names() {
		tgt := testTarget(t, os)
		g := NewGenerator(tgt, 1, nil)
		for i := 0; i < 200; i++ {
			p := g.Generate(8)
			if len(p.Calls) == 0 {
				t.Fatalf("%s: empty program", os)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: generated program invalid: %v\n%s", os, err, p)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tgt := testTarget(t, "freertos")
	g1 := NewGenerator(tgt, 42, nil)
	g2 := NewGenerator(tgt, 42, nil)
	for i := 0; i < 20; i++ {
		a, b := g1.Generate(8), g2.Generate(8)
		if a.String() != b.String() {
			t.Fatalf("iteration %d diverged:\n%s\nvs\n%s", i, a, b)
		}
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	for _, os := range targets.Names() {
		tgt := testTarget(t, os)
		g := NewGenerator(tgt, 7, nil)
		p := g.Generate(8)
		for i := 0; i < 300; i++ {
			p = g.Mutate(p)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: mutation %d invalid: %v\n%s", os, i, err, p)
			}
			if len(p.Calls) == 0 || len(p.Calls) > MaxGenCalls {
				t.Fatalf("%s: mutation %d length %d", os, i, len(p.Calls))
			}
		}
	}
}

func TestMutateChangesPrograms(t *testing.T) {
	tgt := testTarget(t, "rtthread")
	g := NewGenerator(tgt, 3, nil)
	p := g.Generate(8)
	changed := 0
	for i := 0; i < 50; i++ {
		m := g.Mutate(p)
		if m.String() != p.String() {
			changed++
		}
	}
	if changed < 30 {
		t.Fatalf("only %d/50 mutations changed the program", changed)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tgt := testTarget(t, "freertos")
	g := NewGenerator(tgt, 5, nil)
	for i := 0; i < 100; i++ {
		p := g.Generate(8)
		wp, err := tgt.Serialize(p)
		if err != nil {
			t.Fatalf("serialize: %v\n%s", err, p)
		}
		raw, err := wp.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := wire.Unmarshal(raw)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if len(back.Calls) != len(p.Calls) {
			t.Fatalf("call count %d != %d", len(back.Calls), len(p.Calls))
		}
	}
}

func TestResourceDependenciesGenerated(t *testing.T) {
	tgt := testTarget(t, "freertos")
	g := NewGenerator(tgt, 11, nil)
	withRes, withRef := 0, 0
	for i := 0; i < 200; i++ {
		p := g.Generate(10)
		for _, c := range p.Calls {
			for _, a := range c.Args {
				if _, ok := a.(*ResultArg); ok {
					withRef++
				}
			}
			if c.Meta.Ret != "" {
				withRes++
			}
		}
	}
	if withRes == 0 || withRef == 0 {
		t.Fatalf("resource production %d / references %d", withRes, withRef)
	}
	// Most resource arguments should be satisfied by real producers.
	if withRef < 100 {
		t.Fatalf("too few resource references: %d", withRef)
	}
}

func TestChoiceTableRewardShapesGeneration(t *testing.T) {
	tgt := testTarget(t, "freertos")
	ct := NewChoiceTable(tgt.Spec)
	// Heavily reward xQueueCreate → load_partitions adjacency.
	for i := 0; i < 10; i++ {
		ct.Reward("xQueueCreate", "load_partitions", 2.0)
	}
	if ct.Score("xQueueCreate", "load_partitions") < 4 {
		t.Fatal("reward not recorded")
	}
	// The cap stops unbounded growth.
	for i := 0; i < 100; i++ {
		ct.Reward("xQueueCreate", "load_partitions", 2.0)
	}
	if ct.Score("xQueueCreate", "load_partitions") > 20 {
		t.Fatalf("reward uncapped: %f", ct.Score("xQueueCreate", "load_partitions"))
	}
}

func TestRandomOnlyIgnoresConstraints(t *testing.T) {
	tgt := testTarget(t, "freertos")
	g := NewGenerator(tgt, 9, nil)
	g.RandomOnly = true
	refs := 0
	for i := 0; i < 100; i++ {
		p := g.Generate(8)
		if err := p.Validate(); err != nil {
			t.Fatalf("random-only program invalid: %v", err)
		}
		for _, c := range p.Calls {
			for _, a := range c.Args {
				if _, ok := a.(*ResultArg); ok {
					refs++
				}
			}
		}
	}
	if refs != 0 {
		t.Fatalf("random-only mode produced %d resource references", refs)
	}
}

func TestLenFieldsTrackBuffers(t *testing.T) {
	tgt := testTarget(t, "freertos")
	g := NewGenerator(tgt, 13, nil)
	spec := tgt.Spec.Call("http_server_handle")
	if spec == nil {
		t.Fatal("no http_server_handle spec")
	}
	matches := 0
	for i := 0; i < 100; i++ {
		p := &Prog{}
		g.appendWithDeps(p, spec, 0)
		c := p.Calls[len(p.Calls)-1]
		da, ok1 := c.Args[0].(*DataArg)
		la, ok2 := c.Args[1].(*ConstArg)
		if ok1 && ok2 && int(la.Val) == len(da.Data) {
			matches++
		}
	}
	if matches < 90 {
		t.Fatalf("len field matched buffer only %d/100 times", matches)
	}
}

func TestProgString(t *testing.T) {
	tgt := testTarget(t, "freertos")
	spec := tgt.Spec.Call("xQueueCreate")
	p := &Prog{Calls: []*Call{{
		Meta: spec,
		Args: []Arg{&ConstArg{Val: 4}, &ConstArg{Val: 8}},
	}}}
	s := p.String()
	if s != "r0 = xQueueCreate(0x4, 0x8)\n" {
		t.Fatalf("String = %q", s)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	tgt := testTarget(t, "freertos")
	create := tgt.Spec.Call("xQueueCreate")
	send := tgt.Spec.Call("xQueueSend")
	// Forward reference.
	p := &Prog{Calls: []*Call{
		{Meta: send, Args: []Arg{&ResultArg{Index: 1}, &DataArg{Data: []byte("x")}, &ConstArg{}}},
		{Meta: create, Args: []Arg{&ConstArg{Val: 1}, &ConstArg{Val: 1}}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("forward reference accepted")
	}
	// Wrong arg count.
	p2 := &Prog{Calls: []*Call{{Meta: create, Args: []Arg{&ConstArg{}}}}}
	if err := p2.Validate(); err == nil {
		t.Fatal("short arg list accepted")
	}
}

func TestTargetRejectsUnknownCalls(t *testing.T) {
	info, _ := targets.ByName("freertos")
	spec, err := syzlang.Parse("freertos", "bogus_call(a int32)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTarget(spec, info); err == nil {
		t.Fatal("spec with unknown call accepted")
	}
}
