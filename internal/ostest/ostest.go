// Package ostest provides the shared integration rig OS-personality tests
// use: a provisioned board with an attached debug client, program delivery
// through the mailbox, and helpers for asserting fault signatures and
// assertion hangs.
package ostest

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/agent"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/fsb"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/vtime"
	"github.com/eof-fuzz/eof/internal/wire"
)

// Rig is a provisioned board with an attached debug client.
type Rig struct {
	T      *testing.T
	Info   *osinfo.Info
	Board  *board.Board
	Client link.Link
	Syms   *sym.Table
	Lay    board.Layout
}

// New boots the OS on the given board spec and attaches the probe.
func New(t *testing.T, info *osinfo.Info, spec *board.Spec) *Rig {
	t.Helper()
	imgs, err := info.BuildImages(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	table, err := info.PartTable()
	if err != nil {
		t.Fatal(err)
	}
	brd, err := board.New(spec, table, info.Builder, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	if err := brd.Provision("bootloader", imgs.Boot); err != nil {
		t.Fatal(err)
	}
	if err := brd.Provision("kernel", imgs.Kernel); err != nil {
		t.Fatal(err)
	}
	if err := brd.Boot(); err != nil {
		t.Fatal(err)
	}
	syms, err := info.SymbolTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	client := ocd.ConnectDirect(ocd.NewServer(brd, ocd.DefaultLatency()))
	r := &Rig{T: t, Info: info, Board: brd, Client: client, Syms: syms, Lay: board.LayoutFor(spec)}
	if err := client.SetBreakpoint(syms.Addr(agent.SymExecutorMain)); err != nil {
		t.Fatal(err)
	}
	st, err := client.Continue(2_000_000)
	if err != nil || st.Kind != cpu.StopBreakpoint {
		t.Fatalf("run to executor_main: %+v %v", st, err)
	}
	t.Cleanup(func() {
		client.Close()
		if brd.State() == board.On {
			brd.Core().Kill()
		}
	})
	return r
}

// Call builds a wire call by API name.
func (r *Rig) Call(name string, args ...wire.Arg) wire.Call {
	idx := r.Info.APIIndex(name)
	if idx < 0 {
		r.T.Fatalf("unknown API %q", name)
	}
	return wire.Call{API: uint16(idx), Args: args}
}

// Imm is an immediate argument.
func Imm(v uint64) wire.Arg { return wire.Arg{Kind: wire.ArgImm, Val: v} }

// Ref references an earlier call's result.
func Ref(i int) wire.Arg { return wire.Arg{Kind: wire.ArgResult, Val: uint64(i)} }

// Blob is a staged byte buffer.
func Blob(b []byte) wire.Arg { return wire.Arg{Kind: wire.ArgBlob, Blob: b} }

// Str is a staged NUL-terminated string.
func Str(s string) wire.Arg { return Blob(append([]byte(s), 0)) }

// Outcome summarises one program execution.
type Outcome struct {
	Completed bool
	Fault     *cpu.Fault
	UART      []string
	Result    wire.Result
	StallPC   uint64
}

// Run delivers the calls and pumps until completion, a fault, or a stall.
func (r *Rig) Run(calls ...wire.Call) Outcome {
	r.T.Helper()
	p := &wire.Prog{Calls: calls}
	raw, err := p.Marshal()
	if err != nil {
		r.T.Fatal(err)
	}
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	if err := r.Client.WriteMem(r.Lay.MailboxIn, buf); err != nil {
		r.T.Fatal(err)
	}
	mainAddr := r.Syms.Addr(agent.SymExecutorMain)
	var out Outcome
	var lastBudget uint64
	stall := 0
	for i := 0; i < 128; i++ {
		st, err := r.Client.Continue(500_000)
		if err != nil {
			r.T.Fatalf("continue: %v", err)
		}
		switch st.Kind {
		case cpu.StopBreakpoint:
			if st.PC == mainAddr {
				out.Completed = true
				out.UART = r.drain()
				out.Result = r.result()
				return out
			}
		case cpu.StopCovFull:
			r.clearCov()
		case cpu.StopFault:
			// Read the fault status block like the exception monitor does.
			rawFSB, err := r.Client.ReadMem(r.Lay.FSB, board.FSBSize)
			if err != nil {
				r.T.Fatal(err)
			}
			f, err := fsb.Decode(rawFSB)
			if err != nil {
				r.T.Fatal(err)
			}
			if f == nil {
				f = st.Fault
			}
			out.Fault = f
			out.UART = r.drain()
			return out
		case cpu.StopBudget:
			if st.PC == lastBudget {
				stall++
			} else {
				lastBudget, stall = st.PC, 0
			}
			if stall >= 2 {
				out.StallPC = st.PC
				out.UART = r.drain()
				return out
			}
		default:
			r.T.Fatalf("unexpected stop: %+v", st)
		}
	}
	r.T.Fatal("program did not settle")
	return out
}

func (r *Rig) drain() []string {
	lines, err := r.Client.DrainUART()
	if err != nil {
		return nil
	}
	return lines
}

func (r *Rig) result() wire.Result {
	raw, err := r.Client.ReadMem(r.Lay.MailboxOut, wire.ResultBytes)
	if err != nil {
		r.T.Fatal(err)
	}
	res, err := wire.UnmarshalResult(raw)
	if err != nil {
		r.T.Fatal(err)
	}
	return res
}

func (r *Rig) clearCov() {
	if err := r.Client.WriteMem(r.Lay.Cov+4, []byte{0, 0, 0, 0}); err != nil {
		r.T.Fatal(err)
	}
}

// Restore reflashes and reboots the board (after a crash or brick) and
// resynchronises at executor_main.
func (r *Rig) Restore() {
	r.T.Helper()
	imgs, err := r.Info.BuildImages(r.Board.Spec, true)
	if err != nil {
		r.T.Fatal(err)
	}
	if err := r.Client.Reset(); err != nil {
		tab := r.Board.PartitionTable()
		for _, part := range []struct {
			name string
			data []byte
		}{{"bootloader", imgs.Boot}, {"kernel", imgs.Kernel}} {
			pt := tab.Lookup(part.name)
			if err := r.Client.FlashErase(pt.Offset, pt.Size); err != nil {
				r.T.Fatal(err)
			}
			if err := r.Client.FlashWrite(pt.Offset, part.data); err != nil {
				r.T.Fatal(err)
			}
		}
		if err := r.Client.Reset(); err != nil {
			r.T.Fatal(err)
		}
	}
	mainAddr := r.Syms.Addr(agent.SymExecutorMain)
	if err := r.Client.SetBreakpoint(mainAddr); err != nil {
		r.T.Fatal(err)
	}
	st, err := r.Client.Continue(2_000_000)
	if err != nil || st.Kind != cpu.StopBreakpoint || st.PC != mainAddr {
		r.T.Fatalf("restore resync: %+v %v", st, err)
	}
	r.drain()
}

// ExpectFault asserts a fault of the given kind whose innermost frame is fn.
func (o Outcome) ExpectFault(t *testing.T, kind cpu.FaultKind, fn string) {
	t.Helper()
	if o.Fault == nil {
		t.Fatalf("no fault (completed=%v stallPC=%#x, uart=%v)", o.Completed, o.StallPC, o.UART)
	}
	if o.Fault.Kind != kind {
		t.Fatalf("fault kind %v, want %v (%s)", o.Fault.Kind, kind, o.Fault.Msg)
	}
	if len(o.Fault.Frames) == 0 || o.Fault.Frames[0].Func != fn {
		t.Fatalf("fault frames %v, want innermost %s", o.Fault.Frames, fn)
	}
}

// ExpectAssertHang asserts the outcome is a hang whose UART log carries the
// assertion expression.
func (o Outcome) ExpectAssertHang(t *testing.T, expr string) {
	t.Helper()
	if o.StallPC == 0 {
		t.Fatalf("no stall (completed=%v fault=%v)", o.Completed, o.Fault)
	}
	for _, l := range o.UART {
		if strings.Contains(l, "ASSERT failed") && strings.Contains(l, expr) {
			return
		}
	}
	t.Fatalf("assert line %q missing from UART: %v", expr, o.UART)
}
