package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleProg() *Prog {
	return &Prog{Calls: []Call{
		{API: 3, Args: []Arg{
			{Kind: ArgImm, Val: 0xDEADBEEF12345678},
			{Kind: ArgBlob, Blob: []byte("payload")},
		}},
		{API: 7, Args: []Arg{
			{Kind: ArgResult, Val: 0},
			{Kind: ArgImm, Val: 42},
		}},
	}}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := sampleProg()
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Calls) != 2 || got.Calls[0].API != 3 || got.Calls[1].API != 7 {
		t.Fatalf("calls: %+v", got.Calls)
	}
	if got.Calls[0].Args[0].Val != 0xDEADBEEF12345678 {
		t.Fatalf("imm: %#x", got.Calls[0].Args[0].Val)
	}
	if !bytes.Equal(got.Calls[0].Args[1].Blob, []byte("payload")) {
		t.Fatalf("blob: %q", got.Calls[0].Args[1].Blob)
	}
	if got.Calls[1].Args[0].Kind != ArgResult || got.Calls[1].Args[0].Val != 0 {
		t.Fatalf("result ref: %+v", got.Calls[1].Args[0])
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := (&Prog{}).Marshal(); err == nil {
		t.Fatal("empty prog marshalled")
	}
	// Forward reference.
	p := &Prog{Calls: []Call{{API: 0, Args: []Arg{{Kind: ArgResult, Val: 0}}}}}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("self reference marshalled")
	}
	// Oversized blob.
	p = &Prog{Calls: []Call{{API: 0, Args: []Arg{{Kind: ArgBlob, Blob: make([]byte, MaxBlob+1)}}}}}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("oversized blob marshalled")
	}
	// Too many calls.
	p = &Prog{}
	for i := 0; i < MaxCalls+1; i++ {
		p.Calls = append(p.Calls, Call{API: 0})
	}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("too many calls marshalled")
	}
}

func TestUnmarshalDefensive(t *testing.T) {
	valid, _ := sampleProg().Marshal()
	// Truncations at every length must error, never panic.
	for n := 0; n < len(valid); n++ {
		if _, err := Unmarshal(valid[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// Trailing garbage rejected.
	if _, err := Unmarshal(append(append([]byte{}, valid...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Bad magic.
	bad := append([]byte{}, valid...)
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rnd.Intn(200))
		rnd.Read(b)
		Unmarshal(b) // must not panic
	}
	// Mutations of a valid program.
	valid, _ := sampleProg().Marshal()
	for i := 0; i < 5000; i++ {
		b := append([]byte{}, valid...)
		b[rnd.Intn(len(b))] ^= byte(1 << uint(rnd.Intn(8)))
		Unmarshal(b)
	}
}

func TestResultRoundTrip(t *testing.T) {
	f := func(exec uint32, errno int32, faulted bool, seq uint32) bool {
		r := Result{Executed: exec, LastErr: errno, Faulted: faulted, Seq: seq}
		got, err := UnmarshalResult(MarshalResult(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalResult([]byte{1, 2}); err == nil {
		t.Fatal("short result accepted")
	}
}
