// Package wire defines the test-case serialization format shared by the host
// fuzzer (which marshals programs into the target mailbox over the debug
// link) and the on-target agent (which unmarshals and executes them). The
// format deliberately uses only primitive operations — fixed-width integers,
// array reads — so the agent stays tiny and OS-independent, per the paper's
// cross-platform agent requirement.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Format limits. The mailbox is 16 KiB; these keep any program within it.
const (
	ProgMagic = 0x50524F47 // "PROG"
	MaxCalls  = 64
	MaxArgs   = 8
	MaxBlob   = 2048
)

// ArgKind discriminates encoded argument variants.
type ArgKind uint8

// Argument kinds.
const (
	// ArgImm is an immediate 64-bit scalar.
	ArgImm ArgKind = iota
	// ArgResult references the return value of an earlier call (a resource).
	ArgResult
	// ArgBlob is a byte buffer; the agent copies it into its arena and the
	// handler receives the target address.
	ArgBlob
)

// Arg is one encoded argument.
type Arg struct {
	Kind ArgKind
	Val  uint64 // ArgImm: the value; ArgResult: the call index
	Blob []byte // ArgBlob payload
}

// Call is one encoded API invocation.
type Call struct {
	API  uint16
	Args []Arg
}

// Prog is an encoded test case: a sequence of API calls.
type Prog struct {
	Calls []Call
}

// Marshal renders the program into the mailbox byte format:
//
//	u32 magic, u16 ncalls
//	per call: u16 api, u8 nargs
//	  per arg: u8 kind, then
//	    imm:    u64 value
//	    result: u16 call index
//	    blob:   u16 len, bytes
func (p *Prog) Marshal() ([]byte, error) {
	if len(p.Calls) == 0 || len(p.Calls) > MaxCalls {
		return nil, fmt.Errorf("wire: %d calls outside [1,%d]", len(p.Calls), MaxCalls)
	}
	out := make([]byte, 0, 256)
	out = binary.LittleEndian.AppendUint32(out, ProgMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Calls)))
	for ci, c := range p.Calls {
		if len(c.Args) > MaxArgs {
			return nil, fmt.Errorf("wire: call %d has %d args (max %d)", ci, len(c.Args), MaxArgs)
		}
		out = binary.LittleEndian.AppendUint16(out, c.API)
		out = append(out, byte(len(c.Args)))
		for ai, a := range c.Args {
			out = append(out, byte(a.Kind))
			switch a.Kind {
			case ArgImm:
				out = binary.LittleEndian.AppendUint64(out, a.Val)
			case ArgResult:
				if a.Val >= uint64(ci) {
					return nil, fmt.Errorf("wire: call %d arg %d references future call %d", ci, ai, a.Val)
				}
				out = binary.LittleEndian.AppendUint16(out, uint16(a.Val))
			case ArgBlob:
				if len(a.Blob) > MaxBlob {
					return nil, fmt.Errorf("wire: call %d arg %d blob %d bytes (max %d)", ci, ai, len(a.Blob), MaxBlob)
				}
				out = binary.LittleEndian.AppendUint16(out, uint16(len(a.Blob)))
				out = append(out, a.Blob...)
			default:
				return nil, fmt.Errorf("wire: call %d arg %d unknown kind %d", ci, ai, a.Kind)
			}
		}
	}
	return out, nil
}

// Unmarshal decodes a program from mailbox bytes. It is defensive: any
// malformed input yields an error rather than a mis-execution, because the
// agent must survive whatever arrives over the link.
func Unmarshal(data []byte) (*Prog, error) {
	r := reader{data: data}
	magic, ok := r.u32()
	if !ok || magic != ProgMagic {
		return nil, fmt.Errorf("wire: bad magic")
	}
	ncalls, ok := r.u16()
	if !ok || ncalls == 0 || int(ncalls) > MaxCalls {
		return nil, fmt.Errorf("wire: bad call count %d", ncalls)
	}
	p := &Prog{Calls: make([]Call, 0, ncalls)}
	for ci := 0; ci < int(ncalls); ci++ {
		api, ok := r.u16()
		if !ok {
			return nil, fmt.Errorf("wire: truncated call %d", ci)
		}
		nargs, ok := r.u8()
		if !ok || int(nargs) > MaxArgs {
			return nil, fmt.Errorf("wire: bad arg count in call %d", ci)
		}
		c := Call{API: api, Args: make([]Arg, 0, nargs)}
		for ai := 0; ai < int(nargs); ai++ {
			kind, ok := r.u8()
			if !ok {
				return nil, fmt.Errorf("wire: truncated arg %d.%d", ci, ai)
			}
			var a Arg
			a.Kind = ArgKind(kind)
			switch a.Kind {
			case ArgImm:
				v, ok := r.u64()
				if !ok {
					return nil, fmt.Errorf("wire: truncated imm %d.%d", ci, ai)
				}
				a.Val = v
			case ArgResult:
				v, ok := r.u16()
				if !ok {
					return nil, fmt.Errorf("wire: truncated result ref %d.%d", ci, ai)
				}
				if int(v) >= ci {
					return nil, fmt.Errorf("wire: forward result ref %d.%d", ci, ai)
				}
				a.Val = uint64(v)
			case ArgBlob:
				n, ok := r.u16()
				if !ok || int(n) > MaxBlob {
					return nil, fmt.Errorf("wire: bad blob len %d.%d", ci, ai)
				}
				b, ok := r.bytes(int(n))
				if !ok {
					return nil, fmt.Errorf("wire: truncated blob %d.%d", ci, ai)
				}
				a.Blob = b
			default:
				return nil, fmt.Errorf("wire: unknown arg kind %d at %d.%d", kind, ci, ai)
			}
			c.Args = append(c.Args, a)
		}
		p.Calls = append(p.Calls, c)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(r.data)-r.off)
	}
	return p, nil
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) u8() (byte, bool) {
	if r.off+1 > len(r.data) {
		return 0, false
	}
	v := r.data[r.off]
	r.off++
	return v, true
}

func (r *reader) u16() (uint16, bool) {
	if r.off+2 > len(r.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.off+4 > len(r.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.off+8 > len(r.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) bytes(n int) ([]byte, bool) {
	if r.off+n > len(r.data) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:r.off+n])
	r.off += n
	return out, true
}

// Result is the per-program execution summary the agent writes to the
// outbound mailbox after execute_one. Seq increments monotonically per
// program, which lets shared-memory hosts (no breakpoints) detect
// completion by polling.
type Result struct {
	Executed uint32 // calls completed
	LastErr  int32  // errno of the last completed call
	Faulted  bool
	Seq      uint32
}

// ResultBytes is the encoded size of a Result.
const ResultBytes = 16

// MarshalResult encodes r.
func MarshalResult(r Result) []byte {
	out := make([]byte, ResultBytes)
	binary.LittleEndian.PutUint32(out[0:], r.Executed)
	binary.LittleEndian.PutUint32(out[4:], uint32(r.LastErr))
	if r.Faulted {
		out[8] = 1
	}
	binary.LittleEndian.PutUint32(out[12:], r.Seq)
	return out
}

// UnmarshalResult decodes a Result.
func UnmarshalResult(data []byte) (Result, error) {
	if len(data) < ResultBytes {
		return Result{}, fmt.Errorf("wire: result too short (%d bytes)", len(data))
	}
	return Result{
		Executed: binary.LittleEndian.Uint32(data[0:]),
		LastErr:  int32(binary.LittleEndian.Uint32(data[4:])),
		Faulted:  data[8] != 0,
		Seq:      binary.LittleEndian.Uint32(data[12:]),
	}, nil
}
